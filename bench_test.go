// One benchmark per table and figure of the paper's evaluation, plus the
// two ablations. Each benchmark drives the same harness as cmd/benchtab on
// the two smallest circuits (primary2, biomed) so the full suite stays
// fast; run `go run ./cmd/benchtab -all` for the complete six-circuit
// reproduction. Key quality/speedup numbers are attached as custom
// benchmark metrics.
package parroute_test

import (
	"context"
	"io"
	"testing"

	"parroute/internal/bench"
	"parroute/internal/gen"
	"parroute/internal/mp"
	"parroute/internal/parallel"
	"parroute/internal/partition"
	"parroute/internal/route"
)

// benchCircuits keeps the per-iteration cost of the table benchmarks
// manageable; cmd/benchtab runs all six.
var benchCircuits = []string{"primary2", "biomed"}

func newSuite() *bench.Suite {
	return bench.NewSuite(bench.Config{Circuits: benchCircuits, Seed: 7})
}

// reportScaledAndSpeedup attaches the 8-worker average scaled tracks and
// speedup of an algorithm as custom metrics.
func reportScaledAndSpeedup(b *testing.B, s *bench.Suite, algo parallel.Algorithm) {
	b.Helper()
	var scaled, speedup float64
	for _, name := range benchCircuits {
		base, err := s.Baseline(name)
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Run(name, algo, 8, mp.SMP(), 0, partition.PinWeight)
		if err != nil {
			b.Fatal(err)
		}
		scaled += r.ScaledTracks(base)
		speedup += r.Speedup(base)
	}
	n := float64(len(benchCircuits))
	b.ReportMetric(scaled/n, "scaled-tracks-8p")
	b.ReportMetric(speedup/n, "speedup-8p")
}

func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2RowWiseTracks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.ScaledTracks(io.Discard, 2); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportScaledAndSpeedup(b, s, parallel.RowWise)
		}
	}
}

func BenchmarkFigure4RowWiseSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.Speedups(io.Discard, 4); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportScaledAndSpeedup(b, s, parallel.RowWise)
		}
	}
}

func BenchmarkTable3NetWiseTracks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.ScaledTracks(io.Discard, 3); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportScaledAndSpeedup(b, s, parallel.NetWise)
		}
	}
}

func BenchmarkFigure5NetWiseSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.Speedups(io.Discard, 5); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportScaledAndSpeedup(b, s, parallel.NetWise)
		}
	}
}

func BenchmarkTable4HybridTracks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.ScaledTracks(io.Discard, 4); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportScaledAndSpeedup(b, s, parallel.Hybrid)
		}
	}
}

func BenchmarkFigure6HybridSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.Speedups(io.Discard, 6); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportScaledAndSpeedup(b, s, parallel.Hybrid)
		}
	}
}

func BenchmarkTable5HybridPlatforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.Table5(io.Discard, 8, 16); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// DMP-vs-SMP runtime ratio on biomed at matching procs.
			base, err := s.Baseline("biomed")
			if err != nil {
				b.Fatal(err)
			}
			smp, err := s.Run("biomed", parallel.Hybrid, 8, mp.SMP(), 0, partition.PinWeight)
			if err != nil {
				b.Fatal(err)
			}
			dmp, err := s.Run("biomed", parallel.Hybrid, 8, mp.DMP(), 0, partition.PinWeight)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(smp.Speedup(base), "smp-speedup-8p")
			b.ReportMetric(dmp.Speedup(base), "dmp-speedup-8p")
		}
	}
}

func BenchmarkAblationNetPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.AblationPartition(io.Discard, "biomed", 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSyncPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite()
		if err := s.AblationSync(io.Discard, "biomed", 8, []int{-1, 1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialRoute measures the plain serial router per circuit — the
// baseline every speedup in the paper is computed against.
func BenchmarkSerialRoute(b *testing.B) {
	for _, name := range benchCircuits {
		b.Run(name, func(b *testing.B) {
			c, err := gen.Benchmark(name, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var tracks int
			for i := 0; i < b.N; i++ {
				res, err := route.Route(context.Background(), c, route.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				tracks = res.TotalTracks
			}
			b.ReportMetric(float64(tracks), "tracks")
		})
	}
}

// BenchmarkCoarseLFlipAblation measures how L-flip improvement passes
// trade runtime for coarse-grid cost — the design knob DESIGN.md lists.
func BenchmarkCoarseLFlipAblation(b *testing.B) {
	c, err := gen.Benchmark("primary2", 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, passes := range []int{1, 3, 6} {
		b.Run(map[int]string{1: "passes-1", 3: "passes-3", 6: "passes-6"}[passes], func(b *testing.B) {
			var flips int
			for i := 0; i < b.N; i++ {
				res, err := route.Route(context.Background(), c, route.Options{Seed: 1, CoarsePasses: passes})
				if err != nil {
					b.Fatal(err)
				}
				flips = res.CoarseFlips
			}
			b.ReportMetric(float64(flips), "flips")
		})
	}
}
