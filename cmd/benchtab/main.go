// benchtab regenerates the paper's tables and figures on the synthetic
// MCNC-like circuits and the simulated SMP/DMP machines.
//
// Usage:
//
//	benchtab -all                 # everything (Tables 1-5, Figures 4-6, ablations)
//	benchtab -table 2             # one table (1..5)
//	benchtab -figure 5            # one figure (4..6)
//	benchtab -ablation partition  # or: sync
//	benchtab -quick -all          # smaller circuit set for a fast pass
//	benchtab -quick -json BENCH_PR4.json   # machine-readable perf snapshot
//	benchtab -quick -tcpjson BENCH_PR9.json  # framed-vs-gob TCP wire comparison
//	benchtab -checkjson BENCH_PR4.json     # validate a committed snapshot (either schema)
//
// -json measures the tree (serial wall-clock with per-phase split and
// allocation counts, parallel speedup and scaled tracks on the simulated
// SMP machine) and writes a bench.Report. When the output file already
// exists, its baseline — or, for a first-generation file, its current
// snapshot — is carried forward as the new report's baseline, so the
// committed file always compares the tree against the pre-optimization
// state it was first generated from.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parroute/internal/bench"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every table, figure and ablation")
		table     = flag.Int("table", 0, "regenerate one table (1-5)")
		figure    = flag.Int("figure", 0, "regenerate one figure (4-6)")
		ablation  = flag.String("ablation", "", "run an ablation: partition | sync | platform")
		quick     = flag.Bool("quick", false, "use only the two smallest circuits")
		seed      = flag.Uint64("seed", 7, "seed for circuit synthesis and routing")
		reps      = flag.Int("reps", 1, "timing repetitions (fastest kept)")
		seeds     = flag.Int("seeds", 0, "for -table 2/3/4: report mean [min-max] over this many seeds")
		circuits  = flag.String("circuits", "", "comma-separated circuit subset")
		procs     = flag.String("procs", "1,2,4,8", "comma-separated worker counts")
		workers   = flag.String("workers", "1", "comma-separated intra-rank route worker counts for the serial scale points")
		jsonOut   = flag.String("json", "", "write a machine-readable perf report to this path")
		tcpJSON   = flag.String("tcpjson", "", "write a framed-vs-gob TCP wire comparison to this path")
		label     = flag.String("label", "", "label stored in the -json report")
		checkJSON = flag.String("checkjson", "", "parse and validate a perf report, then exit")
	)
	flag.Parse()

	if *checkJSON != "" {
		validateReport(*checkJSON)
		return
	}

	cfg := bench.Config{Seed: *seed, Reps: *reps}
	if *quick {
		cfg.Circuits = []string{"primary2", "biomed"}
	}
	if *circuits != "" {
		cfg.Circuits = strings.Split(*circuits, ",")
	}
	for _, tok := range strings.Split(*procs, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fatalf("bad -procs value %q: %v", tok, err)
		}
		cfg.Procs = append(cfg.Procs, p)
	}
	for _, tok := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fatalf("bad -workers value %q: %v", tok, err)
		}
		cfg.Workers = append(cfg.Workers, w)
	}
	s := bench.NewSuite(cfg)

	if *jsonOut != "" {
		writeReport(cfg, *jsonOut, *label)
		return
	}
	if *tcpJSON != "" {
		writeTCPReport(cfg, *tcpJSON, *label)
		return
	}

	ran := false
	check := func(err error) {
		if err != nil {
			fatalf("%v", err)
		}
		ran = true
	}
	if *all || *table == 1 {
		check(s.Table1(os.Stdout))
	}
	for _, tb := range []int{2, 3, 4} {
		if *all || *table == tb {
			if *seeds > 1 {
				var ss []uint64
				for i := 0; i < *seeds; i++ {
					ss = append(ss, *seed+uint64(i))
				}
				check(bench.ScaledTracksStats(os.Stdout, cfg, tb, ss))
			} else {
				check(s.ScaledTracks(os.Stdout, tb))
			}
		}
	}
	for _, fg := range []int{4, 5, 6} {
		if *all || *figure == fg {
			check(s.Speedups(os.Stdout, fg))
		}
	}
	if *all || *table == 5 {
		check(s.Table5(os.Stdout, 8, 16))
	}
	if *all || *ablation == "partition" {
		check(s.AblationPartition(os.Stdout, ablationCircuit(cfg), 8))
	}
	if *all || *ablation == "sync" {
		check(s.AblationSync(os.Stdout, ablationCircuit(cfg), 8, []int{-1, 1, 4, 16}))
	}
	if *all || *ablation == "platform" {
		check(s.AblationPlatform(os.Stdout, ablationCircuit(cfg), []int{4, 8, 16, 32}))
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "nothing selected; try -all or see -help")
		flag.Usage()
		os.Exit(2)
	}
}

// ablationCircuit picks the clock-heavy circuit if available, otherwise
// the last configured one.
func ablationCircuit(cfg bench.Config) string {
	for _, c := range cfg.Circuits {
		if c == "avq.large" {
			return c
		}
	}
	if len(cfg.Circuits) == 0 {
		return "avq.large"
	}
	return cfg.Circuits[len(cfg.Circuits)-1]
}

// writeReport collects a perf snapshot and writes it to path, carrying the
// baseline of any existing report at path forward.
func writeReport(cfg bench.Config, path, label string) {
	var prev *bench.Report
	if f, err := os.Open(path); err == nil {
		prev, err = bench.ReadReport(f)
		f.Close()
		if err != nil {
			fatalf("existing report %s: %v", path, err)
		}
	}
	snap, err := bench.CollectSnapshot(cfg)
	if err != nil {
		fatalf("collecting snapshot: %v", err)
	}
	report := bench.BuildReport(prev, *snap, label)
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := bench.WriteReport(f, report); err != nil {
		fatalf("writing report: %v", err)
	}
	if report.Baseline != nil {
		fmt.Printf("wrote %s: serial speedup vs baseline %.2fx\n", path, report.SerialSpeedupVsBaseline)
	} else {
		fmt.Printf("wrote %s (no baseline yet; rerun after changes to compare)\n", path)
	}
}

// writeTCPReport measures the framed-vs-gob wire comparison on the real
// loopback-TCP engine and writes it to path.
func writeTCPReport(cfg bench.Config, path, label string) {
	rep, err := bench.CollectTCPReport(cfg, label)
	if err != nil {
		fatalf("collecting tcp report: %v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := bench.WriteTCPReport(f, rep); err != nil {
		fatalf("writing tcp report: %v", err)
	}
	fmt.Printf("wrote %s: mean framed speedup %.2fx over gob (%d runs at %d procs)\n",
		path, rep.MeanFramedSpeedup, len(rep.Runs), rep.Procs)
}

// validateReport parses a report file, failing the process on any error —
// the CI smoke check that the committed BENCH_PR4.json / BENCH_PR9.json
// stay readable. The schema field selects the reader.
func validateReport(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		fatalf("%s: %v", path, err)
	}
	switch head.Schema {
	case bench.TCPReportSchema:
		r, err := bench.ReadTCPReport(bytes.NewReader(raw))
		if err != nil {
			fatalf("%v", err)
		}
		if len(r.Runs) == 0 {
			fatalf("%s: tcp report has no runs", path)
		}
		fmt.Printf("%s: schema %s, %d framed-vs-gob runs at %d procs, mean framed speedup %.2fx\n",
			path, r.Schema, len(r.Runs), r.Procs, r.MeanFramedSpeedup)
	default:
		r, err := bench.ReadReport(bytes.NewReader(raw))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s: schema %s, %d serial + %d parallel runs", path, r.Schema,
			len(r.Current.Serial), len(r.Current.Parallel))
		if r.Baseline != nil {
			fmt.Printf(", serial speedup vs baseline %.2fx", r.SerialSpeedupVsBaseline)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtab: "+format+"\n", args...)
	os.Exit(1)
}
