// gensc emits synthetic MCNC-like standard-cell circuits as JSON, either
// from a named preset or from explicit size parameters.
//
// Usage:
//
//	gensc -preset avq.large -seed 7 -o avq_large.json
//	gensc -rows 20 -cells 2000 -nets 2200 -pins 7000 -o custom.json
//	gensc -list
package main

import (
	"flag"
	"fmt"
	"os"

	"parroute/internal/gen"
)

func main() {
	var (
		preset = flag.String("preset", "", "named benchmark circuit (see -list)")
		list   = flag.Bool("list", false, "list available presets and exit")
		seed   = flag.Uint64("seed", 7, "generation seed")
		out    = flag.String("o", "", "output file (default stdout)")
		rows   = flag.Int("rows", 0, "rows for a custom circuit")
		cells  = flag.Int("cells", 0, "cells for a custom circuit")
		nets   = flag.Int("nets", 0, "nets for a custom circuit")
		pins   = flag.Int("pins", 0, "target pin count for a custom circuit")
		name   = flag.String("name", "custom", "name of a custom circuit")
	)
	flag.Parse()

	if *list {
		for _, n := range gen.AllNames() {
			cfg, _ := gen.Preset(n)
			fmt.Printf("%-12s rows=%-3d cells=%-6d nets=%-6d pins=%d\n",
				n, cfg.Rows, cfg.Cells, cfg.Nets, cfg.TargetPins)
		}
		return
	}

	var cfg gen.Config
	if *preset != "" {
		var err error
		cfg, err = gen.Preset(*preset)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		if *rows == 0 || *cells == 0 || *nets == 0 {
			fatalf("need -preset, -list, or all of -rows/-cells/-nets")
		}
		cfg = gen.Config{Name: *name, Rows: *rows, Cells: *cells, Nets: *nets, TargetPins: *pins}
	}
	cfg.Seed = *seed

	c, err := gen.Generate(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := c.WriteJSON(w); err != nil {
		fatalf("writing: %v", err)
	}
	st := c.ComputeStats()
	fmt.Fprintf(os.Stderr, "gensc: %s: %d rows, %d cells, %d nets, %d pins, core width %d\n",
		st.Name, st.Rows, st.Cells, st.Nets, st.Pins, st.CoreW)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gensc: "+format+"\n", args...)
	os.Exit(1)
}
