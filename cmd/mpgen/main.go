// Command mpgen regenerates the mp message set's derived artifacts: the
// per-package mpwire_gen.go codec files and the mp_protocol.json manifest
// that internal/lint's manifest-aware analyzers enforce. Run it via
// `go generate ./...` (internal/parallel and internal/mp carry the
// directives) or directly; `mpgen -check` verifies the checked-in output
// is current without writing, and is wired into scripts/check.sh and CI
// as the drift gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"parroute/internal/mpgen"
)

func main() {
	check := flag.Bool("check", false, "verify generated files are current; write nothing")
	root := flag.String("root", ".", "directory inside the module to regenerate")
	flag.Parse()

	if *check {
		stale, err := mpgen.Check(*root)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(stale) > 0 {
			for _, f := range stale {
				fmt.Fprintf(os.Stderr, "mpgen: stale generated file: %s\n", f)
			}
			fmt.Fprintln(os.Stderr, "mpgen: run `go generate ./...` (or `go run parroute/cmd/mpgen`) and commit the result")
			os.Exit(1)
		}
		return
	}

	wrote, err := mpgen.Write(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range wrote {
		fmt.Println(f)
	}
}
