// Command parroutecheck runs this repository's static-analysis suite: the
// determinism, concurrency-hygiene, and message-passing protocol rules in
// internal/lint that the parallel routing algorithms depend on.
//
// Usage:
//
//	parroutecheck [-json] [-list] [packages]
//
// With no arguments or "./..." it checks every package of the module
// containing the working directory. Explicit package directories (for
// example ./internal/lint/testdata/src/fixture) are checked even when they
// live under testdata, which the module walk skips.
//
// -list prints the registered rules with their one-line docs and exits.
// -json emits diagnostics as a JSON array on stdout (empty array when
// clean) for CI and editor integration; -list also honors it.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 when the
// module could not be loaded or type-checked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"parroute/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	listRules := flag.Bool("list", false, "print the registered rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parroutecheck [-json] [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Checks the module (./...) or explicit package directories.\nRules:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-22s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *listRules {
		os.Exit(list(*jsonOut))
	}
	os.Exit(run(flag.Args(), *jsonOut))
}

// ruleInfo is the -list -json record for one analyzer.
type ruleInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func list(jsonOut bool) int {
	analyzers := lint.Analyzers()
	if jsonOut {
		rules := make([]ruleInfo, 0, len(analyzers))
		for _, a := range analyzers {
			rules = append(rules, ruleInfo{Name: a.Name, Doc: a.Doc})
		}
		return emitJSON(rules)
	}
	for _, a := range analyzers {
		fmt.Printf("%-22s %s\n", a.Name, a.Doc)
	}
	return 0
}

func run(args []string, jsonOut bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
		return 2
	}
	wholeModule := len(args) == 0
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "all" {
			wholeModule = true
			continue
		}
		dirs = append(dirs, a)
	}

	var diags []lint.Diagnostic
	cfg := lint.DefaultConfig()
	if wholeModule {
		mod, err := lint.LoadModule(cwd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
			return 2
		}
		diags = append(diags, lint.Run(mod, cfg)...)
	}
	if len(dirs) > 0 {
		mod, err := lint.LoadDirs(cwd, dirs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
			return 2
		}
		diags = append(diags, lint.Run(mod, cfg)...)
	}
	if jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if rc := emitJSON(diags); rc != 0 {
			return rc
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "parroutecheck: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// emitJSON writes v indented to stdout.
func emitJSON(v any) int {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
		return 2
	}
	return 0
}
