// Command parroutecheck runs this repository's static-analysis suite: the
// determinism, concurrency-hygiene, and message-passing protocol rules in
// internal/lint that the parallel routing algorithms depend on.
//
// Usage:
//
//	parroutecheck [-json] [-list] [-analyzer name[,name]] [-timings] [packages]
//
// With no arguments or "./..." it checks every package of the module
// containing the working directory. Explicit package directories (for
// example ./internal/lint/testdata/src/fixture) are checked even when they
// live under testdata, which the module walk skips.
//
// -list prints the registered rules with their one-line docs and exits.
// -json emits diagnostics as a JSON array on stdout (empty array when
// clean) for CI and editor integration; -list also honors it.
// -analyzer restricts the run to a comma-separated subset of rules, for
// bisecting a slow or noisy analyzer; filtered runs skip the
// stale-suppression audit. -timings prints per-analyzer wall time to
// stderr, slowest first, which scripts/check.sh uses for the lint-gate
// runtime budget. The driver-level rules lint-directive and stale-allow
// are not listed: they run with every full suite.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 when the
// module could not be loaded or type-checked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"parroute/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	listRules := flag.Bool("list", false, "print the registered rules and exit")
	analyzerFlag := flag.String("analyzer", "", "run only the named analyzers (comma separated)")
	timings := flag.Bool("timings", false, "print per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parroutecheck [-json] [-list] [-analyzer name[,name]] [-timings] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Checks the module (./...) or explicit package directories.\nRules:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-22s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *listRules {
		os.Exit(list(*jsonOut))
	}
	os.Exit(run(flag.Args(), *jsonOut, splitAnalyzers(*analyzerFlag), *timings))
}

// ruleInfo is the -list -json record for one analyzer.
type ruleInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func list(jsonOut bool) int {
	analyzers := lint.Analyzers()
	if jsonOut {
		rules := make([]ruleInfo, 0, len(analyzers))
		for _, a := range analyzers {
			rules = append(rules, ruleInfo{Name: a.Name, Doc: a.Doc})
		}
		return emitJSON(rules)
	}
	for _, a := range analyzers {
		fmt.Printf("%-22s %s\n", a.Name, a.Doc)
	}
	return 0
}

// splitAnalyzers parses the -analyzer value into names.
func splitAnalyzers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func run(args []string, jsonOut bool, analyzers []string, timings bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
		return 2
	}
	wholeModule := len(args) == 0
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "all" {
			wholeModule = true
			continue
		}
		dirs = append(dirs, a)
	}

	var diags []lint.Diagnostic
	elapsed := map[string]time.Duration{}
	cfg := lint.DefaultConfig()
	opts := lint.RunOptions{Analyzers: analyzers}
	check := func(mod *lint.Module) int {
		got, times, err := lint.RunSuite(mod, cfg, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
			return 2
		}
		diags = append(diags, got...)
		for _, tm := range times {
			elapsed[tm.Name] += tm.Elapsed
		}
		return 0
	}
	if wholeModule {
		mod, err := lint.LoadModule(cwd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
			return 2
		}
		if rc := check(mod); rc != 0 {
			return rc
		}
	}
	if len(dirs) > 0 {
		mod, err := lint.LoadDirs(cwd, dirs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
			return 2
		}
		if rc := check(mod); rc != 0 {
			return rc
		}
	}
	if timings {
		printTimings(elapsed)
	}
	if jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if rc := emitJSON(diags); rc != 0 {
			return rc
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "parroutecheck: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// printTimings reports per-analyzer wall time to stderr, slowest first,
// summed across the module and explicit-directory runs.
func printTimings(elapsed map[string]time.Duration) {
	names := make([]string, 0, len(elapsed))
	for name := range elapsed {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if elapsed[names[i]] != elapsed[names[j]] {
			return elapsed[names[i]] > elapsed[names[j]]
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(os.Stderr, "parroutecheck: analyzer timings:\n")
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %-22s %v\n", name, elapsed[name].Round(time.Microsecond))
	}
}

// emitJSON writes v indented to stdout.
func emitJSON(v any) int {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
		return 2
	}
	return 0
}
