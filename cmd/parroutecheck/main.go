// Command parroutecheck runs this repository's static-analysis suite: the
// determinism and concurrency-hygiene rules in internal/lint that the
// parallel routing algorithms depend on.
//
// Usage:
//
//	parroutecheck [packages]
//
// With no arguments or "./..." it checks every package of the module
// containing the working directory. Explicit package directories (for
// example ./internal/lint/testdata/src/fixture) are checked even when they
// live under testdata, which the module walk skips.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 when the
// module could not be loaded or type-checked.
package main

import (
	"flag"
	"fmt"
	"os"

	"parroute/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parroutecheck [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Checks the module (./...) or explicit package directories.\nRules:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args()))
}

func run(args []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
		return 2
	}
	wholeModule := len(args) == 0
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "all" {
			wholeModule = true
			continue
		}
		dirs = append(dirs, a)
	}

	var diags []lint.Diagnostic
	cfg := lint.DefaultConfig()
	if wholeModule {
		mod, err := lint.LoadModule(cwd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
			return 2
		}
		diags = append(diags, lint.Run(mod, cfg)...)
	}
	if len(dirs) > 0 {
		mod, err := lint.LoadDirs(cwd, dirs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parroutecheck: %v\n", err)
			return 2
		}
		diags = append(diags, lint.Run(mod, cfg)...)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "parroutecheck: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
