package main

// The cross-process smoke test: build the real twgr binary, spawn one OS
// process per rank with -engine tcp -addr/-rank/-ranks, and require rank
// 0's result JSON to match a single-process run of the same options —
// the goldens' byte-for-byte determinism, demonstrated over actual
// sockets between actual processes rather than goroutines standing in
// for them.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parroute/internal/metrics"
)

// buildTwgr compiles the command under test into dir once per test run.
func buildTwgr(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "twgr")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback rendezvous address: bind, record, release.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// resultJSON parses a -out file and zeroes the wall-clock fields, the
// same normalization the golden oracle applies.
func resultJSON(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := metrics.ReadResultJSON(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	res.Elapsed = 0
	res.Phases = nil
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDistTwoProcessSmoke(t *testing.T) {
	dir := t.TempDir()
	bin := buildTwgr(t, dir)
	circuit := []string{"-preset", "small", "-gen-seed", "42", "-seed", "7", "-algo", "hybrid"}

	// The single-process reference: same circuit, same seed, two workers
	// on the inproc engine.
	soloOut := filepath.Join(dir, "solo.json")
	solo := exec.Command(bin, append(append([]string{}, circuit...),
		"-p", "2", "-engine", "inproc", "-out", soloOut)...)
	if out, err := solo.CombinedOutput(); err != nil {
		t.Fatalf("single-process run: %v\n%s", err, out)
	}

	// Two real OS processes meshed over loopback TCP.
	addr := freeAddr(t)
	distOut := filepath.Join(dir, "dist.json")
	procs := make([]*exec.Cmd, 2)
	outs := make([]bytes.Buffer, 2)
	for r := 0; r < 2; r++ {
		args := append(append([]string{}, circuit...),
			"-engine", "tcp", "-addr", addr, "-rank", fmt.Sprint(r), "-ranks", "2")
		if r == 0 {
			args = append(args, "-out", distOut)
		}
		procs[r] = exec.Command(bin, args...)
		procs[r].Stdout = &outs[r]
		procs[r].Stderr = &outs[r]
		if err := procs[r].Start(); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	done := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) { done <- procs[r].Wait() }(r)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("a rank failed: %v\nrank 0:\n%s\nrank 1:\n%s", err, outs[0].String(), outs[1].String())
			}
		case <-time.After(120 * time.Second):
			for _, p := range procs {
				_ = p.Process.Kill()
			}
			t.Fatalf("mesh hung\nrank 0:\n%s\nrank 1:\n%s", outs[0].String(), outs[1].String())
		}
	}
	if !strings.Contains(outs[1].String(), "rank 1 finished") {
		t.Errorf("rank 1 did not report worker completion:\n%s", outs[1].String())
	}

	want := resultJSON(t, soloOut)
	got := resultJSON(t, distOut)
	if !bytes.Equal(want, got) {
		t.Errorf("two-process result differs from the single-process run (len %d vs %d)\nrank 0 output:\n%s",
			len(want), len(got), outs[0].String())
	}
}
