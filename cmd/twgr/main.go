// twgr routes a standard-cell circuit with the TimberWolfSC-style global
// router, serially or with one of the paper's three parallel algorithms.
//
// Usage:
//
//	twgr -preset primary2                        # serial TWGR
//	twgr -preset avq.large -algo rowwise -p 8    # parallel, simulated SMP
//	twgr -in circuit.json -algo hybrid -p 4 -platform dmp
//	twgr -preset biomed -algo netwise -p 8 -engine inproc
//
// With -addr/-rank/-ranks, N separate twgr processes form one TCP mesh
// and route the circuit together (rank 0 reports the result):
//
//	twgr -preset primary2 -algo hybrid -engine tcp -addr 127.0.0.1:9300 -rank 0 -ranks 2
//	twgr -preset primary2 -algo hybrid -engine tcp -addr 127.0.0.1:9300 -rank 1 -ranks 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"parroute/internal/channel"
	"parroute/internal/circuit"
	"parroute/internal/metrics"
	"parroute/internal/parallel"
	"parroute/internal/pipeline"
	"parroute/internal/route"
	"parroute/internal/runcfg"
	"parroute/internal/viz"
)

func main() {
	run := runcfg.Default()
	sel := runcfg.DefaultCircuit()
	var dist runcfg.Dist
	runcfg.AddFlags(flag.CommandLine, &run)
	runcfg.AddCircuitFlags(flag.CommandLine, &sel)
	runcfg.AddDistFlags(flag.CommandLine, &dist)
	var (
		tracks  = flag.Bool("tracks", false, "run the detailed channel router on the result and report assigned tracks")
		svg     = flag.String("svg", "", "write the routed layout as SVG (serial algorithm only)")
		compare = flag.Bool("compare", false, "also run the serial baseline and report scaled quality")
		out     = flag.String("out", "", "write the routing result (wires + quality numbers) as JSON")
		verify  = flag.Bool("verify", false, "check routing invariants after the run (serial algorithm only)")
		verbose = flag.Bool("v", false, "print per-phase timings")
		trace   = flag.String("trace", "", "write the per-stage timeline (times, allocs, counters) as JSON")
		checkTr = flag.String("checktrace", "", "validate a -trace file and print its summary instead of routing")
		all     = false
	)
	flag.Parse()

	if *checkTr != "" {
		if err := checkTrace(*checkTr); err != nil {
			fatalf("%v", err)
		}
		return
	}

	// "all" is CLI sugar for the comparison table; the shared config only
	// knows real algorithms, so resolve it before building options.
	if run.Algo == "all" {
		all = true
		run.Algo = runcfg.AlgoSerial
	}

	c, err := sel.Load()
	if err != nil {
		fatalf("%v", err)
	}
	st := c.ComputeStats()
	fmt.Printf("circuit %s: %d rows, %d cells, %d nets, %d pins\n",
		st.Name, st.Rows, st.Cells, st.Nets, st.Pins)

	opts, err := run.Options()
	if err != nil {
		fatalf("%v", err)
	}
	if err := dist.Apply(&run, &opts); err != nil {
		fatalf("%v", err)
	}
	if dist.Addr != "" && (all || *compare) {
		// Both rerun parallel.Run, and each call would re-rendezvous the
		// whole mesh; a multi-process run routes exactly once.
		fatalf("-addr runs one algorithm once; drop -compare / -algo all")
	}

	ctx := context.Background()
	if run.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, run.Timeout)
		defer cancel()
	}

	if all {
		compareAll(ctx, c, opts)
		return
	}

	var res *metrics.Result
	var routed *circuit.Circuit // post-routing circuit, for -svg
	var tracer *pipeline.TraceRecorder
	if run.Serial() {
		rt := route.NewRouter(c.Clone(), opts.Route)
		var obs []pipeline.Observer
		if *trace != "" {
			// The serial path records the trace live, so it carries the
			// allocation deltas the merged parallel phases cannot.
			tracer = pipeline.NewTraceRecorder()
			obs = append(obs, tracer)
		}
		res, err = rt.Run(ctx, obs...)
		if err != nil {
			fatalf("routing: %v", timeoutHint(err, run.Timeout))
		}
		routed = rt.C
		if *verify {
			if err := rt.Verify(); err != nil {
				fatalf("verification failed: %v", err)
			}
			fmt.Println("verification passed: every net electrically complete, all invariants hold")
		}
	} else {
		res, err = parallel.Run(ctx, c, opts)
	}
	if err != nil {
		fatalf("routing: %v", timeoutHint(err, run.Timeout))
	}
	if *verify && !run.Serial() {
		fatalf("-verify requires -algo serial (parallel results are checked by the test suite)")
	}
	if res == nil {
		// A non-zero rank of a multi-process mesh: its worker ran to
		// completion and the merged result was gathered by rank 0's
		// process, so there is nothing to report (or write) here.
		fmt.Printf("rank %d finished; the merged result is reported by rank 0\n", dist.Rank)
		return
	}

	report(res, *verbose)
	if *tracks {
		sum := channel.RouteAll(c.NumChannels(), res.Wires)
		fmt.Printf("detailed channel routing: %d assigned tracks (density lower bound %d, "+
			"%d vertical constraints broken)"+"\n",
			sum.AssignedTracks, sum.DensityTracks, sum.BrokenConstraints)
	}
	if *svg != "" {
		if routed == nil {
			fatalf("-svg requires -algo serial (the parallel results hold no merged layout)")
		}
		f, err := os.Create(*svg)
		if err != nil {
			fatalf("%v", err)
		}
		if err := viz.WriteSVG(f, routed, res.Wires, viz.Options{}); err != nil {
			f.Close()
			fatalf("rendering: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing svg: %v", err)
		}
		fmt.Printf("layout written to %s"+"\n", *svg)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			fatalf("writing result: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing result: %v", err)
		}
		fmt.Printf("result written to %s"+"\n", *out)
	}
	if *trace != "" {
		var tr *pipeline.Trace
		if tracer != nil {
			tr = tracer.Trace(st.Name, res.Algo, res.Procs)
		} else {
			tr = pipeline.TraceFromPhases(st.Name, res.Algo, res.Procs, res.Phases)
		}
		if err := writeTrace(*trace, tr); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("trace written to %s"+"\n", *trace)
	}
	if *compare && !run.Serial() {
		base, err := parallel.RunBaseline(ctx, c, opts)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		fmt.Printf("vs serial: scaled tracks %.3f, scaled area %.3f, speedup %.2f\n",
			res.ScaledTracks(base), res.ScaledArea(base), res.Speedup(base))
	}
}

// compareAll runs the serial baseline and all three parallel algorithms,
// printing one comparison row each.
func compareAll(ctx context.Context, c *circuit.Circuit, opts parallel.Options) {
	base, err := parallel.RunBaseline(ctx, c, opts)
	if err != nil {
		fatalf("baseline: %v", err)
	}
	fmt.Printf("%-8s  %10s  %8s  %13s  %12s\n", "algo", "time", "speedup", "scaled tracks", "feedthroughs")
	fmt.Printf("%-8s  %10v  %8s  %13s  %12d\n", "serial", base.Elapsed, "1.00", "1.000", base.Feedthroughs)
	for _, algo := range parallel.Algorithms() {
		o := opts
		o.Algo = algo
		res, err := parallel.Run(ctx, c, o)
		if err != nil {
			fatalf("%v: %v", algo, err)
		}
		fmt.Printf("%-8v  %10v  %8.2f  %13.3f  %12d\n",
			algo, res.Elapsed, res.Speedup(base), res.ScaledTracks(base), res.Feedthroughs)
	}
}

func report(res *metrics.Result, verbose bool) {
	fmt.Printf("algorithm %s on %d proc(s): %v\n", res.Algo, res.Procs, res.Elapsed)
	fmt.Printf("  total tracks: %d\n", res.TotalTracks)
	fmt.Printf("  area:         %d\n", res.Area)
	fmt.Printf("  wirelength:   %d\n", res.Wirelength)
	fmt.Printf("  feedthroughs: %d\n", res.Feedthroughs)
	fmt.Printf("  switchable:   %d wires, %d flips\n", res.SwitchableWires, res.SwitchFlips)
	if res.ForcedEdges > 0 {
		fmt.Printf("  WARNING: %d forced edges (connectivity gaps)\n", res.ForcedEdges)
	}
	if res.Degraded {
		fmt.Printf("  DEGRADED: a rank was lost mid-phase; this is the serial fallback result\n")
	}
	if res.Faults != nil {
		fmt.Printf("  faults:       %v\n", res.Faults)
	}
	if verbose {
		for _, ph := range res.Phases {
			fmt.Printf("  phase %-16s %v\n", ph.Name, ph.Elapsed)
		}
	}
}

// writeTrace writes the timeline to path (or stdout for "-").
func writeTrace(path string, tr *pipeline.Trace) error {
	if path == "-" {
		return pipeline.WriteTrace(os.Stdout, tr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pipeline.WriteTrace(f, tr); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}

// checkTrace validates a trace file written by -trace and prints a
// one-line-per-stage summary — the CI smoke step for the trace schema.
func checkTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := pipeline.ReadTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(tr.Stages) == 0 {
		return fmt.Errorf("%s: trace has no stages", path)
	}
	var total time.Duration
	for _, st := range tr.Stages {
		if st.Name == "" {
			return fmt.Errorf("%s: trace has an unnamed stage", path)
		}
		total += time.Duration(st.WallNS)
	}
	fmt.Printf("trace ok: %s %s on %d proc(s), %d stages, %v total\n",
		tr.Circuit, tr.Algo, tr.Procs, len(tr.Stages), total)
	for _, st := range tr.Stages {
		fmt.Printf("  stage %-16s %v", st.Name, time.Duration(st.WallNS))
		for _, c := range st.Counters {
			fmt.Printf("  %s=%d", c.Name, c.Value)
		}
		if st.Error != "" {
			fmt.Printf("  ERROR: %s", st.Error)
		}
		fmt.Println()
	}
	return nil
}

// timeoutHint labels cancellation errors with the flag that caused them.
func timeoutHint(err error, timeout time.Duration) error {
	if timeout > 0 && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		return fmt.Errorf("run exceeded -timeout %v: %w", timeout, err)
	}
	return err
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "twgr: "+format+"\n", args...)
	os.Exit(1)
}
