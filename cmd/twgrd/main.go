// twgrd is the long-running routing daemon: an HTTP/JSON front end over
// the parallel TWGR pipeline with an admission-controlled worker pool, a
// result cache, per-stage progress streaming, and graceful drain.
//
// Usage:
//
//	twgrd -addr :8745                          # defaults: 4 workers, queue 64
//	twgrd -addr :8745 -jobs 8 -queue 256 -cache 1024
//	twgrd -algo hybrid -p 4 -timeout 30s       # per-job defaults (shared flag set with twgr)
//
// Submit a job (see internal/service for the envelope format):
//
//	curl -s localhost:8745/v1/jobs -d '{"proto":"twgrd/1","kind":"job.submit",...}'
//
// SIGTERM/SIGINT starts a graceful drain: new computations are rejected
// with 503, in-flight jobs finish and flush, then the process exits. A
// second signal aborts immediately, cancelling in-flight jobs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parroute/internal/runcfg"
	"parroute/internal/service"
)

func main() {
	// Per-job default knobs come from the same flag table as cmd/twgr
	// (internal/runcfg), so the two binaries cannot drift; a job spec
	// field left zero inherits the flag value.
	defaults := runcfg.Default()
	runcfg.AddFlags(flag.CommandLine, &defaults)
	var (
		addr    = flag.String("addr", "localhost:8745", "listen address")
		jobs    = flag.Int("jobs", 4, "worker-pool size (concurrent routing jobs)")
		queue   = flag.Int("queue", 64, "admission queue depth; a full queue rejects with 429")
		cache   = flag.Int("cache", 256, "result-cache entries")
		genSeed = flag.Uint64("gen-seed", 7, "preset generation seed jobs inherit by default")
		grace   = flag.Duration("grace", 30*time.Second, "drain grace period after SIGTERM before in-flight jobs are cancelled")
	)
	flag.Parse()

	if err := defaults.Validate(); err != nil {
		fatalf("%v", err)
	}

	srv := service.New(service.Config{
		Workers:      *jobs,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		Defaults:     defaults,
		GenSeed:      *genSeed,
	})

	// Worker-pool lifetime: poolCtx outlives the first SIGTERM so the
	// drain can finish in-flight jobs; it is cancelled when the drain
	// completes, times out, or a second signal demands a hard stop.
	poolCtx, stopPool := context.WithCancel(context.Background())
	defer stopPool()
	srv.Start(poolCtx)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stopSignals()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("twgrd: listening on %s (%d job workers, queue %d, cache %d)\n", *addr, *jobs, *queue, *cache)

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-sigCtx.Done():
	}

	// Graceful drain: stop admitting, let the pool flush, then stop.
	fmt.Println("twgrd: draining (in-flight jobs will finish; signal again to abort)")
	stopSignals() // a second signal now kills the process the default way
	hardStop, stopHard := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stopHard()

	select {
	case <-srv.Drain():
		fmt.Println("twgrd: drained cleanly")
	case <-time.After(*grace):
		fmt.Println("twgrd: drain grace period expired, cancelling in-flight jobs")
	case <-hardStop.Done():
		fmt.Println("twgrd: second signal, cancelling in-flight jobs")
	}
	stopPool()
	srv.Wait()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("shutdown: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("twgrd: exit — %d submitted, %d completed, %d cache hits, %d rejected overload\n",
		st.Submitted, st.Completed, st.CacheHits, st.RejectedOverload)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "twgrd: "+format+"\n", args...)
	os.Exit(1)
}
