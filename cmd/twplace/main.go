// twplace is the placement half of the flow: it improves (or first
// deliberately scrambles, to simulate an unplaced netlist) a standard-cell
// circuit with the simulated-annealing placer and writes the placed
// circuit as JSON for twgr to route.
//
// Usage:
//
//	twplace -preset primary2 -scramble -o placed.json
//	twgr -in placed.json
package main

import (
	"flag"
	"fmt"
	"os"

	"parroute/internal/circuit"
	"parroute/internal/gen"
	"parroute/internal/place"
)

func main() {
	var (
		preset   = flag.String("preset", "", "start from a named synthetic benchmark circuit")
		in       = flag.String("in", "", "start from a gensc JSON file")
		out      = flag.String("o", "", "output file for the placed circuit (default stdout)")
		seed     = flag.Uint64("seed", 7, "annealing (and generation) seed")
		scramble = flag.Int("scramble", 0, "random swaps to apply before placing (0 = keep the input placement)")
		moves    = flag.Int("moves", 0, "annealing moves per cell per temperature step (0 = default)")
		steps    = flag.Int("steps", 0, "temperature steps (0 = default)")
	)
	flag.Parse()

	c, err := load(*preset, *in, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	before := place.TotalHPWL(c)
	if *scramble > 0 {
		place.Scramble(c, *seed, *scramble)
		fmt.Fprintf(os.Stderr, "twplace: scrambled %d swaps: HPWL %d -> %d\n",
			*scramble, before, place.TotalHPWL(c))
	}
	res, err := place.Anneal(c, place.Options{
		Seed: *seed, MovesPerCell: *moves, Steps: *steps,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "twplace: annealed %d moves (%d accepted): HPWL %d -> %d\n",
		res.Moves, res.Accepted, res.InitialHPWL, res.FinalHPWL)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := c.WriteJSON(w); err != nil {
		fatalf("writing: %v", err)
	}
}

func load(preset, in string, seed uint64) (*circuit.Circuit, error) {
	switch {
	case preset != "" && in != "":
		return nil, fmt.Errorf("use -preset or -in, not both")
	case preset != "":
		return gen.Benchmark(preset, seed)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ReadJSON(f)
	}
	return nil, fmt.Errorf("need -preset or -in")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "twplace: "+format+"\n", args...)
	os.Exit(1)
}
