// Package parroute is a reproduction of "Parallel Global Routing
// Algorithms for Standard Cells" (Xing, Banerjee, Chandy — IPPS 1997): the
// TimberWolfSC-style global router for row-based standard cells plus the
// paper's three parallel algorithms (row-wise, net-wise and hybrid pin
// partition) on a message-passing substrate with simulated SMP/DMP
// machines, synthetic MCNC-like benchmark circuits, and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for measured-vs-paper results. The root-level benchmarks
// in bench_test.go drive the same experiment harness as cmd/benchtab.
package parroute
