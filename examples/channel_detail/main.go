// channel_detail closes the loop between the global router and the
// detailed router: it globally routes a circuit with TWGR, then runs the
// dogleg-free constrained left-edge channel router on every channel and
// compares the tracks actually assigned against the density lower bound
// the global router optimized — per channel and in total. It can also
// dump the realized layout as SVG.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"parroute/internal/channel"
	"parroute/internal/gen"
	"parroute/internal/route"
	"parroute/internal/viz"
)

func main() {
	name := flag.String("circuit", "primary2", "benchmark circuit")
	seed := flag.Uint64("seed", 7, "circuit and routing seed")
	svg := flag.String("svg", "", "write the realized layout as SVG")
	worst := flag.Int("worst", 5, "how many worst channels to list")
	flag.Parse()

	c, err := gen.Benchmark(*name, *seed)
	if err != nil {
		log.Fatal(err)
	}
	rt := route.NewRouter(c.Clone(), route.Options{Seed: *seed})
	res, err := rt.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s globally routed: %d density tracks in %v\n",
		*name, res.TotalTracks, res.Elapsed)

	sum := channel.RouteAll(c.NumChannels(), res.Wires)
	fmt.Printf("detailed routing:   %d assigned tracks (+%.1f%% over the lower bound), "+
		"%d vertical constraints broken\n",
		sum.AssignedTracks,
		100*float64(sum.AssignedTracks-sum.DensityTracks)/float64(sum.DensityTracks),
		sum.BrokenConstraints)

	// Channels where vertical constraints cost the most extra tracks.
	type over struct{ ch, extra, density int }
	var overs []over
	byCh := channel.FromWires(c.NumChannels(), res.Wires)
	for ch := range byCh {
		d := channel.Density(byCh[ch])
		if extra := sum.PerChannel[ch].Tracks - d; extra > 0 {
			overs = append(overs, over{ch, extra, d})
		}
	}
	for i := 0; i < len(overs); i++ {
		for j := i + 1; j < len(overs); j++ {
			if overs[j].extra > overs[i].extra {
				overs[i], overs[j] = overs[j], overs[i]
			}
		}
	}
	if len(overs) > *worst {
		overs = overs[:*worst]
	}
	if len(overs) == 0 {
		fmt.Println("every channel routed at its density lower bound")
	} else {
		fmt.Println("channels needing extra tracks for vertical constraints:")
		for _, o := range overs {
			fmt.Printf("  channel %3d: density %3d -> %3d tracks (+%d)\n",
				o.ch, o.density, o.density+o.extra, o.extra)
		}
	}

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := viz.WriteSVG(f, rt.C, res.Wires, viz.Options{}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("layout written to %s\n", *svg)
	}
}
