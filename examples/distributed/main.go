// distributed runs the hybrid algorithm over the TCP engine: every worker
// communicates exclusively through gob-encoded messages on loopback
// sockets — the deployment shape of the paper's Intel Paragon runs, with
// real serialization and kernel round trips on every message. It then
// repeats the run on the simulated DMP machine (the Paragon cost model)
// and on the simulated SMP, so the three timing regimes can be compared
// side by side; the routing result is identical in all three.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"parroute/internal/gen"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/parallel"
	"parroute/internal/route"
)

func main() {
	name := flag.String("circuit", "biomed", "benchmark circuit")
	procs := flag.Int("p", 4, "worker count")
	seed := flag.Uint64("seed", 7, "circuit and routing seed")
	flag.Parse()

	c, err := gen.Benchmark(*name, *seed)
	if err != nil {
		log.Fatal(err)
	}
	base, err := parallel.RunBaseline(context.Background(), c, parallel.Options{
		Procs: 1, Route: route.Options{Seed: *seed},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, hybrid algorithm, %d workers (serial: %d tracks, %v)\n\n",
		*name, *procs, base.TotalTracks, base.Elapsed)

	run := func(label string, mode mp.Mode, model mp.CostModel) *metrics.Result {
		res, err := parallel.Run(context.Background(), c, parallel.Options{
			Algo:  parallel.Hybrid,
			Procs: *procs,
			Mode:  mode,
			Model: model,
			Route: route.Options{Seed: *seed},
		})
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s %10v  tracks=%d  scaled=%.3f\n",
			label, res.Elapsed, res.TotalTracks, res.ScaledTracks(base))
		return res
	}

	tcp := run("tcp sockets (wall clock)", mp.TCP, mp.CostModel{})
	smp := run("simulated SMP (virtual)", mp.Virtual, mp.SMP())
	dmp := run("simulated DMP (virtual)", mp.Virtual, mp.DMP())

	if tcp.TotalTracks != smp.TotalTracks || smp.TotalTracks != dmp.TotalTracks {
		log.Fatalf("engines disagree on routing: %d / %d / %d tracks",
			tcp.TotalTracks, smp.TotalTracks, dmp.TotalTracks)
	}
	fmt.Println("\nall engines produced identical routing; only the clocks differ")
}
