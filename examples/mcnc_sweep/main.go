// mcnc_sweep reproduces the paper's headline experiment end to end: all
// six MCNC-like circuits, the three parallel algorithms, 2/4/8 workers on
// the simulated SMP, reporting scaled track counts and speedups against
// the serial TWGR baseline.
//
// This is the long-form version of `benchtab -all`; run with -short for a
// two-circuit pass.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"parroute/internal/gen"
	"parroute/internal/parallel"
	"parroute/internal/route"
)

func main() {
	short := flag.Bool("short", false, "only the two smallest circuits")
	seed := flag.Uint64("seed", 7, "circuit and routing seed")
	flag.Parse()

	circuits := gen.CircuitNames()
	if *short {
		circuits = circuits[:2]
	}
	procs := []int{2, 4, 8}

	for _, name := range circuits {
		c, err := gen.Benchmark(name, *seed)
		if err != nil {
			log.Fatalf("generating %s: %v", name, err)
		}
		base, err := parallel.RunBaseline(context.Background(), c, parallel.Options{
			Procs: 1, Route: route.Options{Seed: *seed},
		})
		if err != nil {
			log.Fatalf("serial %s: %v", name, err)
		}
		fmt.Printf("\n%s: serial %d tracks in %v\n", name, base.TotalTracks, base.Elapsed)
		fmt.Printf("  %-8s", "")
		for _, p := range procs {
			fmt.Printf("  %12s", fmt.Sprintf("%d procs", p))
		}
		fmt.Println()
		for _, algo := range parallel.Algorithms() {
			fmt.Printf("  %-8v", algo)
			for _, p := range procs {
				res, err := parallel.Run(context.Background(), c, parallel.Options{
					Algo: algo, Procs: p, Route: route.Options{Seed: *seed},
				})
				if err != nil {
					log.Fatalf("%s %v p=%d: %v", name, algo, p, err)
				}
				fmt.Printf("  %5.3f/%5.2fx", res.ScaledTracks(base), res.Speedup(base))
			}
			fmt.Println()
		}
	}
	fmt.Println("\n(cells are scaled-tracks/speedup; scaled tracks 1.000 = serial quality)")
}
