// partition_ablation compares the paper's four net-partition heuristics
// (§5) on the clock-heavy avq.large circuit: how evenly each spreads the
// pin load and the Steiner-construction cost across 8 workers, and what
// routing quality the hybrid algorithm reaches with each.
//
// The paper's recommendation is the pin-number-weight partition, which
// schedules the giant clock nets first and round-robins them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"parroute/internal/gen"
	"parroute/internal/parallel"
	"parroute/internal/partition"
	"parroute/internal/route"
)

func main() {
	name := flag.String("circuit", "avq.large", "benchmark circuit")
	procs := flag.Int("p", 8, "worker count")
	seed := flag.Uint64("seed", 7, "circuit and routing seed")
	flag.Parse()

	c, err := gen.Benchmark(*name, *seed)
	if err != nil {
		log.Fatal(err)
	}
	blocks, err := partition.RowBlocks(c, *procs)
	if err != nil {
		log.Fatal(err)
	}
	base, err := parallel.RunBaseline(context.Background(), c, parallel.Options{
		Procs: 1, Route: route.Options{Seed: *seed},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d workers (serial: %d tracks in %v)\n\n",
		*name, *procs, base.TotalTracks, base.Elapsed)
	fmt.Printf("%-10s  %14s  %18s  %13s  %8s\n",
		"method", "pin imbalance", "steiner imbalance", "scaled tracks", "speedup")

	for _, m := range partition.Methods() {
		owner, err := partition.Nets(c, blocks, *procs, partition.Config{Method: m})
		if err != nil {
			log.Fatal(err)
		}
		load := partition.Load(c, owner, *procs)
		sload := partition.SteinerLoad(c, owner, *procs)
		res, err := parallel.Run(context.Background(), c, parallel.Options{
			Algo:  parallel.Hybrid,
			Procs: *procs,
			Route: route.Options{Seed: *seed},
			Net:   partition.Config{Method: m},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v  %14.2f  %18.2f  %13.3f  %7.2fx\n",
			m, load.Imbalance, sload.Imbalance, res.ScaledTracks(base), res.Speedup(base))
	}
	fmt.Println("\n(imbalance = max worker load / average; 1.00 is perfect)")
}
