// place_and_route closes the full TimberWolfSC loop the paper sits
// inside: placement -> global routing. It takes a circuit, destroys its
// placement (standing in for an unplaced netlist), re-places it with the
// simulated-annealing placer, and routes all three versions — showing how
// placement quality flows straight into routing quality, which is why the
// global router receives TimberWolfSC placements in the first place.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"parroute/internal/gen"
	"parroute/internal/place"
	"parroute/internal/route"
)

func main() {
	seed := flag.Uint64("seed", 7, "circuit, scramble and annealing seed")
	flag.Parse()

	// A small circuit keeps the annealing demo quick.
	c, err := gen.Generate(gen.Config{
		Name: "demo", Rows: 10, Cells: 400, Nets: 420, TargetPins: 1500, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, hpwl int64, tracks int, fts int) {
		fmt.Printf("%-22s HPWL %8d   tracks %5d   feedthroughs %5d\n", label, hpwl, tracks, fts)
	}

	res, err := route.Route(context.Background(), c, route.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	show("generated placement", place.TotalHPWL(c), res.TotalTracks, res.Feedthroughs)

	scrambled := c.Clone()
	place.Scramble(scrambled, *seed, 10*len(c.Cells))
	res, err = route.Route(context.Background(), scrambled, route.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	show("scrambled placement", place.TotalHPWL(scrambled), res.TotalTracks, res.Feedthroughs)

	annealed := scrambled.Clone()
	stats, err := place.Anneal(annealed, place.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	res, err = route.Route(context.Background(), annealed, route.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	show("annealed placement", place.TotalHPWL(annealed), res.TotalTracks, res.Feedthroughs)

	fmt.Printf("\nannealer: %d moves, %d accepted, HPWL %d -> %d\n",
		stats.Moves, stats.Accepted, stats.InitialHPWL, stats.FinalHPWL)
	fmt.Println("placement locality flows directly into channel density and feedthrough count.")
}
