// Quickstart: generate a small synthetic standard-cell circuit, run the
// serial TWGR global router on it, and print the quality numbers the paper
// reports (track count, area, feedthroughs).
package main

import (
	"context"
	"fmt"
	"log"

	"parroute/internal/gen"
	"parroute/internal/route"
)

func main() {
	// A scaled-down circuit with primary2-like structure: 8 rows, a few
	// hundred cells and nets.
	c := gen.Small(42)
	if err := c.Validate(); err != nil {
		log.Fatalf("generated circuit invalid: %v", err)
	}
	stats := c.ComputeStats()
	fmt.Printf("circuit %s: %d rows, %d cells, %d nets, %d pins\n",
		stats.Name, stats.Rows, stats.Cells, stats.Nets, stats.Pins)

	res, err := route.Route(context.Background(), c, route.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("routed in %v\n", res.Elapsed)
	fmt.Printf("  total tracks:   %d\n", res.TotalTracks)
	fmt.Printf("  area:           %d\n", res.Area)
	fmt.Printf("  wirelength:     %d\n", res.Wirelength)
	fmt.Printf("  feedthroughs:   %d\n", res.Feedthroughs)
	fmt.Printf("  switchable:     %d wires, %d flips taken\n",
		res.SwitchableWires, res.SwitchFlips)
	fmt.Printf("  coarse flips:   %d\n", res.CoarseFlips)
	fmt.Printf("  forced edges:   %d (0 = every net connected through adjacent rows)\n",
		res.ForcedEdges)
	for _, ph := range res.Phases {
		fmt.Printf("  phase %-16s %v\n", ph.Name, ph.Elapsed)
	}
}
