module parroute

go 1.22
