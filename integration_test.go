// Repository-level integration tests: route the full benchmark circuits
// end to end and check the invariants that hold for a correct global
// route. The heavyweight cases are skipped under -short.
package parroute_test

import (
	"context"
	"testing"

	"parroute/internal/channel"
	"parroute/internal/gen"
	"parroute/internal/metrics"
	"parroute/internal/parallel"
	"parroute/internal/partition"
	"parroute/internal/route"
)

// checkResult asserts the invariants every routing result must satisfy.
func checkResult(t *testing.T, name string, numChannels int, res *metrics.Result) {
	t.Helper()
	if res.ForcedEdges != 0 {
		t.Errorf("%s: %d forced edges (connectivity gaps)", name, res.ForcedEdges)
	}
	if res.TotalTracks <= 0 || res.Area <= 0 || res.Wirelength <= 0 {
		t.Errorf("%s: degenerate quality numbers: %+v", name, res)
	}
	if len(res.ChannelDensity) != numChannels {
		t.Errorf("%s: %d channel densities for %d channels",
			name, len(res.ChannelDensity), numChannels)
	}
	// Densities recompute identically from the wires.
	d := metrics.ChannelDensities(numChannels, res.Wires)
	for ch := range d {
		if d[ch] != res.ChannelDensity[ch] {
			t.Errorf("%s: channel %d density %d, recomputed %d",
				name, ch, res.ChannelDensity[ch], d[ch])
		}
	}
	// Every wire lies within the core and in a valid channel.
	for i := range res.Wires {
		w := &res.Wires[i]
		if w.Channel < 0 || w.Channel >= numChannels {
			t.Errorf("%s: wire %d in channel %d", name, i, w.Channel)
		}
		if !w.Span.Empty() && (w.Span.Lo < 0 || w.Span.Hi > res.CoreWidth) {
			t.Errorf("%s: wire %d span %v outside core width %d",
				name, i, w.Span, res.CoreWidth)
		}
	}
	// The detailed channel router can realize the result with a bounded
	// premium over the density lower bound.
	sum := channel.RouteAll(numChannels, res.Wires)
	if sum.DensityTracks != res.TotalTracks {
		t.Errorf("%s: channel density sum %d != result tracks %d",
			name, sum.DensityTracks, res.TotalTracks)
	}
	if sum.AssignedTracks < sum.DensityTracks ||
		float64(sum.AssignedTracks) > 1.2*float64(sum.DensityTracks) {
		t.Errorf("%s: assigned %d tracks for density %d",
			name, sum.AssignedTracks, sum.DensityTracks)
	}
}

func TestAllPresetsSerial(t *testing.T) {
	names := gen.CircuitNames()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := gen.Benchmark(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			res, err := route.Route(context.Background(), c, route.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, name, c.NumChannels(), res)
		})
	}
}

func TestAllPresetsParallel(t *testing.T) {
	names := []string{"primary2", "biomed"}
	if !testing.Short() {
		names = append(names, "industry3")
	}
	for _, name := range names {
		c, err := gen.Benchmark(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		base, err := parallel.RunBaseline(context.Background(), c, parallel.Options{Procs: 1, Route: route.Options{Seed: 1}})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range parallel.Algorithms() {
			res, err := parallel.Run(context.Background(), c, parallel.Options{
				Algo: algo, Procs: 8, Route: route.Options{Seed: 1},
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, algo, err)
			}
			label := name + "/" + algo.String()
			checkResult(t, label, c.NumChannels(), res)
			// The paper's quality band: parallel routing costs at most a
			// modest premium over serial, and never "improves" it by more
			// than noise (a big improvement would mean lost wires).
			scaled := res.ScaledTracks(base)
			if scaled < 0.97 || scaled > 1.25 {
				t.Errorf("%s: scaled tracks %.3f outside the credible band", label, scaled)
			}
		}
	}
}

func TestSerialQualityStableAcrossSeeds(t *testing.T) {
	// The randomized improvement steps must not make quality swing wildly
	// between seeds — TWGR's solution quality is "independent of the
	// routing order of the nets" (paper §1).
	c, err := gen.Benchmark("primary2", 7)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi int
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := route.Route(context.Background(), c, route.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if lo == 0 || res.TotalTracks < lo {
			lo = res.TotalTracks
		}
		if res.TotalTracks > hi {
			hi = res.TotalTracks
		}
	}
	if float64(hi-lo) > 0.05*float64(lo) {
		t.Fatalf("track counts swing %d..%d across seeds (>5%%)", lo, hi)
	}
}

func TestPartitionMethodsEndToEnd(t *testing.T) {
	c, err := gen.Benchmark("primary2", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range partition.Methods() {
		res, err := parallel.Run(context.Background(), c, parallel.Options{
			Algo:  parallel.RowWise,
			Procs: 4,
			Route: route.Options{Seed: 1},
			Net:   partition.Config{Method: m},
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		checkResult(t, "rowwise/"+m.String(), c.NumChannels(), res)
	}
}
