// Package bench regenerates the paper's evaluation artifacts: Table 1
// (circuit characteristics), Tables 2-4 with Figures 4-6 (scaled track
// counts and speedups of the three parallel algorithms), Table 5 (the
// hybrid algorithm across the SMP and DMP platform models), and the two
// ablations DESIGN.md calls out (net-partition heuristics, net-wise
// synchronization frequency).
//
// cmd/benchtab prints the full experiments; the repository-root benchmark
// suite (bench_test.go) drives the same code under `go test -bench`.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"

	"parroute/internal/circuit"
	"parroute/internal/gen"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/parallel"
	"parroute/internal/partition"
	"parroute/internal/route"
)

// Config selects what to run.
type Config struct {
	// Circuits to include (preset names). Default: the paper's six.
	Circuits []string
	// Procs are the worker counts of the scaled-track tables. Default
	// 1, 2, 4, 8 (the paper's SparcCenter columns).
	Procs []int
	// Seed drives circuit synthesis and routing.
	Seed uint64
	// Reps repeats each timed run and keeps the fastest, smoothing
	// measurement noise in the simulated times. Default 1.
	Reps int
	// Workers are the intra-rank route worker counts the serial rows of a
	// snapshot sweep (routing output is byte-identical at every setting,
	// so extra entries only add wall-clock scale points). Default {1}.
	Workers []int
}

// Normalize fills defaults.
func (c *Config) Normalize() {
	if len(c.Circuits) == 0 {
		c.Circuits = gen.CircuitNames()
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{1, 2, 4, 8}
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1}
	}
}

// Suite caches generated circuits and serial baselines so the tables and
// figures that share runs do not recompute them.
type Suite struct {
	cfg      Config
	circuits map[string]*circuit.Circuit
	bases    map[string]*metrics.Result
	runs     map[runKey]*metrics.Result
}

type runKey struct {
	circuit string
	algo    parallel.Algorithm
	procs   int
	model   string
	sync    int
	method  partition.Method
}

// NewSuite prepares a suite for the given configuration.
func NewSuite(cfg Config) *Suite {
	cfg.Normalize()
	return &Suite{
		cfg:      cfg,
		circuits: make(map[string]*circuit.Circuit),
		bases:    make(map[string]*metrics.Result),
		runs:     make(map[runKey]*metrics.Result),
	}
}

// Circuit returns (generating and caching) a named benchmark circuit.
func (s *Suite) Circuit(name string) (*circuit.Circuit, error) {
	if c, ok := s.circuits[name]; ok {
		return c, nil
	}
	c, err := gen.Benchmark(name, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.circuits[name] = c
	return c, nil
}

// Baseline returns the cached serial result for a circuit. Timing keeps
// the fastest of Reps runs.
func (s *Suite) Baseline(name string) (*metrics.Result, error) {
	if r, ok := s.bases[name]; ok {
		return r, nil
	}
	c, err := s.Circuit(name)
	if err != nil {
		return nil, err
	}
	// Results are deterministic across reps; only timing varies. Keep the
	// fastest.
	var best *metrics.Result
	for rep := 0; rep < s.cfg.Reps; rep++ {
		runtime.GC() // keep earlier runs' garbage out of this run's compute spans
		r, err := parallel.RunBaseline(context.Background(), c, parallel.Options{
			Procs: 1, Route: route.Options{Seed: s.cfg.Seed + 1},
		})
		if err != nil {
			return nil, err
		}
		if best == nil || r.Elapsed < best.Elapsed {
			best = r
		}
	}
	s.bases[name] = best
	return best, nil
}

// Run returns the cached parallel result for (circuit, algo, procs) under
// the given cost model (empty model name = SMP).
func (s *Suite) Run(name string, algo parallel.Algorithm, procs int,
	model mp.CostModel, sync int, method partition.Method) (*metrics.Result, error) {

	key := runKey{circuit: name, algo: algo, procs: procs, model: model.Name,
		sync: sync, method: method}
	if r, ok := s.runs[key]; ok {
		return r, nil
	}
	c, err := s.Circuit(name)
	if err != nil {
		return nil, err
	}
	var best *metrics.Result
	for rep := 0; rep < s.cfg.Reps; rep++ {
		runtime.GC() // keep earlier runs' garbage out of this run's compute spans
		r, err := parallel.Run(context.Background(), c, parallel.Options{
			Algo:               algo,
			Procs:              procs,
			Mode:               mp.Virtual,
			Model:              model,
			Route:              route.Options{Seed: s.cfg.Seed + 1},
			Net:                partition.Config{Method: method},
			NetwiseSyncPerPass: sync,
		})
		if err != nil {
			return nil, err
		}
		if best == nil || r.Elapsed < best.Elapsed {
			best = r
		}
	}
	s.runs[key] = best
	return best, nil
}

// writeTable renders rows with a header through a tabwriter.
func writeTable(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "\n%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Table1 prints the circuit characteristics table.
func (s *Suite) Table1(w io.Writer) error {
	rows := make([][]string, 0, len(s.cfg.Circuits))
	for _, name := range s.cfg.Circuits {
		c, err := s.Circuit(name)
		if err != nil {
			return err
		}
		st := c.ComputeStats()
		rows = append(rows, []string{
			name,
			fmt.Sprint(st.Rows), fmt.Sprint(st.Pins),
			fmt.Sprint(st.Cells), fmt.Sprint(st.Nets),
			fmt.Sprintf("%d", st.MaxDeg),
		})
	}
	writeTable(w, "Table 1: characteristics of test circuits (synthetic, MCNC-like)",
		[]string{"circuit", "rows", "pins", "cells", "nets", "max-degree"}, rows)
	return nil
}

// algoForTable maps table/figure numbers to algorithms: Table 2/Figure 4
// row-wise, Table 3/Figure 5 net-wise, Table 4/Figure 6 hybrid.
func algoForTable(table int) (parallel.Algorithm, error) {
	switch table {
	case 2:
		return parallel.RowWise, nil
	case 3:
		return parallel.NetWise, nil
	case 4:
		return parallel.Hybrid, nil
	}
	return 0, fmt.Errorf("bench: no scaled-track table %d", table)
}

// ScaledTracks prints Table 2, 3 or 4: scaled track counts per circuit
// and worker count for the table's algorithm.
func (s *Suite) ScaledTracks(w io.Writer, table int) error {
	algo, err := algoForTable(table)
	if err != nil {
		return err
	}
	header := []string{"circuit"}
	for _, p := range s.cfg.Procs {
		header = append(header, fmt.Sprintf("%d proc", p))
	}
	var rows [][]string
	for _, name := range s.cfg.Circuits {
		base, err := s.Baseline(name)
		if err != nil {
			return err
		}
		row := []string{name}
		for _, p := range s.cfg.Procs {
			var scaled float64
			if p == 1 {
				scaled = 1
			} else {
				r, err := s.Run(name, algo, p, mp.SMP(), 0, partition.PinWeight)
				if err != nil {
					return err
				}
				scaled = r.ScaledTracks(base)
			}
			row = append(row, fmt.Sprintf("%.3f", scaled))
		}
		rows = append(rows, row)
	}
	writeTable(w, fmt.Sprintf("Table %d: scaled track results of the %v pin partition algorithm",
		table, algo), header, rows)
	return nil
}

// figureAlgo maps figure numbers to algorithms.
func figureAlgo(figure int) (parallel.Algorithm, error) {
	switch figure {
	case 4:
		return parallel.RowWise, nil
	case 5:
		return parallel.NetWise, nil
	case 6:
		return parallel.Hybrid, nil
	}
	return 0, fmt.Errorf("bench: no speedup figure %d", figure)
}

// Speedups prints Figure 4, 5 or 6 as a table of speedups per circuit and
// worker count (the paper plots these as bar charts).
func (s *Suite) Speedups(w io.Writer, figure int) error {
	algo, err := figureAlgo(figure)
	if err != nil {
		return err
	}
	var procs []int
	for _, p := range s.cfg.Procs {
		if p > 1 {
			procs = append(procs, p)
		}
	}
	header := []string{"circuit"}
	for _, p := range procs {
		header = append(header, fmt.Sprintf("%d procs", p))
	}
	if len(procs) > 0 {
		header = append(header, fmt.Sprintf("(bar: speedup at %d procs)", procs[len(procs)-1]))
	}
	var rows [][]string
	sums := make([]float64, len(procs))
	for _, name := range s.cfg.Circuits {
		base, err := s.Baseline(name)
		if err != nil {
			return err
		}
		row := []string{name}
		var last float64
		for i, p := range procs {
			r, err := s.Run(name, algo, p, mp.SMP(), 0, partition.PinWeight)
			if err != nil {
				return err
			}
			sp := r.Speedup(base)
			sums[i] += sp
			last = sp
			row = append(row, fmt.Sprintf("%.2f", sp))
		}
		row = append(row, bar(last, 8))
		rows = append(rows, row)
	}
	avg := []string{"(average)"}
	for i := range procs {
		avg = append(avg, fmt.Sprintf("%.2f", sums[i]/float64(len(s.cfg.Circuits))))
	}
	if len(procs) > 0 {
		avg = append(avg, bar(sums[len(procs)-1]/float64(len(s.cfg.Circuits)), 8))
	}
	rows = append(rows, avg)
	writeTable(w, fmt.Sprintf("Figure %d: speedup results of the %v pin partition algorithm "+
		"(simulated %s machine)", figure, algo, mp.SMP().Name), header, rows)
	return nil
}

// Table5 prints the hybrid algorithm's absolute results on both platform
// models: serial reference, then per-platform time/speedup/scaled quality.
func (s *Suite) Table5(w io.Writer, smpProcs, dmpProcs int) error {
	header := []string{"circuit", "serial tracks", "serial area", "serial time",
		fmt.Sprintf("SMP%d time", smpProcs), "speedup", "scaled trk", "scaled area",
		fmt.Sprintf("DMP%d time", dmpProcs), "speedup", "scaled trk", "scaled area"}
	var rows [][]string
	for _, name := range s.cfg.Circuits {
		base, err := s.Baseline(name)
		if err != nil {
			return err
		}
		smp, err := s.Run(name, parallel.Hybrid, smpProcs, mp.SMP(), 0, partition.PinWeight)
		if err != nil {
			return err
		}
		dmp, err := s.Run(name, parallel.Hybrid, dmpProcs, mp.DMP(), 0, partition.PinWeight)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			name,
			fmt.Sprint(base.TotalTracks),
			fmt.Sprint(base.Area),
			fmtMS(base),
			fmtMS(smp), fmt.Sprintf("%.2f", smp.Speedup(base)),
			fmt.Sprintf("%.3f", smp.ScaledTracks(base)),
			fmt.Sprintf("%.3f", smp.ScaledArea(base)),
			fmtMS(dmp), fmt.Sprintf("%.2f", dmp.Speedup(base)),
			fmt.Sprintf("%.3f", dmp.ScaledTracks(base)),
			fmt.Sprintf("%.3f", dmp.ScaledArea(base)),
		})
	}
	writeTable(w, fmt.Sprintf("Table 5: hybrid pin partition on the simulated SMP (%d procs) "+
		"and DMP (%d procs) platforms", smpProcs, dmpProcs), header, rows)
	return nil
}

func fmtMS(r *metrics.Result) string {
	return fmt.Sprintf("%.1fms", float64(r.Elapsed.Microseconds())/1000)
}

// AblationPartition compares the four net-partition heuristics (paper §5)
// on one clock-heavy circuit: load balance and resulting quality.
func (s *Suite) AblationPartition(w io.Writer, circuitName string, procs int) error {
	c, err := s.Circuit(circuitName)
	if err != nil {
		return err
	}
	base, err := s.Baseline(circuitName)
	if err != nil {
		return err
	}
	blocks, err := partition.RowBlocks(c, procs)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, m := range partition.Methods() {
		owner, err := partition.Nets(c, blocks, procs, partition.Config{Method: m})
		if err != nil {
			return err
		}
		load := partition.Load(c, owner, procs)
		steinerLoad := partition.SteinerLoad(c, owner, procs)
		r, err := s.Run(circuitName, parallel.Hybrid, procs, mp.SMP(), 0, m)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			m.String(),
			fmt.Sprintf("%.2f", load.Imbalance),
			fmt.Sprintf("%.2f", steinerLoad.Imbalance),
			fmt.Sprintf("%.3f", r.ScaledTracks(base)),
			fmtMS(r),
			fmt.Sprintf("%.2f", r.Speedup(base)),
		})
	}
	writeTable(w, fmt.Sprintf("Ablation: net-partition heuristics on %s, hybrid, %d procs",
		circuitName, procs),
		[]string{"method", "pin imbalance", "steiner imbalance", "scaled tracks", "time", "speedup"},
		rows)
	return nil
}

// AblationPlatform runs the hybrid algorithm across platform models and
// processor counts, reproducing Table 5's SparcCenter-vs-Paragon story:
// the DMP is slower per message but catches up with more nodes.
func (s *Suite) AblationPlatform(w io.Writer, circuitName string, procs []int) error {
	base, err := s.Baseline(circuitName)
	if err != nil {
		return err
	}
	c, err := s.Circuit(circuitName)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, model := range []mp.CostModel{mp.SMP(), mp.DMP()} {
		for _, p := range procs {
			if p > len(c.Rows) {
				continue
			}
			r, err := s.Run(circuitName, parallel.Hybrid, p, model, 0, partition.PinWeight)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				fmt.Sprintf("%s @%d", model.Name, p),
				fmtMS(r),
				fmt.Sprintf("%.2f", r.Speedup(base)),
				fmt.Sprintf("%.3f", r.ScaledTracks(base)),
			})
		}
	}
	writeTable(w, fmt.Sprintf("Ablation: platform scaling on %s, hybrid (serial %s)",
		circuitName, fmtMS(base)),
		[]string{"platform@procs", "time", "speedup", "scaled tracks"}, rows)
	return nil
}

// AblationSync sweeps the net-wise synchronization frequency (§7.2): more
// syncs buy quality and cost time.
func (s *Suite) AblationSync(w io.Writer, circuitName string, procs int, syncs []int) error {
	base, err := s.Baseline(circuitName)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, sync := range syncs {
		r, err := s.Run(circuitName, parallel.NetWise, procs, mp.SMP(), sync, partition.PinWeight)
		if err != nil {
			return err
		}
		label := fmt.Sprint(sync)
		if sync < 0 {
			label = "none"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.3f", r.ScaledTracks(base)),
			fmtMS(r),
			fmt.Sprintf("%.2f", r.Speedup(base)),
			fmt.Sprint(r.SwitchFlips),
		})
	}
	writeTable(w, fmt.Sprintf("Ablation: net-wise synchronization frequency on %s, %d procs "+
		"(syncs per improvement pass)", circuitName, procs),
		[]string{"syncs/pass", "scaled tracks", "time", "speedup", "switch flips"}, rows)
	return nil
}

// bar renders a speedup as a proportional ASCII bar against the linear
// maximum, mirroring the paper's bar-chart figures.
func bar(v float64, max int) string {
	const width = 24
	n := int(v / float64(max) * width)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// MaxProcs returns the largest worker count valid for every configured
// circuit (bounded by the smallest row count).
func (s *Suite) MaxProcs() (int, error) {
	min := 1 << 30
	for _, name := range s.cfg.Circuits {
		c, err := s.Circuit(name)
		if err != nil {
			return 0, err
		}
		if len(c.Rows) < min {
			min = len(c.Rows)
		}
	}
	return min, nil
}

// SortedProcs returns the configured proc counts, ascending.
func (s *Suite) SortedProcs() []int {
	out := append([]int(nil), s.cfg.Procs...)
	sort.Ints(out)
	return out
}
