package bench

import (
	"bytes"
	"strings"
	"testing"

	"parroute/internal/mp"
	"parroute/internal/parallel"
	"parroute/internal/partition"
)

func quickSuite() *Suite {
	return NewSuite(Config{
		Circuits: []string{"primary2"},
		Procs:    []int{1, 2},
		Seed:     7,
	})
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	s := quickSuite()
	if err := s.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "primary2", "rows", "3014", "3029"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestScaledTracksTables(t *testing.T) {
	s := quickSuite()
	for _, table := range []int{2, 3, 4} {
		var buf bytes.Buffer
		if err := s.ScaledTracks(&buf, table); err != nil {
			t.Fatalf("table %d: %v", table, err)
		}
		out := buf.String()
		if !strings.Contains(out, "1.000") {
			t.Errorf("table %d: 1-proc column should be 1.000:\n%s", table, out)
		}
		if !strings.Contains(out, "primary2") {
			t.Errorf("table %d: missing circuit row", table)
		}
	}
	if err := s.ScaledTracks(&bytes.Buffer{}, 9); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestSpeedupFigures(t *testing.T) {
	s := quickSuite()
	for _, fig := range []int{4, 5, 6} {
		var buf bytes.Buffer
		if err := s.Speedups(&buf, fig); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if !strings.Contains(buf.String(), "(average)") {
			t.Errorf("figure %d missing average row", fig)
		}
	}
	if err := s.Speedups(&bytes.Buffer{}, 7); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestTable5Output(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	if err := s.Table5(&buf, 2, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 5", "SMP2", "DMP4", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing %q:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	if err := s.AblationPartition(&buf, "primary2", 4); err != nil {
		t.Fatal(err)
	}
	for _, m := range partition.Methods() {
		if !strings.Contains(buf.String(), m.String()) {
			t.Errorf("partition ablation missing method %v", m)
		}
	}
	buf.Reset()
	if err := s.AblationSync(&buf, "primary2", 4, []int{-1, 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "none") {
		t.Error("sync ablation should label the no-sync row")
	}
}

func TestSuiteCaching(t *testing.T) {
	s := quickSuite()
	a, err := s.Baseline("primary2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Baseline("primary2")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("baseline not cached")
	}
	r1, err := s.Run("primary2", parallel.RowWise, 2, mp.SMP(), 0, partition.PinWeight)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("primary2", parallel.RowWise, 2, mp.SMP(), 0, partition.PinWeight)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("run not cached")
	}
	// Different key -> different run.
	r3, err := s.Run("primary2", parallel.RowWise, 2, mp.DMP(), 0, partition.PinWeight)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("different cost model hit the same cache entry")
	}
}

func TestSuiteUnknownCircuit(t *testing.T) {
	s := NewSuite(Config{Circuits: []string{"nope"}})
	if err := s.Table1(&bytes.Buffer{}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestMaxProcsAndSortedProcs(t *testing.T) {
	s := NewSuite(Config{Circuits: []string{"primary2"}, Procs: []int{8, 1, 4}})
	mx, err := s.MaxProcs()
	if err != nil {
		t.Fatal(err)
	}
	if mx != 28 { // primary2 has 28 rows
		t.Fatalf("MaxProcs = %d", mx)
	}
	sp := s.SortedProcs()
	if sp[0] != 1 || sp[1] != 4 || sp[2] != 8 {
		t.Fatalf("SortedProcs = %v", sp)
	}
}

func TestAblationPlatform(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	if err := s.AblationPlatform(&buf, "primary2", []int{2, 4, 1000}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "smp @2") || !strings.Contains(out, "dmp @4") {
		t.Fatalf("platform rows missing:\n%s", out)
	}
	if strings.Contains(out, "@1000") {
		t.Fatal("impossible proc count not skipped")
	}
}

func TestScaledTracksStats(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Circuits: []string{"primary2"}, Procs: []int{1, 2}}
	if err := ScaledTracksStats(&buf, cfg, 2, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "over 2 seeds") || !strings.Contains(out, "[") {
		t.Fatalf("stats table malformed:\n%s", out)
	}
	if err := ScaledTracksStats(&buf, cfg, 2, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	if err := ScaledTracksStats(&buf, cfg, 9, []uint64{1}); err == nil {
		t.Fatal("unknown table accepted")
	}
}
