package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"parroute/internal/circuit"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/parallel"
	"parroute/internal/partition"
	"parroute/internal/route"
)

// ReportSchema identifies the on-disk format of BENCH_PR4.json. Bump it
// when a field changes meaning; readers reject unknown schemas so the perf
// baseline can't silently drift.
const ReportSchema = "parroute-bench/1"

// Report is the machine-readable perf trajectory point committed as
// BENCH_PR4.json. Baseline is the snapshot the acceptance criteria compare
// against (captured before an optimization lands); Current is the state of
// the tree the report was generated from.
type Report struct {
	Schema string `json:"schema"`
	Label  string `json:"label,omitempty"`

	Baseline *Snapshot `json:"baseline,omitempty"`
	Current  Snapshot  `json:"current"`

	// SerialSpeedupVsBaseline is the mean over circuits of baseline serial
	// wall-clock divided by current serial wall-clock; 0 when no baseline.
	SerialSpeedupVsBaseline float64 `json:"serialSpeedupVsBaseline,omitempty"`
}

// Snapshot is one measurement of the tree: serial wall-clock and
// allocation figures per circuit, plus parallel speedup/quality under the
// simulated SMP machine.
type Snapshot struct {
	GoVersion string   `json:"goVersion"`
	Seed      uint64   `json:"seed"`
	Reps      int      `json:"reps"`
	Circuits  []string `json:"circuits"`
	Procs     []int    `json:"procs"`
	Workers   []int    `json:"workers,omitempty"`

	Serial   []SerialRun   `json:"serial"`
	Parallel []ParallelRun `json:"parallel"`
}

// SerialRun is one serial TWGR measurement. Wall-clock keeps the fastest
// of Reps runs; the phase split comes from that run. AllocsPerOp and
// BytesPerOp are the heap figures of one full pipeline run.
type SerialRun struct {
	Circuit string `json:"circuit"`
	// Workers is the intra-rank route worker count of this measurement;
	// 0 or 1 is the canonical single-worker serial run (the speedup
	// denominator and the row the baseline comparison uses).
	Workers     int       `json:"workers,omitempty"`
	ElapsedNS   int64     `json:"elapsedNs"`
	Phases      []PhaseNS `json:"phases,omitempty"`
	AllocsPerOp int64     `json:"allocsPerOp"`
	BytesPerOp  int64     `json:"bytesPerOp"`
	TotalTracks int       `json:"totalTracks"`
	Area        int64     `json:"area"`
}

// PhaseNS is one named phase's wall time in nanoseconds with its
// stage-scoped counters (work items: segments, flips, wires, ...).
type PhaseNS struct {
	Name      string       `json:"name"`
	ElapsedNS int64        `json:"elapsedNs"`
	Counters  []CounterVal `json:"counters,omitempty"`
}

// CounterVal is one named stage counter in a PhaseNS.
type CounterVal struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// phasesNS converts result phases into their report form.
func phasesNS(phases []metrics.Phase) []PhaseNS {
	var out []PhaseNS
	for _, p := range phases {
		ph := PhaseNS{Name: p.Name, ElapsedNS: p.Elapsed.Nanoseconds()}
		for _, c := range p.Counters {
			ph.Counters = append(ph.Counters, CounterVal{Name: c.Name, Value: c.Value})
		}
		out = append(out, ph)
	}
	return out
}

// ParallelRun is one parallel-algorithm measurement on the simulated SMP
// machine: simulated wall-clock, speedup over the serial baseline, and the
// paper's scaled-tracks quality measure.
type ParallelRun struct {
	Circuit      string    `json:"circuit"`
	Algo         string    `json:"algo"`
	Procs        int       `json:"procs"`
	Model        string    `json:"model"`
	ElapsedNS    int64     `json:"elapsedNs"`
	Speedup      float64   `json:"speedup"`
	ScaledTracks float64   `json:"scaledTracks"`
	Phases       []PhaseNS `json:"phases,omitempty"`
}

// CollectSnapshot measures the tree under the given configuration. Serial
// timing keeps the fastest of cfg.Reps runs; allocation figures come from
// one additional instrumented run.
func CollectSnapshot(cfg Config) (*Snapshot, error) {
	cfg.Normalize()
	s := NewSuite(cfg)
	snap := &Snapshot{
		GoVersion: runtime.Version(),
		Seed:      cfg.Seed,
		Reps:      cfg.Reps,
		Circuits:  cfg.Circuits,
		Procs:     cfg.Procs,
	}
	if len(cfg.Workers) != 1 || cfg.Workers[0] != 1 {
		snap.Workers = cfg.Workers
	}

	for _, name := range cfg.Circuits {
		base, err := s.Baseline(name)
		if err != nil {
			return nil, err
		}
		c, err := s.Circuit(name)
		if err != nil {
			return nil, err
		}
		allocs, bytes, err := measureSerialAllocs(c, route.Options{Seed: cfg.Seed + 1})
		if err != nil {
			return nil, err
		}
		run := SerialRun{
			Circuit:     name,
			ElapsedNS:   base.Elapsed.Nanoseconds(),
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
			TotalTracks: base.TotalTracks,
			Area:        base.Area,
		}
		run.Phases = phasesNS(base.Phases)
		snap.Serial = append(snap.Serial, run)

		// Extra serial scale points: the same pipeline at higher intra-rank
		// worker counts. Output is byte-identical (the tracks/area fields
		// repeat), only wall-clock moves.
		for _, w := range cfg.Workers {
			if w <= 1 {
				continue
			}
			var best *metrics.Result
			for rep := 0; rep < cfg.Reps; rep++ {
				runtime.GC()
				r, err := parallel.RunBaseline(context.Background(), c, parallel.Options{
					Procs: 1, Route: route.Options{Seed: cfg.Seed + 1, Workers: w},
				})
				if err != nil {
					return nil, err
				}
				if best == nil || r.Elapsed < best.Elapsed {
					best = r
				}
			}
			snap.Serial = append(snap.Serial, SerialRun{
				Circuit:     name,
				Workers:     w,
				ElapsedNS:   best.Elapsed.Nanoseconds(),
				TotalTracks: best.TotalTracks,
				Area:        best.Area,
				Phases:      phasesNS(best.Phases),
			})
		}

		for _, procs := range cfg.Procs {
			if procs <= 1 {
				continue
			}
			for _, algo := range parallel.Algorithms() {
				r, err := s.Run(name, algo, procs, mp.SMP(), 0, partition.PinWeight)
				if err != nil {
					return nil, err
				}
				snap.Parallel = append(snap.Parallel, ParallelRun{
					Circuit:      name,
					Algo:         algo.String(),
					Procs:        procs,
					Model:        mp.SMP().Name,
					ElapsedNS:    r.Elapsed.Nanoseconds(),
					Speedup:      r.Speedup(base),
					ScaledTracks: r.ScaledTracks(base),
					Phases:       phasesNS(r.Phases),
				})
			}
		}
	}
	return snap, nil
}

// measureSerialAllocs runs the serial pipeline once and returns the heap
// allocations and bytes it performed. The clone happens before the
// measurement window so only the pipeline itself is counted.
func measureSerialAllocs(c *circuit.Circuit, opt route.Options) (allocs, bytes int64, err error) {
	clone := c.Clone()
	rt := route.NewRouter(clone, opt)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := rt.Run(context.Background()); err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs - before.Mallocs), int64(after.TotalAlloc - before.TotalAlloc), nil
}

// BuildReport assembles a new report from the freshly collected snapshot,
// carrying the baseline forward: prev's baseline if it had one, otherwise
// prev's current snapshot (so the first report generated before an
// optimization naturally becomes the baseline of the next). A nil prev
// yields a report with no baseline.
func BuildReport(prev *Report, snap Snapshot, label string) *Report {
	r := &Report{Schema: ReportSchema, Label: label, Current: snap}
	if prev != nil {
		if prev.Baseline != nil {
			r.Baseline = prev.Baseline
		} else {
			base := prev.Current
			r.Baseline = &base
		}
		r.SerialSpeedupVsBaseline = serialSpeedup(r.Baseline, &r.Current)
	}
	return r
}

// serialSpeedup is the mean over matching circuits of baseline elapsed
// divided by current elapsed, comparing only the canonical single-worker
// rows (multi-worker scale points are wall-clock extras, not the
// trajectory the baseline pins).
func serialSpeedup(base *Snapshot, cur *Snapshot) float64 {
	byName := make(map[string]int64, len(base.Serial))
	for _, r := range base.Serial {
		if r.Workers <= 1 {
			byName[r.Circuit] = r.ElapsedNS
		}
	}
	var ratios []float64
	for _, r := range cur.Serial {
		if r.Workers > 1 {
			continue
		}
		if b, ok := byName[r.Circuit]; ok && r.ElapsedNS > 0 {
			ratios = append(ratios, float64(b)/float64(r.ElapsedNS))
		}
	}
	return Mean(ratios)
}

// WriteReport serializes the report as indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report and validates its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: decoding report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("bench: report schema %q, want %q", r.Schema, ReportSchema)
	}
	return &r, nil
}
