package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", m)
	}
	if m := Mean([]float64{3}); m != 3 {
		t.Fatalf("Mean single = %v, want 3", m)
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
}

func TestMinMax(t *testing.T) {
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Fatalf("MinMax(nil) = %v, %v, want 0, 0", lo, hi)
	}
	if lo, hi := MinMax([]float64{7}); lo != 7 || hi != 7 {
		t.Fatalf("MinMax single = %v, %v", lo, hi)
	}
	if lo, hi := MinMax([]float64{2, -1, 5, 3}); lo != -1 || hi != 5 {
		t.Fatalf("MinMax = %v, %v, want -1, 5", lo, hi)
	}
}

func TestSpeedupRatio(t *testing.T) {
	if s := SpeedupRatio(100, 0); s != 0 {
		t.Fatalf("zero current should yield 0, got %v", s)
	}
	if s := SpeedupRatio(100, -5); s != 0 {
		t.Fatalf("negative current should yield 0, got %v", s)
	}
	if s := SpeedupRatio(300, 100); s != 3 {
		t.Fatalf("SpeedupRatio = %v, want 3", s)
	}
	if s := SpeedupRatio(100, 400); s != 0.25 {
		t.Fatalf("SpeedupRatio = %v, want 0.25", s)
	}
}

// fakeSnapshot builds a minimal snapshot with the given per-circuit serial
// times.
func fakeSnapshot(times map[string]int64) Snapshot {
	s := Snapshot{GoVersion: "gotest", Seed: 1, Reps: 1, Procs: []int{1}}
	for name, ns := range times {
		s.Circuits = append(s.Circuits, name)
		s.Serial = append(s.Serial, SerialRun{Circuit: name, ElapsedNS: ns, TotalTracks: 10, Area: 100})
	}
	return s
}

func TestBuildReportBaselineCarryForward(t *testing.T) {
	// First report: no previous file, so no baseline and no speedup.
	first := BuildReport(nil, fakeSnapshot(map[string]int64{"a": 1000}), "v0")
	if first.Baseline != nil || first.SerialSpeedupVsBaseline != 0 {
		t.Fatal("fresh report should have no baseline")
	}

	// Second report: the first report's Current becomes the baseline.
	second := BuildReport(first, fakeSnapshot(map[string]int64{"a": 500}), "v1")
	if second.Baseline == nil || second.Baseline.Serial[0].ElapsedNS != 1000 {
		t.Fatal("previous Current was not promoted to Baseline")
	}
	if math.Abs(second.SerialSpeedupVsBaseline-2.0) > 1e-9 {
		t.Fatalf("speedup = %v, want 2.0", second.SerialSpeedupVsBaseline)
	}

	// Third report: the original baseline sticks (it is not re-promoted),
	// so speedups keep measuring against the committed pre-optimization
	// snapshot.
	third := BuildReport(second, fakeSnapshot(map[string]int64{"a": 250}), "v2")
	if third.Baseline == nil || third.Baseline.Serial[0].ElapsedNS != 1000 {
		t.Fatal("established baseline must carry forward unchanged")
	}
	if math.Abs(third.SerialSpeedupVsBaseline-4.0) > 1e-9 {
		t.Fatalf("speedup = %v, want 4.0", third.SerialSpeedupVsBaseline)
	}
}

func TestSerialSpeedupIgnoresUnmatchedCircuits(t *testing.T) {
	base := fakeSnapshot(map[string]int64{"a": 1000, "gone": 9999})
	cur := fakeSnapshot(map[string]int64{"a": 500, "new": 1})
	r := BuildReport(&Report{Schema: ReportSchema, Current: base}, cur, "")
	if math.Abs(r.SerialSpeedupVsBaseline-2.0) > 1e-9 {
		t.Fatalf("speedup = %v, want 2.0 (only circuit a matches)", r.SerialSpeedupVsBaseline)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	snap := fakeSnapshot(map[string]int64{"a": 1000})
	snap.Serial[0].Phases = []PhaseNS{{Name: "steiner", ElapsedNS: 10,
		Counters: []CounterVal{{Name: "segments", Value: 321}}}}
	snap.Parallel = []ParallelRun{{Circuit: "a", Algo: "netwise", Procs: 4,
		Model: "smp", ElapsedNS: 400, Speedup: 2.5, ScaledTracks: 1.01,
		Phases: []PhaseNS{{Name: "connect", ElapsedNS: 7,
			Counters: []CounterVal{{Name: "wires", Value: 42}}}}}}
	orig := BuildReport(nil, snap, "round-trip")

	var buf bytes.Buffer
	if err := WriteReport(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ReportSchema || got.Label != "round-trip" {
		t.Fatalf("header mangled: %+v", got)
	}
	if len(got.Current.Serial) != 1 || got.Current.Serial[0].ElapsedNS != 1000 {
		t.Fatalf("serial run mangled: %+v", got.Current.Serial)
	}
	sp := got.Current.Serial[0].Phases
	if len(sp) != 1 || sp[0].Name != "steiner" ||
		len(sp[0].Counters) != 1 || sp[0].Counters[0] != (CounterVal{Name: "segments", Value: 321}) {
		t.Fatalf("serial phases mangled: %+v", sp)
	}
	if len(got.Current.Parallel) != 1 || got.Current.Parallel[0].Speedup != 2.5 {
		t.Fatalf("parallel run mangled: %+v", got.Current.Parallel)
	}
	pp := got.Current.Parallel[0].Phases
	if len(pp) != 1 || pp[0].Name != "connect" ||
		len(pp[0].Counters) != 1 || pp[0].Counters[0] != (CounterVal{Name: "wires", Value: 42}) {
		t.Fatalf("parallel per-stage breakdown mangled: %+v", pp)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"parroute-bench/999","current":{}}`)); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
	if _, err := ReadReport(strings.NewReader(`{"current":{}}`)); err == nil {
		t.Fatal("missing schema must be rejected")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
}

func TestCommittedReportFieldsPresent(t *testing.T) {
	// The committed BENCH_PR4.json must keep the fields the CI smoke and
	// the acceptance criteria read. Guard the JSON key names (a renamed
	// tag would silently break readers of the committed file).
	snap := fakeSnapshot(map[string]int64{"a": 1000})
	var buf bytes.Buffer
	if err := WriteReport(&buf, BuildReport(nil, snap, "keys")); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"schema"`, `"current"`, `"serial"`, `"elapsedNs"`, `"allocsPerOp"`, `"totalTracks"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("serialized report lacks %s:\n%s", key, buf.String())
		}
	}
}
