package bench

import (
	"fmt"
	"io"

	"parroute/internal/mp"
	"parroute/internal/partition"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the smallest and largest value of xs; both are 0 for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	for i, x := range xs {
		if i == 0 || x < min {
			min = x
		}
		if i == 0 || x > max {
			max = x
		}
	}
	return min, max
}

// SpeedupRatio returns baseline time over current time — the speedup of
// current relative to baseline — or 0 when current is non-positive.
func SpeedupRatio(baselineNS, currentNS int64) float64 {
	if currentNS <= 0 {
		return 0
	}
	return float64(baselineNS) / float64(currentNS)
}

// ScaledTracksStats prints a scaled-track table (2, 3 or 4) where every
// cell is the mean over several seeds, with the min-max spread — the
// multi-seed robustness check for the single-seed tables. Each seed draws
// both a fresh synthetic circuit and fresh routing randomness.
func ScaledTracksStats(w io.Writer, cfg Config, table int, seeds []uint64) error {
	algo, err := algoForTable(table)
	if err != nil {
		return err
	}
	cfg.Normalize()
	if len(seeds) == 0 {
		return fmt.Errorf("bench: no seeds given")
	}

	header := []string{"circuit"}
	var procs []int
	for _, p := range cfg.Procs {
		if p > 1 {
			procs = append(procs, p)
			header = append(header, fmt.Sprintf("%d proc", p))
		}
	}

	// One suite per seed, so circuits and baselines are cached per seed.
	suites := make([]*Suite, len(seeds))
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		suites[i] = NewSuite(c)
	}

	var rows [][]string
	for _, name := range cfg.Circuits {
		row := []string{name}
		for _, p := range procs {
			var sum, min, max float64
			for i, s := range suites {
				base, err := s.Baseline(name)
				if err != nil {
					return err
				}
				r, err := s.Run(name, algo, p, mp.SMP(), 0, partition.PinWeight)
				if err != nil {
					return err
				}
				scaled := r.ScaledTracks(base)
				sum += scaled
				if i == 0 || scaled < min {
					min = scaled
				}
				if i == 0 || scaled > max {
					max = scaled
				}
			}
			row = append(row, fmt.Sprintf("%.3f [%.3f-%.3f]",
				sum/float64(len(seeds)), min, max))
		}
		rows = append(rows, row)
	}
	writeTable(w, fmt.Sprintf("Table %d over %d seeds: scaled tracks of the %v algorithm, "+
		"mean [min-max]", table, len(seeds), algo), header, rows)
	return nil
}
