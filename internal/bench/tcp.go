package bench

// The framed-wire benchmark: the PR-9 acceptance artifact BENCH_PR9.json
// records what putting the generated flat codecs on the socket buys over
// the gob stream they replaced. Both encodings drive the same real
// loopback-TCP mesh (the distributed-memory transport), so the ratio
// isolates wire encoding from routing work.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"parroute/internal/circuit"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/parallel"
	"parroute/internal/partition"
	"parroute/internal/route"
)

// TCPReportSchema identifies the on-disk format of BENCH_PR9.json.
const TCPReportSchema = "parroute-bench-tcp/1"

// TCPReport is the committed framed-vs-gob measurement: per circuit and
// algorithm, the wall-clock of a full parallel route over loopback TCP
// with the generated codecs against the same route with every payload
// forced through the gob fallback.
type TCPReport struct {
	Schema    string `json:"schema"`
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"goVersion"`
	Seed      uint64 `json:"seed"`
	Reps      int    `json:"reps"`
	Procs     int    `json:"procs"`

	Runs []TCPRun `json:"runs"`

	// MeanFramedSpeedup is the mean over runs of gob wall-clock divided
	// by framed wall-clock; above 1.0 the codecs pay for themselves.
	MeanFramedSpeedup float64 `json:"meanFramedSpeedup"`
}

// TCPRun is one circuit+algorithm cell of the comparison. TotalTracks
// and Area are recorded once because both encodings must produce them
// identically — the collector fails if the wire format leaks into
// routing output.
type TCPRun struct {
	Circuit     string  `json:"circuit"`
	Algo        string  `json:"algo"`
	FramedNS    int64   `json:"framedNs"`
	GobNS       int64   `json:"gobNs"`
	Speedup     float64 `json:"speedup"`
	TotalTracks int     `json:"totalTracks"`
	Area        int64   `json:"area"`
}

// CollectTCPReport measures every configured circuit with all three
// parallel algorithms at the largest configured worker count, framed and
// gob, keeping the fastest of cfg.Reps timings per cell.
func CollectTCPReport(cfg Config, label string) (*TCPReport, error) {
	cfg.Normalize()
	s := NewSuite(cfg)
	procs := 1
	for _, p := range cfg.Procs {
		if p > procs {
			procs = p
		}
	}
	if procs < 2 {
		return nil, fmt.Errorf("bench: the TCP comparison needs a parallel worker count, got procs %v", cfg.Procs)
	}
	rep := &TCPReport{
		Schema:    TCPReportSchema,
		Label:     label,
		GoVersion: runtime.Version(),
		Seed:      cfg.Seed,
		Reps:      cfg.Reps,
		Procs:     procs,
	}
	var speedups []float64
	for _, name := range cfg.Circuits {
		c, err := s.Circuit(name)
		if err != nil {
			return nil, err
		}
		for _, algo := range parallel.Algorithms() {
			framed, err := fastestTCPRun(c, algo, procs, cfg, false)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %v framed: %w", name, algo, err)
			}
			gob, err := fastestTCPRun(c, algo, procs, cfg, true)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %v gob: %w", name, algo, err)
			}
			if framed.TotalTracks != gob.TotalTracks || framed.Area != gob.Area {
				return nil, fmt.Errorf("bench: %s %v: wire encoding changed routing output "+
					"(framed %d tracks / %d area, gob %d / %d)",
					name, algo, framed.TotalTracks, framed.Area, gob.TotalTracks, gob.Area)
			}
			sp := SpeedupRatio(gob.Elapsed.Nanoseconds(), framed.Elapsed.Nanoseconds())
			speedups = append(speedups, sp)
			rep.Runs = append(rep.Runs, TCPRun{
				Circuit:     name,
				Algo:        algo.String(),
				FramedNS:    framed.Elapsed.Nanoseconds(),
				GobNS:       gob.Elapsed.Nanoseconds(),
				Speedup:     sp,
				TotalTracks: framed.TotalTracks,
				Area:        framed.Area,
			})
		}
	}
	rep.MeanFramedSpeedup = Mean(speedups)
	return rep, nil
}

// fastestTCPRun routes the circuit over the real loopback-TCP engine and
// keeps the fastest of reps runs (results are deterministic across reps;
// only timing varies).
func fastestTCPRun(c *circuit.Circuit, algo parallel.Algorithm, procs int,
	cfg Config, gobWire bool) (*metrics.Result, error) {

	var best *metrics.Result
	for rep := 0; rep < cfg.Reps; rep++ {
		runtime.GC() // keep earlier runs' garbage out of this run's wall-clock
		r, err := parallel.Run(context.Background(), c, parallel.Options{
			Algo:    algo,
			Procs:   procs,
			Mode:    mp.TCP,
			GobWire: gobWire,
			Route:   route.Options{Seed: cfg.Seed + 1},
			Net:     partition.Config{Method: partition.PinWeight},
		})
		if err != nil {
			return nil, err
		}
		if best == nil || r.Elapsed < best.Elapsed {
			best = r
		}
	}
	return best, nil
}

// WriteTCPReport serializes the report as indented JSON.
func WriteTCPReport(w io.Writer, r *TCPReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadTCPReport parses a framed-wire report and validates its schema.
func ReadTCPReport(rd io.Reader) (*TCPReport, error) {
	var r TCPReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: decoding tcp report: %w", err)
	}
	if r.Schema != TCPReportSchema {
		return nil, fmt.Errorf("bench: tcp report schema %q, want %q", r.Schema, TCPReportSchema)
	}
	return &r, nil
}
