package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTCPReportJSONRoundTrip(t *testing.T) {
	orig := &TCPReport{
		Schema: TCPReportSchema, Label: "rt", GoVersion: "gotest",
		Seed: 7, Reps: 1, Procs: 4,
		Runs: []TCPRun{{Circuit: "primary2", Algo: "hybrid",
			FramedNS: 100, GobNS: 250, Speedup: 2.5, TotalTracks: 10, Area: 100}},
		MeanFramedSpeedup: 2.5,
	}
	var buf bytes.Buffer
	if err := WriteTCPReport(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Guard the JSON key names the CI smoke reads from the committed file.
	for _, key := range []string{`"schema"`, `"runs"`, `"framedNs"`, `"gobNs"`, `"meanFramedSpeedup"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("serialized tcp report lacks %s:\n%s", key, buf.String())
		}
	}
	got, err := ReadTCPReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != TCPReportSchema || len(got.Runs) != 1 || got.Runs[0].Speedup != 2.5 {
		t.Fatalf("tcp report mangled: %+v", got)
	}
}

func TestReadTCPReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadTCPReport(strings.NewReader(`{"schema":"parroute-bench/1","runs":[]}`)); err == nil {
		t.Fatal("snapshot schema accepted as a tcp report")
	}
	if _, err := ReadTCPReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestCollectTCPReportNeedsParallelProcs(t *testing.T) {
	if _, err := CollectTCPReport(Config{Procs: []int{1}}, ""); err == nil {
		t.Fatal("a serial-only proc list must be rejected")
	}
}

// TestCollectTCPReportSmoke measures one real framed-vs-gob cell over
// loopback TCP and checks the invariants the committed BENCH_PR9.json
// relies on: positive timings, recorded parity fields, a finite ratio.
func TestCollectTCPReportSmoke(t *testing.T) {
	rep, err := CollectTCPReport(Config{
		Circuits: []string{"primary2"},
		Procs:    []int{2},
		Seed:     7,
		Reps:     1,
	}, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 2 || len(rep.Runs) != 3 {
		t.Fatalf("report shape: procs %d, %d runs; want 2 procs and one run per algorithm", rep.Procs, len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.FramedNS <= 0 || r.GobNS <= 0 {
			t.Errorf("%s %s: non-positive timing %+v", r.Circuit, r.Algo, r)
		}
		if r.TotalTracks <= 0 || r.Area <= 0 {
			t.Errorf("%s %s: missing routing output %+v", r.Circuit, r.Algo, r)
		}
		if r.Speedup <= 0 {
			t.Errorf("%s %s: speedup %v", r.Circuit, r.Algo, r.Speedup)
		}
	}
	if rep.MeanFramedSpeedup <= 0 {
		t.Errorf("mean framed speedup %v", rep.MeanFramedSpeedup)
	}
}
