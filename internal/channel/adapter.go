package channel

import (
	"parroute/internal/metrics"
)

// FromWires buckets a routing result's wires by channel and derives each
// wire's edge contacts from its endpoint anchors: an endpoint in the row
// directly above the channel (row == channel index) connects through the
// channel's top edge, one in the row below (row == channel-1) through the
// bottom edge. Endpoints elsewhere (forced fallback edges) contribute no
// vertical constraint.
func FromWires(numChannels int, wires []metrics.Wire) [][]Wire {
	out := make([][]Wire, numChannels)
	for i := range wires {
		mw := &wires[i]
		if mw.Channel < 0 || mw.Channel >= numChannels {
			continue
		}
		cw := Wire{Net: mw.Net, Span: mw.Span}
		for _, end := range [][2]int{{mw.AX, mw.ARow}, {mw.BX, mw.BRow}} {
			x, row := end[0], end[1]
			switch row {
			case mw.Channel:
				cw.Top = append(cw.Top, x)
			case mw.Channel - 1:
				cw.Bottom = append(cw.Bottom, x)
			}
		}
		out[mw.Channel] = append(out[mw.Channel], cw)
	}
	return out
}

// Summary aggregates the detailed routing of every channel.
type Summary struct {
	// PerChannel holds each channel's assignment, indexed by channel.
	PerChannel []Assignment
	// AssignedTracks sums the track counts the router realized.
	AssignedTracks int
	// DensityTracks sums the density lower bounds.
	DensityTracks int
	// BrokenConstraints counts vertical constraints dropped to keep the
	// channels routable without doglegs.
	BrokenConstraints int
}

// RouteAll runs the channel router over every channel of a routing result
// and returns the aggregate summary. AssignedTracks >= DensityTracks
// always; equality means no vertical constraint forced an extra track.
func RouteAll(numChannels int, wires []metrics.Wire) Summary {
	byChannel := FromWires(numChannels, wires)
	sum := Summary{PerChannel: make([]Assignment, numChannels)}
	for ch, cws := range byChannel {
		asg := Route(cws)
		sum.PerChannel[ch] = asg
		sum.AssignedTracks += asg.Tracks
		sum.DensityTracks += Density(cws)
		sum.BrokenConstraints += asg.BrokenConstraints
	}
	return sum
}
