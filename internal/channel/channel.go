// Package channel implements a classic dogleg-free channel router: the
// constrained left-edge algorithm with a vertical constraint graph (VCG).
//
// TWGR is a *global* router: it decides which channel every net segment
// occupies and minimizes channel density — the lower bound on the tracks
// a channel router needs. In the TimberWolf flow the detailed channel
// router then assigns each wire to a concrete track between the two cell
// rows, honoring vertical constraints: where a wire connects to a pin on
// the channel's top edge, its vertical drop must not cross another wire's
// rise to a bottom-edge pin in the same column, so the top-connected wire
// must lie on a higher track.
//
// This package closes that loop for the reproduction: it realizes every
// channel's wires on tracks, reporting the assigned track count next to
// the density lower bound (they coincide unless vertical constraints
// force extra tracks).
package channel

import (
	"fmt"
	"sort"

	"parroute/internal/geom"
)

// Wire is one horizontal run to place in the channel. Top and Bottom list
// the columns where the wire connects to pins on the channel's top and
// bottom edge; they drive the vertical constraints.
type Wire struct {
	Net    int
	Span   geom.Interval
	Top    []int // columns with a top-edge contact
	Bottom []int // columns with a bottom-edge contact
}

// Assignment is the routing of one channel. Track[i] is the track index
// of wire i, counted from the top of the channel (track 0 adjoins the top
// cell row). Tracks is the number of tracks used. BrokenConstraints
// counts vertical constraints that had to be ignored to route without
// doglegs (cyclic VCGs are unroutable dogleg-free; the classic remedy is
// doglegging — here the cycle is broken and reported instead).
type Assignment struct {
	Track             []int
	Tracks            int
	BrokenConstraints int
}

// Route assigns every wire to a track with the constrained left-edge
// algorithm. Wires with empty spans are placed on track -1 (they occupy
// no horizontal extent; their pins connect directly).
func Route(wires []Wire) Assignment {
	n := len(wires)
	asg := Assignment{Track: make([]int, n)}
	real := make([]int, 0, n) // indices of wires with extent
	for i := range wires {
		if wires[i].Span.Empty() {
			asg.Track[i] = -1
		} else {
			real = append(real, i)
		}
	}
	if len(real) == 0 {
		return asg
	}

	above, broken := buildVCG(wires, real)
	asg.BrokenConstraints = broken

	// Constrained left-edge: fill tracks top-down. A wire is eligible for
	// the current track when every wire constrained to lie above it has
	// been placed on an earlier (higher) track. Within a track, pack
	// non-overlapping wires left to right.
	pending := make(map[int]bool, len(real))
	for _, i := range real {
		pending[i] = true
	}
	// predCount[i] = how many unplaced wires must lie above wire i.
	predCount := make(map[int]int, len(real))
	for _, i := range real {
		predCount[i] = 0
	}
	for u, vs := range above {
		_ = u
		for _, v := range vs {
			predCount[v]++
		}
	}

	track := 0
	for len(pending) > 0 {
		// Eligible wires, sorted by left edge (ties by net then index for
		// determinism).
		var elig []int
		for i := range pending {
			if predCount[i] == 0 {
				elig = append(elig, i)
			}
		}
		if len(elig) == 0 {
			// Should be impossible: buildVCG breaks all cycles. Guard
			// against a logic error by force-releasing the wire with the
			// fewest predecessors.
			best, bestCount := -1, 1<<30
			for i := range pending {
				if predCount[i] < bestCount || (predCount[i] == bestCount && i < best) {
					best, bestCount = i, predCount[i]
				}
			}
			predCount[best] = 0
			elig = append(elig, best)
			asg.BrokenConstraints++
		}
		sort.Slice(elig, func(a, b int) bool {
			wa, wb := &wires[elig[a]], &wires[elig[b]]
			if wa.Span.Lo != wb.Span.Lo {
				return wa.Span.Lo < wb.Span.Lo
			}
			return elig[a] < elig[b]
		})
		// Left-edge pack this track.
		lastHi := -1 << 60
		placed := make([]int, 0, len(elig))
		for _, i := range elig {
			if wires[i].Span.Lo > lastHi {
				asg.Track[i] = track
				lastHi = wires[i].Span.Hi
				placed = append(placed, i)
			}
		}
		for _, i := range placed {
			delete(pending, i)
			for _, v := range above[i] {
				if pending[v] {
					predCount[v]--
				}
			}
		}
		track++
	}
	asg.Tracks = track
	return asg
}

// buildVCG derives the vertical constraint edges: above[u] lists wires
// that must lie strictly below wire u. A constraint arises when wire u
// has a top-edge contact and wire v a bottom-edge contact in the same
// column (their vertical connections would otherwise cross). Cycles —
// which make a channel unroutable without doglegs — are broken by
// dropping back edges found during a DFS, and the number of dropped
// edges is returned.
func buildVCG(wires []Wire, real []int) (above map[int][]int, broken int) {
	type contact struct {
		wire int
		top  bool
	}
	byCol := make(map[int][]contact)
	inSpan := func(w *Wire, x int) bool { return w.Span.Contains(x) }
	for _, i := range real {
		w := &wires[i]
		for _, x := range w.Top {
			if inSpan(w, x) {
				byCol[x] = append(byCol[x], contact{wire: i, top: true})
			}
		}
		for _, x := range w.Bottom {
			if inSpan(w, x) {
				byCol[x] = append(byCol[x], contact{wire: i, top: false})
			}
		}
	}
	edges := make(map[[2]int]bool)
	cols := make([]int, 0, len(byCol))
	for x := range byCol {
		cols = append(cols, x)
	}
	sort.Ints(cols)
	above = make(map[int][]int)
	for _, x := range cols {
		cs := byCol[x]
		for _, a := range cs {
			if !a.top {
				continue
			}
			for _, b := range cs {
				if b.top || a.wire == b.wire {
					continue
				}
				key := [2]int{a.wire, b.wire}
				if !edges[key] {
					edges[key] = true
					above[a.wire] = append(above[a.wire], b.wire)
				}
			}
		}
	}
	// Cycle breaking: iterative DFS over the constraint graph; back edges
	// are removed.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(real))
	var dfs func(u int)
	dfs = func(u int) {
		color[u] = gray
		kept := above[u][:0]
		for _, v := range above[u] {
			switch color[v] {
			case gray:
				broken++ // back edge: drop it
			case white:
				kept = append(kept, v)
				dfs(v)
			default:
				kept = append(kept, v)
			}
		}
		above[u] = kept
		color[u] = black
	}
	for _, i := range real {
		if color[i] == white {
			dfs(i)
		}
	}
	return above, broken
}

// Density returns the channel's density — the maximum number of wires
// overlapping any column — which lower-bounds the achievable track count.
func Density(wires []Wire) int {
	type event struct {
		x, d int
	}
	var evs []event
	for i := range wires {
		if wires[i].Span.Empty() {
			continue
		}
		evs = append(evs, event{wires[i].Span.Lo, +1}, event{wires[i].Span.Hi + 1, -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].x != evs[b].x {
			return evs[a].x < evs[b].x
		}
		return evs[a].d < evs[b].d
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.d
		if cur > max {
			max = cur
		}
	}
	return max
}

// Validate checks an assignment: wires on the same track never overlap,
// every non-empty wire has a track, and the track count is consistent.
// It returns the first violation found.
func Validate(wires []Wire, asg Assignment) error {
	if len(asg.Track) != len(wires) {
		return fmt.Errorf("channel: %d track entries for %d wires", len(asg.Track), len(wires))
	}
	byTrack := make(map[int][]int)
	for i := range wires {
		tr := asg.Track[i]
		if wires[i].Span.Empty() {
			if tr != -1 {
				return fmt.Errorf("channel: empty wire %d assigned track %d", i, tr)
			}
			continue
		}
		if tr < 0 || tr >= asg.Tracks {
			return fmt.Errorf("channel: wire %d on track %d of %d", i, tr, asg.Tracks)
		}
		byTrack[tr] = append(byTrack[tr], i)
	}
	for tr, idxs := range byTrack {
		sort.Slice(idxs, func(a, b int) bool {
			if la, lb := wires[idxs[a]].Span.Lo, wires[idxs[b]].Span.Lo; la != lb {
				return la < lb
			}
			// Same-Lo wires on one track necessarily overlap; the index
			// tiebreak just pins which pair the error message names.
			return idxs[a] < idxs[b]
		})
		for k := 1; k < len(idxs); k++ {
			prev, cur := &wires[idxs[k-1]], &wires[idxs[k]]
			if prev.Span.Overlaps(cur.Span) {
				return fmt.Errorf("channel: track %d: wires %d and %d overlap (%v, %v)",
					tr, idxs[k-1], idxs[k], prev.Span, cur.Span)
			}
		}
	}
	return nil
}
