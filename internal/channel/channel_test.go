package channel

import (
	"context"
	"testing"
	"testing/quick"

	"parroute/internal/gen"
	"parroute/internal/geom"
	"parroute/internal/metrics"
	"parroute/internal/rng"
	"parroute/internal/route"
)

func iv(lo, hi int) geom.Interval { return geom.NewInterval(lo, hi) }

func TestRouteEmpty(t *testing.T) {
	asg := Route(nil)
	if asg.Tracks != 0 || asg.BrokenConstraints != 0 {
		t.Fatalf("empty channel: %+v", asg)
	}
	// Only empty-span wires.
	asg = Route([]Wire{{Span: geom.Interval{Lo: 1, Hi: 0}}})
	if asg.Tracks != 0 || asg.Track[0] != -1 {
		t.Fatalf("empty-span wires: %+v", asg)
	}
}

func TestRouteDisjointWiresShareATrack(t *testing.T) {
	wires := []Wire{
		{Net: 0, Span: iv(0, 10)},
		{Net: 1, Span: iv(20, 30)},
		{Net: 2, Span: iv(40, 50)},
	}
	asg := Route(wires)
	if asg.Tracks != 1 {
		t.Fatalf("disjoint wires used %d tracks", asg.Tracks)
	}
	if err := Validate(wires, asg); err != nil {
		t.Fatal(err)
	}
}

func TestRouteOverlapNeedsMoreTracks(t *testing.T) {
	wires := []Wire{
		{Net: 0, Span: iv(0, 30)},
		{Net: 1, Span: iv(10, 40)},
		{Net: 2, Span: iv(20, 50)},
	}
	asg := Route(wires)
	if asg.Tracks != 3 {
		t.Fatalf("3 mutually overlapping wires used %d tracks", asg.Tracks)
	}
	if err := Validate(wires, asg); err != nil {
		t.Fatal(err)
	}
}

func TestRouteMatchesDensityWithoutConstraints(t *testing.T) {
	// Left-edge is optimal without vertical constraints: tracks == density.
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(60)
		wires := make([]Wire, n)
		for i := range wires {
			a := r.Intn(400)
			wires[i] = Wire{Net: i, Span: iv(a, a+1+r.Intn(80))}
		}
		asg := Route(wires)
		if d := Density(wires); asg.Tracks != d {
			t.Fatalf("trial %d: %d tracks for density %d", trial, asg.Tracks, d)
		}
		if err := Validate(wires, asg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestVerticalConstraintOrdersTracks(t *testing.T) {
	// Wire A has a top contact at x=5, wire B a bottom contact at x=5;
	// both overlap. A must land on a strictly higher (smaller index)
	// track than B.
	wires := []Wire{
		{Net: 0, Span: iv(0, 10), Top: []int{5}},
		{Net: 1, Span: iv(0, 10), Bottom: []int{5}},
	}
	asg := Route(wires)
	if asg.BrokenConstraints != 0 {
		t.Fatalf("broke %d constraints unnecessarily", asg.BrokenConstraints)
	}
	if asg.Track[0] >= asg.Track[1] {
		t.Fatalf("top-connected wire on track %d, bottom-connected on %d",
			asg.Track[0], asg.Track[1])
	}
}

func TestVerticalConstraintForcesExtraTrack(t *testing.T) {
	// Two non-overlapping wires (density 1) with a constraint chain that
	// forces separate tracks: A top-contacts at 5, B bottom-contacts at 5,
	// but their spans do not overlap horizontally... make them conflict
	// only via the constraint: A [0,10] top@5, B [20,30] bottom@25 is no
	// conflict. Use shared column: A [0,10] top@8, B [8,30] bottom@8:
	// density 2 anyway. Instead: A [0,10] top@5; B [5,30] bottom@5.
	wires := []Wire{
		{Net: 0, Span: iv(0, 5), Top: []int{5}},
		{Net: 1, Span: iv(5, 30), Bottom: []int{5}},
	}
	asg := Route(wires)
	// They overlap only at x=5 (density 2), and the constraint must hold.
	if asg.Track[0] >= asg.Track[1] {
		t.Fatalf("constraint violated: %v", asg.Track)
	}
	if err := Validate(wires, asg); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicConstraintsBrokenNotDeadlocked(t *testing.T) {
	// A above B at x=5, B above A at x=20: a classic VCG cycle that is
	// unroutable without doglegs. The router must terminate, report the
	// broken constraint, and still produce a valid overlap-free layout.
	wires := []Wire{
		{Net: 0, Span: iv(0, 30), Top: []int{5}, Bottom: []int{20}},
		{Net: 1, Span: iv(0, 30), Bottom: []int{5}, Top: []int{20}},
	}
	asg := Route(wires)
	if asg.BrokenConstraints == 0 {
		t.Fatal("cycle went undetected")
	}
	if err := Validate(wires, asg); err != nil {
		t.Fatal(err)
	}
	if asg.Tracks != 2 {
		t.Fatalf("%d tracks", asg.Tracks)
	}
}

func TestRouteDeterministic(t *testing.T) {
	r := rng.New(5)
	wires := make([]Wire, 50)
	for i := range wires {
		a := r.Intn(300)
		wires[i] = Wire{Net: i, Span: iv(a, a+5+r.Intn(50)),
			Top: []int{a + 1}, Bottom: []int{a + 3}}
	}
	a1 := Route(wires)
	a2 := Route(wires)
	for i := range a1.Track {
		if a1.Track[i] != a2.Track[i] {
			t.Fatalf("wire %d track differs between runs", i)
		}
	}
}

func TestRoutePropertyValidAndBounded(t *testing.T) {
	// Random instances: always valid, tracks within [density, wires].
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(40)
		wires := make([]Wire, n)
		for i := range wires {
			a := r.Intn(200)
			w := Wire{Net: i, Span: iv(a, a+r.Intn(60))}
			if r.Bool() {
				w.Top = []int{w.Span.Lo + r.Intn(w.Span.Len())}
			}
			if r.Bool() {
				w.Bottom = []int{w.Span.Lo + r.Intn(w.Span.Len())}
			}
			wires[i] = w
		}
		asg := Route(wires)
		if Validate(wires, asg) != nil {
			return false
		}
		d := Density(wires)
		return asg.Tracks >= d && asg.Tracks <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	wires := []Wire{
		{Net: 0, Span: iv(0, 10)},
		{Net: 1, Span: iv(5, 15)},
	}
	bad := Assignment{Track: []int{0, 0}, Tracks: 1}
	if err := Validate(wires, bad); err == nil {
		t.Fatal("overlapping wires on one track accepted")
	}
	if err := Validate(wires, Assignment{Track: []int{0}}); err == nil {
		t.Fatal("wrong track-list length accepted")
	}
	if err := Validate(wires, Assignment{Track: []int{0, 5}, Tracks: 2}); err == nil {
		t.Fatal("out-of-range track accepted")
	}
}

func TestFromWiresContactDerivation(t *testing.T) {
	// Wire in channel 3 with endpoint anchors in rows 3 (above -> top
	// contact) and 2 (below -> bottom contact).
	ws := []metrics.Wire{{
		Net: 7, Channel: 3, Span: iv(10, 50),
		AX: 10, ARow: 3, BX: 50, BRow: 2,
	}}
	byCh := FromWires(5, ws)
	if len(byCh[3]) != 1 {
		t.Fatalf("wire not bucketed: %v", byCh)
	}
	cw := byCh[3][0]
	if len(cw.Top) != 1 || cw.Top[0] != 10 {
		t.Fatalf("top contacts: %v", cw.Top)
	}
	if len(cw.Bottom) != 1 || cw.Bottom[0] != 50 {
		t.Fatalf("bottom contacts: %v", cw.Bottom)
	}
	// Forced-edge anchors far from the channel produce no contacts.
	ws[0].ARow = 0
	ws[0].BRow = 9
	cw = FromWires(5, ws)[3][0]
	if len(cw.Top)+len(cw.Bottom) != 0 {
		t.Fatalf("distant anchors produced contacts: %+v", cw)
	}
}

func TestRouteAllOnRealCircuit(t *testing.T) {
	// End-to-end: route a small circuit, then channel-route the result.
	c := gen.Small(3)
	res, err := route.Route(context.Background(), c, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := RouteAll(c.NumChannels(), res.Wires)
	if sum.DensityTracks != res.TotalTracks {
		t.Fatalf("density sum %d != result tracks %d", sum.DensityTracks, res.TotalTracks)
	}
	if sum.AssignedTracks < sum.DensityTracks {
		t.Fatalf("assigned %d below the density lower bound %d",
			sum.AssignedTracks, sum.DensityTracks)
	}
	// Vertical constraints cost a bounded premium over the lower bound.
	if float64(sum.AssignedTracks) > 1.5*float64(sum.DensityTracks) {
		t.Fatalf("assigned %d tracks for density %d: constraint handling exploded",
			sum.AssignedTracks, sum.DensityTracks)
	}
	// Per-channel assignments must validate against the channel's wires.
	byCh := FromWires(c.NumChannels(), res.Wires)
	for ch := range byCh {
		if err := Validate(byCh[ch], sum.PerChannel[ch]); err != nil {
			t.Fatalf("channel %d: %v", ch, err)
		}
	}
}
