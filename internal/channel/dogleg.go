package channel

import (
	"sort"

	"parroute/internal/geom"
)

// Dogleg routing (after Deutsch's dogleg router): each wire is split at
// its interior pin-contact columns into pieces that may land on different
// tracks, connected by vertical jogs at the split columns. Doglegs break
// vertical-constraint cycles (which are unroutable dogleg-free) and
// usually remove most of the track premium the plain constrained
// left-edge pays over the density lower bound.
//
// Note on this repository's own wire population: the global router's
// step 4 already decomposes every net into two-terminal wires, so their
// pin contacts always sit at the span ends and restricted doglegging has
// nothing to split — RouteDogleg then equals Route exactly. The mode
// matters for hand-authored channels with multi-terminal wires (and is
// exercised that way in the tests); removing the residual 2-4% premium
// on the router's output would take unrestricted doglegs.

// Piece is one fragment of a split wire.
type Piece struct {
	Wire
	// Owner is the index of the original wire this piece came from.
	Owner int
}

// SplitDoglegs splits every wire at its interior contact columns. A
// contact strictly inside the span becomes a split point; the two pieces
// meeting there share the column (the jog connects them vertically), and
// the contact's vertical constraint applies to the piece that carries it.
// End-column contacts stay with their single piece.
func SplitDoglegs(wires []Wire) []Piece {
	var pieces []Piece
	for i := range wires {
		w := &wires[i]
		if w.Span.Empty() {
			pieces = append(pieces, Piece{Wire: *w, Owner: i})
			continue
		}
		// Collect interior split columns, sorted and deduplicated.
		var cuts []int
		for _, x := range append(append([]int(nil), w.Top...), w.Bottom...) {
			if x > w.Span.Lo && x < w.Span.Hi {
				cuts = append(cuts, x)
			}
		}
		sort.Ints(cuts)
		cuts = dedupInts(cuts)
		if len(cuts) == 0 {
			pieces = append(pieces, Piece{Wire: *w, Owner: i})
			continue
		}
		// Pieces tile the span disjointly: [lo, c1-1], [c1, c2-1], ...,
		// [ck, hi]. Disjoint pieces let the left-edge packer keep
		// consecutive pieces of the same wire on one track when no
		// constraint forces a jog; the jog's vertical at a cut column
		// spans the gap when tracks differ.
		bounds := append([]int{w.Span.Lo}, cuts...)
		bounds = append(bounds, w.Span.Hi+1)
		for k := 0; k+1 < len(bounds); k++ {
			p := Piece{Owner: i}
			p.Net = w.Net
			p.Span = geom.Interval{Lo: bounds[k], Hi: bounds[k+1] - 1}
			// A contact belongs to the unique piece containing its column.
			for _, x := range w.Top {
				if p.Span.Contains(x) {
					p.Top = append(p.Top, x)
				}
			}
			for _, x := range w.Bottom {
				if p.Span.Contains(x) {
					p.Bottom = append(p.Bottom, x)
				}
			}
			pieces = append(pieces, p)
		}
	}
	return pieces
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// DoglegSummary reports a dogleg routing of one channel.
type DoglegSummary struct {
	Tracks            int
	Pieces            int
	Doglegs           int // jogs introduced (pieces beyond one per wire)
	BrokenConstraints int
}

// RouteDogleg splits the wires at their contact columns and routes the
// pieces with the constrained left-edge algorithm. Compared to Route, it
// typically reaches the density lower bound (or close), at the cost of
// vertical jogs.
func RouteDogleg(wires []Wire) DoglegSummary {
	pieces := SplitDoglegs(wires)
	pw := make([]Wire, len(pieces))
	for i := range pieces {
		pw[i] = pieces[i].Wire
	}
	asg := Route(pw)
	sum := DoglegSummary{Tracks: asg.Tracks, BrokenConstraints: asg.BrokenConstraints}
	// A dogleg is an actual jog: consecutive pieces of the same wire on
	// different tracks.
	for i := range pieces {
		if pieces[i].Span.Empty() {
			continue
		}
		sum.Pieces++
		if i > 0 && pieces[i-1].Owner == pieces[i].Owner &&
			asg.Track[i-1] != asg.Track[i] {
			sum.Doglegs++
		}
	}
	return sum
}

// RouteAllDogleg routes every channel of a result with doglegs and
// returns (assigned tracks, doglegs, broken constraints) totals.
func RouteAllDogleg(numChannels int, byChannel [][]Wire) (tracks, doglegs, broken int) {
	for ch := 0; ch < numChannels; ch++ {
		s := RouteDogleg(byChannel[ch])
		tracks += s.Tracks
		doglegs += s.Doglegs
		broken += s.BrokenConstraints
	}
	return tracks, doglegs, broken
}
