package channel

// Edge cases of the dogleg splitter and router: empty spans, contacts
// exactly at span endpoints, duplicate contact columns, and empty
// channels. SplitDoglegs feeds pieces straight into the left-edge packer,
// so every degenerate shape must keep the span-tiling invariant (pieces
// exactly cover the original span) or the jog accounting breaks.

import (
	"testing"

	"parroute/internal/geom"
)

func TestSplitDoglegsEmptySpan(t *testing.T) {
	// An empty span (Hi < Lo) carries no horizontal extent; it must pass
	// through as a single piece, never be tiled.
	wires := []Wire{
		{Net: 0, Span: geom.Interval{Lo: 5, Hi: 4}, Top: []int{5}},
		{Net: 1, Span: iv(0, 10), Top: []int{4}},
	}
	pieces := SplitDoglegs(wires)
	if len(pieces) != 3 {
		t.Fatalf("%d pieces, want 1 (empty) + 2 (split)", len(pieces))
	}
	if !pieces[0].Span.Empty() || pieces[0].Owner != 0 {
		t.Fatalf("empty-span wire mangled: %+v", pieces[0])
	}
	if pieces[1].Owner != 1 || pieces[2].Owner != 1 {
		t.Fatalf("owners: %d, %d", pieces[1].Owner, pieces[2].Owner)
	}
}

func TestSplitDoglegsContactsAtEndpoints(t *testing.T) {
	// Contacts exactly at Lo and Hi are not interior: no split.
	wires := []Wire{{Net: 0, Span: iv(3, 9), Top: []int{3, 9}, Bottom: []int{3}}}
	pieces := SplitDoglegs(wires)
	if len(pieces) != 1 {
		t.Fatalf("endpoint contacts split the wire into %d pieces", len(pieces))
	}
	if len(pieces[0].Top) != 2 || len(pieces[0].Bottom) != 1 {
		t.Fatalf("contacts lost: %+v", pieces[0])
	}
}

func TestSplitDoglegsDuplicateCutColumns(t *testing.T) {
	// The same interior column on both edges (and repeated on one edge)
	// must produce exactly one cut, not zero-width pieces.
	wires := []Wire{{Net: 0, Span: iv(0, 10), Top: []int{5, 5}, Bottom: []int{5}}}
	pieces := SplitDoglegs(wires)
	if len(pieces) != 2 {
		t.Fatalf("%d pieces, want 2", len(pieces))
	}
	if pieces[0].Span != iv(0, 4) || pieces[1].Span != iv(5, 10) {
		t.Fatalf("spans: %v, %v", pieces[0].Span, pieces[1].Span)
	}
	if len(pieces[1].Top) != 2 || len(pieces[1].Bottom) != 1 {
		t.Fatalf("duplicate contacts lost: %+v", pieces[1])
	}
}

func TestSplitDoglegsAdjacentCuts(t *testing.T) {
	// Interior cuts at consecutive columns produce a single-column piece
	// in between; the tiling must stay disjoint and exhaustive.
	wires := []Wire{{Net: 0, Span: iv(0, 10), Top: []int{4}, Bottom: []int{5}}}
	pieces := SplitDoglegs(wires)
	if len(pieces) != 3 {
		t.Fatalf("%d pieces, want 3", len(pieces))
	}
	want := []geom.Interval{iv(0, 3), iv(4, 4), iv(5, 10)}
	for i, w := range want {
		if pieces[i].Span != w {
			t.Fatalf("piece %d span %v, want %v", i, pieces[i].Span, w)
		}
	}
}

func TestRouteDoglegEmptyChannel(t *testing.T) {
	sum := RouteDogleg(nil)
	if sum.Tracks != 0 || sum.Pieces != 0 || sum.Doglegs != 0 || sum.BrokenConstraints != 0 {
		t.Fatalf("empty channel summary %+v, want zeros", sum)
	}
}

func TestRouteDoglegOnlyEmptySpans(t *testing.T) {
	// All-empty spans occupy no tracks and count no pieces.
	wires := []Wire{
		{Net: 0, Span: geom.Interval{Lo: 2, Hi: 1}},
		{Net: 1, Span: geom.Interval{Lo: 8, Hi: 7}},
	}
	sum := RouteDogleg(wires)
	if sum.Tracks != 0 || sum.Pieces != 0 || sum.Doglegs != 0 {
		t.Fatalf("empty-span channel summary %+v, want zeros", sum)
	}
}

func TestRouteDoglegSingleColumnWire(t *testing.T) {
	// A one-column wire with a contact on each edge cannot be split and
	// must occupy exactly one track.
	wires := []Wire{{Net: 0, Span: iv(7, 7), Top: []int{7}, Bottom: []int{7}}}
	sum := RouteDogleg(wires)
	if sum.Tracks != 1 || sum.Pieces != 1 || sum.Doglegs != 0 {
		t.Fatalf("single-column wire summary %+v", sum)
	}
}

func TestRouteAllDoglegEmptyChannels(t *testing.T) {
	byChannel := make([][]Wire, 4) // all channels empty
	tracks, doglegs, broken := RouteAllDogleg(4, byChannel)
	if tracks != 0 || doglegs != 0 || broken != 0 {
		t.Fatalf("empty circuit totals %d/%d/%d, want zeros", tracks, doglegs, broken)
	}
}

func TestSplitDoglegsTilingInvariant(t *testing.T) {
	// Property: for any wire with extent, the pieces tile the span — the
	// piece spans are disjoint, ordered, and their union is the original.
	wires := []Wire{
		{Net: 0, Span: iv(0, 100), Top: []int{1, 50, 99}, Bottom: []int{50, 2, 98}},
		{Net: 1, Span: iv(10, 12), Top: []int{11}},
		{Net: 2, Span: iv(4, 4)},
	}
	pieces := SplitDoglegs(wires)
	byOwner := map[int][]Piece{}
	for _, p := range pieces {
		byOwner[p.Owner] = append(byOwner[p.Owner], p)
	}
	for owner, ps := range byOwner {
		span := wires[owner].Span
		next := span.Lo
		covered := 0
		for i, p := range ps {
			if p.Span.Lo != next {
				t.Fatalf("wire %d piece %d starts at %d, want %d", owner, i, p.Span.Lo, next)
			}
			next = p.Span.Hi + 1
			covered += p.Span.Len()
		}
		if next != span.Hi+1 || covered != span.Len() {
			t.Fatalf("wire %d pieces cover %d columns of %v", owner, covered, span)
		}
	}
}
