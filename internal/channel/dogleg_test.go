package channel

import (
	"context"
	"testing"

	"parroute/internal/gen"
	"parroute/internal/rng"
	"parroute/internal/route"
)

func TestSplitDoglegsNoInteriorContacts(t *testing.T) {
	wires := []Wire{{Net: 0, Span: iv(0, 10), Top: []int{0}, Bottom: []int{10}}}
	pieces := SplitDoglegs(wires)
	if len(pieces) != 1 {
		t.Fatalf("end contacts should not split: %d pieces", len(pieces))
	}
	if pieces[0].Owner != 0 {
		t.Fatal("owner lost")
	}
}

func TestSplitDoglegsInteriorContact(t *testing.T) {
	wires := []Wire{{Net: 3, Span: iv(0, 20), Top: []int{10}}}
	pieces := SplitDoglegs(wires)
	if len(pieces) != 2 {
		t.Fatalf("%d pieces, want 2", len(pieces))
	}
	if pieces[0].Span != iv(0, 9) || pieces[1].Span != iv(10, 20) {
		t.Fatalf("piece spans: %v, %v", pieces[0].Span, pieces[1].Span)
	}
	// The contact at the cut belongs to the piece starting there.
	if len(pieces[0].Top) != 0 || len(pieces[1].Top) != 1 {
		t.Fatalf("contact distribution: %v / %v", pieces[0].Top, pieces[1].Top)
	}
	for _, p := range pieces {
		if p.Owner != 0 || p.Net != 3 {
			t.Fatalf("piece metadata lost: %+v", p)
		}
	}
}

func TestSplitDoglegsMultipleCuts(t *testing.T) {
	wires := []Wire{{Net: 0, Span: iv(0, 30), Top: []int{10}, Bottom: []int{20}}}
	pieces := SplitDoglegs(wires)
	if len(pieces) != 3 {
		t.Fatalf("%d pieces, want 3", len(pieces))
	}
	// Pieces tile the span, sharing cut columns.
	if pieces[0].Span != iv(0, 9) || pieces[1].Span != iv(10, 19) || pieces[2].Span != iv(20, 30) {
		t.Fatalf("spans: %v %v %v", pieces[0].Span, pieces[1].Span, pieces[2].Span)
	}
}

func TestDoglegBreaksCycle(t *testing.T) {
	// The cyclic-VCG instance that the dogleg-free router can only handle
	// by breaking a constraint routes cleanly with doglegs.
	wires := []Wire{
		{Net: 0, Span: iv(0, 30), Top: []int{5}, Bottom: []int{20}},
		{Net: 1, Span: iv(0, 30), Bottom: []int{5}, Top: []int{20}},
	}
	plain := Route(wires)
	if plain.BrokenConstraints == 0 {
		t.Fatal("precondition: plain routing should hit the cycle")
	}
	dog := RouteDogleg(wires)
	if dog.BrokenConstraints != 0 {
		t.Fatalf("dogleg routing still broke %d constraints", dog.BrokenConstraints)
	}
	if dog.Doglegs == 0 {
		t.Fatal("no doglegs introduced")
	}
}

func TestDoglegNeverWorseThanPlain(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(30)
		wires := make([]Wire, n)
		for i := range wires {
			a := r.Intn(200)
			w := Wire{Net: i, Span: iv(a, a+5+r.Intn(60))}
			for k := 0; k < r.Intn(3); k++ {
				w.Top = append(w.Top, w.Span.Lo+r.Intn(w.Span.Len()))
			}
			for k := 0; k < r.Intn(3); k++ {
				w.Bottom = append(w.Bottom, w.Span.Lo+r.Intn(w.Span.Len()))
			}
			wires[i] = w
		}
		plain := Route(wires)
		dog := RouteDogleg(wires)
		if dog.Tracks > plain.Tracks {
			t.Fatalf("trial %d: dogleg used %d tracks vs plain %d", trial, dog.Tracks, plain.Tracks)
		}
		if d := Density(wires); dog.Tracks < d {
			t.Fatalf("trial %d: dogleg beat the density lower bound (%d < %d)",
				trial, dog.Tracks, d)
		}
	}
}

func TestDoglegOnRealCircuit(t *testing.T) {
	// The router's wires are two-terminal (contacts at span ends), so
	// restricted doglegging has nothing to split: this is a
	// characterization test that RouteDogleg degrades gracefully to the
	// plain result on such populations.
	c := gen.Small(3)
	res, err := route.Route(context.Background(), c, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byCh := FromWires(c.NumChannels(), res.Wires)
	plain := RouteAll(c.NumChannels(), res.Wires)
	dogTracks, doglegs, broken := RouteAllDogleg(c.NumChannels(), byCh)
	if dogTracks > plain.AssignedTracks {
		t.Fatalf("dogleg %d tracks vs plain %d", dogTracks, plain.AssignedTracks)
	}
	if dogTracks < plain.DensityTracks {
		t.Fatalf("dogleg %d below density bound %d", dogTracks, plain.DensityTracks)
	}
	if broken > plain.BrokenConstraints {
		t.Fatalf("dogleg broke more constraints (%d) than plain (%d)",
			broken, plain.BrokenConstraints)
	}
	if doglegs != 0 || dogTracks != plain.AssignedTracks {
		t.Fatalf("two-terminal wires should route identically: doglegs=%d tracks=%d vs %d",
			doglegs, dogTracks, plain.AssignedTracks)
	}
	t.Logf("density=%d plain=%d dogleg=%d (doglegs=%d)",
		plain.DensityTracks, plain.AssignedTracks, dogTracks, doglegs)
}
