// Package circuit models a row-based standard-cell design the way the
// TimberWolfSC global router sees it: rows of cells, pins on cells, nets
// over pins, and feedthrough cells inserted during routing.
//
// Geometry convention: rows are numbered bottom-up, 0..NumRows-1. Between
// and around the rows lie NumRows+1 routing channels; channel c runs below
// row c (so channel 0 is under the bottom row and channel NumRows is above
// the top row). A pin on the Bottom edge of a cell in row r is reachable
// from channel r; a Top pin from channel r+1; a pin with an electrically
// equivalent twin on the opposite edge (side Both) from either.
package circuit

import (
	"fmt"
	"sort"

	"parroute/internal/geom"
)

// Side identifies which cell edge(s) a pin is on.
type Side uint8

const (
	// Bottom pins face the channel below the pin's row.
	Bottom Side = iota
	// Top pins face the channel above the pin's row.
	Top
	// Both marks a pin with an electrically equivalent pin on the opposite
	// cell edge; it is reachable from either adjacent channel. Feedthrough
	// pins are always Both.
	Both
)

func (s Side) String() string {
	switch s {
	case Bottom:
		return "bottom"
	case Top:
		return "top"
	case Both:
		return "both"
	}
	return fmt.Sprintf("Side(%d)", uint8(s))
}

// NoCell is the Cell value of a pin not attached to any cell (a fake pin
// introduced by the row-wise parallel algorithm; such pins keep their
// position when feedthrough insertion shifts cells).
const NoCell = -1

// NoNet is the Net value of a pin not connected to any net.
const NoNet = -1

// Pin is a connection point. X and Row are absolute coordinates, kept in
// sync with the owning cell (if any) when cells shift.
type Pin struct {
	ID     int
	Net    int  // net index, or NoNet
	Cell   int  // cell index, or NoCell for fake pins
	Offset int  // x offset from the owning cell's left edge (0 if no cell)
	X      int  // absolute x coordinate
	Row    int  // row index
	Side   Side // cell edge(s) the pin is on
	Fake   bool // true for boundary pins added by the parallel algorithms
}

// Channels returns the routing channels from which the pin is reachable.
// The second value is only meaningful when two channels are returned
// (ok == true); for single-channel pins it equals the first.
func (p *Pin) Channels() (lo, hi int, both bool) {
	switch p.Side {
	case Bottom:
		return p.Row, p.Row, false
	case Top:
		return p.Row + 1, p.Row + 1, false
	default:
		return p.Row, p.Row + 1, true
	}
}

// Point returns the pin position with the row index as y.
func (p *Pin) Point() geom.Point { return geom.Point{X: p.X, Y: p.Row} }

// Cell is a placed standard cell (or an inserted feedthrough cell).
type Cell struct {
	ID    int
	Row   int
	X     int // left edge
	Width int
	Pins  []int // pin IDs on this cell
	Feed  bool  // true for feedthrough cells inserted by the router
}

// Net is a set of electrically connected pins.
type Net struct {
	ID   int
	Name string
	Pins []int // pin IDs
}

// Row is an ordered strip of cells.
type Row struct {
	ID    int
	Cells []int // cell IDs, left to right
}

// Circuit is a complete standard-cell design plus everything the router
// adds to it (feedthrough cells, fake pins).
type Circuit struct {
	Name string
	Rows []Row
	// Cells, Pins and Nets are indexed by their IDs; entries are appended,
	// never removed, so IDs stay stable across feedthrough insertion.
	Cells []Cell
	Pins  []Pin
	Nets  []Net

	// CellHeight is the uniform row height, FeedWidth the width of an
	// inserted feedthrough cell, both in the same x units as cell widths.
	CellHeight int
	FeedWidth  int

	// fakeByRow indexes fake pins by row so feedthrough insertion can
	// shift them along with the row's cells. (The paper keeps fake pins
	// frozen; see DESIGN.md for why this reproduction tracks the shift.)
	// Indexed by row, grown on first fake pin; most circuits (and every
	// serial run) never allocate it.
	fakeByRow [][]int
}

// NumChannels returns the number of routing channels (rows + 1).
func (c *Circuit) NumChannels() int { return len(c.Rows) + 1 }

// RowWidth returns the occupied width of row r (right edge of its last
// cell), or 0 for an empty row.
func (c *Circuit) RowWidth(r int) int {
	row := &c.Rows[r]
	if len(row.Cells) == 0 {
		return 0
	}
	last := &c.Cells[row.Cells[len(row.Cells)-1]]
	return last.X + last.Width
}

// CoreWidth returns the widest row's width: the horizontal extent of the
// placement.
func (c *Circuit) CoreWidth() int {
	w := 0
	for r := range c.Rows {
		w = geom.Max(w, c.RowWidth(r))
	}
	return w
}

// AddRow appends an empty row and returns its index.
func (c *Circuit) AddRow() int {
	id := len(c.Rows)
	c.Rows = append(c.Rows, Row{ID: id})
	return id
}

// AddCell appends a cell at the right end of row r and returns its ID.
// The caller provides the width; the x position follows the previous cell.
func (c *Circuit) AddCell(r, width int) int {
	id := len(c.Cells)
	x := c.RowWidth(r)
	c.Cells = append(c.Cells, Cell{ID: id, Row: r, X: x, Width: width})
	c.Rows[r].Cells = append(c.Rows[r].Cells, id)
	return id
}

// AddNet appends an empty net and returns its ID.
func (c *Circuit) AddNet(name string) int {
	id := len(c.Nets)
	c.Nets = append(c.Nets, Net{ID: id, Name: name})
	return id
}

// AddPin creates a pin on cell cellID at the given offset and side and
// attaches it to net netID (which may be NoNet). It returns the pin ID.
func (c *Circuit) AddPin(cellID, netID, offset int, side Side) int {
	cell := &c.Cells[cellID]
	id := len(c.Pins)
	c.Pins = append(c.Pins, Pin{
		ID: id, Net: netID, Cell: cellID, Offset: offset,
		X: cell.X + offset, Row: cell.Row, Side: side,
	})
	cell.Pins = append(cell.Pins, id)
	if netID != NoNet {
		c.Nets[netID].Pins = append(c.Nets[netID].Pins, id)
	}
	return id
}

// AddFakePin creates a cell-less pin at absolute position (x, row) attached
// to net netID. Fake pins represent a net's crossing point on a partition
// boundary; they are reachable from the side's channel only.
func (c *Circuit) AddFakePin(netID, x, row int, side Side) int {
	id := len(c.Pins)
	c.Pins = append(c.Pins, Pin{
		ID: id, Net: netID, Cell: NoCell,
		X: x, Row: row, Side: side, Fake: true,
	})
	if netID != NoNet {
		c.Nets[netID].Pins = append(c.Nets[netID].Pins, id)
	}
	for len(c.fakeByRow) <= row {
		c.fakeByRow = append(c.fakeByRow, nil)
	}
	c.fakeByRow[row] = append(c.fakeByRow[row], id)
	return id
}

// InsertFeedthrough inserts a feedthrough cell into row r as close as
// possible to x, shifting every cell at or right of the insertion point
// (and the pins on them) by the feedthrough width. It returns the ID of the
// feedthrough's pin, which is attached to net netID.
func (c *Circuit) InsertFeedthrough(r, x, netID int) int {
	pin := c.InsertFeedthroughDeferred(r, x, netID)
	// Re-sync only this row's pins; callers inserting in bulk use the
	// deferred form plus one SyncPinX instead.
	for _, cid := range c.Rows[r].Cells {
		cell := &c.Cells[cid]
		for _, pid := range cell.Pins {
			c.Pins[pid].X = cell.X + c.Pins[pid].Offset
		}
	}
	return pin
}

// InsertFeedthroughDeferred is InsertFeedthrough without the pin-position
// maintenance: cells (and fake pins) shift immediately, but the X of pins
// attached to cells goes stale until the caller runs SyncPinX. Bulk
// insertion uses it to replace the per-insertion O(row pins) shift with a
// single final sweep; the end state is identical because an attached
// pin's position is always its cell's X plus its offset.
func (c *Circuit) InsertFeedthroughDeferred(r, x, netID int) int {
	row := &c.Rows[r]
	// Find the first cell whose left edge is >= x; insert before it.
	idx := sort.Search(len(row.Cells), func(i int) bool {
		return c.Cells[row.Cells[i]].X >= x
	})
	var at int
	if idx == 0 {
		at = 0
		if len(row.Cells) > 0 {
			at = geom.Min(x, c.Cells[row.Cells[0]].X)
		}
		if at < 0 {
			at = 0
		}
	} else {
		prev := &c.Cells[row.Cells[idx-1]]
		at = prev.X + prev.Width
	}

	cellID := len(c.Cells)
	c.Cells = append(c.Cells, Cell{
		ID: cellID, Row: r, X: at, Width: c.FeedWidth, Feed: true,
	})
	row.Cells = append(row.Cells, 0)
	copy(row.Cells[idx+1:], row.Cells[idx:])
	row.Cells[idx] = cellID

	// Shift everything to the right of the insertion point — cells and the
	// fake pins registered on this row, so boundary hand-off points drift
	// with the layout around them instead of stretching every boundary
	// wire by the accumulated insertion width. Attached pins are NOT
	// shifted here (see the doc comment); fake pins have no cell, so they
	// must move immediately — later insertions position against them.
	for _, cid := range row.Cells[idx+1:] {
		c.Cells[cid].X += c.FeedWidth
	}
	if r < len(c.fakeByRow) {
		for _, pid := range c.fakeByRow[r] {
			if c.Pins[pid].X >= at {
				c.Pins[pid].X += c.FeedWidth
			}
		}
	}

	pinID := c.AddPin(cellID, netID, c.FeedWidth/2, Both)
	return pinID
}

// SyncPinX recomputes the absolute X of every cell-attached pin from its
// cell position and offset, closing a batch of InsertFeedthroughDeferred
// calls. Fake pins (no cell) are untouched: insertion maintains them
// directly.
func (c *Circuit) SyncPinX() {
	for i := range c.Pins {
		p := &c.Pins[i]
		if p.Cell != NoCell {
			p.X = c.Cells[p.Cell].X + p.Offset
		}
	}
}

// GrowForFeedthroughs pre-sizes the cell and pin tables (and each row's
// cell list, per rowCounts) for n upcoming feedthrough insertions, so bulk
// insertion does not repeatedly regrow the circuit's backing arrays. A nil
// rowCounts grows only the flat tables.
func (c *Circuit) GrowForFeedthroughs(n int, rowCounts []int) {
	c.Cells = append(make([]Cell, 0, len(c.Cells)+n), c.Cells...)
	c.Pins = append(make([]Pin, 0, len(c.Pins)+n), c.Pins...)
	for r := range rowCounts {
		if rowCounts[r] == 0 {
			continue
		}
		row := &c.Rows[r]
		row.Cells = append(make([]int, 0, len(row.Cells)+rowCounts[r]), row.Cells...)
	}
}

// NetPins returns the pins of net n in ID order.
func (c *Circuit) NetPins(n int) []*Pin {
	net := &c.Nets[n]
	out := make([]*Pin, len(net.Pins))
	for i, pid := range net.Pins {
		out[i] = &c.Pins[pid]
	}
	return out
}

// NetBBox returns the bounding box of net n's pins (x by row index). It
// panics for a pinless net.
func (c *Circuit) NetBBox(n int) geom.Rect {
	pins := c.Nets[n].Pins
	if len(pins) == 0 {
		panic(fmt.Sprintf("circuit: net %d has no pins", n)) //lint:allow panic-in-library documented contract: NetBBox of a pinless net is a caller bug
	}
	pts := make([]geom.Point, len(pins))
	for i, pid := range pins {
		pts[i] = c.Pins[pid].Point()
	}
	return geom.RectFromPoints(pts)
}

// Stats summarizes a circuit the way the paper's Table 1 does.
type Stats struct {
	Name     string
	Rows     int
	Cells    int // placement cells, excluding inserted feedthroughs
	Feeds    int // inserted feedthrough cells
	Pins     int // pins on placement cells (excluding feedthrough and fake pins)
	Nets     int
	MaxDeg   int // largest net degree
	AvgDeg   float64
	CoreW    int
	TotalPin int // all pins including feedthrough and fake pins
}

// ComputeStats gathers summary statistics.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{Name: c.Name, Rows: len(c.Rows), Nets: len(c.Nets), CoreW: c.CoreWidth()}
	for i := range c.Cells {
		if c.Cells[i].Feed {
			s.Feeds++
		} else {
			s.Cells++
		}
	}
	for i := range c.Pins {
		p := &c.Pins[i]
		s.TotalPin++
		if !p.Fake && p.Cell != NoCell && !c.Cells[p.Cell].Feed {
			s.Pins++
		}
	}
	deg := 0
	for i := range c.Nets {
		d := len(c.Nets[i].Pins)
		deg += d
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
	}
	if len(c.Nets) > 0 {
		s.AvgDeg = float64(deg) / float64(len(c.Nets))
	}
	return s
}

// Clone returns a deep copy of the circuit. Parallel workers clone the parts
// of a circuit they own so they can insert feedthroughs independently.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{
		Name:       c.Name,
		CellHeight: c.CellHeight,
		FeedWidth:  c.FeedWidth,
		Rows:       make([]Row, len(c.Rows)),
		Cells:      make([]Cell, len(c.Cells)),
		Pins:       make([]Pin, len(c.Pins)),
		Nets:       make([]Net, len(c.Nets)),
	}
	copy(out.Cells, c.Cells)
	copy(out.Pins, c.Pins)
	if c.fakeByRow != nil {
		out.fakeByRow = make([][]int, len(c.fakeByRow))
		for row, ids := range c.fakeByRow {
			if ids != nil {
				out.fakeByRow[row] = append([]int(nil), ids...)
			}
		}
	}
	// Shared backing arrays keep the clone at a handful of allocations —
	// the parallel workers clone per rank, so this is on their hot path.
	total := 0
	for i := range c.Rows {
		total += len(c.Rows[i].Cells)
	}
	for i := range c.Cells {
		total += len(c.Cells[i].Pins)
	}
	for i := range c.Nets {
		total += len(c.Nets[i].Pins)
	}
	// Full slice expressions cap every sub-slice at its own length so a
	// later append (feedthrough insertion grows row and net lists) copies
	// out instead of clobbering the neighbor's region.
	backing := make([]int, 0, total)
	take := func(src []int) []int {
		lo := len(backing)
		backing = append(backing, src...)
		return backing[lo:len(backing):len(backing)]
	}
	for i := range c.Rows {
		out.Rows[i] = Row{ID: c.Rows[i].ID, Cells: take(c.Rows[i].Cells)}
	}
	for i := range c.Cells {
		out.Cells[i].Pins = take(c.Cells[i].Pins)
	}
	for i := range c.Nets {
		out.Nets[i] = Net{ID: c.Nets[i].ID, Name: c.Nets[i].Name, Pins: take(c.Nets[i].Pins)}
	}
	return out
}

// Validate checks internal consistency: row/cell/pin/net cross-references,
// cell ordering and non-overlap within rows, and pin position coherence.
// It returns the first problem found, or nil.
func (c *Circuit) Validate() error {
	for r := range c.Rows {
		row := &c.Rows[r]
		if row.ID != r {
			return fmt.Errorf("row %d has ID %d", r, row.ID)
		}
		x := -1 << 60
		for _, cid := range row.Cells {
			if cid < 0 || cid >= len(c.Cells) {
				return fmt.Errorf("row %d references cell %d out of range", r, cid)
			}
			cell := &c.Cells[cid]
			if cell.Row != r {
				return fmt.Errorf("cell %d in row %d claims row %d", cid, r, cell.Row)
			}
			if cell.X < x {
				return fmt.Errorf("cell %d at x=%d overlaps previous cell ending at %d in row %d",
					cid, cell.X, x, r)
			}
			if cell.Width <= 0 {
				return fmt.Errorf("cell %d has non-positive width %d", cid, cell.Width)
			}
			x = cell.X + cell.Width
		}
	}
	for i := range c.Cells {
		cell := &c.Cells[i]
		if cell.ID != i {
			return fmt.Errorf("cell %d has ID %d", i, cell.ID)
		}
		if cell.Row < 0 || cell.Row >= len(c.Rows) {
			return fmt.Errorf("cell %d has row %d out of range", i, cell.Row)
		}
		found := false
		for _, cid := range c.Rows[cell.Row].Cells {
			if cid == i {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cell %d missing from its row %d", i, cell.Row)
		}
		for _, pid := range cell.Pins {
			if pid < 0 || pid >= len(c.Pins) {
				return fmt.Errorf("cell %d references pin %d out of range", i, pid)
			}
			if c.Pins[pid].Cell != i {
				return fmt.Errorf("pin %d on cell %d claims cell %d", pid, i, c.Pins[pid].Cell)
			}
		}
	}
	for i := range c.Pins {
		p := &c.Pins[i]
		if p.ID != i {
			return fmt.Errorf("pin %d has ID %d", i, p.ID)
		}
		if p.Row < 0 || p.Row >= len(c.Rows) {
			return fmt.Errorf("pin %d has row %d out of range", i, p.Row)
		}
		if p.Cell != NoCell {
			cell := &c.Cells[p.Cell]
			if p.X != cell.X+p.Offset {
				return fmt.Errorf("pin %d at x=%d but cell %d at x=%d with offset %d",
					i, p.X, p.Cell, cell.X, p.Offset)
			}
			if p.Row != cell.Row {
				return fmt.Errorf("pin %d row %d disagrees with cell %d row %d",
					i, p.Row, p.Cell, cell.Row)
			}
		}
		if p.Net != NoNet {
			if p.Net < 0 || p.Net >= len(c.Nets) {
				return fmt.Errorf("pin %d has net %d out of range", i, p.Net)
			}
			found := false
			for _, pid := range c.Nets[p.Net].Pins {
				if pid == i {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("pin %d missing from its net %d", i, p.Net)
			}
		}
	}
	for i := range c.Nets {
		net := &c.Nets[i]
		if net.ID != i {
			return fmt.Errorf("net %d has ID %d", i, net.ID)
		}
		for _, pid := range net.Pins {
			if pid < 0 || pid >= len(c.Pins) {
				return fmt.Errorf("net %d references pin %d out of range", i, pid)
			}
			if c.Pins[pid].Net != i {
				return fmt.Errorf("pin %d in net %d claims net %d", pid, i, c.Pins[pid].Net)
			}
		}
	}
	return nil
}
