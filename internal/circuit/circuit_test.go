package circuit

import (
	"testing"
)

// buildTiny makes a 2-row circuit: two cells per row, one net across rows,
// one net within a row.
func buildTiny(t *testing.T) *Circuit {
	t.Helper()
	c := &Circuit{Name: "tiny", CellHeight: 10, FeedWidth: 2}
	r0 := c.AddRow()
	r1 := c.AddRow()
	c0 := c.AddCell(r0, 8)
	c1 := c.AddCell(r0, 6)
	c2 := c.AddCell(r1, 8)
	c3 := c.AddCell(r1, 8)
	n0 := c.AddNet("cross")
	n1 := c.AddNet("flat")
	c.AddPin(c0, n0, 2, Bottom)
	c.AddPin(c2, n0, 4, Top)
	c.AddPin(c1, n1, 1, Both)
	c.AddPin(c3, n1, 3, Bottom)
	if err := c.Validate(); err != nil {
		t.Fatalf("tiny circuit invalid: %v", err)
	}
	return c
}

func TestAddCellPositions(t *testing.T) {
	c := buildTiny(t)
	if c.Cells[0].X != 0 || c.Cells[1].X != 8 {
		t.Fatalf("row 0 cell positions: %d, %d", c.Cells[0].X, c.Cells[1].X)
	}
	if c.RowWidth(0) != 14 || c.RowWidth(1) != 16 {
		t.Fatalf("row widths: %d, %d", c.RowWidth(0), c.RowWidth(1))
	}
	if c.CoreWidth() != 16 {
		t.Fatalf("core width: %d", c.CoreWidth())
	}
	if c.NumChannels() != 3 {
		t.Fatalf("channels: %d", c.NumChannels())
	}
}

func TestPinPositionsAndChannels(t *testing.T) {
	c := buildTiny(t)
	p := &c.Pins[0] // cell 0 offset 2, Bottom, row 0
	if p.X != 2 || p.Row != 0 {
		t.Fatalf("pin 0 at (%d, row %d)", p.X, p.Row)
	}
	lo, hi, both := p.Channels()
	if lo != 0 || hi != 0 || both {
		t.Fatalf("bottom pin channels = %d..%d both=%v", lo, hi, both)
	}
	p = &c.Pins[1] // Top, row 1
	lo, hi, both = p.Channels()
	if lo != 2 || hi != 2 || both {
		t.Fatalf("top pin channels = %d..%d both=%v", lo, hi, both)
	}
	p = &c.Pins[2] // Both, row 0
	lo, hi, both = p.Channels()
	if lo != 0 || hi != 1 || !both {
		t.Fatalf("both pin channels = %d..%d both=%v", lo, hi, both)
	}
}

func TestInsertFeedthroughShiftsCellsAndPins(t *testing.T) {
	c := buildTiny(t)
	// Insert into row 0 at x=8 (between cell 0 and cell 1).
	pinID := c.InsertFeedthrough(0, 8, 0)
	if err := c.Validate(); err != nil {
		t.Fatalf("after insertion: %v", err)
	}
	ft := &c.Pins[pinID]
	if ft.Net != 0 || ft.Side != Both || ft.Row != 0 {
		t.Fatalf("feedthrough pin = %+v", ft)
	}
	ftCell := &c.Cells[ft.Cell]
	if !ftCell.Feed || ftCell.X != 8 || ftCell.Width != 2 {
		t.Fatalf("feedthrough cell = %+v", ftCell)
	}
	// Cell 1 and its pin must have shifted by FeedWidth.
	if c.Cells[1].X != 10 {
		t.Fatalf("cell 1 x = %d, want 10", c.Cells[1].X)
	}
	if c.Pins[2].X != 11 { // was 8+1=9, now 10+1=11
		t.Fatalf("pin on shifted cell at x=%d, want 11", c.Pins[2].X)
	}
	// Cell 0 must not have moved.
	if c.Cells[0].X != 0 || c.Pins[0].X != 2 {
		t.Fatal("cells left of the insertion moved")
	}
	// Row width grew.
	if c.RowWidth(0) != 16 {
		t.Fatalf("row width = %d, want 16", c.RowWidth(0))
	}
	// The net gained the feedthrough pin.
	found := false
	for _, pid := range c.Nets[0].Pins {
		if pid == pinID {
			found = true
		}
	}
	if !found {
		t.Fatal("feedthrough pin not attached to its net")
	}
}

func TestInsertFeedthroughAtRowEnds(t *testing.T) {
	c := buildTiny(t)
	// Before everything.
	c.InsertFeedthrough(0, 0, NoNet)
	if err := c.Validate(); err != nil {
		t.Fatalf("insert at start: %v", err)
	}
	// Far beyond the row end.
	c.InsertFeedthrough(0, 10000, NoNet)
	if err := c.Validate(); err != nil {
		t.Fatalf("insert at end: %v", err)
	}
	last := c.Rows[0].Cells[len(c.Rows[0].Cells)-1]
	if !c.Cells[last].Feed {
		t.Fatal("append-insert should land at the row end")
	}
}

func TestInsertFeedthroughShiftsFakePins(t *testing.T) {
	c := buildTiny(t)
	f1 := c.AddFakePin(0, 12, 0, Top) // right of the upcoming insertion
	f2 := c.AddFakePin(0, 4, 0, Top)  // left of it
	c.InsertFeedthrough(0, 8, NoNet)
	if c.Pins[f1].X != 14 {
		t.Fatalf("fake pin right of insertion at x=%d, want 14", c.Pins[f1].X)
	}
	if c.Pins[f2].X != 4 {
		t.Fatalf("fake pin left of insertion moved to x=%d", c.Pins[f2].X)
	}
}

func TestFakePin(t *testing.T) {
	c := buildTiny(t)
	id := c.AddFakePin(1, 7, 1, Bottom)
	p := &c.Pins[id]
	if !p.Fake || p.Cell != NoCell || p.X != 7 || p.Row != 1 {
		t.Fatalf("fake pin = %+v", p)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("circuit with fake pin invalid: %v", err)
	}
	found := false
	for _, pid := range c.Nets[1].Pins {
		if pid == id {
			found = true
		}
	}
	if !found {
		t.Fatal("fake pin not attached to its net")
	}
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	c := buildTiny(t)
	cl := c.Clone()
	if err := cl.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Mutating the clone must not touch the original.
	cl.InsertFeedthrough(0, 8, 0)
	cl.AddFakePin(1, 3, 0, Top)
	cl.Nets[1].Pins = append(cl.Nets[1].Pins, 0)
	if len(c.Cells) != 4 {
		t.Fatalf("original gained cells: %d", len(c.Cells))
	}
	if len(c.Pins) != 4 {
		t.Fatalf("original gained pins: %d", len(c.Pins))
	}
	if len(c.Nets[1].Pins) != 2 {
		t.Fatalf("original net 1 has %d pins", len(c.Nets[1].Pins))
	}
	if c.Cells[1].X != 8 {
		t.Fatal("original cell positions changed")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestCloneSharedBackingSafety(t *testing.T) {
	// Appending to one net's pin list in a clone must not clobber the
	// next net's list (the clone uses one backing array with capped caps).
	c := buildTiny(t)
	cl := c.Clone()
	before := append([]int(nil), cl.Nets[1].Pins...)
	cl.Nets[0].Pins = append(cl.Nets[0].Pins, 99)
	for i, pid := range cl.Nets[1].Pins {
		if pid != before[i] {
			t.Fatalf("net 1 pins corrupted by append to net 0: %v vs %v", cl.Nets[1].Pins, before)
		}
	}
	// Same for rows.
	r0 := append([]int(nil), cl.Rows[1].Cells...)
	cl.Rows[0].Cells = append(cl.Rows[0].Cells, 98)
	for i, cid := range cl.Rows[1].Cells {
		if cid != r0[i] {
			t.Fatal("row 1 cells corrupted by append to row 0")
		}
	}
}

func TestNetBBox(t *testing.T) {
	c := buildTiny(t)
	bb := c.NetBBox(0) // pins at (2, row0) and (4, row1)
	if bb.MinX != 2 || bb.MaxX != 4 || bb.MinY != 0 || bb.MaxY != 1 {
		t.Fatalf("bbox = %v", bb)
	}
}

func TestComputeStats(t *testing.T) {
	c := buildTiny(t)
	c.InsertFeedthrough(0, 8, 0)
	c.AddFakePin(1, 3, 0, Top)
	s := c.ComputeStats()
	if s.Rows != 2 || s.Cells != 4 || s.Feeds != 1 || s.Nets != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Pins != 4 { // regular pins only
		t.Fatalf("stats.Pins = %d, want 4", s.Pins)
	}
	if s.TotalPin != 6 { // + feedthrough pin + fake pin
		t.Fatalf("stats.TotalPin = %d, want 6", s.TotalPin)
	}
	if s.MaxDeg != 3 { // net 0 gained the ft pin
		t.Fatalf("stats.MaxDeg = %d", s.MaxDeg)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	check := func(name string, corrupt func(c *Circuit)) {
		c := buildTiny(t)
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted circuit", name)
		}
	}
	check("pin-x-desync", func(c *Circuit) { c.Pins[0].X = 99 })
	check("pin-row-desync", func(c *Circuit) { c.Pins[0].Row = 1 })
	check("cell-overlap", func(c *Circuit) { c.Cells[1].X = 3 })
	check("cell-zero-width", func(c *Circuit) { c.Cells[0].Width = 0 })
	check("net-dangling-pin", func(c *Circuit) { c.Nets[0].Pins = append(c.Nets[0].Pins, 999) })
	check("pin-wrong-net", func(c *Circuit) { c.Pins[0].Net = 1 })
	check("cell-wrong-row", func(c *Circuit) { c.Cells[0].Row = 1 })
	check("pin-bad-row", func(c *Circuit) { c.Pins[0].Row = 7; c.Cells[0].Row = 7 })
}

func TestSideString(t *testing.T) {
	if Bottom.String() != "bottom" || Top.String() != "top" || Both.String() != "both" {
		t.Fatal("side names wrong")
	}
	if Side(9).String() == "" {
		t.Fatal("unknown side should still format")
	}
}
