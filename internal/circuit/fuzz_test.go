package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks that arbitrary input never panics the circuit
// parser and that every accepted circuit validates and round-trips.
func FuzzReadJSON(f *testing.F) {
	// Seed with a real circuit and a few mutations.
	c := &Circuit{Name: "seed", CellHeight: 10, FeedWidth: 2}
	c.AddRow()
	c.AddRow()
	c.AddCell(0, 8)
	c.AddCell(1, 6)
	n := c.AddNet("n")
	c.AddPin(0, n, 2, Bottom)
	c.AddPin(1, n, 1, Top)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"rows":[[0]],"cells":[{"row":0,"x":0,"width":1,"pins":[]}],"nets":[]}`)
	f.Add(`{"rows":[[99]]}`)
	f.Add(`[1,2,3]`)

	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted an invalid circuit: %v", verr)
		}
		// Accepted circuits round-trip.
		var out bytes.Buffer
		if err := got.WriteJSON(&out); err != nil {
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		again, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if len(again.Cells) != len(got.Cells) || len(again.Pins) != len(got.Pins) {
			t.Fatal("round-trip changed the circuit size")
		}
	})
}
