package circuit

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonCircuit is the stable on-disk representation written by cmd/gensc and
// consumed by cmd/twgr. It stores only the placement-level design; inserted
// feedthroughs and fake pins are routing artifacts and are not serialized.
type jsonCircuit struct {
	Name       string     `json:"name"`
	CellHeight int        `json:"cellHeight"`
	FeedWidth  int        `json:"feedWidth"`
	Rows       [][]int    `json:"rows"` // cell IDs per row, left to right
	Cells      []jsonCell `json:"cells"`
	Nets       []jsonNet  `json:"nets"`
}

type jsonCell struct {
	Row   int       `json:"row"`
	X     int       `json:"x"`
	Width int       `json:"width"`
	Pins  []jsonPin `json:"pins"`
}

type jsonPin struct {
	Net    int  `json:"net"`
	Offset int  `json:"offset"`
	Side   Side `json:"side"`
}

type jsonNet struct {
	Name string `json:"name"`
}

// WriteJSON serializes the circuit. Circuits containing routing artifacts
// (feedthrough cells or fake pins) are rejected: serialization is for
// pre-routing designs.
func (c *Circuit) WriteJSON(w io.Writer) error {
	jc := jsonCircuit{
		Name:       c.Name,
		CellHeight: c.CellHeight,
		FeedWidth:  c.FeedWidth,
		Rows:       make([][]int, len(c.Rows)),
		Cells:      make([]jsonCell, len(c.Cells)),
		Nets:       make([]jsonNet, len(c.Nets)),
	}
	for i := range c.Pins {
		if c.Pins[i].Fake {
			return fmt.Errorf("circuit: cannot serialize circuit with fake pin %d", i)
		}
	}
	for i := range c.Rows {
		jc.Rows[i] = append([]int(nil), c.Rows[i].Cells...)
	}
	for i := range c.Cells {
		cell := &c.Cells[i]
		if cell.Feed {
			return fmt.Errorf("circuit: cannot serialize circuit with feedthrough cell %d", i)
		}
		jcell := jsonCell{Row: cell.Row, X: cell.X, Width: cell.Width}
		for _, pid := range cell.Pins {
			p := &c.Pins[pid]
			jcell.Pins = append(jcell.Pins, jsonPin{Net: p.Net, Offset: p.Offset, Side: p.Side})
		}
		jc.Cells[i] = jcell
	}
	for i := range c.Nets {
		jc.Nets[i] = jsonNet{Name: c.Nets[i].Name}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jc)
}

// ReadJSON parses a circuit written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Circuit, error) {
	var jc jsonCircuit
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jc); err != nil {
		return nil, fmt.Errorf("circuit: decoding: %w", err)
	}
	c := &Circuit{
		Name:       jc.Name,
		CellHeight: jc.CellHeight,
		FeedWidth:  jc.FeedWidth,
	}
	for range jc.Rows {
		c.AddRow()
	}
	for _, jn := range jc.Nets {
		c.AddNet(jn.Name)
	}
	// Cells must be added in row order to keep AddCell's x bookkeeping
	// simple, but the file stores explicit x positions; rebuild directly.
	c.Cells = make([]Cell, len(jc.Cells))
	for i, jcell := range jc.Cells {
		if jcell.Row < 0 || jcell.Row >= len(c.Rows) {
			return nil, fmt.Errorf("circuit: cell %d has row %d out of range", i, jcell.Row)
		}
		c.Cells[i] = Cell{ID: i, Row: jcell.Row, X: jcell.X, Width: jcell.Width}
	}
	for r, ids := range jc.Rows {
		for _, cid := range ids {
			if cid < 0 || cid >= len(c.Cells) {
				return nil, fmt.Errorf("circuit: row %d references cell %d out of range", r, cid)
			}
		}
		c.Rows[r].Cells = append([]int(nil), ids...)
	}
	for i, jcell := range jc.Cells {
		for _, jp := range jcell.Pins {
			if jp.Net != NoNet && (jp.Net < 0 || jp.Net >= len(c.Nets)) {
				return nil, fmt.Errorf("circuit: cell %d pin has net %d out of range", i, jp.Net)
			}
			c.AddPin(i, jp.Net, jp.Offset, jp.Side)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: invalid circuit in file: %w", err)
	}
	return c, nil
}
