package circuit

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	c := buildTiny(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || got.CellHeight != c.CellHeight || got.FeedWidth != c.FeedWidth {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Cells) != len(c.Cells) || len(got.Pins) != len(c.Pins) || len(got.Nets) != len(c.Nets) {
		t.Fatalf("sizes: cells %d/%d pins %d/%d nets %d/%d",
			len(got.Cells), len(c.Cells), len(got.Pins), len(c.Pins), len(got.Nets), len(c.Nets))
	}
	for i := range c.Cells {
		if got.Cells[i].X != c.Cells[i].X || got.Cells[i].Width != c.Cells[i].Width ||
			got.Cells[i].Row != c.Cells[i].Row {
			t.Fatalf("cell %d mismatch: %+v vs %+v", i, got.Cells[i], c.Cells[i])
		}
	}
	// Pin IDs are renumbered cell-by-cell on load; compare per cell.
	for i := range c.Cells {
		wantPins := c.Cells[i].Pins
		gotPins := got.Cells[i].Pins
		if len(wantPins) != len(gotPins) {
			t.Fatalf("cell %d pin count %d vs %d", i, len(gotPins), len(wantPins))
		}
		for j := range wantPins {
			w, g := c.Pins[wantPins[j]], got.Pins[gotPins[j]]
			if g.X != w.X || g.Net != w.Net || g.Side != w.Side || g.Offset != w.Offset {
				t.Fatalf("cell %d pin %d mismatch: %+v vs %+v", i, j, g, w)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped circuit invalid: %v", err)
	}
}

func TestJSONRejectsRoutedCircuits(t *testing.T) {
	c := buildTiny(t)
	c.InsertFeedthrough(0, 8, 0)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err == nil {
		t.Fatal("serialized a circuit with feedthrough cells")
	}
	c2 := buildTiny(t)
	c2.AddFakePin(0, 3, 0, Top)
	if err := c2.WriteJSON(&buf); err == nil {
		t.Fatal("serialized a circuit with fake pins")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":     "hello",
		"bad cell row": `{"name":"x","cellHeight":10,"feedWidth":2,"rows":[[0]],"cells":[{"row":5,"x":0,"width":4,"pins":[]}],"nets":[]}`,
		"bad net ref":  `{"name":"x","cellHeight":10,"feedWidth":2,"rows":[[0]],"cells":[{"row":0,"x":0,"width":4,"pins":[{"net":3,"offset":0,"side":0}]}],"nets":[]}`,
		"bad row ref":  `{"name":"x","cellHeight":10,"feedWidth":2,"rows":[[7]],"cells":[{"row":0,"x":0,"width":4,"pins":[]}],"nets":[]}`,
	}
	for name, payload := range cases {
		if _, err := ReadJSON(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
