package circuit

import (
	"testing"
	"testing/quick"

	"parroute/internal/rng"
)

// TestRandomConstructionStaysValid drives the construction API with random
// but legal operation sequences and checks Validate after every step.
func TestRandomConstructionStaysValid(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		c := &Circuit{Name: "prop", CellHeight: 10, FeedWidth: 1 + r.Intn(3)}
		rows := 2 + r.Intn(5)
		for i := 0; i < rows; i++ {
			c.AddRow()
		}
		nets := 1 + r.Intn(8)
		for i := 0; i < nets; i++ {
			c.AddNet("")
		}
		cells := rows + r.Intn(30)
		for i := 0; i < cells; i++ {
			c.AddCell(r.Intn(rows), 1+r.Intn(12))
		}
		// Pins on random cells.
		for i := 0; i < 40; i++ {
			cellID := r.Intn(len(c.Cells))
			cell := &c.Cells[cellID]
			offset := 0
			if cell.Width > 1 {
				offset = r.Intn(cell.Width)
			}
			c.AddPin(cellID, r.Intn(nets), offset, Side(r.Intn(3)))
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomFeedthroughInsertionInvariants checks that arbitrary insertion
// sequences keep the circuit valid, grow rows monotonically, and never
// move pins leftwards.
func TestRandomFeedthroughInsertionInvariants(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		c := &Circuit{Name: "prop", CellHeight: 10, FeedWidth: 2}
		const rows = 3
		for i := 0; i < rows; i++ {
			c.AddRow()
			for j := 0; j < 5; j++ {
				c.AddCell(i, 4+r.Intn(8))
			}
		}
		n := c.AddNet("n")
		for i := 0; i < 6; i++ {
			c.AddPin(r.Intn(len(c.Cells)), n, 0, Bottom)
		}
		c.AddFakePin(n, r.Intn(40), r.Intn(rows), Top)

		prevX := make([]int, len(c.Pins))
		for i := range c.Pins {
			prevX[i] = c.Pins[i].X
		}
		prevW := make([]int, rows)
		for i := 0; i < rows; i++ {
			prevW[i] = c.RowWidth(i)
		}
		for step := 0; step < 25; step++ {
			row := r.Intn(rows)
			c.InsertFeedthrough(row, r.Intn(c.RowWidth(row)+10), NoNet)
			if c.Validate() != nil {
				return false
			}
			if c.RowWidth(row) != prevW[row]+c.FeedWidth {
				return false // row must grow by exactly the feed width
			}
			prevW[row] = c.RowWidth(row)
			for i := range prevX {
				if c.Pins[i].X < prevX[i] {
					return false // insertion never moves pins left
				}
				prevX[i] = c.Pins[i].X
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneEquivalenceUnderMutation: a clone must behave exactly like the
// original under the same mutation sequence.
func TestCloneEquivalenceUnderMutation(t *testing.T) {
	f := func(seed uint16) bool {
		r1 := rng.New(uint64(seed))
		r2 := rng.New(uint64(seed))
		base := &Circuit{Name: "p", CellHeight: 10, FeedWidth: 2}
		for i := 0; i < 3; i++ {
			base.AddRow()
			for j := 0; j < 4; j++ {
				base.AddCell(i, 6)
			}
		}
		n := base.AddNet("n")
		base.AddPin(0, n, 1, Bottom)
		base.AddPin(5, n, 2, Top)

		a := base.Clone()
		b := base.Clone()
		apply := func(c *Circuit, r *rng.RNG) {
			for step := 0; step < 10; step++ {
				c.InsertFeedthrough(r.Intn(3), r.Intn(c.CoreWidth()+5), n)
			}
		}
		apply(a, r1)
		apply(b, r2)
		if len(a.Pins) != len(b.Pins) || len(a.Cells) != len(b.Cells) {
			return false
		}
		for i := range a.Pins {
			if a.Pins[i] != b.Pins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
