// Package gen synthesizes row-based standard-cell circuits with the
// statistics of the MCNC layout-synthesis benchmarks the paper evaluates on.
//
// The MCNC benchmark files themselves are not redistributable, so this
// package is the substitution documented in DESIGN.md: it reproduces the
// characteristics the routing algorithms are sensitive to — row count, cell
// count, net count, total pin count, a geometric-locality pin distribution,
// a heavy-tailed net-degree distribution, and (for avq.large) a giant clock
// net alongside 99% small nets, the situation that motivates the paper's
// pin-number-weight net partition.
package gen

import (
	"fmt"
	"sort"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/rng"
)

// Config controls synthesis. Zero fields take defaults from Normalize.
type Config struct {
	Name  string
	Rows  int
	Cells int
	Nets  int
	// TargetPins is the total pin count to aim for; the realized count is
	// within a few percent (net degrees are sampled, not solved for).
	TargetPins int
	// GiantNets lists explicit degrees for oversized nets (clock/reset
	// lines). They are generated first and spread across the whole core.
	GiantNets []int
	// MaxDegree caps regular net degrees. Default 24.
	MaxDegree int
	// MeanCellWidth is the average cell width. Default 8.
	MeanCellWidth int
	// LocalityRows / LocalityX control how tightly a net's pins cluster
	// around its center, in rows and in x units. Defaults 1 row and two
	// cell widths — the tight locality of placed standard-cell designs,
	// calibrated so per-channel densities land in the 10-40 track range
	// the MCNC circuits route at.
	LocalityRows int
	LocalityX    int
	// EquivFrac is the fraction of pins given an electrically equivalent
	// twin (side Both); such pins make segments switchable. Row-based
	// standard cells commonly expose pins on both rails (TWGR's handling
	// of equivalent pins is one of its headline features). Default 0.6.
	EquivFrac float64
	Seed      uint64
}

// Normalize fills defaults and returns an error for nonsensical settings.
func (cfg *Config) Normalize() error {
	if cfg.Rows <= 0 || cfg.Cells <= 0 || cfg.Nets <= 0 {
		return fmt.Errorf("gen: rows, cells and nets must be positive (got %d, %d, %d)",
			cfg.Rows, cfg.Cells, cfg.Nets)
	}
	if cfg.Cells < cfg.Rows {
		return fmt.Errorf("gen: need at least one cell per row (%d cells, %d rows)",
			cfg.Cells, cfg.Rows)
	}
	if cfg.Name == "" {
		cfg.Name = "synthetic"
	}
	if cfg.TargetPins <= 0 {
		cfg.TargetPins = 3 * cfg.Nets
	}
	if cfg.MaxDegree <= 0 {
		cfg.MaxDegree = 24
	}
	if cfg.MeanCellWidth <= 0 {
		cfg.MeanCellWidth = 8
	}
	if cfg.LocalityRows <= 0 {
		cfg.LocalityRows = 1
	}
	if cfg.EquivFrac == 0 {
		cfg.EquivFrac = 0.6
	}
	if cfg.EquivFrac < 0 || cfg.EquivFrac > 1 {
		return fmt.Errorf("gen: EquivFrac %v outside [0,1]", cfg.EquivFrac)
	}
	return nil
}

// Generate synthesizes a circuit from the configuration. The result is
// deterministic in cfg (including Seed) and always passes Validate.
func Generate(cfg Config) (*circuit.Circuit, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed ^ hashName(cfg.Name))

	c := &circuit.Circuit{Name: cfg.Name, CellHeight: 12, FeedWidth: 2}

	// Rows and cells: distribute cells evenly, widths ~N(mean, mean/3).
	perRow := cfg.Cells / cfg.Rows
	extra := cfg.Cells % cfg.Rows
	for row := 0; row < cfg.Rows; row++ {
		c.AddRow()
		n := perRow
		if row < extra {
			n++
		}
		for i := 0; i < n; i++ {
			w := r.NormInt(float64(cfg.MeanCellWidth), float64(cfg.MeanCellWidth)/3, 3)
			c.AddCell(row, w)
		}
	}
	coreW := c.CoreWidth()
	localX := cfg.LocalityX
	if localX <= 0 {
		localX = 2 * cfg.MeanCellWidth
	}

	// Net degrees: giants first, then regular nets with a heavy-tailed
	// (shifted geometric) degree distribution tuned to hit TargetPins.
	degrees := make([]int, 0, cfg.Nets)
	giantPins := 0
	for _, d := range cfg.GiantNets {
		if d < 2 {
			return nil, fmt.Errorf("gen: giant net degree %d < 2", d)
		}
		degrees = append(degrees, d)
		giantPins += d
	}
	regular := cfg.Nets - len(cfg.GiantNets)
	if regular < 0 {
		return nil, fmt.Errorf("gen: more giant nets (%d) than nets (%d)",
			len(cfg.GiantNets), cfg.Nets)
	}
	remaining := cfg.TargetPins - giantPins
	if regular > 0 && remaining < 2*regular {
		return nil, fmt.Errorf("gen: TargetPins %d too small for %d regular nets",
			cfg.TargetPins, regular)
	}
	if regular > 0 {
		meanDeg := float64(remaining) / float64(regular) // >= 2
		// degree = 2 + Geometric(p) has mean 2 + (1-p)/p; solve for p.
		p := 1.0 / (meanDeg - 1.0)
		if p > 1 {
			p = 1
		}
		for i := 0; i < regular; i++ {
			d := 2 + r.Geometric(p)
			if d > cfg.MaxDegree {
				d = cfg.MaxDegree
			}
			degrees = append(degrees, d)
		}
	}

	// Pins: each net picks a center and clusters pins around it. Giant
	// nets use the whole core as their spread (clock trees go everywhere).
	for i, deg := range degrees {
		name := fmt.Sprintf("n%d", i)
		giant := i < len(cfg.GiantNets)
		if giant {
			name = fmt.Sprintf("clk%d", i)
		}
		netID := c.AddNet(name)
		centerRow := r.Intn(cfg.Rows)
		centerX := r.Intn(geom.Max(coreW, 1))
		// Standard-cell placement keeps most of a net's pins in one or two
		// adjacent rows; the 0.5 factor puts roughly 60% of the pins of a
		// LocalityRows=1 net in its center row.
		spreadRows := 0.5 * float64(cfg.LocalityRows)
		spreadX := float64(localX)
		if giant {
			spreadRows = float64(cfg.Rows) / 2
			spreadX = float64(coreW) / 2
		}
		for j := 0; j < deg; j++ {
			row := geom.Clamp(r.NormInt(float64(centerRow), spreadRows, 0), 0, cfg.Rows-1)
			x := geom.Clamp(r.NormInt(float64(centerX), spreadX, 0), 0, coreW-1)
			cellID := cellNear(c, row, x)
			cell := &c.Cells[cellID]
			offset := 0
			if cell.Width > 1 {
				offset = r.Intn(cell.Width)
			}
			side := circuit.Bottom
			switch f := r.Float64(); {
			case f < cfg.EquivFrac:
				side = circuit.Both
			case f < cfg.EquivFrac+(1-cfg.EquivFrac)/2:
				side = circuit.Top
			}
			c.AddPin(cellID, netID, offset, side)
		}
	}

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated invalid circuit: %w", err)
	}
	return c, nil
}

// cellNear returns the cell in the given row closest to x.
func cellNear(c *circuit.Circuit, row, x int) int {
	cells := c.Rows[row].Cells
	idx := sort.Search(len(cells), func(i int) bool {
		return c.Cells[cells[i]].X > x
	})
	if idx > 0 {
		idx--
	}
	return cells[idx]
}

func hashName(s string) uint64 {
	// FNV-1a; mixes the preset name into the seed so different circuits
	// generated with the same seed differ.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
