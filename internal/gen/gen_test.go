package gen

import (
	"math"
	"os"
	"testing"

	"parroute/internal/circuit"
)

func TestPresetsGenerateValidCircuits(t *testing.T) {
	for _, name := range CircuitNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = 1
			c, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("invalid circuit: %v", err)
			}
			s := c.ComputeStats()
			if s.Rows != cfg.Rows || s.Cells != cfg.Cells || s.Nets != cfg.Nets {
				t.Fatalf("stats %+v do not match preset %+v", s, cfg)
			}
			// Pin counts are sampled; within 10% of target.
			if math.Abs(float64(s.Pins-cfg.TargetPins)) > 0.1*float64(cfg.TargetPins) {
				t.Fatalf("pins = %d, target %d", s.Pins, cfg.TargetPins)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Benchmark("primary2", 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Benchmark("primary2", 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pins) != len(b.Pins) {
		t.Fatalf("pin counts differ: %d vs %d", len(a.Pins), len(b.Pins))
	}
	for i := range a.Pins {
		if a.Pins[i] != b.Pins[i] {
			t.Fatalf("pin %d differs: %+v vs %+v", i, a.Pins[i], b.Pins[i])
		}
	}
	c, err := Benchmark("primary2", 10)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Pins {
		if i < len(c.Pins) && a.Pins[i] != c.Pins[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestDifferentPresetsDifferUnderSameSeed(t *testing.T) {
	a, _ := Benchmark("primary2", 5)
	b, _ := Benchmark("biomed", 5)
	if a.CoreWidth() == b.CoreWidth() && len(a.Pins) == len(b.Pins) {
		t.Fatal("presets suspiciously identical")
	}
}

func TestGiantNets(t *testing.T) {
	c, err := Benchmark("avq.large", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := Preset("avq.large")
	for i, want := range cfg.GiantNets {
		if got := len(c.Nets[i].Pins); got != want {
			t.Fatalf("giant net %d has %d pins, want %d", i, got, want)
		}
	}
	// The paper: 99% of nets are small.
	small := 0
	for i := range c.Nets {
		if len(c.Nets[i].Pins) < 10 {
			small++
		}
	}
	if frac := float64(small) / float64(len(c.Nets)); frac < 0.97 {
		t.Fatalf("only %.1f%% of nets are small", 100*frac)
	}
	// Giant nets must spread across most rows (clock-tree shape).
	bb := c.NetBBox(0)
	if bb.Height() < len(c.Rows)/2 {
		t.Fatalf("giant net spans only %d rows of %d", bb.Height(), len(c.Rows))
	}
}

func TestLocality(t *testing.T) {
	c, err := Benchmark("primary2", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Regular nets must be geometrically local: median bbox height small.
	var heights []int
	for i := range c.Nets {
		if len(c.Nets[i].Pins) < 2 {
			continue
		}
		heights = append(heights, c.NetBBox(i).Height())
	}
	tall := 0
	for _, h := range heights {
		if h > 6 {
			tall++
		}
	}
	if frac := float64(tall) / float64(len(heights)); frac > 0.05 {
		t.Fatalf("%.1f%% of nets span more than 6 rows; locality broken", 100*frac)
	}
}

func TestEquivalentPinFraction(t *testing.T) {
	c, err := Benchmark("primary2", 3)
	if err != nil {
		t.Fatal(err)
	}
	both := 0
	for i := range c.Pins {
		if c.Pins[i].Side == circuit.Both {
			both++
		}
	}
	frac := float64(both) / float64(len(c.Pins))
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("Both-side pin fraction = %.2f, want about 0.6", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rows: 0, Cells: 10, Nets: 10},
		{Rows: 10, Cells: 5, Nets: 10},                                        // fewer cells than rows
		{Rows: 2, Cells: 10, Nets: 10, TargetPins: 5},                         // too few pins
		{Rows: 2, Cells: 10, Nets: 2, GiantNets: []int{1}},                    // giant degree < 2
		{Rows: 2, Cells: 10, Nets: 1, GiantNets: []int{5, 5}, TargetPins: 20}, // more giants than nets
		{Rows: 2, Cells: 10, Nets: 10, EquivFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestSmallAndTiny(t *testing.T) {
	s := Small(1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ti := Tiny(1)
	if err := ti.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ti.Cells) >= len(s.Cells) {
		t.Fatal("Tiny should be smaller than Small")
	}
}

func TestAllNamesSorted(t *testing.T) {
	names := AllNames()
	if len(names) != 8 {
		t.Fatalf("expected 8 presets, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

// TestCircuitNamesOrder pins the paper's Table 1 order and that the
// synthetic scale presets stay out of the default benchmark set — code
// that defaults to CircuitNames must never route a million cells by
// accident.
func TestCircuitNamesOrder(t *testing.T) {
	want := []string{"primary2", "biomed", "industry2", "industry3", "avq.small", "avq.large"}
	got := CircuitNames()
	if len(got) != len(want) {
		t.Fatalf("CircuitNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CircuitNames = %v, want %v", got, want)
		}
	}
	for _, s := range ScaleNames() {
		for _, n := range got {
			if n == s {
				t.Fatalf("scale preset %q leaked into CircuitNames", s)
			}
		}
		if _, err := Preset(s); err != nil {
			t.Fatalf("scale preset %q not registered: %v", s, err)
		}
	}
}

// TestScalePresetsGenerateValidCircuits mirrors the MCNC stats test for
// the synthetic scale presets. synth.100k runs except under -short;
// synth.1m generates a million cells and is opt-in via SCALE_1M=1.
func TestScalePresetsGenerateValidCircuits(t *testing.T) {
	for _, name := range ScaleNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() {
				t.Skipf("skipping %s in -short mode", name)
			}
			if name == "synth.1m" && os.Getenv("SCALE_1M") == "" {
				t.Skip("set SCALE_1M=1 to generate the million-cell preset")
			}
			cfg, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = 1
			c, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("invalid circuit: %v", err)
			}
			s := c.ComputeStats()
			if s.Rows != cfg.Rows || s.Cells != cfg.Cells || s.Nets != cfg.Nets {
				t.Fatalf("stats %+v do not match preset %+v", s, cfg)
			}
			if math.Abs(float64(s.Pins-cfg.TargetPins)) > 0.1*float64(cfg.TargetPins) {
				t.Fatalf("pins = %d, target %d", s.Pins, cfg.TargetPins)
			}
		})
	}
}
