package gen

import (
	"fmt"
	"sort"

	"parroute/internal/circuit"
)

// The presets mirror the published characteristics of the six MCNC
// layout-synthesis circuits the paper evaluates on (its Table 1): row,
// cell, net and pin counts. avq.large additionally carries the giant clock
// nets the paper calls out in §5 ("one of them has more than 2000 pins, but
// 99% of the nets have less than 10 pins").
var presets = map[string]Config{
	"primary2": {
		Name: "primary2", Rows: 28, Cells: 3014, Nets: 3029, TargetPins: 11219,
	},
	"biomed": {
		Name: "biomed", Rows: 46, Cells: 6514, Nets: 5742, TargetPins: 21040,
		GiantNets: []int{600, 320},
	},
	"industry2": {
		Name: "industry2", Rows: 72, Cells: 12637, Nets: 13419, TargetPins: 48404,
	},
	"industry3": {
		Name: "industry3", Rows: 54, Cells: 15406, Nets: 21940, TargetPins: 65791,
	},
	"avq.small": {
		Name: "avq.small", Rows: 80, Cells: 21854, Nets: 22124, TargetPins: 76231,
		GiantNets: []int{860, 440},
	},
	"avq.large": {
		Name: "avq.large", Rows: 86, Cells: 25178, Nets: 25384, TargetPins: 82751,
		GiantNets: []int{2300, 940, 510, 260},
	},

	// The synth.* presets extrapolate the MCNC statistics to modern design
	// sizes (they are not in the paper — see DESIGN.md §15). Row counts
	// grow roughly with the square root of cell count so the core keeps a
	// plausible aspect ratio; pins per net, locality and the clock-net
	// heavy tail follow avq.large. They back the scale smoke tiers and the
	// BENCH_PR10 scale points, and are deliberately NOT in CircuitNames:
	// default benchmark sweeps stay at the paper's sizes.
	"synth.100k": {
		Name: "synth.100k", Rows: 180, Cells: 100_000, Nets: 101_000, TargetPins: 333_000,
		GiantNets: []int{5200, 2100, 1000, 520},
	},
	"synth.1m": {
		Name: "synth.1m", Rows: 560, Cells: 1_000_000, Nets: 1_010_000, TargetPins: 3_330_000,
		GiantNets: []int{21_000, 8_400, 4_100, 2_050, 1_020},
	},
}

// CircuitNames returns the preset names in the paper's Table 1 order.
// The synthetic scale presets are excluded on purpose: everything that
// defaults to "the benchmark circuits" (bench sweeps, examples) routes
// the paper's six, and million-cell runs are always an explicit opt-in
// via ScaleNames or a preset name.
func CircuitNames() []string {
	return []string{"primary2", "biomed", "industry2", "industry3", "avq.small", "avq.large"}
}

// ScaleNames returns the synthetic scale presets, smallest first.
func ScaleNames() []string {
	return []string{"synth.100k", "synth.1m"}
}

// AllNames returns every preset name, sorted.
func AllNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the generation config for a named benchmark circuit.
func Preset(name string) (Config, error) {
	cfg, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, AllNames())
	}
	return cfg, nil
}

// Benchmark generates a named benchmark circuit with the given seed.
func Benchmark(name string, seed uint64) (*circuit.Circuit, error) {
	cfg, err := Preset(name)
	if err != nil {
		return nil, err
	}
	cfg.Seed = seed
	return Generate(cfg)
}

// Small returns a quick circuit for tests and examples: a fraction of
// primary2's size, same structure.
func Small(seed uint64) *circuit.Circuit {
	c, err := Generate(Config{
		Name: "small", Rows: 8, Cells: 240, Nets: 260, TargetPins: 900, Seed: seed,
	})
	if err != nil {
		panic(err) //lint:allow panic-in-library static config; Generate cannot fail on it
	}
	return c
}

// Tiny returns a minimal circuit for unit tests: 4 rows, a few dozen nets.
func Tiny(seed uint64) *circuit.Circuit {
	c, err := Generate(Config{
		Name: "tiny", Rows: 4, Cells: 48, Nets: 40, TargetPins: 130, Seed: seed,
	})
	if err != nil {
		panic(err) //lint:allow panic-in-library static config; Generate cannot fail on it
	}
	return c
}
