// Package geom provides the small planar-geometry vocabulary used by the
// router: integer points, rectangles and closed intervals on the x axis.
//
// Coordinates follow the standard-cell convention of the paper: x grows to
// the right along a cell row, and the row index plays the role of a coarse
// y coordinate (rows are numbered bottom-up).
package geom

import "fmt"

// Point is an integer point in the routing plane. Y is usually a row index.
type Point struct {
	X, Y int
}

// Manhattan returns the rectilinear (L1) distance between p and q.
func (p Point) Manhattan(q Point) int {
	return Abs(p.X-q.X) + Abs(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Abs returns the absolute value of x.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Clamp limits v to the closed range [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Interval is a closed integer interval [Lo, Hi] on the x axis. An interval
// with Hi < Lo is empty.
type Interval struct {
	Lo, Hi int
}

// NewInterval returns the interval covering both a and b regardless of order.
func NewInterval(a, b int) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{Lo: a, Hi: b}
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

// Len returns the number of integer points covered by the interval.
func (iv Interval) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x int) bool { return x >= iv.Lo && x <= iv.Hi }

// Overlaps reports whether iv and other share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Union returns the smallest interval covering both iv and other. Either
// operand may be empty, in which case the other is returned.
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Lo: Min(iv.Lo, other.Lo), Hi: Max(iv.Hi, other.Hi)}
}

// Intersect returns the overlap of iv and other (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: Max(iv.Lo, other.Lo), Hi: Min(iv.Hi, other.Hi)}
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Rect is an axis-aligned rectangle with inclusive integer bounds.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// RectFromPoints returns the bounding box of the given points. It panics if
// pts is empty, since an empty bounding box has no meaningful coordinates.
func RectFromPoints(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectFromPoints with no points") //lint:allow panic-in-library documented contract: empty bounding box has no coordinates
	}
	r := Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		r = r.Expand(p)
	}
	return r
}

// Expand grows the rectangle just enough to include p.
func (r Rect) Expand(p Point) Rect {
	return Rect{
		MinX: Min(r.MinX, p.X), MinY: Min(r.MinY, p.Y),
		MaxX: Max(r.MaxX, p.X), MaxY: Max(r.MaxY, p.Y),
	}
}

// Contains reports whether p lies inside the rectangle (bounds inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the horizontal extent (inclusive point count minus one).
func (r Rect) Width() int { return r.MaxX - r.MinX }

// Height returns the vertical extent (inclusive point count minus one).
func (r Rect) Height() int { return r.MaxY - r.MinY }

// Center returns the midpoint of the rectangle, rounded toward MinX/MinY.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// HalfPerimeter is the half-perimeter wirelength bound of the rectangle, the
// classical lower bound for the wirelength of a net with this bounding box.
func (r Rect) HalfPerimeter() int { return r.Width() + r.Height() }

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d]x[%d,%d]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
