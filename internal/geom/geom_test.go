package geom

import (
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	cases := []struct {
		p, q Point
		want int
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{-2, 5}, Point{2, -5}, 14},
		{Point{10, 1}, Point{1, 10}, 18},
	}
	for _, c := range cases {
		if got := c.p.Manhattan(c.q); got != c.want {
			t.Errorf("Manhattan(%v, %v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := c.q.Manhattan(c.p); got != c.want {
			t.Errorf("Manhattan not symmetric for %v, %v", c.p, c.q)
		}
	}
}

func TestManhattanProperties(t *testing.T) {
	// Triangle inequality and non-negativity.
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{int(ax), int(ay)}
		b := Point{int(bx), int(by)}
		c := Point{int(cx), int(cy)}
		return a.Manhattan(b) >= 0 && a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAbsMinMaxClamp(t *testing.T) {
	if Abs(-5) != 5 || Abs(5) != 5 || Abs(0) != 0 {
		t.Fatal("Abs broken")
	}
	if Min(2, 3) != 2 || Min(3, 2) != 2 || Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Fatal("Min/Max broken")
	}
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("Clamp broken")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(7, 3)
	if iv.Lo != 3 || iv.Hi != 7 {
		t.Fatalf("NewInterval should normalize order, got %v", iv)
	}
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if iv.Len() != 5 {
		t.Fatalf("Len = %d, want 5", iv.Len())
	}
	empty := Interval{Lo: 1, Hi: 0}
	if !empty.Empty() || empty.Len() != 0 {
		t.Fatal("empty interval misbehaves")
	}
	if empty.Contains(0) || empty.Contains(1) {
		t.Fatal("empty interval contains points")
	}
	for x := 3; x <= 7; x++ {
		if !iv.Contains(x) {
			t.Fatalf("interval %v should contain %d", iv, x)
		}
	}
	if iv.Contains(2) || iv.Contains(8) {
		t.Fatal("interval contains out-of-range points")
	}
}

func TestIntervalOverlapsUnionIntersect(t *testing.T) {
	a := NewInterval(0, 5)
	b := NewInterval(5, 10)
	c := NewInterval(6, 10)
	if !a.Overlaps(b) {
		t.Fatal("touching intervals must overlap (closed intervals)")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint intervals reported overlapping")
	}
	if u := a.Union(c); u.Lo != 0 || u.Hi != 10 {
		t.Fatalf("Union = %v", u)
	}
	if x := a.Intersect(b); x.Lo != 5 || x.Hi != 5 {
		t.Fatalf("Intersect = %v", x)
	}
	if x := a.Intersect(c); !x.Empty() {
		t.Fatalf("Intersect of disjoint = %v, want empty", x)
	}
	empty := Interval{Lo: 1, Hi: 0}
	if empty.Overlaps(a) || a.Overlaps(empty) {
		t.Fatal("empty interval overlaps something")
	}
	if u := empty.Union(a); u != a {
		t.Fatalf("Union with empty = %v, want %v", u, a)
	}
	if u := a.Union(empty); u != a {
		t.Fatalf("Union with empty = %v, want %v", u, a)
	}
}

func TestIntervalProperties(t *testing.T) {
	// Union covers both; intersect is contained in both.
	f := func(a1, a2, b1, b2 int16) bool {
		a := NewInterval(int(a1), int(a2))
		b := NewInterval(int(b1), int(b2))
		u := a.Union(b)
		if !u.Contains(a.Lo) || !u.Contains(a.Hi) || !u.Contains(b.Lo) || !u.Contains(b.Hi) {
			return false
		}
		x := a.Intersect(b)
		if !x.Empty() {
			if !a.Contains(x.Lo) || !a.Contains(x.Hi) || !b.Contains(x.Lo) || !b.Contains(x.Hi) {
				return false
			}
			if !a.Overlaps(b) {
				return false
			}
		} else if a.Overlaps(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	pts := []Point{{3, 1}, {0, 5}, {7, 2}}
	r := RectFromPoints(pts)
	if r.MinX != 0 || r.MaxX != 7 || r.MinY != 1 || r.MaxY != 5 {
		t.Fatalf("bbox = %v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("bbox must contain its defining point %v", p)
		}
	}
	if r.Width() != 7 || r.Height() != 4 || r.HalfPerimeter() != 11 {
		t.Fatalf("width/height/hpwl = %d/%d/%d", r.Width(), r.Height(), r.HalfPerimeter())
	}
	if c := r.Center(); c.X != 3 || c.Y != 3 {
		t.Fatalf("center = %v", c)
	}
	r2 := r.Expand(Point{-1, 9})
	if r2.MinX != -1 || r2.MaxY != 9 {
		t.Fatalf("expand = %v", r2)
	}
}

func TestRectFromPointsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RectFromPoints(nil) should panic")
		}
	}()
	RectFromPoints(nil)
}
