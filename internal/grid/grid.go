// Package grid implements the coarse global-routing grid of TWGR's step 2.
//
// The core is cut into vertical columns of ColWidth x units. For every
// routing channel the grid tracks how many horizontal wire runs cross each
// column (channel density), and for every cell row it tracks how many
// vertical runs cross the row at each column (feedthrough demand). Both are
// plain counters, so grids from different workers can be summed — that is
// exactly the synchronization the net-wise parallel algorithm performs.
//
// Cost queries use the standard incremental sum-of-squares congestion
// proxy: adding a wire to a column of density d costs 2d+1 (the increase of
// d^2), so minimizing total cost approximately minimizes peak density.
// Feedthrough demand uses the same form scaled by FtBase, making clustered
// feedthroughs (which stretch a row) progressively more expensive.
package grid

import (
	"fmt"

	"parroute/internal/geom"
)

// Grid holds channel-density and feedthrough-demand counters.
type Grid struct {
	Rows     int // cell rows
	Channels int // Rows + 1
	Cols     int
	ColWidth int

	// Dens[ch*Cols+col] counts horizontal runs of channel ch over column
	// col; Ft[row*Cols+col] counts vertical runs through row at col.
	Dens []int32
	Ft   []int32
}

// New returns an empty grid for a core of the given width and row count.
// colWidth must be positive; width is rounded up to a whole column.
func New(rows, coreWidth, colWidth int) *Grid {
	if colWidth <= 0 {
		// Constructor contract: callers pass a validated Options quantum,
		// so this is a programmer error rather than a data condition.
		panic(fmt.Sprintf("grid: colWidth %d must be positive", colWidth)) //lint:allow panic-in-library documented constructor invariant
	}
	if coreWidth < 1 {
		coreWidth = 1
	}
	cols := (coreWidth + colWidth - 1) / colWidth
	if cols < 1 {
		cols = 1
	}
	return &Grid{
		Rows: rows, Channels: rows + 1, Cols: cols, ColWidth: colWidth,
		Dens: make([]int32, (rows+1)*cols),
		Ft:   make([]int32, rows*cols),
	}
}

// ColOf maps an x coordinate to its column, clamping out-of-core values.
func (g *Grid) ColOf(x int) int {
	return geom.Clamp(x/g.ColWidth, 0, g.Cols-1)
}

// ColCenter returns the x coordinate of the center of a column.
func (g *Grid) ColCenter(col int) int {
	return col*g.ColWidth + g.ColWidth/2
}

// clampCol clamps a column index into the grid. The vertical APIs accept
// raw columns (unlike the horizontal ones, which go through ColOf), and a
// pin sitting exactly on the core's right edge maps to coreWidth/ColWidth
// == Cols when the width is a whole number of columns — one past the last
// column. Clamping mirrors ColOf so boundary pins land in the edge column
// instead of the next row's counters.
func (g *Grid) clampCol(col int) int {
	return geom.Clamp(col, 0, g.Cols-1)
}

// AddHoriz adjusts the density of channel ch over the x interval iv by
// delta (use -1 to remove a previously added run). Empty intervals are
// no-ops; a zero-length interval still occupies one column.
func (g *Grid) AddHoriz(ch int, iv geom.Interval, delta int32) {
	if iv.Empty() {
		return
	}
	lo, hi := g.ColOf(iv.Lo), g.ColOf(iv.Hi)
	base := ch * g.Cols
	for col := lo; col <= hi; col++ {
		g.Dens[base+col] += delta
	}
}

// AddVert adjusts feedthrough demand at column col for rows rowLo..rowHi
// (inclusive) by delta.
func (g *Grid) AddVert(rowLo, rowHi, col int, delta int32) {
	col = g.clampCol(col)
	for row := rowLo; row <= rowHi; row++ {
		g.Ft[row*g.Cols+col] += delta
	}
}

// HorizAddCost returns the congestion cost of adding a horizontal run to
// channel ch over iv: sum of 2d+1 over the covered columns.
func (g *Grid) HorizAddCost(ch int, iv geom.Interval) int64 {
	if iv.Empty() {
		return 0
	}
	lo, hi := g.ColOf(iv.Lo), g.ColOf(iv.Hi)
	base := ch * g.Cols
	var cost int64
	for col := lo; col <= hi; col++ {
		cost += 2*int64(g.Dens[base+col]) + 1
	}
	return cost
}

// VertAddCost returns the cost of adding a vertical run through rows
// rowLo..rowHi at column col: per crossed row, ftBase plus the clustering
// penalty 2d (the sum-of-squares increment scaled into the same units).
func (g *Grid) VertAddCost(rowLo, rowHi, col int, ftBase int64) int64 {
	col = g.clampCol(col)
	var cost int64
	for row := rowLo; row <= rowHi; row++ {
		cost += ftBase + 2*int64(g.Ft[row*g.Cols+col])
	}
	return cost
}

// SpanCost returns the congestion-cost delta of moving a horizontal run
// over iv from channel from to channel to, with the run still counted in
// from: per covered column, the add cost 2*d_to+1 minus the removal credit
// 2*d_from-1. It equals HorizAddCost(to)-HorizAddCost(from) evaluated with
// the run removed, but in a single walk and without mutating the grid —
// the incremental form of the step-2 L-flip evaluation.
func (g *Grid) SpanCost(from, to int, iv geom.Interval) int64 {
	if iv.Empty() || from == to {
		return 0
	}
	lo, hi := g.ColOf(iv.Lo), g.ColOf(iv.Hi)
	fromBase, toBase := from*g.Cols, to*g.Cols
	var cost int64
	for col := lo; col <= hi; col++ {
		cost += 2 * (int64(g.Dens[toBase+col]) - int64(g.Dens[fromBase+col]) + 1)
	}
	return cost
}

// MoveWire moves a horizontal run over iv from channel from to channel to,
// the mutation matching a negative SpanCost.
func (g *Grid) MoveWire(from, to int, iv geom.Interval) {
	if iv.Empty() || from == to {
		return
	}
	lo, hi := g.ColOf(iv.Lo), g.ColOf(iv.Hi)
	fromBase, toBase := from*g.Cols, to*g.Cols
	for col := lo; col <= hi; col++ {
		g.Dens[fromBase+col]--
		g.Dens[toBase+col]++
	}
}

// VertMoveCost returns the cost delta of moving a vertical run crossing
// rows rowLo..rowHi from column fromCol to column toCol, with the run
// still counted at fromCol. The ftBase term is crossed-row count times
// ftBase on both sides, so it cancels; only the clustering penalty
// remains: per row, 2*(ft_to - ft_from + 1).
func (g *Grid) VertMoveCost(rowLo, rowHi, fromCol, toCol int) int64 {
	fromCol, toCol = g.clampCol(fromCol), g.clampCol(toCol)
	if fromCol == toCol {
		return 0
	}
	var cost int64
	for row := rowLo; row <= rowHi; row++ {
		cost += 2 * (int64(g.Ft[row*g.Cols+toCol]) - int64(g.Ft[row*g.Cols+fromCol]) + 1)
	}
	return cost
}

// MoveVert moves a vertical run crossing rows rowLo..rowHi from column
// fromCol to column toCol.
func (g *Grid) MoveVert(rowLo, rowHi, fromCol, toCol int) {
	fromCol, toCol = g.clampCol(fromCol), g.clampCol(toCol)
	if fromCol == toCol {
		return
	}
	for row := rowLo; row <= rowHi; row++ {
		g.Ft[row*g.Cols+fromCol]--
		g.Ft[row*g.Cols+toCol]++
	}
}

// FtDemand returns the feedthrough demand at (row, col).
func (g *Grid) FtDemand(row, col int) int { return int(g.Ft[row*g.Cols+col]) }

// Density returns the horizontal-run count of channel ch at col.
func (g *Grid) Density(ch, col int) int { return int(g.Dens[ch*g.Cols+col]) }

// TotalFt returns the total feedthrough demand.
func (g *Grid) TotalFt() int {
	var n int32
	for _, v := range g.Ft {
		n += v
	}
	return int(n)
}

// MaxChannelDensity returns the peak column density of channel ch.
func (g *Grid) MaxChannelDensity(ch int) int {
	base := ch * g.Cols
	var m int32
	for col := 0; col < g.Cols; col++ {
		if d := g.Dens[base+col]; d > m {
			m = d
		}
	}
	return int(m)
}

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := &Grid{Rows: g.Rows, Channels: g.Channels, Cols: g.Cols, ColWidth: g.ColWidth,
		Dens: append([]int32(nil), g.Dens...),
		Ft:   append([]int32(nil), g.Ft...)}
	return out
}

// Zero resets all counters in place.
func (g *Grid) Zero() {
	for i := range g.Dens {
		g.Dens[i] = 0
	}
	for i := range g.Ft {
		g.Ft[i] = 0
	}
}

// AddFrom adds other's counters into g. The grids must have identical
// shape; this is the merge step of the net-wise synchronization, and the
// merged grid may have crossed the transport, so a shape mismatch is a
// data error reported to the caller.
func (g *Grid) AddFrom(other *Grid) error {
	if err := g.matchErr(other); err != nil {
		return err
	}
	for i, v := range other.Dens {
		g.Dens[i] += v
	}
	for i, v := range other.Ft {
		g.Ft[i] += v
	}
	return nil
}

// SubFrom subtracts other's counters from g; see AddFrom for the shape
// contract.
func (g *Grid) SubFrom(other *Grid) error {
	if err := g.matchErr(other); err != nil {
		return err
	}
	for i, v := range other.Dens {
		g.Dens[i] -= v
	}
	for i, v := range other.Ft {
		g.Ft[i] -= v
	}
	return nil
}

func (g *Grid) matchErr(other *Grid) error {
	if g.Rows != other.Rows || g.Cols != other.Cols {
		return fmt.Errorf("grid: shape mismatch %dx%d vs %dx%d",
			g.Rows, g.Cols, other.Rows, other.Cols)
	}
	return nil
}
