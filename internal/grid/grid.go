// Package grid implements the coarse global-routing grid of TWGR's step 2.
//
// The core is cut into vertical columns of ColWidth x units. For every
// routing channel the grid tracks how many horizontal wire runs cross each
// column (channel density), and for every cell row it tracks how many
// vertical runs cross the row at each column (feedthrough demand). Both are
// plain counters, so grids from different workers can be summed — that is
// exactly the synchronization the net-wise parallel algorithm performs.
//
// The counters are sharded into row-band slabs (bandSize channels or rows
// per slab) that are allocated lazily on first write. A parallel rank whose
// sub-circuit only populates its own row block therefore pays for its band
// of the grid, not the whole design — the difference between O(rows) and
// O(rows/p) peak grid memory at million-cell scale.
//
// Cost queries use the standard incremental sum-of-squares congestion
// proxy: adding a wire to a column of density d costs 2d+1 (the increase of
// d^2), so minimizing total cost approximately minimizes peak density.
// Feedthrough demand uses the same form scaled by FtBase, making clustered
// feedthroughs (which stretch a row) progressively more expensive.
package grid

import (
	"fmt"

	"parroute/internal/geom"
)

// bandShift sets the slab granularity: 1<<bandShift channels (or rows) per
// lazily allocated band. A package constant so grids of equal shape always
// have aligned bands, letting AddFrom/SubFrom merge slab-wise.
const bandShift = 3

// Grid holds channel-density and feedthrough-demand counters.
type Grid struct {
	Rows     int // cell rows
	Channels int // Rows + 1
	Cols     int
	ColWidth int

	// dens[b] holds, channel-major, the per-column horizontal-run counts
	// of channels [b<<bandShift, (b+1)<<bandShift); ft[b] holds the
	// per-column vertical-run counts of the corresponding rows. A nil slab
	// means no counter in the band was ever written; reads resolve to the
	// shared zero row.
	dens [][]int32
	ft   [][]int32
	zero []int32
}

// New returns an empty grid for a core of the given width and row count.
// colWidth must be positive; width is rounded up to a whole column.
func New(rows, coreWidth, colWidth int) *Grid {
	if colWidth <= 0 {
		// Constructor contract: callers pass a validated Options quantum,
		// so this is a programmer error rather than a data condition.
		panic(fmt.Sprintf("grid: colWidth %d must be positive", colWidth)) //lint:allow panic-in-library documented constructor invariant
	}
	if coreWidth < 1 {
		coreWidth = 1
	}
	cols := (coreWidth + colWidth - 1) / colWidth
	if cols < 1 {
		cols = 1
	}
	return &Grid{
		Rows: rows, Channels: rows + 1, Cols: cols, ColWidth: colWidth,
		dens: make([][]int32, bandsFor(rows+1)),
		ft:   make([][]int32, bandsFor(rows)),
		zero: make([]int32, cols),
	}
}

// FromCounts builds a grid from flat channel-major density and row-major
// feedthrough counters, the payload shape DensCounts and FtCounts produce
// and the net-wise allreduce ships between ranks. The counters cross the
// transport, so a length mismatch is a data error, not a panic. All-zero
// bands stay unallocated.
func FromCounts(rows, cols, colWidth int, dens, ft []int32) (*Grid, error) {
	g := New(rows, cols*colWidth, colWidth)
	if g.Cols != cols {
		return nil, fmt.Errorf("grid: %d columns of width %d do not round-trip", cols, colWidth)
	}
	if len(dens) != (rows+1)*cols || len(ft) != rows*cols {
		return nil, fmt.Errorf("grid: counter lengths %d/%d, want %d/%d",
			len(dens), len(ft), (rows+1)*cols, rows*cols)
	}
	for ch := 0; ch < g.Channels; ch++ {
		if seg := dens[ch*cols : (ch+1)*cols]; !allZero(seg) {
			copy(g.densRowMut(ch), seg)
		}
	}
	for row := 0; row < rows; row++ {
		if seg := ft[row*cols : (row+1)*cols]; !allZero(seg) {
			copy(g.ftRowMut(row), seg)
		}
	}
	return g, nil
}

func bandsFor(n int) int { return (n + 1<<bandShift - 1) >> bandShift }

func allZero(s []int32) bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// densRow returns channel ch's column counts for reading; untouched bands
// resolve to the shared zero row. Callers must not write through it.
func (g *Grid) densRow(ch int) []int32 {
	if s := g.dens[ch>>bandShift]; s != nil {
		off := (ch & (1<<bandShift - 1)) * g.Cols
		return s[off : off+g.Cols : off+g.Cols]
	}
	return g.zero
}

// densRowMut returns channel ch's column counts for writing, allocating
// the band slab on first touch.
func (g *Grid) densRowMut(ch int) []int32 {
	b := ch >> bandShift
	s := g.dens[b]
	if s == nil {
		n := geom.Min(g.Channels-b<<bandShift, 1<<bandShift)
		s = make([]int32, n*g.Cols)
		g.dens[b] = s
	}
	off := (ch & (1<<bandShift - 1)) * g.Cols
	return s[off : off+g.Cols : off+g.Cols]
}

// ftRow and ftRowMut are densRow/densRowMut for the feedthrough counters.
func (g *Grid) ftRow(row int) []int32 {
	if s := g.ft[row>>bandShift]; s != nil {
		off := (row & (1<<bandShift - 1)) * g.Cols
		return s[off : off+g.Cols : off+g.Cols]
	}
	return g.zero
}

func (g *Grid) ftRowMut(row int) []int32 {
	b := row >> bandShift
	s := g.ft[b]
	if s == nil {
		n := geom.Min(g.Rows-b<<bandShift, 1<<bandShift)
		s = make([]int32, n*g.Cols)
		g.ft[b] = s
	}
	off := (row & (1<<bandShift - 1)) * g.Cols
	return s[off : off+g.Cols : off+g.Cols]
}

// ColOf maps an x coordinate to its column, clamping out-of-core values.
func (g *Grid) ColOf(x int) int {
	return geom.Clamp(x/g.ColWidth, 0, g.Cols-1)
}

// ColCenter returns the x coordinate of the center of a column.
func (g *Grid) ColCenter(col int) int {
	return col*g.ColWidth + g.ColWidth/2
}

// clampCol clamps a column index into the grid. The vertical APIs accept
// raw columns (unlike the horizontal ones, which go through ColOf), and a
// pin sitting exactly on the core's right edge maps to coreWidth/ColWidth
// == Cols when the width is a whole number of columns — one past the last
// column. Clamping mirrors ColOf so boundary pins land in the edge column
// instead of the next row's counters.
func (g *Grid) clampCol(col int) int {
	return geom.Clamp(col, 0, g.Cols-1)
}

// AddHoriz adjusts the density of channel ch over the x interval iv by
// delta (use -1 to remove a previously added run). Empty intervals are
// no-ops; a zero-length interval still occupies one column.
func (g *Grid) AddHoriz(ch int, iv geom.Interval, delta int32) {
	if iv.Empty() {
		return
	}
	lo, hi := g.ColOf(iv.Lo), g.ColOf(iv.Hi)
	row := g.densRowMut(ch)
	for col := lo; col <= hi; col++ {
		row[col] += delta
	}
}

// AddVert adjusts feedthrough demand at column col for rows rowLo..rowHi
// (inclusive) by delta.
func (g *Grid) AddVert(rowLo, rowHi, col int, delta int32) {
	col = g.clampCol(col)
	for row := rowLo; row <= rowHi; row++ {
		g.ftRowMut(row)[col] += delta
	}
}

// HorizAddCost returns the congestion cost of adding a horizontal run to
// channel ch over iv: sum of 2d+1 over the covered columns.
func (g *Grid) HorizAddCost(ch int, iv geom.Interval) int64 {
	if iv.Empty() {
		return 0
	}
	lo, hi := g.ColOf(iv.Lo), g.ColOf(iv.Hi)
	row := g.densRow(ch)
	var cost int64
	for col := lo; col <= hi; col++ {
		cost += 2*int64(row[col]) + 1
	}
	return cost
}

// VertAddCost returns the cost of adding a vertical run through rows
// rowLo..rowHi at column col: per crossed row, ftBase plus the clustering
// penalty 2d (the sum-of-squares increment scaled into the same units).
func (g *Grid) VertAddCost(rowLo, rowHi, col int, ftBase int64) int64 {
	col = g.clampCol(col)
	var cost int64
	for row := rowLo; row <= rowHi; row++ {
		cost += ftBase + 2*int64(g.ftRow(row)[col])
	}
	return cost
}

// SpanCost returns the congestion-cost delta of moving a horizontal run
// over iv from channel from to channel to, with the run still counted in
// from: per covered column, the add cost 2*d_to+1 minus the removal credit
// 2*d_from-1. It equals HorizAddCost(to)-HorizAddCost(from) evaluated with
// the run removed, but in a single walk and without mutating the grid —
// the incremental form of the step-2 L-flip evaluation.
func (g *Grid) SpanCost(from, to int, iv geom.Interval) int64 {
	if iv.Empty() || from == to {
		return 0
	}
	lo, hi := g.ColOf(iv.Lo), g.ColOf(iv.Hi)
	fromRow, toRow := g.densRow(from), g.densRow(to)
	var cost int64
	for col := lo; col <= hi; col++ {
		cost += 2 * (int64(toRow[col]) - int64(fromRow[col]) + 1)
	}
	return cost
}

// MoveWire moves a horizontal run over iv from channel from to channel to,
// the mutation matching a negative SpanCost.
func (g *Grid) MoveWire(from, to int, iv geom.Interval) {
	if iv.Empty() || from == to {
		return
	}
	lo, hi := g.ColOf(iv.Lo), g.ColOf(iv.Hi)
	fromRow, toRow := g.densRowMut(from), g.densRowMut(to)
	for col := lo; col <= hi; col++ {
		fromRow[col]--
		toRow[col]++
	}
}

// VertMoveCost returns the cost delta of moving a vertical run crossing
// rows rowLo..rowHi from column fromCol to column toCol, with the run
// still counted at fromCol. The ftBase term is crossed-row count times
// ftBase on both sides, so it cancels; only the clustering penalty
// remains: per row, 2*(ft_to - ft_from + 1).
func (g *Grid) VertMoveCost(rowLo, rowHi, fromCol, toCol int) int64 {
	fromCol, toCol = g.clampCol(fromCol), g.clampCol(toCol)
	if fromCol == toCol {
		return 0
	}
	var cost int64
	for row := rowLo; row <= rowHi; row++ {
		r := g.ftRow(row)
		cost += 2 * (int64(r[toCol]) - int64(r[fromCol]) + 1)
	}
	return cost
}

// MoveVert moves a vertical run crossing rows rowLo..rowHi from column
// fromCol to column toCol.
func (g *Grid) MoveVert(rowLo, rowHi, fromCol, toCol int) {
	fromCol, toCol = g.clampCol(fromCol), g.clampCol(toCol)
	if fromCol == toCol {
		return
	}
	for row := rowLo; row <= rowHi; row++ {
		r := g.ftRowMut(row)
		r[fromCol]--
		r[toCol]++
	}
}

// FtDemand returns the feedthrough demand at (row, col).
func (g *Grid) FtDemand(row, col int) int { return int(g.ftRow(row)[col]) }

// Density returns the horizontal-run count of channel ch at col.
func (g *Grid) Density(ch, col int) int { return int(g.densRow(ch)[col]) }

// DensCounts returns a flat channel-major copy of the density counters,
// the payload the net-wise allreduce ships; see FromCounts.
func (g *Grid) DensCounts() []int32 {
	out := make([]int32, g.Channels*g.Cols)
	for ch := 0; ch < g.Channels; ch++ {
		copy(out[ch*g.Cols:], g.densRow(ch))
	}
	return out
}

// FtCounts returns a flat row-major copy of the feedthrough counters.
func (g *Grid) FtCounts() []int32 {
	out := make([]int32, g.Rows*g.Cols)
	for row := 0; row < g.Rows; row++ {
		copy(out[row*g.Cols:], g.ftRow(row))
	}
	return out
}

// TotalFt returns the total feedthrough demand.
func (g *Grid) TotalFt() int {
	var n int32
	for _, slab := range g.ft {
		for _, v := range slab {
			n += v
		}
	}
	return int(n)
}

// MaxChannelDensity returns the peak column density of channel ch.
func (g *Grid) MaxChannelDensity(ch int) int {
	var m int32
	for _, d := range g.densRow(ch) {
		if d > m {
			m = d
		}
	}
	return int(m)
}

// Clone returns a deep copy. Unallocated bands stay unallocated.
func (g *Grid) Clone() *Grid {
	out := &Grid{Rows: g.Rows, Channels: g.Channels, Cols: g.Cols, ColWidth: g.ColWidth,
		dens: make([][]int32, len(g.dens)),
		ft:   make([][]int32, len(g.ft)),
		zero: make([]int32, g.Cols)}
	for b, slab := range g.dens {
		if slab != nil {
			out.dens[b] = append([]int32(nil), slab...)
		}
	}
	for b, slab := range g.ft {
		if slab != nil {
			out.ft[b] = append([]int32(nil), slab...)
		}
	}
	return out
}

// Zero resets all counters in place, keeping allocated bands allocated
// (the caller is about to refill them).
func (g *Grid) Zero() {
	for _, slab := range g.dens {
		for i := range slab {
			slab[i] = 0
		}
	}
	for _, slab := range g.ft {
		for i := range slab {
			slab[i] = 0
		}
	}
}

// AddFrom adds other's counters into g. The grids must have identical
// shape; this is the merge step of the net-wise synchronization, and the
// merged grid may have crossed the transport, so a shape mismatch is a
// data error reported to the caller. Bands unallocated on both sides stay
// unallocated — bands align because bandShift is a package constant.
func (g *Grid) AddFrom(other *Grid) error {
	if err := g.matchErr(other); err != nil {
		return err
	}
	mergeSlabs(g, g.dens, other.dens, true, func(dst, src []int32) {
		for i, v := range src {
			dst[i] += v
		}
	})
	mergeSlabs(g, g.ft, other.ft, false, func(dst, src []int32) {
		for i, v := range src {
			dst[i] += v
		}
	})
	return nil
}

// SubFrom subtracts other's counters from g; see AddFrom for the shape
// contract.
func (g *Grid) SubFrom(other *Grid) error {
	if err := g.matchErr(other); err != nil {
		return err
	}
	mergeSlabs(g, g.dens, other.dens, true, func(dst, src []int32) {
		for i, v := range src {
			dst[i] -= v
		}
	})
	mergeSlabs(g, g.ft, other.ft, false, func(dst, src []int32) {
		for i, v := range src {
			dst[i] -= v
		}
	})
	return nil
}

// mergeSlabs applies combine to every band other has allocated, allocating
// the matching band of g on demand. isDens selects which counter family
// the band indices address.
func mergeSlabs(g *Grid, dst, src [][]int32, isDens bool, combine func(dst, src []int32)) {
	for b, slab := range src {
		if slab == nil {
			continue
		}
		if dst[b] == nil {
			if isDens {
				g.densRowMut(b << bandShift)
			} else {
				g.ftRowMut(b << bandShift)
			}
		}
		combine(dst[b], slab)
	}
}

func (g *Grid) matchErr(other *Grid) error {
	if g.Rows != other.Rows || g.Cols != other.Cols {
		return fmt.Errorf("grid: shape mismatch %dx%d vs %dx%d",
			g.Rows, g.Cols, other.Rows, other.Cols)
	}
	return nil
}
