package grid

import (
	"testing"
	"testing/quick"

	"parroute/internal/geom"
	"parroute/internal/rng"
)

func TestNewShape(t *testing.T) {
	g := New(10, 160, 16)
	if g.Rows != 10 || g.Channels != 11 || g.Cols != 10 || g.ColWidth != 16 {
		t.Fatalf("shape: %+v", g)
	}
	if len(g.DensCounts()) != 11*10 || len(g.FtCounts()) != 10*10 {
		t.Fatalf("array sizes: %d, %d", len(g.DensCounts()), len(g.FtCounts()))
	}
	// Width rounds up.
	g = New(2, 161, 16)
	if g.Cols != 11 {
		t.Fatalf("cols = %d, want 11", g.Cols)
	}
	// Degenerate width still yields one column.
	g = New(2, 0, 16)
	if g.Cols != 1 {
		t.Fatalf("cols = %d, want 1", g.Cols)
	}
}

func TestNewPanicsOnBadColWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("colWidth 0 should panic")
		}
	}()
	New(2, 100, 0)
}

func TestColOfClamps(t *testing.T) {
	g := New(2, 160, 16)
	if g.ColOf(-5) != 0 {
		t.Fatal("negative x should clamp to column 0")
	}
	if g.ColOf(100000) != g.Cols-1 {
		t.Fatal("huge x should clamp to the last column")
	}
	if g.ColOf(0) != 0 || g.ColOf(15) != 0 || g.ColOf(16) != 1 {
		t.Fatal("column mapping wrong")
	}
	if g.ColCenter(1) != 24 {
		t.Fatalf("center of column 1 = %d", g.ColCenter(1))
	}
}

func TestBoundaryPinColumns(t *testing.T) {
	// coreWidth 160 with colWidth 16 is a whole number of columns, so a
	// pin exactly on the right core edge computes 160/16 == 10 == Cols —
	// one past the last column. ColOf must clamp it into column 9.
	g := New(2, 160, 16)
	if got := g.ColOf(160); got != g.Cols-1 {
		t.Fatalf("right-edge pin maps to column %d, want %d", got, g.Cols-1)
	}
	// A non-multiple core width rounds Cols up, so the right edge lands
	// inside the last column without clamping.
	g = New(2, 161, 16)
	if got := g.ColOf(161); got != g.Cols-1 {
		t.Fatalf("right-edge pin maps to column %d, want %d", got, g.Cols-1)
	}
	// Left edge and out-of-core pins.
	if g.ColOf(0) != 0 || g.ColOf(-1) != 0 || g.ColOf(10000) != g.Cols-1 {
		t.Fatal("edge pins not clamped")
	}
}

func TestVertAPIsClampBoundaryColumn(t *testing.T) {
	// The vertical APIs take raw columns; a right-edge pin's unclamped
	// column (== Cols) must not spill into the next row's counters or
	// index out of range.
	g := New(3, 160, 16)
	last := g.Cols - 1
	g.AddVert(0, 1, g.Cols, 1) // one past the last column
	if g.FtDemand(0, last) != 1 || g.FtDemand(1, last) != 1 {
		t.Fatalf("boundary AddVert landed at demand %d/%d, want 1/1",
			g.FtDemand(0, last), g.FtDemand(1, last))
	}
	if g.FtDemand(0, 0) != 0 {
		t.Fatal("boundary AddVert bled into column 0")
	}
	if c := g.VertAddCost(0, 1, g.Cols, 10); c != 2*(10+2) {
		t.Fatalf("boundary VertAddCost = %d, want %d", c, 2*(10+2))
	}
	// Moving from the clamped boundary column to itself is a no-op.
	if c := g.VertMoveCost(0, 1, g.Cols, last); c != 0 {
		t.Fatalf("clamped-identity VertMoveCost = %d, want 0", c)
	}
	g.MoveVert(0, 1, g.Cols, 0)
	if g.FtDemand(0, last) != 0 || g.FtDemand(0, 0) != 1 {
		t.Fatal("boundary MoveVert did not move the run from the edge column")
	}
}

func TestAddHorizAndDensity(t *testing.T) {
	g := New(2, 160, 16)
	g.AddHoriz(1, geom.NewInterval(0, 47), 1)
	for col := 0; col < 3; col++ {
		if g.Density(1, col) != 1 {
			t.Fatalf("col %d density = %d", col, g.Density(1, col))
		}
	}
	if g.Density(1, 3) != 0 || g.Density(0, 0) != 0 {
		t.Fatal("density bled into wrong cells")
	}
	g.AddHoriz(1, geom.NewInterval(0, 47), -1)
	if g.MaxChannelDensity(1) != 0 {
		t.Fatal("remove did not cancel add")
	}
	// Empty interval is a no-op.
	g.AddHoriz(1, geom.Interval{Lo: 1, Hi: 0}, 1)
	if g.MaxChannelDensity(1) != 0 {
		t.Fatal("empty interval changed the grid")
	}
}

func TestAddVertAndDemand(t *testing.T) {
	g := New(5, 160, 16)
	g.AddVert(1, 3, 2, 1)
	for row := 1; row <= 3; row++ {
		if g.FtDemand(row, 2) != 1 {
			t.Fatalf("row %d demand = %d", row, g.FtDemand(row, 2))
		}
	}
	if g.FtDemand(0, 2) != 0 || g.FtDemand(4, 2) != 0 || g.FtDemand(2, 1) != 0 {
		t.Fatal("demand bled")
	}
	if g.TotalFt() != 3 {
		t.Fatalf("total ft = %d", g.TotalFt())
	}
}

func TestHorizAddCost(t *testing.T) {
	g := New(2, 160, 16)
	iv := geom.NewInterval(0, 31) // 2 columns
	if c := g.HorizAddCost(0, iv); c != 2 {
		t.Fatalf("empty-grid cost = %d, want 2 (2 cols x (2*0+1))", c)
	}
	g.AddHoriz(0, iv, 1)
	if c := g.HorizAddCost(0, iv); c != 6 {
		t.Fatalf("cost at density 1 = %d, want 6 (2 cols x 3)", c)
	}
	if c := g.HorizAddCost(0, geom.Interval{Lo: 1, Hi: 0}); c != 0 {
		t.Fatalf("empty interval cost = %d", c)
	}
}

func TestVertAddCost(t *testing.T) {
	g := New(5, 160, 16)
	if c := g.VertAddCost(1, 3, 2, 10); c != 30 {
		t.Fatalf("cost = %d, want 30 (3 rows x ftBase)", c)
	}
	g.AddVert(1, 3, 2, 1)
	if c := g.VertAddCost(1, 3, 2, 10); c != 36 {
		t.Fatalf("cost = %d, want 36 (3 x (10 + 2*1))", c)
	}
}

func TestCloneAndMerge(t *testing.T) {
	a := New(3, 160, 16)
	a.AddHoriz(0, geom.NewInterval(0, 31), 1)
	a.AddVert(0, 1, 3, 1)
	b := a.Clone()
	b.AddHoriz(0, geom.NewInterval(0, 31), 1)
	if a.Density(0, 0) != 1 {
		t.Fatal("clone shares storage with original")
	}
	if err := a.AddFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Density(0, 0) != 3 { // 1 + (1+1)
		t.Fatalf("merged density = %d", a.Density(0, 0))
	}
	if a.FtDemand(0, 3) != 2 {
		t.Fatalf("merged demand = %d", a.FtDemand(0, 3))
	}
	if err := a.SubFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Density(0, 0) != 1 || a.FtDemand(0, 3) != 1 {
		t.Fatal("SubFrom did not invert AddFrom")
	}
	a.Zero()
	if a.TotalFt() != 0 || a.MaxChannelDensity(0) != 0 {
		t.Fatal("Zero left residue")
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	if err := New(3, 160, 16).AddFrom(New(4, 160, 16)); err == nil {
		t.Fatal("shape mismatch should be reported")
	}
	if err := New(3, 160, 16).SubFrom(New(4, 160, 16)); err == nil {
		t.Fatal("shape mismatch should be reported")
	}
}

func TestAddRemoveInverseProperty(t *testing.T) {
	// Random adds followed by matching removes always return to zero.
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		g := New(6, 320, 16)
		type op struct {
			ch    int
			iv    geom.Interval
			vr0   int
			vr1   int
			vcol  int
			horiz bool
		}
		var ops []op
		for i := 0; i < 50; i++ {
			if r.Bool() {
				o := op{horiz: true, ch: r.Intn(7), iv: geom.NewInterval(r.Intn(320), r.Intn(320))}
				g.AddHoriz(o.ch, o.iv, 1)
				ops = append(ops, o)
			} else {
				lo := r.Intn(6)
				hi := lo + r.Intn(6-lo)
				o := op{vr0: lo, vr1: hi, vcol: r.Intn(g.Cols)}
				g.AddVert(o.vr0, o.vr1, o.vcol, 1)
				ops = append(ops, o)
			}
		}
		for _, o := range ops {
			if o.horiz {
				g.AddHoriz(o.ch, o.iv, -1)
			} else {
				g.AddVert(o.vr0, o.vr1, o.vcol, -1)
			}
		}
		for _, v := range g.DensCounts() {
			if v != 0 {
				return false
			}
		}
		for _, v := range g.FtCounts() {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
