package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the interprocedural summary layer behind the
// concurrency analyzers (goroutine-lifecycle, lock-across-blocking,
// unbounded-spawn). It graduates mpproto.go's one-level helper expansion
// into a real call graph with per-function lifecycle summaries propagated
// to a fixpoint, so a termination signal (or a blocking operation) buried
// two helpers deep is still visible at the `go` statement or lock site
// that cares about it.
//
// The summary lattice is small and monotone — every field only ever flips
// false→true or grows a set — so the round-robin fixpoint below converges
// in at most (lattice height × call-graph depth) rounds and is cheap in
// practice. Soundness caveats are documented in DESIGN.md §12; the short
// version: function literals are opaque program points (house rule, see
// cfg.go), calls out of the module are assumed to terminate and not
// block, and sync.Cond.Wait is deliberately not a blocking operation
// because it releases its own mutex while parked.

// lifeSummary is the concurrency-lifecycle summary of one function: the
// termination signals its body observes and the blocking behaviour it
// exhibits, both closed over the module call graph.
type lifeSummary struct {
	// observesCtx: the body (or a callee) calls Done or Err on a
	// context.Context — it can see cancellation.
	observesCtx bool
	// wgDone: the body (or a callee) calls sync.WaitGroup.Done — the
	// goroutine is joined by whoever Waits.
	wgDone bool
	// hasLoop: the body itself contains a for/range loop. Deliberately
	// not propagated through calls: a callee's internal loop is assumed
	// to terminate (same trust we extend to out-of-module calls).
	hasLoop bool
	// blocks: the body (or a callee) performs a blocking operation —
	// channel send/recv, select without default, mp op, WaitGroup.Wait,
	// network or gob I/O. blockDesc names the first one found.
	blocks    bool
	blockDesc string
	// recvObjs are the channel objects (locals, fields, package vars) the
	// body receives from; recvParams are the body's own channel-typed
	// parameter indices it receives from. Callers translate recvParams
	// through call-site arguments, so a receive loop in a helper still
	// matches a channel the spawner provably closes.
	recvObjs   map[types.Object]bool
	recvParams map[int]bool
}

func newLifeSummary() *lifeSummary {
	return &lifeSummary{
		recvObjs:   map[types.Object]bool{},
		recvParams: map[int]bool{},
	}
}

// lifeCallSite is one statically resolved call from a declared function to
// another module function, with the argument expressions kept for
// translating the callee's recvParams into the caller's frame.
type lifeCallSite struct {
	callee *types.Func
	args   []ast.Expr
}

// lifeFunc is the per-function record of the index.
type lifeFunc struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	info    *types.Info
	params  map[types.Object]int
	summary *lifeSummary
	sites   []lifeCallSite
	// refs are module functions referenced without being called (method
	// values, functions stored in fields or passed as values). Signals
	// propagate over refs too — generously: if a referenced function
	// observes ctx, whoever ends up invoking the value does — but
	// blocking behaviour does not, since the reference alone blocks
	// nothing.
	refs []*types.Func
}

// lifeIndex is the module-wide view: one lifeFunc per declared function,
// plus the set of channel objects the module provably closes somewhere.
type lifeIndex struct {
	funcs  map[*types.Func]*lifeFunc
	closed map[types.Object]bool
}

// lifecycleIndex builds (memoized) the lifecycle index for mod.
func (m *Module) lifecycleIndex() *lifeIndex {
	if m.life != nil {
		return m.life
	}
	ix := &lifeIndex{
		funcs:  map[*types.Func]*lifeFunc{},
		closed: map[types.Object]bool{},
	}
	// Pass 1: per-function base summaries, call sites, refs; plus the
	// module-wide closed-channel set (close can live anywhere, including
	// closures, so that scan does descend into function literals).
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := objOf(pkg.Info, id).(*types.Builtin); ok && b.Name() == "close" {
						if obj := chanObjOf(pkg.Info, call.Args[0]); obj != nil {
							ix.closed[obj] = true
						}
					}
				}
				return true
			})
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				lf := &lifeFunc{
					fn:     fn,
					decl:   fd,
					info:   pkg.Info,
					params: fieldParamObjects(pkg.Info, fd.Type.Params),
				}
				lf.summary = summarizeLifecycle(pkg.Info, fd.Body, lf.params)
				lf.collectEdges(fd.Body)
				ix.funcs[fn] = lf
			}
		}
	}
	// Pass 2: round-robin fixpoint over the call graph. Deterministic
	// order is irrelevant here (the fixpoint is order-independent), so a
	// map walk per round is fine.
	for changed, round := true, 0; changed && round < 64; round++ {
		changed = false
		for _, lf := range ix.funcs {
			if ix.absorb(lf) {
				changed = true
			}
		}
	}
	m.life = ix
	return ix
}

// collectEdges records lf's statically resolved call sites and bare
// references to module functions, excluding nested function literals
// (opaque program points, same as the summaries).
func (lf *lifeFunc) collectEdges(body *ast.BlockStmt) {
	callIdents := map[*ast.Ident]bool{}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callIdents[fun] = true
			case *ast.SelectorExpr:
				callIdents[fun.Sel] = true
			}
			if fn := calleeFunc(lf.info, call); fn != nil {
				lf.sites = append(lf.sites, lifeCallSite{callee: funcOrigin(fn), args: call.Args})
			}
		}
	})
	inspectSkippingFuncLits(body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || callIdents[id] {
			return
		}
		if fn, ok := lf.info.Uses[id].(*types.Func); ok {
			lf.refs = append(lf.refs, funcOrigin(fn))
		}
	})
}

// absorb folds the current summaries of lf's callees and referenced
// functions into lf's own summary, reporting whether anything changed.
func (ix *lifeIndex) absorb(lf *lifeFunc) bool {
	changed := false
	set := func(dst *bool, v bool) {
		if v && !*dst {
			*dst = true
			changed = true
		}
	}
	s := lf.summary
	for _, site := range lf.sites {
		cs := ix.summaryOf(site.callee)
		if cs == nil {
			continue
		}
		set(&s.observesCtx, cs.observesCtx)
		set(&s.wgDone, cs.wgDone)
		if cs.blocks && !s.blocks {
			s.blocks = true
			s.blockDesc = "a call to " + site.callee.Name() + ", which blocks on " + cs.blockDesc
			changed = true
		}
		// Translate the callee's receive-parameters through this site's
		// arguments: a channel object stays an object; the caller's own
		// parameter becomes a recvParam of the caller.
		for i := range cs.recvParams {
			if i >= len(site.args) {
				continue
			}
			obj := chanObjOf(lf.info, site.args[i])
			if obj == nil {
				continue
			}
			if pi, ok := lf.params[obj]; ok {
				if !s.recvParams[pi] {
					s.recvParams[pi] = true
					changed = true
				}
			} else if !s.recvObjs[obj] {
				s.recvObjs[obj] = true
				changed = true
			}
		}
		for obj := range cs.recvObjs {
			if !s.recvObjs[obj] {
				s.recvObjs[obj] = true
				changed = true
			}
		}
	}
	for _, ref := range lf.refs {
		cs := ix.summaryOf(ref)
		if cs == nil {
			continue
		}
		set(&s.observesCtx, cs.observesCtx)
		set(&s.wgDone, cs.wgDone)
	}
	return changed
}

// summaryOf returns the (possibly still-converging) summary of a module
// function, or nil for functions outside the loaded module.
func (ix *lifeIndex) summaryOf(fn *types.Func) *lifeSummary {
	if lf := ix.funcs[fn]; lf != nil {
		return lf.summary
	}
	return nil
}

// declOf returns the declaration record of a module function, or nil.
func (ix *lifeIndex) declOf(fn *types.Func) *lifeFunc {
	if fn == nil {
		return nil
	}
	return ix.funcs[funcOrigin(fn)]
}

// summarizeLifecycle computes the intraprocedural (base) summary of body:
// direct signals and direct blocking operations, with nested function
// literals excluded. params maps the function's own parameter objects to
// their positional index, used to classify receives from parameters.
func summarizeLifecycle(info *types.Info, body *ast.BlockStmt, params map[types.Object]int) *lifeSummary {
	s := newLifeSummary()
	recordRecv := func(e ast.Expr) {
		obj := chanObjOf(info, e)
		if obj == nil {
			return
		}
		if i, ok := params[obj]; ok {
			s.recvParams[i] = true
		} else {
			s.recvObjs[obj] = true
		}
	}
	// Signal pass: includes deferred statements (a `defer wg.Done()` is
	// the canonical join), excludes nested function literals.
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ForStmt:
			s.hasLoop = true
		case *ast.RangeStmt:
			s.hasLoop = true
			if isChanExpr(info, n.X) {
				recordRecv(n.X)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isChanExpr(info, n.X) {
				recordRecv(n.X)
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			switch {
			case fn.Pkg().Path() == "context" && (fn.Name() == "Done" || fn.Name() == "Err"):
				s.observesCtx = true
			case isWaitGroupMethod(fn, "Done"):
				s.wgDone = true
			}
		}
	})
	// Blocking pass: excludes defers and go statements (they run at other
	// program points) on top of the function-literal exclusion.
	scanBlocking(info, body, func(pos token.Pos, desc string) {
		if !s.blocks {
			s.blocks = true
			s.blockDesc = desc
		}
	})
	return s
}

// scanBlocking walks n and reports every potentially blocking operation:
// channel sends and receives (including range-over-channel), select
// statements without a default clause, and blocking calls per
// blockingCall. It does not descend into function literals, deferred
// statements, go statements, or the communication clauses of a select
// (those block — or don't — at the select dispatch, which is reported as
// a unit).
func scanBlocking(info *types.Info, n ast.Node, report func(pos token.Pos, desc string)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				report(n.Pos(), "a select with no default case")
			}
			for _, clause := range n.Body.List {
				for _, st := range clause.(*ast.CommClause).Body {
					scanBlocking(info, st, report)
				}
			}
			return false
		case *ast.SendStmt:
			report(n.Arrow, "a channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.OpPos, "a channel receive")
			}
		case *ast.RangeStmt:
			if isChanExpr(info, n.X) {
				report(n.X.Pos(), "a range over a channel")
			}
		case *ast.CallExpr:
			if desc, ok := blockingCall(info, n); ok {
				report(n.Pos(), desc)
			}
		}
		return true
	})
}

// blockingCall classifies call as a known blocking operation: an mp
// protocol op, sync.WaitGroup.Wait, time.Sleep, blocking net methods and
// dials, or gob stream codecs. sync.Cond.Wait is deliberately excluded —
// it releases its associated mutex while parked, so holding that mutex
// across it is the intended protocol, not a deadlock.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if op := resolveMPOp(info, call); op != nil {
		return "mp " + op.name, true
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sync":
		if isWaitGroupMethod(fn, "Wait") {
			return "sync.WaitGroup.Wait", true
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "net":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			switch name {
			case "Read", "Write", "Accept", "ReadFrom", "WriteTo":
				return "net " + name, true
			}
		} else {
			switch name {
			case "Dial", "DialTimeout", "DialIP", "DialTCP", "DialUDP":
				return "net." + name, true
			}
		}
	case "encoding/gob":
		switch name {
		case "Encode", "Decode", "EncodeValue", "DecodeValue":
			return "gob " + name, true
		}
	}
	return "", false
}

// isWaitGroupMethod reports whether fn is sync.WaitGroup's method name.
func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// selectHasDefault reports whether s carries a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if clause.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// chanObjOf resolves e to the variable or field object it names (the
// identity channels are tracked by), or nil for anything more dynamic.
func chanObjOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(info, e)
	case *ast.SelectorExpr:
		return objOf(info, e.Sel)
	}
	return nil
}

// isChanExpr reports whether e's type is a channel.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// fieldParamObjects maps the parameter objects of params to positional
// indices; the *ast.FuncType generalization of mpproto's paramObjects,
// usable for function literals as well as declarations.
func fieldParamObjects(info *types.Info, params *ast.FieldList) map[types.Object]int {
	out := map[types.Object]int{}
	if params == nil {
		return out
	}
	i := 0
	for _, field := range params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// summarizeGoBody summarizes a function literal spawned at a go
// statement: its base summary plus one folding round over its direct call
// sites and references. One round suffices because the index summaries
// are already transitively closed by the fixpoint.
func (ix *lifeIndex) summarizeGoBody(info *types.Info, lit *ast.FuncLit) *lifeSummary {
	lf := &lifeFunc{
		info:   info,
		params: fieldParamObjects(info, lit.Type.Params),
	}
	lf.summary = summarizeLifecycle(info, lit.Body, lf.params)
	lf.collectEdges(lit.Body)
	ix.absorb(lf)
	return lf.summary
}
