package lint

import "testing"

// The tests below pin the lifecycle index on testdata/src/callgraph, a
// synthetic package with one construct per propagation rule: mutual
// recursion, method values, function-typed fields, deferred call edges,
// and parameter-channel translation.

// loadLifecycleIndex loads one testdata package and builds its index.
func loadLifecycleIndex(t *testing.T, dir string) *lifeIndex {
	t.Helper()
	mod, err := LoadDirs(".", []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return mod.lifecycleIndex()
}

// findLifeFunc returns the index record of the named function.
func findLifeFunc(t *testing.T, ix *lifeIndex, name string) *lifeFunc {
	t.Helper()
	for fn, lf := range ix.funcs {
		if fn.Name() == name {
			return lf
		}
	}
	t.Fatalf("function %s not in index", name)
	return nil
}

func TestCallGraphEdges(t *testing.T) {
	ix := loadLifecycleIndex(t, "testdata/src/callgraph")

	ping := findLifeFunc(t, ix, "Ping")
	if len(ping.sites) != 1 || ping.sites[0].callee.Name() != "Pong" {
		t.Errorf("Ping sites = %v, want exactly one call to Pong", ping.sites)
	}
	grab := findLifeFunc(t, ix, "Grab")
	if len(grab.refs) != 1 || grab.refs[0].Name() != "drain" {
		t.Errorf("Grab refs = %v, want exactly the drain method value", grab.refs)
	}
	if len(grab.sites) != 0 {
		t.Errorf("Grab sites = %v, want none: a method value is a reference, not a call", grab.sites)
	}
	invoke := findLifeFunc(t, ix, "Invoke")
	if len(invoke.sites) != 0 || len(invoke.refs) != 0 {
		t.Errorf("Invoke sites=%v refs=%v, want none: a function-typed field has no static callee", invoke.sites, invoke.refs)
	}
	task := findLifeFunc(t, ix, "Task")
	if len(task.sites) != 1 || task.sites[0].callee.Name() != "finish" {
		t.Errorf("Task sites = %v, want the deferred call to finish", task.sites)
	}
}

func TestFixpointMutualRecursion(t *testing.T) {
	ix := loadLifecycleIndex(t, "testdata/src/callgraph")
	for _, name := range []string{"Ping", "Pong"} {
		s := findLifeFunc(t, ix, name).summary
		if !s.observesCtx {
			t.Errorf("%s.observesCtx = false, want the ctx signal to survive the Ping/Pong cycle", name)
		}
		if s.blocks {
			t.Errorf("%s.blocks = true, want false: neither body blocks", name)
		}
	}
}

func TestReferencePropagation(t *testing.T) {
	ix := loadLifecycleIndex(t, "testdata/src/callgraph")

	handOff := findLifeFunc(t, ix, "HandOff").summary
	if !handOff.observesCtx {
		t.Error("HandOff.observesCtx = false, want the signal to cross the waitDone reference")
	}
	if handOff.blocks {
		t.Error("HandOff.blocks = true, want false: referencing waitDone blocks nothing")
	}

	drain := findLifeFunc(t, ix, "drain").summary
	if !drain.hasLoop || !drain.blocks || len(drain.recvObjs) != 1 {
		t.Errorf("drain summary = %+v, want hasLoop, blocks, and one recvObj (the ch field)", drain)
	}
	grab := findLifeFunc(t, ix, "Grab").summary
	if grab.hasLoop || grab.blocks {
		t.Errorf("Grab summary = %+v, want neither hasLoop nor blocks to cross the reference", grab)
	}
}

func TestRecvParamTranslation(t *testing.T) {
	ix := loadLifecycleIndex(t, "testdata/src/callgraph")

	blocky := findLifeFunc(t, ix, "Blocky").summary
	if !blocky.recvParams[0] {
		t.Errorf("Blocky.recvParams = %v, want the receive recorded on parameter 0", blocky.recvParams)
	}
	caller := findLifeFunc(t, ix, "Caller").summary
	if !caller.recvParams[0] {
		t.Errorf("Caller.recvParams = %v, want Blocky's receive translated onto Caller's own parameter", caller.recvParams)
	}
	if !caller.blocks || caller.blockDesc != "a call to Blocky, which blocks on a channel receive" {
		t.Errorf("Caller blocking = (%v, %q), want the chained description through Blocky", caller.blocks, caller.blockDesc)
	}
}

func TestDeferredCallEdgeCarriesJoin(t *testing.T) {
	ix := loadLifecycleIndex(t, "testdata/src/callgraph")
	task := findLifeFunc(t, ix, "Task").summary
	if !task.wgDone {
		t.Error("Task.wgDone = false, want the Done signal to survive the deferred call to finish")
	}
}
