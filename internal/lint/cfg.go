package lint

import (
	"go/ast"
	"go/token"
)

// This file builds the lightweight control-flow graphs the mpproto
// analyzers reason over. A CFG is built per function body from the plain
// go/ast: straight-line statements accumulate into a Block, and
// if/for/range/switch/select statements end the block with a condition
// (where one exists) and fan out into successor blocks. Function literals
// are opaque — their bodies get their own CFGs when the caller asks for
// them — because a closure's execution time is not the enclosing
// function's program point.
//
// Back edges (loop body → loop header) are recorded separately from
// forward successors, so path-sensitive clients can treat every CFG as a
// DAG (each loop body considered at most once per path) without running a
// dominator analysis first.

// Block is one basic block: a maximal run of straight-line statements,
// optionally terminated by a branch condition.
type Block struct {
	Index int
	// Stmts are the simple statements of the block, in execution order.
	// Control statements (if/for/switch/...) never appear here; their
	// initializers and conditions are lifted into Cond/Stmts of the
	// blocks the builder creates for them.
	Stmts []ast.Stmt
	// Cond is the branch or loop condition evaluated after Stmts, nil for
	// unconditional blocks. For a range loop it is the ranged-over
	// expression; for a type switch, the switch expression.
	Cond ast.Expr
	// Succs are the forward successors. Back are back edges to loop
	// headers; they are kept out of Succs so forward walks terminate.
	Succs []*Block
	Back  []*Block
	Preds []*Block
	// IsLoopHead marks loop header blocks (the target of a back edge).
	IsLoopHead bool
	// Select is set on the dispatch block of a select statement: each
	// communication clause is one successor, a default clause (if any) is
	// a further successor, and a clause-less `select {}` has no
	// successors at all. Whether the dispatch can block is a property of
	// this block (no default clause), not of the clause blocks.
	Select *ast.SelectStmt
	// IsSelectClause marks a clause body block whose first statement is
	// the clause's communication operation. That statement is the chosen
	// (already unblocked) case, so clients deciding blockingness must
	// look at the dispatch block's Select, not at the comm statement.
	IsSelectClause bool
}

// CFG is the control-flow graph of one function body. Entry is the first
// block executed; Exit is the single synthetic block every return (and
// the fall-off-the-end path) reaches.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	g *CFG
	// breakTo / continueTo are the innermost targets for unlabeled
	// break/continue statements.
	breakTo    []*Block
	continueTo []*Block
	// labels maps a label name to its targets: the labeled statement's
	// entry block (for goto) plus, when the labeled statement is a
	// loop/switch/select, the break and continue destinations.
	labels map[string]*labelTarget
	// pendingLabel carries a just-seen label into the construct it names,
	// so that construct can register its break/continue targets. stmt()
	// consumes it immediately, which keeps a label from leaking onto a
	// statement nested deeper than the labeled one.
	pendingLabel string
	// gotos are forward gotos whose label has not been declared yet; they
	// are patched with a forward edge once the whole body is built. Go's
	// scoping rules (a goto may not jump into a block) guarantee the
	// patched edge cannot create a forward cycle.
	gotos []pendingGoto
}

type labelTarget struct {
	entry *Block // first block of the labeled statement (goto target)
	brk   *Block // labeled-break destination, nil unless loop/switch/select
	cont  *Block // labeled-continue destination, nil unless loop
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the CFG of body. A nil body (declared-only
// function) yields a two-block graph with Entry wired to Exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*labelTarget)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	last := b.g.Entry
	if body != nil {
		last = b.stmtList(body.List, b.g.Entry)
	}
	b.edge(last, b.g.Exit)
	for _, pg := range b.gotos {
		if lt := b.labels[pg.label]; lt != nil {
			b.edge(pg.from, lt.entry)
		} else {
			// Undeclared label cannot type-check; degrade to a terminator.
			b.edge(pg.from, b.g.Exit)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds cur → next unless cur is nil (unreachable after a terminator).
func (b *cfgBuilder) edge(cur, next *Block) {
	if cur == nil || cur == b.g.Exit {
		return
	}
	cur.Succs = append(cur.Succs, next)
	next.Preds = append(next.Preds, cur)
}

// backEdge records cur → head as a loop back edge.
func (b *cfgBuilder) backEdge(cur, head *Block) {
	if cur == nil {
		return
	}
	cur.Back = append(cur.Back, head)
	head.IsLoopHead = true
}

// stmtList threads the statements through the graph starting at cur and
// returns the block control falls out of, or nil when the list always
// terminates (return/branch).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *Block) *Block {
	for _, s := range stmts {
		cur = b.stmt(s, cur)
		if cur == nil {
			return nil
		}
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	// Consume the pending label here so only the directly-labeled
	// statement sees it; the loop/switch/select cases below register
	// their break/continue targets under it.
	label := b.pendingLabel
	b.pendingLabel = ""

	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Cond = s.Cond
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmtList(s.Body.List, thenB)
		join := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(s.Else, elseB)
			b.edge(elseEnd, join)
		} else {
			b.edge(cur, join)
		}
		b.edge(thenEnd, join)
		if len(join.Preds) == 0 {
			return nil // both arms terminate
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		head.Cond = s.Cond // nil for `for {}`
		exit := b.newBlock()
		if s.Cond != nil {
			b.edge(head, exit)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.setLabelTargets(label, exit, head)
		b.pushLoop(exit, head)
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popLoop()
		if bodyEnd != nil && s.Post != nil {
			bodyEnd.Stmts = append(bodyEnd.Stmts, s.Post)
		}
		b.backEdge(bodyEnd, head)
		if len(exit.Preds) == 0 && s.Cond == nil {
			return nil // `for {}` with no break never exits
		}
		return exit

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		head.Cond = s.X
		if s.Key != nil || s.Value != nil {
			// Model the per-iteration bindings as an assignment so
			// dataflow sees the loop variables being written.
			head.Stmts = append(head.Stmts, rangeAssign(s))
		}
		exit := b.newBlock()
		b.edge(head, exit)
		body := b.newBlock()
		b.edge(head, body)
		b.setLabelTargets(label, exit, head)
		b.pushLoop(exit, head)
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popLoop()
		b.backEdge(bodyEnd, head)
		return exit

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, s.Body, label)

	case *ast.TypeSwitchStmt:
		var tag ast.Expr
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			tag = as.Rhs[0]
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			tag = es.X
		}
		return b.switchStmt(cur, s.Init, tag, s.Body, label)

	case *ast.SelectStmt:
		cur.Select = s
		if len(s.Body.List) == 0 {
			// `select {}` blocks forever: a terminator with no successors.
			return nil
		}
		join := b.newBlock()
		b.setLabelTargets(label, join, nil)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			caseB := b.newBlock()
			caseB.IsSelectClause = cc.Comm != nil
			b.edge(cur, caseB)
			if cc.Comm != nil {
				caseB.Stmts = append(caseB.Stmts, cc.Comm)
			}
			b.pushBreak(join)
			end := b.stmtList(cc.Body, caseB)
			b.popBreak()
			b.edge(end, join)
		}
		if len(join.Preds) == 0 {
			return nil
		}
		return join

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			t := b.topBreak()
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					t = lt.brk
				}
			}
			if t != nil {
				b.edge(cur, t)
				return nil
			}
		case token.CONTINUE:
			t := b.topContinue()
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					t = lt.cont
				}
			}
			if t != nil {
				b.backEdge(cur, t)
				return nil
			}
		case token.GOTO:
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					// The label is already declared, so this jumps backward:
					// record it as a loop back edge so forward walks stay
					// acyclic.
					b.backEdge(cur, lt.entry)
				} else {
					// Forward goto; patched with a forward edge in BuildCFG
					// once the label's entry block exists.
					b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
				}
				return nil
			}
		}
		// fallthrough token: control continues into the next case, which
		// the switch builder has already wired to the join; treat as a
		// plain fall-off so the clause still reaches the join.
		return cur

	case *ast.LabeledStmt:
		// Give the labeled statement its own entry block so goto has a
		// stable target, then let the statement itself claim break and
		// continue destinations via pendingLabel.
		entry := b.newBlock()
		b.edge(cur, entry)
		b.labels[s.Label.Name] = &labelTarget{entry: entry}
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, entry)
		b.pendingLabel = ""
		return out

	default:
		// Assignments, declarations, expression statements, go, defer,
		// send, inc/dec: straight-line.
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

// switchStmt wires an (expression or type) switch: cur fans out to every
// case body, plus straight to the join when there is no default clause.
func (b *cfgBuilder) switchStmt(cur *Block, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) *Block {
	if init != nil {
		cur.Stmts = append(cur.Stmts, init)
	}
	cur.Cond = tag
	join := b.newBlock()
	b.setLabelTargets(label, join, nil)
	hasDefault := false
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseB := b.newBlock()
		b.edge(cur, caseB)
		b.pushBreak(join)
		end := b.stmtList(cc.Body, caseB)
		b.popBreak()
		b.edge(end, join)
	}
	if !hasDefault {
		b.edge(cur, join)
	}
	if len(join.Preds) == 0 {
		return nil
	}
	return join
}

// rangeAssign synthesizes `key, value := range-bindings` as an AssignStmt
// over the range expression, purely so dataflow transfer functions see the
// loop variables defined from s.X.
func rangeAssign(s *ast.RangeStmt) ast.Stmt {
	var lhs []ast.Expr
	if s.Key != nil {
		lhs = append(lhs, s.Key)
	}
	if s.Value != nil {
		lhs = append(lhs, s.Value)
	}
	return &ast.AssignStmt{Lhs: lhs, Tok: s.Tok, Rhs: []ast.Expr{s.X}}
}

// setLabelTargets records the break (and, for loops, continue)
// destinations of the labeled construct currently being built.
func (b *cfgBuilder) setLabelTargets(label string, brk, cont *Block) {
	if label == "" {
		return
	}
	if lt := b.labels[label]; lt != nil {
		lt.brk, lt.cont = brk, cont
	}
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

// pushBreak registers a break target without a continue target (switch
// and select bodies).
func (b *cfgBuilder) pushBreak(brk *Block) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, nil)
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

func (b *cfgBuilder) topBreak() *Block {
	if len(b.breakTo) == 0 {
		return nil
	}
	return b.breakTo[len(b.breakTo)-1]
}

// topContinue skips over break-only scopes (switch/select) to the
// innermost enclosing loop.
func (b *cfgBuilder) topContinue() *Block {
	for i := len(b.continueTo) - 1; i >= 0; i-- {
		if b.continueTo[i] != nil {
			return b.continueTo[i]
		}
	}
	return nil
}
