package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses one function declaration and returns its body.
func parseBody(t *testing.T, fn string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", "package x\n"+fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// forwardReaches reports whether to is reachable from from over Succs
// only — the DAG view path-sensitive clients rely on.
func forwardReaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// assertForwardAcyclic fails if Succs (excluding Back) contain a cycle;
// the builder promises forward walks terminate without dominator math.
func assertForwardAcyclic(t *testing.T, g *CFG) {
	t.Helper()
	const white, grey, black = 0, 1, 2
	color := map[*Block]int{}
	var visit func(b *Block)
	visit = func(b *Block) {
		color[b] = grey
		for _, s := range b.Succs {
			switch color[s] {
			case grey:
				t.Fatalf("forward cycle through block %d -> %d", b.Index, s.Index)
			case white:
				visit(s)
			}
		}
		color[b] = black
	}
	for _, b := range g.Blocks {
		if color[b] == white {
			visit(b)
		}
	}
}

func TestBuildCFGNilBody(t *testing.T) {
	g := BuildCFG(nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("nil body: Entry.Succs = %v, want [Exit]", g.Entry.Succs)
	}
}

func TestBuildCFGIfElse(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(a bool) int {
	x := 0
	if a {
		x = 1
	} else {
		x = 2
	}
	return x
}`))
	assertForwardAcyclic(t, g)
	if g.Entry.Cond == nil {
		t.Fatal("branch condition not recorded on the entry block")
	}
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if/else fans out to %d successors, want 2", len(g.Entry.Succs))
	}
	for _, arm := range g.Entry.Succs {
		if !forwardReaches(arm, g.Exit) {
			t.Errorf("arm block %d does not reach Exit", arm.Index)
		}
	}
}

func TestBuildCFGTerminatingArms(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(a bool) int {
	if a {
		return 1
	}
	return 2
}`))
	assertForwardAcyclic(t, g)
	returns := 0
	for _, p := range g.Exit.Preds {
		if len(p.Stmts) > 0 {
			if _, ok := p.Stmts[len(p.Stmts)-1].(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 2 {
		t.Fatalf("Exit has %d return predecessors, want 2", returns)
	}
}

func TestBuildCFGForLoop(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`))
	assertForwardAcyclic(t, g)
	var head *Block
	for _, b := range g.Blocks {
		if b.IsLoopHead {
			if head != nil {
				t.Fatal("more than one loop head for a single loop")
			}
			head = b
		}
	}
	if head == nil {
		t.Fatal("no loop head marked")
	}
	if head.Cond == nil {
		t.Error("loop head has no condition")
	}
	backs := 0
	for _, b := range g.Blocks {
		for _, tgt := range b.Back {
			if tgt != head {
				t.Errorf("back edge from %d targets block %d, not the loop head", b.Index, tgt.Index)
			}
			backs++
		}
	}
	if backs != 1 {
		t.Errorf("got %d back edges, want 1", backs)
	}
	if !forwardReaches(g.Entry, g.Exit) {
		t.Error("Exit unreachable over forward edges")
	}
}

func TestBuildCFGBreakContinue(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
	}
}`))
	assertForwardAcyclic(t, g)
	backs := 0
	for _, b := range g.Blocks {
		backs += len(b.Back)
	}
	// The continue and the natural loop tail each produce a back edge.
	if backs != 2 {
		t.Errorf("got %d back edges, want 2 (continue + loop tail)", backs)
	}
	if !forwardReaches(g.Entry, g.Exit) {
		t.Error("Exit unreachable over forward edges")
	}
}

func TestBuildCFGSwitch(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(n int) int {
	switch n {
	case 1:
		return 10
	case 2:
		n++
	}
	return n
}`))
	assertForwardAcyclic(t, g)
	if g.Entry.Cond == nil {
		t.Error("switch tag not recorded as the block condition")
	}
	// Two case blocks plus the implicit no-default edge to the join.
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("switch fans out to %d successors, want 3", len(g.Entry.Succs))
	}
}

func TestBuildCFGRangeLoop(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`))
	assertForwardAcyclic(t, g)
	var head *Block
	for _, b := range g.Blocks {
		if b.IsLoopHead {
			head = b
		}
	}
	if head == nil {
		t.Fatal("range loop head not marked")
	}
	// The synthetic per-iteration binding must be visible to dataflow.
	found := false
	for _, s := range head.Stmts {
		if _, ok := s.(*ast.AssignStmt); ok {
			found = true
		}
	}
	if !found {
		t.Error("range bindings not modeled as an assignment on the head block")
	}
}

func TestBuildCFGInfiniteLoopNoBreak(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(ch chan int) {
	for {
		<-ch
	}
}`))
	// `for {}` with no break: Exit must not be reachable forward from the
	// loop, and the builder must still terminate.
	assertForwardAcyclic(t, g)
	if len(g.Exit.Preds) != 0 {
		t.Errorf("for{} without break: Exit has %d preds, want 0", len(g.Exit.Preds))
	}
}

func TestBuildCFGSelectDispatch(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(a, b chan int) int {
	x := 0
	select {
	case v := <-a:
		x = v
	case b <- 1:
		x = 2
	default:
		x = 3
	}
	return x
}`))
	assertForwardAcyclic(t, g)
	var dispatch *Block
	for _, blk := range g.Blocks {
		if blk.Select != nil {
			dispatch = blk
		}
	}
	if dispatch == nil {
		t.Fatal("no block carries the SelectStmt")
	}
	// One successor per clause, including the default clause.
	if len(dispatch.Succs) != 3 {
		t.Fatalf("select dispatch has %d succs, want 3", len(dispatch.Succs))
	}
	comm := 0
	for _, s := range dispatch.Succs {
		if s.IsSelectClause {
			comm++
			if len(s.Stmts) == 0 {
				t.Error("comm clause block does not start with its comm statement")
			}
		}
	}
	if comm != 2 {
		t.Fatalf("%d comm clause successors, want 2 (default is not a comm clause)", comm)
	}
	if !forwardReaches(dispatch, g.Exit) {
		t.Error("select with default must reach Exit")
	}
}

func TestBuildCFGEmptySelectTerminates(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f() {
	select {}
}`))
	assertForwardAcyclic(t, g)
	var dispatch *Block
	for _, blk := range g.Blocks {
		if blk.Select != nil {
			dispatch = blk
		}
	}
	if dispatch == nil {
		t.Fatal("no block carries the SelectStmt")
	}
	// `select {}` blocks forever: no successors, Exit unreachable.
	if len(dispatch.Succs) != 0 {
		t.Fatalf("select{} dispatch has %d succs, want 0", len(dispatch.Succs))
	}
	if len(g.Exit.Preds) != 0 {
		t.Errorf("select{}: Exit has %d preds, want 0", len(g.Exit.Preds))
	}
}

func TestBuildCFGLabeledBreakContinue(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(rows [][]int) int {
	s := 0
Outer:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				continue Outer
			}
			if v == 99 {
				break Outer
			}
			s += v
		}
	}
	return s
}`))
	assertForwardAcyclic(t, g)
	var outer, inner *Block
	for _, blk := range g.Blocks {
		if blk.IsLoopHead {
			if outer == nil {
				outer = blk
			} else {
				inner = blk
			}
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("expected two loop heads")
	}
	// `continue Outer` must target the outer head as a back edge: some
	// block inside the inner loop carries a Back edge to the outer head.
	foundCont := false
	for _, blk := range g.Blocks {
		for _, bk := range blk.Back {
			if bk == outer && blk != inner && !forwardReaches(blk, inner) {
				foundCont = true
			}
		}
	}
	if !foundCont {
		t.Error("continue Outer not wired as a back edge to the outer loop head")
	}
	// `break Outer` must skip the inner loop's exit and still reach Exit.
	if !forwardReaches(g.Entry, g.Exit) {
		t.Error("break Outer: Exit unreachable")
	}
}

func TestBuildCFGGoto(t *testing.T) {
	// Backward goto: must be recorded as a back edge so forward walks
	// terminate; the jump target becomes a loop head.
	g := BuildCFG(parseBody(t, `func f(n int) int {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	return i
}`))
	assertForwardAcyclic(t, g)
	heads := 0
	for _, blk := range g.Blocks {
		if blk.IsLoopHead {
			heads++
		}
	}
	if heads != 1 {
		t.Fatalf("backward goto: %d loop heads, want 1", heads)
	}
	if !forwardReaches(g.Entry, g.Exit) {
		t.Error("backward goto: Exit unreachable forward")
	}

	// Forward goto: a plain forward edge to the label, so code between
	// the goto and the label is skipped on that path but Exit stays
	// reachable, and the graph stays acyclic.
	g = BuildCFG(parseBody(t, `func f(fail bool) int {
	x := 1
	if fail {
		goto done
	}
	x = 2
done:
	return x
}`))
	assertForwardAcyclic(t, g)
	for _, blk := range g.Blocks {
		if blk.IsLoopHead {
			t.Fatal("forward goto must not create a loop head")
		}
	}
	if !forwardReaches(g.Entry, g.Exit) {
		t.Error("forward goto: Exit unreachable")
	}
}
