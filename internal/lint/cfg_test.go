package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses one function declaration and returns its body.
func parseBody(t *testing.T, fn string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", "package x\n"+fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// forwardReaches reports whether to is reachable from from over Succs
// only — the DAG view path-sensitive clients rely on.
func forwardReaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// assertForwardAcyclic fails if Succs (excluding Back) contain a cycle;
// the builder promises forward walks terminate without dominator math.
func assertForwardAcyclic(t *testing.T, g *CFG) {
	t.Helper()
	const white, grey, black = 0, 1, 2
	color := map[*Block]int{}
	var visit func(b *Block)
	visit = func(b *Block) {
		color[b] = grey
		for _, s := range b.Succs {
			switch color[s] {
			case grey:
				t.Fatalf("forward cycle through block %d -> %d", b.Index, s.Index)
			case white:
				visit(s)
			}
		}
		color[b] = black
	}
	for _, b := range g.Blocks {
		if color[b] == white {
			visit(b)
		}
	}
}

func TestBuildCFGNilBody(t *testing.T) {
	g := BuildCFG(nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("nil body: Entry.Succs = %v, want [Exit]", g.Entry.Succs)
	}
}

func TestBuildCFGIfElse(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(a bool) int {
	x := 0
	if a {
		x = 1
	} else {
		x = 2
	}
	return x
}`))
	assertForwardAcyclic(t, g)
	if g.Entry.Cond == nil {
		t.Fatal("branch condition not recorded on the entry block")
	}
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if/else fans out to %d successors, want 2", len(g.Entry.Succs))
	}
	for _, arm := range g.Entry.Succs {
		if !forwardReaches(arm, g.Exit) {
			t.Errorf("arm block %d does not reach Exit", arm.Index)
		}
	}
}

func TestBuildCFGTerminatingArms(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(a bool) int {
	if a {
		return 1
	}
	return 2
}`))
	assertForwardAcyclic(t, g)
	returns := 0
	for _, p := range g.Exit.Preds {
		if len(p.Stmts) > 0 {
			if _, ok := p.Stmts[len(p.Stmts)-1].(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 2 {
		t.Fatalf("Exit has %d return predecessors, want 2", returns)
	}
}

func TestBuildCFGForLoop(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`))
	assertForwardAcyclic(t, g)
	var head *Block
	for _, b := range g.Blocks {
		if b.IsLoopHead {
			if head != nil {
				t.Fatal("more than one loop head for a single loop")
			}
			head = b
		}
	}
	if head == nil {
		t.Fatal("no loop head marked")
	}
	if head.Cond == nil {
		t.Error("loop head has no condition")
	}
	backs := 0
	for _, b := range g.Blocks {
		for _, tgt := range b.Back {
			if tgt != head {
				t.Errorf("back edge from %d targets block %d, not the loop head", b.Index, tgt.Index)
			}
			backs++
		}
	}
	if backs != 1 {
		t.Errorf("got %d back edges, want 1", backs)
	}
	if !forwardReaches(g.Entry, g.Exit) {
		t.Error("Exit unreachable over forward edges")
	}
}

func TestBuildCFGBreakContinue(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
	}
}`))
	assertForwardAcyclic(t, g)
	backs := 0
	for _, b := range g.Blocks {
		backs += len(b.Back)
	}
	// The continue and the natural loop tail each produce a back edge.
	if backs != 2 {
		t.Errorf("got %d back edges, want 2 (continue + loop tail)", backs)
	}
	if !forwardReaches(g.Entry, g.Exit) {
		t.Error("Exit unreachable over forward edges")
	}
}

func TestBuildCFGSwitch(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(n int) int {
	switch n {
	case 1:
		return 10
	case 2:
		n++
	}
	return n
}`))
	assertForwardAcyclic(t, g)
	if g.Entry.Cond == nil {
		t.Error("switch tag not recorded as the block condition")
	}
	// Two case blocks plus the implicit no-default edge to the join.
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("switch fans out to %d successors, want 3", len(g.Entry.Succs))
	}
}

func TestBuildCFGRangeLoop(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`))
	assertForwardAcyclic(t, g)
	var head *Block
	for _, b := range g.Blocks {
		if b.IsLoopHead {
			head = b
		}
	}
	if head == nil {
		t.Fatal("range loop head not marked")
	}
	// The synthetic per-iteration binding must be visible to dataflow.
	found := false
	for _, s := range head.Stmts {
		if _, ok := s.(*ast.AssignStmt); ok {
			found = true
		}
	}
	if !found {
		t.Error("range bindings not modeled as an assignment on the head block")
	}
}

func TestBuildCFGInfiniteLoopNoBreak(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(ch chan int) {
	for {
		<-ch
	}
}`))
	// `for {}` with no break: Exit must not be reachable forward from the
	// loop, and the builder must still terminate.
	assertForwardAcyclic(t, g)
	if len(g.Exit.Preds) != 0 {
		t.Errorf("for{} without break: Exit has %d preds, want 0", len(g.Exit.Preds))
	}
}
