package lint_test

import (
	"os"
	"strings"
	"testing"

	"parroute/internal/lint"
)

// concurrencyAnalyzers is the subset the lifecycle fixture exercises; it
// runs filtered so the golden is insulated from the rest of the suite.
var concurrencyAnalyzers = []string{"goroutine-lifecycle", "lock-across-blocking", "unbounded-spawn"}

// TestConcurrencyAnalyzersGolden walks the three concurrency analyzers
// through their interprocedural reasoning on testdata/src/lifecycle:
// every violation there must fire at its pinned position, and every
// provably-safe twin (closed channel, ctx helper one call away,
// WaitGroup join, unlock-before-receive, semaphore and counted spawn
// loops) must stay quiet.
func TestConcurrencyAnalyzersGolden(t *testing.T) {
	mod, err := lint.LoadDirs(".", []string{"testdata/src/lifecycle"})
	if err != nil {
		t.Fatal(err)
	}
	opts := lint.RunOptions{Analyzers: concurrencyAnalyzers}
	diags, _, err := lint.RunSuite(mod, lint.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	want, err := os.ReadFile("testdata/lifecycle.golden")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("diagnostics diverge from testdata/lifecycle.golden:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}
