package lint

import (
	"go/ast"
	"go/types"
)

// analyzerCtxRule enforces the two context-plumbing conventions the
// cancellation paths depend on. A context.Context parameter must come
// first (after the receiver), so call sites read uniformly and no ctx is
// forgotten when signatures grow; and a context must never be stored in a
// struct field — a stored context outlives the call it scoped, silently
// decoupling cancellation from the work it was supposed to bound (the
// go vet "containedctx" family of bugs).
var analyzerCtxRule = &Analyzer{
	Name: "ctxrule",
	Doc:  "context.Context must be the first parameter and must not live in struct fields",
	Run:  runCtxRule,
}

func runCtxRule(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxParams(p, n.Type)
			case *ast.FuncLit:
				checkCtxParams(p, n.Type)
			case *ast.StructType:
				checkCtxFields(p, n)
			}
			return true
		})
	}
}

// checkCtxParams flags context.Context parameters that are not the
// function's first parameter. A blank or named first-position ctx is
// fine; any later position is a diagnostic, one per offending parameter.
func checkCtxParams(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // parameter index, counting each name in a shared field once
	for _, field := range ft.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1 // unnamed parameter
		}
		if isContextType(p, field.Type) && pos != 0 {
			p.Reportf(field.Pos(), "context.Context is parameter %d: pass ctx first so cancellation plumbing stays uniform", pos+1)
		}
		pos += names
	}
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(p *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(p, field.Type) {
			p.Reportf(field.Pos(), "context.Context stored in struct field: pass ctx as a call parameter instead of persisting it")
		}
	}
}

// isContextType reports whether the expression's type is context.Context.
func isContextType(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
