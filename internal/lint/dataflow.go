package lint

// A generic forward-dataflow worklist solver over the CFGs of cfg.go.
// Clients supply the lattice as three functions (join, transfer,
// equality); the solver iterates to a fixpoint. Back edges participate in
// the iteration — loop-carried facts converge because every client
// lattice in this package has finite height — but the solver caps the
// number of visits per block as a defensive bound against a
// non-converging client.

// Flow is the client-supplied lattice and transfer for one analysis.
type Flow[F any] interface {
	// Bottom is the fact at function entry.
	Bottom() F
	// Join combines facts arriving over two predecessor edges. It must be
	// monotone and commutative.
	Join(a, b F) F
	// Transfer pushes in through block b (its Stmts, then its Cond read)
	// and returns the fact on b's outgoing edges. It must not mutate in.
	Transfer(b *Block, in F) F
	// Equal reports fact equality; the solver stops when nothing changes.
	Equal(a, b F) bool
}

// FlowResult holds the converged facts per block.
type FlowResult[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// maxVisitsPerBlock bounds the worklist iteration. With a lattice of
// height h the solver needs at most h visits per block; rank-taint has
// height ≤ 3 per variable. 64 leaves generous slack while still
// terminating on a buggy client.
const maxVisitsPerBlock = 64

// SolveForward runs the worklist algorithm from g.Entry and returns the
// per-block in/out facts.
func SolveForward[F any](g *CFG, fl Flow[F]) *FlowResult[F] {
	res := &FlowResult[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	visits := map[*Block]int{}
	seeded := map[*Block]bool{}

	res.In[g.Entry] = fl.Bottom()
	seeded[g.Entry] = true
	work := []*Block{g.Entry}
	inWork := map[*Block]bool{g.Entry: true}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		if visits[b]++; visits[b] > maxVisitsPerBlock {
			continue
		}
		out := fl.Transfer(b, res.In[b])
		if old, ok := res.Out[b]; ok && fl.Equal(old, out) {
			continue
		}
		res.Out[b] = out
		for _, succ := range append(append([]*Block{}, b.Succs...), b.Back...) {
			next := out
			if seeded[succ] {
				next = fl.Join(res.In[succ], out)
				if fl.Equal(next, res.In[succ]) {
					continue
				}
			}
			res.In[succ] = next
			seeded[succ] = true
			if !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}
	return res
}
