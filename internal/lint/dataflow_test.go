package lint

import (
	"go/ast"
	"testing"
)

// defFlow is a test lattice: the set of identifier names assigned on some
// path so far. Finite height (one bit per name), so the solver must
// converge, including through back edges.
type defFlow struct{}

type defSet map[string]bool

func (defFlow) Bottom() defSet { return defSet{} }

func (defFlow) Join(a, b defSet) defSet {
	out := defSet{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (defFlow) Transfer(b *Block, in defSet) defSet {
	out := defSet{}
	for k := range in {
		out[k] = true
	}
	for _, s := range b.Stmts {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
	}
	return out
}

func (defFlow) Equal(a, b defSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestSolveForwardJoinsBranches(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(a bool) {
	if a {
		x := 1
		_ = x
	} else {
		y := 2
		_ = y
	}
	z := 3
	_ = z
}`))
	res := SolveForward[defSet](g, defFlow{})
	got := res.In[g.Exit]
	for _, want := range []string{"x", "y", "z"} {
		if !got[want] {
			t.Errorf("fact %q missing at Exit; got %v", want, got)
		}
	}
}

func TestSolveForwardLoopCarried(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(n int) {
	for i := 0; i < n; i++ {
		w := i
		_ = w
	}
	done := true
	_ = done
}`))
	res := SolveForward[defSet](g, defFlow{})
	got := res.In[g.Exit]
	// w is assigned only inside the loop body; it must flow around the
	// back edge into the header and out the loop exit.
	for _, want := range []string{"i", "w", "done"} {
		if !got[want] {
			t.Errorf("loop-carried fact %q missing at Exit; got %v", want, got)
		}
	}
}

func TestSolveForwardBranchIsolation(t *testing.T) {
	g := BuildCFG(parseBody(t, `func f(a bool) {
	if a {
		x := 1
		_ = x
	}
	_ = a
}`))
	res := SolveForward[defSet](g, defFlow{})
	// Inside the then-arm x is defined; on entry it is not.
	if res.In[g.Entry]["x"] {
		t.Error("fact x present at Entry")
	}
	var thenB *Block
	for _, s := range g.Entry.Succs {
		for _, st := range s.Stmts {
			if as, ok := st.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					thenB = s
				}
			}
		}
	}
	if thenB == nil {
		t.Fatal("then block not found")
	}
	if res.In[thenB]["x"] {
		t.Error("fact x present on then-arm entry (should only appear in Out)")
	}
	if !res.Out[thenB]["x"] {
		t.Error("fact x missing on then-arm exit")
	}
}
