package lint

import (
	"go/ast"
	"strconv"
	"strings"

	"go/types"
)

// analyzerErrorWrap requires fmt.Errorf to wrap error operands with %w.
// Formatting an error with %v (or %s) flattens it to text, so callers can
// no longer match the cause with errors.Is/As — mp.ErrDeadlock, for
// example, would become undetectable once wrapped that way.
var analyzerErrorWrap = &Analyzer{
	Name: "error-wrap",
	Doc:  "require %w when fmt.Errorf formats an error operand",
	Run:  runErrorWrap,
}

func runErrorWrap(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%[") {
				return true // explicit argument indexes: out of scope
			}
			for i, verb := range formatVerbs(format) {
				argIdx := 1 + i
				if argIdx >= len(call.Args) || verb == 'w' || verb == 0 {
					continue
				}
				t := info.TypeOf(call.Args[argIdx])
				if t == nil || !types.Implements(t, errorType) {
					continue
				}
				p.Reportf(call.Args[argIdx].Pos(), "error formatted with %%%c: use %%w so the cause stays matchable with errors.Is/As", verb)
			}
			return true
		})
	}
}

// formatVerbs returns one entry per argument the format string consumes:
// the verb rune for conversions, 0 for * width/precision operands.
func formatVerbs(format string) []rune {
	var out []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		// flags, width, precision; '*' consumes an argument of its own.
		for i < len(runes) && strings.ContainsRune("+-# 0123456789.*", runes[i]) {
			if runes[i] == '*' {
				out = append(out, 0)
			}
			i++
		}
		if i < len(runes) {
			out = append(out, runes[i])
		}
	}
	return out
}
