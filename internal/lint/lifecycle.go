package lint

import (
	"go/ast"
	"strings"
)

// The goroutine-lifecycle analyzer: every `go` statement in library code
// must have a provable termination signal reaching the spawned function,
// so the goroutine-leak freedom PR 5 proved dynamically holds by
// construction as the service arc multiplies long-lived goroutines.
//
// A spawn passes if any of these holds, checked through the
// interprocedural summaries of callgraph.go:
//
//  1. ctx observation — the spawned body (or a callee) calls Done/Err on
//     a context.Context, so cancellation can reach it;
//  2. WaitGroup join — the body (or a callee) calls sync.WaitGroup.Done,
//     so whoever Waits owns its lifetime;
//  3. closed channel — the body receives from a channel object the
//     module provably closes somewhere (receive parameters are
//     translated through the spawn-site arguments);
//  4. engine-owned shutdown — the spawned call is an mp protocol op,
//     whose abort machinery releases blocked ranks;
//  5. bounded body — the body has no loops and no blocking operations,
//     so it runs off the end on its own.
//
// Spawns of dynamic function values (a func-typed variable, field, or
// parameter) are opaque to the analyzer and reported as such: wrap the
// value in a literal that carries a signal, or suppress with a reason.

var analyzerGoroutineLifecycle = &Analyzer{
	Name: "goroutine-lifecycle",
	Doc:  "every go statement in library code needs a provable termination signal (ctx select, closed channel, WaitGroup join, engine-owned op, or a bounded body)",
	Run:  runGoroutineLifecycle,
}

func runGoroutineLifecycle(p *Pass) {
	// Library scope, like panics.go: commands own their process lifetime.
	if !strings.HasPrefix(p.Pkg.Path, "parroute/internal/") {
		return
	}
	ix := p.Mod.lifecycleIndex()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				checkSpawn(p, ix, gs)
			}
			return true
		})
	}
}

func checkSpawn(p *Pass, ix *lifeIndex, gs *ast.GoStmt) {
	call := gs.Call
	// Engine-owned shutdown: mp ops are released by the machine's abort
	// path, which the cancellation tier tests end to end.
	if resolveMPOp(p.Pkg.Info, call) != nil {
		return
	}
	var sum *lifeSummary
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		sum = ix.summarizeGoBody(p.Pkg.Info, lit)
	} else if fn := calleeFunc(p.Pkg.Info, call); fn != nil {
		lf := ix.declOf(fn)
		if lf == nil {
			// Out-of-module function: assumed to terminate, same trust the
			// summaries extend to stdlib calls.
			return
		}
		sum = lf.summary
	} else {
		p.Reportf(gs.Pos(), "goroutine spawns an opaque function value: the analyzer cannot prove it terminates; spawn a literal that selects on a ctx or joins a WaitGroup instead")
		return
	}
	if sum.observesCtx || sum.wgDone {
		return
	}
	for obj := range sum.recvObjs {
		if ix.closed[obj] {
			return
		}
	}
	for i := range sum.recvParams {
		if i < len(call.Args) {
			if obj := chanObjOf(p.Pkg.Info, call.Args[i]); obj != nil && ix.closed[obj] {
				return
			}
		}
	}
	if !sum.hasLoop && !sum.blocks {
		// Bounded body: no loops, nothing blocking — it runs off the end.
		return
	}
	why := "loops"
	if sum.blocks {
		why = "blocks on " + sum.blockDesc
	}
	p.Reportf(gs.Pos(), "goroutine has no provable termination signal (body %s): select on a ctx, receive from a channel the module closes, or join it with a WaitGroup", why)
}
