// Package lint is the static-analysis driver behind cmd/parroutecheck. It
// enforces the determinism and concurrency-hygiene rules the parallel
// routing algorithms depend on: every worker draws randomness from its own
// rng.RNG stream, wall-clock time never feeds a routing decision, state
// crosses goroutines through the mp transports (whose errors must be
// checked), and map iteration order never leaks into routing output.
//
// The driver is built entirely on the standard library (go/parser,
// go/types); see load.go. Analyzers report file:line diagnostics; a
// deliberate exception is suppressed by annotating the offending line (or
// the line directly above it) with
//
//	//lint:allow <rule> <reason>
//
// where <rule> names the analyzer and <reason> is a non-empty
// justification. A directive missing either part is itself reported under
// the rule name "lint-directive" and suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Diagnostic is one finding at one source position. File is relative to
// the module root, with forward slashes.
type Diagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Cfg  *Config
	Mod  *Module
	Pkg  *Package
	rule string
	out  *[]Diagnostic
}

// Reportf records a diagnostic at pos under the running analyzer's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.out = append(*p.out, Diagnostic{
		File: file,
		Line: position.Line,
		Col:  position.Column,
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Config scopes the rules to the right parts of the module.
type Config struct {
	// DeterministicPkgs are the import paths whose routing results must
	// not depend on Go map iteration order; the map-ordering checks of the
	// nondeterminism analyzer run only there (and in testdata fixture
	// packages, where every rule applies).
	DeterministicPkgs []string
	// TimeAllowedPkgs and TimeAllowedFiles exempt measurement
	// infrastructure from the time.Now/time.Since ban. Files are module
	// root relative, slash separated.
	TimeAllowedPkgs  []string
	TimeAllowedFiles []string
}

// DefaultConfig is the policy for this repository, documented in
// DESIGN.md's "Static analysis" section.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"parroute/internal/route",
			"parroute/internal/parallel",
			"parroute/internal/steiner",
			"parroute/internal/partition",
			"parroute/internal/channel",
		},
		TimeAllowedPkgs: []string{
			"parroute/internal/metrics",
			// The observer clock: every phase/stage timing in the module is
			// read here, and observers cannot affect routing output.
			"parroute/internal/pipeline",
		},
		TimeAllowedFiles: []string{
			// The suite's own -timings stopwatch; analyzer wall time is
			// operator telemetry, never a routing input.
			"internal/lint/run.go",
		},
	}
}

// timeAllowed reports whether wall-clock reads are permitted at the given
// position.
func (c *Config) timeAllowed(pkgPath, relFile string) bool {
	for _, p := range c.TimeAllowedPkgs {
		if pkgPath == p {
			return true
		}
	}
	for _, f := range c.TimeAllowedFiles {
		if relFile == f {
			return true
		}
	}
	return false
}

// deterministicScope reports whether the map-ordering rules apply to pkg.
// Fixture packages under testdata opt into every rule so the golden tests
// can exercise them.
func (c *Config) deterministicScope(pkgPath string) bool {
	if strings.Contains(pkgPath, "/testdata/") {
		return true
	}
	for _, p := range c.DeterministicPkgs {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// Analyzers returns the full registry, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerNondeterminism,
		analyzerRNGSharing,
		analyzerSyncByValue,
		analyzerUncheckedError,
		analyzerErrorWrap,
		analyzerPanicInLibrary,
		analyzerCollectiveCongruence,
		analyzerTagDiscipline,
		analyzerSendRecvPairing,
		analyzerManifestDrift,
		analyzerSortOrder,
		analyzerCtxRule,
		analyzerGoroutineLifecycle,
		analyzerLockAcrossBlocking,
		analyzerUnboundedSpawn,
	}
}

// relFile returns f's filename relative to the module root.
func (p *Pass) relFile(f *ast.File) string {
	name := p.Mod.Fset.Position(f.Package).Filename
	if rel, err := filepath.Rel(p.Mod.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}
