package lint_test

import (
	"os"
	"strings"
	"testing"

	"parroute/internal/lint"
)

// loadFixture loads one testdata package and runs the default suite.
func loadFixture(t *testing.T, dir string) []lint.Diagnostic {
	t.Helper()
	mod, err := lint.LoadDirs(".", []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return lint.Run(mod, lint.DefaultConfig())
}

// TestFixtureFiresEachRuleExactlyOnce is the contract of the fixture
// package: a fixed count of intentional violations per analyzer (one
// each, except tag-discipline, which demonstrates both its raw-literal
// and reserved-range halves), everything in allowed.go suppressed.
func TestFixtureFiresEachRuleExactlyOnce(t *testing.T) {
	diags := loadFixture(t, "testdata/src/fixture")
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Rule]++
		if strings.Contains(d.File, "allowed.go") {
			t.Errorf("suppressed violation still reported: %s", d)
		}
	}
	total := 0
	for _, a := range lint.Analyzers() {
		want := 1
		if a.Name == "tag-discipline" {
			want = 2 // raw-literal site + reserved-range declaration
		}
		if a.Name == "ctxrule" {
			want = 2 // non-first ctx parameter + ctx stored in a struct field
		}
		total += want
		if counts[a.Name] != want {
			t.Errorf("rule %s fired %d times, want exactly %d", a.Name, counts[a.Name], want)
		}
	}
	if len(diags) != total {
		t.Errorf("got %d diagnostics, want %d", len(diags), total)
	}
}

// TestFixtureGolden pins the exact positions and messages.
func TestFixtureGolden(t *testing.T) {
	diags := loadFixture(t, "testdata/src/fixture")
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	want, err := os.ReadFile("testdata/fixture.golden")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("diagnostics diverge from testdata/fixture.golden:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestMalformedAllowDirective: a //lint:allow without a reason is itself
// reported and suppresses nothing.
func TestMalformedAllowDirective(t *testing.T) {
	diags := loadFixture(t, "testdata/src/badallow")
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2 (lint-directive + unsuppressed panic)", len(diags), rules)
	}
	seen := map[string]bool{}
	for _, r := range rules {
		seen[r] = true
	}
	if !seen["lint-directive"] || !seen["panic-in-library"] {
		t.Errorf("got rules %v, want lint-directive and panic-in-library", rules)
	}
}

// TestStaleAllowAudit pins the audit's two messages — a healed known
// rule and an unknown rule name — and proves the escape hatch keeps the
// deliberately retained directive quiet (the fixture's third directive
// produces no line below).
func TestStaleAllowAudit(t *testing.T) {
	diags := loadFixture(t, "testdata/src/staleallow")
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	want, err := os.ReadFile("testdata/staleallow.golden")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("diagnostics diverge from testdata/staleallow.golden:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestFilteredRunSkipsStaleAudit: a -analyzer run exercises only part of
// the registry, so directives for the other rules must not be reported
// as stale — the audit runs only with the full suite.
func TestFilteredRunSkipsStaleAudit(t *testing.T) {
	mod, err := lint.LoadDirs(".", []string{"testdata/src/staleallow"})
	if err != nil {
		t.Fatal(err)
	}
	opts := lint.RunOptions{Analyzers: []string{"panic-in-library"}}
	diags, timings, err := lint.RunSuite(mod, lint.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("filtered run reported %s", d)
	}
	if len(timings) != 1 || timings[0].Name != "panic-in-library" {
		t.Errorf("timings = %v, want exactly one entry for panic-in-library", timings)
	}
}

// TestRunSuiteUnknownAnalyzer: a typoed -analyzer name is an error, not
// a silently empty run.
func TestRunSuiteUnknownAnalyzer(t *testing.T) {
	mod, err := lint.LoadDirs(".", []string{"testdata/src/fixture"})
	if err != nil {
		t.Fatal(err)
	}
	opts := lint.RunOptions{Analyzers: []string{"no-such-rule"}}
	if _, _, err := lint.RunSuite(mod, lint.DefaultConfig(), opts); err == nil || !strings.Contains(err.Error(), "no-such-rule") {
		t.Errorf("RunSuite error = %v, want it to name no-such-rule", err)
	}
}

// TestModuleIsClean mirrors the repo-root gate from inside the package,
// so `go test ./internal/lint` alone proves the tree is lint-clean.
func TestModuleIsClean(t *testing.T) {
	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Pkgs) < 15 {
		t.Fatalf("module walk found only %d packages; loader is skipping code", len(mod.Pkgs))
	}
	for _, d := range lint.Run(mod, lint.DefaultConfig()) {
		t.Errorf("%s", d)
	}
}

// TestDefaultConfigScope guards the policy encoded in DefaultConfig.
func TestDefaultConfigScope(t *testing.T) {
	mod, err := lint.LoadDirs(".", []string{"testdata/src/fixture"})
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "parroute" {
		t.Errorf("module path = %q, want parroute", mod.Path)
	}
	if len(mod.Pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(mod.Pkgs))
	}
	if got := mod.Pkgs[0].Path; got != "parroute/internal/lint/testdata/src/fixture" {
		t.Errorf("fixture import path = %q", got)
	}
}
