package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a loaded, type-checked view of this Go module, built with only
// the standard library: packages are discovered by walking the tree from
// go.mod, parsed with go/parser, and checked with go/types. Imports inside
// the module resolve recursively through the same loader; standard-library
// imports go through the source importer, so no compiled export data is
// needed.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path from the go.mod "module" directive
	Fset *token.FileSet
	// Pkgs are the packages requested by LoadModule or LoadDirs, sorted by
	// import path. Dependencies loaded only to satisfy type-checking are
	// not listed.
	Pkgs []*Package
	// proto is the lazily built module-wide protocol index shared by the
	// mpproto analyzers; see protocolIndex in mpproto.go.
	proto *protoIndex
	// life is the lazily built module-wide concurrency-lifecycle index
	// shared by the goroutine/lock/spawn analyzers; see lifecycleIndex in
	// callgraph.go.
	life *lifeIndex
	// manifests caches protocol-manifest lookups by file path; see
	// manifestFor in manifest.go.
	manifests map[string]*manifestEntry
}

// Package is one type-checked package of the module.
type Package struct {
	Path  string // import path ("parroute/internal/route")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader resolves imports for the type-checker: module-local paths are
// parsed and checked from source on demand; everything else is delegated
// to the standard library's source importer.
type loader struct {
	root string
	path string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// skip lists file base names excluded from every package. mpgen scans
	// with its own generated output excluded, so a stale (even no longer
	// type-checking) mpwire_gen.go never blocks regeneration.
	skip map[string]bool
	// loading guards against import cycles, which the go toolchain rejects
	// anyway but would otherwise recurse forever here.
	loading map[string]bool
}

func newLoader(root, path string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		path:    path,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		skip:    map[string]bool{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.path || strings.HasPrefix(path, l.path+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the module package with the given import
// path, memoized.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.path)))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file of dir, in name order.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || l.skip[name] {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// importPathOf maps an absolute package directory to its import path.
func (l *loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.root)
	}
	if rel == "." {
		return l.path, nil
	}
	return l.path + "/" + filepath.ToSlash(rel), nil
}

// findModule walks up from dir to the directory containing go.mod and
// returns its absolute path plus the declared module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", fmt.Errorf("lint: %w", err)
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// LoadModule loads every package of the module containing dir, skipping
// testdata and hidden directories (the same set `go build ./...` sees).
func LoadModule(dir string) (*Module, error) {
	return LoadModuleSkipping(dir)
}

// LoadModuleSkipping is LoadModule with files whose base name appears in
// skipBase excluded from every package. mpgen scans with its own output
// file excluded so stale generated code cannot block regeneration.
func LoadModuleSkipping(dir string, skipBase ...string) (*Module, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, path)
	for _, name := range skipBase {
		l.skip[name] = true
	}
	var pkgDirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") && !l.skip[d.Name()] {
			dir := filepath.Dir(p)
			if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != dir {
				pkgDirs = append(pkgDirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	return l.finish(pkgDirs)
}

// LoadDirs loads the specific package directories (relative paths resolve
// against dir), including directories under testdata that LoadModule
// skips. The module is located from dir.
func LoadDirs(dir string, pkgDirs []string) (*Module, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, path)
	abs := make([]string, len(pkgDirs))
	for i, d := range pkgDirs {
		if filepath.IsAbs(d) {
			abs[i] = filepath.Clean(d)
			continue
		}
		base, err := filepath.Abs(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		abs[i] = filepath.Join(base, d)
	}
	return l.finish(abs)
}

// finish loads each requested directory and assembles the Module.
func (l *loader) finish(pkgDirs []string) (*Module, error) {
	mod := &Module{Root: l.root, Path: l.path, Fset: l.fset}
	seen := map[string]bool{}
	for _, dir := range pkgDirs {
		path, err := l.importPathOf(dir)
		if err != nil {
			return nil, err
		}
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}
