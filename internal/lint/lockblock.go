package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The lock-across-blocking analyzer: a sync.Mutex/RWMutex provably held
// across a blocking operation is a deadlock risk — the blocked holder
// stalls every other locker, and if any of them is the party that would
// have unblocked the operation, the program wedges. Blocking operations
// are the scanBlocking set (channel send/recv, select without default,
// range over a channel, mp ops, WaitGroup.Wait, net/gob I/O, time.Sleep)
// plus calls to module functions whose lifecycle summary says they block.
//
// Held-ness is a forward dataflow over the CFG: Lock/RLock adds the mutex
// object, Unlock/RUnlock removes it, and a deferred Unlock keeps the
// mutex held to function end (which is exactly the risky shape). The join
// is a union — held on either incoming path counts — which over-reports
// conditional locking; the codebase has none, and a reasoned
// //lint:allow is the escape hatch for protocol-guaranteed non-blocking
// sends (see internal/mp/virtual.go).

var analyzerLockAcrossBlocking = &Analyzer{
	Name: "lock-across-blocking",
	Doc:  "a mutex provably held across a blocking operation (channel, select, mp op, network I/O) is flagged as a deadlock risk",
	Run:  runLockAcrossBlocking,
}

// lockFacts is the set of mutex objects held at a program point, mapping
// the object to a display name for diagnostics.
type lockFacts map[types.Object]string

type lockFlow struct {
	info *types.Info
}

func (lf *lockFlow) Bottom() lockFacts { return lockFacts{} }

func (lf *lockFlow) Join(a, b lockFacts) lockFacts {
	out := make(lockFacts, len(a)+len(b))
	for o, n := range a {
		out[o] = n
	}
	for o, n := range b {
		out[o] = n
	}
	return out
}

func (lf *lockFlow) Equal(a, b lockFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for o := range a {
		if _, ok := b[o]; !ok {
			return false
		}
	}
	return true
}

func (lf *lockFlow) Transfer(b *Block, in lockFacts) lockFacts {
	out := in
	copied := false
	mutate := func() lockFacts {
		if !copied {
			out = lf.Join(in, nil)
			copied = true
		}
		return out
	}
	for _, s := range b.Stmts {
		lf.step(s, mutate)
	}
	return out
}

// step applies the lock effect of one statement, fetching a mutable fact
// set from mutate only when there is an effect to apply.
func (lf *lockFlow) step(s ast.Stmt, mutate func() lockFacts) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return
	}
	obj, name, locks := lf.lockOp(call)
	if obj == nil {
		return
	}
	if locks {
		mutate()[obj] = name
	} else {
		delete(mutate(), obj)
	}
}

// lockOp classifies call as a mutex acquire (Lock/RLock) or release
// (Unlock/RUnlock), returning the mutex object and a display name.
func (lf *lockFlow) lockOp(call *ast.CallExpr) (types.Object, string, bool) {
	fn := calleeFunc(lf.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	var locks bool
	switch fn.Name() {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return nil, "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	obj := chanObjOf(lf.info, sel.X)
	if obj == nil {
		return nil, "", false
	}
	return obj, exprText(sel.X), locks
}

// exprText renders a short display form of a mutex expression (m.mu, mu).
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	}
	return "mutex"
}

func runLockAcrossBlocking(p *Pass) {
	ix := p.Mod.lifecycleIndex()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBlocking(p, ix, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockBlocking(p, ix, lit.Body)
				}
				return true
			})
		}
	}
}

func checkLockBlocking(p *Pass, ix *lifeIndex, body *ast.BlockStmt) {
	// Quick reject: a body that never locks needs no CFG.
	locksAny := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(p.Pkg.Info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && (fn.Name() == "Lock" || fn.Name() == "RLock") {
				locksAny = true
			}
		}
	})
	if !locksAny {
		return
	}
	g := BuildCFG(body)
	fl := &lockFlow{info: p.Pkg.Info}
	res := SolveForward[lockFacts](g, fl)
	for _, b := range g.Blocks {
		facts := fl.Join(res.In[b], nil)
		for i, s := range b.Stmts {
			if i == 0 && b.IsSelectClause {
				// The chosen comm statement already unblocked; whether the
				// select could block was decided at the dispatch block.
				continue
			}
			if len(facts) > 0 {
				reportBlockingUnder(p, ix, s, facts)
			}
			fl.step(s, func() lockFacts { return facts })
		}
		if len(facts) == 0 {
			continue
		}
		if b.Select != nil && !selectHasDefault(b.Select) {
			reportLockHeld(p, b.Select.Pos(), facts, "a select with no default case")
		}
		if b.Cond != nil {
			if b.IsLoopHead && isChanExpr(p.Pkg.Info, b.Cond) {
				reportLockHeld(p, b.Cond.Pos(), facts, "a range over a channel")
			} else {
				scanBlocking(p.Pkg.Info, b.Cond, func(pos token.Pos, desc string) {
					reportLockHeld(p, pos, facts, desc)
				})
			}
		}
	}
}

// reportBlockingUnder reports every blocking operation in s — direct ops
// via scanBlocking, plus calls into module functions that block per their
// lifecycle summary.
func reportBlockingUnder(p *Pass, ix *lifeIndex, s ast.Stmt, held lockFacts) {
	reported := map[token.Pos]bool{}
	scanBlocking(p.Pkg.Info, s, func(pos token.Pos, desc string) {
		reported[pos] = true
		reportLockHeld(p, pos, held, desc)
	})
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if reported[n.Pos()] {
				return true
			}
			if _, direct := blockingCall(p.Pkg.Info, n); direct {
				return true
			}
			if lf := ix.declOf(calleeFunc(p.Pkg.Info, n)); lf != nil && lf.summary.blocks {
				reportLockHeld(p, n.Pos(), held, "a call to "+lf.fn.Name()+", which blocks on "+lf.summary.blockDesc)
			}
		}
		return true
	})
}

func reportLockHeld(p *Pass, pos token.Pos, held lockFacts, what string) {
	names := make([]string, 0, len(held))
	for _, n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	p.Reportf(pos, "mutex %s is held across %s: a blocked operation under a lock stalls every other locker (deadlock risk)", names[0], what)
}
