package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"

	"parroute/internal/mpproto"
)

// The manifest-aware half of the mpproto analyzer family. mpgen derives
// mp_protocol.json — the machine-readable contract of the mp message set
// (payload layouts, wire ids, the tag table, the collective census) —
// from the //mp:payload types and protocol constants themselves. The
// checks here close the loop in the other direction: the source must
// still match the committed manifest, so editing a payload struct or a
// tag constant without running `go generate ./...` fails the lint gate
// even before `mpgen -check` compares bytes.
//
// A package is only checked when a manifest covers it: the one in the
// package's own directory wins (lint fixtures carry local manifests),
// falling back to the module root's. Packages outside every manifest's
// coverage list are exempt, so ordinary fixture packages stay unaffected.

// manifestEntry caches one manifest load; nil manifest means the file is
// absent or unreadable (mpgen -check reports the real error in CI).
type manifestEntry struct {
	man *mpproto.Manifest
}

// manifestFor resolves the protocol manifest governing pkg, memoized on
// the Module.
func (m *Module) manifestFor(pkg *Package) *mpproto.Manifest {
	if m.manifests == nil {
		m.manifests = map[string]*manifestEntry{}
	}
	for _, dir := range []string{pkg.Dir, m.Root} {
		path := filepath.Join(dir, mpproto.ManifestName)
		e, ok := m.manifests[path]
		if !ok {
			e = &manifestEntry{}
			if _, err := os.Stat(path); err == nil {
				e.man, _ = mpproto.Load(path)
			}
			m.manifests[path] = e
		}
		if e.man != nil {
			return e.man
		}
	}
	return nil
}

// mpPayloadArgIdx maps each sending protocol operation of internal/mp to
// the index of its payload argument, mirroring mpgen's scanner.
var mpPayloadArgIdx = map[string]int{
	"Send":            2,
	"Bcast":           3,
	"Gather":          3,
	"Allgather":       2,
	"AllreduceInt32s": 2,
	"AllreduceInt":    2,
	"Alltoall":        2,
	"Reduce":          3,
	"Scatter":         3,
	"Scan":            2,
}

// staticPayloadName returns the manifest name of a send-site payload
// expression's static type ("pkg/path.Name" for named types, "[]int32"
// and friends for builtins), or "" when the static type is an interface
// — a relayed any has no static payload identity.
func staticPayloadName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := types.Default(tv.Type)
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return ""
	}
	return types.TypeString(t, nil)
}

// manifestHasType reports whether man prices the payload type named by
// staticPayloadName: a builtin shape entry or a per-package type entry.
func manifestHasType(man *mpproto.Manifest, typeName string) bool {
	for i := range man.Types {
		e := &man.Types[i]
		if e.Package == "" && e.Name == typeName {
			return true
		}
		if e.Package != "" && e.Package+"."+e.Name == typeName {
			return true
		}
	}
	return false
}

var analyzerManifestDrift = &Analyzer{
	Name: "manifest-drift",
	Doc:  "//mp:payload types and mp send sites must match mp_protocol.json; regenerate with `go generate ./...`",
	Run:  runManifestDrift,
}

func runManifestDrift(p *Pass) {
	man := p.Mod.manifestFor(p.Pkg)
	if man == nil || !man.Covers(p.Pkg.Path) {
		return
	}
	marked := map[string]bool{}
	for _, f := range p.Pkg.Files {
		checkMarkedTypes(p, man, f, marked)
	}
	checkStaleEntries(p, man, marked)
	for _, f := range p.Pkg.Files {
		checkSentPayloads(p, man, f)
		checkWireCodecRegistrations(p, man, f)
	}
}

// checkWireCodecRegistrations verifies every RegisterWireCodec call
// against the manifest's wire-id table: the registered prototype must be
// a manifest type and the id must be its recorded wireId. The ids are on
// the socket now — a frame's payload is decoded by looking the id up on
// the receiving process — so an id the manifest does not record, or one
// attached to a different type than the manifest says, is a protocol
// fork between builds, not a style problem.
func checkWireCodecRegistrations(p *Pass, man *mpproto.Manifest, f *ast.File) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != mpPkgPath ||
			fn.Name() != "RegisterWireCodec" || len(call.Args) < 2 {
			return true
		}
		id, ok := constUint32Of(info, call.Args[0])
		if !ok {
			p.Reportf(call.Args[0].Pos(),
				"RegisterWireCodec id must be a constant so %s can record it", mpproto.ManifestName)
			return true
		}
		typeName := staticPayloadName(info, call.Args[1])
		if typeName == "" {
			return true
		}
		entry := manifestTypeByQualifiedName(man, typeName)
		if entry == nil {
			p.Reportf(call.Args[1].Pos(),
				"wire codec registered for %s, which %s does not record: run `go generate ./...` and commit the regenerated files",
				typeName, mpproto.ManifestName)
			return true
		}
		if entry.WireID != id {
			p.Reportf(call.Args[0].Pos(),
				"wire codec for %s registered under id %d but %s records wireId %d: run `go generate ./...` and commit the regenerated files",
				typeName, id, mpproto.ManifestName, entry.WireID)
		}
		return true
	})
}

// manifestTypeByQualifiedName finds the entry whose qualified name
// ("pkg/path.Name", or the builtin spelling) matches typeName.
func manifestTypeByQualifiedName(man *mpproto.Manifest, typeName string) *mpproto.TypeEntry {
	for i := range man.Types {
		e := &man.Types[i]
		if e.Package == "" && e.Name == typeName {
			return e
		}
		if e.Package != "" && e.Package+"."+e.Name == typeName {
			return e
		}
	}
	return nil
}

// constUint32Of extracts a constant uint32 from an expression.
func constUint32Of(info *types.Info, e ast.Expr) (uint32, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Uint64Val(constant.ToInt(tv.Value))
	if !exact || v > 1<<32-1 {
		return 0, false
	}
	return uint32(v), true
}

// checkMarkedTypes verifies every //mp:payload type of f against its
// manifest entry, field by field, and records the marked names.
func checkMarkedTypes(p *Pass, man *mpproto.Manifest, f *ast.File, marked map[string]bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if !mpproto.HasPayloadMarker(gd.Doc) && !mpproto.HasPayloadMarker(ts.Doc) {
				continue
			}
			marked[ts.Name.Name] = true
			obj := p.Pkg.Info.Defs[ts.Name]
			if obj == nil {
				continue
			}
			want, err := mpproto.TypeEntryFor(ts.Name.Name, p.Pkg.Path, obj.Type())
			if err != nil {
				p.Reportf(ts.Pos(), "payload %s has no flat wire layout: %v", ts.Name.Name, err)
				continue
			}
			got := man.TypeByName(p.Pkg.Path, ts.Name.Name)
			if got == nil {
				p.Reportf(ts.Pos(),
					"payload %s is missing from %s: run `go generate ./...` and commit the regenerated files",
					ts.Name.Name, mpproto.ManifestName)
				continue
			}
			if diff := mpproto.DiffLayout(&want, got); diff != "" {
				p.Reportf(ts.Pos(),
					"payload %s drifted from %s (%s): run `go generate ./...` and commit the regenerated files",
					ts.Name.Name, mpproto.ManifestName, diff)
			}
		}
	}
}

// checkStaleEntries reports manifest type entries attributed to this
// package that no longer correspond to a marked type — a deleted or
// unmarked payload left behind in the committed manifest.
func checkStaleEntries(p *Pass, man *mpproto.Manifest, marked map[string]bool) {
	if len(p.Pkg.Files) == 0 {
		return
	}
	pos := p.Pkg.Files[0].Name.Pos()
	for i := range man.Types {
		e := &man.Types[i]
		if e.Package != p.Pkg.Path || marked[e.Name] {
			continue
		}
		p.Reportf(pos,
			"%s entry %s has no //mp:payload type in this package: stale manifest, run `go generate ./...`",
			mpproto.ManifestName, e.Name)
	}
}

// checkSentPayloads verifies that every statically typed payload handed
// to a sending mp operation is priced by the manifest — the enforcement
// loop that catches a payload type sent without the //mp:payload marker
// (and therefore without a codec, priced by gob fallback).
func checkSentPayloads(p *Pass, man *mpproto.Manifest, f *ast.File) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op := resolveMPOp(info, call)
		if op == nil || op.sides&sideSend == 0 {
			return true
		}
		idx, ok := mpPayloadArgIdx[op.name]
		if !ok || idx >= len(call.Args) {
			return true
		}
		name := staticPayloadName(info, call.Args[idx])
		if name == "" || manifestHasType(man, name) {
			return true
		}
		p.Reportf(call.Args[idx].Pos(),
			"payload type %s is sent over mp but not priced by %s: mark it //mp:payload and run `go generate ./...`",
			name, mpproto.ManifestName)
		return true
	})
}

// checkManifestTags cross-checks the declared tag constants of f against
// the manifest's tag table; reported under tag-discipline (see mptag.go).
func checkManifestTags(p *Pass, man *mpproto.Manifest, f *ast.File) {
	info := p.Pkg.Info
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj, ok := info.Defs[name].(*types.Const)
				if !ok || !isTagName(name.Name) || !isIntegerConst(obj) {
					continue
				}
				v, ok := constIntValue(obj)
				if !ok {
					continue
				}
				entry := man.TagByName(p.Pkg.Path, name.Name)
				if entry == nil {
					p.Reportf(name.Pos(),
						"tag %s is not in %s's tag table: run `go generate ./...` and commit the regenerated files",
						name.Name, mpproto.ManifestName)
					continue
				}
				if entry.Value != v {
					p.Reportf(name.Pos(),
						"tag %s = %d but %s records %d: run `go generate ./...` and commit the regenerated files",
						name.Name, v, mpproto.ManifestName, entry.Value)
				}
			}
		}
	}
}

// checkManifestTagSites cross-checks sending sites against the
// manifest's per-tag payload sets; reported under send-recv-pairing (see
// mppairing.go). A site sending a statically typed payload under a named
// tag must appear in the tag's recorded payload set — a mismatch means
// the protocol changed shape after the last regeneration.
func checkManifestTagSites(p *Pass, f *ast.File) {
	man := p.Mod.manifestFor(p.Pkg)
	if man == nil || !man.Covers(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op := resolveMPOp(info, call)
		if op == nil || op.sides&sideSend == 0 || op.tagIdx < 0 || op.tagIdx >= len(call.Args) {
			return true
		}
		tag := namedConstOf(info, call.Args[op.tagIdx])
		if tag == nil || tag.Pkg() == nil || !man.Covers(tag.Pkg().Path()) {
			return true
		}
		idx, ok := mpPayloadArgIdx[op.name]
		if !ok || idx >= len(call.Args) {
			return true
		}
		name := staticPayloadName(info, call.Args[idx])
		if name == "" {
			return true
		}
		entry := man.TagByName(tag.Pkg().Path(), tag.Name())
		if entry == nil {
			return true // the declaration-site check reports the missing tag
		}
		for _, rec := range entry.Payloads {
			if rec == name {
				return true
			}
		}
		p.Reportf(call.Args[idx].Pos(),
			"%s sends %s under tag %s, but %s records payloads %v for it: run `go generate ./...`",
			op.name, name, tag.Name(), mpproto.ManifestName, entry.Payloads)
		return true
	})
}

// constIntValue extracts obj's integer value.
func constIntValue(obj *types.Const) (int, bool) {
	v := obj.Val()
	if v == nil {
		return 0, false
	}
	i, exact := constant.Int64Val(constant.ToInt(v))
	return int(i), exact
}
