package lint_test

import (
	"strings"
	"testing"

	"parroute/internal/lint"
)

// TestManifestDriftFixture pins every manifest cross-check against the
// deliberately stale mp_protocol.json committed beside
// testdata/src/manifestdrift: marked-but-missing payloads, un-flat
// payloads, stale manifest entries, unpriced send payloads, tag value
// drift, missing tags, tag-site payload-set drift, and wire-codec
// registrations whose id or type the manifest does not record.
func TestManifestDriftFixture(t *testing.T) {
	diags := loadFixture(t, "testdata/src/manifestdrift")
	wants := []struct{ rule, substr string }{
		{"manifest-drift", "payload MissingBatch is missing from mp_protocol.json"},
		{"manifest-drift", "payload BadMsg has no flat wire layout"},
		{"manifest-drift", "mp_protocol.json entry GhostBatch has no //mp:payload type in this package"},
		{"manifest-drift", "payload type parroute/internal/lint/testdata/src/manifestdrift.UnpricedMsg is sent over mp but not priced by mp_protocol.json"},
		{"manifest-drift", "wire codec for parroute/internal/lint/testdata/src/manifestdrift.DriftBatch registered under id 5 but mp_protocol.json records wireId 4"},
		{"manifest-drift", "wire codec registered for parroute/internal/lint/testdata/src/manifestdrift.UnpricedMsg, which mp_protocol.json does not record"},
		{"tag-discipline", "tag tagDrift = 11 but mp_protocol.json records 12"},
		{"tag-discipline", "tag tagMissing is not in mp_protocol.json's tag table"},
		{"send-recv-pairing", "Send sends []int32 under tag tagPaired, but mp_protocol.json records payloads [int]"},
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if d.Rule == w.rule && strings.Contains(d.Msg, w.substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s diagnostic containing %q; got:\n%s", w.rule, w.substr, dumpDiags(diags))
		}
	}
	// Exactly these and nothing else: every tag in the fixture is paired
	// with a receive, so no orphan-tag or self-peer noise rides along.
	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(diags), len(wants), dumpDiags(diags))
	}
}

// TestManifestCoverageGate: a package outside every manifest's coverage
// list is exempt from the manifest checks even though the module-root
// manifest loads — the fixture packages under testdata must not be
// judged against the real protocol.
func TestManifestCoverageGate(t *testing.T) {
	diags := loadFixture(t, "testdata/src/selfsend")
	for _, d := range diags {
		if d.Rule == "manifest-drift" {
			t.Errorf("manifest-drift fired in an uncovered package: %s", d)
		}
		if strings.Contains(d.Msg, "mp_protocol.json") {
			t.Errorf("manifest cross-check fired in an uncovered package: %s", d)
		}
	}
}

func dumpDiags(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}
