package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// analyzerCollectiveCongruence enforces the first mpproto rule: every rank
// of a communicator must execute the same sequence of collective
// operations (mp.Bcast/Gather/…/Comm.Barrier). A collective that is
// control-dependent on a rank-derived condition — `if c.Rank() == 0 {
// Barrier() }`, or an early return on one rank before a barrier the
// others reach — deadlocks the whole machine, as the virtual engine's
// deadlock tests demonstrate dynamically.
//
// The check is path-sensitive over the CFG: at every branch whose
// condition is rank-derived (directly via Rank(), or through local
// variables tracked by the rank-taint dataflow), the analyzer enumerates
// the collective-event sequences reachable from each arm to the function
// exit and reports when the arms disagree. Calls to module helpers are
// expanded one level deep using the protocol index, so a rank-guarded
// call to a helper that gathers (the rawGather path) is still caught.
var analyzerCollectiveCongruence = &Analyzer{
	Name: "collective-congruence",
	Doc:  "forbid collectives (Bcast/Gather/Barrier/…) control-dependent on rank-derived conditions",
	Run:  runCollectiveCongruence,
}

// Path-enumeration bounds: a branch whose arms exceed them is skipped
// rather than guessed at (the err-return pruning below keeps real
// protocol code far under these).
const (
	maxCongruencePaths  = 256
	maxCongruenceEvents = 64
)

func runCollectiveCongruence(p *Pass) {
	idx := p.Mod.protocolIndex()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCongruence(p, idx, fd)
		}
	}
}

func checkCongruence(p *Pass, idx *protoIndex, fd *ast.FuncDecl) {
	g, flow, rf := solveRankTaint(p.Pkg.Info, fd)

	// Precompute each block's ordered event list (helpers expanded one
	// level), whether any event is reachable from it, and whether it ends
	// in an error-abort return.
	events := make([][]string, len(g.Blocks))
	abort := make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		events[b.Index] = blockEvents(p, idx, b)
		abort[b.Index] = endsInErrorAbort(p, idx, b)
	}
	reach := eventReachability(g, events)

	for _, b := range g.Blocks {
		if b.Cond == nil || len(b.Succs) < 2 {
			continue
		}
		if !rf.mentionsRank(b.Cond, flow.Out[b]) {
			continue
		}
		// Enumerate each arm's event-sequence set.
		arms := make([]map[string]bool, len(b.Succs))
		complete := true
		for i, succ := range b.Succs {
			e := &seqEnum{g: g, events: events, reach: reach, abort: abort}
			e.walk(succ, map[*Block]bool{}, nil)
			if e.overflow {
				complete = false
				break
			}
			arms[i] = e.out
		}
		if !complete {
			continue
		}
		// An arm whose every path aborts with an error never completes the
		// protocol anyway (the first worker error tears the machine down),
		// so it is exempt from congruence.
		for i := 1; i < len(arms); i++ {
			if len(arms[0]) == 0 || len(arms[i]) == 0 {
				continue
			}
			if !sameSeqSet(arms[0], arms[i]) {
				p.Reportf(b.Cond.Pos(),
					"collective sequence depends on a rank-derived condition: one branch performs %s, another %s — every rank must execute the same collectives",
					describeSeqDiff(arms[i], arms[0]), describeSeqDiff(arms[0], arms[i]))
				break
			}
		}
	}
}

// blockEvents lists the collective events of b's statements in source
// order: direct mp collective/Barrier calls plus the one-level expansion
// of module helpers with a non-empty event summary.
func blockEvents(p *Pass, idx *protoIndex, b *Block) []string {
	var out []string
	for _, s := range b.Stmts {
		inspectSkippingFuncLits(s, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if op := resolveMPOp(p.Pkg.Info, call); op != nil {
				if op.event {
					out = append(out, op.name)
				}
				return
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil {
				return
			}
			if fp := idx.funcs[funcOrigin(fn)]; fp != nil && len(fp.events) > 0 {
				out = append(out, fp.events...)
			}
		})
	}
	return out
}

// endsInErrorAbort reports whether b terminates in a return that
// propagates a definite error — `return err`, `return nil, fmt.Errorf(…)`
// — rather than completing normally. Such paths tear the whole machine
// down (mp.Run aborts on the first worker error), so they are exempt from
// sequence congruence. A `return nil`, a returned mp operation
// (`return c.Barrier()`), or a returned module helper that performs
// collectives (`return gatherResults(…)`) all count as normal protocol
// paths, not aborts.
func endsInErrorAbort(p *Pass, idx *protoIndex, b *Block) bool {
	info := p.Pkg.Info
	if len(b.Stmts) == 0 {
		return false
	}
	ret, ok := b.Stmts[len(b.Stmts)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	t := info.TypeOf(last)
	if tup, ok := t.(*types.Tuple); ok && tup.Len() > 0 {
		t = tup.At(tup.Len() - 1).Type()
	}
	if t == nil || !types.Implements(t, errorType) {
		return false // includes `return nil`: untyped nil is not error-typed
	}
	if call, ok := last.(*ast.CallExpr); ok {
		if resolveMPOp(info, call) != nil {
			return false
		}
		if fn := calleeFunc(info, call); fn != nil {
			if fp := idx.funcs[funcOrigin(fn)]; fp != nil && len(fp.events) > 0 {
				return false
			}
		}
	}
	return true
}

// eventReachability computes, per block, whether any collective event is
// reachable from it along forward or back edges.
func eventReachability(g *CFG, events [][]string) []bool {
	reach := make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		reach[b.Index] = len(events[b.Index]) > 0
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if reach[b.Index] {
				continue
			}
			for _, s := range append(append([]*Block{}, b.Succs...), b.Back...) {
				if reach[s.Index] {
					reach[b.Index] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// seqEnum enumerates collective-event sequences from a start block to the
// function exit. Each path visits a block at most once (back edges are
// followed, so one loop iteration's events are observed, but cycles are
// cut), and paths are pruned as soon as no further event is reachable —
// which collapses the err-return ladders of real protocol code instead of
// exploding on them.
type seqEnum struct {
	g        *CFG
	events   [][]string
	reach    []bool
	abort    []bool
	out      map[string]bool
	paths    int
	overflow bool
}

func (e *seqEnum) emit(seq []string) {
	if e.out == nil {
		e.out = map[string]bool{}
	}
	e.paths++
	if e.paths > maxCongruencePaths {
		e.overflow = true
		return
	}
	e.out[strings.Join(seq, " ")] = true
}

func (e *seqEnum) walk(b *Block, onPath map[*Block]bool, seq []string) {
	if e.overflow {
		return
	}
	if e.abort[b.Index] {
		return // error-abort path: tears the machine down, exempt
	}
	if !e.reach[b.Index] {
		e.emit(seq)
		return
	}
	seq = append(seq, e.events[b.Index]...)
	if len(seq) > maxCongruenceEvents {
		e.overflow = true
		return
	}
	onPath[b] = true
	defer delete(onPath, b)
	advanced := false
	for _, s := range b.Succs {
		if onPath[s] {
			continue
		}
		advanced = true
		e.walk(s, onPath, seq)
	}
	for _, s := range b.Back {
		if !onPath[s] {
			advanced = true
			e.walk(s, onPath, seq)
			continue
		}
		// The loop header is already on this path: real execution keeps
		// iterating and eventually leaves through the header's forward
		// exits, so continue there without replaying the header.
		for _, fs := range s.Succs {
			if onPath[fs] {
				continue
			}
			advanced = true
			e.walk(fs, onPath, seq)
		}
	}
	if !advanced {
		e.emit(seq)
	}
}

func sameSeqSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// describeSeqDiff renders a representative sequence present in a but not
// in b (or a's smallest sequence when the sets only differ the other
// way), for the diagnostic message.
func describeSeqDiff(a, b map[string]bool) string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pick := ""
	picked := false
	for _, k := range keys {
		if !b[k] {
			pick, picked = k, true
			break
		}
	}
	if !picked && len(keys) > 0 {
		pick = keys[0]
	}
	if pick == "" {
		return "[no collectives]"
	}
	return fmt.Sprintf("[%s]", pick)
}
