package lint

import (
	"go/ast"
	"go/types"
)

// analyzerSendRecvPairing enforces the third mpproto rule: point-to-point
// peers must be well-formed with respect to the caller's own rank.
//
//   - A Send whose destination may equal the sender's own rank (the rank
//     itself, tracked through local variables by the rank-taint dataflow
//     — rank±1 never trips this) is flagged unless the same function also
//     performs a matching self-Recv on the same tag: an unconsumed
//     self-send is a message that sits in the mailbox forever, and an
//     accidental self-destination usually means a peer arithmetic bug.
//   - Symmetrically, a Recv from the caller's own rank with no matching
//     self-Send in the function blocks forever.
//   - A Send/Recv loop over `c.Size()` whose peer is the loop variable
//     must skip the caller's own rank (the `if r == me { continue }`
//     idiom of the mp collectives); a loop body that never compares the
//     loop variable deadlocks the rank against itself.
var analyzerSendRecvPairing = &Analyzer{
	Name: "send-recv-pairing",
	Doc:  "Send/Recv peers must not silently target the caller's own rank; Size() loops must skip self",
	Run:  runSendRecvPairing,
}

func runSendRecvPairing(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSelfPeers(p, fd)
			checkSizeLoops(p, fd)
		}
		// The manifest cross-check: sending sites must carry payloads the
		// manifest's tag table recorded at the last regeneration (see
		// manifest.go).
		checkManifestTagSites(p, f)
	}
}

// peerUse is one Send/Recv call with the taint of its peer argument at
// that program point.
type peerUse struct {
	call  *ast.CallExpr
	op    *mpOp
	taint uint8
	tag   string // canonical tag expression text, "" when absent
}

// checkSelfPeers flags Sends/Recvs whose peer may be the caller's own
// rank without the matching opposite self-operation on the same tag.
func checkSelfPeers(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	g, flow, rf := solveRankTaint(info, fd)

	var uses []peerUse
	for _, b := range g.Blocks {
		facts := cloneFacts(flow.In[b])
		set := func(obj types.Object, mask uint8) {
			if mask == 0 {
				delete(facts, obj)
			} else {
				facts[obj] = mask
			}
		}
		for _, s := range b.Stmts {
			// Record uses with the facts in force *before* this
			// statement's own assignments land, then step.
			inspectSkippingFuncLits(s, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				op := resolveMPOp(info, call)
				if op == nil || op.peerIdx < 0 || op.peerIdx >= len(call.Args) {
					return
				}
				peer := call.Args[op.peerIdx]
				u := peerUse{call: call, op: op, taint: rf.valueTaint(peer, facts)}
				if op.tagIdx >= 0 && op.tagIdx < len(call.Args) {
					u.tag = types.ExprString(call.Args[op.tagIdx])
				}
				uses = append(uses, u)
			})
			rf.stepStmt(s, facts, set)
		}
	}

	selfOn := func(s side, tag string) bool {
		for _, u := range uses {
			if u.op.sides&s != 0 && u.taint&taintExact != 0 && u.tag == tag {
				return true
			}
		}
		return false
	}
	for _, u := range uses {
		if u.taint&taintExact == 0 {
			continue
		}
		switch {
		case u.op.sides&sideSend != 0 && !selfOn(sideRecv, u.tag):
			p.Reportf(u.call.Pos(),
				"Send destination may equal the sender's own rank with no matching self-Recv on tag %s: the message is never drained", u.tag)
		case u.op.sides&sideRecv != 0 && !selfOn(sideSend, u.tag):
			p.Reportf(u.call.Pos(),
				"Recv from the caller's own rank with no matching self-Send on tag %s: blocks forever", u.tag)
		}
	}
}

func cloneFacts(in taintFacts) taintFacts {
	out := make(taintFacts, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// checkSizeLoops flags Send/Recv loops over c.Size() that never compare
// the loop variable (and so cannot be skipping the caller's own rank).
func checkSizeLoops(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var loopVar types.Object
		switch s := n.(type) {
		case *ast.ForStmt:
			loopVar = sizeLoopVar(info, s)
			body = s.Body
		case *ast.RangeStmt:
			// go1.22 range-over-int form: for r := range c.Size().
			if isSizeCall(info, s.X) && s.Key != nil {
				if id, ok := s.Key.(*ast.Ident); ok {
					loopVar = objOf(info, id)
				}
			}
			body = s.Body
		default:
			return true
		}
		if loopVar == nil {
			return true
		}
		guarded := loopVarCompared(info, body, loopVar)
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			op := resolveMPOp(info, call)
			if op == nil || op.peerIdx < 0 || op.peerIdx >= len(call.Args) {
				return true
			}
			if id, ok := ast.Unparen(call.Args[op.peerIdx]).(*ast.Ident); ok &&
				objOf(info, id) == loopVar && !guarded {
				p.Reportf(call.Pos(),
					"%s loop over c.Size() does not skip the caller's own rank: add the `if r == c.Rank() { continue }` guard", op.name)
			}
			return true
		})
		return true
	})
}

// sizeLoopVar recognizes `for r := 0; r < c.Size(); r++` (and <=) and
// returns r's object, or nil.
func sizeLoopVar(info *types.Info, s *ast.ForStmt) types.Object {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op.String() != "<" && cond.Op.String() != "<=") {
		return nil
	}
	if !isSizeCall(info, cond.Y) {
		return nil
	}
	id, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(info, id)
}

// isSizeCall reports whether e is a Comm.Size() call (possibly with
// trailing arithmetic like Size()-1 stripped off the caller's side).
func isSizeCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != mpPkgPath || fn.Name() != "Size" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// loopVarCompared reports whether body contains any ==/!= comparison
// involving the loop variable — the self-skip guard idiom.
func loopVarCompared(info *types.Info, body *ast.BlockStmt, loopVar types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if id, ok := ast.Unparen(side).(*ast.Ident); ok && objOf(info, id) == loopVar {
				found = true
			}
		}
		return true
	})
	return found
}
