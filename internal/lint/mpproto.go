package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared machinery for the mpproto analyzer family (collective-congruence,
// tag-discipline, send-recv-pairing): recognition of internal/mp protocol
// calls, a module-wide protocol index (per-function collective summaries
// and per-tag send/receive site sets, with call edges followed one level
// deep), and the rank-taint dataflow that decides whether a branch
// condition is derived from the caller's own rank.

const mpPkgPath = "parroute/internal/mp"

// side is a bitmask of message directions a tag flows into.
type side uint8

const (
	sideSend side = 1 << iota
	sideRecv
)

// mpOp describes one recognized protocol operation of internal/mp.
type mpOp struct {
	name string
	// event marks operations every rank must execute congruently (the
	// collectives and Barrier); Send/Recv are point-to-point and are not
	// events.
	event bool
	sides side
	// tagIdx / peerIdx are argument indices into the call, -1 when the
	// operation has no tag (Barrier) or no peer (collectives).
	tagIdx  int
	peerIdx int
}

// mpCollectiveOps are the exported collective helpers of internal/mp, by
// name. Every one of them both sends and receives under its tag on some
// rank, so each call site counts for both directions.
var mpCollectiveOps = map[string]mpOp{
	"Bcast":           {name: "Bcast", event: true, sides: sideSend | sideRecv, tagIdx: 2, peerIdx: -1},
	"Gather":          {name: "Gather", event: true, sides: sideSend | sideRecv, tagIdx: 2, peerIdx: -1},
	"Allgather":       {name: "Allgather", event: true, sides: sideSend | sideRecv, tagIdx: 1, peerIdx: -1},
	"AllreduceInt32s": {name: "AllreduceInt32s", event: true, sides: sideSend | sideRecv, tagIdx: 1, peerIdx: -1},
	"AllreduceInt":    {name: "AllreduceInt", event: true, sides: sideSend | sideRecv, tagIdx: 1, peerIdx: -1},
	"Alltoall":        {name: "Alltoall", event: true, sides: sideSend | sideRecv, tagIdx: 1, peerIdx: -1},
	"Reduce":          {name: "Reduce", event: true, sides: sideSend | sideRecv, tagIdx: 2, peerIdx: -1},
	"Scatter":         {name: "Scatter", event: true, sides: sideSend | sideRecv, tagIdx: 2, peerIdx: -1},
	"Scan":            {name: "Scan", event: true, sides: sideSend | sideRecv, tagIdx: 1, peerIdx: -1},
}

// resolveMPOp classifies call as a protocol operation of internal/mp:
// either a Comm method (Send/Recv/Barrier) or one of the package-level
// collectives. Returns nil for everything else.
func resolveMPOp(info *types.Info, call *ast.CallExpr) *mpOp {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != mpPkgPath {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Send":
			return &mpOp{name: "Send", sides: sideSend, tagIdx: 1, peerIdx: 0}
		case "Recv":
			return &mpOp{name: "Recv", sides: sideRecv, tagIdx: 1, peerIdx: 0}
		case "Barrier":
			return &mpOp{name: "Barrier", event: true, tagIdx: -1, peerIdx: -1}
		}
		return nil
	}
	if op, ok := mpCollectiveOps[fn.Name()]; ok {
		return &op
	}
	return nil
}

// funcProto is the one-level-deep summary of a module function: the
// collective events its body performs directly (in source order, function
// literals excluded — a closure runs at its caller's pleasure, not at this
// program point) and the parameters it forwards into tag positions of
// direct protocol calls.
type funcProto struct {
	events    []string
	tagParams map[int]side
}

// tagSites counts the static send-side and recv-side call sites of one
// named tag constant across the loaded module.
type tagSites struct {
	sends, recvs int
}

// protoIndex is the module-wide protocol view, built once per loaded
// Module and shared by the mpproto analyzers.
type protoIndex struct {
	funcs map[*types.Func]*funcProto
	tags  map[types.Object]*tagSites
}

// protocolIndex builds (memoized) the protocol index for mod.
func (m *Module) protocolIndex() *protoIndex {
	if m.proto != nil {
		return m.proto
	}
	idx := &protoIndex{
		funcs: map[*types.Func]*funcProto{},
		tags:  map[types.Object]*tagSites{},
	}
	// Pass 1: per-function summaries.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				idx.funcs[fn] = summarizeFunc(pkg.Info, fd)
			}
		}
	}
	// Pass 2: tag site sets, using the summaries to follow helper calls
	// one level deep (a named constant handed to a helper's tag parameter
	// counts at the helper's direction).
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op := resolveMPOp(pkg.Info, call); op != nil {
					if op.tagIdx >= 0 && op.tagIdx < len(call.Args) {
						idx.recordTag(pkg.Info, call.Args[op.tagIdx], op.sides)
					}
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil {
					return true
				}
				if fp := idx.funcs[funcOrigin(fn)]; fp != nil {
					for i, s := range fp.tagParams {
						if i < len(call.Args) {
							idx.recordTag(pkg.Info, call.Args[i], s)
						}
					}
				}
				return true
			})
		}
	}
	m.proto = idx
	return idx
}

// recordTag attributes a tag argument site to its named constant, if the
// expression is one.
func (idx *protoIndex) recordTag(info *types.Info, e ast.Expr, s side) {
	obj := namedConstOf(info, e)
	if obj == nil {
		return
	}
	ts := idx.tags[obj]
	if ts == nil {
		ts = &tagSites{}
		idx.tags[obj] = ts
	}
	if s&sideSend != 0 {
		ts.sends++
	}
	if s&sideRecv != 0 {
		ts.recvs++
	}
}

// summarizeFunc computes fd's direct protocol summary.
func summarizeFunc(info *types.Info, fd *ast.FuncDecl) *funcProto {
	fp := &funcProto{tagParams: map[int]side{}}
	params := paramObjects(info, fd)
	inspectSkippingFuncLits(fd.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		op := resolveMPOp(info, call)
		if op == nil {
			return
		}
		if op.event {
			fp.events = append(fp.events, op.name)
		}
		if op.tagIdx >= 0 && op.tagIdx < len(call.Args) {
			if id, ok := ast.Unparen(call.Args[op.tagIdx]).(*ast.Ident); ok {
				if i, isParam := params[objOf(info, id)]; isParam {
					fp.tagParams[i] |= op.sides
				}
			}
		}
	})
	return fp
}

// paramObjects maps fd's parameter objects to their positional index.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// inspectSkippingFuncLits walks node in source order but does not descend
// into function literals.
func inspectSkippingFuncLits(node ast.Node, visit func(ast.Node)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// funcOrigin strips a generic instantiation back to its declared origin,
// so instantiated calls (mp.Reduce[int]) match the summary key.
func funcOrigin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// namedConstOf resolves e to a declared constant object (Ident or
// pkg.Selector), or nil.
func namedConstOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := objOf(info, e).(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := objOf(info, e.Sel).(*types.Const); ok {
			return c
		}
	}
	return nil
}

// ---- rank taint ----

// Taint bits: taintDerived marks a value computed from the caller's own
// rank; taintExact additionally marks a value that IS the rank (so it may
// equal the caller's index, where rank±1 cannot).
const (
	taintDerived uint8 = 1 << iota
	taintExact
)

// taintFacts maps local variable objects to their taint mask.
type taintFacts map[types.Object]uint8

// rankFlow is the Flow client tracking rank taint through local
// assignments.
type rankFlow struct {
	info *types.Info
}

func (rf *rankFlow) Bottom() taintFacts { return taintFacts{} }

func (rf *rankFlow) Join(a, b taintFacts) taintFacts {
	out := make(taintFacts, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func (rf *rankFlow) Equal(a, b taintFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (rf *rankFlow) Transfer(b *Block, in taintFacts) taintFacts {
	out := in
	copied := false
	set := func(obj types.Object, mask uint8) {
		if obj == nil {
			return
		}
		if !copied {
			next := make(taintFacts, len(out)+1)
			for k, v := range out {
				next[k] = v
			}
			out = next
			copied = true
		}
		if mask == 0 {
			delete(out, obj)
		} else {
			out[obj] = mask
		}
	}
	for _, s := range b.Stmts {
		rf.stepStmt(s, out, set)
	}
	return out
}

// stepStmt applies one statement's effect on the facts via set.
func (rf *rankFlow) stepStmt(s ast.Stmt, facts taintFacts, set func(types.Object, uint8)) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					set(objOf(rf.info, id), rf.valueTaint(s.Rhs[i], facts))
				}
			}
			return
		}
		// Multi-value call or range binding: function results are opaque
		// (interprocedural value taint is out of scope), so the targets
		// are killed.
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				set(objOf(rf.info, id), 0)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			obj := objOf(rf.info, id)
			if facts[obj] != 0 {
				set(obj, taintDerived)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				mask := uint8(0)
				if i < len(vs.Values) {
					mask = rf.valueTaint(vs.Values[i], facts)
				}
				set(rf.info.Defs[name], mask)
			}
		}
	}
}

// valueTaint evaluates the taint of an assigned value: exact for a bare
// Rank() call or a copy of an exact variable, derived for non-call
// expressions that mention rank state (rank±1, blocks[rank], rank == 0).
// Results of ordinary function calls are opaque — interprocedural value
// taint is out of scope — so passing rank into a function does not taint
// what comes back.
func (rf *rankFlow) valueTaint(e ast.Expr, facts taintFacts) uint8 {
	e = ast.Unparen(e)
	if isRankCall(rf.info, e) {
		return taintExact | taintDerived
	}
	switch e := e.(type) {
	case *ast.Ident:
		return facts[objOf(rf.info, e)]
	case *ast.CallExpr:
		return 0
	}
	if rf.mentionsRank(e, facts) {
		return taintDerived
	}
	return 0
}

// mentionsRank reports whether e contains a Rank() call or a tainted
// identifier anywhere (including inside function literals: capturing rank
// state taints the closure's observations too, and for condition checks
// over-approximation is the safe direction).
func (rf *rankFlow) mentionsRank(e ast.Expr, facts taintFacts) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isRankCall(rf.info, n) {
				found = true
				return false
			}
		case *ast.Ident:
			if facts[objOf(rf.info, n)] != 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isRankCall reports whether e is a call of the Comm.Rank method of
// internal/mp (on the interface or any engine implementation).
func isRankCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != mpPkgPath || fn.Name() != "Rank" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// solveRankTaint builds the CFG of fd and runs the rank-taint flow,
// returning both for the analyzer to consume.
func solveRankTaint(info *types.Info, fd *ast.FuncDecl) (*CFG, *FlowResult[taintFacts], *rankFlow) {
	g := BuildCFG(fd.Body)
	rf := &rankFlow{info: info}
	return g, SolveForward[taintFacts](g, rf), rf
}

// isTagName reports whether a constant follows the repository's protocol
// tag naming convention (the tagFakePins… family).
func isTagName(name string) bool {
	return strings.HasPrefix(name, "tag") && len(name) > len("tag")
}
