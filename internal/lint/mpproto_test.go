package lint_test

import (
	"strings"
	"testing"

	"parroute/internal/lint"
)

// ruleCounts tallies diagnostics by rule name.
func ruleCounts(diags []lint.Diagnostic) map[string]int {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Rule]++
	}
	return counts
}

// TestSeededRankGatedBarrierCaught is the static half of the seeded
// regression from the issue: a Barrier moved inside a c.Rank()==0 branch
// (and the same bug hidden behind a collective helper) must be flagged by
// collective-congruence. TestVirtualRankGatedBarrierDeadlocks in
// internal/mp is the dynamic half.
func TestSeededRankGatedBarrierCaught(t *testing.T) {
	diags := loadFixture(t, "testdata/src/seeded")
	counts := ruleCounts(diags)
	if counts["collective-congruence"] != 2 {
		t.Errorf("collective-congruence fired %d times, want 2 (direct barrier + helper gather)", counts["collective-congruence"])
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Msg, "rank-derived condition") {
			t.Errorf("unexpected message: %s", d)
		}
	}
}

// TestOrphanTagsReported covers the module-wide half of tag-discipline:
// sent-never-received, received-never-sent, and declared-never-used tags
// each produce exactly one diagnostic at the constant's declaration.
func TestOrphanTagsReported(t *testing.T) {
	diags := loadFixture(t, "testdata/src/orphan")
	if got := ruleCounts(diags)["tag-discipline"]; got != 3 || len(diags) != 3 {
		t.Fatalf("got %d diagnostics (%d tag-discipline), want exactly 3 tag-discipline: %v",
			len(diags), got, diags)
	}
	wantSubstrings := map[string]string{
		"tagOnlySent": "never received",
		"tagOnlyRecv": "never sent",
		"tagUnused":   "never used",
	}
	for tag, substr := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Msg, tag) && strings.Contains(d.Msg, substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic for %s containing %q in %v", tag, substr, diags)
		}
	}
}

// TestSelfSendPairing covers the self-peer half of send-recv-pairing: a
// self-send with a matching self-Recv on the same tag (Echo) passes, an
// unmatched one (Lost) is flagged.
func TestSelfSendPairing(t *testing.T) {
	diags := loadFixture(t, "testdata/src/selfsend")
	if got := ruleCounts(diags)["send-recv-pairing"]; got != 1 || len(diags) != 1 {
		t.Fatalf("got %d diagnostics (%d send-recv-pairing), want exactly 1: %v",
			len(diags), got, diags)
	}
	d := diags[0]
	if !strings.Contains(d.Msg, "own rank") || !strings.Contains(d.Msg, "tagLoop") {
		t.Errorf("unexpected message: %s", d)
	}
}
