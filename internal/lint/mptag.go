package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// mpPackagePath is the one package allowed to declare negative tag
// constants: the engines own the reserved range (barrier rounds, chaos
// bookkeeping) and reject user traffic on it at runtime.
const mpPackagePath = "parroute/internal/mp"

// analyzerTagDiscipline enforces the second mpproto rule, in three parts:
//
//   - Site discipline: every tag argument of Send/Recv/collective calls
//     must be a named constant (the tagFakePins… family in
//     internal/parallel/messages.go) or a pass-through variable — never a
//     raw literal or constant arithmetic (tagWires+1000), which silently
//     mints an unregistered protocol stream.
//   - Orphan tags: across the loaded module, every named tag constant
//     must have both a non-empty static send-site set and a non-empty
//     recv-site set (collectives count as both). A tag only ever sent is
//     a message nobody drains; a tag only ever received is a Recv that
//     blocks forever; a tag never used at all is dead protocol surface.
//     Calls are followed one level deep through module helpers whose
//     parameters flow into tag positions.
//   - Reserved range: user tag constants must be non-negative. The
//     negative tag space belongs to the mp engines (tagBarrier and
//     friends); a user constant straying into it collides with engine
//     traffic, and the transport rejects it at runtime anyway.
//
// Orphans and reserved-range collisions are reported at the constant's
// declaration, by the package that declares it, so each fires exactly
// once per module run.
var analyzerTagDiscipline = &Analyzer{
	Name: "tag-discipline",
	Doc:  "message tags must be named constants with both send and receive sites module-wide",
	Run:  runTagDiscipline,
}

func runTagDiscipline(p *Pass) {
	idx := p.Mod.protocolIndex()
	man := p.Mod.manifestFor(p.Pkg)
	for _, f := range p.Pkg.Files {
		checkTagSites(p, f)
		checkOrphanTags(p, idx, f)
		// The manifest cross-check: in packages covered by a protocol
		// manifest, every declared tag constant must appear in its tag
		// table with the same value (see manifest.go).
		if man != nil && man.Covers(p.Pkg.Path) {
			checkManifestTags(p, man, f)
		}
	}
}

// checkTagSites flags literal or computed-constant tag arguments.
func checkTagSites(p *Pass, f *ast.File) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op := resolveMPOp(info, call)
		if op == nil || op.tagIdx < 0 || op.tagIdx >= len(call.Args) {
			return true
		}
		arg := call.Args[op.tagIdx]
		if namedConstOf(info, arg) != nil {
			return true // a declared tag constant
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			p.Reportf(arg.Pos(),
				"tag of %s is a raw constant expression: use a named tag constant so the protocol stream is auditable",
				op.name)
		}
		return true
	})
}

// checkOrphanTags reports tag constants declared in this file whose
// module-wide send or receive site set is empty.
func checkOrphanTags(p *Pass, idx *protoIndex, f *ast.File) {
	info := p.Pkg.Info
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj, ok := info.Defs[name].(*types.Const)
				if !ok {
					continue
				}
				if isTagName(name.Name) && isIntegerConst(obj) &&
					constant.Sign(obj.Val()) < 0 && p.Pkg.Path != mpPackagePath {
					p.Reportf(name.Pos(),
						"tag %s = %s collides with the engine-reserved negative tag range: user tags must be >= 0",
						name.Name, obj.Val())
				}
				sites := idx.tags[obj]
				switch {
				case sites == nil:
					if isTagName(name.Name) && isIntegerConst(obj) {
						p.Reportf(name.Pos(),
							"tag %s is declared but never used in any send or receive", name.Name)
					}
				case sites.sends == 0:
					p.Reportf(name.Pos(),
						"tag %s is received (%d site(s)) but never sent: those Recvs block forever", name.Name, sites.recvs)
				case sites.recvs == 0:
					p.Reportf(name.Pos(),
						"tag %s is sent (%d site(s)) but never received: those messages are never drained", name.Name, sites.sends)
				}
			}
		}
	}
}

// isIntegerConst reports whether obj has (possibly untyped) integer type.
func isIntegerConst(obj *types.Const) bool {
	basic, ok := obj.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
