package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// analyzerNondeterminism enforces the repository's reproducibility policy:
//
//   - math/rand (and v2) must never be imported — all randomness flows
//     through internal/rng so streams are seeded and splittable.
//   - time.Now, time.Since, and time.Until are reserved for measurement
//     infrastructure (Config.TimeAllowed*); a wall-clock read anywhere
//     else can leak into
//     a routing decision and break run-to-run reproducibility.
//   - inside the deterministic packages, iterating a map while appending
//     to an outer slice publishes Go's randomized map order into routing
//     state, unless the slice is sorted afterwards in the same statement
//     list; drawing from an rng.RNG inside a map iteration likewise makes
//     stream consumption order depend on map layout.
var analyzerNondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid math/rand, stray wall-clock reads, and map-iteration-order leaks",
	Run:  runNondeterminism,
}

func runNondeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		rel := p.relFile(f)
		checkForbiddenImports(p, f)
		checkWallClock(p, f, rel)
		if p.Cfg.deterministicScope(p.Pkg.Path) {
			checkMapOrder(p, f)
		}
	}
}

func checkForbiddenImports(p *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			p.Reportf(imp.Pos(), "import of %s: use parroute/internal/rng so streams are seeded and splittable", path)
		}
	}
}

func checkWallClock(p *Pass, f *ast.File, rel string) {
	if p.Cfg.timeAllowed(p.Pkg.Path, rel) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkgQualifier(p.Pkg.Info, sel.X) != "time" {
			return true
		}
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" || sel.Sel.Name == "Until" {
			p.Reportf(call.Pos(), "time.%s outside the timing allowlist: wall-clock reads must not feed routing decisions", sel.Sel.Name)
		}
		return true
	})
}

// checkMapOrder flags map-range loops that append to a slice declared
// outside the loop without a subsequent sort, and rng draws inside a
// map-range body.
func checkMapOrder(p *Pass, f *ast.File) {
	info := p.Pkg.Info
	stmtLists(f, func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok {
				continue
			}
			if _, ok := info.TypeOf(rs.X).Underlying().(*types.Map); !ok {
				continue
			}
			checkMapRangeBody(p, rs, stmts[i+1:])
		}
	})
}

func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	info := p.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				target := appendTarget(info, rhs)
				if target == nil || declaredWithin(target, rs.Body) {
					continue
				}
				if sortedAfter(info, rest, target) {
					continue
				}
				p.Reportf(rhs.Pos(), "append to %s in map-iteration order without a following sort makes its order nondeterministic", target.Name())
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isRNGPtr(info.TypeOf(sel.X)) {
				p.Reportf(n.Pos(), "rng draw inside map iteration: stream consumption order depends on map layout")
			}
		}
		return true
	})
}

// appendTarget returns the variable v when rhs has the shape
// append(v, ...), and nil otherwise.
func appendTarget(info *types.Info, rhs ast.Expr) types.Object {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if _, ok := info.Uses[fn].(*types.Builtin); !ok || fn.Name != "append" {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := objOf(info, id)
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// sortedAfter reports whether any statement in rest calls into sort or
// slices with target as an argument — the collect-keys-then-sort idiom
// that restores determinism.
func sortedAfter(info *types.Info, rest []ast.Stmt, target types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if q := pkgQualifier(info, sel.X); q != "sort" && q != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && objOf(info, id) == target {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
