package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerPanicInLibrary forbids panic in the internal/... library
// packages: callers of the routing pipeline (cmd binaries, the bench
// harness, future services) must get errors they can handle, not crashes.
// Documented invariant guards — cases the type system cannot express and
// that indicate a bug in this repository rather than bad input — stay
// allowed via an explicit //lint:allow panic-in-library annotation.
var analyzerPanicInLibrary = &Analyzer{
	Name: "panic-in-library",
	Doc:  "forbid panic in internal packages except annotated invariant guards",
	Run:  runPanicInLibrary,
}

func runPanicInLibrary(p *Pass) {
	if !strings.HasPrefix(p.Pkg.Path, "parroute/internal/") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := p.Pkg.Info.Uses[id].(*types.Builtin); !ok {
				return true
			}
			p.Reportf(call.Pos(), "panic in library code: return an error, or document the invariant with //lint:allow")
			return true
		})
	}
}
