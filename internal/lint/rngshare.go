package lint

import (
	"go/ast"
)

// analyzerRNGSharing guards the one concurrency rule of internal/rng: an
// *rng.RNG is a single deterministic stream and is not safe for concurrent
// use. Handing the same stream to a goroutine — by closure capture or as a
// call argument — both races and destroys reproducibility (consumption
// order then depends on scheduling). The fix is always the same: derive an
// independent child stream with Split() and give the goroutine that.
var analyzerRNGSharing = &Analyzer{
	Name: "rng-sharing",
	Doc:  "forbid sharing an *rng.RNG with a goroutine without Split()",
	Run:  runRNGSharing,
}

func runRNGSharing(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, gs)
			return true
		})
	}
}

func checkGoStmt(p *Pass, gs *ast.GoStmt) {
	info := p.Pkg.Info
	// RNGs passed as arguments to the spawned call: only a fresh
	// Split() result may cross the goroutine boundary.
	for _, arg := range gs.Call.Args {
		if !isRNGPtr(info.TypeOf(arg)) {
			continue
		}
		if isSplitCall(p, arg) {
			continue
		}
		p.Reportf(arg.Pos(), "*rng.RNG passed to a goroutine: pass an independent stream from Split() instead")
	}
	// RNGs captured by a goroutine closure: any use of a stream declared
	// outside the literal is sharing, except calling Split() on it.
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	splitRecvs := map[*ast.Ident]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Split" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			splitRecvs[id] = true
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || splitRecvs[id] {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !isRNGPtr(obj.Type()) {
			return true
		}
		if declaredWithin(obj, lit) {
			return true
		}
		p.Reportf(id.Pos(), "goroutine captures *rng.RNG %s: give the goroutine its own stream via %s.Split()", id.Name, id.Name)
		return true
	})
}

// isSplitCall reports whether e has the shape x.Split().
func isSplitCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Split" && isRNGPtr(p.Pkg.Info.TypeOf(sel.X))
}
