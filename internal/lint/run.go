package lint

import (
	"fmt"
	"sort"
	"time"
)

// The suite driver. RunSuite is the full entry point — analyzer
// filtering for bisection, per-analyzer wall time for the CI runtime
// budget — and Run is the everything-on convenience the gate tests use.
//
// This file is on Config.TimeAllowedFiles: the stopwatch below is the one
// place the lint package reads the wall clock, and its readings go to
// operator telemetry only.

// RunOptions tunes one suite execution.
type RunOptions struct {
	// Analyzers restricts the run to the named analyzers. Empty means the
	// full registry. Filtered runs skip the stale-suppression audit:
	// with most rules not executing, their //lint:allow directives would
	// all look unused.
	Analyzers []string
}

// Timing is the accumulated wall time of one analyzer across every
// package of the run.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Run executes every analyzer over every package of mod, applies
// //lint:allow suppressions (including the stale-suppression audit), and
// returns the surviving diagnostics sorted by position.
func Run(mod *Module, cfg *Config) []Diagnostic {
	diags, _, err := RunSuite(mod, cfg, RunOptions{})
	if err != nil {
		// Unreachable: RunOptions{} names no unknown analyzers.
		panic(err) //lint:allow panic-in-library unreachable: the default options name no analyzers, so no unknown-name error
	}
	return diags
}

// RunSuite executes the (optionally filtered) analyzer set over every
// package of mod and returns the surviving diagnostics plus per-analyzer
// timings. Unknown analyzer names are an error.
func RunSuite(mod *Module, cfg *Config, opts RunOptions) ([]Diagnostic, []Timing, error) {
	analyzers := Analyzers()
	if len(opts.Analyzers) > 0 {
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		picked := make([]*Analyzer, 0, len(opts.Analyzers))
		for _, name := range opts.Analyzers {
			a, ok := byName[name]
			if !ok {
				return nil, nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	var raw []Diagnostic
	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		timings[i].Name = a.Name
	}
	for _, pkg := range mod.Pkgs {
		for i, a := range analyzers {
			start := time.Now()
			a.Run(&Pass{Cfg: cfg, Mod: mod, Pkg: pkg, rule: a.Name, out: &raw})
			timings[i].Elapsed += time.Since(start)
		}
	}

	diags := applyAllows(mod, raw, len(opts.Analyzers) == 0)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags, timings, nil
}
