package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerSortOrder guards the determinism audit of PR 4: inside the
// deterministic packages, a sort.Slice comparator that orders by a single
// key leaves equal-key elements in input-dependent order (sort.Slice is
// explicitly unstable), so the routing result can depend on how the slice
// was assembled. Comparators must break ties down to a unique key (an
// index or ID), or use sort.SliceStable when insertion order is itself the
// intended tie-break.
//
// The one exempt shape is the element-as-key comparator s[i] < s[j]: when
// the whole element is the sort key, equal elements are interchangeable
// and instability cannot show.
var analyzerSortOrder = &Analyzer{
	Name: "sort-order",
	Doc:  "flag single-key sort.Slice comparators whose ties make the order nondeterministic",
	Run:  runSortOrder,
}

func runSortOrder(p *Pass) {
	if !p.Cfg.deterministicScope(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Slice" || pkgQualifier(p.Pkg.Info, sel.X) != "sort" {
				return true
			}
			lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			if cmp := singleKeyComparison(lit); cmp != nil && !elementAsKey(p, lit, cmp) {
				p.Reportf(cmp.Pos(), "sort.Slice comparator orders by a single key: equal-key elements land in nondeterministic order; add a tie-break (or sort.SliceStable)")
			}
			return true
		})
	}
}

// singleKeyComparison returns the comparator body's lone `a < b` / `a > b`
// expression when the body is exactly one return of one ordered
// comparison, and nil otherwise. Multi-statement bodies are trusted: the
// extra statements are where tie-breaks live.
func singleKeyComparison(lit *ast.FuncLit) *ast.BinaryExpr {
	if len(lit.Body.List) != 1 {
		return nil
	}
	ret, ok := lit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	bin, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.LSS && bin.Op != token.GTR) {
		return nil
	}
	return bin
}

// elementAsKey reports whether cmp has the shape s[i] < s[j]: the same
// slice indexed once by each comparator parameter, so the whole element is
// the key and equal elements are interchangeable.
func elementAsKey(p *Pass, lit *ast.FuncLit, cmp *ast.BinaryExpr) bool {
	var names []*ast.Ident
	for _, f := range lit.Type.Params.List {
		names = append(names, f.Names...)
	}
	if len(names) != 2 {
		return false
	}
	info := p.Pkg.Info
	a, aIdx, okA := indexedIdent(info, cmp.X)
	b, bIdx, okB := indexedIdent(info, cmp.Y)
	if !okA || !okB || a == nil || a != b {
		return false
	}
	i, j := objOf(info, names[0]), objOf(info, names[1])
	if i == nil || j == nil {
		return false
	}
	return (aIdx == i && bIdx == j) || (aIdx == j && bIdx == i)
}

// indexedIdent decomposes expr as ident[ident], returning the type objects
// of the indexed variable and the index.
func indexedIdent(info *types.Info, expr ast.Expr) (base, index types.Object, ok bool) {
	ix, okE := ast.Unparen(expr).(*ast.IndexExpr)
	if !okE {
		return nil, nil, false
	}
	bid, okB := ast.Unparen(ix.X).(*ast.Ident)
	iid, okI := ast.Unparen(ix.Index).(*ast.Ident)
	if !okB || !okI {
		return nil, nil, false
	}
	return objOf(info, bid), objOf(info, iid), true
}
