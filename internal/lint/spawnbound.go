package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The unbounded-spawn analyzer: a `go` statement inside a loop with no
// visible iteration bound and no admission control spawns an unbounded
// number of goroutines under load — the invariant a service-tier worker
// pool must never violate. A loop is considered bounded when its
// condition is a plain comparison (a counter bound); a `for {}`, a loop
// whose condition is something more dynamic, or a range over a channel is
// treated as unbounded.
//
// An unbounded loop may still spawn if the spawn is admission-controlled
// by a semaphore channel: some channel must carry an acquire operation in
// the loop body outside the go statement and the opposite-direction
// release on the same channel inside the spawned function (either
// polarity — send-then-receive or receive-then-send — is accepted, and
// the release may live in a defer or nested literal). Worker pools that
// spawn a fixed count inside a bounded loop need no annotation at all.

var analyzerUnboundedSpawn = &Analyzer{
	Name: "unbounded-spawn",
	Doc:  "a go statement inside an unbounded loop needs a visible admission bound (semaphore channel or a counter-bounded loop)",
	Run:  runUnboundedSpawn,
}

func runUnboundedSpawn(p *Pass) {
	ix := p.Mod.lifecycleIndex()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkSpawns(p, ix, fd.Body, nil)
		}
	}
}

// spawnLoop is one enclosing loop considered unbounded, with the body the
// semaphore check scans.
type spawnLoop struct {
	body *ast.BlockStmt
	why  string
}

// walkSpawns walks stmts tracking the stack of enclosing unbounded loops.
// The stack resets at function-literal boundaries: a literal runs at its
// caller's pleasure, so a spawn inside it is judged against the literal's
// own loops (and a literal *defined* per iteration that spawns is still
// caught, because the GoStmt is lexically inside the loop).
func walkSpawns(p *Pass, ix *lifeIndex, n ast.Node, stack []spawnLoop) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkSpawns(p, ix, n.Body, nil)
			return false
		case *ast.ForStmt:
			inner := stack
			if why := forUnbounded(n); why != "" {
				inner = append(stack[:len(stack):len(stack)], spawnLoop{body: n.Body, why: why})
			}
			if n.Init != nil {
				walkSpawns(p, ix, n.Init, stack)
			}
			walkSpawns(p, ix, n.Body, inner)
			return false
		case *ast.RangeStmt:
			inner := stack
			if isChanExpr(p.Pkg.Info, n.X) {
				inner = append(stack[:len(stack):len(stack)], spawnLoop{body: n.Body, why: "a range over a channel"})
			}
			walkSpawns(p, ix, n.Body, inner)
			return false
		case *ast.GoStmt:
			if len(stack) == 0 {
				return true
			}
			loop := stack[len(stack)-1]
			if !spawnHasSemaphore(p, ix, loop.body, n) {
				p.Reportf(n.Pos(), "go statement inside %s with no visible spawn bound: acquire a semaphore slot before spawning or use a fixed worker pool", loop.why)
			}
			return true
		}
		return true
	})
}

// forUnbounded classifies a for statement, returning a description when
// the loop has no statically visible iteration bound.
func forUnbounded(s *ast.ForStmt) string {
	if s.Cond == nil {
		return "a for loop with no condition"
	}
	if be, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr); ok {
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
			return ""
		}
	}
	return "a for loop whose condition is not a counter bound"
}

// chanOps collects the channel objects sent on / received from within n.
// Descending into function literals and defers is deliberate here: the
// semaphore release conventionally lives in `defer func() { <-sem }()`.
func chanOps(p *Pass, n ast.Node, skip ast.Node, sends, recvs map[types.Object]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == skip {
			return false
		}
		switch m := m.(type) {
		case *ast.SendStmt:
			if obj := chanObjOf(p.Pkg.Info, m.Chan); obj != nil {
				sends[obj] = true
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				if obj := chanObjOf(p.Pkg.Info, m.X); obj != nil {
					recvs[obj] = true
				}
			}
		}
		return true
	})
}

// spawnHasSemaphore reports whether gs inside loopBody is
// admission-controlled: a channel with an acquire in the loop outside the
// go statement and the opposite operation inside the spawned function.
func spawnHasSemaphore(p *Pass, ix *lifeIndex, loopBody *ast.BlockStmt, gs *ast.GoStmt) bool {
	loopSends := map[types.Object]bool{}
	loopRecvs := map[types.Object]bool{}
	chanOps(p, loopBody, gs, loopSends, loopRecvs)

	bodySends := map[types.Object]bool{}
	bodyRecvs := map[types.Object]bool{}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		chanOps(p, lit.Body, nil, bodySends, bodyRecvs)
	} else if lf := ix.declOf(calleeFunc(p.Pkg.Info, gs.Call)); lf != nil && lf.decl != nil {
		chanOps(p, lf.decl.Body, nil, bodySends, bodyRecvs)
	}

	for obj := range loopSends {
		if bodyRecvs[obj] {
			return true
		}
	}
	for obj := range loopRecvs {
		if bodySends[obj] {
			return true
		}
	}
	return false
}
