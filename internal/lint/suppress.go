package lint

import (
	"path/filepath"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file   string // module-root relative
	line   int
	rule   string
	reason string
	valid  bool
}

// parseAllows extracts every //lint:allow directive from the module's
// loaded files.
func parseAllows(mod *Module) []allowDirective {
	var out []allowDirective
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue // /* */ comments cannot carry directives
					}
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "lint:allow")
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					file := pos.Filename
					if rel, err := filepath.Rel(mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = filepath.ToSlash(rel)
					}
					d := allowDirective{file: file, line: pos.Line}
					fields := strings.Fields(rest)
					if len(fields) >= 2 {
						d.rule = fields[0]
						d.reason = strings.Join(fields[1:], " ")
						d.valid = true
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// applyAllows drops diagnostics covered by a valid //lint:allow on the
// same line or the line directly above, and reports malformed directives
// under the "lint-directive" rule.
func applyAllows(mod *Module, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
		rule string
	}
	allowed := map[key]bool{}
	var out []Diagnostic
	for _, d := range parseAllows(mod) {
		if !d.valid {
			out = append(out, Diagnostic{
				File: d.file, Line: d.line, Col: 1, Rule: "lint-directive",
				Msg: "malformed directive: want //lint:allow <rule> <reason>",
			})
			continue
		}
		allowed[key{d.file, d.line, d.rule}] = true
		allowed[key{d.file, d.line + 1, d.rule}] = true
	}
	for _, d := range diags {
		if allowed[key{d.File, d.Line, d.Rule}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
