package lint

import (
	"fmt"
	"path/filepath"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file   string // module-root relative
	line   int
	rule   string
	reason string
	valid  bool
}

// parseAllows extracts every //lint:allow directive from the module's
// loaded files.
func parseAllows(mod *Module) []allowDirective {
	var out []allowDirective
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue // /* */ comments cannot carry directives
					}
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "lint:allow")
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					file := pos.Filename
					if rel, err := filepath.Rel(mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = filepath.ToSlash(rel)
					}
					d := allowDirective{file: file, line: pos.Line}
					fields := strings.Fields(rest)
					if len(fields) >= 2 {
						d.rule = fields[0]
						d.reason = strings.Join(fields[1:], " ")
						d.valid = true
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// applyAllows drops diagnostics covered by a valid //lint:allow on the
// same line or the line directly above, and reports malformed directives
// under the "lint-directive" rule.
//
// When audit is true (a full-suite run; filtered runs would make every
// unexercised rule's directives look dead), valid directives that
// suppressed nothing are themselves reported under "stale-allow", so the
// suppression inventory cannot rot as analyzers rename or code heals. The
// audit has its own escape hatch — `//lint:allow stale-allow <reason>` on
// or above a deliberately kept directive — and a stale-allow directive
// that excuses nothing is stale in turn.
func applyAllows(mod *Module, diags []Diagnostic, audit bool) []Diagnostic {
	type key struct {
		file string
		line int
		rule string
	}
	all := parseAllows(mod)
	allowed := map[key]*allowDirective{}
	used := map[*allowDirective]bool{}
	var out []Diagnostic
	for i := range all {
		d := &all[i]
		if !d.valid {
			out = append(out, Diagnostic{
				File: d.file, Line: d.line, Col: 1, Rule: "lint-directive",
				Msg: "malformed directive: want //lint:allow <rule> <reason>",
			})
			continue
		}
		allowed[key{d.file, d.line, d.rule}] = d
		allowed[key{d.file, d.line + 1, d.rule}] = d
	}
	for _, d := range diags {
		if a := allowed[key{d.File, d.Line, d.Rule}]; a != nil {
			used[a] = true
			continue
		}
		out = append(out, d)
	}
	if !audit {
		return out
	}
	known := map[string]bool{"lint-directive": true, "stale-allow": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	emitStale := func(d *allowDirective, msg string) {
		// The audit's own suppressions work like every other rule's: a
		// stale-allow directive on the stale directive's line or the line
		// above excuses it (and is thereby used itself).
		if a := allowed[key{d.file, d.line, "stale-allow"}]; a != nil && a != d {
			used[a] = true
			return
		}
		out = append(out, Diagnostic{
			File: d.file, Line: d.line, Col: 1, Rule: "stale-allow", Msg: msg,
		})
	}
	for i := range all {
		d := &all[i]
		if !d.valid || used[d] || d.rule == "stale-allow" {
			continue
		}
		if known[d.rule] {
			emitStale(d, fmt.Sprintf("stale //lint:allow %s: no %s diagnostic here to suppress — delete the directive", d.rule, d.rule))
		} else {
			emitStale(d, fmt.Sprintf("stale //lint:allow %s: unknown rule %q — delete the directive or fix the rule name", d.rule, d.rule))
		}
	}
	for i := range all {
		d := &all[i]
		if d.valid && !used[d] && d.rule == "stale-allow" {
			emitStale(d, "stale //lint:allow stale-allow: it excuses no stale directive — delete it")
		}
	}
	return out
}
