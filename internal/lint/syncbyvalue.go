package lint

import (
	"go/ast"
	"go/types"
)

// analyzerSyncByValue catches copies of sync primitives — the mistake that
// silently forks a mutex or waitgroup so two goroutines no longer
// synchronize on the same state. It flags value receivers on
// lock-containing types, lock-containing parameters and results passed by
// value, and assignments or call arguments that copy an existing
// lock-containing value. Composite literals and address-taking are fine:
// they initialize rather than copy.
var analyzerSyncByValue = &Analyzer{
	Name: "sync-by-value",
	Doc:  "forbid copying sync.Mutex/WaitGroup/Once (and structs containing them)",
	Run:  runSyncByValue,
}

func runSyncByValue(p *Pass) {
	seen := map[types.Type]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldCopies(p, seen, n.Recv, "receiver")
				}
				checkFieldCopies(p, seen, n.Type.Params, "parameter")
				checkFieldCopies(p, seen, n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldCopies(p, seen, n.Type.Params, "parameter")
				checkFieldCopies(p, seen, n.Type.Results, "result")
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					if copiesLockValue(p, seen, rhs) {
						p.Reportf(rhs.Pos(), "assignment copies lock value: %s contains a sync primitive", p.Pkg.Info.TypeOf(rhs))
					}
				}
			case *ast.CallExpr:
				if tv, ok := p.Pkg.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					if copiesLockValue(p, seen, arg) {
						p.Reportf(arg.Pos(), "call argument copies lock value: %s contains a sync primitive", p.Pkg.Info.TypeOf(arg))
					}
				}
			}
			return true
		})
	}
}

// checkFieldCopies flags fields (receivers, params, results) whose
// by-value type contains a lock.
func checkFieldCopies(p *Pass, seen map[types.Type]bool, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := p.Pkg.Info.TypeOf(field.Type)
		if t != nil && containsLock(t, seen) {
			p.Reportf(field.Pos(), "%s passes lock by value: %s contains a sync primitive (use a pointer)", kind, t)
		}
	}
}

// copiesLockValue reports whether e reads an existing lock-containing
// value (so that using it as an assignment source or call argument copies
// the lock).
func copiesLockValue(p *Pass, seen map[types.Type]bool, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false // literals, calls, &x, conversions: no copy of an existing lock
	}
	t := p.Pkg.Info.TypeOf(e)
	return t != nil && containsLock(t, seen)
}

// lockTypes are the sync primitives that must never be copied after first
// use.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether t (passed by value) transitively contains
// one of the sync primitives. seen memoizes and breaks cycles.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if got, ok := seen[t]; ok {
		return got
	}
	seen[t] = false // tentatively, to terminate recursive types
	result := false
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			result = true
		} else {
			result = containsLock(t.Underlying(), seen)
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				result = true
				break
			}
		}
	case *types.Array:
		result = containsLock(t.Elem(), seen)
	}
	seen[t] = result
	return result
}
