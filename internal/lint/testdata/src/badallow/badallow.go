// Package badallow exercises directive validation: the //lint:allow below
// is missing its reason, so it must be reported as malformed and must not
// suppress the panic diagnostic.
package badallow

// Explode should still be flagged: its directive is incomplete.
func Explode() {
	panic("badallow: boom") //lint:allow panic-in-library
}
