// Package callgraph is a synthetic workload for the lifecycle index in
// internal/lint: mutual recursion, method values, function-typed fields,
// deferred call edges, and parameter-channel translation, each isolated
// so the unit tests can pin exactly what the fixpoint propagates.
package callgraph

import (
	"context"
	"sync"
)

// Ping and Pong are mutually recursive; only Pong looks at the ctx, so
// the cancellation signal must travel the cycle to reach Ping.
func Ping(ctx context.Context, n int) {
	if n > 0 {
		Pong(ctx, n-1)
	}
}

// Pong observes the ctx directly and calls back into Ping.
func Pong(ctx context.Context, n int) {
	if ctx.Err() != nil {
		return
	}
	if n > 0 {
		Ping(ctx, n-1)
	}
}

// watcher's drain loops over the struct's channel: a loop, a blocking
// range, and a receive from a field object — all intraprocedural.
type watcher struct {
	ch chan int
}

func (w *watcher) drain() {
	for range w.ch {
	}
}

// Grab hands drain out as a method value without calling it. The index
// records a reference edge; signals cross it, blocking and loops do not.
func (w *watcher) Grab() func() {
	return w.drain
}

// waitDone blocks until the ctx is done. HandOff references it without
// calling it; the ctx signal crosses the reference edge anyway, the
// channel receive does not.
func waitDone(ctx context.Context) {
	<-ctx.Done()
}

// HandOff returns waitDone as a value.
func HandOff() func(context.Context) {
	return waitDone
}

// holder's fn is a function-typed field; Invoke's call through it has no
// statically resolvable callee, so the index records no edge and the
// summary stays empty — spawns of such values are opaque to analyzers.
type holder struct {
	fn func()
}

func (h *holder) Invoke() {
	h.fn()
}

// Blocky receives from its parameter channel; Caller forwards its own
// parameter down, so the receive must translate into Caller's
// recvParams, not vanish into an unmatchable local.
func Blocky(ch chan int) int {
	return <-ch
}

func Caller(ch chan int) int {
	return Blocky(ch)
}

// finish is the join signal one call away; Task reaches it through a
// deferred call, which is still a call edge.
func finish(wg *sync.WaitGroup) {
	wg.Done()
}

func Task(wg *sync.WaitGroup) {
	defer finish(wg)
}
