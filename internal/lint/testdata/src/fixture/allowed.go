package fixture

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	_ "math/rand" //lint:allow nondeterminism fixture: suppressed forbidden import

	"parroute/internal/mp"
	"parroute/internal/rng"
)

// Every pattern below mirrors a violation in fixture.go but carries a
// //lint:allow directive; the golden test asserts none of them fire.

func StampAllowed() int64 {
	return time.Now().UnixNano() //lint:allow nondeterminism fixture: suppressed wall-clock read
}

func KeysAllowed(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k) //lint:allow nondeterminism fixture: suppressed map-order append
	}
	return out
}

func ShareAllowed(ctx context.Context, r *rng.RNG, out chan<- uint64) {
	go func() {
		select {
		case out <- r.Uint64(): //lint:allow rng-sharing fixture: suppressed shared stream
		case <-ctx.Done():
		}
	}()
}

type plainCounter struct {
	mu sync.Mutex
	n  int
}

//lint:allow sync-by-value fixture: suppressed mutex copy
func (c plainCounter) BumpAllowed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func SyncAllowed(c mp.Comm) {
	c.Barrier() //lint:allow unchecked-error fixture: suppressed dropped error
}

func DescribeAllowed(err error) error {
	return fmt.Errorf("routing failed: %v", err) //lint:allow error-wrap fixture: suppressed unwrapped error
}

func MustAllowed(n int) int {
	if n <= 0 {
		panic("fixture: invariant") //lint:allow panic-in-library fixture: suppressed invariant panic
	}
	return n
}

func GateAllowed(c mp.Comm) error {
	if c.Rank() == 0 { //lint:allow collective-congruence fixture: suppressed rank-gated barrier
		return c.Barrier()
	}
	return nil
}

func MintAllowed(c mp.Comm, v any) error {
	return c.Send(1, 99, v) //lint:allow tag-discipline fixture: suppressed raw tag
}

func RankAllowed(ws []weighted) {
	sort.Slice(ws, func(i, j int) bool { return ws[i].W < ws[j].W }) //lint:allow sort-order fixture: suppressed single-key comparator
}

func DrainAllowed(c mp.Comm) error {
	for r := 0; r < c.Size(); r++ {
		if _, err := c.Recv(r, tagFixture); err != nil { //lint:allow send-recv-pairing fixture: suppressed self-recv loop
			return err
		}
	}
	return nil
}

func RefreshAllowed(c mp.Comm, ctx context.Context) error { //lint:allow ctxrule fixture: suppressed trailing ctx
	<-ctx.Done()
	return c.Barrier()
}

type sessionAllowed struct {
	ctx  context.Context //lint:allow ctxrule fixture: suppressed stored ctx
	rank int
}

// RankAllowedSession keeps sessionAllowed used.
func (s *sessionAllowed) RankAllowedSession() int { return s.rank }

// allowedSpec mirrors driftSpec for the suppressed manifest-drift twin.
type allowedSpec struct {
	Net int
	X   int
}

//mp:payload
type allowedBatch []allowedSpec //lint:allow manifest-drift fixture: suppressed payload layout drift

// CarryAllowed keeps allowedBatch used.
func CarryAllowed(b allowedBatch) int { return len(b) }

func SpinAllowed() {
	go func() { //lint:allow goroutine-lifecycle fixture: suppressed leaked spinner
		n := 0
		for {
			n++
		}
	}()
}

type valveAllowed struct {
	mu sync.Mutex
	ch chan int
}

func (v *valveAllowed) TakeAllowed() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return <-v.ch //lint:allow lock-across-blocking fixture: suppressed receive under lock
}

func FloodAllowed(jobs <-chan func()) {
	for job := range jobs {
		go func() { //lint:allow unbounded-spawn fixture: suppressed unbounded fan-out
			job()
		}()
	}
}
