// Package fixture contains exactly one intentional violation per
// parroutecheck analyzer. The golden test in internal/lint asserts each
// rule fires exactly once here; allowed.go holds the same patterns
// suppressed with //lint:allow.
package fixture

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"parroute/internal/mp"
	"parroute/internal/rng"
)

// Stamp violates nondeterminism: a wall-clock read outside the timing
// allowlist.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Share violates rng-sharing: the goroutine captures the parent's stream
// instead of receiving a Split() child. The ctx select is the goroutine's
// termination signal, so goroutine-lifecycle stays quiet and only the
// stream sharing fires.
func Share(ctx context.Context, r *rng.RNG, out chan<- uint64) {
	go func() {
		select {
		case out <- r.Uint64():
		case <-ctx.Done():
		}
	}()
}

// lockedCounter's value receiver violates sync-by-value: every Bump call
// copies mu, so callers never contend on the same lock.
type lockedCounter struct {
	mu sync.Mutex
	n  int
}

func (c lockedCounter) Bump() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// Sync violates unchecked-error: a dropped transport error turns a failed
// barrier into silent corruption.
func Sync(c mp.Comm) {
	c.Barrier()
}

// Describe violates error-wrap: %v flattens the cause.
func Describe(err error) error {
	return fmt.Errorf("routing failed: %v", err)
}

// MustPositive violates panic-in-library.
func MustPositive(n int) int {
	if n <= 0 {
		panic("fixture: n must be positive")
	}
	return n
}

// weighted is sorted by Rank below; W breaks no ties, so equal-W elements
// land in input-dependent order.
type weighted struct {
	W  int
	ID int
}

// Rank violates sort-order: a single-key sort.Slice comparator with no
// tie-break on the unique ID.
func Rank(ws []weighted) {
	sort.Slice(ws, func(i, j int) bool { return ws[i].W < ws[j].W })
}

// RankValues keeps the sort-order check quiet: the whole element is the
// key, so equal elements are interchangeable.
func RankValues(vs []int) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// tagFixture is the one well-formed tag of this package: Feed sends it
// and Drain receives it, so the orphan-tag check stays quiet.
const tagFixture = 7

// Gate violates collective-congruence: only rank 0 reaches the barrier,
// so every other rank deadlocks waiting for it.
func Gate(c mp.Comm) error {
	if c.Rank() == 0 {
		return c.Barrier()
	}
	return nil
}

// Mint violates tag-discipline: the raw literal mints an unregistered
// protocol stream instead of naming a tag constant.
func Mint(c mp.Comm, v any) error {
	return c.Send(1, 99, v)
}

// Drain violates send-recv-pairing: the Recv loop never skips the
// caller's own rank, so the rank blocks waiting on itself.
func Drain(c mp.Comm) error {
	for r := 0; r < c.Size(); r++ {
		if _, err := c.Recv(r, tagFixture); err != nil {
			return err
		}
	}
	return nil
}

// Feed is Drain's sending half; it keeps tagFixture paired module-wide.
func Feed(c mp.Comm, to int, v any) error {
	return c.Send(to, tagFixture, v)
}

// tagStolen violates the reserved-range half of tag-discipline: negative
// tags belong to the mp engines. Steal and Restock pair it module-wide so
// only the reserved-range diagnostic fires, not the orphan check.
const tagStolen = -2

// Restock sends tagStolen; Steal receives it.
func Restock(c mp.Comm, to int, v any) error {
	return c.Send(to, tagStolen, v)
}

// Steal receives tagStolen from the given rank.
func Steal(c mp.Comm, from int) (any, error) {
	return c.Recv(from, tagStolen)
}

// Refresh violates ctxrule: the context is not the first parameter, so
// call sites stop reading uniformly and a grown signature can lose it.
func Refresh(c mp.Comm, ctx context.Context) error {
	<-ctx.Done()
	return c.Barrier()
}

// session violates ctxrule: storing the context decouples cancellation
// from the call it was meant to scope.
type session struct {
	ctx  context.Context
	rank int
}

// Rank returns the stored rank (keeps session used).
func (s *session) Rank() int { return s.rank }

// driftSpec is the element type of driftedBatch. The package-local
// mp_protocol.json still records the layout before X was added.
type driftSpec struct {
	Net int
	X   int
}

// driftedBatch violates manifest-drift: the //mp:payload layout gained a
// field after the last regeneration, so the committed manifest prices
// each element 8 bytes short.
//
//mp:payload
type driftedBatch []driftSpec

// Carry keeps driftedBatch used.
func Carry(b driftedBatch) int { return len(b) }

// Spin violates goroutine-lifecycle: the spawned body loops forever and
// observes no ctx, receives from no closable channel, and joins no
// WaitGroup — nothing can ever terminate it.
func Spin() {
	go func() {
		n := 0
		for {
			n++
		}
	}()
}

// valve's Take violates lock-across-blocking below.
type valve struct {
	mu sync.Mutex
	ch chan int
}

// Take violates lock-across-blocking: the mutex is held (by defer) across
// the blocking receive, so every other Take deadlocks behind a receiver
// that may never be fed.
func (v *valve) Take() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return <-v.ch
}

// Flood violates unbounded-spawn: one goroutine per job from an unbounded
// channel, with no admission bound. The spawned body itself is bounded
// (no loop, nothing blocking), so goroutine-lifecycle stays quiet and
// only the missing spawn bound fires.
func Flood(jobs <-chan func()) {
	for job := range jobs {
		go func() {
			job()
		}()
	}
}

// FloodBounded keeps unbounded-spawn quiet: a semaphore slot is taken
// before each spawn and released by the spawned goroutine, so at most
// cap(sem) workers ever run.
func FloodBounded(jobs <-chan func()) {
	sem := make(chan struct{}, 4)
	for job := range jobs {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			job()
		}()
	}
}
