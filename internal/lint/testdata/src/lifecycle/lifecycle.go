// Package lifecycle exercises the three concurrency analyzers end to
// end: each exported function is either a violation the golden test pins
// or a provably-safe twin that must stay quiet. Unlike the fixture
// package (one violation per rule), this one walks the analyzers through
// their interprocedural reasoning — signals and blocking one call away,
// closed-channel proofs, and spawn bounds.
package lifecycle

import (
	"context"
	"net"
	"sync"
)

// LeakLoop is the classic leak: the spawned body loops forever and
// observes nothing that could stop it.
func LeakLoop() {
	go func() {
		for {
		}
	}()
}

// RecvUnclosed parks a goroutine on a channel nothing in the module ever
// closes: the receive is a permanent block, not a termination signal.
func RecvUnclosed(ch chan int) {
	go func() {
		<-ch
	}()
}

// ClosedQuiet drains a channel this package provably closes, so the
// close is the termination signal and the analyzer stays quiet.
func ClosedQuiet() {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	close(ch)
}

// pump blocks until the ctx is cancelled; it is the helper both SpawnPump
// and the bounded spawners below lean on for their termination signal.
func pump(ctx context.Context) {
	<-ctx.Done()
}

// SpawnPump is quiet interprocedurally: the ctx signal lives one call
// away inside pump, and the summary index carries it to the go statement.
func SpawnPump(ctx context.Context) {
	go pump(ctx)
}

// WgJoined is quiet: the deferred Done is the join signal, so whoever
// Waits on the group owns the goroutine's termination.
func WgJoined(wg *sync.WaitGroup, jobs []func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, job := range jobs {
			job()
		}
	}()
}

// OpaqueSpawn hands an arbitrary function value to go: the analyzer can
// prove nothing about it and says so.
func OpaqueSpawn(fn func()) {
	go fn()
}

// store pairs a mutex with a channel so the lock analyzer's
// interprocedural path has something to chase.
type store struct {
	mu sync.Mutex
	ch chan int
}

// fetch blocks on the store's channel; it carries the blocking summary
// Held depends on.
func (s *store) fetch() int {
	return <-s.ch
}

// Held violates lock-across-blocking one call deep: the deferred unlock
// keeps mu held while fetch parks on the channel.
func (s *store) Held() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetch()
}

// Staged is the quiet twin: the unlock lands before the receive, so the
// lock never spans a blocking operation.
func (s *store) Staged() int {
	s.mu.Lock()
	s.mu.Unlock()
	return <-s.ch
}

// handle serves one connection until the ctx is done. The ctx signal
// keeps goroutine-lifecycle quiet at every spawn of handle, so the
// accept loops below isolate the unbounded-spawn rule.
func handle(ctx context.Context, conn net.Conn) {
	<-ctx.Done()
	_ = conn.Close()
}

// Serve violates unbounded-spawn: one goroutine per accepted connection
// with no admission bound in sight.
func Serve(ctx context.Context, l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go handle(ctx, conn)
	}
}

// ServeBounded is the quiet twin: a semaphore slot is taken before each
// spawn and released by the spawned goroutine, so at most cap(sem)
// handlers ever run.
func ServeBounded(ctx context.Context, l net.Listener) error {
	sem := make(chan struct{}, 8)
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			handle(ctx, conn)
		}()
	}
}

// Counted is quiet: a counter-bounded loop is a visible spawn bound by
// itself.
func Counted(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		go pump(ctx)
	}
}
