// Package manifestdrift exercises every manifest cross-check of the
// mpproto analyzer family against a deliberately stale local
// mp_protocol.json:
//
//   - MissingBatch is marked //mp:payload but absent from the manifest.
//   - BadMsg is marked but has no flat wire layout (map field).
//   - The manifest's GhostBatch entry names a type this package no
//     longer declares.
//   - tagDrift's declared value disagrees with the manifest's record.
//   - tagMissing is declared but absent from the manifest's tag table.
//   - SendPaired sends []int32 under tagPaired, whose manifest entry
//     records a different payload set.
//   - SendUnpriced hands the unmarked UnpricedMsg to Send, so the
//     payload is not priced by any manifest entry.
//   - RegisterCodecs registers DriftBatch under a wire id that disagrees
//     with the manifest's record, and a codec for UnpricedMsg, which the
//     manifest does not record at all.
//
// Every tag is paired with a receive so only the manifest checks fire
// under tag-discipline and send-recv-pairing.
package manifestdrift

import "parroute/internal/mp"

// MissingBatch is priced by no manifest entry: it was marked after the
// last regeneration.
//
//mp:payload
type MissingBatch []int32

// BadMsg cannot be priced flat at all: maps have no canonical wire
// order.
//
//mp:payload
type BadMsg struct {
	M map[int32]int32
}

// UnpricedMsg is sent over mp below but carries no //mp:payload marker,
// so the manifest has no layout for it.
type UnpricedMsg struct {
	N int
}

// DriftBatch matches its manifest layout, but the registration below
// uses a different wire id than the manifest records.
//
//mp:payload
type DriftBatch []int32

// RegisterCodecs stands in for a generated init: the first registration's
// id drifted from the manifest's wireId record, the second registers a
// codec for a type the manifest has never seen.
func RegisterCodecs() {
	mp.RegisterWireCodec(5, DriftBatch(nil), nil, nil)
	mp.RegisterWireCodec(6, UnpricedMsg{}, nil, nil)
}

const (
	// tagDrift's value was bumped after the last regeneration; the
	// manifest still records 12.
	tagDrift = 11
	// tagMissing postdates the manifest entirely.
	tagMissing = 5
	// tagPaired matches the manifest's value, but its recorded payload
	// set does not include []int32.
	tagPaired = 9
)

// SendUnpriced sends a payload type the manifest does not price.
func SendUnpriced(c mp.Comm, to int) error {
	return c.Send(to, tagDrift, UnpricedMsg{N: 1})
}

// SendMissing keeps tagMissing's send-site set non-empty; the `any`
// payload has no static identity, so no payload check fires here.
func SendMissing(c mp.Comm, to int, v any) error {
	return c.Send(to, tagMissing, v)
}

// SendPaired sends a payload outside tagPaired's recorded payload set.
func SendPaired(c mp.Comm, to int) error {
	return c.Send(to, tagPaired, []int32{1, 2, 3})
}

// DrainAll pairs every tag with a receive so the orphan-tag check stays
// quiet.
func DrainAll(c mp.Comm, from int) error {
	if _, err := c.Recv(from, tagDrift); err != nil {
		return err
	}
	if _, err := c.Recv(from, tagMissing); err != nil {
		return err
	}
	_, err := c.Recv(from, tagPaired)
	return err
}

// Keep keeps the marked types referenced.
func Keep(b MissingBatch, m BadMsg, d DriftBatch) int { return len(b) + len(m.M) + len(d) }
