// Package orphan exercises the module-wide half of tag-discipline: every
// named tag constant must have both a send site and a recv site. Each of
// the three constants below violates it a different way.
package orphan

import "parroute/internal/mp"

const (
	tagOnlySent = 10 // sent by Push, never received anywhere
	tagOnlyRecv = 11 // received by Pull, never sent anywhere
	tagUnused   = 12 // declared, never used at all
)

// Push sends tagOnlySent to a fixed peer; no Recv ever drains it.
func Push(c mp.Comm, v any) error {
	return c.Send(1, tagOnlySent, v)
}

// Pull receives tagOnlyRecv; no Send ever produces it, so it blocks
// forever.
func Pull(c mp.Comm) (any, error) {
	return c.Recv(0, tagOnlyRecv)
}
