// Package seeded is the regression fixture for collective-congruence: it
// reproduces the exact bug class the rule exists for — a barrier (or a
// collective helper) moved inside a rank-conditional branch, which
// deadlocks every other rank. TestSeededRankGatedBarrierCaught asserts
// both patterns are caught statically; the internal/mp deadlock tests
// show the same patterns hang dynamically on the virtual engine.
package seeded

import "parroute/internal/mp"

const tagSeed = 30

// Worker reproduces the seeded regression: the result-phase barrier
// moved inside the rank-0 branch, so ranks 1..n-1 never enter it.
func Worker(c mp.Comm) error {
	if c.Rank() == 0 {
		if err := c.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// gatherHalf mirrors the gatherResults helper of internal/parallel: its
// one-level collective summary is [Gather], which the congruence rule
// expands at each call site.
func gatherHalf(c mp.Comm, v any) error {
	_, err := mp.Gather(c, 0, tagSeed, v)
	return err
}

// SkewedGather hides the rank-conditional collective behind a helper
// call: only non-zero ranks enter the gather, so rank 0's Gather peers
// never show up.
func SkewedGather(c mp.Comm, v any) error {
	if c.Rank() != 0 {
		return gatherHalf(c, v)
	}
	return nil
}
