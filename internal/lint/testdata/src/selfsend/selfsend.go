// Package selfsend exercises the self-peer half of send-recv-pairing:
// a Send whose destination is provably the caller's own rank must have a
// matching self-Recv on the same tag in the same function (Echo, legal),
// otherwise the message sits in the mailbox forever (Lost, flagged).
package selfsend

import "parroute/internal/mp"

const (
	tagSelf = 20 // Echo's legal self-send/self-recv pair
	tagLoop = 21 // sent by Lost, drained by Sink
)

// Echo stages a value through the caller's own mailbox: self-send plus
// matching self-Recv on the same tag, which the rule accepts.
func Echo(c mp.Comm, v any) (any, error) {
	me := c.Rank()
	if err := c.Send(me, tagSelf, v); err != nil {
		return nil, err
	}
	return c.Recv(me, tagSelf)
}

// Lost sends to the caller's own rank with no matching self-Recv: the
// rank-taint dataflow proves `me` is exactly Rank() and flags the Send.
func Lost(c mp.Comm, v any) error {
	me := c.Rank()
	return c.Send(me, tagLoop, v)
}

// Sink drains tagLoop from a fixed peer, keeping the tag paired
// module-wide so only the pairing rule fires in this package.
func Sink(c mp.Comm) (any, error) {
	return c.Recv(0, tagLoop)
}
