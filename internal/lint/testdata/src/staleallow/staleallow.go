// Package staleallow exercises the stale-suppression audit: a valid
// //lint:allow that suppresses no diagnostic is itself reported under
// stale-allow, unless a stale-allow escape on the line above keeps it
// deliberately.
package staleallow

// Healed once panicked on the guarded branch; the code was fixed but the
// directive was left behind, so the audit reports the known-rule
// leftover.
func Healed(n int) int {
	if n <= 0 {
		return 0 //lint:allow panic-in-library fixture: code healed, directive left behind
	}
	return n
}

// Renamed carries a directive for a rule name the registry does not
// know, so the audit points at the bad name instead of silently ignoring
// the directive forever.
func Renamed(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x //lint:allow map-iteration fixture: rule renamed away
	}
	return total
}

// Quiet keeps its dead directive on purpose: the stale-allow escape on
// the line above excuses it, so the audit stays silent here.
func Quiet(n int) int {
	if n <= 0 {
		//lint:allow stale-allow fixture: kept across a planned revert
		return 0 //lint:allow panic-in-library fixture: deliberately kept
	}
	return n
}
