package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerUncheckedError flags transport and serialization calls whose
// error result is silently discarded as a bare statement. A dropped
// mp.Send/Recv/collective error turns a failed exchange into a hang or
// corrupted routing state; a dropped encode/decode error ships truncated
// results. Scope is deliberate: calls into internal/mp, encoding/json,
// io, and the module's own JSON (de)serializers. Assigning the error to
// `_` is treated as an explicit, visible decision and is not flagged.
var analyzerUncheckedError = &Analyzer{
	Name: "unchecked-error",
	Doc:  "forbid discarding errors from mp transport and JSON/io calls",
	Run:  runUncheckedError,
}

// uncheckedErrorPkgs are the packages whose error results must always be
// consumed.
var uncheckedErrorPkgs = map[string]bool{
	"parroute/internal/mp": true,
	"encoding/json":        true,
	"io":                   true,
}

// uncheckedErrorNames extends the scope to the module's serializers
// wherever they are defined.
var uncheckedErrorNames = map[string]bool{
	"WriteJSON": true, "ReadJSON": true, "ReadResultJSON": true,
}

func runUncheckedError(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			path := fn.Pkg().Path()
			inScope := uncheckedErrorPkgs[path] ||
				(strings.HasPrefix(path, "parroute") && uncheckedErrorNames[fn.Name()])
			if !inScope {
				return true
			}
			p.Reportf(call.Pos(), "error result of %s.%s is discarded: check it or assign it to _ explicitly", path, fn.Name())
			return true
		})
	}
}
