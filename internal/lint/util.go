package lint

import (
	"go/ast"
	"go/types"
)

// pkgQualifier resolves e as a package qualifier (the "time" in
// time.Now) and returns its imported path, or "" if e is not one.
func pkgQualifier(info *types.Info, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// calleeFunc resolves the called function or method of call, if it is a
// statically known *types.Func (package function, method, or interface
// method). Conversions and builtins return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isRNGPtr reports whether t is *rng.RNG from this module.
func isRNGPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "parroute/internal/rng" && obj.Name() == "RNG"
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// returnsError reports whether sig's last result satisfies error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Implements(res.At(res.Len()-1).Type(), errorType)
}

// objOf resolves the object an identifier uses or defines.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// stmtLists visits every statement list in the file — block bodies and
// switch/select clause bodies — so siblings of a statement can be
// examined.
func stmtLists(f *ast.File, visit func(stmts []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			visit(s.List)
		case *ast.CaseClause:
			visit(s.Body)
		case *ast.CommClause:
			visit(s.Body)
		}
		return true
	})
}
