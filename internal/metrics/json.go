package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"parroute/internal/geom"
)

// jsonResult is the stable on-disk form of a Result. Wires are stored
// flat; durations in nanoseconds.
type jsonResult struct {
	Circuit string `json:"circuit"`
	Algo    string `json:"algo"`
	Procs   int    `json:"procs"`

	Wires           []jsonWire  `json:"wires"`
	ChannelDensity  []int       `json:"channelDensity"`
	TotalTracks     int         `json:"totalTracks"`
	Area            int64       `json:"area"`
	Wirelength      int64       `json:"wirelength"`
	Feedthroughs    int         `json:"feedthroughs"`
	ForcedEdges     int         `json:"forcedEdges"`
	CoreWidth       int         `json:"coreWidth"`
	SwitchableWires int         `json:"switchableWires"`
	SwitchFlips     int         `json:"switchFlips"`
	CoarseFlips     int         `json:"coarseFlips"`
	ElapsedNS       int64       `json:"elapsedNs"`
	Phases          []jsonPhase `json:"phases,omitempty"`
	// Degraded is omitted when false so fault-free and non-degraded chaos
	// runs stay byte-identical. Faults (see Result.Faults) never
	// serialize, for the same reason.
	Degraded bool `json:"degraded,omitempty"`
}

type jsonWire struct {
	Net        int  `json:"net"`
	Channel    int  `json:"ch"`
	Lo         int  `json:"lo"`
	Hi         int  `json:"hi"`
	Switchable bool `json:"sw,omitempty"`
	Row        int  `json:"row,omitempty"`
	AX         int  `json:"ax"`
	ARow       int  `json:"ar"`
	BX         int  `json:"bx"`
	BRow       int  `json:"br"`
}

type jsonPhase struct {
	Name      string        `json:"name"`
	ElapsedNS int64         `json:"elapsedNs"`
	Counters  []jsonCounter `json:"counters,omitempty"`
}

type jsonCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// WriteJSON serializes the result.
func (r *Result) WriteJSON(w io.Writer) error {
	jr := jsonResult{
		Circuit: r.Circuit, Algo: r.Algo, Procs: r.Procs,
		ChannelDensity: r.ChannelDensity, TotalTracks: r.TotalTracks,
		Area: r.Area, Wirelength: r.Wirelength,
		Feedthroughs: r.Feedthroughs, ForcedEdges: r.ForcedEdges,
		CoreWidth: r.CoreWidth, SwitchableWires: r.SwitchableWires,
		SwitchFlips: r.SwitchFlips, CoarseFlips: r.CoarseFlips,
		ElapsedNS: r.Elapsed.Nanoseconds(), Degraded: r.Degraded,
	}
	jr.Wires = make([]jsonWire, len(r.Wires))
	for i := range r.Wires {
		w := &r.Wires[i]
		jr.Wires[i] = jsonWire{
			Net: w.Net, Channel: w.Channel, Lo: w.Span.Lo, Hi: w.Span.Hi,
			Switchable: w.Switchable, Row: w.Row,
			AX: w.AX, ARow: w.ARow, BX: w.BX, BRow: w.BRow,
		}
	}
	for _, p := range r.Phases {
		jp := jsonPhase{Name: p.Name, ElapsedNS: p.Elapsed.Nanoseconds()}
		for _, c := range p.Counters {
			jp.Counters = append(jp.Counters, jsonCounter{Name: c.Name, Value: c.Value})
		}
		jr.Phases = append(jr.Phases, jp)
	}
	return json.NewEncoder(w).Encode(&jr)
}

// ReadResultJSON parses a result written by WriteJSON.
func ReadResultJSON(rd io.Reader) (*Result, error) {
	var jr jsonResult
	if err := json.NewDecoder(rd).Decode(&jr); err != nil {
		return nil, fmt.Errorf("metrics: decoding result: %w", err)
	}
	r := &Result{
		Circuit: jr.Circuit, Algo: jr.Algo, Procs: jr.Procs,
		ChannelDensity: jr.ChannelDensity, TotalTracks: jr.TotalTracks,
		Area: jr.Area, Wirelength: jr.Wirelength,
		Feedthroughs: jr.Feedthroughs, ForcedEdges: jr.ForcedEdges,
		CoreWidth: jr.CoreWidth, SwitchableWires: jr.SwitchableWires,
		SwitchFlips: jr.SwitchFlips, CoarseFlips: jr.CoarseFlips,
		Elapsed: time.Duration(jr.ElapsedNS), Degraded: jr.Degraded,
	}
	r.Wires = make([]Wire, len(jr.Wires))
	for i, jw := range jr.Wires {
		r.Wires[i] = Wire{
			Net: jw.Net, Channel: jw.Channel,
			Span:       geom.Interval{Lo: jw.Lo, Hi: jw.Hi},
			Switchable: jw.Switchable, Row: jw.Row,
			AX: jw.AX, ARow: jw.ARow, BX: jw.BX, BRow: jw.BRow,
		}
	}
	for _, jp := range jr.Phases {
		p := Phase{Name: jp.Name, Elapsed: time.Duration(jp.ElapsedNS)}
		for _, jc := range jp.Counters {
			p.Counters = append(p.Counters, Counter{Name: jc.Name, Value: jc.Value})
		}
		r.Phases = append(r.Phases, p)
	}
	return r, nil
}
