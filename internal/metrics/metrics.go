// Package metrics defines the routing result vocabulary (wires in
// channels) and the quality measures the paper reports: per-channel track
// counts (channel density), their total, and the chip-area model.
package metrics

import (
	"fmt"
	"slices"
	"time"

	"parroute/internal/geom"
)

// Wire is one horizontal run placed in a routing channel. Switchable wires
// (both endpoints electrically equivalent on the opposite cell edge, or
// feedthrough pins) may sit in either channel adjacent to Row; Channel
// records the current choice.
type Wire struct {
	Net     int
	Channel int
	Span    geom.Interval
	// Switchable marks step-5 candidates; Row is the cell row whose two
	// adjacent channels (Row and Row+1) the wire may occupy.
	Switchable bool
	Row        int
	// Endpoint anchors: the (x, row) of the two connection points the
	// wire joins. The detailed channel router derives its vertical
	// constraints from them: an endpoint in the row above the channel is
	// a top-edge contact, one in the row below a bottom-edge contact.
	AX, ARow int
	BX, BRow int
}

// OtherChannel returns the alternative channel of a switchable wire.
// It panics for non-switchable wires.
func (w *Wire) OtherChannel() int {
	if !w.Switchable {
		panic("metrics: OtherChannel on non-switchable wire") //lint:allow panic-in-library documented contract: callers filter on Switchable
	}
	if w.Channel == w.Row {
		return w.Row + 1
	}
	return w.Row
}

// ChannelDensities returns, per channel, the maximum number of wires
// overlapping any x position — the track count a channel router would need
// (without vertical-constraint conflicts), which is the quantity TWGR
// minimizes.
func ChannelDensities(numChannels int, wires []Wire) []int {
	// One flat event slice sorted once replaces the per-channel buckets
	// with their per-channel reflect-based sorts: consecutive same-channel
	// runs of the sorted slice are exactly the old buckets. Events pack
	// into a single int64 key — channel, then x, then open/close in the low
	// bit (0 = close, so closes sort before opens at the same x) — which
	// keeps the sort comparator-free.
	evs := make([]int64, 0, 2*len(wires))
	for i := range wires {
		w := &wires[i]
		if w.Span.Empty() {
			continue
		}
		if w.Channel < 0 || w.Channel >= numChannels {
			// A wire outside the channel range means a router bug, not bad
			// input: every step that produces wires clamps to the circuit's
			// channels.
			panic(fmt.Sprintf("metrics: wire in channel %d of %d", w.Channel, numChannels)) //lint:allow panic-in-library router invariant: wires are produced in range
		}
		if w.Span.Lo < 0 || w.Span.Hi >= 1<<39 {
			// Same class of invariant as the channel check: wire spans live
			// inside the non-negative core extent, which the key packing
			// relies on.
			panic(fmt.Sprintf("metrics: wire span [%d,%d] outside packable range", w.Span.Lo, w.Span.Hi)) //lint:allow panic-in-library router invariant: spans are in-core
		}
		ch := int64(w.Channel) << 41
		evs = append(evs, ch|int64(w.Span.Lo)<<1|1, ch|int64(w.Span.Hi+1)<<1)
	}
	slices.Sort(evs)
	dens := make([]int, numChannels)
	for lo := 0; lo < len(evs); {
		hi := lo
		ch := evs[lo] >> 41
		cur, max := 0, 0
		for hi < len(evs) && evs[hi]>>41 == ch {
			cur += int(evs[hi]&1)*2 - 1 // low bit: 1 = open (+1), 0 = close (-1)
			if cur > max {
				max = cur
			}
			hi++
		}
		dens[ch] = max
		lo = hi
	}
	return dens
}

// TotalTracks sums channel densities — the paper's "track number".
func TotalTracks(densities []int) int {
	t := 0
	for _, d := range densities {
		t += d
	}
	return t
}

// Wirelength sums the horizontal spans of all wires.
func Wirelength(wires []Wire) int64 {
	var wl int64
	for i := range wires {
		wl += int64(wires[i].Span.Len())
	}
	return wl
}

// Area models the chip area the way the paper's quality metric does: core
// width (the widest row, which grows with inserted feedthroughs) times
// total height, where each channel contributes its density in track
// pitches and each row its cell height.
func Area(coreWidth, rows, cellHeight, trackPitch int, densities []int) int64 {
	h := int64(rows) * int64(cellHeight)
	for _, d := range densities {
		h += int64(d) * int64(trackPitch)
	}
	return int64(coreWidth) * h
}

// Result is the outcome of one routing run.
type Result struct {
	Circuit string
	Algo    string
	Procs   int

	Wires           []Wire
	ChannelDensity  []int
	TotalTracks     int
	Area            int64
	Wirelength      int64
	Feedthroughs    int
	ForcedEdges     int // step-4 connections that needed non-adjacent fallback
	CoreWidth       int
	SwitchableWires int
	SwitchFlips     int // step-5 flips actually taken
	CoarseFlips     int // step-2 bend flips actually taken

	Elapsed time.Duration
	Phases  []Phase

	// Degraded marks a run that lost a rank mid-phase and fell back to
	// the serial algorithm; the wires are the serial result.
	Degraded bool
	// Faults tallies injected chaos faults and the recovery work they
	// caused. Deliberately excluded from the JSON form: a chaos run that
	// loses no rank must serialize byte-identically to its fault-free
	// twin, which is the soak tier's core assertion.
	Faults *FaultReport
}

// FaultReport summarizes transport faults observed during a run (chaos
// injection plus real deadline misses).
type FaultReport struct {
	Sends, Drops, Delays, Dups, Reorders     int64
	Retries, Dedups, DeadlineMisses, Crashes int64
}

func (f *FaultReport) String() string {
	return fmt.Sprintf("sends=%d drops=%d delays=%d dups=%d reorders=%d retries=%d dedups=%d deadline-misses=%d crashes=%d",
		f.Sends, f.Drops, f.Delays, f.Dups, f.Reorders, f.Retries, f.Dedups, f.DeadlineMisses, f.Crashes)
}

// Phase records the wall time of one named routing phase, plus any
// stage-scoped counters the pipeline observer collected during it.
type Phase struct {
	Name     string
	Elapsed  time.Duration
	Counters []Counter
}

// Counter is one named stage-scoped tally attached to a Phase.
type Counter struct {
	Name  string
	Value int64
}

// Finalize computes the derived quality numbers from Wires and the
// geometry parameters, filling ChannelDensity, TotalTracks, Wirelength and
// Area in place.
func (r *Result) Finalize(numChannels, rows, cellHeight, trackPitch int) {
	r.ChannelDensity = ChannelDensities(numChannels, r.Wires)
	r.TotalTracks = TotalTracks(r.ChannelDensity)
	r.Wirelength = Wirelength(r.Wires)
	r.Area = Area(r.CoreWidth, rows, cellHeight, trackPitch, r.ChannelDensity)
}

// ScaledTracks returns r's track count relative to a baseline run — the
// paper's "scaled track" quality measure (1.00 means identical quality).
func (r *Result) ScaledTracks(baseline *Result) float64 {
	if baseline.TotalTracks == 0 {
		return 1
	}
	return float64(r.TotalTracks) / float64(baseline.TotalTracks)
}

// ScaledArea returns r's area relative to a baseline run.
func (r *Result) ScaledArea(baseline *Result) float64 {
	if baseline.Area == 0 {
		return 1
	}
	return float64(r.Area) / float64(baseline.Area)
}

// Speedup returns the baseline's elapsed time divided by r's.
func (r *Result) Speedup(baseline *Result) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(baseline.Elapsed) / float64(r.Elapsed)
}

// PhaseTime returns the recorded wall time of a named phase (0 if absent).
func (r *Result) PhaseTime(name string) time.Duration {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Elapsed
		}
	}
	return 0
}
