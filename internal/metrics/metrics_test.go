package metrics

import (
	"bytes"
	"testing"
	"testing/quick"

	"parroute/internal/geom"
	"parroute/internal/rng"
)

func wire(ch, lo, hi int) Wire {
	return Wire{Channel: ch, Span: geom.NewInterval(lo, hi)}
}

func TestChannelDensitiesBasic(t *testing.T) {
	wires := []Wire{
		wire(0, 0, 10),
		wire(0, 5, 15),  // overlaps the first -> density 2
		wire(0, 20, 30), // disjoint
		wire(1, 0, 100),
	}
	d := ChannelDensities(3, wires)
	if d[0] != 2 || d[1] != 1 || d[2] != 0 {
		t.Fatalf("densities = %v", d)
	}
	if TotalTracks(d) != 3 {
		t.Fatalf("total = %d", TotalTracks(d))
	}
}

func TestChannelDensitiesTouchingSpans(t *testing.T) {
	// Closed intervals: [0,10] and [10,20] share x=10 -> density 2 there.
	d := ChannelDensities(1, []Wire{wire(0, 0, 10), wire(0, 10, 20)})
	if d[0] != 2 {
		t.Fatalf("touching spans density = %d, want 2", d[0])
	}
	// [0,10] and [11,20] are disjoint.
	d = ChannelDensities(1, []Wire{wire(0, 0, 10), wire(0, 11, 20)})
	if d[0] != 1 {
		t.Fatalf("adjacent spans density = %d, want 1", d[0])
	}
}

func TestChannelDensitiesIgnoresEmpty(t *testing.T) {
	empty := Wire{Channel: 0, Span: geom.Interval{Lo: 1, Hi: 0}}
	d := ChannelDensities(1, []Wire{empty})
	if d[0] != 0 {
		t.Fatalf("empty wire counted: %v", d)
	}
}

func TestChannelDensitiesPanicsOnBadChannel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range channel should panic")
		}
	}()
	ChannelDensities(1, []Wire{wire(5, 0, 1)})
}

func TestDensityMatchesBruteForce(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(40)
		wires := make([]Wire, n)
		for i := range wires {
			wires[i] = wire(r.Intn(3), r.Intn(50), r.Intn(50))
		}
		d := ChannelDensities(3, wires)
		for ch := 0; ch < 3; ch++ {
			max := 0
			for x := 0; x < 50; x++ {
				cnt := 0
				for _, w := range wires {
					if w.Channel == ch && w.Span.Contains(x) {
						cnt++
					}
				}
				if cnt > max {
					max = cnt
				}
			}
			if d[ch] != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWirelength(t *testing.T) {
	wires := []Wire{wire(0, 0, 9), wire(1, 5, 5)}
	// Closed intervals: [0,9] has 10 points, [5,5] has 1.
	if wl := Wirelength(wires); wl != 11 {
		t.Fatalf("wirelength = %d", wl)
	}
}

func TestArea(t *testing.T) {
	// 2 rows of height 10, densities 3 and 0 and 2, pitch 2, width 100:
	// height = 20 + (3+0+2)*2 = 30 -> area 3000.
	if a := Area(100, 2, 10, 2, []int{3, 0, 2}); a != 3000 {
		t.Fatalf("area = %d", a)
	}
}

func TestOtherChannel(t *testing.T) {
	w := Wire{Channel: 4, Switchable: true, Row: 4}
	if w.OtherChannel() != 5 {
		t.Fatalf("other = %d", w.OtherChannel())
	}
	w.Channel = 5
	if w.OtherChannel() != 4 {
		t.Fatalf("other = %d", w.OtherChannel())
	}
}

func TestOtherChannelPanicsOnFixedWire(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OtherChannel on fixed wire should panic")
		}
	}()
	w := Wire{Channel: 4}
	w.OtherChannel()
}

func TestResultFinalizeAndScaling(t *testing.T) {
	res := &Result{
		CoreWidth: 100,
		Wires:     []Wire{wire(0, 0, 10), wire(1, 0, 50), wire(1, 20, 60)},
	}
	res.Finalize(3, 2, 10, 2)
	if res.TotalTracks != 3 {
		t.Fatalf("tracks = %d", res.TotalTracks)
	}
	if res.Area != int64(100)*(20+6) {
		t.Fatalf("area = %d", res.Area)
	}
	base := &Result{TotalTracks: 2, Area: 1000, Elapsed: 100}
	res.Elapsed = 50
	if got := res.ScaledTracks(base); got != 1.5 {
		t.Fatalf("scaled tracks = %v", got)
	}
	if got := res.Speedup(base); got != 2 {
		t.Fatalf("speedup = %v", got)
	}
	if got := res.ScaledArea(base); got != float64(res.Area)/1000 {
		t.Fatalf("scaled area = %v", got)
	}
	// Division-by-zero safety.
	zero := &Result{}
	if res.ScaledTracks(zero) != 1 || res.ScaledArea(zero) != 1 {
		t.Fatal("zero baseline should scale to 1")
	}
	if (&Result{}).Speedup(base) != 0 {
		t.Fatal("zero elapsed should give zero speedup")
	}
}

func TestPhaseTime(t *testing.T) {
	res := &Result{Phases: []Phase{{Name: "a", Elapsed: 5}, {Name: "b", Elapsed: 7}}}
	if res.PhaseTime("b") != 7 {
		t.Fatal("phase lookup failed")
	}
	if res.PhaseTime("zzz") != 0 {
		t.Fatal("missing phase should be 0")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	r := &Result{
		Circuit: "x", Algo: "hybrid", Procs: 4,
		Wires: []Wire{
			{Net: 1, Channel: 2, Span: geom.NewInterval(3, 9), Switchable: true, Row: 2,
				AX: 3, ARow: 2, BX: 9, BRow: 1},
			{Net: 2, Channel: 0, Span: geom.Interval{Lo: 1, Hi: 0}},
		},
		ChannelDensity: []int{1, 0, 1}, TotalTracks: 2, Area: 500, Wirelength: 7,
		Feedthroughs: 3, ForcedEdges: 0, CoreWidth: 100,
		SwitchableWires: 1, SwitchFlips: 1, CoarseFlips: 2,
		Elapsed: 1234567,
		Phases:  []Phase{{Name: "steiner", Elapsed: 111, Counters: []Counter{{Name: "trees", Value: 9}}}},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Circuit != r.Circuit || got.Algo != r.Algo || got.Procs != r.Procs ||
		got.TotalTracks != r.TotalTracks || got.Area != r.Area ||
		got.Elapsed != r.Elapsed || got.CoreWidth != r.CoreWidth {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Wires) != len(r.Wires) {
		t.Fatalf("wire count %d", len(got.Wires))
	}
	for i := range r.Wires {
		if got.Wires[i] != r.Wires[i] {
			t.Fatalf("wire %d: %+v vs %+v", i, got.Wires[i], r.Wires[i])
		}
	}
	if len(got.Phases) != 1 || got.Phases[0].Name != r.Phases[0].Name ||
		got.Phases[0].Elapsed != r.Phases[0].Elapsed {
		t.Fatalf("phases: %+v", got.Phases)
	}
	if len(got.Phases[0].Counters) != 1 || got.Phases[0].Counters[0] != (Counter{Name: "trees", Value: 9}) {
		t.Fatalf("phase counters: %+v", got.Phases[0].Counters)
	}
}

func TestReadResultJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadResultJSON(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
