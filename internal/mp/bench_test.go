package mp

import (
	"testing"
)

// BenchmarkPingPong measures point-to-point round trips per engine.
func BenchmarkPingPong(b *testing.B) {
	for _, mode := range []Mode{Virtual, Inproc, TCP} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := Config{Procs: 2, Mode: mode}
			_, err := cfg.Run(func(c Comm) error {
				other := 1 - c.Rank()
				for i := 0; i < b.N; i++ {
					if c.Rank() == 0 {
						if err := c.Send(other, 1, i); err != nil {
							return err
						}
						if _, err := c.Recv(other, 1); err != nil {
							return err
						}
					} else {
						if _, err := c.Recv(other, 1); err != nil {
							return err
						}
						if err := c.Send(other, 1, i); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllreduce measures the collective the net-wise algorithm leans
// on, at the payload size of a typical coarse-grid sync.
func BenchmarkAllreduce(b *testing.B) {
	payload := make([]int32, 16384)
	for _, procs := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "p2", 4: "p4", 8: "p8"}[procs], func(b *testing.B) {
			cfg := Config{Procs: procs, Mode: Virtual}
			_, err := cfg.Run(func(c Comm) error {
				for i := 0; i < b.N; i++ {
					if _, err := AllreduceInt32s(c, 1, payload, SumInt32s); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPayloadSize measures the virtual engine's per-message gob
// sizing overhead.
func BenchmarkPayloadSize(b *testing.B) {
	payload := make([]int32, 16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payloadSize(payload)
	}
}
