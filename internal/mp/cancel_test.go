package mp

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestRunContextCancelUnblocksEveryEngine: cancelling the context aborts
// a run whose workers would otherwise spin forever, on every engine, with
// an error wrapping context.Canceled and no leaked goroutines.
func TestRunContextCancelUnblocksEveryEngine(t *testing.T) {
	allModes(t, "cancel", func(t *testing.T, cfg Config) {
		baseline := runtime.NumGoroutine()
		cfg.Procs = 3
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()

		done := make(chan error, 1)
		go func() {
			_, err := cfg.RunContext(ctx, func(c Comm) error {
				for {
					// Endless barrier rounds: the workers make progress
					// forever (no deadlock detector can fire) until the
					// cancellation reaches them mid-collective.
					if err := c.Barrier(); err != nil {
						return err
					}
				}
			})
			done <- err
		}()

		time.Sleep(20 * time.Millisecond) // let the ranks get into the loop
		cancel()

		select {
		case err := <-done:
			if err == nil {
				t.Fatal("cancelled run returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
		case <-time.After(protocolWatchdog):
			t.Fatalf("watchdog: cancellation did not unblock the run within %v", protocolWatchdog)
		}
		requireGoroutinesSettle(t, baseline)
	})
}

// TestRunContextDeadlineExceeded: an expiring deadline surfaces as
// context.DeadlineExceeded through the same abort path.
func TestRunContextDeadlineExceeded(t *testing.T) {
	allModes(t, "deadline", func(t *testing.T, cfg Config) {
		baseline := runtime.NumGoroutine()
		cfg.Procs = 2
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()

		done := make(chan error, 1)
		go func() {
			_, err := cfg.RunContext(ctx, func(c Comm) error {
				for {
					if err := c.Barrier(); err != nil {
						return err
					}
				}
			})
			done <- err
		}()

		select {
		case err := <-done:
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
			}
		case <-time.After(protocolWatchdog):
			t.Fatalf("watchdog: deadline did not unblock the run within %v", protocolWatchdog)
		}
		requireGoroutinesSettle(t, baseline)
	})
}

// TestRunContextPreCancelled: a context cancelled before the run starts
// still aborts promptly — workers may start but cannot outlive the abort.
func TestRunContextPreCancelled(t *testing.T) {
	allModes(t, "pre-cancelled", func(t *testing.T, cfg Config) {
		baseline := runtime.NumGoroutine()
		cfg.Procs = 2
		ctx, cancel := context.WithCancel(context.Background())
		cancel()

		done := make(chan error, 1)
		go func() {
			_, err := cfg.RunContext(ctx, func(c Comm) error {
				for {
					if err := c.Barrier(); err != nil {
						return err
					}
				}
			})
			done <- err
		}()

		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
		case <-time.After(protocolWatchdog):
			t.Fatalf("watchdog: pre-cancelled run did not abort within %v", protocolWatchdog)
		}
		requireGoroutinesSettle(t, baseline)
	})
}

// TestRunBackgroundContextCompletesNormally: Config.Run (Background
// context) is unaffected by the cancellation machinery — the deterministic
// schedule of the virtual engine in particular must not change.
func TestRunBackgroundContextCompletesNormally(t *testing.T) {
	allModes(t, "background", func(t *testing.T, cfg Config) {
		cfg.Procs = 3
		_, err := cfg.Run(func(c Comm) error {
			for i := 0; i < 5; i++ {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("plain run failed: %v", err)
		}
	})
}
