package mp

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"parroute/internal/rng"
)

// Chaos wraps an engine with deterministic fault injection. Faults are
// drawn per directed link from an RNG stream seeded by (plan seed, src,
// dst); because each directed link has exactly one sender, the draw
// sequence is fixed by that rank's program order and the schedule is
// byte-reproducible on every engine, regardless of goroutine interleaving.
//
// The wrapper injects four message faults — drop (the send is retried
// with exponential backoff + jitter until the retry budget runs out),
// delay (the send stalls for the plan's delay), duplication (the message
// is transmitted twice), and reorder (the message is held back and
// released right after the next send on the same link, swapping the
// pair) — plus whole-rank crashes at a fixed send index. Every payload
// travels wrapped in a per-(sender, tag) sequence number; the receiving
// side drops duplicates and re-sorts held-back messages, so the
// application observes exactly the fault-free message sequence whenever
// no rank is lost. That is the delivery guarantee the chaos soak tier
// asserts: at-least-once transmission + dedup = effectively-once.
//
// A ChaosEngine keeps per-run state (event log, counters); run one
// workload per engine value and do not call Run concurrently.

// Plan is a deterministic fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed selects the fault schedule; the same plan and seed reproduce
	// the identical event log.
	Seed uint64
	// Drop, Delay, Dup and Reorder are per-message fault probabilities;
	// each in [0, 1] and their sum must not exceed 1.
	Drop, Delay, Dup, Reorder float64
	// DelayBy is how long a delayed message stalls (default 100µs).
	DelayBy time.Duration
	// Crash maps rank -> 1-based send index at which the rank dies: the
	// rank is torn down just before its Nth application Send and every
	// survivor sees ErrRankLost.
	Crash map[int]int
	// MaxRetries bounds resends of a dropped message (default 12); when
	// the budget runs out Send fails with ErrDeadline.
	MaxRetries int
	// RetryBase and RetryCap shape the exponential backoff between
	// resends (defaults 25µs and 2ms).
	RetryBase, RetryCap time.Duration
}

func (p Plan) withDefaults() Plan {
	if p.DelayBy == 0 {
		p.DelayBy = 100 * time.Microsecond
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 12
	}
	if p.RetryBase == 0 {
		p.RetryBase = 25 * time.Microsecond
	}
	if p.RetryCap == 0 {
		p.RetryCap = 2 * time.Millisecond
	}
	return p
}

func (p Plan) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"delay", p.Delay}, {"dup", p.Dup}, {"reorder", p.Reorder}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("mp: chaos plan: %s probability %v out of [0, 1]", f.name, f.v)
		}
	}
	if sum := p.Drop + p.Delay + p.Dup + p.Reorder; sum > 1 {
		return fmt.Errorf("mp: chaos plan: fault probabilities sum to %v > 1", sum)
	}
	for rank, n := range p.Crash {
		if rank < 0 {
			return fmt.Errorf("mp: chaos plan: crash rank %d is negative", rank)
		}
		if n < 1 {
			return fmt.Errorf("mp: chaos plan: crash index %d for rank %d must be >= 1", n, rank)
		}
	}
	if p.DelayBy < 0 || p.MaxRetries < 0 || p.RetryBase < 0 || p.RetryCap < 0 {
		return fmt.Errorf("mp: chaos plan: negative duration or retry budget")
	}
	return nil
}

// ParsePlan parses the -chaos-plan flag syntax: comma-separated key=value
// pairs with keys drop, delay, dup, reorder (probabilities), delayby,
// backoff, cap (durations), retries (int), and crash=RANK@N (repeatable).
// Example: "drop=0.05,delay=0.10,crash=1@25". The empty string is the
// empty plan. The seed is set separately (it is a flag of its own).
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, fmt.Errorf("mp: chaos plan: %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			p.Drop, err = strconv.ParseFloat(val, 64)
		case "delay":
			p.Delay, err = strconv.ParseFloat(val, 64)
		case "dup":
			p.Dup, err = strconv.ParseFloat(val, 64)
		case "reorder":
			p.Reorder, err = strconv.ParseFloat(val, 64)
		case "delayby":
			p.DelayBy, err = time.ParseDuration(val)
		case "backoff":
			p.RetryBase, err = time.ParseDuration(val)
		case "cap":
			p.RetryCap, err = time.ParseDuration(val)
		case "retries":
			p.MaxRetries, err = strconv.Atoi(val)
		case "crash":
			rankStr, nStr, ok := strings.Cut(val, "@")
			if !ok {
				return Plan{}, fmt.Errorf("mp: chaos plan: crash wants RANK@N, got %q", val)
			}
			var rank, n int
			if rank, err = strconv.Atoi(rankStr); err == nil {
				n, err = strconv.Atoi(nStr)
			}
			if err == nil {
				if p.Crash == nil {
					p.Crash = map[int]int{}
				}
				p.Crash[rank] = n
			}
		default:
			return Plan{}, fmt.Errorf("mp: chaos plan: unknown key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("mp: chaos plan: bad value for %s: %w", key, err)
		}
	}
	return p, p.validate()
}

// String renders the plan in ParsePlan syntax (seed excluded, defaults
// omitted).
func (p Plan) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if p.Drop > 0 {
		add("drop", strconv.FormatFloat(p.Drop, 'g', -1, 64))
	}
	if p.Delay > 0 {
		add("delay", strconv.FormatFloat(p.Delay, 'g', -1, 64))
	}
	if p.Dup > 0 {
		add("dup", strconv.FormatFloat(p.Dup, 'g', -1, 64))
	}
	if p.Reorder > 0 {
		add("reorder", strconv.FormatFloat(p.Reorder, 'g', -1, 64))
	}
	if p.DelayBy != 0 {
		add("delayby", p.DelayBy.String())
	}
	ranks := make([]int, 0, len(p.Crash))
	for r := range p.Crash {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		add("crash", fmt.Sprintf("%d@%d", r, p.Crash[r]))
	}
	if p.MaxRetries != 0 {
		add("retries", strconv.Itoa(p.MaxRetries))
	}
	if p.RetryBase != 0 {
		add("backoff", p.RetryBase.String())
	}
	if p.RetryCap != 0 {
		add("cap", p.RetryCap.String())
	}
	return strings.Join(parts, ",")
}

// FaultCounters tallies injected faults and recovery work. Safe for
// concurrent use; shared between the chaos wrapper and the transports
// (deadline misses).
type FaultCounters struct {
	Sends, Drops, Delays, Dups, Reorders     atomic.Int64
	Retries, Dedups, DeadlineMisses, Crashes atomic.Int64
}

// Snapshot returns a plain-integer copy for reporting.
func (c *FaultCounters) Snapshot() FaultSnapshot {
	return FaultSnapshot{
		Sends:          c.Sends.Load(),
		Drops:          c.Drops.Load(),
		Delays:         c.Delays.Load(),
		Dups:           c.Dups.Load(),
		Reorders:       c.Reorders.Load(),
		Retries:        c.Retries.Load(),
		Dedups:         c.Dedups.Load(),
		DeadlineMisses: c.DeadlineMisses.Load(),
		Crashes:        c.Crashes.Load(),
	}
}

// FaultSnapshot is a point-in-time copy of FaultCounters.
type FaultSnapshot struct {
	Sends, Drops, Delays, Dups, Reorders     int64
	Retries, Dedups, DeadlineMisses, Crashes int64
}

// Injected reports the number of faults the plan actually injected.
func (s FaultSnapshot) Injected() int64 {
	return s.Drops + s.Delays + s.Dups + s.Reorders + s.Crashes
}

func (s FaultSnapshot) String() string {
	return fmt.Sprintf("sends=%d drops=%d delays=%d dups=%d reorders=%d retries=%d dedups=%d deadline-misses=%d crashes=%d",
		s.Sends, s.Drops, s.Delays, s.Dups, s.Reorders, s.Retries, s.Dedups, s.DeadlineMisses, s.Crashes)
}

// chaosMsg is the wire wrapper carrying the per-(sender, tag) sequence
// number that makes delivery idempotent. Its codec, flat pricing
// (8-byte Seq plus the wrapped payload's own flat price — so chaos runs
// cost what the application message costs, not a gob re-encode), and
// registration are generated into mpwire_gen.go.
//
//mp:payload
type chaosMsg struct {
	Seq uint64
	V   any
}

// ChaosEngine injects a Plan's faults into an inner engine. Build one
// with Chaos (or Config.Engine with Config.Chaos set), run a workload,
// then read Snapshot and EventLog.
type ChaosEngine struct {
	inner    Engine
	plan     Plan
	counters FaultCounters

	procs      int
	links      []*chaosLink // [src*procs+dst]
	crashNotes []string     // one slot per rank, written only by that rank
}

// Chaos wraps inner with the plan's deterministic fault schedule.
func Chaos(inner Engine, plan Plan) *ChaosEngine {
	return &ChaosEngine{inner: inner, plan: plan}
}

// Counters exposes the live counter set (also the deadline-miss sink for
// transports built by Config.Engine).
func (e *ChaosEngine) Counters() *FaultCounters { return &e.counters }

// Snapshot returns the current fault tallies.
func (e *ChaosEngine) Snapshot() FaultSnapshot { return e.counters.Snapshot() }

// chaosLink is the injector state of one directed link. The rng, seq,
// stash and sendLog fields are touched only by the source rank; recvLog
// only by the destination rank — so no lock is needed.
type chaosLink struct {
	src, dst int
	rng      *rng.RNG
	seq      map[int]uint64 // next sequence number per tag (sender side)
	stash    *heldMsg       // reordered message awaiting release
	sendLog  []string
	recvLog  []string
}

type heldMsg struct {
	tag int
	msg chaosMsg
}

// Run executes fn under fault injection. Per-run state is reset, so the
// same engine value must not run twice concurrently. Cancellation is the
// inner engine's: ctx passes straight through.
func (e *ChaosEngine) Run(ctx context.Context, procs int, fn func(Comm) error) (time.Duration, error) {
	plan := e.plan.withDefaults()
	if err := plan.validate(); err != nil {
		return 0, err
	}
	e.procs = procs
	e.links = make([]*chaosLink, procs*procs)
	e.crashNotes = make([]string, procs)
	for src := 0; src < procs; src++ {
		for dst := 0; dst < procs; dst++ {
			// One independent stream per directed link, derived from the
			// plan seed with a splitmix-style odd-constant mix.
			seed := plan.Seed + uint64(src*procs+dst+1)*0x9e3779b97f4a7c15
			e.links[src*procs+dst] = &chaosLink{
				src: src, dst: dst,
				rng: rng.New(seed),
				seq: map[int]uint64{},
			}
		}
	}
	return e.inner.Run(ctx, procs, func(inner Comm) error {
		cc := &cComm{e: e, plan: plan, inner: inner, rank: inner.Rank(), streams: map[streamKey]*recvStream{}}
		err := fn(cc)
		if err == nil && !cc.crashed {
			// Release any message still held for reordering so a peer
			// blocked on it is not stranded by our exit.
			err = cc.flushAll()
		}
		return err
	})
}

// EventLog returns the fault schedule the last run actually executed, as
// one line per injector event grouped by directed link. Send-side lines
// are appended in the sender's program order and receive-side lines in
// the receiver's, so for a fixed plan and seed the log is byte-identical
// across runs and engines (for crash-free plans; with crashes, on the
// deterministic virtual engine).
func (e *ChaosEngine) EventLog() []string {
	var out []string
	for _, l := range e.links {
		out = append(out, l.sendLog...)
		out = append(out, l.recvLog...)
	}
	for _, note := range e.crashNotes {
		if note != "" {
			out = append(out, note)
		}
	}
	return out
}

type streamKey struct{ src, tag int }

// recvStream restores the fault-free delivery order of one (sender, tag)
// stream: next is the sequence number the application expects; held holds
// messages that arrived early.
type recvStream struct {
	next uint64
	held map[uint64]any
}

// cComm is the per-rank chaos communicator.
type cComm struct {
	e       *ChaosEngine
	plan    Plan
	inner   Comm
	rank    int
	sent    int // application Send calls, for crash indexing
	crashed bool
	streams map[streamKey]*recvStream
}

func (c *cComm) Rank() int { return c.rank }
func (c *cComm) Size() int { return c.inner.Size() }

func (c *cComm) link(to int) *chaosLink { return c.e.links[c.rank*c.e.procs+to] }

func (c *cComm) rankLostErr() error {
	return fmt.Errorf("mp: chaos: rank %d crashed by plan: %w", c.rank, ErrRankLost)
}

type faultKind int

const (
	faultDeliver faultKind = iota
	faultDrop
	faultDelay
	faultDup
	faultReorder
)

func (k faultKind) String() string {
	switch k {
	case faultDrop:
		return "drop"
	case faultDelay:
		return "delay"
	case faultDup:
		return "dup"
	case faultReorder:
		return "reorder"
	}
	return "deliver"
}

func (l *chaosLink) draw(p Plan) faultKind {
	u := l.rng.Float64()
	switch {
	case u < p.Drop:
		return faultDrop
	case u < p.Drop+p.Delay:
		return faultDelay
	case u < p.Drop+p.Delay+p.Dup:
		return faultDup
	case u < p.Drop+p.Delay+p.Dup+p.Reorder:
		return faultReorder
	default:
		return faultDeliver
	}
}

func (c *cComm) Send(to, tag int, v any) error {
	if c.crashed {
		return c.rankLostErr()
	}
	if tag < 0 {
		return fmt.Errorf("mp: chaos: tag %d is in the reserved engine range; user tags must be >= 0", tag)
	}
	if to < 0 || to >= c.inner.Size() {
		return c.inner.Send(to, tag, v) // standard out-of-range error
	}
	c.sent++
	if n, ok := c.plan.Crash[c.rank]; ok && c.sent >= n {
		return c.crash()
	}
	// Flush messages held back on other links first: a reorder may only
	// swap consecutive sends on the same link, never delay a message past
	// one of our operations elsewhere (which could deadlock the protocol).
	if err := c.flushExcept(to); err != nil {
		return err
	}
	l := c.link(to)
	seq := l.seq[tag]
	l.seq[tag] = seq + 1
	msg := chaosMsg{Seq: seq, V: v}
	c.e.counters.Sends.Add(1)

	for attempt := 0; ; attempt++ {
		kind := l.draw(c.plan)
		l.sendLog = append(l.sendLog, fmt.Sprintf("send %d->%d tag=%d seq=%d attempt=%d %s", c.rank, to, tag, seq, attempt, kind))
		switch kind {
		case faultDrop:
			c.e.counters.Drops.Add(1)
			if attempt >= c.plan.MaxRetries {
				return fmt.Errorf("mp: chaos: send %d->%d tag %d seq %d: dropped %d times, retry budget exhausted: %w",
					c.rank, to, tag, seq, attempt+1, ErrDeadline)
			}
			c.e.counters.Retries.Add(1)
			idle(backoff(l.rng, c.plan.RetryBase, c.plan.RetryCap, attempt))
			continue
		case faultDelay:
			c.e.counters.Delays.Add(1)
			idle(c.plan.DelayBy)
			return c.deliver(l, to, tag, msg)
		case faultDup:
			c.e.counters.Dups.Add(1)
			if err := c.deliver(l, to, tag, msg); err != nil {
				return err
			}
			return c.inner.Send(to, tag, msg) // the duplicate copy
		case faultReorder:
			c.e.counters.Reorders.Add(1)
			if l.stash == nil {
				l.stash = &heldMsg{tag: tag, msg: msg}
				return nil
			}
			// A message is already held: delivering the new one first and
			// then releasing the old is itself the reorder.
			return c.deliver(l, to, tag, msg)
		default:
			return c.deliver(l, to, tag, msg)
		}
	}
}

// deliver transmits msg and then releases any message held back on the
// same link, completing a reorder as a swap of adjacent sends.
func (c *cComm) deliver(l *chaosLink, to, tag int, msg chaosMsg) error {
	if err := c.inner.Send(to, tag, msg); err != nil {
		return err
	}
	return c.flushLink(l, to)
}

// flushLink releases the link's held-back message, if any.
func (c *cComm) flushLink(l *chaosLink, to int) error {
	if l.stash == nil {
		return nil
	}
	h := l.stash
	l.stash = nil
	l.sendLog = append(l.sendLog, fmt.Sprintf("send %d->%d tag=%d seq=%d release", c.rank, to, h.tag, h.msg.Seq))
	return c.inner.Send(to, h.tag, h.msg)
}

func (c *cComm) flushExcept(to int) error {
	for dst := 0; dst < c.e.procs; dst++ {
		if dst == to {
			continue
		}
		if err := c.flushLink(c.link(dst), dst); err != nil {
			return err
		}
	}
	return nil
}

func (c *cComm) flushAll() error {
	return c.flushExcept(-1)
}

func (c *cComm) Recv(from, tag int) (any, error) {
	if c.crashed {
		return nil, c.rankLostErr()
	}
	if tag < 0 {
		return nil, fmt.Errorf("mp: chaos: tag %d is in the reserved engine range; user tags must be >= 0", tag)
	}
	if from < 0 || from >= c.inner.Size() {
		return c.inner.Recv(from, tag) // standard out-of-range error
	}
	if err := c.flushAll(); err != nil {
		return nil, err
	}
	l := c.e.links[from*c.e.procs+c.rank]
	st := c.streams[streamKey{from, tag}]
	if st == nil {
		st = &recvStream{held: map[uint64]any{}}
		c.streams[streamKey{from, tag}] = st
	}
	for {
		if v, ok := st.held[st.next]; ok {
			delete(st.held, st.next)
			l.recvLog = append(l.recvLog, fmt.Sprintf("recv %d<-%d tag=%d seq=%d from-hold", c.rank, from, tag, st.next))
			st.next++
			return v, nil
		}
		raw, err := c.inner.Recv(from, tag)
		if err != nil {
			return nil, err
		}
		m, ok := raw.(chaosMsg)
		if !ok {
			return nil, fmt.Errorf("mp: chaos: message from rank %d tag %d arrived unwrapped as %T", from, tag, raw)
		}
		switch {
		case m.Seq < st.next:
			// A retry or duplicate of something already delivered.
			c.e.counters.Dedups.Add(1)
			l.recvLog = append(l.recvLog, fmt.Sprintf("recv %d<-%d tag=%d seq=%d dedup", c.rank, from, tag, m.Seq))
		case m.Seq > st.next:
			// Arrived early (its predecessor was reordered); hold it.
			st.held[m.Seq] = m.V
			l.recvLog = append(l.recvLog, fmt.Sprintf("recv %d<-%d tag=%d seq=%d hold", c.rank, from, tag, m.Seq))
		default:
			l.recvLog = append(l.recvLog, fmt.Sprintf("recv %d<-%d tag=%d seq=%d deliver", c.rank, from, tag, m.Seq))
			st.next++
			return m.V, nil
		}
	}
}

func (c *cComm) Barrier() error {
	if c.crashed {
		return c.rankLostErr()
	}
	if err := c.flushAll(); err != nil {
		return err
	}
	return c.inner.Barrier()
}

// crash kills this rank per the plan: the inner transport is told to tear
// the rank down (TCP closes its sockets so peers detect the loss), and
// every further operation fails with ErrRankLost.
func (c *cComm) crash() error {
	c.crashed = true
	c.e.counters.Crashes.Add(1)
	c.e.crashNotes[c.rank] = fmt.Sprintf("crash rank=%d at-send=%d", c.rank, c.sent)
	if k, ok := c.inner.(interface{ injectCrash() }); ok {
		k.injectCrash()
	}
	return c.rankLostErr()
}
