package mp

// Unit tests for the chaos fault-injection engine: plan parsing, backoff
// shaping, transparent delivery under every fault class on every engine,
// deterministic event logs, and retry-budget exhaustion. Crash plans and
// deadline behavior are exercised in crash_test.go.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"parroute/internal/rng"
)

// fastPlan keeps injected waiting times tiny so heavy-fault tests stay
// fast under -race.
func fastPlan(p Plan) Plan {
	p.DelayBy = time.Microsecond
	p.RetryBase = time.Microsecond
	p.RetryCap = 10 * time.Microsecond
	return p
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("drop=0.05,delay=0.10,dup=0.02,reorder=0.01,delayby=50us,retries=3,backoff=10us,cap=1ms,crash=1@25,crash=3@7")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Drop: 0.05, Delay: 0.10, Dup: 0.02, Reorder: 0.01,
		DelayBy: 50 * time.Microsecond, MaxRetries: 3,
		RetryBase: 10 * time.Microsecond, RetryCap: time.Millisecond,
		Crash: map[int]int{1: 25, 3: 7},
	}
	if p.Drop != want.Drop || p.Delay != want.Delay || p.Dup != want.Dup || p.Reorder != want.Reorder ||
		p.DelayBy != want.DelayBy || p.MaxRetries != want.MaxRetries ||
		p.RetryBase != want.RetryBase || p.RetryCap != want.RetryCap ||
		len(p.Crash) != 2 || p.Crash[1] != 25 || p.Crash[3] != 7 {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	// String renders ParsePlan syntax; round-trip must reproduce the plan.
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("round-trip of %q: %v", p.String(), err)
	}
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", p) {
		t.Fatalf("round-trip %+v != %+v", back, p)
	}

	if p, err := ParsePlan("  "); err != nil || p.String() != "" {
		t.Fatalf("blank plan: got %+v, %v", p, err)
	}
	for _, bad := range []string{
		"drop", "drop=x", "bogus=1", "drop=1.5", "drop=0.7,delay=0.7",
		"crash=1", "crash=a@2", "crash=1@0", "crash=-1@5", "retries=-2",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestBackoffBoundedAndDeterministic(t *testing.T) {
	base, cap := 10*time.Microsecond, 80*time.Microsecond
	a, b := rng.New(9), rng.New(9)
	for attempt := 0; attempt < 8; attempt++ {
		d := backoff(a, base, cap, attempt)
		// Exponential with equal jitter: [ceil/2, ceil] where ceil caps out.
		ceil := base << attempt
		if ceil > cap {
			ceil = cap
		}
		if d < ceil/2 || d > ceil {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, ceil/2, ceil)
		}
		if d2 := backoff(b, base, cap, attempt); d2 != d {
			t.Errorf("attempt %d: same rng state gave %v then %v", attempt, d, d2)
		}
	}
	if d := backoff(rng.New(1), 0, cap, 3); d != 0 {
		t.Errorf("zero base: got %v, want 0", d)
	}
}

// tortureBody exchanges rounds numbered messages between every rank pair
// on two tags and fails if any stream arrives out of order or corrupted —
// the effectively-once delivery guarantee, checked from inside the run.
func tortureBody(rounds int) func(Comm) error {
	return func(c Comm) error {
		const tagA, tagB = 5, 6
		for i := 0; i < rounds; i++ {
			for r := 0; r < c.Size(); r++ {
				if r == c.Rank() {
					continue
				}
				if err := c.Send(r, tagA, c.Rank()*1000+i); err != nil {
					return err
				}
				if err := c.Send(r, tagB, c.Rank()*1000000+i); err != nil {
					return err
				}
			}
		}
		for r := 0; r < c.Size(); r++ {
			if r == c.Rank() {
				continue
			}
			for i := 0; i < rounds; i++ {
				got, err := c.Recv(r, tagA)
				if err != nil {
					return err
				}
				if got != r*1000+i {
					return fmt.Errorf("tagA from %d message %d: got %v", r, i, got)
				}
				got, err = c.Recv(r, tagB)
				if err != nil {
					return err
				}
				if got != r*1000000+i {
					return fmt.Errorf("tagB from %d message %d: got %v", r, i, got)
				}
			}
		}
		return c.Barrier()
	}
}

func TestChaosTransparentDelivery(t *testing.T) {
	plan := fastPlan(Plan{Seed: 11, Drop: 0.15, Delay: 0.10, Dup: 0.15, Reorder: 0.15})
	allModes(t, "torture", func(t *testing.T, cfg Config) {
		cfg.Procs = 3
		cfg.Chaos = &plan
		eng, err := cfg.Engine()
		if err != nil {
			t.Fatal(err)
		}
		ce := eng.(*ChaosEngine)
		if _, err := ce.Run(context.Background(), cfg.Procs, tortureBody(20)); err != nil {
			t.Fatal(err)
		}
		s := ce.Snapshot()
		// 240 sends at these rates make a zero count in any class
		// statistically impossible; all fault paths must have fired.
		if s.Sends == 0 || s.Drops == 0 || s.Delays == 0 || s.Dups == 0 ||
			s.Reorders == 0 || s.Retries == 0 || s.Dedups == 0 {
			t.Errorf("fault classes missing from run: %v", s)
		}
		if s.Crashes != 0 || s.DeadlineMisses != 0 {
			t.Errorf("unplanned faults: %v", s)
		}
	})
}

func TestChaosZeroPlanIsTransparent(t *testing.T) {
	plan := Plan{Seed: 1}
	allModes(t, "zero-plan", func(t *testing.T, cfg Config) {
		cfg.Procs = 3
		cfg.Chaos = &plan
		eng, err := cfg.Engine()
		if err != nil {
			t.Fatal(err)
		}
		ce := eng.(*ChaosEngine)
		if _, err := ce.Run(context.Background(), cfg.Procs, tortureBody(5)); err != nil {
			t.Fatal(err)
		}
		if s := ce.Snapshot(); s.Injected() != 0 || s.Dedups != 0 {
			t.Errorf("zero plan injected faults: %v", s)
		}
	})
}

// TestChaosEventLogReproducible is the byte-reproducibility contract: the
// same plan and seed yield the identical event log on every engine, run
// after run, because fault decisions depend only on each sender's program
// order — never on scheduling.
func TestChaosEventLogReproducible(t *testing.T) {
	run := func(t *testing.T, cfg Config, seed uint64) string {
		plan := fastPlan(Plan{Seed: seed, Drop: 0.15, Delay: 0.05, Dup: 0.15, Reorder: 0.15})
		cfg.Chaos = &plan
		eng, err := cfg.Engine()
		if err != nil {
			t.Fatal(err)
		}
		ce := eng.(*ChaosEngine)
		if _, err := ce.Run(context.Background(), cfg.Procs, tortureBody(12)); err != nil {
			t.Fatal(err)
		}
		return strings.Join(ce.EventLog(), "\n")
	}
	var logs []string
	allModes(t, "event-log", func(t *testing.T, cfg Config) {
		cfg.Procs = 3
		first := run(t, cfg, 42)
		if first == "" {
			t.Fatal("empty event log from a faulty run")
		}
		if again := run(t, cfg, 42); again != first {
			t.Fatal("same seed, same engine: event logs differ")
		}
		if other := run(t, cfg, 43); other == first {
			t.Fatal("different seed reproduced the identical event log")
		}
		logs = append(logs, first)
	})
	for i := 1; i < len(logs); i++ {
		if logs[i] != logs[0] {
			t.Errorf("engine %d produced a different event log than engine 0 for the same plan", i)
		}
	}
}

func TestChaosRetryBudgetExhausted(t *testing.T) {
	plan := fastPlan(Plan{Seed: 3, Drop: 1.0})
	plan.MaxRetries = 4
	cfg := Config{Procs: 2, Mode: Virtual, Chaos: &plan}
	eng, err := cfg.Engine()
	if err != nil {
		t.Fatal(err)
	}
	ce := eng.(*ChaosEngine)
	_, err = ce.Run(context.Background(), cfg.Procs, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, 99)
		}
		_, err := c.Recv(0, 1)
		return err
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("drop=1: want ErrDeadline, got %v", err)
	}
	s := ce.Snapshot()
	if want := int64(plan.MaxRetries + 1); s.Drops != want || s.Retries != int64(plan.MaxRetries) {
		t.Errorf("drops=%d retries=%d, want %d and %d", s.Drops, s.Retries, want, plan.MaxRetries)
	}
}

func TestChaosReservedTagRejected(t *testing.T) {
	plan := Plan{Seed: 1}
	cfg := Config{Procs: 2, Mode: Virtual, Chaos: &plan}
	_, err := cfg.Run(func(c Comm) error {
		if err := c.Send((c.Rank()+1)%2, -7, 0); err != nil {
			return err
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("negative user tag accepted under chaos: %v", err)
	}
}

// TestChaosCollectivesSurviveFaults runs the collective suite the routing
// algorithms actually use through a faulty wrapper.
func TestChaosCollectivesSurviveFaults(t *testing.T) {
	plan := fastPlan(Plan{Seed: 77, Drop: 0.10, Delay: 0.05, Dup: 0.10, Reorder: 0.10})
	allModes(t, "collectives", func(t *testing.T, cfg Config) {
		cfg.Procs = 4
		cfg.Chaos = &plan
		_, err := cfg.Run(func(c Comm) error {
			sum, err := AllreduceInt(c, 3, c.Rank()+1, SumInt)
			if err != nil {
				return err
			}
			if sum != 10 {
				return fmt.Errorf("allreduce sum %d, want 10", sum)
			}
			vs := make([]any, c.Size())
			for i := range vs {
				vs[i] = c.Rank()*10 + i
			}
			got, err := Alltoall(c, 4, vs)
			if err != nil {
				return err
			}
			for r, raw := range got {
				if raw != r*10+c.Rank() {
					return fmt.Errorf("alltoall from %d: got %v", r, raw)
				}
			}
			red, err := AllreduceInt32s(c, 5, []int32{int32(c.Rank()), 1}, SumInt32s)
			if err != nil {
				return err
			}
			if red[0] != 6 || red[1] != 4 {
				return fmt.Errorf("allreduce32: got %v", red)
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
