package mp

import "fmt"

// Collective operations, built generically on Comm point-to-point
// primitives so every engine (and its cost accounting) gets them for free.
// All ranks of a communicator must call a collective together, with the
// same root and tag; tags keep concurrent protocol phases apart.

// Bcast distributes root's value v to every rank and returns it; the value
// passed by non-root ranks is ignored.
func Bcast(c Comm, root, tag int, v any) (any, error) {
	if c.Rank() == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, v); err != nil {
				return nil, fmt.Errorf("mp: bcast to rank %d: %w", r, err)
			}
		}
		return v, nil
	}
	got, err := c.Recv(root, tag)
	if err != nil {
		return nil, fmt.Errorf("mp: bcast from root %d: %w", root, err)
	}
	return got, nil
}

// Gather collects one value per rank at root. On root it returns a slice
// indexed by rank (root's own contribution included); elsewhere nil.
func Gather(c Comm, root, tag int, v any) ([]any, error) {
	if c.Rank() != root {
		if err := c.Send(root, tag, v); err != nil {
			return nil, fmt.Errorf("mp: gather to root %d: %w", root, err)
		}
		return nil, nil
	}
	out := make([]any, c.Size())
	out[root] = v
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		got, err := c.Recv(r, tag)
		if err != nil {
			return nil, fmt.Errorf("mp: gather from rank %d: %w", r, err)
		}
		out[r] = got
	}
	return out, nil
}

// Allgather collects one value per rank at every rank.
func Allgather(c Comm, tag int, v any) ([]any, error) {
	vs, err := Gather(c, 0, tag, v)
	if err != nil {
		return nil, err
	}
	got, err := Bcast(c, 0, tag, vs)
	if err != nil {
		return nil, err
	}
	out, ok := got.([]any)
	if !ok {
		return nil, fmt.Errorf("mp: allgather received %T, want []any", got)
	}
	return out, nil
}

// AllreduceInt32s element-wise combines equal-length int32 slices from all
// ranks with op and returns the combined slice on every rank. The input
// slice is not modified.
func AllreduceInt32s(c Comm, tag int, v []int32, op func(a, b int32) int32) ([]int32, error) {
	vs, err := Gather(c, 0, tag, v)
	if err != nil {
		return nil, err
	}
	var acc []int32
	if c.Rank() == 0 {
		acc = append([]int32(nil), v...)
		for r := 1; r < c.Size(); r++ {
			other, ok := vs[r].([]int32)
			if !ok {
				return nil, fmt.Errorf("mp: allreduce received %T from rank %d, want []int32", vs[r], r)
			}
			if len(other) != len(acc) {
				return nil, fmt.Errorf("mp: allreduce length mismatch: rank %d sent %d, want %d",
					r, len(other), len(acc))
			}
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	got, err := Bcast(c, 0, tag, acc)
	if err != nil {
		return nil, err
	}
	out, ok := got.([]int32)
	if !ok {
		return nil, fmt.Errorf("mp: allreduce received %T, want []int32", got)
	}
	// Each rank gets a private copy: on the in-memory engines Bcast
	// delivers the same slice object to every rank, and callers are free
	// to mutate their reduction result.
	return append([]int32(nil), out...), nil
}

// SumInt32s is the addition operator for AllreduceInt32s.
func SumInt32s(a, b int32) int32 { return a + b }

// Alltoall sends vs[r] to each rank r and returns the values addressed to
// the caller, indexed by source rank. len(vs) must equal Size.
func Alltoall(c Comm, tag int, vs []any) ([]any, error) {
	if len(vs) != c.Size() {
		return nil, fmt.Errorf("mp: alltoall with %d values for %d ranks", len(vs), c.Size())
	}
	me := c.Rank()
	for r := 0; r < c.Size(); r++ {
		if r == me {
			continue
		}
		if err := c.Send(r, tag, vs[r]); err != nil {
			return nil, fmt.Errorf("mp: alltoall to rank %d: %w", r, err)
		}
	}
	out := make([]any, c.Size())
	out[me] = vs[me]
	for r := 0; r < c.Size(); r++ {
		if r == me {
			continue
		}
		got, err := c.Recv(r, tag)
		if err != nil {
			return nil, fmt.Errorf("mp: alltoall from rank %d: %w", r, err)
		}
		out[r] = got
	}
	return out, nil
}

// AllreduceInt combines one int per rank with op on every rank.
func AllreduceInt(c Comm, tag int, v int, op func(a, b int) int) (int, error) {
	vs, err := Allgather(c, tag, v)
	if err != nil {
		return 0, err
	}
	acc, ok := vs[0].(int)
	if !ok {
		return 0, fmt.Errorf("mp: allreduce received %T, want int", vs[0])
	}
	for _, raw := range vs[1:] {
		x, ok := raw.(int)
		if !ok {
			return 0, fmt.Errorf("mp: allreduce received %T, want int", raw)
		}
		acc = op(acc, x)
	}
	return acc, nil
}

// MaxInt and SumInt are common AllreduceInt operators.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SumInt adds two ints; see AllreduceInt.
func SumInt(a, b int) int { return a + b }

// Reduce combines one value per rank at root with op (left-to-right in
// rank order). Non-root ranks receive the zero value of the result.
func Reduce[T any](c Comm, root, tag int, v T, op func(a, b T) T) (T, error) {
	var zero T
	vs, err := Gather(c, root, tag, v)
	if err != nil {
		return zero, err
	}
	if c.Rank() != root {
		return zero, nil
	}
	acc, ok := vs[0].(T)
	if !ok {
		return zero, fmt.Errorf("mp: reduce received %T", vs[0])
	}
	for _, raw := range vs[1:] {
		x, ok := raw.(T)
		if !ok {
			return zero, fmt.Errorf("mp: reduce received %T", raw)
		}
		acc = op(acc, x)
	}
	return acc, nil
}

// Scatter distributes vs[r] from root to each rank r and returns the
// caller's element. len(vs) must equal Size on the root; it is ignored
// elsewhere.
func Scatter(c Comm, root, tag int, vs []any) (any, error) {
	if c.Rank() == root {
		if len(vs) != c.Size() {
			return nil, fmt.Errorf("mp: scatter with %d values for %d ranks", len(vs), c.Size())
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, vs[r]); err != nil {
				return nil, fmt.Errorf("mp: scatter to rank %d: %w", r, err)
			}
		}
		return vs[root], nil
	}
	got, err := c.Recv(root, tag)
	if err != nil {
		return nil, fmt.Errorf("mp: scatter from root %d: %w", root, err)
	}
	return got, nil
}

// Scan computes the inclusive prefix combination in rank order: rank r
// receives op(v_0, ..., v_r). Linear chain, O(P) latency.
func Scan[T any](c Comm, tag int, v T, op func(a, b T) T) (T, error) {
	var zero T
	acc := v
	if c.Rank() > 0 {
		raw, err := c.Recv(c.Rank()-1, tag)
		if err != nil {
			return zero, fmt.Errorf("mp: scan from rank %d: %w", c.Rank()-1, err)
		}
		prev, ok := raw.(T)
		if !ok {
			return zero, fmt.Errorf("mp: scan received %T", raw)
		}
		acc = op(prev, v)
	}
	if c.Rank()+1 < c.Size() {
		if err := c.Send(c.Rank()+1, tag, acc); err != nil {
			return zero, fmt.Errorf("mp: scan to rank %d: %w", c.Rank()+1, err)
		}
	}
	return acc, nil
}
