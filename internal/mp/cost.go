package mp

import (
	"encoding/gob"
	"time"
)

// CostModel parameterizes the Virtual engine's communication timing. A
// point-to-point message of s bytes sent at sender time t becomes available
// to the receiver at t + Latency + s/Bandwidth; the sender's clock advances
// by SendOverhead, the receiver's by RecvOverhead on pickup. A barrier
// costs BarrierBase + Procs*BarrierPerProc on top of the global maximum.
type CostModel struct {
	Name           string
	SendOverhead   time.Duration
	RecvOverhead   time.Duration
	Latency        time.Duration
	BytesPerSecond float64
	BarrierBase    time.Duration
	BarrierPerProc time.Duration
}

// transfer returns the in-flight delay of a message of the given size.
func (m *CostModel) transfer(bytes int) time.Duration {
	d := m.Latency
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(bytes) / m.BytesPerSecond * float64(time.Second))
	}
	return d
}

// SMP models the paper's 8-processor Sun SparcCenter 1000: MPI over shared
// memory, so messages are memcpy-fast but not free.
func SMP() CostModel {
	return CostModel{
		Name:           "smp",
		SendOverhead:   4 * time.Microsecond,
		RecvOverhead:   4 * time.Microsecond,
		Latency:        20 * time.Microsecond,
		BytesPerSecond: 50e6,
		BarrierBase:    10 * time.Microsecond,
		BarrierPerProc: 4 * time.Microsecond,
	}
}

// DMP models the paper's Intel Paragon: a distributed-memory machine with
// much higher per-message latency and lower sustained bandwidth (NX/MPI on
// the Paragon mesh), but more nodes.
func DMP() CostModel {
	return CostModel{
		Name:           "dmp",
		SendOverhead:   40 * time.Microsecond,
		RecvOverhead:   40 * time.Microsecond,
		Latency:        150 * time.Microsecond,
		BytesPerSecond: 15e6,
		BarrierBase:    100 * time.Microsecond,
		BarrierPerProc: 40 * time.Microsecond,
	}
}

// Sizer lets a payload type report its simulated wire size directly, so
// the Virtual engine prices a message without gob-encoding it. The size
// only feeds the cost model's transfer time — it never alters program
// behaviour — so a cheap flat-encoding estimate (fixed bytes per field,
// see frameOverhead) is the right fidelity. Protocols that synchronize
// every round should implement it on their batch payload types; the
// per-message encoder setup plus reflective encode otherwise dominates
// simulated communication.
type Sizer interface {
	// WireSize returns the payload's approximate encoded size in bytes,
	// excluding the fixed message framing.
	WireSize() int
}

// frameOverhead approximates the fixed per-message framing of the wire
// format (type headers plus the wireEnv fields) for payloads priced
// without encoding. It is charged exactly once per message.
const frameOverhead = 16

// elemHeader is the per-element framing of a value nested inside a
// message — the flat codec's u32 type id plus u32 length prefix. The
// flat batch encodings (mp.Sizer) price their elements with no header at
// all, so []any, the one heterogeneous container the collectives relay,
// is the only place it applies; see elemSize.
const elemHeader = 8

// countingWriter counts bytes written through it.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// payloadSize measures the wire size of one message: the fixed message
// framing plus the payload's body size.
func payloadSize(v any) int {
	return frameOverhead + elemSize(v)
}

// elemSize measures a payload's body: directly for Sizer implementations
// and the builtin payload shapes the collectives send (flat fixed-width
// pricing), by gob-encoding into a counter otherwise. A []any — the
// heterogeneous per-rank container the collectives relay (e.g.
// Allgather's Bcast stage) — prices each element at its body size plus
// the flat codec's per-element header, never at a full per-message frame:
// the elements travel inside one message, consistent with the flat batch
// encodings. Unencodable payloads (which would also fail on the TCP
// engine) are priced at a fixed small size rather than failing — the
// Virtual engine should never alter program behaviour.
func elemSize(v any) int {
	switch p := v.(type) {
	case Sizer:
		return p.WireSize()
	case []int32:
		return 4 * len(p)
	case int:
		return 8
	case bool:
		return 1
	case []any:
		n := 0
		for _, e := range p {
			n += elemHeader + elemSize(e)
		}
		return n
	}
	var cw countingWriter
	enc := gob.NewEncoder(&cw)
	if err := enc.Encode(&wireEnv{V: v}); err != nil {
		return 64 - frameOverhead
	}
	// The gob stream carries its own type headers; subtract the flat
	// frame so payloadSize prices the whole message at the encoded size.
	if cw.n <= frameOverhead {
		return cw.n
	}
	return cw.n - frameOverhead
}

// wireEnv is the gob frame shared by the TCP engine and the Virtual
// engine's size measurement. Payload types must be registered with
// RegisterPayload to cross the interface boundary.
type wireEnv struct {
	Src, Tag int
	V        any
}

// RegisterPayload registers a concrete payload type with gob. Call it once
// (e.g. from an init function) for every type sent through Comm.
func RegisterPayload(v any) { gob.Register(v) }
