package mp

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// sizedPayload implements Sizer with a fixed answer so the fast path is
// distinguishable from any plausible gob encoding.
type sizedPayload struct{ N int }

func (p sizedPayload) WireSize() int { return 12345 }

func TestPayloadSizeSizerFastPath(t *testing.T) {
	if got := payloadSize(sizedPayload{N: 7}); got != frameOverhead+12345 {
		t.Fatalf("Sizer payload priced at %d, want %d", got, frameOverhead+12345)
	}
}

func TestPayloadSizeBuiltinShapes(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want int
	}{
		{"int32-slice", []int32{1, 2, 3}, frameOverhead + 12},
		{"empty-int32-slice", []int32{}, frameOverhead},
		{"int", 42, frameOverhead + 8},
		{"bool", true, frameOverhead + 1},
		// One message frame for the whole slice; each element pays only
		// the flat per-element header, never a second message frame.
		{"any-slice", []any{42, true}, frameOverhead + (elemHeader + 8) + (elemHeader + 1)},
	}
	for _, tc := range cases {
		if got := payloadSize(tc.v); got != tc.want {
			t.Errorf("%s priced at %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestPayloadSizeGobFallback(t *testing.T) {
	// A registered type without WireSize falls back to a real gob encode:
	// the price must match encoding the same wireEnv frame by hand.
	type plain struct{ A, B int }
	gob.Register(plain{})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wireEnv{V: plain{A: 1, B: 2}}); err != nil {
		t.Fatal(err)
	}
	if got := payloadSize(plain{A: 1, B: 2}); got != buf.Len() {
		t.Fatalf("gob fallback priced at %d, want %d", got, buf.Len())
	}
}

func TestPayloadSizeUnencodable(t *testing.T) {
	// Unencodable payloads get a fixed price instead of failing: the
	// Virtual engine must never alter program behaviour.
	if got := payloadSize(func() {}); got != 64 {
		t.Fatalf("unencodable payload priced at %d, want 64", got)
	}
}

func TestPayloadSizeSizerScalesWithLength(t *testing.T) {
	// The batch pricing contract: a Sizer batch twice as long costs twice
	// the per-element bytes on top of the same frame overhead.
	one := payloadSize(sizedBatch(1))
	two := payloadSize(sizedBatch(2))
	if two-one != one-payloadSize(sizedBatch(0)) {
		t.Fatalf("batch pricing not linear: 0->%d 1->%d 2->%d",
			payloadSize(sizedBatch(0)), one, two)
	}
}

type sizedBatch int

func (b sizedBatch) WireSize() int { return int(b) * 25 }

// TestPayloadSizeAnySliceDifferential is the satellite audit of the
// []any recursion against the Sizer fast path: relaying N flat batches
// through one []any message (the Alltoall shape) must price each batch
// at exactly its WireSize plus the flat per-element header — the old
// recursion charged a full per-message frame per element, overpricing
// every collective round by (frameOverhead-elemHeader)·N bytes.
func TestPayloadSizeAnySliceDifferential(t *testing.T) {
	batches := []any{sizedBatch(3), sizedBatch(0), sizedBatch(17)}
	want := frameOverhead
	for _, b := range batches {
		want += elemHeader + b.(Sizer).WireSize()
	}
	if got := payloadSize(batches); got != want {
		t.Fatalf("[]any of Sizers priced at %d, want %d", got, want)
	}
	// Consistency with the flat batch encodings: a []any wrapping one
	// batch costs exactly one element header more than sending the batch
	// alone.
	alone := payloadSize(sizedBatch(5))
	wrapped := payloadSize([]any{sizedBatch(5)})
	if wrapped-alone != elemHeader {
		t.Fatalf("wrapping overhead = %d, want elemHeader (%d)", wrapped-alone, elemHeader)
	}
	// Nested []any (Alltoall relaying Allgather results) still charges
	// one frame total.
	nested := payloadSize([]any{[]any{sizedBatch(2)}})
	if nested != frameOverhead+elemHeader+elemHeader+sizedBatch(2).WireSize() {
		t.Fatalf("nested []any priced at %d", nested)
	}
}
