package mp

// Crash and deadline tests: a rank killed mid-phase must surface as a
// clean ErrRankLost on every surviving rank within the watchdog deadline,
// leak no goroutines, and survive repeated teardown (no double-Close
// panics). Deadlines must turn silent hangs into ErrDeadline.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// requireGoroutinesSettle fails the test if the live goroutine count does
// not come back down to the baseline (plus a small allowance for runtime
// bookkeeping) shortly after a run — the goleak-style leak check.
func requireGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// crashBody is a mesh exchange that keeps all ranks talking until the
// planned crash lands; survivors must come back with an error rather
// than hang.
func crashBody(rounds int) func(Comm) error {
	return func(c Comm) error {
		const tag = 9
		for i := 0; i < rounds; i++ {
			for r := 0; r < c.Size(); r++ {
				if r == c.Rank() {
					continue
				}
				if err := c.Send(r, tag, i); err != nil {
					return err
				}
			}
			for r := 0; r < c.Size(); r++ {
				if r == c.Rank() {
					continue
				}
				if _, err := c.Recv(r, tag); err != nil {
					return err
				}
			}
		}
		return c.Barrier()
	}
}

// runCrashOnce executes one crash scenario under a watchdog and returns
// the per-rank worker errors.
func runCrashOnce(t *testing.T, cfg Config, procs, crashRank, crashAt int) []error {
	t.Helper()
	plan := Plan{Seed: 5, Crash: map[int]int{crashRank: crashAt}}
	cfg.Procs = procs
	cfg.Chaos = &plan
	eng, err := cfg.Engine()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	errs := make([]error, procs)
	body := crashBody(50)
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(context.Background(), procs, func(c Comm) error {
			err := body(c)
			mu.Lock()
			errs[c.Rank()] = err
			mu.Unlock()
			return err
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrRankLost) {
			t.Fatalf("run error: want ErrRankLost, got %v", err)
		}
	case <-time.After(protocolWatchdog):
		t.Fatalf("watchdog: crash of rank %d did not resolve within %v", crashRank, protocolWatchdog)
	}
	return errs
}

// TestCrashSurvivorsSeeRankLost kills one rank mid-mesh on each engine
// and asserts every rank — the dead one and all survivors — returns an
// ErrRankLost-wrapped error within the watchdog deadline, twice in a row
// (the second run doubles as a no-double-Close regression: teardown after
// an injected crash closes already-closed connections).
func TestCrashSurvivorsSeeRankLost(t *testing.T) {
	allModes(t, "crash", func(t *testing.T, cfg Config) {
		baseline := runtime.NumGoroutine()
		for run := 0; run < 2; run++ {
			errs := runCrashOnce(t, cfg, 4, 1, 7)
			for rank, err := range errs {
				if err == nil {
					// A rank may finish its last round before the abort
					// lands only if it never needed the dead rank again;
					// with a full mesh every round, that cannot happen.
					t.Errorf("run %d: rank %d returned nil, want ErrRankLost", run, rank)
					continue
				}
				if !errors.Is(err, ErrRankLost) {
					t.Errorf("run %d: rank %d: %v does not wrap ErrRankLost", run, rank, err)
				}
			}
		}
		requireGoroutinesSettle(t, baseline)
	})
}

// TestCrashTCPWatchdogDeadline is the sharpened TCP-specific variant: the
// survivors must detect the loss through socket teardown (not just the
// shared abort flag) and the engine must shut down all reader pumps.
func TestCrashTCPWatchdogDeadline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	start := time.Now()
	errs := runCrashOnce(t, Config{Mode: TCP}, 4, 2, 11)
	if waited := time.Since(start); waited > protocolWatchdog/2 {
		t.Errorf("crash took %v to resolve, too close to the %v watchdog", waited, protocolWatchdog)
	}
	for rank, err := range errs {
		if !errors.Is(err, ErrRankLost) {
			t.Errorf("rank %d: %v does not wrap ErrRankLost", rank, err)
		}
	}
	requireGoroutinesSettle(t, baseline)
}

// TestCrashFirstSend covers the degenerate schedule: the rank dies before
// sending anything at all.
func TestCrashFirstSend(t *testing.T) {
	allModes(t, "crash-first", func(t *testing.T, cfg Config) {
		errs := runCrashOnce(t, cfg, 3, 0, 1)
		if !errors.Is(errs[0], ErrRankLost) {
			t.Errorf("crashed rank: %v does not wrap ErrRankLost", errs[0])
		}
	})
}

// TestRecvDeadline asserts a receive that can never be satisfied fails
// with ErrDeadline after Limits.RecvTimeout instead of hanging, and that
// the miss is counted.
func TestRecvDeadline(t *testing.T) {
	for _, mode := range []Mode{Inproc, TCP} {
		t.Run(mode.String(), func(t *testing.T) {
			var counters FaultCounters
			cfg := Config{
				Procs: 2, Mode: mode,
				Limits: Limits{RecvTimeout: 50 * time.Millisecond, Counters: &counters},
			}
			done := make(chan error, 1)
			go func() {
				_, err := cfg.Run(func(c Comm) error {
					if c.Rank() == 0 {
						return nil // never sends
					}
					_, err := c.Recv(0, 1)
					return err
				})
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, ErrDeadline) {
					t.Fatalf("want ErrDeadline, got %v", err)
				}
			case <-time.After(protocolWatchdog):
				t.Fatal("recv deadline never fired")
			}
			if got := counters.DeadlineMisses.Load(); got != 1 {
				t.Fatalf("deadline misses = %d, want 1", got)
			}
		})
	}
}

// TestRecvDeadlineNotHitWhenTrafficFlows guards against false positives:
// a generous deadline must not interfere with a normal exchange.
func TestRecvDeadlineNotHitWhenTrafficFlows(t *testing.T) {
	for _, mode := range []Mode{Inproc, TCP} {
		t.Run(mode.String(), func(t *testing.T) {
			var counters FaultCounters
			cfg := Config{
				Procs: 3, Mode: mode,
				Limits: Limits{RecvTimeout: 5 * time.Second, SendTimeout: 5 * time.Second, Counters: &counters},
			}
			if _, err := cfg.Run(tortureBody(10)); err != nil {
				t.Fatal(err)
			}
			if got := counters.DeadlineMisses.Load(); got != 0 {
				t.Fatalf("deadline misses = %d, want 0", got)
			}
		})
	}
}

// TestCrashEventLogIncludesNote pins the crash to the event log on the
// deterministic engine: re-running the same crash plan reproduces the
// identical log, including the crash record.
func TestCrashEventLogIncludesNote(t *testing.T) {
	run := func() string {
		plan := Plan{Seed: 21, Crash: map[int]int{1: 4}}
		cfg := Config{Procs: 3, Mode: Virtual, Chaos: &plan}
		eng, err := cfg.Engine()
		if err != nil {
			t.Fatal(err)
		}
		ce := eng.(*ChaosEngine)
		if _, err := ce.Run(context.Background(), cfg.Procs, crashBody(20)); !errors.Is(err, ErrRankLost) {
			t.Fatalf("want ErrRankLost, got %v", err)
		}
		log := ce.EventLog()
		found := false
		for _, line := range log {
			if line == fmt.Sprintf("crash rank=%d at-send=%d", 1, 4) {
				found = true
			}
		}
		if !found {
			t.Fatalf("crash note missing from event log (%d lines)", len(log))
		}
		out := ""
		for _, l := range log {
			out += l + "\n"
		}
		return out
	}
	if run() != run() {
		t.Fatal("crash plan event log not reproducible on the virtual engine")
	}
}
