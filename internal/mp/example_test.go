package mp_test

import (
	"fmt"

	"parroute/internal/mp"
)

// ExampleConfig_Run sums the ranks of a four-worker simulated machine with
// an allreduce. The same function body runs unchanged on the concurrent
// and TCP engines.
func ExampleConfig_Run() {
	cfg := mp.Config{Procs: 4, Mode: mp.Virtual, Model: mp.SMP()}
	_, err := cfg.Run(func(c mp.Comm) error {
		total, err := mp.AllreduceInt(c, 1, c.Rank(), mp.SumInt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("sum of ranks:", total)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// sum of ranks: 6
}
