package mp

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"time"
)

// The TCP engines' socket framing. Every message travels as one frame:
//
//	u32-LE body length | body
//
// where an envelope body is
//
//	i64 src | i64 tag | AppendAny payload (u32 wire id | u32 len | bytes)
//
// so registered payload types cross the socket through their generated
// parroute-mpwire/1 codecs and only unregistered types (wire id 0) fall
// back to gob. The connection-setup hello and the rendezvous address
// table reuse the same length-prefixed outer frame with their own magic
// strings, so one bounded reader serves both setup and steady state.

const (
	// frameHeaderLen is the length prefix: a little-endian u32.
	frameHeaderLen = 4
	// maxFrameLen bounds a single frame body. A length prefix beyond it
	// is treated as stream corruption rather than an allocation request;
	// the largest real payloads (full-circuit net batches) stay far under.
	maxFrameLen = 1 << 28
)

// appendFrame appends one framed envelope to buf. With forceGob the
// payload takes the gob fallback even when a flat codec is registered —
// the benchmark baseline that isolates what the generated codecs buy.
func appendFrame(buf []byte, src, tag int, v any, forceGob bool) ([]byte, error) {
	lenAt := len(buf)
	buf = AppendUint32(buf, 0) // length, patched below
	buf = AppendInt(buf, src)
	buf = AppendInt(buf, tag)
	var err error
	if forceGob {
		buf, err = appendAnyGob(buf, v)
	} else {
		buf, err = AppendAny(buf, v)
	}
	if err != nil {
		return nil, err
	}
	body := len(buf) - lenAt - frameHeaderLen
	if body > maxFrameLen {
		return nil, wireErr("frame body %d exceeds %d byte(s)", body, maxFrameLen)
	}
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(body))
	return buf, nil
}

// decodeFrameBody decodes an envelope body written by appendFrame. The
// body must be consumed exactly; trailing bytes mean a framing bug.
func decodeFrameBody(body []byte) (src, tag int, v any, err error) {
	src, rest, err := WireInt(body)
	if err != nil {
		return 0, 0, nil, err
	}
	tag, rest, err = WireInt(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	v, rest, err = WireAny(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(rest) != 0 {
		return 0, 0, nil, wireErr("frame left %d undecoded byte(s)", len(rest))
	}
	return src, tag, v, nil
}

// readFrame reads one length-prefixed frame body from r, reusing scratch
// when it is large enough. io.EOF before the first header byte is a clean
// close; a header cut short surfaces as io.ErrUnexpectedEOF.
func readFrame(r io.Reader, scratch []byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, wireErr("truncated frame header")
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return nil, wireErr("frame length %d exceeds %d byte(s)", n, maxFrameLen)
	}
	body := scratch
	if uint32(cap(body)) < n {
		body = make([]byte, n)
	}
	body = body[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, wireErr("truncated frame: %v", err)
	}
	return body, nil
}

// appendAnyGob is AppendAny with the gob fallback forced: the payload is
// framed under wire id 0 regardless of registered codecs.
func appendAnyGob(buf []byte, v any) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&wireEnv{V: v}); err != nil {
		return nil, fmt.Errorf("mp: AppendAny: %w", err)
	}
	buf = AppendUint32(buf, gobWireID)
	buf = AppendUint32(buf, uint32(body.Len()))
	return append(buf, body.Bytes()...), nil
}

// ---- connection-setup frames ----

// WireProtocolChecksum is the FNV-1a/64 hash of the generated
// mp_protocol.json bytes — the build's protocol fingerprint. The TCP
// rendezvous hello carries it so processes built against different
// protocol revisions refuse to form a mesh instead of misdecoding each
// other's frames. Assigned by the generated init in mpwire_gen.go; it
// cannot live there as a constant because mpgen rescans the module with
// generated files excluded, so hand-written code may not reference
// generated symbols.
var WireProtocolChecksum uint64

const (
	// helloMagic opens the hello a connecting endpoint sends first.
	helloMagic = "parroute-mp/hello"
	// tableMagic opens rank 0's rendezvous reply: the mesh address table.
	tableMagic = "parroute-mp/table"
	// setupVersion is the handshake revision; endpoints refuse mismatches.
	setupVersion = 1
)

// hello is the first frame on every new connection: who is dialing, built
// against which protocol revision, and (rendezvous only) where the dialer
// accepts its own mesh connections.
type hello struct {
	Checksum uint64 // WireProtocolChecksum of the dialer's build
	Rank     int
	Addr     string // dialer's mesh listen address; "" on mesh handshakes
}

func appendHello(buf []byte, h hello) []byte {
	buf = AppendString(buf, helloMagic)
	buf = AppendUint32(buf, setupVersion)
	buf = AppendUint64(buf, h.Checksum)
	buf = AppendInt(buf, h.Rank)
	return AppendString(buf, h.Addr)
}

func decodeHello(body []byte) (hello, error) {
	var h hello
	magic, rest, err := WireString(body)
	if err != nil {
		return h, err
	}
	if magic != helloMagic {
		return h, wireErr("hello magic %q, want %q", magic, helloMagic)
	}
	version, rest, err := WireUint32(rest)
	if err != nil {
		return h, err
	}
	if version != setupVersion {
		return h, wireErr("hello version %d, want %d", version, setupVersion)
	}
	if h.Checksum, rest, err = WireUint64(rest); err != nil {
		return h, err
	}
	if h.Rank, rest, err = WireInt(rest); err != nil {
		return h, err
	}
	if h.Addr, _, err = WireString(rest); err != nil {
		return h, err
	}
	return h, nil
}

// addrTable is rank 0's rendezvous reply: where every rank accepts mesh
// connections (index = rank; rank 0's slot is unused).
type addrTable struct {
	Checksum uint64
	Addrs    []string
}

func appendTable(buf []byte, t addrTable) []byte {
	buf = AppendString(buf, tableMagic)
	buf = AppendUint32(buf, setupVersion)
	buf = AppendUint64(buf, t.Checksum)
	buf = AppendUint32(buf, uint32(len(t.Addrs)))
	for _, a := range t.Addrs {
		buf = AppendString(buf, a)
	}
	return buf
}

func decodeTable(body []byte) (addrTable, error) {
	var t addrTable
	magic, rest, err := WireString(body)
	if err != nil {
		return t, err
	}
	if magic != tableMagic {
		return t, wireErr("table magic %q, want %q", magic, tableMagic)
	}
	version, rest, err := WireUint32(rest)
	if err != nil {
		return t, err
	}
	if version != setupVersion {
		return t, wireErr("table version %d, want %d", version, setupVersion)
	}
	if t.Checksum, rest, err = WireUint64(rest); err != nil {
		return t, err
	}
	n, rest, err := WireCount(rest)
	if err != nil {
		return t, err
	}
	t.Addrs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		var a string
		if a, rest, err = WireString(rest); err != nil {
			return t, err
		}
		t.Addrs = append(t.Addrs, a)
	}
	return t, nil
}

// writeConnFrame writes body as one frame, bounding the write by timeout
// when positive. Used only during connection setup (steady-state sends go
// through tComm.Send, which owns its peer's write serialization).
func writeConnFrame(conn net.Conn, body []byte, timeout time.Duration) error {
	buf := make([]byte, 0, frameHeaderLen+len(body))
	buf = AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	if timeout > 0 {
		deadline := time.Now().Add(timeout) //lint:allow nondeterminism transport deadline, never a routing decision
		if err := conn.SetWriteDeadline(deadline); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(buf)
	return err
}

// readConnFrame reads one frame body, bounding the read by timeout when
// positive — the handshake watchdog: a peer that connects but never
// writes fails the setup instead of parking it forever.
func readConnFrame(conn net.Conn, timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		deadline := time.Now().Add(timeout) //lint:allow nondeterminism transport deadline, never a routing decision
		if err := conn.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		defer conn.SetReadDeadline(time.Time{})
	}
	return readFrame(conn, nil)
}

// sendHello introduces rank on a fresh connection, bounded by timeout.
func sendHello(conn net.Conn, rank int, addr string, timeout time.Duration) error {
	h := hello{Checksum: WireProtocolChecksum, Rank: rank, Addr: addr}
	return writeConnFrame(conn, appendHello(nil, h), timeout)
}

// recvHello reads and verifies a peer's hello, bounded by timeout. A
// checksum mismatch means the peer was built against a different
// mp_protocol.json revision; forming a mesh with it would misdecode every
// frame, so the handshake refuses it up front.
func recvHello(conn net.Conn, timeout time.Duration) (hello, error) {
	body, err := readConnFrame(conn, timeout)
	if err != nil {
		return hello{}, err
	}
	h, err := decodeHello(body)
	if err != nil {
		return hello{}, err
	}
	if h.Checksum != WireProtocolChecksum {
		return hello{}, fmt.Errorf("mp: protocol checksum mismatch: peer rank %d built against %#016x, this build has %#016x (regenerate with mpgen and rebuild every rank)",
			h.Rank, h.Checksum, WireProtocolChecksum)
	}
	return h, nil
}
