package mp

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	RegisterPayload(gobOnlyPayload{})
	msg := chaosMsg{Seq: 42, V: gobOnlyPayload{A: 1, B: 2}}
	stream, err := appendFrame(nil, 3, 17, msg, false)
	if err != nil {
		t.Fatal(err)
	}
	// A second frame on the same stream, through the gob fallback, on a
	// reserved engine tag.
	stream, err = appendFrame(stream, 1, tagBarrier, true, true)
	if err != nil {
		t.Fatal(err)
	}

	r := bytes.NewReader(stream)
	body, err := readFrame(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	src, tag, v, err := decodeFrameBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if src != 3 || tag != 17 {
		t.Fatalf("frame 1 header = src %d tag %d", src, tag)
	}
	if got, ok := v.(chaosMsg); !ok || got.Seq != 42 || !reflect.DeepEqual(got.V, msg.V) {
		t.Fatalf("frame 1 payload = %#v", v)
	}
	// The second read reuses the first body as scratch.
	body, err = readFrame(r, body)
	if err != nil {
		t.Fatal(err)
	}
	src, tag, v, err = decodeFrameBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if src != 1 || tag != tagBarrier || v != true {
		t.Fatalf("frame 2 = src %d tag %d payload %#v", src, tag, v)
	}
	if _, err := readFrame(r, body); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestFrameCanonicalReencode(t *testing.T) {
	// A decoded frame must re-encode byte-identically: the outer chaosMsg
	// takes its generated flat codec, and the nested gob fallback is
	// deterministic too because every encode runs a fresh encoder.
	RegisterPayload(gobOnlyPayload{})
	frame, err := appendFrame(nil, 0, 5, chaosMsg{Seq: 7, V: gobOnlyPayload{A: 2, B: 3}}, false)
	if err != nil {
		t.Fatal(err)
	}
	src, tag, v, err := decodeFrameBody(frame[frameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	re, err := appendFrame(nil, src, tag, v, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, re) {
		t.Fatalf("re-encode differs:\n got %x\nwant %x", re, frame)
	}
}

func TestFrameTruncation(t *testing.T) {
	frame, err := appendFrame(nil, 0, 1, 99, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"cut header", frame[:2]},
		{"cut body", frame[:len(frame)-3]},
		{"oversized length prefix", AppendUint32(nil, maxFrameLen+1)},
	}
	for _, tc := range cases {
		if _, err := readFrame(bytes.NewReader(tc.data), nil); !errors.Is(err, ErrWire) {
			t.Errorf("%s: err = %v, want ErrWire", tc.name, err)
		}
	}
	// Exhausted stream before any header byte is the clean close, not an
	// error: that is how readLoop tells teardown from corruption.
	if _, err := readFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Errorf("empty stream = %v, want io.EOF", err)
	}
	// Trailing bytes inside a body mean a framing bug.
	body := append(append([]byte{}, frame[frameHeaderLen:]...), 0)
	if _, _, _, err := decodeFrameBody(body); !errors.Is(err, ErrWire) {
		t.Errorf("trailing body byte accepted: %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := hello{Checksum: WireProtocolChecksum, Rank: 3, Addr: "127.0.0.1:9999"}
	got, err := decodeHello(appendHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello round trip = %+v, want %+v", got, h)
	}

	bad := appendHello(nil, h)
	bad[4] ^= 0xFF // first magic byte, after the string length prefix
	if _, err := decodeHello(bad); err == nil {
		t.Error("corrupted hello magic accepted")
	}
	wrongVersion := AppendUint32(AppendString(nil, helloMagic), setupVersion+1)
	wrongVersion = AppendString(AppendInt(AppendUint64(wrongVersion, 1), 2), "")
	if _, err := decodeHello(wrongVersion); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future hello version accepted: %v", err)
	}
}

func TestTableRoundTrip(t *testing.T) {
	tbl := addrTable{Checksum: WireProtocolChecksum, Addrs: []string{"", "10.0.0.2:41000", "10.0.0.3:41002"}}
	got, err := decodeTable(appendTable(nil, tbl))
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != tbl.Checksum || !reflect.DeepEqual(got.Addrs, tbl.Addrs) {
		t.Fatalf("table round trip = %+v, want %+v", got, tbl)
	}
	enc := appendTable(nil, tbl)
	if _, err := decodeTable(enc[:len(enc)-2]); !errors.Is(err, ErrWire) {
		t.Errorf("truncated table accepted: %v", err)
	}
	if _, err := decodeTable(appendHello(nil, hello{})); err == nil {
		t.Error("hello decoded as a table")
	}
}

func TestProtocolChecksumAssigned(t *testing.T) {
	// The generated init must have stamped the build's protocol
	// fingerprint; a zero checksum would let mismatched builds mesh.
	if WireProtocolChecksum == 0 {
		t.Fatal("WireProtocolChecksum is zero: mpwire_gen.go did not assign it")
	}
}

func TestRecvHelloChecksumMismatch(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		h := hello{Checksum: WireProtocolChecksum ^ 1, Rank: 2}
		_ = writeConnFrame(b, appendHello(nil, h), time.Second)
	}()
	_, err := recvHello(a, time.Second)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("mismatched protocol checksum accepted: %v", err)
	}
}

// TestRecvHelloSilentPeerBounded is the regression test for the accept
// watchdog: the handshake read used to carry no deadline, so a dialer
// that connected and then went silent parked the accept goroutine (and
// with it the whole mesh setup) forever.
func TestRecvHelloSilentPeerBounded(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close() // b never writes
	start := time.Now()
	_, err := recvHello(a, 50*time.Millisecond)
	if err == nil {
		t.Fatal("handshake with a silent peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("silent-peer handshake failed with %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("handshake took %v; the deadline did not bound it", elapsed)
	}
}

// FuzzFrame drives the socket framing with arbitrary bytes: any stream
// readFrame+decodeFrameBody accept must re-encode byte-identically when
// the payload went through a registered flat codec (canonical encoding);
// gob-fallback accepts only need to round-trip by value.
func FuzzFrame(f *testing.F) {
	RegisterPayload(gobOnlyPayload{})
	seed, err := appendFrame(nil, 3, 7, chaosMsg{Seq: 12, V: gobOnlyPayload{A: 5, B: 6}}, false)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	gobSeed, err := appendFrame(nil, 0, tagBarrier, true, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(gobSeed)
	f.Add(seed[:5])
	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		src, tag, v, err := decodeFrameBody(body)
		if err != nil {
			return
		}
		// Gob bodies are not canonical (decode not panicking is the
		// property there); a registered codec wrapping a gob-fallback
		// payload is canonical only outside the gob body.
		canonical := codecByType(v) != nil
		if m, ok := v.(chaosMsg); ok && codecByType(m.V) == nil {
			canonical = false
		}
		re, err := appendFrame(nil, src, tag, v, false)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if consumed := data[:frameHeaderLen+len(body)]; canonical && !bytes.Equal(consumed, re) {
			t.Fatalf("decode/encode not canonical:\nconsumed %x\nre-enc   %x", consumed, re)
		}
		body2, err := readFrame(bytes.NewReader(re), nil)
		if err != nil {
			t.Fatalf("re-encoded frame unreadable: %v", err)
		}
		src2, tag2, v2, err := decodeFrameBody(body2)
		if err != nil || src2 != src || tag2 != tag || !reflect.DeepEqual(v, v2) {
			t.Fatalf("re-encoded frame did not round-trip: %v / src %d tag %d %#v vs src %d tag %d %#v",
				err, src, tag, v, src2, tag2, v2)
		}
	})
}
