package mp

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// The Inproc engine runs workers as truly concurrent goroutines with
// per-rank mailboxes — the deployment for hosts with real cores. Timing is
// the caller's wall clock.

type iMachine struct {
	n       int
	lim     Limits
	boxes   []*mailbox
	barrier *reusableBarrier

	mu      sync.Mutex
	aborted error
}

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []envelope
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// recvMatch blocks until an envelope from (from, tag) is queued, the run
// aborts, or — when timeout > 0 — the deadline expires, in which case it
// counts a miss against the limits' counter sink and fails with an
// ErrDeadline-wrapped error. Shared by the inproc and TCP engines.
func (b *mailbox) recvMatch(from, tag int, timeout time.Duration, abortErr func() error, counters *FaultCounters) (any, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout) //lint:allow nondeterminism transport deadline, never a routing decision
	}
	for {
		if i := matchEnv(b.queue, from, tag); i >= 0 {
			env := b.queue[i]
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return env.v, nil
		}
		if err := abortErr(); err != nil {
			return nil, err
		}
		if timeout <= 0 {
			b.cond.Wait()
			continue
		}
		left := time.Until(deadline) //lint:allow nondeterminism transport deadline, never a routing decision
		if left <= 0 {
			if counters != nil {
				counters.DeadlineMisses.Add(1)
			}
			return nil, fmt.Errorf("mp: recv from rank %d tag %d: no message within %v: %w", from, tag, timeout, ErrDeadline)
		}
		// Wake this waiter when the deadline passes so the loop can fail
		// instead of sleeping on the cond forever.
		t := time.AfterFunc(left, b.cond.Broadcast)
		b.cond.Wait()
		t.Stop()
	}
}

type iComm struct {
	m    *iMachine
	rank int
}

func runInproc(ctx context.Context, n int, lim Limits, fn func(Comm) error) error {
	m := &iMachine{n: n, lim: lim, boxes: make([]*mailbox, n), barrier: newReusableBarrier(n)}
	for i := range m.boxes {
		m.boxes[i] = newMailbox()
	}
	// Cancellation rides the abort machinery: every blocked mailbox wait
	// and the barrier are released with an error wrapping ctx.Err(), and
	// unblocked workers pick it up at their next mp operation.
	stop := context.AfterFunc(ctx, func() { m.abort(cancelCause(ctx)) })
	defer stop()
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(rank int) {
			defer wg.Done()
			err := fn(&iComm{m: m, rank: rank})
			errs[rank] = err
			if err != nil {
				m.abort(fmt.Errorf("mp: rank %d failed: %w", rank, err))
			}
		}(i)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		return err
	}
	// Workers may all have finished their compute between the cancel and
	// their final mp operation; a cancelled run still reports as such.
	if ctx.Err() != nil {
		return cancelCause(ctx)
	}
	return nil
}

// abort releases every blocked worker after a failure.
func (m *iMachine) abort(err error) {
	m.mu.Lock()
	if m.aborted == nil {
		m.aborted = err
	}
	m.mu.Unlock()
	for _, b := range m.boxes {
		b.cond.Broadcast()
	}
	m.barrier.abort()
}

func (m *iMachine) abortErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aborted
}

func (c *iComm) Rank() int { return c.rank }
func (c *iComm) Size() int { return c.m.n }

func (c *iComm) Send(to, tag int, v any) error {
	if to < 0 || to >= c.m.n {
		return fmt.Errorf("mp: send to rank %d of %d", to, c.m.n)
	}
	if err := c.m.abortErr(); err != nil {
		return err
	}
	b := c.m.boxes[to]
	b.mu.Lock()
	b.queue = append(b.queue, envelope{src: c.rank, tag: tag, v: v})
	b.mu.Unlock()
	b.cond.Broadcast()
	return nil
}

func (c *iComm) Recv(from, tag int) (any, error) {
	if from < 0 || from >= c.m.n {
		return nil, fmt.Errorf("mp: recv from rank %d of %d", from, c.m.n)
	}
	return c.m.boxes[c.rank].recvMatch(from, tag, c.m.lim.RecvTimeout, c.m.abortErr, c.m.lim.Counters)
}

func (c *iComm) Barrier() error {
	if err := c.m.abortErr(); err != nil {
		return err
	}
	if !c.m.barrier.wait() {
		if err := c.m.abortErr(); err != nil {
			return err
		}
		return ErrDeadlock
	}
	return nil
}

// reusableBarrier is a generation-counted barrier usable any number of
// times by exactly n parties.
type reusableBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	gen     uint64
	broken  bool
}

func newReusableBarrier(n int) *reusableBarrier {
	b := &reusableBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until n parties arrive; returns false if the barrier was
// broken by abort.
func (b *reusableBarrier) wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return false
	}
	gen := b.gen
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	return !b.broken
}

func (b *reusableBarrier) abort() {
	b.mu.Lock()
	b.broken = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
