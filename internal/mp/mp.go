// Package mp is the message-passing substrate that replaces MPI in this
// reproduction. The parallel routing algorithms are written once against
// the Comm interface (rank/size, tagged point-to-point messages, barrier,
// plus the collectives in collectives.go) and run on three interchangeable
// engines:
//
//   - Virtual: a deterministic discrete-event simulation of a P-processor
//     message-passing machine. Worker goroutines run one at a time (token
//     passing), their compute spans are measured on the host CPU, and
//     communication advances per-worker virtual clocks through a platform
//     cost model. This is how the paper's SparcCenter-1000 (SMP) and Intel
//     Paragon (DMP) runs are reproduced on a machine with any core count;
//     the simulated elapsed time is the parallel runtime reported by the
//     benchmarks.
//   - Inproc: real concurrent goroutines with in-memory mailboxes, for
//     hosts with real cores.
//   - TCP: one goroutine per rank, all traffic framed over loopback TCP
//     sockets with the generated parroute-mpwire/1 codecs (gob only as
//     the unregistered-payload fallback) — the "distributed memory"
//     deployment shape. With Config.Net set, the same transport spans
//     OS processes: each process runs one rank and the mesh forms
//     through a rank-zero rendezvous (see NetConfig).
//
// Ownership discipline: a sent value belongs to the receiver afterwards.
// Senders must not retain or mutate payloads after Send; the in-memory
// engines deliver by reference.
package mp

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Comm is the per-rank communicator handed to each worker function.
type Comm interface {
	// Rank returns this worker's index in [0, Size).
	Rank() int
	// Size returns the number of workers.
	Size() int
	// Send delivers v to rank `to` under the given tag. It does not block
	// on the receiver (buffered semantics).
	Send(to, tag int, v any) error
	// Recv blocks until a message from rank `from` with the given tag
	// arrives and returns its payload. Messages from the same sender and
	// tag arrive in send order.
	Recv(from, tag int) (any, error)
	// Barrier blocks until every rank has entered the barrier.
	Barrier() error
}

// Reserved engine tags. The negative tag space belongs to the engines:
// user code must send and receive on tags >= 0, and the tag-discipline
// analyzer reports user tag constants that stray into the reserved range.
const (
	// tagBarrier carries the TCP engine's barrier gather/release tokens.
	tagBarrier = -2
	// tagShutdown carries the multi-process TCP engine's two-phase
	// termination tokens (see rendezvous.go), kept off tagBarrier so
	// shutdown traffic can never interleave with a user-level barrier.
	tagShutdown = -3
)

// Mode selects the execution engine.
type Mode int

const (
	// Virtual is the discrete-event simulated machine (default).
	Virtual Mode = iota
	// Inproc runs workers as truly concurrent goroutines.
	Inproc
	// TCP runs workers as goroutines that communicate over loopback TCP
	// with framed parroute-mpwire/1 encoding (or one worker per process
	// when Config.Net is set).
	TCP
)

func (m Mode) String() string {
	switch m {
	case Virtual:
		return "virtual"
	case Inproc:
		return "inproc"
	case TCP:
		return "tcp"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config describes a parallel run.
type Config struct {
	Procs int
	Mode  Mode
	// Model is the communication cost model used by the Virtual engine;
	// ignored by the others. Zero value means SMP().
	Model CostModel
	// Limits bounds how long the real-time engines (Inproc, TCP) wait on
	// a single message. Ignored by Virtual, whose deterministic deadlock
	// detector subsumes per-message deadlines.
	Limits Limits
	// Chaos, when non-nil, wraps the selected engine in a deterministic
	// fault injector driven by the plan (see Chaos).
	Chaos *Plan
	// Net, when non-nil, places this process at one rank of a
	// multi-process TCP mesh formed through a rank-zero rendezvous (see
	// NetConfig). Requires Mode == TCP; Procs must equal Net.Ranks. The
	// engine then runs the worker function exactly once, at Net.Rank.
	Net *NetConfig
	// GobWire forces every TCP frame payload through the gob fallback
	// (wire id 0) instead of the generated flat codecs — the benchmark
	// baseline that isolates what the codecs buy. Ignored off TCP.
	GobWire bool
}

// Limits bounds single-message waits on the real-time engines.
type Limits struct {
	// RecvTimeout is the longest a Recv (including the engine-internal
	// barrier traffic of the TCP engine) waits for a matching message
	// before failing with ErrDeadline. Zero means wait forever.
	RecvTimeout time.Duration
	// SendTimeout is the longest a TCP Send may spend writing to the
	// socket before failing with ErrDeadline. Zero means no limit. The
	// in-memory engines never block in Send.
	SendTimeout time.Duration
	// HandshakeTimeout bounds each connection-setup hello read or write
	// on the TCP engines (loopback mesh and rendezvous), so a peer that
	// connects and then goes silent fails the setup instead of parking
	// an accept goroutine forever. Zero means 10s.
	HandshakeTimeout time.Duration
	// Counters, when non-nil, receives deadline-miss counts. Config.Run
	// points it at the chaos counter set automatically when Chaos is on.
	Counters *FaultCounters
}

// handshakeTimeout resolves the default.
func (l Limits) handshakeTimeout() time.Duration {
	if l.HandshakeTimeout > 0 {
		return l.HandshakeTimeout
	}
	return 10 * time.Second
}

// ErrDeadlock is returned when every worker is blocked and no message can
// ever arrive.
var ErrDeadlock = errors.New("mp: deadlock: all workers blocked")

// ErrDeadline is wrapped by errors from sends and receives that exceeded
// their configured deadline or exhausted their retry budget.
var ErrDeadline = errors.New("mp: deadline exceeded")

// ErrRankLost is wrapped by errors caused by a rank dying mid-run: its
// connections dropping on the TCP engine, or a chaos plan crashing it.
// Surviving ranks see it from any blocked or subsequent operation, so a
// caller can detect the loss with errors.Is and degrade gracefully.
var ErrRankLost = errors.New("mp: rank lost")

// Engine runs a worker function on P ranks. The three built-in engines
// are selected by Config.Mode; Chaos wraps any of them with deterministic
// fault injection.
type Engine interface {
	// Run executes fn on procs workers and returns the elapsed parallel
	// time: simulated time under Virtual, wall-clock time otherwise. The
	// first worker error aborts the run and is returned. Cancelling ctx
	// aborts the run the same way a worker failure does — every blocked
	// rank is released and the returned error wraps ctx.Err()
	// (context.Canceled or context.DeadlineExceeded); no goroutines are
	// leaked. A blocked TCP socket write is additionally bounded by
	// Limits.SendTimeout.
	Run(ctx context.Context, procs int, fn func(Comm) error) (time.Duration, error)
}

// cancelCause wraps a cancelled context's error so every rank's abort
// error carries the mp prefix while errors.Is still sees the cause.
func cancelCause(ctx context.Context) error {
	return fmt.Errorf("mp: run cancelled: %w", ctx.Err())
}

type virtualEngine struct{ model CostModel }

func (e virtualEngine) Run(ctx context.Context, procs int, fn func(Comm) error) (time.Duration, error) {
	return runVirtual(ctx, procs, e.model, fn)
}

type inprocEngine struct{ lim Limits }

func (e inprocEngine) Run(ctx context.Context, procs int, fn func(Comm) error) (time.Duration, error) {
	start := time.Now() //lint:allow nondeterminism elapsed-time measurement, never a routing decision
	err := runInproc(ctx, procs, e.lim, fn)
	return time.Since(start), err //lint:allow nondeterminism elapsed-time measurement, never a routing decision
}

type tcpEngine struct {
	lim     Limits
	gobWire bool
}

func (e tcpEngine) Run(ctx context.Context, procs int, fn func(Comm) error) (time.Duration, error) {
	start := time.Now() //lint:allow nondeterminism elapsed-time measurement, never a routing decision
	err := runTCP(ctx, procs, e.lim, e.gobWire, fn)
	return time.Since(start), err //lint:allow nondeterminism elapsed-time measurement, never a routing decision
}

// baseEngine builds the transport selected by Mode, without chaos.
func (cfg Config) baseEngine() (Engine, error) {
	if cfg.Net != nil && cfg.Mode != TCP {
		return nil, fmt.Errorf("mp: Net requires Mode TCP, got %v", cfg.Mode)
	}
	switch cfg.Mode {
	case Virtual:
		model := cfg.Model
		if model.Name == "" {
			model = SMP()
		}
		return virtualEngine{model: model}, nil
	case Inproc:
		return inprocEngine{lim: cfg.Limits}, nil
	case TCP:
		if cfg.Net != nil {
			return netEngine{cfg: *cfg.Net, lim: cfg.Limits, gobWire: cfg.GobWire}, nil
		}
		return tcpEngine{lim: cfg.Limits, gobWire: cfg.GobWire}, nil
	default:
		return nil, fmt.Errorf("mp: unknown mode %v", cfg.Mode)
	}
}

// Engine returns the engine the config selects: one of the built-in
// transports, wrapped in a Chaos fault injector when cfg.Chaos is set.
// Returning the *ChaosEngine (rather than running it blindly) lets the
// caller read fault counters and the event log after the run.
func (cfg Config) Engine() (Engine, error) {
	if cfg.Chaos == nil {
		return cfg.baseEngine()
	}
	ce := &ChaosEngine{plan: *cfg.Chaos}
	if cfg.Limits.Counters == nil {
		// Deadline misses inside the transport count as chaos faults.
		cfg.Limits.Counters = &ce.counters
	}
	base, err := cfg.baseEngine()
	if err != nil {
		return nil, err
	}
	ce.inner = base
	return ce, nil
}

// Run executes fn on Procs workers and returns the elapsed parallel time:
// simulated time under Virtual, wall-clock time otherwise. The first
// worker error aborts the run and is returned. Run never cancels; use
// RunContext for cancellable or deadline-bounded runs.
func (cfg Config) Run(fn func(Comm) error) (time.Duration, error) {
	return cfg.RunContext(context.Background(), fn)
}

// RunContext is Run under a context: cancelling ctx aborts the run on
// every rank with an error wrapping ctx.Err(), leaking no goroutines.
func (cfg Config) RunContext(ctx context.Context, fn func(Comm) error) (time.Duration, error) {
	if cfg.Procs <= 0 {
		return 0, fmt.Errorf("mp: Procs must be positive, got %d", cfg.Procs)
	}
	eng, err := cfg.Engine()
	if err != nil {
		return 0, err
	}
	return eng.Run(ctx, cfg.Procs, fn)
}

// envelope is an in-flight message.
type envelope struct {
	src, tag int
	v        any
	// avail is the virtual time at which the message is available to the
	// receiver (Virtual engine only).
	avail time.Duration
}

// firstErr keeps the first of a set of errors, preferring earlier ranks
// for determinism.
func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
