// Package mp is the message-passing substrate that replaces MPI in this
// reproduction. The parallel routing algorithms are written once against
// the Comm interface (rank/size, tagged point-to-point messages, barrier,
// plus the collectives in collectives.go) and run on three interchangeable
// engines:
//
//   - Virtual: a deterministic discrete-event simulation of a P-processor
//     message-passing machine. Worker goroutines run one at a time (token
//     passing), their compute spans are measured on the host CPU, and
//     communication advances per-worker virtual clocks through a platform
//     cost model. This is how the paper's SparcCenter-1000 (SMP) and Intel
//     Paragon (DMP) runs are reproduced on a machine with any core count;
//     the simulated elapsed time is the parallel runtime reported by the
//     benchmarks.
//   - Inproc: real concurrent goroutines with in-memory mailboxes, for
//     hosts with real cores.
//   - TCP: one goroutine per rank, all traffic gob-encoded over loopback
//     TCP sockets — the "distributed memory" deployment shape.
//
// Ownership discipline: a sent value belongs to the receiver afterwards.
// Senders must not retain or mutate payloads after Send; the in-memory
// engines deliver by reference.
package mp

import (
	"errors"
	"fmt"
	"time"
)

// Comm is the per-rank communicator handed to each worker function.
type Comm interface {
	// Rank returns this worker's index in [0, Size).
	Rank() int
	// Size returns the number of workers.
	Size() int
	// Send delivers v to rank `to` under the given tag. It does not block
	// on the receiver (buffered semantics).
	Send(to, tag int, v any) error
	// Recv blocks until a message from rank `from` with the given tag
	// arrives and returns its payload. Messages from the same sender and
	// tag arrive in send order.
	Recv(from, tag int) (any, error)
	// Barrier blocks until every rank has entered the barrier.
	Barrier() error
}

// Mode selects the execution engine.
type Mode int

const (
	// Virtual is the discrete-event simulated machine (default).
	Virtual Mode = iota
	// Inproc runs workers as truly concurrent goroutines.
	Inproc
	// TCP runs workers as goroutines that communicate over loopback TCP
	// with gob encoding.
	TCP
)

func (m Mode) String() string {
	switch m {
	case Virtual:
		return "virtual"
	case Inproc:
		return "inproc"
	case TCP:
		return "tcp"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config describes a parallel run.
type Config struct {
	Procs int
	Mode  Mode
	// Model is the communication cost model used by the Virtual engine;
	// ignored by the others. Zero value means SMP().
	Model CostModel
}

// ErrDeadlock is returned when every worker is blocked and no message can
// ever arrive.
var ErrDeadlock = errors.New("mp: deadlock: all workers blocked")

// Run executes fn on Procs workers and returns the elapsed parallel time:
// simulated time under Virtual, wall-clock time otherwise. The first
// worker error aborts the run and is returned.
func (cfg Config) Run(fn func(Comm) error) (time.Duration, error) {
	if cfg.Procs <= 0 {
		return 0, fmt.Errorf("mp: Procs must be positive, got %d", cfg.Procs)
	}
	switch cfg.Mode {
	case Virtual:
		model := cfg.Model
		if model.Name == "" {
			model = SMP()
		}
		return runVirtual(cfg.Procs, model, fn)
	case Inproc:
		start := time.Now() //lint:allow nondeterminism elapsed-time measurement, never a routing decision
		err := runInproc(cfg.Procs, fn)
		return time.Since(start), err //lint:allow nondeterminism elapsed-time measurement, never a routing decision
	case TCP:
		start := time.Now() //lint:allow nondeterminism elapsed-time measurement, never a routing decision
		err := runTCP(cfg.Procs, fn)
		return time.Since(start), err //lint:allow nondeterminism elapsed-time measurement, never a routing decision
	default:
		return 0, fmt.Errorf("mp: unknown mode %v", cfg.Mode)
	}
}

// envelope is an in-flight message.
type envelope struct {
	src, tag int
	v        any
	// avail is the virtual time at which the message is available to the
	// receiver (Virtual engine only).
	avail time.Duration
}

// firstErr keeps the first of a set of errors, preferring earlier ranks
// for determinism.
func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
