package mp

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func init() {
	RegisterPayload([]int32{})
	RegisterPayload([]any{})
	RegisterPayload(0)
	RegisterPayload(true)
	RegisterPayload("")
}

// allModes runs a subtest under each engine.
func allModes(t *testing.T, name string, f func(t *testing.T, cfg Config)) {
	t.Helper()
	for _, mode := range []Mode{Virtual, Inproc, TCP} {
		t.Run(name+"/"+mode.String(), func(t *testing.T) {
			f(t, Config{Mode: mode})
		})
	}
}

func TestRingPassing(t *testing.T) {
	allModes(t, "ring", func(t *testing.T, cfg Config) {
		cfg.Procs = 4
		_, err := cfg.Run(func(c Comm) error {
			// Pass an accumulating token around the ring twice.
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			if c.Rank() == 0 {
				if err := c.Send(next, 1, 1); err != nil {
					return err
				}
			}
			for round := 0; round < 2; round++ {
				got, err := c.Recv(prev, 1)
				if err != nil {
					return err
				}
				v := got.(int)
				if c.Rank() == 0 && round == 1 {
					if v != 2*c.Size() {
						return fmt.Errorf("token = %d, want %d", v, 2*c.Size())
					}
					return nil
				}
				if err := c.Send(next, 1, v+1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestSendRecvOrdering(t *testing.T) {
	allModes(t, "order", func(t *testing.T, cfg Config) {
		cfg.Procs = 2
		_, err := cfg.Run(func(c Comm) error {
			const n = 50
			if c.Rank() == 0 {
				for i := 0; i < n; i++ {
					if err := c.Send(1, 7, i); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < n; i++ {
				got, err := c.Recv(0, 7)
				if err != nil {
					return err
				}
				if got.(int) != i {
					return fmt.Errorf("message %d arrived as %d: FIFO violated", i, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestTagsKeepStreamsApart(t *testing.T) {
	allModes(t, "tags", func(t *testing.T, cfg Config) {
		cfg.Procs = 2
		_, err := cfg.Run(func(c Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 10, "ten"); err != nil {
					return err
				}
				return c.Send(1, 20, "twenty")
			}
			// Receive in the opposite order of sending.
			got20, err := c.Recv(0, 20)
			if err != nil {
				return err
			}
			got10, err := c.Recv(0, 10)
			if err != nil {
				return err
			}
			if got20.(string) != "twenty" || got10.(string) != "ten" {
				return fmt.Errorf("tag demux broken: got %v/%v", got20, got10)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBarrierSeparatesPhases(t *testing.T) {
	allModes(t, "barrier", func(t *testing.T, cfg Config) {
		cfg.Procs = 5
		// Every rank contributes to a gather, barriers, then gathers
		// again; mismatched phases would deliver phase-2 values to the
		// phase-1 gather on some engine if barriers were broken.
		_, err := cfg.Run(func(c Comm) error {
			for phase := 0; phase < 3; phase++ {
				vs, err := Allgather(c, 30+phase, c.Rank()*10+phase)
				if err != nil {
					return err
				}
				for r, raw := range vs {
					if raw.(int) != r*10+phase {
						return fmt.Errorf("phase %d: rank %d contributed %v", phase, r, raw)
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestCollectives(t *testing.T) {
	allModes(t, "collectives", func(t *testing.T, cfg Config) {
		cfg.Procs = 4
		_, err := cfg.Run(func(c Comm) error {
			// Bcast.
			got, err := Bcast(c, 2, 1, "hello")
			if err != nil {
				return err
			}
			if got.(string) != "hello" {
				return fmt.Errorf("bcast got %v", got)
			}
			// Gather.
			vs, err := Gather(c, 1, 2, c.Rank()*c.Rank())
			if err != nil {
				return err
			}
			if c.Rank() == 1 {
				for r, raw := range vs {
					if raw.(int) != r*r {
						return fmt.Errorf("gather[%d] = %v", r, raw)
					}
				}
			} else if vs != nil {
				return fmt.Errorf("non-root gather returned %v", vs)
			}
			// AllreduceInt32s (sum).
			mine := []int32{int32(c.Rank()), 1, int32(-c.Rank())}
			sum, err := AllreduceInt32s(c, 3, mine, SumInt32s)
			if err != nil {
				return err
			}
			want := []int32{0 + 1 + 2 + 3, 4, -(0 + 1 + 2 + 3)}
			for i := range want {
				if sum[i] != want[i] {
					return fmt.Errorf("allreduce[%d] = %d, want %d", i, sum[i], want[i])
				}
			}
			// Input must not be modified.
			if mine[0] != int32(c.Rank()) {
				return fmt.Errorf("allreduce mutated its input")
			}
			// AllreduceInt max.
			mx, err := AllreduceInt(c, 4, c.Rank()*7, MaxInt)
			if err != nil {
				return err
			}
			if mx != 21 {
				return fmt.Errorf("allreduce max = %d", mx)
			}
			// Alltoall: rank r sends r*10+dest to dest.
			out := make([]any, c.Size())
			for r := range out {
				out[r] = c.Rank()*10 + r
			}
			in, err := Alltoall(c, 5, out)
			if err != nil {
				return err
			}
			for r, raw := range in {
				if raw.(int) != r*10+c.Rank() {
					return fmt.Errorf("alltoall from %d = %v", r, raw)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestWorkerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	allModes(t, "error", func(t *testing.T, cfg Config) {
		cfg.Procs = 3
		_, err := cfg.Run(func(c Comm) error {
			if c.Rank() == 1 {
				return boom
			}
			// Other ranks block forever on a message rank 1 never sends;
			// the abort must release them.
			_, err := c.Recv(1, 9)
			return err
		})
		if err == nil {
			t.Fatal("expected error, got nil")
		}
		if !errors.Is(err, boom) && !strings.Contains(err.Error(), "rank 1 failed") {
			t.Fatalf("unexpected error: %v", err)
		}
	})
}

func TestVirtualDeadlockDetected(t *testing.T) {
	cfg := Config{Procs: 2, Mode: Virtual}
	_, err := cfg.Run(func(c Comm) error {
		// Both ranks receive first: classic deadlock.
		_, err := c.Recv(1-c.Rank(), 1)
		if err != nil {
			return err
		}
		return c.Send(1-c.Rank(), 1, 0)
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestVirtualBarrierAfterExitIsDeadlock(t *testing.T) {
	cfg := Config{Procs: 2, Mode: Virtual}
	_, err := cfg.Run(func(c Comm) error {
		if c.Rank() == 0 {
			return nil // exits immediately
		}
		return c.Barrier()
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestVirtualSingleRank(t *testing.T) {
	cfg := Config{Procs: 1, Mode: Virtual}
	elapsed, err := cfg.Run(func(c Comm) error {
		if c.Size() != 1 || c.Rank() != 0 {
			return fmt.Errorf("rank/size = %d/%d", c.Rank(), c.Size())
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Self-send works.
		if err := c.Send(0, 3, 42); err != nil {
			return err
		}
		got, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if got.(int) != 42 {
			return fmt.Errorf("self message = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 0 {
		t.Fatalf("negative simulated time %v", elapsed)
	}
}

func TestVirtualClockAdvancesWithCompute(t *testing.T) {
	cfg := Config{Procs: 2, Mode: Virtual}
	elapsed, err := cfg.Run(func(c Comm) error {
		if c.Rank() == 0 {
			// Busy-work long enough to dominate all comm costs.
			deadline := time.Now().Add(20 * time.Millisecond)
			x := 0
			for time.Now().Before(deadline) {
				x++
			}
			_ = x
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 20*time.Millisecond {
		t.Fatalf("simulated time %v should include rank 0's 20ms compute span", elapsed)
	}
}

func TestVirtualMessageCostModel(t *testing.T) {
	// With a pure-latency model, a ping-pong of n rounds must cost at
	// least n*latency of simulated time even though compute is ~0.
	model := CostModel{
		Name:    "latency-only",
		Latency: time.Millisecond,
	}
	const rounds = 10
	cfg := Config{Procs: 2, Mode: Virtual, Model: model}
	elapsed, err := cfg.Run(func(c Comm) error {
		other := 1 - c.Rank()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				if err := c.Send(other, 1, i); err != nil {
					return err
				}
				if _, err := c.Recv(other, 1); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(other, 1); err != nil {
					return err
				}
				if err := c.Send(other, 1, i); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * rounds * time.Millisecond; elapsed < want {
		t.Fatalf("simulated ping-pong time %v, want at least %v", elapsed, want)
	}
}

func TestVirtualBandwidthCharged(t *testing.T) {
	// A message of s encoded bytes at 1 MB/s must cost at least s
	// microseconds of simulated time (gob varint-packs the payload, so
	// derive the expectation from the actual encoded size).
	model := CostModel{Name: "slow", BytesPerSecond: 1e6}
	cfg := Config{Procs: 2, Mode: Virtual, Model: model}
	payload := make([]int32, 1<<18)
	size := payloadSize(payload)
	if size < 1<<17 {
		t.Fatalf("encoded size %d implausibly small for %d elements", size, len(payload))
	}
	want := time.Duration(float64(size) / 1e6 * float64(time.Second))
	elapsed, err := cfg.Run(func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, payload)
		}
		_, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < want {
		t.Fatalf("%d bytes at 1MB/s simulated as %v, want >= %v", size, elapsed, want)
	}
	if elapsed > 100*want {
		t.Fatalf("simulated time %v implausibly large (want about %v)", elapsed, want)
	}
}

func TestDMPSlowerThanSMP(t *testing.T) {
	run := func(model CostModel) time.Duration {
		cfg := Config{Procs: 4, Mode: Virtual, Model: model}
		elapsed, err := cfg.Run(func(c Comm) error {
			for i := 0; i < 20; i++ {
				if _, err := Allgather(c, i, []int32{1, 2, 3}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	smp := run(SMP())
	dmp := run(DMP())
	if dmp <= smp {
		t.Fatalf("DMP (%v) should simulate slower than SMP (%v) for the same traffic", dmp, smp)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{Procs: 0}).Run(func(Comm) error { return nil }); err == nil {
		t.Fatal("Procs=0 accepted")
	}
	if _, err := (Config{Procs: -3}).Run(func(Comm) error { return nil }); err == nil {
		t.Fatal("negative Procs accepted")
	}
	if _, err := (Config{Procs: 1, Mode: Mode(99)}).Run(func(Comm) error { return nil }); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestInvalidRanksRejected(t *testing.T) {
	allModes(t, "badrank", func(t *testing.T, cfg Config) {
		cfg.Procs = 2
		_, err := cfg.Run(func(c Comm) error {
			if err := c.Send(5, 1, 0); err == nil {
				return fmt.Errorf("send to rank 5 of 2 accepted")
			}
			if _, err := c.Recv(-1, 1); err == nil {
				return fmt.Errorf("recv from rank -1 accepted")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestPayloadSizeGrowsWithContent(t *testing.T) {
	small := payloadSize([]int32{1})
	big := payloadSize(make([]int32, 10000))
	if big <= small {
		t.Fatalf("payloadSize(10000 ints)=%d not larger than payloadSize(1 int)=%d", big, small)
	}
}

func TestVirtualElapsedIsMaxOverWorkers(t *testing.T) {
	// Rank 1 computes 3x longer; elapsed must reflect the slowest rank
	// even without any synchronization.
	cfg := Config{Procs: 2, Mode: Virtual}
	elapsed, err := cfg.Run(func(c Comm) error {
		d := 5 * time.Millisecond
		if c.Rank() == 1 {
			d = 15 * time.Millisecond
		}
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 15*time.Millisecond {
		t.Fatalf("elapsed %v < slowest worker's 15ms", elapsed)
	}
}

func TestCostModelTransfer(t *testing.T) {
	m := CostModel{Latency: 100, BytesPerSecond: 0}
	if m.transfer(1000) != 100 {
		t.Fatal("zero bandwidth should cost latency only")
	}
	m = CostModel{Latency: 0, BytesPerSecond: 1e9}
	if d := m.transfer(1e9); d != time.Second {
		t.Fatalf("1GB at 1GB/s = %v, want 1s", d)
	}
	// DMP must price every component at or above SMP.
	smp, dmp := SMP(), DMP()
	if dmp.Latency <= smp.Latency || dmp.BytesPerSecond >= smp.BytesPerSecond ||
		dmp.SendOverhead <= smp.SendOverhead || dmp.BarrierBase <= smp.BarrierBase {
		t.Fatal("DMP model should be uniformly more expensive than SMP")
	}
}

func TestModeString(t *testing.T) {
	if Virtual.String() != "virtual" || Inproc.String() != "inproc" || TCP.String() != "tcp" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should format")
	}
}

func TestVirtualSelfSendOrdering(t *testing.T) {
	cfg := Config{Procs: 1, Mode: Virtual}
	_, err := cfg.Run(func(c Comm) error {
		for i := 0; i < 10; i++ {
			if err := c.Send(0, 4, i); err != nil {
				return err
			}
		}
		for i := 0; i < 10; i++ {
			got, err := c.Recv(0, 4)
			if err != nil {
				return err
			}
			if got.(int) != i {
				return fmt.Errorf("self-send order broken at %d: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterScan(t *testing.T) {
	allModes(t, "rss", func(t *testing.T, cfg Config) {
		cfg.Procs = 4
		_, err := cfg.Run(func(c Comm) error {
			// Reduce (sum of rank squares at root 2).
			got, err := Reduce(c, 2, 1, c.Rank()*c.Rank(), func(a, b int) int { return a + b })
			if err != nil {
				return err
			}
			if c.Rank() == 2 && got != 0+1+4+9 {
				return fmt.Errorf("reduce = %d", got)
			}
			if c.Rank() != 2 && got != 0 {
				return fmt.Errorf("non-root reduce = %d", got)
			}
			// Scatter.
			var vs []any
			if c.Rank() == 1 {
				vs = []any{"a", "b", "c", "d"}
			}
			elem, err := Scatter(c, 1, 2, vs)
			if err != nil {
				return err
			}
			want := string(rune('a' + c.Rank()))
			if elem.(string) != want {
				return fmt.Errorf("scatter got %v, want %v", elem, want)
			}
			// Scan (inclusive prefix sum of ranks+1).
			pre, err := Scan(c, 3, c.Rank()+1, func(a, b int) int { return a + b })
			if err != nil {
				return err
			}
			wantSum := (c.Rank() + 1) * (c.Rank() + 2) / 2
			if pre != wantSum {
				return fmt.Errorf("scan = %d, want %d", pre, wantSum)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestScatterValidation(t *testing.T) {
	cfg := Config{Procs: 2, Mode: Virtual}
	_, err := cfg.Run(func(c Comm) error {
		if c.Rank() == 0 {
			_, err := Scatter(c, 0, 1, []any{1}) // wrong length
			if err == nil {
				return fmt.Errorf("short scatter accepted")
			}
			// Unblock rank 1.
			return c.Send(1, 1, 0)
		}
		_, err := Scatter(c, 0, 1, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
