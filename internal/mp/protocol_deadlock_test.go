package mp

// Dynamic confirmation for the parroutecheck mpproto rules: each pattern
// the static analyzer forbids (collective-congruence, tag-discipline,
// send-recv-pairing) is executed here on the virtual engine and shown to
// actually deadlock. Test files are outside the linter's loading scope,
// so the deliberate violations below need no //lint:allow annotations.

import (
	"errors"
	"testing"
	"time"
)

// protocolWatchdog bounds how long a deadlock demonstration may take: the
// virtual engine detects global deadlock itself, so cfg.Run must return
// quickly; if the engine ever regresses into a real hang, the watchdog
// fails the test instead of tripping the package timeout.
const protocolWatchdog = 10 * time.Second

// runWithWatchdog runs body under cfg and returns its error, failing the
// test if the engine does not resolve the protocol in time.
func runWithWatchdog(t *testing.T, cfg Config, body func(Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := cfg.Run(body)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(protocolWatchdog):
		t.Fatalf("watchdog: virtual engine did not resolve the protocol within %v", protocolWatchdog)
		return nil
	}
}

// TestVirtualRankGatedBarrierDeadlocks is the dynamic half of the seeded
// regression (testdata/src/seeded.Worker): a Barrier moved inside a
// c.Rank()==0 branch leaves rank 0 waiting for peers that already
// exited. collective-congruence catches this same shape statically.
func TestVirtualRankGatedBarrierDeadlocks(t *testing.T) {
	err := runWithWatchdog(t, Config{Procs: 4, Mode: Virtual}, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Barrier() // ranks 1..3 never enter
		}
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("rank-gated barrier: expected ErrDeadlock, got %v", err)
	}
}

// TestVirtualOrphanTagRecvDeadlocks shows why tag-discipline reports a
// tag with recv sites but no send sites: the Recv waits on a protocol
// stream nobody ever writes, even while traffic flows on other tags.
func TestVirtualOrphanTagRecvDeadlocks(t *testing.T) {
	const (
		tagUsed   = 7
		tagOrphan = 8 // no Send anywhere carries this tag
	)
	err := runWithWatchdog(t, Config{Procs: 2, Mode: Virtual}, func(c Comm) error {
		if c.Rank() == 1 {
			return c.Send(0, tagUsed, 1)
		}
		if _, err := c.Recv(1, tagUsed); err != nil {
			return err
		}
		_, err := c.Recv(1, tagOrphan) // blocks forever
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("orphan-tag recv: expected ErrDeadlock, got %v", err)
	}
}

// TestVirtualUnskippedSelfRecvLoopDeadlocks shows why send-recv-pairing
// demands the `if r == c.Rank() { continue }` guard in Size() loops: the
// send loop skips self, so the unguarded receive loop's self-Recv waits
// on a message that was never sent.
func TestVirtualUnskippedSelfRecvLoopDeadlocks(t *testing.T) {
	const tagRing = 9
	err := runWithWatchdog(t, Config{Procs: 3, Mode: Virtual}, func(c Comm) error {
		for r := 0; r < c.Size(); r++ {
			if r == c.Rank() {
				continue
			}
			if err := c.Send(r, tagRing, c.Rank()); err != nil {
				return err
			}
		}
		for r := 0; r < c.Size(); r++ {
			// Missing the self-skip guard: r == c.Rank() blocks.
			if _, err := c.Recv(r, tagRing); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("unskipped self-recv loop: expected ErrDeadlock, got %v", err)
	}
}
