package mp

import (
	"fmt"
	"testing"
)

// TestInprocCollectivesStress hammers the in-proc transport with N truly
// concurrent ranks exchanging every collective repeatedly. Its job is to
// give `go test -race ./internal/mp` real cross-goroutine traffic to
// inspect: mailbox delivery, the reusable barrier, and slice payload
// hand-off all run hot here. Every result is also verified, so it doubles
// as a correctness stress.
func TestInprocCollectivesStress(t *testing.T) {
	const (
		procs = 8
		iters = 25
		width = 16
	)
	cfg := Config{Procs: procs, Mode: Inproc}
	_, err := cfg.Run(func(c Comm) error {
		me := c.Rank()
		for it := 0; it < iters; it++ {
			// Allreduce: every rank contributes rank+iteration per column.
			own := make([]int32, width)
			for i := range own {
				own[i] = int32(me + it)
			}
			sum, err := AllreduceInt32s(c, 1, own, SumInt32s)
			if err != nil {
				return err
			}
			wantSum := int32(procs*it + procs*(procs-1)/2)
			for i, v := range sum {
				if v != wantSum {
					return fmt.Errorf("rank %d iter %d: allreduce[%d] = %d, want %d", me, it, i, v, wantSum)
				}
			}

			// Alltoall: rank r sends r*1000+dst to dst. Fresh payloads per
			// send: sent values belong to the receiver afterwards.
			vs := make([]any, procs)
			for dst := range vs {
				vs[dst] = me*1000 + dst
			}
			got, err := Alltoall(c, 2, vs)
			if err != nil {
				return err
			}
			for src, raw := range got {
				v, ok := raw.(int)
				if !ok || v != src*1000+me {
					return fmt.Errorf("rank %d iter %d: alltoall from %d = %v, want %d", me, it, src, raw, src*1000+me)
				}
			}

			// Bcast from a rotating root.
			root := it % procs
			word, err := Bcast(c, root, 3, fmt.Sprintf("it%d-root%d", it, root))
			if err != nil {
				return err
			}
			if want := fmt.Sprintf("it%d-root%d", it, root); word != want {
				return fmt.Errorf("rank %d iter %d: bcast = %v, want %q", me, it, word, want)
			}

			// Scan: inclusive prefix sum of the ranks.
			prefix, err := Scan(c, 4, me, func(a, b int) int { return a + b })
			if err != nil {
				return err
			}
			if want := me * (me + 1) / 2; prefix != want {
				return fmt.Errorf("rank %d iter %d: scan = %d, want %d", me, it, prefix, want)
			}

			// Gather at a rotating root, then a barrier before the next
			// round reuses the tags.
			all, err := Gather(c, root, 5, me)
			if err != nil {
				return err
			}
			if me == root {
				for r, raw := range all {
					if v, ok := raw.(int); !ok || v != r {
						return fmt.Errorf("rank %d iter %d: gather[%d] = %v", me, it, r, raw)
					}
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
