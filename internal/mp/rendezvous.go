package mp

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Multi-process TCP: the same framed transport as the loopback engine,
// but each rank is its own OS process and the mesh forms through a
// rank-zero rendezvous.
//
// Rank 0 binds the configured address. Every other rank dials it
// (retrying while rank 0 comes up), opens its own mesh listener, and
// introduces itself with a hello frame carrying its rank, its listener
// address, and the build's WireProtocolChecksum. Once all ranks have
// checked in, rank 0 replies to each with the full address table; the
// rendezvous connections themselves become the 0<->r mesh links, and the
// remaining links form the loopback engine's way (rank i dials every
// j > i at the table address, introducing itself with a hello).
//
// Teardown is the part that differs from the loopback engine, where a
// global WaitGroup separates "all ranks done" from "close the sockets".
// Across processes there is no such join, so a successful run ends with
// a two-phase shutdown on the reserved tagShutdown: barrier #1 proves
// every rank's worker returned without error; each rank then marks
// itself closing (so arriving EOFs read as teardown, not rank loss) and
// enters barrier #2, which proves every rank is marked; only then are
// connections closed. A rank whose worker failed skips the barriers and
// tears down immediately — its peers' readLoops are not yet closing, so
// they correctly attribute the dropped connections to a lost rank.

// NetConfig places one process at a rank of a multi-process TCP mesh.
// Every cooperating process must run the same binary build (the
// rendezvous verifies WireProtocolChecksum) with the same Ranks and Addr
// and a distinct Rank.
type NetConfig struct {
	// Rank is this process's rank in [0, Ranks).
	Rank int
	// Ranks is the total number of cooperating processes.
	Ranks int
	// Addr is the rendezvous address: rank 0 binds it, every other rank
	// dials it. Host:port; the host also picks the interface the other
	// ranks' mesh listeners bind.
	Addr string
	// RendezvousTimeout bounds mesh formation end to end — dialing rank 0
	// while it starts up, collecting hellos, distributing the table, and
	// forming the remaining links. Zero means 60s.
	RendezvousTimeout time.Duration
}

func (c NetConfig) validate() error {
	if c.Ranks <= 0 {
		return fmt.Errorf("mp: net: Ranks must be positive, got %d", c.Ranks)
	}
	if c.Rank < 0 || c.Rank >= c.Ranks {
		return fmt.Errorf("mp: net: Rank %d out of [0, %d)", c.Rank, c.Ranks)
	}
	if c.Addr == "" && c.Ranks > 1 {
		return fmt.Errorf("mp: net: Addr required for %d ranks", c.Ranks)
	}
	return nil
}

func (c NetConfig) rendezvousTimeout() time.Duration {
	if c.RendezvousTimeout > 0 {
		return c.RendezvousTimeout
	}
	return 60 * time.Second
}

// netEngine runs the local rank of a multi-process mesh. Unlike the
// other engines it executes fn exactly once, at cfg.Rank; procs must
// match cfg.Ranks so algorithm code sees the Comm size it asked for.
type netEngine struct {
	cfg     NetConfig
	lim     Limits
	gobWire bool
}

func (e netEngine) Run(ctx context.Context, procs int, fn func(Comm) error) (time.Duration, error) {
	if procs != e.cfg.Ranks {
		return 0, fmt.Errorf("mp: net: %d procs requested but the mesh has %d ranks", procs, e.cfg.Ranks)
	}
	start := time.Now() //lint:allow nondeterminism elapsed-time measurement, never a routing decision
	err := runTCPNet(ctx, e.cfg, e.lim, e.gobWire, fn)
	return time.Since(start), err //lint:allow nondeterminism elapsed-time measurement, never a routing decision
}

func runTCPNet(ctx context.Context, cfg NetConfig, lim Limits, gobWire bool, fn func(Comm) error) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	n := cfg.Ranks
	m := newTMachine(n, lim, gobWire, func(r int) bool { return r == cfg.Rank })
	stop := context.AfterFunc(ctx, func() { m.abort(cancelCause(ctx)) })
	defer stop()

	conns, err := formMesh(ctx, cfg, lim)
	if err != nil {
		closeConns(conns)
		return err
	}
	for peer, conn := range conns {
		if conn != nil {
			registerConn(m, cfg.Rank, peer, conn)
		}
	}
	var wgRead sync.WaitGroup
	for peer := 0; peer < n; peer++ {
		p := m.peers[cfg.Rank][peer]
		if p == nil {
			continue
		}
		wgRead.Add(1)
		go func(peer int, conn net.Conn) {
			defer wgRead.Done()
			m.readLoop(cfg.Rank, peer, conn)
		}(peer, p.conn)
	}

	c := &tComm{m: m, rank: cfg.Rank}
	err = fn(c)
	if err == nil {
		err = shutdown(c, m)
	}
	if err != nil {
		m.abort(fmt.Errorf("mp: rank %d failed: %w", cfg.Rank, err))
	}
	m.closeAll()
	wgRead.Wait()
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		return cancelCause(ctx)
	}
	return nil
}

// shutdown is the two-phase termination protocol described at the top of
// this file. When barrier #2 returns, every rank has set closing, so the
// caller's closeAll drops connections that every peer reads as teardown.
func shutdown(c *tComm, m *tMachine) error {
	if err := c.barrierOn(tagShutdown); err != nil {
		return fmt.Errorf("mp: shutdown barrier: %w", err)
	}
	m.setClosing()
	if err := c.barrierOn(tagShutdown); err != nil {
		return fmt.Errorf("mp: shutdown release: %w", err)
	}
	return nil
}

func closeConns(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// formMesh returns this rank's connection to every peer (nil for self).
// On error the caller closes whatever was returned.
func formMesh(ctx context.Context, cfg NetConfig, lim Limits) ([]net.Conn, error) {
	n := cfg.Ranks
	conns := make([]net.Conn, n)
	if n == 1 {
		return conns, nil
	}
	deadline := time.Now().Add(cfg.rendezvousTimeout()) //lint:allow nondeterminism transport deadline, never a routing decision
	hs := lim.handshakeTimeout()

	if cfg.Rank == 0 {
		l, err := net.Listen("tcp", cfg.Addr)
		if err != nil {
			return conns, fmt.Errorf("mp: rendezvous: listen %s: %w", cfg.Addr, err)
		}
		defer l.Close()
		addrs, err := collectHellos(l, conns, deadline, hs)
		if err != nil {
			return conns, err
		}
		table := appendTable(nil, addrTable{Checksum: WireProtocolChecksum, Addrs: addrs})
		for r := 1; r < n; r++ {
			if err := writeConnFrame(conns[r], table, hs); err != nil {
				return conns, fmt.Errorf("mp: rendezvous: send table to rank %d: %w", r, err)
			}
		}
		return conns, nil
	}

	// Rank r > 0: dial rank 0 (retrying while it comes up), advertise a
	// fresh mesh listener on the same interface, and learn where everyone
	// else accepts.
	rc, err := dialRetry(ctx, cfg.Addr, deadline)
	if err != nil {
		return conns, err
	}
	conns[0] = rc
	host, _, err := net.SplitHostPort(rc.LocalAddr().String())
	if err != nil {
		return conns, fmt.Errorf("mp: rendezvous: local address %q: %w", rc.LocalAddr(), err)
	}
	l, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return conns, fmt.Errorf("mp: rendezvous: mesh listener: %w", err)
	}
	defer l.Close()
	if err := sendHello(rc, cfg.Rank, l.Addr().String(), hs); err != nil {
		return conns, fmt.Errorf("mp: rendezvous: hello to rank 0: %w", err)
	}
	// The table arrives only after every rank has checked in, so this
	// read waits out the whole rendezvous window, not one handshake slot.
	body, err := readConnFrame(rc, time.Until(deadline)) //lint:allow nondeterminism transport deadline, never a routing decision
	if err != nil {
		return conns, fmt.Errorf("mp: rendezvous: read table: %w", err)
	}
	table, err := decodeTable(body)
	if err != nil {
		return conns, fmt.Errorf("mp: rendezvous: table: %w", err)
	}
	if table.Checksum != WireProtocolChecksum {
		return conns, fmt.Errorf("mp: rendezvous: protocol checksum mismatch: rank 0 built against %#016x, this build has %#016x", table.Checksum, WireProtocolChecksum)
	}
	if len(table.Addrs) != n {
		return conns, fmt.Errorf("mp: rendezvous: table has %d addresses for %d ranks", len(table.Addrs), n)
	}

	// Mesh links among ranks 1..n-1, the loopback engine's way: accept
	// from every lower rank, then dial every higher one. Dials only start
	// after this rank's own accepts complete, and rank 1 has none, so the
	// chain makes progress without a goroutine per link.
	if err := setListenerDeadline(l, deadline); err != nil {
		return conns, err
	}
	for k := 1; k < cfg.Rank; k++ {
		conn, err := l.Accept()
		if err != nil {
			return conns, fmt.Errorf("mp: rendezvous: accept on rank %d: %w", cfg.Rank, err)
		}
		h, err := recvHello(conn, hs)
		if err != nil {
			conn.Close()
			return conns, fmt.Errorf("mp: rendezvous: handshake on rank %d: %w", cfg.Rank, err)
		}
		if h.Rank < 1 || h.Rank >= cfg.Rank || conns[h.Rank] != nil {
			conn.Close()
			return conns, fmt.Errorf("mp: rendezvous: unexpected hello from rank %d on rank %d", h.Rank, cfg.Rank)
		}
		conns[h.Rank] = conn
	}
	d := net.Dialer{Deadline: deadline}
	for j := cfg.Rank + 1; j < n; j++ {
		conn, err := d.DialContext(ctx, "tcp", table.Addrs[j])
		if err != nil {
			return conns, fmt.Errorf("mp: rendezvous: dial rank %d at %s: %w", j, table.Addrs[j], err)
		}
		conns[j] = conn
		if err := sendHello(conn, cfg.Rank, "", hs); err != nil {
			return conns, fmt.Errorf("mp: rendezvous: hello %d->%d: %w", cfg.Rank, j, err)
		}
	}
	return conns, nil
}

// collectHellos accepts and verifies the n-1 check-ins at rank 0,
// recording each rank's mesh listen address and keeping the connection
// as the 0<->rank mesh link. Every read is deadline-bounded: a dialer
// that connects and never writes, a duplicate rank, or a checksum
// mismatch fails the rendezvous rather than parking it forever.
func collectHellos(l net.Listener, conns []net.Conn, deadline time.Time, hs time.Duration) ([]string, error) {
	n := len(conns)
	addrs := make([]string, n)
	for got := 0; got < n-1; got++ {
		if err := setListenerDeadline(l, deadline); err != nil {
			return nil, err
		}
		conn, err := l.Accept()
		if err != nil {
			return nil, fmt.Errorf("mp: rendezvous: waiting for %d more rank(s): %w", n-1-got, err)
		}
		h, err := recvHello(conn, hs)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("mp: rendezvous: handshake: %w", err)
		}
		if h.Rank < 1 || h.Rank >= n {
			conn.Close()
			return nil, fmt.Errorf("mp: rendezvous: hello from rank %d of %d", h.Rank, n)
		}
		if conns[h.Rank] != nil {
			conn.Close()
			return nil, fmt.Errorf("mp: rendezvous: rank %d checked in twice", h.Rank)
		}
		if h.Addr == "" {
			conn.Close()
			return nil, fmt.Errorf("mp: rendezvous: rank %d advertised no mesh address", h.Rank)
		}
		conns[h.Rank] = conn
		addrs[h.Rank] = h.Addr
	}
	return addrs, nil
}

func setListenerDeadline(l net.Listener, deadline time.Time) error {
	tl, ok := l.(*net.TCPListener)
	if !ok {
		return fmt.Errorf("mp: rendezvous: listener %T cannot set a deadline", l)
	}
	if err := tl.SetDeadline(deadline); err != nil {
		return fmt.Errorf("mp: rendezvous: arm accept deadline: %w", err)
	}
	return nil
}

// dialRetry dials addr until it answers or the deadline passes. Rank 0
// may start after its peers, so refusals back off and retry instead of
// failing the run.
func dialRetry(ctx context.Context, addr string, deadline time.Time) (net.Conn, error) {
	d := net.Dialer{Deadline: deadline}
	wait := 5 * time.Millisecond
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, cancelCause(ctx)
		}
		if !time.Now().Before(deadline) { //lint:allow nondeterminism transport deadline, never a routing decision
			return nil, fmt.Errorf("mp: rendezvous: dial %s: gave up after the rendezvous window: %w (%w)", addr, err, ErrDeadline)
		}
		idle(wait)
		if wait < 500*time.Millisecond {
			wait *= 2
		}
	}
}
