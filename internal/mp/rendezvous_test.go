package mp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// meshAddr reserves a loopback rendezvous address: bind, record, release.
func meshAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// runMesh executes fn at every rank of an n-rank mesh, one goroutine per
// rank standing in for one OS process: each builds its own engine from
// its own Config, exactly as n separate twgr processes would.
func runMesh(t *testing.T, n int, cfg Config, fn func(Comm) error) []error {
	t.Helper()
	addr := meshAddr(t)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := cfg
			c.Procs = n
			c.Mode = TCP
			c.Net = &NetConfig{Rank: r, Ranks: n, Addr: addr, RendezvousTimeout: 20 * time.Second}
			_, errs[r] = c.Run(fn)
		}(r)
	}
	wg.Wait()
	return errs
}

// meshWorker exercises point-to-point FIFO, a ring pass, collectives and
// barriers — the traffic mix the routing algorithms generate.
func meshWorker(c Comm) error {
	next := (c.Rank() + 1) % c.Size()
	prev := (c.Rank() + c.Size() - 1) % c.Size()
	if c.Rank() == 0 {
		if err := c.Send(next, 1, 1); err != nil {
			return err
		}
	}
	got, err := c.Recv(prev, 1)
	if err != nil {
		return err
	}
	token := got.(int)
	if c.Rank() == 0 {
		if token != c.Size() {
			return fmt.Errorf("ring token = %d, want %d", token, c.Size())
		}
	} else if err := c.Send(next, 1, token+1); err != nil {
		return err
	}

	for phase := 0; phase < 3; phase++ {
		vs, err := Allgather(c, 10+phase, c.Rank()*100+phase)
		if err != nil {
			return err
		}
		for r, raw := range vs {
			if raw.(int) != r*100+phase {
				return fmt.Errorf("phase %d: rank %d contributed %v", phase, r, raw)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
	}

	// A FIFO burst 0->last, interleaved with everyone's barrier traffic.
	last := c.Size() - 1
	const burst = 30
	if c.Rank() == 0 {
		for i := 0; i < burst; i++ {
			if err := c.Send(last, 7, i); err != nil {
				return err
			}
		}
	}
	if c.Rank() == last {
		for i := 0; i < burst; i++ {
			got, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if got.(int) != i {
				return fmt.Errorf("burst message %d arrived as %v: FIFO violated", i, got)
			}
		}
	}
	return c.Barrier()
}

func TestNetMeshRoutesTraffic(t *testing.T) {
	for r, err := range runMesh(t, 3, Config{}, meshWorker) {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestNetMeshGobWire(t *testing.T) {
	// The same traffic with every payload forced through the gob fallback
	// — the benchmark baseline must stay a correct transport.
	for r, err := range runMesh(t, 3, Config{GobWire: true}, meshWorker) {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestNetSingleRank(t *testing.T) {
	// Ranks=1 needs no rendezvous address and no sockets at all.
	cfg := Config{Procs: 1, Mode: TCP, Net: &NetConfig{Rank: 0, Ranks: 1}}
	_, err := cfg.Run(func(c Comm) error {
		if c.Size() != 1 || c.Rank() != 0 {
			return fmt.Errorf("rank/size = %d/%d", c.Rank(), c.Size())
		}
		if err := c.Send(0, 3, 42); err != nil {
			return err
		}
		got, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if got.(int) != 42 {
			return fmt.Errorf("self message = %v", got)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNetWorkerErrorReadAsRankLoss(t *testing.T) {
	// A failing rank skips the shutdown barriers and drops its
	// connections; its peers — blocked on messages it will never send —
	// must come back with ErrRankLost, the signal parallel.Run degrades on.
	boom := errors.New("boom")
	errs := runMesh(t, 3, Config{}, func(c Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		_, err := c.Recv(1, 9)
		return err
	})
	if !errors.Is(errs[1], boom) {
		t.Errorf("rank 1 returned %v, want its own error", errs[1])
	}
	for _, r := range []int{0, 2} {
		if !errors.Is(errs[r], ErrRankLost) {
			t.Errorf("rank %d returned %v, want ErrRankLost", r, errs[r])
		}
	}
}

func TestNetChaosCrashSeenAcrossProcesses(t *testing.T) {
	// Chaos composes with the mesh: each process wraps its own rank, and a
	// planned crash at one rank must surface as ErrRankLost at every other
	// process through real socket teardown.
	plan := Plan{Crash: map[int]int{1: 2}}
	errs := runMesh(t, 3, Config{Chaos: &plan}, func(c Comm) error {
		for i := 0; i < 4; i++ {
			if _, err := Allgather(c, i, c.Rank()); err != nil {
				return err
			}
		}
		return nil
	})
	for r, err := range errs {
		if !errors.Is(err, ErrRankLost) {
			t.Errorf("rank %d returned %v, want ErrRankLost", r, err)
		}
	}
}

func TestNetRendezvousDeadline(t *testing.T) {
	// Nothing ever binds the rendezvous address: dialing must give up at
	// the window's end with ErrDeadline, not retry forever.
	cfg := Config{Procs: 2, Mode: TCP, Net: &NetConfig{
		Rank: 1, Ranks: 2, Addr: meshAddr(t), RendezvousTimeout: 300 * time.Millisecond,
	}}
	start := time.Now()
	_, err := cfg.Run(func(Comm) error { return nil })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("rendezvous without rank 0 = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("rendezvous gave up after %v; the window was 300ms", elapsed)
	}
}

func TestNetRendezvousCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	cfg := Config{Procs: 2, Mode: TCP, Net: &NetConfig{Rank: 1, Ranks: 2, Addr: meshAddr(t)}}
	_, err := cfg.RunContext(ctx, func(Comm) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rendezvous = %v, want context.Canceled", err)
	}
}

// TestRendezvousStalledDialerFails: rank 0's hello collection is the
// accept-side twin of the handshake watchdog — a client that connects and
// never introduces itself must fail the rendezvous, not park it.
func TestRendezvousStalledDialerFails(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		conns := make([]net.Conn, 2)
		_, err := collectHellos(l, conns, time.Now().Add(30*time.Second), 100*time.Millisecond)
		closeConns(conns)
		done <- err
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() // connected, but never writes a hello
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("rendezvous accepted a silent client")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("a silent client parked the rendezvous")
	}
}

func TestNetConfigValidation(t *testing.T) {
	if _, err := (Config{Procs: 2, Mode: Inproc, Net: &NetConfig{Rank: 0, Ranks: 2, Addr: "x:1"}}).
		Run(func(Comm) error { return nil }); err == nil {
		t.Error("Net accepted off the TCP engine")
	}
	// Procs is the Comm size algorithm code asked for; it must match the
	// mesh instead of being silently overridden.
	if _, err := (Config{Procs: 3, Mode: TCP, Net: &NetConfig{Rank: 0, Ranks: 2, Addr: "x:1"}}).
		Run(func(Comm) error { return nil }); err == nil || !strings.Contains(err.Error(), "ranks") {
		t.Errorf("procs/ranks mismatch accepted: %v", err)
	}
	bad := []NetConfig{
		{Rank: 0, Ranks: 0},
		{Rank: 2, Ranks: 2, Addr: "x:1"},
		{Rank: -1, Ranks: 2, Addr: "x:1"},
		{Rank: 0, Ranks: 2}, // no Addr
	}
	for _, nc := range bad {
		if err := nc.validate(); err == nil {
			t.Errorf("NetConfig %+v accepted", nc)
		}
	}
}
