package mp

import (
	"time"

	"parroute/internal/rng"
)

// Retry pacing for the chaos engine's at-least-once delivery: a dropped
// message is resent after an exponentially growing pause with equal
// jitter. The jitter is drawn from the link's own deterministic RNG
// stream, so for a fixed plan seed the whole retry schedule — like every
// other injected fault — is byte-reproducible.

// backoff returns the pause before retry `attempt` (0-based): base*2^attempt
// capped at cap, half of it deterministic and half jittered. A non-positive
// base disables pausing entirely.
func backoff(r *rng.RNG, base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if cap > 0 && d > cap {
		d = cap
	}
	half := d / 2
	return half + time.Duration(r.Float64()*float64(half))
}

// idle parks the calling worker for d of real time. Under the virtual
// engine this charges the pause to the worker's measured compute span —
// simulated time moves, and no routing decision ever reads a clock, so
// determinism of results is unaffected.
func idle(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}
