package mp

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP engine gives every rank a loopback listener and a full mesh of
// framed connections — the "distributed memory machine" deployment shape,
// with real serialization and kernel round trips on every message. Frames
// carry the generated parroute-mpwire/1 codecs (see frame.go); gob only
// appears as the wire-id-0 fallback for unregistered payloads. Barriers
// are built from point-to-point messages (gather to rank 0, then release)
// on the reserved tagBarrier, so the whole engine needs nothing beyond
// sockets. The same machine also runs with a single local rank under the
// multi-process rendezvous engine (see rendezvous.go).

type tComm struct {
	m    *tMachine
	rank int
}

type tMachine struct {
	n       int
	lim     Limits
	gobWire bool       // force the gob fallback inside frames (benchmarks)
	boxes   []*mailbox // nil for ranks that live in another process
	peers   [][]*tPeer // [rank][peer]; only local ranks' rows are populated

	mu      sync.Mutex
	aborted error
	closing bool   // end-of-run teardown in progress
	lost    []bool // ranks whose connections died mid-run
}

// newTMachine builds the shared state for n ranks. locals marks which
// ranks run in this process: the loopback engine owns all of them, the
// rendezvous engine exactly one.
func newTMachine(n int, lim Limits, gobWire bool, locals func(rank int) bool) *tMachine {
	m := &tMachine{n: n, lim: lim, gobWire: gobWire, boxes: make([]*mailbox, n), peers: make([][]*tPeer, n), lost: make([]bool, n)}
	for i := 0; i < n; i++ {
		if locals(i) {
			m.boxes[i] = newMailbox()
			m.peers[i] = make([]*tPeer, n)
		}
	}
	return m
}

// tPeer is one directed view of a connection: the socket plus a reusable
// frame-encoding buffer, guarded by a mutex. nil for self. dead marks a
// stream that failed mid-write — a partial frame may be on the wire, so
// the connection must never carry another send.
type tPeer struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
	dead bool
}

func runTCP(ctx context.Context, n int, lim Limits, gobWire bool, fn func(Comm) error) error {
	m := newTMachine(n, lim, gobWire, func(int) bool { return true })
	// Cancellation rides the abort machinery: blocked mailbox waits are
	// released with an error wrapping ctx.Err(); unblocked ranks fail at
	// their next Send/Recv. A Send stalled inside a socket write is
	// additionally bounded by Limits.SendTimeout. Registered only after
	// the machine is fully built: an already-cancelled ctx fires the
	// watcher synchronously on another goroutine.
	stop := context.AfterFunc(ctx, func() { m.abort(cancelCause(ctx)) })
	defer stop()

	// Every rank listens; rank i dials every j > i and introduces itself
	// with a framed hello.
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeListeners(listeners)
			return fmt.Errorf("mp: listen for rank %d: %w", i, err)
		}
		listeners[i] = l
	}
	defer closeListeners(listeners)

	var connMu sync.Mutex
	var connErr error
	var wgConn sync.WaitGroup
	// fail records the first setup error and closes every listener so no
	// accept goroutine stays parked in Accept waiting for a connection
	// that will never arrive (a failed dialer would otherwise hang
	// wgConn.Wait forever). closeListeners ignores close errors, so the
	// deferred second close is harmless.
	fail := func(err error) {
		setErr(&connMu, &connErr, err)
		closeListeners(listeners)
	}
	// Accept side: rank j accepts n-1-j connections (from every i < j).
	// The hello read is bounded by the handshake timeout, so a dialer
	// that connects and then goes silent fails the setup instead of
	// parking this goroutine forever.
	for j := 1; j < n; j++ {
		wgConn.Add(1)
		go func(j int) {
			defer wgConn.Done()
			for k := 0; k < j; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					fail(fmt.Errorf("mp: accept on rank %d: %w", j, err))
					return
				}
				h, err := recvHello(conn, m.lim.handshakeTimeout())
				if err != nil {
					conn.Close()
					fail(fmt.Errorf("mp: handshake on rank %d: %w", j, err))
					return
				}
				registerConn(m, j, h.Rank, conn)
			}
		}(j)
	}
	// Dial side.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			wgConn.Add(1)
			go func(i, j int) {
				defer wgConn.Done()
				conn, err := net.Dial("tcp", listeners[j].Addr().String())
				if err != nil {
					fail(fmt.Errorf("mp: dial %d->%d: %w", i, j, err))
					return
				}
				if err := sendHello(conn, i, "", m.lim.handshakeTimeout()); err != nil {
					conn.Close()
					fail(fmt.Errorf("mp: handshake %d->%d: %w", i, j, err))
					return
				}
				registerConn(m, i, j, conn)
			}(i, j)
		}
	}
	wgConn.Wait()
	if connErr != nil {
		m.closeAll()
		return connErr
	}

	// Reader pumps: one per (rank, peer) connection.
	var wgRead sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		for peer := 0; peer < n; peer++ {
			p := m.peers[rank][peer]
			if p == nil {
				continue
			}
			wgRead.Add(1)
			go func(rank, peer int, conn net.Conn) {
				defer wgRead.Done()
				m.readLoop(rank, peer, conn)
			}(rank, peer, p.conn)
		}
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(rank int) {
			defer wg.Done()
			err := fn(&tComm{m: m, rank: rank})
			errs[rank] = err
			if err != nil {
				m.abort(fmt.Errorf("mp: rank %d failed: %w", rank, err))
			}
		}(i)
	}
	wg.Wait()
	m.closeAll()
	wgRead.Wait()
	if err := firstErr(errs); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return cancelCause(ctx)
	}
	return nil
}

func setErr(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	defer mu.Unlock()
	if *dst == nil {
		*dst = err
	}
}

func closeListeners(ls []net.Listener) {
	for _, l := range ls {
		if l != nil {
			l.Close()
		}
	}
}

// registerConn installs owner's endpoint of its connection to peer. Each
// side of a TCP connection registers its own endpoint: owner writes to it
// in Send and reads from it in readLoop.
func registerConn(m *tMachine, owner, peer int, conn net.Conn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers[owner][peer] = &tPeer{conn: conn}
}

// readLoop decodes frames arriving on conn for the given local rank. A
// mid-run read or decode failure means the peer's endpoint died, so the
// peer is marked lost and every blocked rank is released with
// ErrRankLost. That includes a clean EOF: closing is always set before
// any orderly teardown closes a connection (closeAll here, and across
// processes barrier #2 of the shutdown protocol proves every rank is
// marked before any closes), so an EOF while not closing is a peer that
// went away mid-run — exactly how a failed peer process looks, since its
// own closeAll sends a clean FIN. After an abort, arriving envelopes are
// dropped instead of queued: nothing will ever drain the mailbox again,
// so appending would only grow the queue unboundedly while the run
// unwinds.
func (m *tMachine) readLoop(rank, peer int, conn net.Conn) {
	r := bufio.NewReader(conn)
	var scratch []byte
	for {
		body, err := readFrame(r, scratch)
		if err != nil {
			if !m.isClosing() && m.abortErr() == nil {
				m.markLost(peer)
				m.abort(fmt.Errorf("mp: rank %d lost its connection to rank %d (%w): %w", rank, peer, err, ErrRankLost))
			}
			return
		}
		scratch = body
		src, tag, v, err := decodeFrameBody(body)
		if err != nil {
			if !m.isClosing() && m.abortErr() == nil {
				m.markLost(peer)
				m.abort(fmt.Errorf("mp: rank %d: corrupt frame from rank %d (%w): %w", rank, peer, err, ErrRankLost))
			}
			return
		}
		if m.abortErr() != nil {
			continue // drain the socket, but keep the dead run's queue bounded
		}
		b := m.boxes[rank]
		b.mu.Lock()
		b.queue = append(b.queue, envelope{src: src, tag: tag, v: v})
		b.mu.Unlock()
		b.cond.Broadcast()
	}
}

func (m *tMachine) markLost(rank int) {
	m.mu.Lock()
	m.lost[rank] = true
	m.mu.Unlock()
}

func (m *tMachine) isLost(rank int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lost[rank]
}

func (m *tMachine) isClosing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closing
}

// setClosing marks the orderly end of a run before any connection is
// closed, so readLoops attribute the coming EOFs to teardown, not loss.
func (m *tMachine) setClosing() {
	m.mu.Lock()
	m.closing = true
	m.mu.Unlock()
}

// injectCrash makes this rank die from its peers' point of view: it is
// marked lost first (so error paths already attribute failures to a dead
// rank, not a stray socket error), then all of its connections are torn
// down, which kills the read pumps on both sides. Used by the chaos
// engine; safe to call more than once because net.Conn.Close is.
func (c *tComm) injectCrash() {
	m := c.m
	m.markLost(c.rank)
	m.mu.Lock()
	conns := make([]net.Conn, 0, m.n)
	for _, p := range m.peers[c.rank] {
		if p != nil && p.conn != nil {
			conns = append(conns, p.conn)
		}
	}
	m.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

func (m *tMachine) abort(err error) {
	m.mu.Lock()
	if m.aborted == nil {
		m.aborted = err
	}
	m.mu.Unlock()
	for _, b := range m.boxes {
		if b != nil {
			b.cond.Broadcast()
		}
	}
}

func (m *tMachine) abortErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aborted
}

func (m *tMachine) closeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closing = true
	for i := range m.peers {
		for j := range m.peers[i] {
			if p := m.peers[i][j]; p != nil && p.conn != nil {
				p.conn.Close()
			}
		}
	}
}

func (c *tComm) Rank() int { return c.rank }
func (c *tComm) Size() int { return c.m.n }

func (c *tComm) Send(to, tag int, v any) error {
	if to < 0 || to >= c.m.n {
		return fmt.Errorf("mp: send to rank %d of %d", to, c.m.n)
	}
	if err := c.m.abortErr(); err != nil {
		return err
	}
	if c.m.isLost(to) {
		return fmt.Errorf("mp: send %d->%d: %w", c.rank, to, ErrRankLost)
	}
	if to == c.rank {
		b := c.m.boxes[c.rank]
		b.mu.Lock()
		b.queue = append(b.queue, envelope{src: c.rank, tag: tag, v: v})
		b.mu.Unlock()
		b.cond.Broadcast()
		return nil
	}
	p := c.m.peers[c.rank][to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		// An earlier write on this connection failed partway through; the
		// stream may hold half a frame, so reusing it would feed the peer
		// garbage it misattributes. The peer was marked lost then.
		return fmt.Errorf("mp: send %d->%d: connection already failed: %w", c.rank, to, ErrRankLost)
	}
	frame, err := appendFrame(p.buf[:0], c.rank, tag, v, c.m.gobWire) //lint:allow lock-across-blocking encodes into the peer's in-memory scratch buffer; per-peer serialization is the framing invariant
	if err != nil {
		// Encoding failed before any byte reached the socket; the stream
		// is still clean and the connection stays usable.
		return fmt.Errorf("mp: send %d->%d: %w", c.rank, to, err)
	}
	p.buf = frame
	if d := c.m.lim.SendTimeout; d > 0 {
		deadline := time.Now().Add(d) //lint:allow nondeterminism transport deadline, never a routing decision
		if err := p.conn.SetWriteDeadline(deadline); err != nil {
			// Arming the deadline only fails on a dead socket (e.g. the
			// peer crashed and closed it); ignoring it would start an
			// unbounded write.
			p.dead = true
			return c.sendFailed(p, to, err)
		}
		defer p.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := p.conn.Write(frame); err != nil { //lint:allow lock-across-blocking per-peer write serialization is the framing invariant; the write deadline set above bounds the stall when SendTimeout is configured
		// Any failed write may have left a partial frame on the wire, so
		// the connection is dead from here on — never reused.
		p.dead = true
		return c.sendFailed(p, to, err)
	}
	return nil
}

// sendFailed attributes a failed send on a now-dead connection: a dead
// peer beats a raw socket error, and a stalled write past its deadline is
// a deadline miss. In every case the peer is marked lost — the stream to
// it cannot carry another frame — unless this rank itself is the one
// that crashed (then the peer is fine; blaming it would misdirect the
// survivors' degradation).
func (c *tComm) sendFailed(p *tPeer, to int, err error) error {
	if c.m.isLost(to) || c.m.isLost(c.rank) {
		return fmt.Errorf("mp: send %d->%d: %w: %w", c.rank, to, err, ErrRankLost)
	}
	c.m.markLost(to)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		if c.m.lim.Counters != nil {
			c.m.lim.Counters.DeadlineMisses.Add(1)
		}
		return fmt.Errorf("mp: send %d->%d: write stalled past %v: %w", c.rank, to, c.m.lim.SendTimeout, ErrDeadline)
	}
	return fmt.Errorf("mp: send %d->%d: %w", c.rank, to, err)
}

func (c *tComm) Recv(from, tag int) (any, error) {
	if from < 0 || from >= c.m.n {
		return nil, fmt.Errorf("mp: recv from rank %d of %d", from, c.m.n)
	}
	return c.m.boxes[c.rank].recvMatch(from, tag, c.m.lim.RecvTimeout, c.m.abortErr, c.m.lim.Counters)
}

// Barrier gathers a token at rank 0 and releases everyone — all message
// traffic, so it works identically over sockets.
func (c *tComm) Barrier() error { return c.barrierOn(tagBarrier) }

// barrierOn is the gather/release barrier on an engine-reserved tag; the
// rendezvous engine's shutdown protocol runs it on tagShutdown so its
// tokens can never interleave with a user-level barrier's.
func (c *tComm) barrierOn(tag int) error {
	if c.m.n == 1 {
		return nil
	}
	if c.rank == 0 {
		for r := 1; r < c.m.n; r++ {
			if _, err := c.Recv(r, tag); err != nil {
				return err
			}
		}
		for r := 1; r < c.m.n; r++ {
			if err := c.Send(r, tag, true); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, tag, true); err != nil {
		return err
	}
	_, err := c.Recv(0, tag)
	return err
}
