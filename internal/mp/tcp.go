package mp

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
)

// The TCP engine gives every rank a loopback listener and a full mesh of
// gob-encoded connections — the "distributed memory machine" deployment
// shape, with real serialization and kernel round trips on every message.
// Barriers are built from point-to-point messages (gather to rank 0, then
// release), so the whole engine needs nothing beyond sockets.

const barrierTag = -2

type tComm struct {
	m    *tMachine
	rank int
}

type tMachine struct {
	n     int
	boxes []*mailbox
	peers [][]*tPeer // [rank][peer]

	mu      sync.Mutex
	aborted error
}

// tPeer is one directed view of a connection: an encoder guarded by a
// mutex. nil for self.
type tPeer struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

func runTCP(n int, fn func(Comm) error) error {
	m := &tMachine{n: n, boxes: make([]*mailbox, n), peers: make([][]*tPeer, n)}
	for i := 0; i < n; i++ {
		m.boxes[i] = newMailbox()
		m.peers[i] = make([]*tPeer, n)
	}

	// Every rank listens; rank i dials every j > i and introduces itself
	// with a one-int handshake.
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeListeners(listeners)
			return fmt.Errorf("mp: listen for rank %d: %w", i, err)
		}
		listeners[i] = l
	}
	defer closeListeners(listeners)

	var connMu sync.Mutex
	var connErr error
	var wgConn sync.WaitGroup
	// Accept side: rank j accepts n-1-j connections (from every i < j).
	for j := 1; j < n; j++ {
		wgConn.Add(1)
		go func(j int) {
			defer wgConn.Done()
			for k := 0; k < j; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					setErr(&connMu, &connErr, fmt.Errorf("mp: accept on rank %d: %w", j, err))
					return
				}
				var peerRank int
				if err := gob.NewDecoder(conn).Decode(&peerRank); err != nil {
					setErr(&connMu, &connErr, fmt.Errorf("mp: handshake on rank %d: %w", j, err))
					return
				}
				registerConn(m, j, peerRank, conn)
			}
		}(j)
	}
	// Dial side.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			wgConn.Add(1)
			go func(i, j int) {
				defer wgConn.Done()
				conn, err := net.Dial("tcp", listeners[j].Addr().String())
				if err != nil {
					setErr(&connMu, &connErr, fmt.Errorf("mp: dial %d->%d: %w", i, j, err))
					return
				}
				if err := gob.NewEncoder(conn).Encode(i); err != nil {
					setErr(&connMu, &connErr, fmt.Errorf("mp: handshake %d->%d: %w", i, j, err))
					return
				}
				registerConn(m, i, j, conn)
			}(i, j)
		}
	}
	wgConn.Wait()
	if connErr != nil {
		m.closeAll()
		return connErr
	}

	// Reader pumps: one per (rank, peer) connection.
	var wgRead sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		for peer := 0; peer < n; peer++ {
			p := m.peers[rank][peer]
			if p == nil {
				continue
			}
			wgRead.Add(1)
			go func(rank int, conn net.Conn) {
				defer wgRead.Done()
				m.readLoop(rank, conn)
			}(rank, p.conn)
		}
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(rank int) {
			defer wg.Done()
			err := fn(&tComm{m: m, rank: rank})
			errs[rank] = err
			if err != nil {
				m.abort(fmt.Errorf("mp: rank %d failed: %w", rank, err))
			}
		}(i)
	}
	wg.Wait()
	m.closeAll()
	wgRead.Wait()
	return firstErr(errs)
}

func setErr(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	defer mu.Unlock()
	if *dst == nil {
		*dst = err
	}
}

func closeListeners(ls []net.Listener) {
	for _, l := range ls {
		if l != nil {
			l.Close()
		}
	}
}

// registerConn installs owner's endpoint of its connection to peer. Each
// side of a TCP connection registers its own endpoint: owner writes to it
// in Send and reads from it in readLoop.
func registerConn(m *tMachine, owner, peer int, conn net.Conn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers[owner][peer] = &tPeer{conn: conn, enc: gob.NewEncoder(conn)}
}

// readLoop decodes envelopes arriving on conn for the given local rank.
func (m *tMachine) readLoop(rank int, conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var env wireEnv
		if err := dec.Decode(&env); err != nil {
			if err != io.EOF && m.abortErr() == nil {
				// Connection torn down mid-run; surfaced to blocked
				// receivers through abort.
				m.abort(fmt.Errorf("mp: rank %d lost connection: %w", rank, err))
			}
			return
		}
		b := m.boxes[rank]
		b.mu.Lock()
		b.queue = append(b.queue, envelope{src: env.Src, tag: env.Tag, v: env.V})
		b.mu.Unlock()
		b.cond.Broadcast()
	}
}

func (m *tMachine) abort(err error) {
	m.mu.Lock()
	if m.aborted == nil {
		m.aborted = err
	}
	m.mu.Unlock()
	for _, b := range m.boxes {
		b.cond.Broadcast()
	}
}

func (m *tMachine) abortErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aborted
}

func (m *tMachine) closeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.peers {
		for j := range m.peers[i] {
			if p := m.peers[i][j]; p != nil && p.conn != nil {
				p.conn.Close()
			}
		}
	}
}

func (c *tComm) Rank() int { return c.rank }
func (c *tComm) Size() int { return c.m.n }

func (c *tComm) Send(to, tag int, v any) error {
	if to < 0 || to >= c.m.n {
		return fmt.Errorf("mp: send to rank %d of %d", to, c.m.n)
	}
	if err := c.m.abortErr(); err != nil {
		return err
	}
	if to == c.rank {
		b := c.m.boxes[c.rank]
		b.mu.Lock()
		b.queue = append(b.queue, envelope{src: c.rank, tag: tag, v: v})
		b.mu.Unlock()
		b.cond.Broadcast()
		return nil
	}
	p := c.m.peers[c.rank][to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.enc.Encode(&wireEnv{Src: c.rank, Tag: tag, V: v}); err != nil {
		return fmt.Errorf("mp: send %d->%d: %w", c.rank, to, err)
	}
	return nil
}

func (c *tComm) Recv(from, tag int) (any, error) {
	if from < 0 || from >= c.m.n {
		return nil, fmt.Errorf("mp: recv from rank %d of %d", from, c.m.n)
	}
	b := c.m.boxes[c.rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if i := matchEnv(b.queue, from, tag); i >= 0 {
			env := b.queue[i]
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return env.v, nil
		}
		if err := c.m.abortErr(); err != nil {
			return nil, err
		}
		b.cond.Wait()
	}
}

// Barrier gathers a token at rank 0 and releases everyone — all message
// traffic, so it works identically over sockets.
func (c *tComm) Barrier() error {
	if c.m.n == 1 {
		return nil
	}
	if c.rank == 0 {
		for r := 1; r < c.m.n; r++ {
			if _, err := c.Recv(r, barrierTag); err != nil {
				return err
			}
		}
		for r := 1; r < c.m.n; r++ {
			if err := c.Send(r, barrierTag, true); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, barrierTag, true); err != nil {
		return err
	}
	_, err := c.Recv(0, barrierTag)
	return err
}
