package mp

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The TCP engine gives every rank a loopback listener and a full mesh of
// gob-encoded connections — the "distributed memory machine" deployment
// shape, with real serialization and kernel round trips on every message.
// Barriers are built from point-to-point messages (gather to rank 0, then
// release) on the reserved tagBarrier, so the whole engine needs nothing
// beyond sockets.

type tComm struct {
	m    *tMachine
	rank int
}

type tMachine struct {
	n     int
	lim   Limits
	boxes []*mailbox
	peers [][]*tPeer // [rank][peer]

	mu      sync.Mutex
	aborted error
	closing bool   // end-of-run teardown in progress
	lost    []bool // ranks whose connections died mid-run
}

// tPeer is one directed view of a connection: an encoder guarded by a
// mutex. nil for self.
type tPeer struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

func runTCP(ctx context.Context, n int, lim Limits, fn func(Comm) error) error {
	m := &tMachine{n: n, lim: lim, boxes: make([]*mailbox, n), peers: make([][]*tPeer, n), lost: make([]bool, n)}
	for i := 0; i < n; i++ {
		m.boxes[i] = newMailbox()
		m.peers[i] = make([]*tPeer, n)
	}
	// Cancellation rides the abort machinery: blocked mailbox waits are
	// released with an error wrapping ctx.Err(); unblocked ranks fail at
	// their next Send/Recv. A Send stalled inside a socket write is
	// additionally bounded by Limits.SendTimeout. Registered only after
	// the machine is fully built: an already-cancelled ctx fires the
	// watcher synchronously on another goroutine.
	stop := context.AfterFunc(ctx, func() { m.abort(cancelCause(ctx)) })
	defer stop()

	// Every rank listens; rank i dials every j > i and introduces itself
	// with a one-int handshake.
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeListeners(listeners)
			return fmt.Errorf("mp: listen for rank %d: %w", i, err)
		}
		listeners[i] = l
	}
	defer closeListeners(listeners)

	var connMu sync.Mutex
	var connErr error
	var wgConn sync.WaitGroup
	// fail records the first setup error and closes every listener so no
	// accept goroutine stays parked in Accept waiting for a connection
	// that will never arrive (a failed dialer would otherwise hang
	// wgConn.Wait forever). closeListeners ignores close errors, so the
	// deferred second close is harmless.
	fail := func(err error) {
		setErr(&connMu, &connErr, err)
		closeListeners(listeners)
	}
	// Accept side: rank j accepts n-1-j connections (from every i < j).
	for j := 1; j < n; j++ {
		wgConn.Add(1)
		go func(j int) {
			defer wgConn.Done()
			for k := 0; k < j; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					fail(fmt.Errorf("mp: accept on rank %d: %w", j, err))
					return
				}
				var peerRank int
				if err := gob.NewDecoder(conn).Decode(&peerRank); err != nil {
					fail(fmt.Errorf("mp: handshake on rank %d: %w", j, err))
					return
				}
				registerConn(m, j, peerRank, conn)
			}
		}(j)
	}
	// Dial side.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			wgConn.Add(1)
			go func(i, j int) {
				defer wgConn.Done()
				conn, err := net.Dial("tcp", listeners[j].Addr().String())
				if err != nil {
					fail(fmt.Errorf("mp: dial %d->%d: %w", i, j, err))
					return
				}
				if err := gob.NewEncoder(conn).Encode(i); err != nil {
					fail(fmt.Errorf("mp: handshake %d->%d: %w", i, j, err))
					return
				}
				registerConn(m, i, j, conn)
			}(i, j)
		}
	}
	wgConn.Wait()
	if connErr != nil {
		m.closeAll()
		return connErr
	}

	// Reader pumps: one per (rank, peer) connection.
	var wgRead sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		for peer := 0; peer < n; peer++ {
			p := m.peers[rank][peer]
			if p == nil {
				continue
			}
			wgRead.Add(1)
			go func(rank, peer int, conn net.Conn) {
				defer wgRead.Done()
				m.readLoop(rank, peer, conn)
			}(rank, peer, p.conn)
		}
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(rank int) {
			defer wg.Done()
			err := fn(&tComm{m: m, rank: rank})
			errs[rank] = err
			if err != nil {
				m.abort(fmt.Errorf("mp: rank %d failed: %w", rank, err))
			}
		}(i)
	}
	wg.Wait()
	m.closeAll()
	wgRead.Wait()
	if err := firstErr(errs); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return cancelCause(ctx)
	}
	return nil
}

func setErr(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	defer mu.Unlock()
	if *dst == nil {
		*dst = err
	}
}

func closeListeners(ls []net.Listener) {
	for _, l := range ls {
		if l != nil {
			l.Close()
		}
	}
}

// registerConn installs owner's endpoint of its connection to peer. Each
// side of a TCP connection registers its own endpoint: owner writes to it
// in Send and reads from it in readLoop.
func registerConn(m *tMachine, owner, peer int, conn net.Conn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers[owner][peer] = &tPeer{conn: conn, enc: gob.NewEncoder(conn)}
}

// readLoop decodes envelopes arriving on conn for the given local rank.
// A mid-run decode failure means the peer's endpoint died, so the peer is
// marked lost and every blocked rank is released with ErrRankLost.
func (m *tMachine) readLoop(rank, peer int, conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var env wireEnv
		if err := dec.Decode(&env); err != nil {
			if err != io.EOF && !m.isClosing() && m.abortErr() == nil {
				m.markLost(peer)
				m.abort(fmt.Errorf("mp: rank %d lost its connection to rank %d (%w): %w", rank, peer, err, ErrRankLost))
			}
			return
		}
		b := m.boxes[rank]
		b.mu.Lock()
		b.queue = append(b.queue, envelope{src: env.Src, tag: env.Tag, v: env.V})
		b.mu.Unlock()
		b.cond.Broadcast()
	}
}

func (m *tMachine) markLost(rank int) {
	m.mu.Lock()
	m.lost[rank] = true
	m.mu.Unlock()
}

func (m *tMachine) isLost(rank int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lost[rank]
}

func (m *tMachine) isClosing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closing
}

// injectCrash makes this rank die from its peers' point of view: it is
// marked lost first (so error paths already attribute failures to a dead
// rank, not a stray socket error), then all of its connections are torn
// down, which kills the read pumps on both sides. Used by the chaos
// engine; safe to call more than once because net.Conn.Close is.
func (c *tComm) injectCrash() {
	m := c.m
	m.markLost(c.rank)
	m.mu.Lock()
	conns := make([]net.Conn, 0, m.n)
	for _, p := range m.peers[c.rank] {
		if p != nil && p.conn != nil {
			conns = append(conns, p.conn)
		}
	}
	m.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

func (m *tMachine) abort(err error) {
	m.mu.Lock()
	if m.aborted == nil {
		m.aborted = err
	}
	m.mu.Unlock()
	for _, b := range m.boxes {
		b.cond.Broadcast()
	}
}

func (m *tMachine) abortErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aborted
}

func (m *tMachine) closeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closing = true
	for i := range m.peers {
		for j := range m.peers[i] {
			if p := m.peers[i][j]; p != nil && p.conn != nil {
				p.conn.Close()
			}
		}
	}
}

func (c *tComm) Rank() int { return c.rank }
func (c *tComm) Size() int { return c.m.n }

func (c *tComm) Send(to, tag int, v any) error {
	if to < 0 || to >= c.m.n {
		return fmt.Errorf("mp: send to rank %d of %d", to, c.m.n)
	}
	if err := c.m.abortErr(); err != nil {
		return err
	}
	if c.m.isLost(to) {
		return fmt.Errorf("mp: send %d->%d: %w", c.rank, to, ErrRankLost)
	}
	if to == c.rank {
		b := c.m.boxes[c.rank]
		b.mu.Lock()
		b.queue = append(b.queue, envelope{src: c.rank, tag: tag, v: v})
		b.mu.Unlock()
		b.cond.Broadcast()
		return nil
	}
	p := c.m.peers[c.rank][to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if d := c.m.lim.SendTimeout; d > 0 {
		deadline := time.Now().Add(d) //lint:allow nondeterminism transport deadline, never a routing decision
		p.conn.SetWriteDeadline(deadline)
		defer p.conn.SetWriteDeadline(time.Time{})
	}
	if err := p.enc.Encode(&wireEnv{Src: c.rank, Tag: tag, V: v}); err != nil { //lint:allow lock-across-blocking per-peer write serialization is the framing invariant; the write deadline set above bounds the stall when SendTimeout is configured
		// Attribute the failure: a dead peer beats a raw socket error, and
		// a stalled write past its deadline is a deadline miss.
		if c.m.isLost(to) || c.m.isLost(c.rank) {
			return fmt.Errorf("mp: send %d->%d: %w: %w", c.rank, to, err, ErrRankLost)
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			if c.m.lim.Counters != nil {
				c.m.lim.Counters.DeadlineMisses.Add(1)
			}
			return fmt.Errorf("mp: send %d->%d: write stalled past %v: %w", c.rank, to, c.m.lim.SendTimeout, ErrDeadline)
		}
		return fmt.Errorf("mp: send %d->%d: %w", c.rank, to, err)
	}
	return nil
}

func (c *tComm) Recv(from, tag int) (any, error) {
	if from < 0 || from >= c.m.n {
		return nil, fmt.Errorf("mp: recv from rank %d of %d", from, c.m.n)
	}
	return c.m.boxes[c.rank].recvMatch(from, tag, c.m.lim.RecvTimeout, c.m.abortErr, c.m.lim.Counters)
}

// Barrier gathers a token at rank 0 and releases everyone — all message
// traffic, so it works identically over sockets.
func (c *tComm) Barrier() error {
	if c.m.n == 1 {
		return nil
	}
	if c.rank == 0 {
		for r := 1; r < c.m.n; r++ {
			if _, err := c.Recv(r, tagBarrier); err != nil {
				return err
			}
		}
		for r := 1; r < c.m.n; r++ {
			if err := c.Send(r, tagBarrier, true); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, tagBarrier, true); err != nil {
		return err
	}
	_, err := c.Recv(0, tagBarrier)
	return err
}
