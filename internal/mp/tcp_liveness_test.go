package mp

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// The regression tests for the TCP engine's liveness fixes drive a
// two-rank machine over in-memory pipes, so each failure mode (a write
// stalled past its deadline, a socket that cannot arm a deadline, frames
// arriving after an abort) can be staged deterministically.

func pipeMachine(t *testing.T, lim Limits, conn net.Conn) (*tMachine, *tComm) {
	t.Helper()
	m := newTMachine(2, lim, false, func(int) bool { return true })
	registerConn(m, 0, 1, conn)
	return m, &tComm{m: m, rank: 0}
}

// TestSendDeadlineMarksConnectionDead: a send that timed out mid-write
// used to keep the connection's encoder, so the next send appended a
// fresh frame to a stream already holding half of the previous one and
// the peer misdecoded everything after. The connection must be dead from
// the first failed write on.
func TestSendDeadlineMarksConnectionDead(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close() // nothing ever reads b, so writes to a stall
	counters := &FaultCounters{}
	m, c := pipeMachine(t, Limits{SendTimeout: 30 * time.Millisecond, Counters: counters}, a)

	err := c.Send(1, 1, 7)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("stalled send = %v, want ErrDeadline", err)
	}
	if !m.isLost(1) {
		t.Fatal("timed-out write did not mark the peer lost")
	}
	if got := counters.DeadlineMisses.Load(); got != 1 {
		t.Fatalf("DeadlineMisses = %d, want 1", got)
	}
	// Even if the loss marking were cleared, the connection itself must
	// refuse further sends: a partial frame may sit on the wire.
	m.mu.Lock()
	m.lost[1] = false
	m.mu.Unlock()
	start := time.Now()
	err = c.Send(1, 1, 8)
	if !errors.Is(err, ErrRankLost) || !strings.Contains(err.Error(), "connection already failed") {
		t.Fatalf("send on a dead connection = %v, want the fast ErrRankLost refusal", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-connection send took %v; it must fail without touching the socket", elapsed)
	}
}

// deadlineFailConn wraps a healthy pipe so arming a write deadline fails
// while the write itself would still succeed — the shape of a socket
// that died between sends. Ignoring the arm error would start an
// unbounded write.
type deadlineFailConn struct {
	net.Conn
	err error
}

func (c deadlineFailConn) SetWriteDeadline(time.Time) error { return c.err }

// TestSendDeadlineArmFailureFailsSend: SetWriteDeadline errors used to be
// discarded, silently converting a bounded send into an unbounded one.
func TestSendDeadlineArmFailureFailsSend(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b) //nolint — drains so the write WOULD succeed if attempted
	armErr := errors.New("socket gone")
	m, c := pipeMachine(t, Limits{SendTimeout: time.Second}, deadlineFailConn{Conn: a, err: armErr})

	err := c.Send(1, 1, 7)
	if err == nil {
		t.Fatal("send succeeded although its write deadline could not be armed")
	}
	if !errors.Is(err, armErr) {
		t.Fatalf("send = %v, want the SetWriteDeadline error surfaced", err)
	}
	if !m.isLost(1) {
		t.Fatal("unarmable deadline did not mark the peer lost")
	}
	if err := c.Send(1, 1, 8); !errors.Is(err, ErrRankLost) {
		t.Fatalf("send after arm failure = %v, want ErrRankLost", err)
	}
}

// TestReadLoopDropsEnvelopesAfterAbort: the read pump used to keep
// queueing arriving envelopes after an abort, growing a mailbox nothing
// would ever drain again while the run unwound.
func TestReadLoopDropsEnvelopesAfterAbort(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	m, _ := pipeMachine(t, Limits{}, a)
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.readLoop(0, 1, a)
	}()

	m.abort(errors.New("boom"))
	frame, err := appendFrame(nil, 1, 1, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := b.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	// The pipe is synchronous, so every frame has reached the reader; give
	// the pump a moment to decode the tail, then the queue must be empty.
	time.Sleep(20 * time.Millisecond)
	box := m.boxes[0]
	box.mu.Lock()
	queued := len(box.queue)
	box.mu.Unlock()
	if queued != 0 {
		t.Fatalf("%d envelope(s) queued after abort; the dead run's mailbox must stay bounded", queued)
	}
	b.Close()
	<-done
}

// TestReadLoopCorruptFrameMarksPeerLost: garbage on a connection is
// attributed to the peer, releasing blocked ranks with ErrRankLost
// instead of letting them wait on a stream that can never resynchronize.
func TestReadLoopCorruptFrameMarksPeerLost(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	m, _ := pipeMachine(t, Limits{}, a)
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.readLoop(0, 1, a)
	}()

	// A length-prefixed frame whose body is not a decodable envelope.
	junk := AppendUint32(nil, 3)
	junk = append(junk, 0xFF, 0xFF, 0xFF)
	if _, err := b.Write(junk); err != nil {
		t.Fatal(err)
	}
	<-done
	if !m.isLost(1) {
		t.Fatal("corrupt frame did not mark the peer lost")
	}
	if err := m.abortErr(); !errors.Is(err, ErrRankLost) {
		t.Fatalf("abort error = %v, want ErrRankLost", err)
	}
}
