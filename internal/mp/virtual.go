package mp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// The Virtual engine simulates a P-processor message-passing machine with
// a deterministic discrete-event scheme:
//
//   - exactly one worker goroutine runs at a time (a token is passed
//     between them), so the real time a worker spends between two mp
//     operations is that worker's own compute time, even on a single-core
//     host;
//   - each worker carries a virtual clock; compute spans advance it by the
//     measured real duration, communication advances it through the
//     CostModel;
//   - a message sent at sender time t becomes available to its receiver at
//     t + transfer(size); Recv advances the receiver to at least that;
//   - Barrier aligns every clock to the maximum plus the barrier cost.
//
// The simulated elapsed time of the run is the maximum virtual clock at
// completion. Program results never depend on the clock — only reported
// times do — so routing output is identical across engines.

type vState uint8

const (
	vReady vState = iota
	vRunning
	vBlockedRecv
	vBlockedBarrier
	vDone
)

type vWorker struct {
	rank      int
	vtime     time.Duration
	state     vState
	wantSrc   int
	wantTag   int
	queue     []envelope
	grant     chan struct{}
	lastGrant time.Time
}

type vMachine struct {
	mu        sync.Mutex
	model     CostModel
	n         int
	workers   []*vWorker
	inBarrier int
	done      int
	err       error
}

type vComm struct {
	m *vMachine
	w *vWorker
}

func runVirtual(ctx context.Context, n int, model CostModel, fn func(Comm) error) (time.Duration, error) {
	// The simulation charges real elapsed time to worker clocks, so a GC
	// cycle triggered by a previous run's garbage would be billed to
	// whichever worker it lands on. Collect up front for a clean slate.
	runtime.GC()
	m := &vMachine{model: model, n: n, workers: make([]*vWorker, n)}
	for i := 0; i < n; i++ {
		m.workers[i] = &vWorker{rank: i, state: vReady, grant: make(chan struct{}, 1)}
	}
	// Cancellation sets the machine error and wakes blocked workers; the
	// running worker sees it at its next mp operation. Under the Background
	// context of a deterministic run the watcher never fires, so the
	// discrete-event schedule is untouched.
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.err == nil && m.done < m.n {
			m.err = cancelCause(ctx)
			m.wakeAllLocked() //lint:allow lock-across-blocking grant has capacity 1 and the scheduler keeps at most one token outstanding per worker, so this send cannot block
		}
	})
	defer stop()
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		w := m.workers[i]
		go func() {
			defer wg.Done()
			<-w.grant
			m.mu.Lock()
			w.lastGrant = time.Now() //lint:allow nondeterminism compute-span measurement feeding the virtual clock, not routing state
			m.mu.Unlock()
			err := fn(&vComm{m: m, w: w})
			m.finish(w, err)
			errs[w.rank] = err
		}()
	}
	m.mu.Lock()
	m.scheduleLocked() //lint:allow lock-across-blocking grant has capacity 1 and the scheduler keeps at most one token outstanding per worker, so this send cannot block
	m.mu.Unlock()
	wg.Wait()

	var elapsed time.Duration
	for _, w := range m.workers {
		if w.vtime > elapsed {
			elapsed = w.vtime
		}
	}
	if err := firstErr(errs); err != nil {
		return elapsed, err
	}
	return elapsed, m.err
}

// accrueLocked charges the real time since the worker got the token to its
// virtual clock. Callers must hold m.mu and must reset lastGrant (via
// resumeLocked) before letting the worker compute again.
func (m *vMachine) accrueLocked(w *vWorker) {
	w.vtime += time.Since(w.lastGrant) //lint:allow nondeterminism compute-span measurement feeding the virtual clock, not routing state
}

// resumeLocked restarts the worker's compute span measurement; called just
// before an operation returns control to worker code.
func (m *vMachine) resumeLocked(w *vWorker) {
	w.lastGrant = time.Now() //lint:allow nondeterminism compute-span measurement feeding the virtual clock, not routing state
}

// scheduleLocked hands the token to the ready worker with the smallest
// virtual clock (ties broken by rank). If nobody is ready and the machine
// is not finished, every remaining worker is blocked forever: record a
// deadlock and wake them so they can return the error.
func (m *vMachine) scheduleLocked() {
	var next *vWorker
	for _, w := range m.workers {
		if w.state != vReady {
			continue
		}
		if next == nil || w.vtime < next.vtime {
			next = w
		}
	}
	if next != nil {
		next.state = vRunning
		next.grant <- struct{}{}
		return
	}
	if m.done == m.n {
		return
	}
	if m.err == nil {
		m.err = ErrDeadlock
	}
	m.wakeAllLocked()
}

// wakeAllLocked releases every blocked worker after an abort so they can
// observe m.err.
func (m *vMachine) wakeAllLocked() {
	for _, w := range m.workers {
		if w.state == vBlockedRecv || w.state == vBlockedBarrier {
			w.state = vRunning
			w.grant <- struct{}{}
		}
	}
}

func (m *vMachine) finish(w *vWorker, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accrueLocked(w)
	w.state = vDone
	m.done++
	if err != nil && m.err == nil {
		m.err = fmt.Errorf("mp: rank %d failed: %w", w.rank, err)
		m.wakeAllLocked() //lint:allow lock-across-blocking grant has capacity 1 and the scheduler keeps at most one token outstanding per worker, so this send cannot block
	}
	m.scheduleLocked() //lint:allow lock-across-blocking grant has capacity 1 and the scheduler keeps at most one token outstanding per worker, so this send cannot block
}

func (c *vComm) Rank() int { return c.w.rank }
func (c *vComm) Size() int { return c.m.n }

func (c *vComm) Send(to, tag int, v any) error {
	m, w := c.m, c.w
	if to < 0 || to >= m.n {
		return fmt.Errorf("mp: send to rank %d of %d", to, m.n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accrueLocked(w)
	if m.err != nil {
		return m.err
	}
	size := payloadSize(v) //lint:allow lock-across-blocking payloadSize prices the message by gob-encoding into an in-memory buffer, never a socket
	w.vtime += m.model.SendOverhead
	env := envelope{src: w.rank, tag: tag, v: v, avail: w.vtime + m.model.transfer(size)}
	dst := m.workers[to]
	dst.queue = append(dst.queue, env)
	if dst.state == vBlockedRecv && dst.wantSrc == w.rank && dst.wantTag == tag {
		dst.state = vReady
	}
	m.resumeLocked(w)
	return nil
}

func (c *vComm) Recv(from, tag int) (any, error) {
	m, w := c.m, c.w
	if from < 0 || from >= m.n {
		return nil, fmt.Errorf("mp: recv from rank %d of %d", from, m.n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accrueLocked(w)
	for {
		if m.err != nil {
			return nil, m.err
		}
		if i := matchEnv(w.queue, from, tag); i >= 0 {
			env := w.queue[i]
			w.queue = append(w.queue[:i], w.queue[i+1:]...)
			if env.avail > w.vtime {
				w.vtime = env.avail
			}
			w.vtime += m.model.RecvOverhead
			m.resumeLocked(w)
			return env.v, nil
		}
		w.state = vBlockedRecv
		w.wantSrc, w.wantTag = from, tag
		m.scheduleLocked() //lint:allow lock-across-blocking grant has capacity 1 and the scheduler keeps at most one token outstanding per worker, so this send cannot block
		m.mu.Unlock()
		<-w.grant
		m.mu.Lock()
	}
}

func (c *vComm) Barrier() error {
	m, w := c.m, c.w
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accrueLocked(w)
	if m.err != nil {
		return m.err
	}
	m.inBarrier++
	if m.inBarrier == m.n {
		var vmax time.Duration
		for _, o := range m.workers {
			if o.vtime > vmax {
				vmax = o.vtime
			}
		}
		cost := m.model.BarrierBase + time.Duration(m.n)*m.model.BarrierPerProc
		for _, o := range m.workers {
			o.vtime = vmax + cost
			if o.state == vBlockedBarrier {
				o.state = vReady
			}
		}
		m.inBarrier = 0
		m.resumeLocked(w)
		return nil
	}
	if m.inBarrier+m.done == m.n {
		// The remaining workers already finished and can never enter the
		// barrier: protocol error.
		m.err = fmt.Errorf("mp: rank %d waits at a barrier %d ranks already exited: %w",
			w.rank, m.done, ErrDeadlock)
		m.inBarrier--
		m.wakeAllLocked() //lint:allow lock-across-blocking grant has capacity 1 and the scheduler keeps at most one token outstanding per worker, so this send cannot block
		return m.err
	}
	w.state = vBlockedBarrier
	m.scheduleLocked() //lint:allow lock-across-blocking grant has capacity 1 and the scheduler keeps at most one token outstanding per worker, so this send cannot block
	m.mu.Unlock()
	<-w.grant
	m.mu.Lock()
	if m.err != nil {
		return m.err
	}
	m.resumeLocked(w)
	return nil
}

// matchEnv returns the index of the first queued envelope from (src, tag),
// or -1. First-match preserves per-sender-per-tag FIFO order.
func matchEnv(queue []envelope, src, tag int) int {
	for i := range queue {
		if queue[i].src == src && queue[i].tag == tag {
			return i
		}
	}
	return -1
}
