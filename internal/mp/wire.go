package mp

//go:generate go run parroute/cmd/mpgen

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync"
)

// The parroute-mpwire/1 flat binary codec: the length-prefixed
// little-endian encoding the mpgen-generated AppendWire/DecodeWire
// methods implement. Integers travel as fixed-width little-endian
// (8 bytes for int/int64/uint64, 1 byte for bool and byte-sized types),
// strings and slices carry a u32 length/count prefix, and interface
// values carry a u32 wire type id plus a u32 body length (id 0 falls
// back to gob for unregistered payloads). The encoding is canonical —
// one byte sequence per value — which is what lets FuzzCodec assert
// encode→decode→re-encode byte-identity.
//
// This file is the hand-written substrate: append/consume primitives and
// the wire-id registry generated init functions populate. The per-type
// codecs themselves live in the mpwire_gen.go files (`go generate ./...`
// or `go run parroute/cmd/mpgen` regenerates them; `mpgen -check` is the
// CI drift gate).

// WireSchemaVersion names the codec format carried in the protocol
// manifest (mp_protocol.json).
const WireSchemaVersion = "parroute-mpwire/1"

// ErrWire is wrapped by every decode error: truncated input, oversized
// counts, or malformed values.
var ErrWire = errors.New("mp: malformed wire data")

func wireErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrWire, fmt.Sprintf(format, args...))
}

// AppendUint32 appends v in little-endian order.
func AppendUint32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// AppendUint64 appends v in little-endian order.
func AppendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// AppendInt appends v as a little-endian int64.
func AppendInt(buf []byte, v int) []byte {
	return AppendUint64(buf, uint64(int64(v)))
}

// AppendInt64 appends v in little-endian order.
func AppendInt64(buf []byte, v int64) []byte {
	return AppendUint64(buf, uint64(v))
}

// AppendBool appends v as one byte (0 or 1).
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendString appends a u32 length prefix and the string bytes.
func AppendString(buf []byte, s string) []byte {
	buf = AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// WireUint32 consumes a little-endian u32.
func WireUint32(data []byte) (uint32, []byte, error) {
	if len(data) < 4 {
		return 0, nil, wireErr("truncated uint32: %d byte(s) left", len(data))
	}
	return binary.LittleEndian.Uint32(data), data[4:], nil
}

// WireUint64 consumes a little-endian u64.
func WireUint64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, wireErr("truncated uint64: %d byte(s) left", len(data))
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

// WireInt consumes a little-endian int64 as an int.
func WireInt(data []byte) (int, []byte, error) {
	v, rest, err := WireUint64(data)
	return int(int64(v)), rest, err
}

// WireInt64 consumes a little-endian int64.
func WireInt64(data []byte) (int64, []byte, error) {
	v, rest, err := WireUint64(data)
	return int64(v), rest, err
}

// WireByte consumes one byte.
func WireByte(data []byte) (byte, []byte, error) {
	if len(data) < 1 {
		return 0, nil, wireErr("truncated byte")
	}
	return data[0], data[1:], nil
}

// WireBool consumes one byte, rejecting values other than 0 and 1 so the
// encoding stays canonical (decode→re-encode is byte-identical).
func WireBool(data []byte) (bool, []byte, error) {
	b, rest, err := WireByte(data)
	if err != nil {
		return false, nil, err
	}
	if b > 1 {
		return false, nil, wireErr("bool byte %d is not 0 or 1", b)
	}
	return b == 1, rest, nil
}

// WireString consumes a u32 length prefix and that many bytes.
func WireString(data []byte) (string, []byte, error) {
	n, rest, err := WireUint32(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(n) > uint64(len(rest)) {
		return "", nil, wireErr("string length %d exceeds %d remaining byte(s)", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}

// WireCount consumes a u32 element count, bounding it by the remaining
// input (every generated element encoding consumes at least one byte, so
// a count beyond len(rest) cannot be satisfied and would only serve to
// force a huge allocation).
func WireCount(data []byte) (int, []byte, error) {
	n, rest, err := WireUint32(data)
	if err != nil {
		return 0, nil, err
	}
	if uint64(n) > uint64(len(rest)) {
		return 0, nil, wireErr("count %d exceeds %d remaining byte(s)", n, len(rest))
	}
	return int(n), rest, nil
}

// ---- interface (any) encoding ----

// anyCodec adapts one registered payload type to the interface encoding.
type anyCodec struct {
	id  uint32
	app func(v any, buf []byte) ([]byte, error)
	dec func(data []byte) (any, []byte, error)
}

// gobWireID is the reserved id of the gob fallback encoding.
const gobWireID = 0

var wireRegistry = struct {
	sync.RWMutex
	byID   map[uint32]*anyCodec
	byType map[reflect.Type]*anyCodec
}{
	byID:   map[uint32]*anyCodec{},
	byType: map[reflect.Type]*anyCodec{},
}

// RegisterWireCodec registers a generated flat codec for the concrete
// type of prototype under the manifest's wire id, making values of that
// type cross AppendAny/WireAny without gob. Called from generated init
// functions; a conflicting re-registration panics, matching gob.Register.
func RegisterWireCodec(id uint32, prototype any,
	app func(v any, buf []byte) ([]byte, error),
	dec func(data []byte) (any, []byte, error)) {
	if id == gobWireID {
		panic("mp: RegisterWireCodec: id 0 is reserved for the gob fallback") //lint:allow panic-in-library registration-time programming error, like gob.Register
	}
	t := reflect.TypeOf(prototype)
	wireRegistry.Lock()
	defer wireRegistry.Unlock()
	if prev, ok := wireRegistry.byID[id]; ok && prev != wireRegistry.byType[t] {
		panic(fmt.Sprintf("mp: RegisterWireCodec: id %d already registered", id)) //lint:allow panic-in-library registration-time programming error, like gob.Register
	}
	c := &anyCodec{id: id, app: app, dec: dec}
	wireRegistry.byID[id] = c
	wireRegistry.byType[t] = c
}

func codecByType(v any) *anyCodec {
	wireRegistry.RLock()
	defer wireRegistry.RUnlock()
	return wireRegistry.byType[reflect.TypeOf(v)]
}

func codecByID(id uint32) *anyCodec {
	wireRegistry.RLock()
	defer wireRegistry.RUnlock()
	return wireRegistry.byID[id]
}

// AppendAny appends an interface value: u32 wire id, u32 body length,
// body. Registered types use their generated flat codec; everything else
// travels as gob under id 0 (payload types must then be registered with
// RegisterPayload, exactly as on the TCP engine).
func AppendAny(buf []byte, v any) ([]byte, error) {
	if c := codecByType(v); c != nil {
		buf = AppendUint32(buf, c.id)
		lenAt := len(buf)
		buf = AppendUint32(buf, 0) // patched below
		buf, err := c.app(v, buf)
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
		return buf, nil
	}
	return appendAnyGob(buf, v)
}

// WireAny consumes an interface value written by AppendAny.
func WireAny(data []byte) (any, []byte, error) {
	id, rest, err := WireUint32(data)
	if err != nil {
		return nil, nil, err
	}
	n, rest, err := WireUint32(rest)
	if err != nil {
		return nil, nil, err
	}
	if uint64(n) > uint64(len(rest)) {
		return nil, nil, wireErr("any body length %d exceeds %d remaining byte(s)", n, len(rest))
	}
	body, tail := rest[:n], rest[n:]
	if id == gobWireID {
		var env wireEnv
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
			return nil, nil, wireErr("gob payload: %v", err)
		}
		return env.V, tail, nil
	}
	c := codecByID(id)
	if c == nil {
		return nil, nil, wireErr("unknown wire type id %d", id)
	}
	v, after, err := c.dec(body)
	if err != nil {
		return nil, nil, err
	}
	if len(after) != 0 {
		return nil, nil, wireErr("wire type id %d left %d undecoded byte(s)", id, len(after))
	}
	return v, tail, nil
}

// anyWireSize prices an interface field the way the flat codec frames
// it: the per-element header (type id + length) plus the payload's own
// flat price. Used by generated WireSize methods (chaosMsg).
func anyWireSize(v any) int {
	return elemHeader + elemSize(v)
}
