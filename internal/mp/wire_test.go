package mp

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestWirePrimitivesRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendUint32(buf, 0xDEADBEEF)
	buf = AppendUint64(buf, 1<<63|42)
	buf = AppendInt(buf, -7)
	buf = AppendInt64(buf, -1e12)
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendString(buf, "héllo")

	u32, rest, err := WireUint32(buf)
	if err != nil || u32 != 0xDEADBEEF {
		t.Fatalf("u32 = %x, err %v", u32, err)
	}
	u64, rest, err := WireUint64(rest)
	if err != nil || u64 != 1<<63|42 {
		t.Fatalf("u64 = %x, err %v", u64, err)
	}
	i, rest, err := WireInt(rest)
	if err != nil || i != -7 {
		t.Fatalf("int = %d, err %v", i, err)
	}
	i64, rest, err := WireInt64(rest)
	if err != nil || i64 != -1e12 {
		t.Fatalf("int64 = %d, err %v", i64, err)
	}
	b1, rest, err := WireBool(rest)
	if err != nil || !b1 {
		t.Fatalf("bool = %v, err %v", b1, err)
	}
	b2, rest, err := WireBool(rest)
	if err != nil || b2 {
		t.Fatalf("bool = %v, err %v", b2, err)
	}
	s, rest, err := WireString(rest)
	if err != nil || s != "héllo" {
		t.Fatalf("string = %q, err %v", s, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d byte(s) left", len(rest))
	}
}

func TestWireDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"truncated u32", func() error { _, _, err := WireUint32([]byte{1, 2}); return err }()},
		{"truncated u64", func() error { _, _, err := WireUint64([]byte{1}); return err }()},
		{"truncated byte", func() error { _, _, err := WireByte(nil); return err }()},
		{"non-canonical bool", func() error { _, _, err := WireBool([]byte{2}); return err }()},
		{"string overrun", func() error { _, _, err := WireString([]byte{5, 0, 0, 0, 'a'}); return err }()},
		{"count overrun", func() error { _, _, err := WireCount([]byte{200, 0, 0, 0, 1}); return err }()},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, ErrWire) {
			t.Errorf("%s: err = %v, want ErrWire", tc.name, tc.err)
		}
	}
}

func TestWireCountBoundsAllocation(t *testing.T) {
	// A count prefix larger than the remaining input must be rejected up
	// front: every element consumes at least one byte, so the count could
	// never be satisfied and would only force a huge allocation.
	data := AppendUint32(nil, 1<<30)
	if _, _, err := WireCount(data); !errors.Is(err, ErrWire) {
		t.Fatalf("oversized count accepted: %v", err)
	}
}

// gobOnlyPayload has no registered wire codec, so AppendAny must fall
// back to gob under id 0.
type gobOnlyPayload struct{ A, B int }

func TestAppendAnyGobFallback(t *testing.T) {
	RegisterPayload(gobOnlyPayload{})
	enc, err := AppendAny(nil, gobOnlyPayload{A: 3, B: 9})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := WireUint32(enc)
	if err != nil || id != gobWireID {
		t.Fatalf("wire id = %d, err %v; want gob fallback (0)", id, err)
	}
	v, rest, err := WireAny(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d byte(s) left", len(rest))
	}
	if got, ok := v.(gobOnlyPayload); !ok || got != (gobOnlyPayload{A: 3, B: 9}) {
		t.Fatalf("round trip = %#v", v)
	}
}

func TestAppendAnyUnencodable(t *testing.T) {
	if _, err := AppendAny(nil, func() {}); err == nil {
		t.Fatal("encoding a func succeeded")
	}
}

func TestChaosMsgCodecRoundTrip(t *testing.T) {
	// chaosMsg is the one registered codec in this package: its generated
	// encoder must produce the flat id-1 framing (no gob), round-trip, and
	// re-encode byte-identically.
	RegisterPayload(gobOnlyPayload{})
	msg := chaosMsg{Seq: 99, V: gobOnlyPayload{A: 1, B: 2}}
	enc, err := AppendAny(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := WireUint32(enc)
	if err != nil || id != 1 {
		t.Fatalf("wire id = %d, err %v; want chaosMsg (1)", id, err)
	}
	v, rest, err := WireAny(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v, %d byte(s) left", err, len(rest))
	}
	got, ok := v.(chaosMsg)
	if !ok || got.Seq != 99 || !reflect.DeepEqual(got.V, msg.V) {
		t.Fatalf("round trip = %#v", v)
	}
	re, err := AppendAny(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encode differs:\n got %x\nwant %x", re, enc)
	}
}

func TestChaosMsgWireSizeFlat(t *testing.T) {
	// The chaos wrapper must price flat — 8 bytes of sequence number plus
	// the wrapped payload's own flat body behind one element header — so a
	// chaos run costs what the application message costs, not a gob
	// re-encode of the whole envelope.
	inner := sizedBatch(7)
	msg := chaosMsg{Seq: 4, V: inner}
	if got, want := msg.WireSize(), 8+elemHeader+inner.WireSize(); got != want {
		t.Fatalf("chaosMsg.WireSize() = %d, want %d", got, want)
	}
	// End to end through payloadSize: one frame for the chaos message, not
	// a second one for the wrapped payload.
	if got, want := payloadSize(msg), frameOverhead+8+elemHeader+inner.WireSize(); got != want {
		t.Fatalf("payloadSize(chaosMsg) = %d, want %d", got, want)
	}
}

// FuzzAnyCodec drives WireAny with arbitrary bytes: inputs it accepts
// under a registered flat codec must re-encode byte-identically
// (canonical encoding); gob-fallback accepts only need to not panic. The
// chaosMsg seed exercises the generated interface-field path.
func FuzzAnyCodec(f *testing.F) {
	RegisterPayload(gobOnlyPayload{})
	seed, err := AppendAny(nil, chaosMsg{Seq: 12, V: gobOnlyPayload{A: 5, B: 6}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(AppendUint32(AppendUint32(nil, 1), 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := WireAny(data)
		if err != nil {
			return
		}
		id, _, _ := WireUint32(data)
		if id == gobWireID {
			return // gob streams are not canonical; decode not panicking is the property
		}
		// A registered codec wrapping a gob-fallback payload (chaosMsg with
		// an unregistered V) is only canonical outside the gob body; fall
		// back to the value round-trip property there.
		canonical := true
		if m, ok := v.(chaosMsg); ok && codecByType(m.V) == nil {
			canonical = false
		}
		re, err := AppendAny(nil, v)
		if err != nil {
			t.Fatalf("decoded value failed to re-encode: %v", err)
		}
		if consumed := data[:len(data)-len(rest)]; canonical && !bytes.Equal(consumed, re) {
			t.Fatalf("decode/encode not canonical:\nconsumed %x\nre-enc   %x", consumed, re)
		}
		v2, _, err := WireAny(re)
		if err != nil || !reflect.DeepEqual(v, v2) {
			t.Fatalf("re-encoded value did not round-trip: %v / %#v vs %#v", err, v, v2)
		}
	})
}
