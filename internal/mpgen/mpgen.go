package mpgen

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Write scans root's module, renders every generated file, and writes the
// ones whose content changed. It returns the module-relative paths it
// rewrote.
func Write(root string) ([]string, error) {
	m, err := Scan(root)
	if err != nil {
		return nil, err
	}
	files, err := m.Generate()
	if err != nil {
		return nil, err
	}
	var wrote []string
	for _, rel := range sortedKeys(files) {
		abs := filepath.Join(m.Root, filepath.FromSlash(rel))
		if old, err := os.ReadFile(abs); err == nil && bytes.Equal(old, files[rel]) {
			continue
		}
		if err := os.WriteFile(abs, files[rel], 0o644); err != nil {
			return wrote, fmt.Errorf("mpgen: %w", err)
		}
		wrote = append(wrote, rel)
	}
	return wrote, nil
}

// Check scans root's module and reports every generated file that is
// missing or stale on disk, without writing anything. An empty result
// means the checked-in output matches what mpgen would emit — the CI
// drift gate.
func Check(root string) ([]string, error) {
	m, err := Scan(root)
	if err != nil {
		return nil, err
	}
	files, err := m.Generate()
	if err != nil {
		return nil, err
	}
	var stale []string
	for _, rel := range sortedKeys(files) {
		abs := filepath.Join(m.Root, filepath.FromSlash(rel))
		old, err := os.ReadFile(abs)
		if err != nil || !bytes.Equal(old, files[rel]) {
			stale = append(stale, rel)
		}
	}
	return stale, nil
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
