package mpgen

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"parroute/internal/mpproto"
)

var (
	scanOnce  sync.Once
	scanModel *Model
	scanErr   error
)

// scanRepo scans the real module once per test binary; a full source
// type-check is the expensive part and every test below reads the same
// model.
func scanRepo(t *testing.T) *Model {
	t.Helper()
	scanOnce.Do(func() { scanModel, scanErr = Scan(".") })
	if scanErr != nil {
		t.Fatalf("Scan: %v", scanErr)
	}
	return scanModel
}

// TestGeneratedOutputCurrent is the regenerate-and-diff golden for the
// whole generated surface: re-running the generator over the checked-in
// tree must reproduce every mpwire_gen.go and mp_protocol.json byte for
// byte. This is the same check `mpgen -check` runs in CI; regenerate
// with `go generate ./...` after changing a payload type.
func TestGeneratedOutputCurrent(t *testing.T) {
	m := scanRepo(t)
	files, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for rel, want := range files {
		got, err := os.ReadFile(filepath.Join(m.Root, filepath.FromSlash(rel)))
		if err != nil {
			t.Errorf("generated file missing on disk: %s (%v)", rel, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is stale: checked-in content differs from regeneration; run `go generate ./...`", rel)
		}
	}
	if len(files) < 3 {
		t.Fatalf("generator produced %d file(s), expected at least mp, parallel, and the manifest", len(files))
	}
}

// TestGenerateDeterministic pins the generator's output ordering: two
// scans of the same tree must agree byte for byte, or `mpgen -check`
// would flap in CI.
func TestGenerateDeterministic(t *testing.T) {
	a := scanRepo(t)
	b, err := Scan(".")
	if err != nil {
		t.Fatal(err)
	}
	fa, err := a.Generate()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) != len(fb) {
		t.Fatalf("file sets differ: %d vs %d", len(fa), len(fb))
	}
	for rel := range fa {
		if !bytes.Equal(fa[rel], fb[rel]) {
			t.Errorf("%s differs between two scans of the same tree", rel)
		}
	}
}

// TestScanManifestShape asserts the protocol facts the rest of the PR
// depends on: the payload set, the PR-4 flat prices now derived from
// layout, the reserved engine tag, and the tag→payload associations the
// lint analyzers cross-check.
func TestScanManifestShape(t *testing.T) {
	man := scanRepo(t).Manifest
	if man.Schema != mpproto.SchemaVersion {
		t.Fatalf("schema = %q", man.Schema)
	}
	for _, pkg := range []string{"parroute/internal/mp", "parroute/internal/parallel"} {
		if !man.Covers(pkg) {
			t.Errorf("manifest does not cover %s", pkg)
		}
	}
	widths := map[string]int{
		"FakePinBatch":  25,
		"CrossingBatch": 24,
		"NodeBatch":     25,
	}
	for name, want := range widths {
		e := man.TypeByName("parroute/internal/parallel", name)
		if e == nil {
			t.Errorf("type %s missing from manifest", name)
			continue
		}
		if e.FlatWidth != want || e.Kind != mpproto.TypeSlice {
			t.Errorf("%s: flatWidth %d kind %s, want %d slice", name, e.FlatWidth, e.Kind, want)
		}
		if e.WireID == 0 {
			t.Errorf("%s has no wire id", name)
		}
	}
	if e := man.TypeByName("parroute/internal/mp", "chaosMsg"); e == nil || e.WireID == 0 {
		t.Errorf("chaosMsg missing or unregistered: %+v", e)
	}
	if tag := man.TagByName("parroute/internal/mp", "tagBarrier"); tag == nil || !tag.Reserved || tag.Value != -2 {
		t.Errorf("tagBarrier: %+v", tag)
	}
	tagPayloads := map[string]string{
		"tagWires":   "parroute/internal/parallel.WireBatch",
		"tagSummary": "parroute/internal/parallel.Summary",
	}
	for tagName, want := range tagPayloads {
		tag := man.TagByName("parroute/internal/parallel", tagName)
		if tag == nil {
			t.Errorf("tag %s missing", tagName)
			continue
		}
		found := false
		for _, p := range tag.Payloads {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s payloads = %v, want %s", tagName, tag.Payloads, want)
		}
	}
	if len(man.Collectives) == 0 {
		t.Error("collective census is empty")
	}
}

// TestManifestOnDiskMatchesScan loads the committed mp_protocol.json and
// diffs each scanned type entry against it with the same layout diff the
// manifest-drift analyzer uses — a field-level drift message, not just a
// byte diff.
func TestManifestOnDiskMatchesScan(t *testing.T) {
	m := scanRepo(t)
	disk, err := mpproto.Load(filepath.Join(m.Root, mpproto.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	for _, gp := range m.Pkgs {
		for i := range gp.Types {
			want := &gp.Types[i].Entry
			got := disk.TypeByName(gp.Path, gp.Types[i].Name)
			if got == nil {
				t.Errorf("%s.%s missing from committed manifest", gp.Path, gp.Types[i].Name)
				continue
			}
			if diff := mpproto.DiffLayout(want, got); diff != "" {
				t.Errorf("%s.%s drifted: %s", gp.Path, gp.Types[i].Name, diff)
			}
		}
	}
}

// TestCheckReportsDrift exercises the CI gate end to end in a scratch
// module: a payload edit without regeneration must surface as stale
// files, and Write must converge to a clean Check.
func TestCheckReportsDrift(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	// A miniature mp so generated code (which imports the real helper
	// surface via the mp package path only when foreign) stays loadable:
	// payloads in the scratch module's own "internal/mp" get unqualified
	// helpers, so mirror the ones the codec emits.
	write("internal/mp/mp.go", scratchMP)
	write("internal/mp/msgs.go", `package mp

// PingMsg is a scratch payload.
//
//mp:payload
type PingMsg struct {
	Seq int
	Hop int
}

const tagPing = 7
`)

	stale, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) == 0 {
		t.Fatal("Check found nothing stale in a tree with no generated files")
	}
	if _, err := Write(root); err != nil {
		t.Fatal(err)
	}
	stale, err = Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Fatalf("Check still stale after Write: %v", stale)
	}

	// The acceptance scenario: delete a field, regenerate nothing — the
	// drift gate must fire on both the codec file and the manifest.
	write("internal/mp/msgs.go", `package mp

// PingMsg is a scratch payload.
//
//mp:payload
type PingMsg struct {
	Seq int
}

const tagPing = 7
`)
	stale, err = Check(root)
	if err != nil {
		t.Fatal(err)
	}
	wantStale := map[string]bool{
		"internal/mp/mpwire_gen.go": true,
		"mp_protocol.json":          true,
	}
	for _, rel := range stale {
		delete(wantStale, rel)
	}
	if len(wantStale) != 0 {
		t.Fatalf("field deletion not caught: stale=%v, missing=%v", stale, wantStale)
	}
}

// scratchMP is the minimal helper surface the generated code references
// when the target package path ends in internal/mp (helpers are emitted
// unqualified there).
const scratchMP = `package mp

import "encoding/binary"

func AppendUint32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func AppendUint64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

func WireUint32(data []byte) (uint32, []byte, error) { return binary.LittleEndian.Uint32(data), data[4:], nil }
func WireUint64(data []byte) (uint64, []byte, error) { return binary.LittleEndian.Uint64(data), data[8:], nil }

func RegisterPayload(v any) {}
func RegisterWireCodec(id uint32, prototype any, app func(v any, buf []byte) ([]byte, error), dec func(data []byte) (any, []byte, error)) {
}
`
