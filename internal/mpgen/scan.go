// Package mpgen derives the mp message set's codecs, pricing, and
// protocol manifest from the payload structs themselves. It scans the
// module with the same stdlib-only loader the lint suite uses
// (internal/lint), discovers every type annotated with the //mp:payload
// directive, and emits per-package mpwire_gen.go files (flat binary
// codecs, WireSize pricing, registration glue) plus mp_protocol.json —
// the machine-readable protocol contract internal/lint's manifest-aware
// analyzers enforce. cmd/mpgen is the CLI; `mpgen -check` is the CI
// drift gate.
package mpgen

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"parroute/internal/lint"
	"parroute/internal/mpproto"
)

// GeneratedFileName is the per-package output file.
const GeneratedFileName = "mpwire_gen.go"

// PayloadType is one //mp:payload-annotated type scheduled for
// generation.
type PayloadType struct {
	Name   string
	Type   types.Type
	WireID uint32
	Entry  mpproto.TypeEntry
}

// GenPackage is one package that receives a generated file.
type GenPackage struct {
	Path    string
	Dir     string
	PkgName string
	Types   []PayloadType
}

// Model is everything the generator needs: the packages to write and the
// manifest they imply.
type Model struct {
	Root     string
	Module   string
	Pkgs     []*GenPackage
	Manifest *mpproto.Manifest
}

// builtinEntries are the payload shapes mp.payloadSize prices directly,
// without a generated codec: they cross the interface encoding as gob
// (wire id 0).
func builtinEntries() []mpproto.TypeEntry {
	return []mpproto.TypeEntry{
		{Name: "[]any", Kind: mpproto.TypeBuiltin, Elem: "any"},
		{Name: "[]int32", Kind: mpproto.TypeBuiltin, Elem: "int32", FlatWidth: 4},
		{Name: "bool", Kind: mpproto.TypeBuiltin, FlatWidth: 1},
		{Name: "int", Kind: mpproto.TypeBuiltin, FlatWidth: 8},
	}
}

// collectivePayloadArg maps each mp collective helper to the index of its
// payload argument (-1 when the payload is not a single value worth
// recording). Barrier is tracked for the manifest's collective census
// even though it carries no tag or payload.
var collectivePayloadArg = map[string]int{
	"Bcast":           3,
	"Gather":          3,
	"Allgather":       2,
	"AllreduceInt32s": 2,
	"AllreduceInt":    2,
	"Alltoall":        2,
	"Reduce":          3,
	"Scatter":         3,
	"Scan":            2,
}

// collectiveTagArg mirrors the tag argument indices of the collectives.
var collectiveTagArg = map[string]int{
	"Bcast":           2,
	"Gather":          2,
	"Allgather":       1,
	"AllreduceInt32s": 1,
	"AllreduceInt":    1,
	"Alltoall":        1,
	"Reduce":          2,
	"Scatter":         2,
	"Scan":            1,
}

// isTagName matches the repository's protocol tag naming convention.
func isTagName(name string) bool {
	return strings.HasPrefix(name, "tag") && len(name) > len("tag")
}

// calleeFunc resolves the statically known called function of call.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// Scan loads the module containing root and builds the generation model:
// marked payload types with deterministic wire ids, the tag table with
// statically visible payload associations, and the collective census.
// The generated files themselves are excluded from the load, so a stale
// mpwire_gen.go — even one that no longer type-checks after a payload
// edit — never blocks regeneration.
func Scan(root string) (*Model, error) {
	mod, err := lint.LoadModuleSkipping(root, GeneratedFileName)
	if err != nil {
		return nil, fmt.Errorf("mpgen: %w", err)
	}
	return scanModule(mod)
}

// ScanDirs is Scan over an explicit package set (lint fixture layout);
// used by tests.
func ScanDirs(root string, dirs []string) (*Model, error) {
	mod, err := lint.LoadDirs(root, dirs)
	if err != nil {
		return nil, fmt.Errorf("mpgen: %w", err)
	}
	return scanModule(mod)
}

func scanModule(mod *lint.Module) (*Model, error) {
	m := &Model{Root: mod.Root, Module: mod.Path}

	// Pass 1: marked payload types, per package.
	byPath := map[string]*GenPackage{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !mpproto.HasPayloadMarker(gd.Doc) && !mpproto.HasPayloadMarker(ts.Doc) {
						continue
					}
					obj := pkg.Info.Defs[ts.Name]
					if obj == nil {
						continue
					}
					entry, err := mpproto.TypeEntryFor(ts.Name.Name, pkg.Path, obj.Type())
					if err != nil {
						return nil, fmt.Errorf("mpgen: %s: %w", pkg.Path, err)
					}
					gp := byPath[pkg.Path]
					if gp == nil {
						gp = &GenPackage{Path: pkg.Path, Dir: pkg.Dir, PkgName: pkg.Types.Name()}
						byPath[pkg.Path] = gp
						m.Pkgs = append(m.Pkgs, gp)
					}
					gp.Types = append(gp.Types, PayloadType{Name: ts.Name.Name, Type: obj.Type(), Entry: entry})
				}
			}
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })

	// Deterministic wire ids: 1..N over (package, name) order. Id 0 is
	// the gob fallback.
	id := uint32(1)
	for _, gp := range m.Pkgs {
		sort.Slice(gp.Types, func(i, j int) bool { return gp.Types[i].Name < gp.Types[j].Name })
		for i := range gp.Types {
			gp.Types[i].WireID = id
			gp.Types[i].Entry.WireID = id
			id++
		}
	}

	// Pass 2: tag constants of every package that declares payloads or
	// protocol tags — the manifest's coverage set.
	covered := map[string]bool{}
	for _, gp := range m.Pkgs {
		covered[gp.Path] = true
	}
	var tags []mpproto.TagEntry
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok || !isTagName(name.Name) {
							continue
						}
						basic, ok := c.Type().Underlying().(*types.Basic)
						if !ok || basic.Info()&types.IsInteger == 0 {
							continue
						}
						v, ok := constValInt(c)
						if !ok {
							continue
						}
						covered[pkg.Path] = true
						tags = append(tags, mpproto.TagEntry{
							Name: name.Name, Package: pkg.Path, Value: v, Reserved: v < 0,
						})
					}
				}
			}
		}
	}

	// Pass 3: send/collective sites — tag→payload associations and the
	// collective census, over the covered packages.
	mpPath := mod.Path + "/internal/mp"
	payloads := map[string]map[string]bool{} // "pkg\x00tag" -> type set
	collectives := map[string]int{}
	for _, pkg := range mod.Pkgs {
		if !covered[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != mpPath {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				isMethod := sig != nil && sig.Recv() != nil
				tagIdx, payloadIdx := -1, -1
				switch {
				case isMethod && fn.Name() == "Send":
					tagIdx, payloadIdx = 1, 2
				case isMethod && fn.Name() == "Barrier":
					collectives["Barrier"]++
				case !isMethod:
					if ti, ok := collectiveTagArg[fn.Name()]; ok {
						collectives[fn.Name()]++
						tagIdx = ti
						payloadIdx = collectivePayloadArg[fn.Name()]
					}
				}
				if tagIdx < 0 || tagIdx >= len(call.Args) {
					return true
				}
				tag := namedConst(pkg.Info, call.Args[tagIdx])
				if tag == nil || payloadIdx < 0 || payloadIdx >= len(call.Args) {
					return true
				}
				tv, ok := pkg.Info.Types[call.Args[payloadIdx]]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
					return true // a relayed any — no static payload identity
				}
				key := tag.Pkg().Path() + "\x00" + tag.Name()
				if payloads[key] == nil {
					payloads[key] = map[string]bool{}
				}
				payloads[key][types.TypeString(types.Default(tv.Type), nil)] = true
				return true
			})
		}
	}
	for i := range tags {
		set := payloads[tags[i].Package+"\x00"+tags[i].Name]
		for typ := range set {
			tags[i].Payloads = append(tags[i].Payloads, typ)
		}
		sort.Strings(tags[i].Payloads)
	}
	sort.Slice(tags, func(i, j int) bool {
		if tags[i].Package != tags[j].Package {
			return tags[i].Package < tags[j].Package
		}
		if tags[i].Value != tags[j].Value {
			return tags[i].Value < tags[j].Value
		}
		return tags[i].Name < tags[j].Name
	})

	// Assemble the manifest.
	man := &mpproto.Manifest{Schema: mpproto.SchemaVersion, Module: mod.Path}
	for p := range covered {
		man.Packages = append(man.Packages, p)
	}
	sort.Strings(man.Packages)
	man.Types = builtinEntries()
	for _, gp := range m.Pkgs {
		for i := range gp.Types {
			man.Types = append(man.Types, gp.Types[i].Entry)
		}
	}
	sort.Slice(man.Types, func(i, j int) bool {
		a, b := &man.Types[i], &man.Types[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	man.Tags = tags
	for name := range collectives {
		man.Collectives = append(man.Collectives, mpproto.CollectiveEntry{Name: name, Sites: collectives[name]})
	}
	sort.Slice(man.Collectives, func(i, j int) bool { return man.Collectives[i].Name < man.Collectives[j].Name })
	m.Manifest = man
	return m, nil
}

// constValInt extracts a constant's integer value.
func constValInt(c *types.Const) (int, bool) {
	v := c.Val()
	if v == nil {
		return 0, false
	}
	i, ok := constantInt64(v)
	return int(i), ok
}

// namedConst resolves e to a declared constant object, or nil.
func namedConst(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := objOf(info, e).(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := objOf(info, e.Sel).(*types.Const); ok {
			return c
		}
	}
	return nil
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
