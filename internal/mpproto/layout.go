package mpproto

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Flat pricing rules. The widths reproduce the hand-written PR-4 batch
// pricing byte for byte (FakePinBatch 25/element, WireBatch 73/element,
// Summary 6*8 + 16/row + 24/phase, …): fixed-width scalars price at
// their encoded width, nested structs flatten recursively, and
// variable-length fields (strings, slices nested inside a priced
// element, interfaces) price at the FlatEstimate placeholder — the size
// of the length-prefixed codec's per-element header (a u32 type id plus
// a u32 length, or a u32 count plus a u32 length hint).
const FlatEstimate = 8

// Field kinds.
const (
	KindFixed     = "fixed"
	KindString    = "string"
	KindSlice     = "slice"
	KindStruct    = "struct"
	KindInterface = "interface"
)

// Type kinds.
const (
	TypeSlice   = "slice"
	TypeStruct  = "struct"
	TypeBuiltin = "builtin"
)

// PayloadMarker is the doc-comment directive that opts a type into
// codec/manifest generation: a line reading exactly "//mp:payload".
const PayloadMarker = "mp:payload"

// HasPayloadMarker reports whether a declaration's doc comment carries
// the //mp:payload directive.
func HasPayloadMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == PayloadMarker {
			return true
		}
	}
	return false
}

// qualify renders t fully qualified ("parroute/internal/metrics.Wire").
func qualify(t types.Type) string {
	return types.TypeString(t, nil)
}

// basicWidth returns the encoded width of a basic (or basic-underlying)
// type, or 0 if the kind is not a fixed-width scalar.
func basicWidth(b *types.Basic) int {
	switch b.Kind() {
	case types.Bool, types.Int8, types.Uint8:
		return 1
	case types.Int16, types.Uint16:
		return 2
	case types.Int32, types.Uint32, types.Float32:
		return 4
	case types.Int, types.Uint, types.Int64, types.Uint64, types.Uintptr, types.Float64:
		return 8
	}
	return 0
}

// FlatWidth prices t fully flattened: scalars at their width, structs
// recursively, strings/slices/interfaces at FlatEstimate.
func FlatWidth(t types.Type) (int, error) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.String {
			return FlatEstimate, nil
		}
		if w := basicWidth(u); w > 0 {
			return w, nil
		}
		return 0, fmt.Errorf("mpproto: unsupported basic type %s", qualify(t))
	case *types.Slice:
		return FlatEstimate, nil
	case *types.Interface:
		return FlatEstimate, nil
	case *types.Struct:
		n := 0
		for i := 0; i < u.NumFields(); i++ {
			w, err := FlatWidth(u.Field(i).Type())
			if err != nil {
				return 0, err
			}
			n += w
		}
		return n, nil
	}
	return 0, fmt.Errorf("mpproto: unsupported type %s (maps, pointers, chans and funcs cannot cross the wire)", qualify(t))
}

// FieldsOf derives the wire layout of a struct type.
func FieldsOf(s *types.Struct) ([]FieldEntry, error) {
	var out []FieldEntry
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		fe, err := fieldOf(f.Name(), f.Type())
		if err != nil {
			return nil, fmt.Errorf("field %s: %w", f.Name(), err)
		}
		out = append(out, fe)
	}
	return out, nil
}

func fieldOf(name string, t types.Type) (FieldEntry, error) {
	fe := FieldEntry{Name: name, Type: qualify(t)}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.String {
			fe.Kind, fe.Width = KindString, FlatEstimate
			return fe, nil
		}
		if w := basicWidth(u); w > 0 {
			fe.Kind, fe.Width = KindFixed, w
			return fe, nil
		}
		return fe, fmt.Errorf("mpproto: unsupported basic type %s", qualify(t))
	case *types.Interface:
		fe.Kind, fe.Width = KindInterface, FlatEstimate
		return fe, nil
	case *types.Slice:
		fe.Kind, fe.Width = KindSlice, FlatEstimate
		fe.Elem = qualify(u.Elem())
		w, err := FlatWidth(u.Elem())
		if err != nil {
			return fe, err
		}
		fe.ElemWidth = w
		if es, ok := u.Elem().Underlying().(*types.Struct); ok {
			fields, err := FieldsOf(es)
			if err != nil {
				return fe, err
			}
			fe.Fields = fields
		}
		return fe, nil
	case *types.Struct:
		fe.Kind = KindStruct
		w, err := FlatWidth(t)
		if err != nil {
			return fe, err
		}
		fe.Width = w
		fields, err := FieldsOf(u)
		if err != nil {
			return fe, err
		}
		fe.Fields = fields
		return fe, nil
	}
	return fe, fmt.Errorf("mpproto: unsupported field type %s", qualify(t))
}

// TypeEntryFor derives the manifest entry of a marked payload type: a
// named slice becomes a "slice" entry priced per element, a struct a
// "struct" entry priced over its fields.
func TypeEntryFor(name, pkgPath string, t types.Type) (TypeEntry, error) {
	te := TypeEntry{Name: name, Package: pkgPath}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		te.Kind = TypeSlice
		te.Elem = qualify(u.Elem())
		w, err := FlatWidth(u.Elem())
		if err != nil {
			return te, fmt.Errorf("mpproto: %s: %w", name, err)
		}
		te.FlatWidth = w
		if es, ok := u.Elem().Underlying().(*types.Struct); ok {
			fields, err := FieldsOf(es)
			if err != nil {
				return te, fmt.Errorf("mpproto: %s: %w", name, err)
			}
			te.Fields = fields
		}
		return te, nil
	case *types.Struct:
		te.Kind = TypeStruct
		w, err := FlatWidth(t)
		if err != nil {
			return te, fmt.Errorf("mpproto: %s: %w", name, err)
		}
		te.FlatWidth = w
		fields, err := FieldsOf(u)
		if err != nil {
			return te, fmt.Errorf("mpproto: %s: %w", name, err)
		}
		te.Fields = fields
		return te, nil
	}
	return te, fmt.Errorf("mpproto: %s: payload types must be structs or slices, not %s", name, qualify(t))
}

// DiffLayout compares a type's current layout (want, derived from source)
// against its manifest entry (got) and returns a description of the first
// difference, or "" when the layouts match. WireID is excluded: id
// assignment is mpgen's concern, layout drift is the analyzers'.
func DiffLayout(want, got *TypeEntry) string {
	if want.Kind != got.Kind {
		return fmt.Sprintf("kind is %s in code but %s in manifest", want.Kind, got.Kind)
	}
	if want.Elem != got.Elem {
		return fmt.Sprintf("element type is %s in code but %s in manifest", want.Elem, got.Elem)
	}
	if want.FlatWidth != got.FlatWidth {
		return fmt.Sprintf("flat width is %d in code but %d in manifest", want.FlatWidth, got.FlatWidth)
	}
	return diffFields(want.Fields, got.Fields, "")
}

func diffFields(want, got []FieldEntry, prefix string) string {
	for i := range want {
		if i >= len(got) {
			return fmt.Sprintf("field %s%s is missing from the manifest", prefix, want[i].Name)
		}
		w, g := &want[i], &got[i]
		path := prefix + w.Name
		switch {
		case w.Name != g.Name:
			return fmt.Sprintf("field %d is %s in code but %s in manifest", i, path, prefix+g.Name)
		case w.Type != g.Type:
			return fmt.Sprintf("field %s has type %s in code but %s in manifest", path, w.Type, g.Type)
		case w.Kind != g.Kind || w.Width != g.Width || w.Elem != g.Elem || w.ElemWidth != g.ElemWidth:
			return fmt.Sprintf("field %s has layout %s/%d (elem %s/%d) in code but %s/%d (elem %s/%d) in manifest",
				path, w.Kind, w.Width, w.Elem, w.ElemWidth, g.Kind, g.Width, g.Elem, g.ElemWidth)
		}
		if d := diffFields(w.Fields, g.Fields, path+"."); d != "" {
			return d
		}
	}
	if len(got) > len(want) {
		return fmt.Sprintf("field %s%s is in the manifest but not in code", prefix, got[len(want)].Name)
	}
	return ""
}
