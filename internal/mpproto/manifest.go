// Package mpproto defines the machine-readable protocol manifest shared
// by cmd/mpgen (which derives it from the payload structs) and
// internal/lint's manifest-aware analyzers (which enforce that code and
// manifest never drift apart). The manifest is the single source of truth
// for the mp message set: every payload type with its flat wire layout,
// every named protocol tag with its value and statically visible payload
// types, and the collective operations the protocols use. A future
// multi-host DMP negotiates exactly this document at handshake, so the
// encoding is canonical: one byte sequence per manifest value.
package mpproto

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// SchemaVersion identifies the manifest format. Bump only with a
// migration note in DESIGN.md §11.
const SchemaVersion = "parroute-mpproto/1"

// ManifestName is the file name the manifest is stored under, both at the
// module root (the real protocol) and inside lint fixture packages.
const ManifestName = "mp_protocol.json"

// Manifest is the protocol contract: types × fields × tags × collectives.
type Manifest struct {
	Schema string `json:"schema"`
	Module string `json:"module"`
	// Packages lists the import paths the manifest covers; the lint
	// analyzers apply manifest checks only to these packages.
	Packages    []string          `json:"packages"`
	Types       []TypeEntry       `json:"types"`
	Tags        []TagEntry        `json:"tags"`
	Collectives []CollectiveEntry `json:"collectives"`
}

// TypeEntry describes one payload type's wire identity and flat layout.
type TypeEntry struct {
	// Name is the declared type name, or the builtin spelling ("[]int32")
	// for the shapes priced directly by mp.payloadSize.
	Name    string `json:"name"`
	Package string `json:"package,omitempty"`
	// Kind is "slice" (a named batch type), "struct", or "builtin".
	Kind string `json:"kind"`
	// WireID is the type's identifier in the length-prefixed binary
	// codec's interface encoding; 0 means no generated codec (builtins
	// fall back to gob there).
	WireID uint32 `json:"wireId,omitempty"`
	// Elem is the element type of a slice kind, fully qualified.
	Elem string `json:"elem,omitempty"`
	// FlatWidth is the flat price in bytes: per element for slice kinds,
	// for the whole value (variable-length fields estimated at
	// FlatEstimate bytes) for struct kinds.
	FlatWidth int `json:"flatWidth"`
	// Fields is the field layout: of the element struct for slice kinds,
	// of the struct itself otherwise.
	Fields []FieldEntry `json:"fields,omitempty"`
}

// FieldEntry is one struct field's contribution to the wire layout.
type FieldEntry struct {
	Name string `json:"name"`
	// Type is the field's Go type, fully qualified.
	Type string `json:"type"`
	// Kind is "fixed", "string", "slice", "struct", or "interface".
	Kind string `json:"kind"`
	// Width is the field's flat price in bytes: the scalar width for
	// fixed kinds, the recursive flat width for structs, and the
	// FlatEstimate placeholder for variable-length kinds.
	Width int `json:"width"`
	// Elem and ElemWidth describe a slice field's element type.
	Elem      string `json:"elem,omitempty"`
	ElemWidth int    `json:"elemWidth,omitempty"`
	// Fields is the nested layout of a struct field or of a slice
	// field's struct element.
	Fields []FieldEntry `json:"fields,omitempty"`
}

// TagEntry is one named protocol tag constant.
type TagEntry struct {
	Name    string `json:"name"`
	Package string `json:"package"`
	Value   int    `json:"value"`
	// Reserved marks engine-owned tags (the negative range).
	Reserved bool `json:"reserved,omitempty"`
	// Payloads lists the payload types statically visible at the tag's
	// send and collective sites, fully qualified and sorted.
	Payloads []string `json:"payloads,omitempty"`
}

// CollectiveEntry records one mp collective the protocols call.
type CollectiveEntry struct {
	Name string `json:"name"`
	// Sites is the number of static call sites across the covered
	// packages.
	Sites int `json:"sites"`
}

// Encode renders the manifest in its canonical byte form: two-space
// indented JSON with a trailing newline. Equal manifests encode to equal
// bytes; the drift gate compares these bytes directly.
func (m *Manifest) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, fmt.Errorf("mpproto: encode manifest: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses a manifest and verifies its schema version.
func Decode(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("mpproto: parse manifest: %w", err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("mpproto: manifest schema %q, want %q", m.Schema, SchemaVersion)
	}
	return &m, nil
}

// Load reads and decodes the manifest at path.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mpproto: %w", err)
	}
	return Decode(data)
}

// TypeByName returns the entry for a (package, name) pair, or nil.
func (m *Manifest) TypeByName(pkg, name string) *TypeEntry {
	for i := range m.Types {
		if m.Types[i].Name == name && m.Types[i].Package == pkg {
			return &m.Types[i]
		}
	}
	return nil
}

// TagByName returns the entry for a (package, name) pair, or nil.
func (m *Manifest) TagByName(pkg, name string) *TagEntry {
	for i := range m.Tags {
		if m.Tags[i].Name == name && m.Tags[i].Package == pkg {
			return &m.Tags[i]
		}
	}
	return nil
}

// Covers reports whether the manifest's checks apply to the package.
func (m *Manifest) Covers(pkgPath string) bool {
	for _, p := range m.Packages {
		if p == pkgPath {
			return true
		}
	}
	return false
}
