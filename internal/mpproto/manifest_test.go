package mpproto

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc type-checks a single-file package and returns its scope.
func checkSrc(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

const layoutSrc = `package p

import "time"

type Side uint8

type Spec struct {
	Net  int
	X    int
	Row  int
	Side Side
}

type Batch []Spec

type Counter struct {
	Name  string
	Value int64
}

type Phase struct {
	Name     string
	Elapsed  time.Duration
	Counters []Counter
}

type Summary struct {
	Rank   int
	Phases []Phase
}

type Env struct {
	Seq uint64
	V   any
}

type Bad struct {
	M map[int]int
}
`

func lookup(t *testing.T, pkg *types.Package, name string) types.Type {
	t.Helper()
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("type %s not found", name)
	}
	return obj.Type()
}

// TestFlatWidthRules pins the pricing rules to the PR-4 hand-written
// numbers: fixed scalars at their width, flattened structs recursively,
// strings/slices at the FlatEstimate placeholder.
func TestFlatWidthRules(t *testing.T) {
	pkg := checkSrc(t, layoutSrc)
	cases := []struct {
		typ  string
		want int
	}{
		{"Spec", 25},    // 3 ints + 1 byte side
		{"Counter", 16}, // string(8) + int64(8)
		{"Phase", 24},   // string(8) + duration(8) + slice(8)
		{"Summary", 16}, // int(8) + slice(8)
		{"Env", 16},     // uint64(8) + interface(8)
	}
	for _, tc := range cases {
		got, err := FlatWidth(lookup(t, pkg, tc.typ))
		if err != nil {
			t.Fatalf("FlatWidth(%s): %v", tc.typ, err)
		}
		if got != tc.want {
			t.Errorf("FlatWidth(%s) = %d, want %d", tc.typ, got, tc.want)
		}
	}
	if _, err := FlatWidth(lookup(t, pkg, "Bad")); err == nil {
		t.Error("FlatWidth accepted a struct with a map field")
	}
}

// TestTypeEntryFor covers both payload shapes: a named batch slice priced
// per element and a struct with a nested variable-length tail.
func TestTypeEntryFor(t *testing.T) {
	pkg := checkSrc(t, layoutSrc)

	batch, err := TypeEntryFor("Batch", "p", lookup(t, pkg, "Batch"))
	if err != nil {
		t.Fatal(err)
	}
	if batch.Kind != TypeSlice || batch.Elem != "p.Spec" || batch.FlatWidth != 25 {
		t.Errorf("Batch entry = %+v, want slice of p.Spec at 25/element", batch)
	}
	if len(batch.Fields) != 4 || batch.Fields[3].Name != "Side" || batch.Fields[3].Width != 1 {
		t.Errorf("Batch element fields = %+v", batch.Fields)
	}

	sum, err := TypeEntryFor("Summary", "p", lookup(t, pkg, "Summary"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kind != TypeStruct || sum.FlatWidth != 16 {
		t.Errorf("Summary entry = %+v", sum)
	}
	phases := sum.Fields[1]
	if phases.Kind != KindSlice || phases.ElemWidth != 24 || len(phases.Fields) != 3 {
		t.Errorf("Summary.Phases layout = %+v, want slice of 24-byte Phase with 3 fields", phases)
	}

	if _, err := TypeEntryFor("Bad", "p", lookup(t, pkg, "Bad")); err == nil {
		t.Error("TypeEntryFor accepted a struct with a map field")
	}
}

// TestDiffLayoutFindsDrift exercises the drift comparisons the
// manifest-drift analyzer reports: a deleted field, a changed width, and
// a clean match.
func TestDiffLayoutFindsDrift(t *testing.T) {
	pkg := checkSrc(t, layoutSrc)
	want, err := TypeEntryFor("Batch", "p", lookup(t, pkg, "Batch"))
	if err != nil {
		t.Fatal(err)
	}

	same := want
	if d := DiffLayout(&want, &same); d != "" {
		t.Errorf("identical layouts diff: %s", d)
	}

	dropped := want
	dropped.Fields = append([]FieldEntry(nil), want.Fields[:3]...)
	if d := DiffLayout(&want, &dropped); !strings.Contains(d, "Side") || !strings.Contains(d, "missing") {
		t.Errorf("dropped-field diff = %q, want mention of missing Side", d)
	}

	widened := want
	widened.Fields = append([]FieldEntry(nil), want.Fields...)
	widened.Fields[0].Width = 4
	if d := DiffLayout(&want, &widened); !strings.Contains(d, "Net") {
		t.Errorf("width diff = %q, want mention of Net", d)
	}
}

// TestManifestRoundTrip pins the canonical encoding: decode(encode(m))
// re-encodes to identical bytes, and the schema version is enforced.
func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Schema:   SchemaVersion,
		Module:   "parroute",
		Packages: []string{"parroute/internal/parallel"},
		Types: []TypeEntry{{
			Name: "Batch", Package: "parroute/internal/parallel", Kind: TypeSlice,
			WireID: 1, Elem: "p.Spec", FlatWidth: 25,
			Fields: []FieldEntry{{Name: "Net", Type: "int", Kind: KindFixed, Width: 8}},
		}},
		Tags:        []TagEntry{{Name: "tagWires", Package: "parroute/internal/parallel", Value: 104, Payloads: []string{"parroute/internal/parallel.WireBatch"}}},
		Collectives: []CollectiveEntry{{Name: "Gather", Sites: 2}},
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Errorf("canonical encoding not stable:\n%s\nvs\n%s", data, again)
	}
	if back.TypeByName("parroute/internal/parallel", "Batch") == nil {
		t.Error("TypeByName missed the Batch entry")
	}
	if back.TagByName("parroute/internal/parallel", "tagWires") == nil {
		t.Error("TagByName missed tagWires")
	}
	if !back.Covers("parroute/internal/parallel") || back.Covers("parroute/internal/route") {
		t.Error("Covers wrong about package scope")
	}

	if _, err := Decode([]byte(`{"schema":"parroute-mpproto/999"}`)); err == nil {
		t.Error("Decode accepted a wrong schema version")
	}
}
