// Package mst computes minimum spanning trees over small dense graphs.
//
// TWGR uses MSTs twice: step 1 builds each net's approximate Steiner tree
// from the MST of its pins, and step 4 connects a net's pins and assigned
// feedthroughs with an MST over a complete graph restricted to entities in
// adjacent rows. Net degrees are small (tens, with rare thousands for clock
// nets), so an O(n^2) Prim is the right tool — no heap, no allocation noise.
package mst

import "math"

// Infinite marks a forbidden edge in a cost function. Prim avoids such
// edges whenever a spanning tree without them exists.
const Infinite int64 = math.MaxInt64 / 4

// Edge is an undirected tree edge between node indices U and V.
type Edge struct {
	U, V int
}

// Prim returns the n-1 edges of a minimum spanning tree of the complete
// graph on n nodes under the given cost function, along with the number of
// Infinite-cost edges it was forced to use (0 when the finite-cost subgraph
// is connected). cost must be symmetric; it is called O(n^2) times.
//
// n == 0 and n == 1 yield an empty tree. The edge list is in the order the
// nodes were attached, each edge pointing from the new node V to its
// attachment point U.
//
// Callers running Prim in a loop should reuse a Scratch instead; this
// wrapper allocates fresh working storage per call.
func Prim(n int, cost func(i, j int) int64) (edges []Edge, forced int) {
	var s Scratch
	return s.Prim(n, cost)
}

// Scratch carries Prim's working storage so repeated runs (one per net in
// TWGR's step 1) allocate nothing after the first large net. The zero
// value is ready to use; a Scratch is not safe for concurrent use.
//
// The fringe state (best cost, attachment point, in-tree flag) lives in a
// single contiguous arena of 16-byte nodes rather than three parallel
// slices: the O(n) pick and update loops touch every node's whole state,
// so one sequential stream replaces three, and a whole-circuit routing run
// makes one allocation here instead of three.
type Scratch struct {
	fringe []fringeNode
	edges  []Edge
}

// fringeNode is one node's Prim state. from doubles as the tree flag:
// fringeUnset marks an unreached node, fringeAttached a node already in
// the tree (its best is then meaningless), anything else is the fringe
// node's current cheapest attachment point.
type fringeNode struct {
	best int64
	from int32
}

const (
	fringeUnset    = -1
	fringeAttached = -2
)

// Prim is the allocation-reusing form of the package-level Prim. The
// returned edge slice is the Scratch's own buffer and is valid only until
// the next call — callers that retain edges must copy them.
func (s *Scratch) Prim(n int, cost func(i, j int) int64) (edges []Edge, forced int) {
	if n <= 1 {
		return nil, 0
	}
	if cap(s.fringe) < n {
		s.fringe = make([]fringeNode, n)
	}
	fringe := s.fringe[:n]
	fringe[0] = fringeNode{best: math.MaxInt64, from: fringeAttached}
	for j := 1; j < n; j++ {
		fringe[j] = fringeNode{best: cost(0, j), from: 0}
	}
	edges = s.edges[:0]
	for len(edges) < n-1 {
		// Pick the cheapest fringe node.
		v, vc := fringeUnset, int64(math.MaxInt64)
		for j := 0; j < n; j++ {
			if fringe[j].from != fringeAttached && fringe[j].best < vc {
				v, vc = j, fringe[j].best
			}
		}
		if v == fringeUnset {
			// All remaining costs are MaxInt64; attach arbitrarily to node
			// 0 so the result is still a spanning tree.
			for j := 0; j < n; j++ {
				if fringe[j].from != fringeAttached {
					v = j
					fringe[j].from = 0
					vc = Infinite
					break
				}
			}
		}
		if vc >= Infinite {
			forced++
		}
		edges = append(edges, Edge{U: int(fringe[v].from), V: v})
		fringe[v].from = fringeAttached
		for j := 0; j < n; j++ {
			if fringe[j].from != fringeAttached {
				if c := cost(v, j); c < fringe[j].best {
					fringe[j].best = c
					fringe[j].from = int32(v)
				}
			}
		}
	}
	s.edges = edges
	return edges, forced
}

// TotalCost sums the cost of the given edges under the cost function.
func TotalCost(edges []Edge, cost func(i, j int) int64) int64 {
	var total int64
	for _, e := range edges {
		total += cost(e.U, e.V)
	}
	return total
}
