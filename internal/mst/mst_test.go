package mst

import (
	"testing"
	"testing/quick"

	"parroute/internal/rng"
)

func dist(pts [][2]int) func(i, j int) int64 {
	return func(i, j int) int64 {
		dx := pts[i][0] - pts[j][0]
		dy := pts[i][1] - pts[j][1]
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return int64(dx + dy)
	}
}

func TestPrimTrivial(t *testing.T) {
	if edges, forced := Prim(0, nil); len(edges) != 0 || forced != 0 {
		t.Fatal("empty graph should have empty tree")
	}
	if edges, forced := Prim(1, nil); len(edges) != 0 || forced != 0 {
		t.Fatal("single node should have empty tree")
	}
	edges, forced := Prim(2, func(i, j int) int64 { return 5 })
	if len(edges) != 1 || forced != 0 {
		t.Fatalf("2-node tree: %v forced=%d", edges, forced)
	}
}

func TestPrimKnownTree(t *testing.T) {
	// Collinear points: MST must be the chain of consecutive points.
	pts := [][2]int{{0, 0}, {10, 0}, {3, 0}, {7, 0}}
	edges, forced := Prim(len(pts), dist(pts))
	if forced != 0 {
		t.Fatalf("forced = %d", forced)
	}
	if got := TotalCost(edges, dist(pts)); got != 10 {
		t.Fatalf("MST cost = %d, want 10", got)
	}
}

func TestPrimSpansAllNodes(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		pts := make([][2]int, n)
		for i := range pts {
			pts[i] = [2]int{r.Intn(100), r.Intn(100)}
		}
		edges, forced := Prim(n, dist(pts))
		if forced != 0 {
			t.Fatalf("forced edges on a complete finite graph")
		}
		if len(edges) != n-1 {
			t.Fatalf("%d edges for %d nodes", len(edges), n)
		}
		// Union-find connectivity.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				x = parent[x]
			}
			return x
		}
		for _, e := range edges {
			if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
				t.Fatalf("edge %v out of range", e)
			}
			parent[find(e.U)] = find(e.V)
		}
		root := find(0)
		for i := 1; i < n; i++ {
			if find(i) != root {
				t.Fatal("tree does not span all nodes")
			}
		}
	}
}

func TestPrimMinimality(t *testing.T) {
	// Against brute force on small instances: compare total cost with the
	// minimum over all spanning trees found by exhaustive Kruskal-like
	// search (n <= 6 keeps it tractable via all edge subsets).
	r := rng.New(9)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(5)
		pts := make([][2]int, n)
		for i := range pts {
			pts[i] = [2]int{r.Intn(30), r.Intn(30)}
		}
		d := dist(pts)
		edges, _ := Prim(n, d)
		got := TotalCost(edges, d)

		// Brute force: enumerate all spanning trees via bitmask over the
		// n(n-1)/2 edges.
		type edge struct{ u, v int }
		var all []edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				all = append(all, edge{i, j})
			}
		}
		best := int64(1) << 60
		for mask := 0; mask < 1<<len(all); mask++ {
			if popcount(mask) != n-1 {
				continue
			}
			parent := make([]int, n)
			for i := range parent {
				parent[i] = i
			}
			var find func(int) int
			find = func(x int) int {
				for parent[x] != x {
					x = parent[x]
				}
				return x
			}
			ok := true
			var cost int64
			for b, e := range all {
				if mask&(1<<b) == 0 {
					continue
				}
				ru, rv := find(e.u), find(e.v)
				if ru == rv {
					ok = false
					break
				}
				parent[ru] = rv
				cost += d(e.u, e.v)
			}
			if ok && cost < best {
				best = cost
			}
		}
		if got != best {
			t.Fatalf("Prim cost %d, brute force %d (n=%d)", got, best, n)
		}
	}
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestPrimForcedEdges(t *testing.T) {
	// Two components only connectable through Infinite edges.
	cost := func(i, j int) int64 {
		sameSide := (i < 2) == (j < 2)
		if sameSide {
			return 1
		}
		return Infinite
	}
	edges, forced := Prim(4, cost)
	if len(edges) != 3 {
		t.Fatalf("%d edges", len(edges))
	}
	if forced != 1 {
		t.Fatalf("forced = %d, want 1", forced)
	}
}

func TestPrimPropertyRandom(t *testing.T) {
	// Tree cost never exceeds the star from node 0 (a valid spanning tree).
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(20)
		pts := make([][2]int, n)
		for i := range pts {
			pts[i] = [2]int{r.Intn(50), r.Intn(50)}
		}
		d := dist(pts)
		edges, _ := Prim(n, d)
		var star int64
		for i := 1; i < n; i++ {
			star += d(0, i)
		}
		return TotalCost(edges, d) <= star
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
