package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"parroute/internal/gen"
	"parroute/internal/mp"
	"parroute/internal/pipeline"
	"parroute/internal/route"
)

// cancelWatchdog bounds how long a cancelled run may take to unwind
// before the test declares a hang.
const cancelWatchdog = 10 * time.Second

// cancelAtStage is an observer that cancels a context the first time any
// rank starts the named stage. One instance is shared across all ranks of
// a run, so it must be (and is) safe for concurrent use.
type cancelAtStage struct {
	stage  string
	cancel context.CancelFunc
	once   sync.Once
}

func (o *cancelAtStage) StageStart(name string) {
	if name == o.stage {
		o.once.Do(o.cancel)
	}
}

func (o *cancelAtStage) StageEnd(string, pipeline.StageMetrics) {}

// requireSettledGoroutines fails the test if the live goroutine count does
// not return to (near) baseline, dumping stacks on timeout.
func requireSettledGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSerialCancelMidStage: cancelling while the serial pipeline is inside
// a stage stops it at the next stage boundary with an error wrapping
// context.Canceled.
func TestSerialCancelMidStage(t *testing.T) {
	c := gen.Small(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelAtStage{stage: "connect", cancel: cancel}
	_, err := RunBaseline(ctx, c, Options{
		Procs: 1, Route: route.Options{Seed: 1}, Observers: []pipeline.Observer{obs},
	})
	if err == nil {
		t.Fatal("cancelled serial run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// TestSerialDeadlineExceeded: an already-expired deadline stops the serial
// pipeline before its first stage with context.DeadlineExceeded.
func TestSerialDeadlineExceeded(t *testing.T) {
	c := gen.Small(1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunBaseline(ctx, c, Options{Procs: 1, Route: route.Options{Seed: 1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestParallelCancelMidStage is the acceptance matrix: every algorithm on
// every engine, cancelled mid-run by an observer when the first rank
// reaches the "connect" stage. The run must return an error wrapping
// context.Canceled within the watchdog and leak no goroutines.
func TestParallelCancelMidStage(t *testing.T) {
	for _, algo := range Algorithms() {
		for _, mode := range []mp.Mode{mp.Virtual, mp.Inproc, mp.TCP} {
			t.Run(algo.String()+"/"+mode.String(), func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				c := gen.Small(1)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				obs := &cancelAtStage{stage: "connect", cancel: cancel}

				done := make(chan error, 1)
				go func() {
					_, err := Run(ctx, c, Options{
						Algo:      algo,
						Procs:     4,
						Mode:      mode,
						Route:     route.Options{Seed: 1},
						Observers: []pipeline.Observer{obs},
					})
					done <- err
				}()

				select {
				case err := <-done:
					if err == nil {
						t.Fatal("cancelled run returned nil error")
					}
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("error %v does not wrap context.Canceled", err)
					}
				case <-time.After(cancelWatchdog):
					t.Fatalf("watchdog: cancelled %v/%v run did not unwind within %v",
						algo, mode, cancelWatchdog)
				}
				requireSettledGoroutines(t, baseline)
			})
		}
	}
}

// TestParallelTimeout: a deadline expiring mid-run surfaces as
// context.DeadlineExceeded through the same path (cmd/twgr's -timeout).
func TestParallelTimeout(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := gen.Small(1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, c, Options{
			Algo: Hybrid, Procs: 4, Mode: mp.Inproc, Route: route.Options{Seed: 1},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
		}
	case <-time.After(cancelWatchdog):
		t.Fatalf("watchdog: timed-out run did not unwind within %v", cancelWatchdog)
	}
	requireSettledGoroutines(t, baseline)
}

// TestCancelledRunDoesNotDegrade: cancellation must not be mistaken for a
// rank loss — the serial fallback would mask the caller's own cancel.
func TestCancelledRunDoesNotDegrade(t *testing.T) {
	c := gen.Small(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelAtStage{stage: "connect", cancel: cancel}
	res, err := Run(ctx, c, Options{
		Algo: RowWise, Procs: 4, Mode: mp.Inproc,
		Route: route.Options{Seed: 1}, Observers: []pipeline.Observer{obs},
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result (Degraded=%v): cancellation must not degrade to serial", res.Degraded)
	}
}
