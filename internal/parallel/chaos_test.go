package parallel

// The chaos soak tier (scripts/check.sh runs it under -race with two
// fixed seeds): the full rowwise/netwise/hybrid pipelines execute under
// seeded fault plans on the virtual engine and must produce metrics JSON
// byte-identical to the fault-free run whenever no rank is lost — the
// effectively-once delivery guarantee end to end. A rank-crash plan must
// degrade to the serial TWGR result instead of hanging, and re-running
// any plan with the same seed must reproduce the identical event log.

import (
	"bytes"
	"context"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"parroute/internal/gen"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/route"
)

// chaosSeed lets CI sweep the fault schedule without a code change.
func chaosSeed(t *testing.T) uint64 {
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	seed, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", s, err)
	}
	return seed
}

// fastTimes shrinks a plan's injected waits so soak runs stay quick.
func fastTimes(p mp.Plan) mp.Plan {
	p.DelayBy = 5 * time.Microsecond
	p.RetryBase = 2 * time.Microsecond
	p.RetryCap = 50 * time.Microsecond
	return p
}

// soakPlans is the fault matrix of the tier; the first row is the
// acceptance-criteria plan (drop 5%, delay 10%).
func soakPlans() []struct {
	name string
	plan mp.Plan
} {
	return []struct {
		name string
		plan mp.Plan
	}{
		{"drop5-delay10", fastTimes(mp.Plan{Drop: 0.05, Delay: 0.10})},
		{"dup-reorder", fastTimes(mp.Plan{Dup: 0.10, Reorder: 0.10})},
		{"everything", fastTimes(mp.Plan{Drop: 0.04, Delay: 0.04, Dup: 0.04, Reorder: 0.04})},
	}
}

func soakOptions(algo Algorithm) Options {
	return Options{
		Algo:  algo,
		Procs: 4,
		Mode:  mp.Virtual,
		Route: route.Options{Seed: 7},
	}
}

// TestChaosSoakByteIdenticalMetrics routes the same circuit fault-free
// and under every soak plan, for all three algorithms, and requires the
// metrics JSON to match byte for byte.
func TestChaosSoakByteIdenticalMetrics(t *testing.T) {
	seed := chaosSeed(t)
	c := gen.Small(42)
	for _, algo := range Algorithms() {
		clean, err := Run(context.Background(), c, soakOptions(algo))
		if err != nil {
			t.Fatalf("%v fault-free: %v", algo, err)
		}
		cleanBytes := resultBytes(t, clean)
		for _, tc := range soakPlans() {
			opt := soakOptions(algo)
			plan := tc.plan
			plan.Seed = seed
			opt.Chaos = &plan
			res, err := Run(context.Background(), c, opt)
			if err != nil {
				t.Errorf("%v %s: %v", algo, tc.name, err)
				continue
			}
			if res.Degraded {
				t.Errorf("%v %s: degraded without a crash plan", algo, tc.name)
			}
			if res.Faults == nil || res.Faults.Sends == 0 {
				t.Fatalf("%v %s: no fault report attached", algo, tc.name)
			}
			injected := res.Faults.Drops + res.Faults.Delays + res.Faults.Dups + res.Faults.Reorders
			if injected == 0 {
				t.Errorf("%v %s: plan injected nothing (%v) — the soak proves nothing", algo, tc.name, res.Faults)
			}
			if blob := resultBytes(t, res); !bytes.Equal(cleanBytes, blob) {
				t.Errorf("%v %s seed=%d: metrics JSON differs from fault-free run (len %d vs %d)",
					algo, tc.name, seed, len(cleanBytes), len(blob))
			}
		}
	}
}

// TestChaosSoakInproc repeats the acceptance plan on the inproc engine:
// routing output is engine-independent, so even with real goroutine races
// the faulty run must reproduce the fault-free bytes.
func TestChaosSoakInproc(t *testing.T) {
	seed := chaosSeed(t)
	c := gen.Small(42)
	opt := soakOptions(RowWise)
	opt.Mode = mp.Inproc
	clean, err := Run(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	plan := fastTimes(mp.Plan{Drop: 0.05, Delay: 0.10})
	plan.Seed = seed
	opt.Chaos = &plan
	res, err := Run(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, clean), resultBytes(t, res)) {
		t.Errorf("inproc chaos run differs from fault-free run")
	}
}

// TestChaosCrashDegradesToSerial kills a rank mid-phase in each algorithm
// and requires Run to come back (not hang) with the serial TWGR result,
// marked degraded, byte-identical to RunBaseline.
func TestChaosCrashDegradesToSerial(t *testing.T) {
	seed := chaosSeed(t)
	c := gen.Small(42)
	base, err := RunBaseline(context.Background(), c, soakOptions(RowWise))
	if err != nil {
		t.Fatal(err)
	}
	baseBytes := resultBytes(t, base)
	for _, algo := range Algorithms() {
		opt := soakOptions(algo)
		plan := mp.Plan{Seed: seed, Crash: map[int]int{1: 5}}
		opt.Chaos = &plan
		done := make(chan struct{})
		var res *metrics.Result
		var runErr error
		go func() {
			defer close(done)
			res, runErr = Run(context.Background(), c, opt)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("%v: crash plan hung instead of degrading", algo)
		}
		if runErr != nil {
			t.Fatalf("%v: %v", algo, runErr)
		}
		if !res.Degraded {
			t.Fatalf("%v: crash plan did not mark the result degraded", algo)
		}
		if res.Faults == nil || res.Faults.Crashes != 1 {
			t.Errorf("%v: fault report %v, want exactly one crash", algo, res.Faults)
		}
		res.Degraded = false // only the marker may differ from the baseline
		if blob := resultBytes(t, res); !bytes.Equal(baseBytes, blob) {
			t.Errorf("%v: degraded result differs from serial baseline (len %d vs %d)",
				algo, len(baseBytes), len(blob))
		}
	}
}

// TestChaosEventLogReproducibleEndToEnd re-runs the acceptance plan and a
// crash plan through the full rowwise pipeline with the same seed and
// requires identical chaos event logs.
func TestChaosEventLogReproducibleEndToEnd(t *testing.T) {
	seed := chaosSeed(t)
	c := gen.Small(42)
	runLog := func(plan mp.Plan) string {
		opt := soakOptions(RowWise)
		plan.Seed = seed
		opt.Chaos = &plan
		var eng mp.Engine
		opt.onEngine = func(e mp.Engine) { eng = e }
		if _, err := Run(context.Background(), c, opt); err != nil {
			t.Fatal(err)
		}
		ce, ok := eng.(*mp.ChaosEngine)
		if !ok {
			t.Fatalf("engine is %T, want *mp.ChaosEngine", eng)
		}
		return strings.Join(ce.EventLog(), "\n")
	}
	for _, tc := range []struct {
		name string
		plan mp.Plan
	}{
		{"drop5-delay10", fastTimes(mp.Plan{Drop: 0.05, Delay: 0.10})},
		{"crash", mp.Plan{Crash: map[int]int{2: 9}}},
	} {
		first := runLog(tc.plan)
		if first == "" {
			t.Fatalf("%s: empty event log", tc.name)
		}
		if again := runLog(tc.plan); again != first {
			t.Errorf("%s: same seed produced a different event log", tc.name)
		}
	}
}
