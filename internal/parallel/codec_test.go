package parallel

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/metrics"
	"parroute/internal/mp"
)

// wirePayload is the common surface of every generated codec, used to
// drive the round-trip and golden tests generically.
type wirePayload interface {
	mp.Sizer
	AppendWire(buf []byte) ([]byte, error)
}

// samplePayloads returns one representative value per generated codec,
// paired with a fresh decoder target. The values exercise every field
// kind the codecs emit: fixed ints, the Side byte, bools, strings,
// nested structs (geom.Interval), and doubly nested slices
// (Summary.Phases[].Counters).
func samplePayloads() []struct {
	name   string
	value  wirePayload
	decode func(data []byte) (any, []byte, error)
} {
	dec := func(p interface {
		DecodeWire(data []byte) ([]byte, error)
	}) func(data []byte) (any, []byte, error) {
		return func(data []byte) (any, []byte, error) {
			rest, err := p.DecodeWire(data)
			return reflect.ValueOf(p).Elem().Interface(), rest, err
		}
	}
	return []struct {
		name   string
		value  wirePayload
		decode func(data []byte) (any, []byte, error)
	}{
		{"FakePinBatch", FakePinBatch{
			{Net: 7, X: 120, Row: 3, Side: circuit.Bottom},
			{Net: 9, X: -4, Row: 0, Side: circuit.Side(1)},
		}, dec(new(FakePinBatch))},
		{"CrossingBatch", CrossingBatch{
			{Net: 1, X: 55, Row: 2},
			{Net: 2, X: 0, Row: 11},
			{Net: 3, X: -1, Row: 5},
		}, dec(new(CrossingBatch))},
		{"NodeBatch", NodeBatch{
			{Net: 42, X: 17, Row: 8, Side: circuit.Bottom},
		}, dec(new(NodeBatch))},
		{"WireBatch", WireBatch{Wires: []metrics.Wire{
			{Net: 5, Channel: 2, Span: geom.Interval{Lo: 10, Hi: 90},
				Switchable: true, Row: 2, AX: 10, ARow: 1, BX: 90, BRow: 3},
			{Net: 6, Channel: 0, Span: geom.Interval{Lo: -3, Hi: 4},
				Switchable: false, Row: 0, AX: -3, ARow: 0, BX: 4, BRow: 0},
		}}, dec(new(WireBatch))},
		{"Summary", Summary{
			Rank: 3, InsertedFts: 14, ForcedEdges: 2, SwitchableWs: 9,
			SwitchFlips: 1, CoarseFlips: 4,
			RowWidths: []RowWidthMsg{{Row: 0, Width: 480}, {Row: 1, Width: 512}},
			Phases: []metrics.Phase{
				{Name: "fake-pins", Elapsed: 120 * time.Microsecond,
					Counters: []metrics.Counter{{Name: "specs", Value: 12}}},
				{Name: "connect", Elapsed: time.Millisecond, Counters: nil},
			},
		}, dec(new(Summary))},
	}
}

// TestWireSizeDifferential pins the generated WireSize methods
// byte-for-byte to the hand-written flat pricing they replaced, across a
// range of batch lengths. A layout change that alters pricing must show
// up here (and in mp_protocol.json) as an explicit diff.
func TestWireSizeDifferential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		if got, want := make(FakePinBatch, n).WireSize(), n*25; got != want {
			t.Errorf("FakePinBatch(len %d).WireSize() = %d, want %d", n, got, want)
		}
		if got, want := make(CrossingBatch, n).WireSize(), n*24; got != want {
			t.Errorf("CrossingBatch(len %d).WireSize() = %d, want %d", n, got, want)
		}
		if got, want := make(NodeBatch, n).WireSize(), n*25; got != want {
			t.Errorf("NodeBatch(len %d).WireSize() = %d, want %d", n, got, want)
		}
		if got, want := (WireBatch{Wires: make([]metrics.Wire, n)}).WireSize(), n*73; got != want {
			t.Errorf("WireBatch(%d wires).WireSize() = %d, want %d", n, got, want)
		}
		for _, m := range []int{0, 3} {
			s := Summary{RowWidths: make([]RowWidthMsg, n), Phases: make([]metrics.Phase, m)}
			if got, want := s.WireSize(), 6*8+n*16+m*24; got != want {
				t.Errorf("Summary(%d rows, %d phases).WireSize() = %d, want %d", n, m, got, want)
			}
		}
	}
}

// TestCodecRoundTrip checks encode→decode value equality and
// decode→re-encode byte identity (the codec is canonical) for every
// generated codec.
func TestCodecRoundTrip(t *testing.T) {
	for _, tc := range samplePayloads() {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := tc.value.AppendWire(nil)
			if err != nil {
				t.Fatalf("AppendWire: %v", err)
			}
			got, rest, err := tc.decode(enc)
			if err != nil {
				t.Fatalf("DecodeWire: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("DecodeWire left %d byte(s)", len(rest))
			}
			if !reflect.DeepEqual(got, normalize(tc.value)) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, tc.value)
			}
			re, err := got.(wirePayload).AppendWire(nil)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(enc, re) {
				t.Fatalf("re-encode differs:\n got %x\nwant %x", re, enc)
			}
			// The trailing bytes of a longer buffer must come back as rest.
			withTail := append(append([]byte{}, enc...), 0xAA, 0xBB)
			_, rest, err = tc.decode(withTail)
			if err != nil || !bytes.Equal(rest, []byte{0xAA, 0xBB}) {
				t.Fatalf("tail not preserved: rest=%x err=%v", rest, err)
			}
		})
	}
}

// normalize maps nil slices to the empty slices decode produces, so
// DeepEqual compares shape rather than nil-ness.
func normalize(v wirePayload) any {
	switch p := v.(type) {
	case Summary:
		if p.RowWidths == nil {
			p.RowWidths = []RowWidthMsg{}
		}
		if p.Phases == nil {
			p.Phases = []metrics.Phase{}
		}
		for i := range p.Phases {
			if p.Phases[i].Counters == nil {
				p.Phases[i].Counters = []metrics.Counter{}
			}
		}
		return p
	}
	return v
}

// TestCodecTruncation feeds every strict prefix of each encoding to the
// decoder: all must fail with mp.ErrWire, none may panic.
func TestCodecTruncation(t *testing.T) {
	for _, tc := range samplePayloads() {
		enc, err := tc.value.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(enc); n++ {
			if _, _, err := tc.decode(enc[:n]); err == nil {
				t.Fatalf("%s: decoding %d/%d bytes succeeded", tc.name, n, len(enc))
			}
		}
	}
}

// TestWireGolden pins each sample encoding to a checked-in golden file
// (hex, testdata/wire). UPDATE_GOLDEN=1 regenerates. The files double as
// the fuzz seed corpus (see FuzzCodec), so a codec change shows up both
// as a golden diff and as fresh fuzz seeds.
func TestWireGolden(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for i, tc := range samplePayloads() {
		enc, err := tc.value.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "wire", fmt.Sprintf("%s.hex", tc.name))
		got := []byte(hex.EncodeToString(enc) + "\n")
		if update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1): %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("codec %d (%s) drifted from golden %s:\n got %s want %s",
				i, tc.name, path, got, want)
		}
	}
}

// FuzzCodec is the canonical-encoding fuzz gate: any byte string the
// decoders accept must re-encode to exactly the bytes consumed
// (decode→encode identity), and the sample encodings must round-trip
// (encode→decode→re-encode identity, seeded from the golden corpus).
func FuzzCodec(f *testing.F) {
	for i, tc := range samplePayloads() {
		enc, err := tc.value.AppendWire(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(uint8(i), enc)
	}
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		decoders := samplePayloads()
		tc := decoders[int(sel)%len(decoders)]
		v, rest, err := tc.decode(data)
		if err != nil {
			return // malformed input is fine; panics and false accepts are not
		}
		consumed := data[:len(data)-len(rest)]
		re, err := v.(wirePayload).AppendWire(nil)
		if err != nil {
			t.Fatalf("%s: decoded value failed to re-encode: %v", tc.name, err)
		}
		if !bytes.Equal(consumed, re) {
			t.Fatalf("%s: decode/encode not canonical:\nconsumed %x\nre-enc   %x",
				tc.name, consumed, re)
		}
	})
}
