package parallel

import (
	"context"
	"fmt"
	"sort"
	"time"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/partition"
	"parroute/internal/pipeline"
	"parroute/internal/route"
	"parroute/internal/steiner"
)

// workerSession builds one rank's pipeline session: a private phase
// recorder (whose records travel home in the Summary) plus the caller's
// shared observers.
func workerSession(opt Options) (*pipeline.Session, *pipeline.PhaseRecorder) {
	rec := pipeline.NewPhaseRecorder()
	s := pipeline.NewSession(append([]pipeline.Observer{rec}, opt.Observers...)...)
	return s, rec
}

// stage adapts a plain worker step to a pipeline stage; communication and
// compute both count toward the stage's wall time (the paper charges the
// sync cost to the phase that needs it).
func stage(name string, fn func(s *pipeline.Session) error) pipeline.Stage {
	return pipeline.Func(name, func(_ context.Context, s *pipeline.Session) error {
		return fn(s)
	})
}

// computeCrossings implements the fake-pin placement of §4: for every net
// this rank owns whose pins span more than one row block, build the net's
// Steiner tree and, wherever a segment's vertical run passes a partition
// boundary, emit a fake-pin spec for each of the two adjacent blocks at
// the crossing column (Figure 2). Returns one spec list per block.
func computeCrossings(c *circuit.Circuit, blocks []partition.RowBlock, owner []int, rank int) []FakePinBatch {
	specs := make([]FakePinBatch, len(blocks))
	if len(blocks) == 1 {
		return specs
	}
	for n := range c.Nets {
		if owner[n] != rank {
			continue
		}
		pins := c.Nets[n].Pins
		if len(pins) < 2 {
			continue
		}
		minRow, maxRow := c.Pins[pins[0]].Row, c.Pins[pins[0]].Row
		for _, pid := range pins[1:] {
			r := c.Pins[pid].Row
			minRow = geom.Min(minRow, r)
			maxRow = geom.Max(maxRow, r)
		}
		if partition.BlockOf(blocks, minRow) == partition.BlockOf(blocks, maxRow) {
			continue // entirely within one block: no splitting needed
		}
		for _, seg := range steiner.BuildNet(c, n) {
			ps := route.Place(c, seg)
			kp := partition.BlockOf(blocks, c.Pins[ps.PinAtP].Row)
			kq := partition.BlockOf(blocks, c.Pins[ps.PinAtQ].Row)
			if kp > kq {
				kp, kq = kq, kp
			}
			if kp == kq {
				continue // the owning block routes this segment whole
			}
			// The segment must be split at exactly the boundaries between
			// its endpoints' blocks. Each such boundary channel S lies in
			// the segment's channel range [CP, CQ].
			//
			// The crossing column matters: when an endpoint's own access
			// channel IS the boundary, the fake pin goes at that
			// endpoint's x, so the span between the endpoints stays on
			// the other side — where that block's coarse routing is still
			// free to place it in either adjacent channel, exactly as the
			// unsplit segment could. Crossings strictly inside the
			// vertical run sit at the run's column.
			runs := ps.CurrentRuns()
			for j := kp; j < kq; j++ {
				s := blocks[j+1].Lo
				var x int
				switch {
				case ps.CP == ps.CQ:
					x = (ps.XP + ps.XQ) / 2 // flat hand-off inside the channel
				case s >= ps.CQ:
					x = ps.XQ
				case s <= ps.CP:
					x = ps.XP
				default:
					x = runs.VCol
				}
				specs[j] = append(specs[j], FakePinSpec{
					Net: n, X: x, Row: s - 1, Side: circuit.Top,
				})
				specs[j+1] = append(specs[j+1], FakePinSpec{
					Net: n, X: x, Row: s, Side: circuit.Bottom,
				})
			}
		}
	}
	return specs
}

// exchangeFakePins all-to-alls the fake-pin specs and returns this rank's,
// concatenated in source-rank order (deterministic).
func exchangeFakePins(comm mp.Comm, specs []FakePinBatch) ([]FakePinSpec, error) {
	vs := make([]any, comm.Size())
	for k := range vs {
		vs[k] = specs[k]
	}
	in, err := mp.Alltoall(comm, tagFakePins, vs)
	if err != nil {
		return nil, err
	}
	var mine []FakePinSpec
	for r, raw := range in {
		batch, ok := raw.(FakePinBatch)
		if !ok {
			return nil, fmt.Errorf("parallel: fake pins from rank %d arrived as %T", r, raw)
		}
		mine = append(mine, batch...)
	}
	return mine, nil
}

// buildTrimmedSubCircuit constructs the same sub-circuit as
// buildSubCircuit but holds only this block's cells and pins: foreign
// rows stay as empty placeholders (so channel and row indices remain
// global) and IDs are re-issued locally. Per-worker memory then scales
// with the block instead of the whole design — the paper's motivation for
// the row partition. Net IDs (the only identifiers that cross workers)
// are preserved, and per-net pin order matches buildSubCircuit's, so
// routing results are identical.
func buildTrimmedSubCircuit(base *circuit.Circuit, block partition.RowBlock, fakes []FakePinSpec) *circuit.Circuit {
	sub := &circuit.Circuit{
		Name:       base.Name,
		CellHeight: base.CellHeight,
		FeedWidth:  base.FeedWidth,
	}
	for range base.Rows {
		sub.AddRow()
	}
	for n := range base.Nets {
		sub.AddNet(base.Nets[n].Name)
	}
	// Copy the block's cells row-major, preserving in-row order and
	// absolute positions; remember the pin ID mapping.
	pinMap := make(map[int]int)
	for r := block.Lo; r <= block.Hi; r++ {
		for _, cid := range base.Rows[r].Cells {
			cell := &base.Cells[cid]
			newCell := len(sub.Cells)
			sub.Cells = append(sub.Cells, circuit.Cell{
				ID: newCell, Row: r, X: cell.X, Width: cell.Width, Feed: cell.Feed,
			})
			sub.Rows[r].Cells = append(sub.Rows[r].Cells, newCell)
			for _, pid := range cell.Pins {
				p := base.Pins[pid]
				newPin := len(sub.Pins)
				// Net membership is attached below in base order.
				sub.Pins = append(sub.Pins, circuit.Pin{
					ID: newPin, Net: circuit.NoNet, Cell: newCell, Offset: p.Offset,
					X: p.X, Row: p.Row, Side: p.Side,
				})
				sub.Cells[newCell].Pins = append(sub.Cells[newCell].Pins, newPin)
				pinMap[pid] = newPin
			}
		}
	}
	// Rebuild net pin lists in the base's per-net order (the same order
	// buildSubCircuit's filter preserves).
	for n := range base.Nets {
		for _, pid := range base.Nets[n].Pins {
			if newPin, ok := pinMap[pid]; ok {
				sub.Pins[newPin].Net = n
				sub.Nets[n].Pins = append(sub.Nets[n].Pins, newPin)
			}
		}
	}
	for _, spec := range fakes {
		sub.AddFakePin(spec.Net, spec.X, spec.Row, spec.Side)
	}
	return sub
}

// buildSubCircuit constructs this block's row-wise sub-circuit: a clone of
// the base where every net is restricted to its pins inside the block,
// plus the fake pins assigned to this block. Cells of foreign rows remain
// placed (their geometry is needed for global channel indices) but carry
// no net pins, so the router never touches them.
func buildSubCircuit(base *circuit.Circuit, block partition.RowBlock, fakes []FakePinSpec) *circuit.Circuit {
	sub := base.Clone()
	for n := range sub.Nets {
		net := &sub.Nets[n]
		kept := net.Pins[:0]
		for _, pid := range net.Pins {
			if block.Contains(sub.Pins[pid].Row) {
				kept = append(kept, pid)
			} else {
				sub.Pins[pid].Net = circuit.NoNet
			}
		}
		net.Pins = kept
	}
	for _, spec := range fakes {
		sub.AddFakePin(spec.Net, spec.X, spec.Row, spec.Side)
	}
	return sub
}

// globalCoreWidth agrees on the post-insertion core width: the maximum
// over every worker's owned rows.
func globalCoreWidth(comm mp.Comm, sub *circuit.Circuit, block partition.RowBlock) (int, error) {
	w := 1
	for r := block.Lo; r <= block.Hi; r++ {
		w = geom.Max(w, sub.RowWidth(r))
	}
	return mp.AllreduceInt(comm, tagWidths, w, mp.MaxInt)
}

// syncBoundaryOccupancy exchanges the column counts of each shared
// boundary channel with the neighboring workers and adds theirs into occ
// as fixed background, so switchable-segment optimization evaluates flips
// against everything known to occupy the shared channel (§4: "the track
// information in the shared channel is synchronized between two adjacent
// processors").
func syncBoundaryOccupancy(comm mp.Comm, blocks []partition.RowBlock, occ *route.Occupancy) error {
	rank := comm.Rank()
	// Lower boundary: channel blocks[rank].Lo, shared with rank-1.
	if rank > 0 {
		if err := comm.Send(rank-1, tagBoundaryLo, occ.ChannelCounts(blocks[rank].Lo)); err != nil {
			return err
		}
	}
	// Upper boundary: channel blocks[rank+1].Lo, shared with rank+1.
	if rank+1 < comm.Size() {
		if err := comm.Send(rank+1, tagBoundaryHi, occ.ChannelCounts(blocks[rank+1].Lo)); err != nil {
			return err
		}
	}
	if rank > 0 {
		raw, err := comm.Recv(rank-1, tagBoundaryHi)
		if err != nil {
			return err
		}
		counts, ok := raw.([]int32)
		if !ok {
			return fmt.Errorf("parallel: boundary counts from rank %d arrived as %T", rank-1, raw)
		}
		if err := occ.AddChannelCounts(blocks[rank].Lo, counts); err != nil {
			return err
		}
	}
	if rank+1 < comm.Size() {
		raw, err := comm.Recv(rank+1, tagBoundaryLo)
		if err != nil {
			return err
		}
		counts, ok := raw.([]int32)
		if !ok {
			return fmt.Errorf("parallel: boundary counts from rank %d arrived as %T", rank+1, raw)
		}
		if err := occ.AddChannelCounts(blocks[rank+1].Lo, counts); err != nil {
			return err
		}
	}
	return nil
}

// ownRowWidths reports the post-insertion widths of this block's rows.
func ownRowWidths(sub *circuit.Circuit, block partition.RowBlock) []RowWidthMsg {
	out := make([]RowWidthMsg, 0, block.Rows())
	for r := block.Lo; r <= block.Hi; r++ {
		out = append(out, RowWidthMsg{Row: r, Width: sub.RowWidth(r)})
	}
	return out
}

// rawGather is rank 0's collected run output, merged into a Result after
// the simulated run completes (quality evaluation is not routing work, so
// it stays outside the timed region — the serial baseline excludes its
// finalize the same way; the gather's communication cost is still paid
// inside the run).
type rawGather struct {
	wireBatches []any
	summaries   []any
}

// gatherResults collects every worker's wires and counters at rank 0 and
// stores the raw batches in out.raw; other ranks just send.
func gatherResults(comm mp.Comm, wires []metrics.Wire, sum Summary, out *runOutput) error {
	wbs, err := mp.Gather(comm, 0, tagWires, WireBatch{Wires: wires})
	if err != nil {
		return err
	}
	sums, err := mp.Gather(comm, 0, tagSummary, sum)
	if err != nil {
		return err
	}
	if comm.Rank() == 0 {
		out.raw = &rawGather{wireBatches: wbs, summaries: sums}
	}
	return nil
}

// merge assembles the gathered batches into the final result.
func (raw *rawGather) merge(base *circuit.Circuit, opt Options) (*metrics.Result, error) {
	res := &metrics.Result{Circuit: base.Name}
	coreW := 1
	for r := range raw.wireBatches {
		wb, ok := raw.wireBatches[r].(WireBatch)
		if !ok {
			return nil, fmt.Errorf("parallel: wires from rank %d arrived as %T", r, raw.wireBatches[r])
		}
		res.Wires = append(res.Wires, wb.Wires...)
		s, ok := raw.summaries[r].(Summary)
		if !ok {
			return nil, fmt.Errorf("parallel: summary from rank %d arrived as %T", r, raw.summaries[r])
		}
		res.Feedthroughs += s.InsertedFts
		res.ForcedEdges += s.ForcedEdges
		res.SwitchableWires += s.SwitchableWs
		res.SwitchFlips += s.SwitchFlips
		res.CoarseFlips += s.CoarseFlips
		for _, rw := range s.RowWidths {
			coreW = geom.Max(coreW, rw.Width)
		}
	}
	res.CoreWidth = coreW
	res.Phases = mergePhases(raw.summaries)
	res.Finalize(base.NumChannels(), len(base.Rows), base.CellHeight, opt.Route.TrackPitch)
	return res, nil
}

// mergePhases aggregates per-worker phase records into one timeline: the
// union of every rank's phase names in first-seen order (a phase a rank
// skipped — or one absent on rank 0 — is never dropped), the maximum
// elapsed across ranks per phase (a critical-path approximation), and the
// sum of each stage-scoped counter across ranks.
func mergePhases(summaries []any) []metrics.Phase {
	var order []string
	elapsed := map[string]time.Duration{}
	counters := map[string]map[string]int64{}
	counterOrder := map[string][]string{}
	for _, raw := range summaries {
		s, ok := raw.(Summary)
		if !ok {
			continue
		}
		for _, ph := range s.Phases {
			if _, seen := elapsed[ph.Name]; !seen {
				order = append(order, ph.Name)
				counters[ph.Name] = map[string]int64{}
			}
			if ph.Elapsed > elapsed[ph.Name] {
				elapsed[ph.Name] = ph.Elapsed
			}
			for _, c := range ph.Counters {
				if _, seen := counters[ph.Name][c.Name]; !seen {
					counterOrder[ph.Name] = append(counterOrder[ph.Name], c.Name)
				}
				counters[ph.Name][c.Name] += c.Value
			}
		}
	}
	out := make([]metrics.Phase, 0, len(order))
	for _, name := range order {
		ph := metrics.Phase{Name: name, Elapsed: elapsed[name]}
		for _, cn := range counterOrder[name] {
			ph.Counters = append(ph.Counters, metrics.Counter{Name: cn, Value: counters[name][cn]})
		}
		out = append(out, ph)
	}
	return out
}

// collectNodes groups NodeMsg contributions (already filtered to nets this
// rank owns) into per-net node lists, in arrival order.
func collectNodes(in []any) (map[int][]route.Node, error) {
	byNet := make(map[int][]route.Node)
	for r, raw := range in {
		batch, ok := raw.(NodeBatch)
		if !ok {
			return nil, fmt.Errorf("parallel: nodes from rank %d arrived as %T", r, raw)
		}
		for _, nm := range batch {
			byNet[nm.Net] = append(byNet[nm.Net], route.Node{
				X: nm.X, Row: nm.Row, Side: nm.Side, Pin: -1,
			})
		}
	}
	return byNet, nil
}

// connectOwnedNets runs step 4 for every net in byNet and returns the
// wires plus the forced-edge count. Net IDs are visited in sorted order
// for determinism. occ is the owner's (necessarily partial: it sees only
// this rank's nets) live occupancy for switchable channel choices — the
// interference the paper's §5 describes.
func connectOwnedNets(byNet map[int][]route.Node, occ *route.Occupancy) (wires []metrics.Wire, forced int) {
	nets := make([]int, 0, len(byNet))
	for n := range byNet {
		nets = append(nets, n)
	}
	sort.Ints(nets)
	for _, n := range nets {
		nodes := byNet[n]
		conns, f := route.ConnectNodes(n, nodes, occ)
		forced += f
		for i := range conns {
			wires = append(wires, conns[i].Wire(nodes))
		}
	}
	return wires, forced
}
