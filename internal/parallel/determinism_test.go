package parallel

import (
	"bytes"
	"context"
	"testing"

	"parroute/internal/gen"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/route"
)

// resultBytes serializes a result with the wall-clock fields zeroed:
// Elapsed and Phases are measurements of the host machine, everything
// else is routing output and must be reproducible bit for bit.
func resultBytes(t *testing.T, res *metrics.Result) []byte {
	t.Helper()
	res.Elapsed = 0
	res.Phases = nil
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicMetricsAcrossRuns is the regression test the
// parroutecheck rules exist to protect: routing the same circuit with the
// same seed must produce byte-identical metrics JSON on every run, for
// every algorithm and every worker count — under the Inproc engine, where
// goroutines really race for the scheduler. Only per-worker rng streams
// (rng.Split), rank-ordered merges, and sorted map walks make this hold.
func TestDeterministicMetricsAcrossRuns(t *testing.T) {
	c := gen.Small(42)
	for _, algo := range Algorithms() {
		for _, procs := range []int{1, 2, 4} {
			var first []byte
			for run := 0; run < 2; run++ {
				res, err := Run(context.Background(), c, Options{
					Algo:  algo,
					Procs: procs,
					Mode:  mp.Inproc,
					Route: route.Options{Seed: 7},
				})
				if err != nil {
					t.Fatalf("%v procs=%d run=%d: %v", algo, procs, run, err)
				}
				blob := resultBytes(t, res)
				if run == 0 {
					first = blob
					continue
				}
				if !bytes.Equal(first, blob) {
					t.Errorf("%v procs=%d: run 2 metrics JSON differs from run 1 (len %d vs %d)",
						algo, procs, len(first), len(blob))
				}
			}
		}
	}
}
