package parallel

// The multi-process tier of the golden oracle: every rank of the mesh
// runs parallel.Run with its own Options.Dist — its own engine, its own
// sockets — exactly as N separate twgr processes would, and rank 0's
// merged metrics JSON must stay byte-identical to the committed goldens.
// Routing output is transport-independent; the framed TCP mesh is just
// another engine under the same algorithms.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"parroute/internal/circuit"
	"parroute/internal/gen"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/route"
)

// distAddr reserves a loopback rendezvous address: bind, record, release.
func distAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// runDist executes Run at every rank of a ranks-wide TCP mesh, one
// goroutine per rank standing in for one OS process, and returns each
// rank's result and error. Only rank 0 may carry a result.
func runDist(t *testing.T, c *circuit.Circuit, opt Options, ranks int) ([]*metrics.Result, []error) {
	t.Helper()
	addr := distAddr(t)
	results := make([]*metrics.Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := opt
			o.Procs = ranks
			o.Mode = mp.TCP
			o.Dist = &mp.NetConfig{Rank: r, Ranks: ranks, Addr: addr, RendezvousTimeout: 30 * time.Second}
			results[r], errs[r] = Run(context.Background(), c, o)
		}(r)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("distributed run over %d ranks hung", ranks)
	}
	return results, errs
}

// distResult runs the mesh and asserts the healthy-path contract: no
// rank errors, workers return nil, rank 0 returns the merged result.
func distResult(t *testing.T, c *circuit.Circuit, opt Options, ranks int) *metrics.Result {
	t.Helper()
	results, errs := runDist(t, c, opt, ranks)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < ranks; r++ {
		if results[r] != nil {
			t.Fatalf("worker rank %d returned a result; only rank 0 gathers", r)
		}
	}
	if results[0] == nil {
		t.Fatal("rank 0 returned no result")
	}
	return results[0]
}

// TestDistMeshMatchesGoldens routes both golden circuits with all three
// algorithms across 1-, 2- and 4-rank process meshes and requires rank
// 0's metrics JSON to match the committed goldens byte for byte — the
// same files the inproc and virtual engines are pinned to.
func TestDistMeshMatchesGoldens(t *testing.T) {
	primary2, err := gen.Benchmark("primary2", 7)
	if err != nil {
		t.Fatal(err)
	}
	circuits := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"small", gen.Small(42)},
		{"primary2", primary2},
	}
	for _, tc := range circuits {
		t.Run(tc.name, func(t *testing.T) {
			for _, algo := range Algorithms() {
				for _, ranks := range []int{1, 2, 4} {
					res := distResult(t, tc.c, Options{Algo: algo, Route: route.Options{Seed: 7}}, ranks)
					name := fmt.Sprintf("%s-%v-p%d.json", tc.name, algo, ranks)
					want, err := os.ReadFile(filepath.Join("testdata", "golden", name))
					if err != nil {
						t.Fatalf("missing golden %s: %v", name, err)
					}
					if got := resultBytes(t, res); !bytes.Equal(want, got) {
						t.Errorf("%v ranks=%d: multi-process metrics JSON differs from golden %s (len %d vs %d)",
							algo, ranks, name, len(want), len(got))
					}
				}
			}
		})
	}
}

// TestDistGobWireMatchesGolden repeats one golden cell with every
// payload forced through the gob fallback: the wire encoding must never
// influence routing output, only transfer time.
func TestDistGobWireMatchesGolden(t *testing.T) {
	c := gen.Small(42)
	opt := Options{Algo: Hybrid, Route: route.Options{Seed: 7}, GobWire: true}
	res := distResult(t, c, opt, 2)
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "small-hybrid-p2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := resultBytes(t, res); !bytes.Equal(want, got) {
		t.Errorf("gob-wire mesh differs from golden (len %d vs %d)", len(want), len(got))
	}
}

// TestDistChaosCrashDegradesAtRankZero kills one process of the mesh
// mid-phase: rank 0 must come back degraded with the serial baseline
// bytes, and the surviving workers must read the loss as ErrRankLost —
// the cross-process version of TestChaosCrashDegradesToSerial. (The
// Chaos/Crash name keeps it inside the check.sh soak tier.)
func TestDistChaosCrashDegradesAtRankZero(t *testing.T) {
	seed := chaosSeed(t)
	c := gen.Small(42)
	base, err := RunBaseline(context.Background(), c, Options{Procs: 1, Route: route.Options{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	baseBytes := resultBytes(t, base)

	plan := mp.Plan{Seed: seed, Crash: map[int]int{1: 5}}
	opt := Options{Algo: RowWise, Route: route.Options{Seed: 7}, Chaos: &plan}
	results, errs := runDist(t, c, opt, 3)

	if errs[0] != nil {
		t.Fatalf("rank 0: %v, want a degraded result", errs[0])
	}
	res := results[0]
	if res == nil || !res.Degraded {
		t.Fatalf("rank 0 result = %+v, want the degraded serial fallback", res)
	}
	res.Degraded = false // only the marker may differ from the baseline
	if blob := resultBytes(t, res); !bytes.Equal(baseBytes, blob) {
		t.Errorf("degraded result differs from serial baseline (len %d vs %d)", len(baseBytes), len(blob))
	}
	// The crashed rank and the bystander both lose the mesh; neither may
	// hand back a result of its own.
	for _, r := range []int{1, 2} {
		if !errors.Is(errs[r], mp.ErrRankLost) {
			t.Errorf("rank %d returned %v, want ErrRankLost", r, errs[r])
		}
		if results[r] != nil {
			t.Errorf("rank %d returned a result after losing the mesh", r)
		}
	}
}

// TestDistRanksMismatchRejected: Procs is what the algorithms partition
// for; a mesh of a different width must be refused, not reconciled.
func TestDistRanksMismatchRejected(t *testing.T) {
	opt := Options{
		Algo:  RowWise,
		Procs: 4,
		Mode:  mp.TCP,
		Route: route.Options{Seed: 7},
		Dist:  &mp.NetConfig{Rank: 0, Ranks: 2, Addr: "127.0.0.1:1"},
	}
	if _, err := Run(context.Background(), gen.Small(42), opt); err == nil {
		t.Fatal("Dist.Ranks != Procs accepted")
	}
}
