package parallel_test

import (
	"context"
	"fmt"

	"parroute/internal/gen"
	"parroute/internal/parallel"
	"parroute/internal/route"
)

// ExampleRun routes a circuit with the hybrid algorithm on four simulated
// processors and compares quality against the serial baseline. Results are
// deterministic; only timing varies between machines.
func ExampleRun() {
	c := gen.Small(42)
	base, err := parallel.RunBaseline(context.Background(), c, parallel.Options{Procs: 1, Route: route.Options{Seed: 1}})
	if err != nil {
		panic(err)
	}
	res, err := parallel.Run(context.Background(), c, parallel.Options{
		Algo:  parallel.Hybrid,
		Procs: 4,
		Route: route.Options{Seed: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", res.Algo)
	fmt.Println("every net connected:", res.ForcedEdges == 0)
	fmt.Printf("quality within 10%% of serial: %v\n", res.ScaledTracks(base) < 1.10)
	// Output:
	// algorithm: hybrid
	// every net connected: true
	// quality within 10% of serial: true
}
