package parallel

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parroute/internal/circuit"
	"parroute/internal/gen"
	"parroute/internal/mp"
	"parroute/internal/route"
)

// TestGoldenMetrics pins the routing output — not just run-to-run, like
// TestDeterministicMetricsAcrossRuns, but across code changes: the metrics
// JSON (wall-clock fields zeroed) must stay byte-identical to the
// committed goldens captured before the PR-4 hot-path optimizations. Any
// "optimization" that alters a routing decision shows up here as a diff.
//
// Refresh (only when an intentional quality change lands) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/parallel -run TestGoldenMetrics
func TestGoldenMetrics(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""

	primary2, err := gen.Benchmark("primary2", 7)
	if err != nil {
		t.Fatal(err)
	}
	circuits := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"small", gen.Small(42)},
		{"primary2", primary2},
	}

	for _, tc := range circuits {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunBaseline(context.Background(), tc.c, Options{Procs: 1, Route: route.Options{Seed: 7}})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("%s-serial.json", tc.name), resultBytes(t, res), update)

			for _, algo := range Algorithms() {
				for _, procs := range []int{1, 2, 4} {
					res, err := Run(context.Background(), tc.c, Options{
						Algo:  algo,
						Procs: procs,
						Mode:  mp.Inproc,
						Route: route.Options{Seed: 7},
					})
					if err != nil {
						t.Fatalf("%v procs=%d: %v", algo, procs, err)
					}
					name := fmt.Sprintf("%s-%v-p%d.json", tc.name, algo, procs)
					checkGolden(t, name, resultBytes(t, res), update)
				}
			}
		})
	}
}

func checkGolden(t *testing.T, name string, got []byte, update bool) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1 to create): %v", name, err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s: metrics JSON differs from committed golden (len %d vs %d); "+
			"routing output changed — if intentional, refresh with UPDATE_GOLDEN=1",
			name, len(want), len(got))
	}
}
