package parallel

import (
	"context"
	"fmt"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/partition"
	"parroute/internal/pipeline"
	"parroute/internal/route"
)

// hybridWorker is one rank of the hybrid pin-partition algorithm (§6):
// identical to row-wise through feedthrough assignment, but net connection
// (step 4) is done for each *whole* net by a single owner, eliminating the
// duplicated boundary-channel wiring of independent sub-net connection
// (the paper's Figure 3 artifact). The resulting wires are redistributed
// to channel owners for switchable optimization.
//
// Each step is a pipeline stage over the rank's session; stage names
// shared with the serial router are the serial router's own, "stitch" is
// the wire redistribution that has no serial counterpart.
func hybridWorker(ctx context.Context, comm mp.Comm, base *circuit.Circuit, blocks []partition.RowBlock,
	owner []int, opt Options, out *runOutput) error {

	rank := comm.Rank()
	block := blocks[rank]
	ropt := opt.Route
	ropt.Seed = workerSeed(opt.Route.Seed, rank)
	ropt.GridWidth = base.CoreWidth()

	// State flowing between stages.
	var (
		sub       *circuit.Circuit
		rt        *route.Router
		myFakes   []FakePinSpec
		connected []metrics.Wire
		occ       *route.Occupancy
		forced    int
		flips     int
		myWires   []metrics.Wire
	)

	ses, rec := workerSession(opt)
	stages := []pipeline.Stage{
		stage("crossings", func(s *pipeline.Session) error {
			// Phases 1-3 run exactly the row-wise pipeline through
			// feedthrough assignment (fake pins keep the coarse routing and
			// feedthrough bookkeeping purely local).
			specs := computeCrossings(base, blocks, owner, rank)
			var err error
			myFakes, err = exchangeFakePins(comm, specs)
			if err != nil {
				return fmt.Errorf("hybrid: fake-pin exchange: %w", err)
			}
			s.Count("fake-pins", int64(len(myFakes)))
			return nil
		}),
		stage("subcircuit", func(_ *pipeline.Session) error {
			if opt.TrimSubcircuits {
				sub = buildTrimmedSubCircuit(base, block, myFakes)
			} else {
				sub = buildSubCircuit(base, block, myFakes)
			}
			rt = route.NewRouter(sub, ropt)
			return nil
		}),
		pipeline.Func("steiner", func(ctx context.Context, s *pipeline.Session) error {
			if err := rt.BuildTrees(ctx); err != nil {
				return err
			}
			s.Count("segments", int64(len(rt.Segs)))
			return nil
		}),
		stage("coarse", func(s *pipeline.Session) error {
			rt.CoarseRoute()
			s.Count("coarse-flips", int64(rt.CoarseFlips))
			return nil
		}),
		stage("ft-insert", func(s *pipeline.Session) error {
			rt.InsertFeedthroughs()
			s.Count("inserted-fts", int64(rt.InsertedFts))
			return nil
		}),
		pipeline.Func("ft-assign", func(ctx context.Context, _ *pipeline.Session) error {
			return rt.AssignFeedthroughs(ctx)
		}),
		stage("connect", func(s *pipeline.Session) error {
			// Ship every net's connection nodes (real pins and bound
			// feedthroughs in this block, with authoritative post-insertion
			// coordinates; fake pins are splitting artifacts and stay home)
			// to the net's owner, which connects the whole net at once.
			contrib := make([]NodeBatch, comm.Size())
			for n := range sub.Nets {
				dest := owner[n]
				for _, pid := range sub.Nets[n].Pins {
					p := &sub.Pins[pid]
					if p.Fake || !block.Contains(p.Row) {
						continue
					}
					contrib[dest] = append(contrib[dest], NodeMsg{Net: n, X: p.X, Row: p.Row, Side: p.Side})
				}
			}
			vs := make([]any, comm.Size())
			for k := range vs {
				vs[k] = contrib[k]
			}
			in, err := mp.Alltoall(comm, tagNetNodes, vs)
			if err != nil {
				return fmt.Errorf("hybrid: net-node exchange: %w", err)
			}
			byNet, err := collectNodes(in)
			if err != nil {
				return err
			}
			connOcc := route.NewOccupancy(sub.NumChannels(), base.CoreWidth()*2, ropt.GridColWidth)
			connected, forced = connectOwnedNets(byNet, connOcc)
			s.Count("wires", int64(len(connected)))
			s.Count("forced-edges", int64(forced))
			return nil
		}),
		stage("stitch", func(_ *pipeline.Session) error {
			// Redistribute wires to the workers owning their channels
			// (switchable wires go to the owner of their row, whose two
			// candidate channels they alternate between), then synchronize
			// the shared boundary channels once with the neighbors.
			outWires := make([][]metrics.Wire, comm.Size())
			numRows := len(base.Rows)
			for i := range connected {
				w := connected[i]
				var dest int
				if w.Switchable {
					dest = partition.BlockOf(blocks, w.Row)
				} else {
					dest = partition.BlockOf(blocks, geom.Min(w.Channel, numRows-1))
				}
				outWires[dest] = append(outWires[dest], w)
			}
			vs := make([]any, comm.Size())
			for k := range vs {
				vs[k] = WireBatch{Wires: outWires[k]}
			}
			in, err := mp.Alltoall(comm, tagWiresRedist, vs)
			if err != nil {
				return fmt.Errorf("hybrid: wire redistribution: %w", err)
			}
			for r, raw := range in {
				wb, ok := raw.(WireBatch)
				if !ok {
					return fmt.Errorf("parallel: redistributed wires from rank %d arrived as %T", r, raw)
				}
				myWires = append(myWires, wb.Wires...)
			}
			coreW, err := globalCoreWidth(comm, sub, block)
			if err != nil {
				return fmt.Errorf("hybrid: core-width sync: %w", err)
			}
			occ = route.NewOccupancy(sub.NumChannels(), coreW, ropt.GridColWidth)
			occ.AddWires(myWires)
			if err := syncBoundaryOccupancy(comm, blocks, occ); err != nil {
				return fmt.Errorf("hybrid: boundary-occupancy sync: %w", err)
			}
			return nil
		}),
		stage("switch-opt", func(s *pipeline.Session) error {
			flips = route.OptimizeSwitchable(myWires, occ, rt.Rand, ropt.SwitchPasses)
			s.Count("switch-flips", int64(flips))
			return nil
		}),
		stage("gather", func(_ *pipeline.Session) error {
			switchable := 0
			for i := range myWires {
				if myWires[i].Switchable && !myWires[i].Span.Empty() {
					switchable++
				}
			}
			sum := Summary{
				Rank:         rank,
				InsertedFts:  rt.InsertedFts,
				ForcedEdges:  forced,
				SwitchableWs: switchable,
				SwitchFlips:  flips,
				CoarseFlips:  rt.CoarseFlips,
				RowWidths:    ownRowWidths(sub, block),
				Phases:       rec.Phases(),
			}
			if err := gatherResults(comm, myWires, sum, out); err != nil {
				return fmt.Errorf("hybrid: result gather: %w", err)
			}
			return nil
		}),
	}
	return pipeline.Run(ctx, ses, stages...)
}
