package parallel

import (
	"fmt"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/partition"
	"parroute/internal/route"
)

// hybridWorker is one rank of the hybrid pin-partition algorithm (§6):
// identical to row-wise through feedthrough assignment, but net connection
// (step 4) is done for each *whole* net by a single owner, eliminating the
// duplicated boundary-channel wiring of independent sub-net connection
// (the paper's Figure 3 artifact). The resulting wires are redistributed
// to channel owners for switchable optimization.
func hybridWorker(comm mp.Comm, base *circuit.Circuit, blocks []partition.RowBlock,
	owner []int, opt Options, out *runOutput) error {

	rank := comm.Rank()
	block := blocks[rank]

	// Phases 1-3: exactly the row-wise pipeline through feedthrough
	// assignment (fake pins keep the coarse routing and feedthrough
	// bookkeeping purely local).
	specs := computeCrossings(base, blocks, owner, rank)
	myFakes, err := exchangeFakePins(comm, specs)
	if err != nil {
		return fmt.Errorf("hybrid: fake-pin exchange: %w", err)
	}
	var sub *circuit.Circuit
	if opt.TrimSubcircuits {
		sub = buildTrimmedSubCircuit(base, block, myFakes)
	} else {
		sub = buildSubCircuit(base, block, myFakes)
	}

	ropt := opt.Route
	ropt.Seed = workerSeed(opt.Route.Seed, rank)
	ropt.GridWidth = base.CoreWidth()
	rt := route.NewRouter(sub, ropt)
	rt.BuildTrees()
	rt.CoarseRoute()
	rt.InsertFeedthroughs()
	rt.AssignFeedthroughs()

	// Phase 4: ship every net's connection nodes (real pins and bound
	// feedthroughs in this block, with authoritative post-insertion
	// coordinates; fake pins are splitting artifacts and stay home) to the
	// net's owner, which connects the whole net at once.
	contrib := make([]NodeBatch, comm.Size())
	for n := range sub.Nets {
		dest := owner[n]
		for _, pid := range sub.Nets[n].Pins {
			p := &sub.Pins[pid]
			if p.Fake || !block.Contains(p.Row) {
				continue
			}
			contrib[dest] = append(contrib[dest], NodeMsg{Net: n, X: p.X, Row: p.Row, Side: p.Side})
		}
	}
	vs := make([]any, comm.Size())
	for k := range vs {
		vs[k] = contrib[k]
	}
	in, err := mp.Alltoall(comm, tagNetNodes, vs)
	if err != nil {
		return fmt.Errorf("hybrid: net-node exchange: %w", err)
	}
	byNet, err := collectNodes(in)
	if err != nil {
		return err
	}
	connOcc := route.NewOccupancy(sub.NumChannels(), base.CoreWidth()*2, ropt.GridColWidth)
	connected, forced := connectOwnedNets(byNet, connOcc)

	// Phase 5: redistribute wires to the workers owning their channels
	// (switchable wires go to the owner of their row, whose two candidate
	// channels they alternate between).
	outWires := make([][]metrics.Wire, comm.Size())
	numRows := len(base.Rows)
	for i := range connected {
		w := connected[i]
		var dest int
		if w.Switchable {
			dest = partition.BlockOf(blocks, w.Row)
		} else {
			dest = partition.BlockOf(blocks, geom.Min(w.Channel, numRows-1))
		}
		outWires[dest] = append(outWires[dest], w)
	}
	for k := range vs {
		vs[k] = WireBatch{Wires: outWires[k]}
	}
	in, err = mp.Alltoall(comm, tagWiresRedist, vs)
	if err != nil {
		return fmt.Errorf("hybrid: wire redistribution: %w", err)
	}
	var myWires []metrics.Wire
	for r, raw := range in {
		wb, ok := raw.(WireBatch)
		if !ok {
			return fmt.Errorf("parallel: redistributed wires from rank %d arrived as %T", r, raw)
		}
		myWires = append(myWires, wb.Wires...)
	}

	// Phase 6: switchable optimization over this rank's channels, with
	// the shared boundary channels synchronized once with the neighbors.
	coreW, err := globalCoreWidth(comm, sub, block)
	if err != nil {
		return fmt.Errorf("hybrid: core-width sync: %w", err)
	}
	occ := route.NewOccupancy(sub.NumChannels(), coreW, ropt.GridColWidth)
	occ.AddWires(myWires)
	if err := syncBoundaryOccupancy(comm, blocks, occ); err != nil {
		return fmt.Errorf("hybrid: boundary-occupancy sync: %w", err)
	}
	switchable := 0
	for i := range myWires {
		if myWires[i].Switchable && !myWires[i].Span.Empty() {
			switchable++
		}
	}
	flips := route.OptimizeSwitchable(myWires, occ, rt.Rand, ropt.SwitchPasses)

	// Phase 7: merge at rank 0.
	sum := Summary{
		InsertedFts:  rt.InsertedFts,
		ForcedEdges:  forced,
		SwitchableWs: switchable,
		SwitchFlips:  flips,
		CoarseFlips:  rt.CoarseFlips,
		RowWidths:    ownRowWidths(sub, block),
	}
	if err := gatherResults(comm, myWires, sum, out); err != nil {
		return fmt.Errorf("hybrid: result gather: %w", err)
	}
	return nil
}
