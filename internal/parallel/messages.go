package parallel

import (
	"parroute/internal/circuit"
	"parroute/internal/metrics"
	"parroute/internal/mp"
)

// Message tags. Every protocol phase uses its own tag so streams between
// the same pair of ranks cannot interleave.
const (
	tagFakePins = iota + 100
	tagCrossings
	tagFtNodes
	tagNetNodes
	tagWires
	tagSummary
	tagBoundaryLo
	tagBoundaryHi
	tagGridSync
	tagOccSync
	tagWidths
	tagWiresRedist
	tagCoarseVote
	tagSwitchVote
)

// FakePinSpec asks a block worker to add a fake pin for a net at a
// partition boundary: the crossing point of a Steiner segment (paper §4,
// Figure 2).
type FakePinSpec struct {
	Net  int
	X    int
	Row  int
	Side circuit.Side
}

// FakePinBatch is the slice form FakePinSpecs travel in. The named type
// carries the WireSize fast path (see mp.Sizer) so the Virtual engine
// prices sync rounds without encoding each batch.
type FakePinBatch []FakePinSpec

// WireSize prices each spec at its flat field width (3 ints + side byte).
func (b FakePinBatch) WireSize() int { return len(b) * 25 }

// CrossingMsg tells a row owner that a segment of Net crosses Row at
// column X and needs a feedthrough there (net-wise algorithm, step 3).
type CrossingMsg struct {
	Net int
	X   int
	Row int
}

// CrossingBatch is the slice form CrossingMsgs travel in; see FakePinBatch.
type CrossingBatch []CrossingMsg

// WireSize prices each crossing at its flat field width (3 ints).
func (b CrossingBatch) WireSize() int { return len(b) * 24 }

// FtNodeMsg returns an assigned feedthrough to a net owner: a step-4 node
// at (X, Row) reachable from both adjacent channels.
type FtNodeMsg struct {
	Net int
	X   int
	Row int
}

// NodeMsg contributes a connection node (a real pin or an assigned
// feedthrough, with authoritative post-insertion coordinates) of Net to
// the net's owner for whole-net connection.
type NodeMsg struct {
	Net  int
	X    int
	Row  int
	Side circuit.Side
}

// NodeBatch is the slice form NodeMsgs travel in; see FakePinBatch.
type NodeBatch []NodeMsg

// WireSize prices each node at its flat field width (3 ints + side byte).
func (b NodeBatch) WireSize() int { return len(b) * 25 }

// WireBatch carries final wires from a worker to rank 0 (or between
// workers when redistributing by channel owner).
type WireBatch struct {
	Wires []metrics.Wire
}

// WireSize prices each wire at its flat field width (9 ints + flag byte);
// see FakePinBatch.
func (b WireBatch) WireSize() int { return len(b.Wires) * 73 }

// RowWidthMsg reports the post-insertion width of one owned row.
type RowWidthMsg struct {
	Row   int
	Width int
}

// Summary carries a worker's counters to rank 0 for the merged result.
type Summary struct {
	Rank         int
	InsertedFts  int
	ForcedEdges  int
	SwitchableWs int
	SwitchFlips  int
	CoarseFlips  int
	RowWidths    []RowWidthMsg
	// Phases records the worker's wall time per pipeline phase (compute
	// only; communication waits excluded under the Virtual engine).
	Phases []metrics.Phase
}

// WireSize prices the fixed counters plus the variable-length tails; see
// FakePinBatch.
func (s Summary) WireSize() int {
	return 6*8 + len(s.RowWidths)*16 + len(s.Phases)*24
}

func init() {
	// Register every payload type so the TCP engine (and the Virtual
	// engine's size accounting) can gob-encode them.
	mp.RegisterPayload(FakePinBatch{})
	mp.RegisterPayload(CrossingBatch{})
	mp.RegisterPayload([]FtNodeMsg{})
	mp.RegisterPayload(NodeBatch{})
	mp.RegisterPayload(WireBatch{})
	mp.RegisterPayload(Summary{})
	mp.RegisterPayload([]int32{})
	mp.RegisterPayload([]any{})
	mp.RegisterPayload(0)
	mp.RegisterPayload(true)
}
