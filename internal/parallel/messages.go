package parallel

//go:generate go run parroute/cmd/mpgen

import (
	"parroute/internal/circuit"
	"parroute/internal/metrics"
)

// Message tags. Every protocol phase uses its own tag so streams between
// the same pair of ranks cannot interleave.
const (
	tagFakePins = iota + 100
	tagCrossings
	tagFtNodes
	tagNetNodes
	tagWires
	tagSummary
	tagBoundaryLo
	tagBoundaryHi
	tagGridSync
	tagOccSync
	tagWidths
	tagWiresRedist
	tagCoarseVote
	tagSwitchVote
)

// The payload types below carry the //mp:payload directive: cmd/mpgen
// derives their flat codecs, WireSize pricing (see mp.Sizer), and
// registration glue into mpwire_gen.go, and records their field layout
// in mp_protocol.json for the manifest-drift lint gate. After changing
// any of them, run `go generate ./...` and commit the regenerated files.

// FakePinSpec asks a block worker to add a fake pin for a net at a
// partition boundary: the crossing point of a Steiner segment (paper §4,
// Figure 2).
type FakePinSpec struct {
	Net  int
	X    int
	Row  int
	Side circuit.Side
}

// FakePinBatch is the slice form FakePinSpecs travel in. The named type
// carries the generated WireSize fast path (see mp.Sizer) so the Virtual
// engine prices sync rounds without encoding each batch.
//
//mp:payload
type FakePinBatch []FakePinSpec

// CrossingMsg tells a row owner that a segment of Net crosses Row at
// column X and needs a feedthrough there (net-wise algorithm, step 3).
type CrossingMsg struct {
	Net int
	X   int
	Row int
}

// CrossingBatch is the slice form CrossingMsgs travel in; see FakePinBatch.
//
//mp:payload
type CrossingBatch []CrossingMsg

// NodeMsg contributes a connection node (a real pin or an assigned
// feedthrough, with authoritative post-insertion coordinates) of Net to
// the net's owner for whole-net connection.
type NodeMsg struct {
	Net  int
	X    int
	Row  int
	Side circuit.Side
}

// NodeBatch is the slice form NodeMsgs travel in; see FakePinBatch.
//
//mp:payload
type NodeBatch []NodeMsg

// WireBatch carries final wires from a worker to rank 0 (or between
// workers when redistributing by channel owner).
//
//mp:payload
type WireBatch struct {
	Wires []metrics.Wire
}

// RowWidthMsg reports the post-insertion width of one owned row.
type RowWidthMsg struct {
	Row   int
	Width int
}

// Summary carries a worker's counters to rank 0 for the merged result.
//
//mp:payload
type Summary struct {
	Rank         int
	InsertedFts  int
	ForcedEdges  int
	SwitchableWs int
	SwitchFlips  int
	CoarseFlips  int
	RowWidths    []RowWidthMsg
	// Phases records the worker's wall time per pipeline phase (compute
	// only; communication waits excluded under the Virtual engine).
	Phases []metrics.Phase
}
