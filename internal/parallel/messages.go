package parallel

import (
	"parroute/internal/circuit"
	"parroute/internal/metrics"
	"parroute/internal/mp"
)

// Message tags. Every protocol phase uses its own tag so streams between
// the same pair of ranks cannot interleave.
const (
	tagFakePins = iota + 100
	tagCrossings
	tagFtNodes
	tagNetNodes
	tagWires
	tagSummary
	tagBoundaryLo
	tagBoundaryHi
	tagGridSync
	tagOccSync
	tagWidths
	tagWiresRedist
	tagCoarseVote
	tagSwitchVote
)

// FakePinSpec asks a block worker to add a fake pin for a net at a
// partition boundary: the crossing point of a Steiner segment (paper §4,
// Figure 2).
type FakePinSpec struct {
	Net  int
	X    int
	Row  int
	Side circuit.Side
}

// CrossingMsg tells a row owner that a segment of Net crosses Row at
// column X and needs a feedthrough there (net-wise algorithm, step 3).
type CrossingMsg struct {
	Net int
	X   int
	Row int
}

// FtNodeMsg returns an assigned feedthrough to a net owner: a step-4 node
// at (X, Row) reachable from both adjacent channels.
type FtNodeMsg struct {
	Net int
	X   int
	Row int
}

// NodeMsg contributes a connection node (a real pin or an assigned
// feedthrough, with authoritative post-insertion coordinates) of Net to
// the net's owner for whole-net connection.
type NodeMsg struct {
	Net  int
	X    int
	Row  int
	Side circuit.Side
}

// WireBatch carries final wires from a worker to rank 0 (or between
// workers when redistributing by channel owner).
type WireBatch struct {
	Wires []metrics.Wire
}

// RowWidthMsg reports the post-insertion width of one owned row.
type RowWidthMsg struct {
	Row   int
	Width int
}

// Summary carries a worker's counters to rank 0 for the merged result.
type Summary struct {
	Rank         int
	InsertedFts  int
	ForcedEdges  int
	SwitchableWs int
	SwitchFlips  int
	CoarseFlips  int
	RowWidths    []RowWidthMsg
	// Phases records the worker's wall time per pipeline phase (compute
	// only; communication waits excluded under the Virtual engine).
	Phases []metrics.Phase
}

func init() {
	// Register every payload type so the TCP engine (and the Virtual
	// engine's size accounting) can gob-encode them.
	mp.RegisterPayload([]FakePinSpec{})
	mp.RegisterPayload([]CrossingMsg{})
	mp.RegisterPayload([]FtNodeMsg{})
	mp.RegisterPayload([]NodeMsg{})
	mp.RegisterPayload(WireBatch{})
	mp.RegisterPayload(Summary{})
	mp.RegisterPayload([]int32{})
	mp.RegisterPayload([]any{})
	mp.RegisterPayload(0)
	mp.RegisterPayload(true)
}
