package parallel

import (
	"context"
	"fmt"
	"sort"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/grid"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/partition"
	"parroute/internal/pipeline"
	"parroute/internal/rng"
	"parroute/internal/route"
	"parroute/internal/steiner"
)

// netWiseWorker is one rank of the net-wise pin-partition algorithm (§5).
// Nets (and their pins) are partitioned by the configured heuristic; rows
// remain block-partitioned for feedthrough bookkeeping.
//
//  1. Each rank builds the Steiner trees of its nets.
//  2. Coarse routing optimizes the rank's own segments against a
//     replicated global grid that is synchronized NetwiseSyncPerPass times
//     per improvement pass — between syncs the other ranks' contributions
//     are stale, which is exactly the quality-loss mechanism the paper
//     reports.
//  3. Feedthrough demand is realized by row owners; crossings are shipped
//     to row owners for assignment and the assigned feedthroughs return
//     to net owners.
//  4. Row owners contribute every net's pin nodes (authoritative
//     post-insertion coordinates); net owners connect their whole nets.
//  5. Switchable optimization runs per net owner against a replicated
//     channel occupancy with the same periodic synchronization — ranks
//     flip segments into the same channels between syncs ("the blindness
//     of each processor", §7.2).
//
// Each step is a pipeline stage over the rank's session; stage names
// shared with the serial router are the serial router's own, "stitch" is
// the replicated-occupancy synchronization before step 5.
func netWiseWorker(ctx context.Context, comm mp.Comm, base *circuit.Circuit, blocks []partition.RowBlock,
	owner []int, opt Options, out *runOutput) error {

	rank := comm.Rank()
	size := comm.Size()
	block := blocks[rank]
	sub := base.Clone()
	ropt := opt.Route
	ropt.Seed = workerSeed(opt.Route.Seed, rank)
	rnd := rng.New(ropt.Seed)

	// State flowing between stages.
	var (
		segs        []route.PlacedSeg
		own, shared *grid.Grid
		inserted    int
		ftByRow     [][]int
		ftNodes     []NodeBatch
		wires       []metrics.Wire
		forced      int
		ownOcc      *route.Occupancy
		sharedOcc   *route.Occupancy
		switchIdx   []int
		coarseFlips int
		switchFlips int
	)

	ses, rec := workerSession(opt)
	stages := []pipeline.Stage{
		stage("steiner", func(s *pipeline.Session) error {
			for n := range sub.Nets {
				if owner[n] != rank {
					continue
				}
				for _, seg := range steiner.BuildNet(sub, n) {
					segs = append(segs, route.Place(sub, seg))
				}
			}
			s.Count("segments", int64(len(segs)))
			return nil
		}),
		stage("coarse", func(s *pipeline.Session) error {
			// Coarse routing against the replicated grid.
			own = grid.New(len(sub.Rows), base.CoreWidth(), ropt.GridColWidth)
			for i := range segs {
				route.ApplyRuns(own, segs[i].CurrentRuns(), 1)
			}
			var err error
			shared, err = allreduceGrid(comm, own)
			if err != nil {
				return fmt.Errorf("netwise: grid sync: %w", err)
			}
			// Flip candidates with their static geometry cached, as in the
			// serial step 2: the span and endpoint columns never change
			// before insertion, so the sweep evaluates each flip as one
			// incremental grid walk.
			type flipCand struct {
				seg        int
				span       geom.Interval
				colP, colQ int
			}
			cands := make([]flipCand, 0, len(segs))
			for i := range segs {
				ps := &segs[i]
				if ps.HasBend() && ps.XP != ps.XQ {
					cands = append(cands, flipCand{
						seg:  i,
						span: geom.NewInterval(ps.XP, ps.XQ),
						colP: shared.ColOf(ps.XP),
						colQ: shared.ColOf(ps.XQ),
					})
				}
			}
			perm := make([]int, len(cands))
			for pass := 0; pass < ropt.CoarsePasses; pass++ {
				rnd.PermInto(perm)
				passFlips := 0
				err := forEachChunk(len(perm), opt.NetwiseSyncPerPass, func(lo, hi int) error {
					for _, pi := range perm[lo:hi] {
						fc := &cands[pi]
						ps := &segs[fc.seg]
						chFrom, chTo := ps.CP, ps.CQ
						fromCol, toCol := fc.colQ, fc.colP
						if ps.BendAtP {
							chFrom, chTo = ps.CQ, ps.CP
							fromCol, toCol = fc.colP, fc.colQ
						}
						delta := shared.SpanCost(chFrom, chTo, fc.span) +
							shared.VertMoveCost(ps.CP, ps.CQ-1, fromCol, toCol)
						if delta < 0 {
							ps.BendAtP = !ps.BendAtP
							shared.MoveWire(chFrom, chTo, fc.span)
							shared.MoveVert(ps.CP, ps.CQ-1, fromCol, toCol)
							own.MoveWire(chFrom, chTo, fc.span)
							own.MoveVert(ps.CP, ps.CQ-1, fromCol, toCol)
							passFlips++
						}
					}
					if opt.NetwiseSyncPerPass > 0 {
						shared, err = allreduceGrid(comm, own)
						return err
					}
					return nil
				})
				if err != nil {
					return err
				}
				coarseFlips += passFlips
				globalFlips, err := mp.AllreduceInt(comm, tagCoarseVote, passFlips, mp.SumInt)
				if err != nil {
					return fmt.Errorf("netwise: coarse convergence vote: %w", err)
				}
				if globalFlips == 0 {
					break
				}
			}

			// The feedthrough demand realized next must be identical on
			// every rank regardless of the sync policy, so one final exact
			// allreduce closes the coarse phase (its cost is charged like
			// any other sync).
			shared, err = allreduceGrid(comm, own)
			if err != nil {
				return fmt.Errorf("netwise: final grid sync: %w", err)
			}
			s.Count("coarse-flips", int64(coarseFlips))
			return nil
		}),
		stage("ft-insert", func(s *pipeline.Session) error {
			// Realize feedthrough demand in this rank's rows. The final
			// synchronized grid is identical everywhere, so row owners see
			// the complete demand.
			ftByRow = make([][]int, len(sub.Rows))
			for row := block.Lo; row <= block.Hi; row++ {
				for col := 0; col < shared.Cols; col++ {
					for i := 0; i < shared.FtDemand(row, col); i++ {
						pin := sub.InsertFeedthrough(row, shared.ColCenter(col), circuit.NoNet)
						ftByRow[row] = append(ftByRow[row], pin)
						inserted++
					}
				}
			}
			// Refresh segment endpoints that sit in this rank's (now
			// shifted) rows.
			for i := range segs {
				segs[i].XP = sub.Pins[segs[i].PinAtP].X
				segs[i].XQ = sub.Pins[segs[i].PinAtQ].X
			}
			s.Count("inserted-fts", int64(inserted))
			return nil
		}),
		stage("ft-assign", func(_ *pipeline.Session) error {
			// Ship crossings to row owners for assignment.
			cross := make([]CrossingBatch, size)
			for i := range segs {
				runs := segs[i].CurrentRuns()
				if !runs.HasVert() {
					continue
				}
				for row := runs.VLo; row <= runs.VHi; row++ {
					dest := partition.BlockOf(blocks, row)
					cross[dest] = append(cross[dest], CrossingMsg{Net: segs[i].Seg.Net, X: runs.VCol, Row: row})
				}
			}
			vs := make([]any, size)
			for k := range vs {
				vs[k] = cross[k]
			}
			in, err := mp.Alltoall(comm, tagCrossings, vs)
			if err != nil {
				return fmt.Errorf("netwise: crossing exchange: %w", err)
			}
			byRow := make([]CrossingBatch, len(sub.Rows))
			for r, raw := range in {
				batch, ok := raw.(CrossingBatch)
				if !ok {
					return fmt.Errorf("parallel: crossings from rank %d arrived as %T", r, raw)
				}
				for _, cr := range batch {
					byRow[cr.Row] = append(byRow[cr.Row], cr)
				}
			}

			// Assign per row (sorted matching, as in the serial step 3) and
			// route each assigned feedthrough back to the net's owner as a
			// step-4 node.
			ftNodes = make([]NodeBatch, size)
			for row := block.Lo; row <= block.Hi; row++ {
				crossings := byRow[row]
				sort.SliceStable(crossings, func(i, j int) bool {
					if crossings[i].X != crossings[j].X {
						return crossings[i].X < crossings[j].X
					}
					return crossings[i].Net < crossings[j].Net
				})
				fts := ftByRow[row]
				sort.Slice(fts, func(i, j int) bool {
					if xi, xj := sub.Pins[fts[i]].X, sub.Pins[fts[j]].X; xi != xj {
						return xi < xj
					}
					// Same-x feedthrough pins are interchangeable for
					// routing, but break the tie by pin ID so the binding
					// permutation is deterministic rather than
					// sort-internal.
					return fts[i] < fts[j]
				})
				for i, cr := range crossings {
					var pinID int
					if i < len(fts) {
						pinID = fts[i]
					} else {
						pinID = sub.InsertFeedthrough(row, cr.X, circuit.NoNet)
						inserted++
					}
					dest := owner[cr.Net]
					ftNodes[dest] = append(ftNodes[dest], NodeMsg{
						Net: cr.Net, X: sub.Pins[pinID].X, Row: row, Side: circuit.Both,
					})
				}
			}
			return nil
		}),
		stage("connect", func(s *pipeline.Session) error {
			// Pin nodes to net owners, then whole-net connection. Row
			// owners ship authoritative (post-insertion) pin coordinates so
			// all of a net's geometry lives in one coherent frame at its
			// owner.
			pinNodes := make([]NodeBatch, size)
			for n := range sub.Nets {
				dest := owner[n]
				for _, pid := range sub.Nets[n].Pins {
					p := &sub.Pins[pid]
					if !block.Contains(p.Row) {
						continue // the row owner contributes this pin
					}
					pinNodes[dest] = append(pinNodes[dest], NodeMsg{Net: n, X: p.X, Row: p.Row, Side: p.Side})
				}
			}
			vs := make([]any, size)
			for k := range vs {
				vs[k] = pinNodes[k]
			}
			in, err := mp.Alltoall(comm, tagNetNodes, vs)
			if err != nil {
				return fmt.Errorf("netwise: pin-node exchange: %w", err)
			}
			byNet, err := collectNodes(in)
			if err != nil {
				return err
			}
			for k := range vs {
				vs[k] = ftNodes[k]
			}
			in, err = mp.Alltoall(comm, tagFtNodes, vs)
			if err != nil {
				return fmt.Errorf("netwise: feedthrough-node exchange: %w", err)
			}
			ftByNet, err := collectNodes(in)
			if err != nil {
				return err
			}
			for n, nodes := range ftByNet {
				byNet[n] = append(byNet[n], nodes...)
			}
			connOcc := route.NewOccupancy(sub.NumChannels(), base.CoreWidth()*2, ropt.GridColWidth)
			wires, forced = connectOwnedNets(byNet, connOcc)
			s.Count("wires", int64(len(wires)))
			s.Count("forced-edges", int64(forced))
			return nil
		}),
		stage("stitch", func(_ *pipeline.Session) error {
			// Replicate the channel occupancy for step 5.
			coreW, err := globalCoreWidth(comm, sub, block)
			if err != nil {
				return fmt.Errorf("netwise: core-width sync: %w", err)
			}
			ownOcc = route.NewOccupancy(sub.NumChannels(), coreW, ropt.GridColWidth)
			ownOcc.AddWires(wires)
			sharedOcc = route.NewOccupancy(sub.NumChannels(), coreW, ropt.GridColWidth)
			if err := allreduceOcc(comm, ownOcc, sharedOcc); err != nil {
				return fmt.Errorf("netwise: occupancy sync: %w", err)
			}
			return nil
		}),
		stage("switch-opt", func(s *pipeline.Session) error {
			switchIdx = make([]int, 0, len(wires))
			for i := range wires {
				if wires[i].Switchable && !wires[i].Span.Empty() {
					switchIdx = append(switchIdx, i)
				}
			}
			for pass := 0; pass < ropt.SwitchPasses; pass++ {
				perm := rnd.Perm(len(switchIdx))
				passFlips := 0
				err := forEachChunk(len(perm), opt.NetwiseSyncPerPass, func(lo, hi int) error {
					for _, pi := range perm[lo:hi] {
						w := &wires[switchIdx[pi]]
						other := w.OtherChannel()
						if sharedOcc.MoveCost(w.Channel, other, w.Span) < 0 {
							sharedOcc.Add(w.Channel, w.Span, -1)
							sharedOcc.Add(other, w.Span, 1)
							ownOcc.Add(w.Channel, w.Span, -1)
							ownOcc.Add(other, w.Span, 1)
							w.Channel = other
							passFlips++
						}
					}
					if opt.NetwiseSyncPerPass > 0 {
						return allreduceOcc(comm, ownOcc, sharedOcc)
					}
					return nil
				})
				if err != nil {
					return err
				}
				switchFlips += passFlips
				globalFlips, err := mp.AllreduceInt(comm, tagSwitchVote, passFlips, mp.SumInt)
				if err != nil {
					return fmt.Errorf("netwise: switch convergence vote: %w", err)
				}
				if globalFlips == 0 {
					break
				}
			}
			s.Count("switch-flips", int64(switchFlips))
			return nil
		}),
		stage("gather", func(_ *pipeline.Session) error {
			sum := Summary{
				Rank:         rank,
				InsertedFts:  inserted,
				ForcedEdges:  forced,
				SwitchableWs: len(switchIdx),
				SwitchFlips:  switchFlips,
				CoarseFlips:  coarseFlips,
				RowWidths:    ownRowWidths(sub, block),
				Phases:       rec.Phases(),
			}
			if err := gatherResults(comm, wires, sum, out); err != nil {
				return fmt.Errorf("netwise: result gather: %w", err)
			}
			return nil
		}),
	}
	return pipeline.Run(ctx, ses, stages...)
}

// forEachChunk splits [0, n) into `chunks` contiguous pieces (at least
// one; empty pieces still invoke f so every rank performs the same number
// of synchronization points regardless of its local work count).
func forEachChunk(n, chunks int, f func(lo, hi int) error) error {
	if chunks < 1 {
		chunks = 1
	}
	per := (n + chunks - 1) / chunks
	if per < 1 {
		per = 1
	}
	lo := 0
	for i := 0; i < chunks; i++ {
		hi := lo + per
		if hi > n {
			hi = n
		}
		if err := f(lo, hi); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// allreduceGrid sums every rank's own-contribution grid into a fresh
// global grid (returned on every rank).
func allreduceGrid(comm mp.Comm, own *grid.Grid) (*grid.Grid, error) {
	// DensCounts/FtCounts return fresh copies, which the transport needs:
	// the sender keeps mutating its own grid, and mp payloads belong to the
	// receiver after Send.
	dens, err := mp.AllreduceInt32s(comm, tagGridSync, own.DensCounts(), mp.SumInt32s)
	if err != nil {
		return nil, err
	}
	ft, err := mp.AllreduceInt32s(comm, tagGridSync, own.FtCounts(), mp.SumInt32s)
	if err != nil {
		return nil, err
	}
	return grid.FromCounts(own.Rows, own.Cols, own.ColWidth, dens, ft)
}

// allreduceOcc sums every rank's own-wire occupancy into shared.
func allreduceOcc(comm mp.Comm, own, shared *route.Occupancy) error {
	counts, err := mp.AllreduceInt32s(comm, tagOccSync, own.Counts(), mp.SumInt32s)
	if err != nil {
		return err
	}
	return shared.SetCounts(counts)
}
