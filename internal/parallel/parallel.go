// Package parallel implements the paper's three parallel global-routing
// algorithms on top of the serial TWGR pipeline (internal/route) and the
// message-passing substrate (internal/mp):
//
//   - RowWise (§4): rows are partitioned contiguously across workers; nets
//     are split into sub-nets with fake pins at the partition boundaries
//     (placed where their Steiner-tree segments cross); every worker runs
//     the full TWGR pipeline on its sub-circuit, synchronizing shared
//     boundary channels with its neighbors before switchable-segment
//     optimization.
//   - NetWise (§5): nets and their pins are partitioned by a weight
//     heuristic; the coarse-routing grid and the channel occupancies are
//     replicated and synchronized periodically, crossings are shipped to
//     row owners for feedthrough assignment, and every net is connected by
//     its owner.
//   - Hybrid (§6): row-wise everywhere, except that step 4 connects every
//     net whole at a single owner, removing the duplicated boundary-channel
//     wiring that costs the row-wise algorithm quality.
//
// All three run on any mp engine; under mp.Virtual the returned result
// carries the simulated parallel runtime of the modeled machine.
package parallel

import (
	"context"
	"errors"
	"fmt"

	"parroute/internal/circuit"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/partition"
	"parroute/internal/pipeline"
	"parroute/internal/route"
)

// Algorithm selects one of the paper's three parallel algorithms.
type Algorithm int

const (
	RowWise Algorithm = iota
	NetWise
	Hybrid
)

func (a Algorithm) String() string {
	switch a {
	case RowWise:
		return "rowwise"
	case NetWise:
		return "netwise"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms lists all three, in the paper's presentation order.
func Algorithms() []Algorithm { return []Algorithm{RowWise, NetWise, Hybrid} }

// Options configures a parallel routing run.
type Options struct {
	Algo  Algorithm
	Procs int
	// Mode selects the mp engine; Model is its cost model under
	// mp.Virtual (zero value: mp.SMP()).
	Mode  mp.Mode
	Model mp.CostModel
	// Route carries the serial router's knobs; Route.Seed also seeds the
	// per-worker streams.
	Route route.Options
	// Net selects the net-partition heuristic (paper §5). Default
	// PinWeight, the paper's recommendation.
	Net partition.Config
	// TrimSubcircuits makes the row-wise and hybrid workers build compact
	// sub-circuits holding only their own rows' cells and pins (plus fake
	// pins) instead of a full clone — the paper's memory-scalability
	// motivation for the row partition ("to solve large routing problems
	// which require considerable amount of memory"). Routing results are
	// identical with or without trimming; only per-worker memory changes.
	TrimSubcircuits bool
	// NetwiseSyncPerPass is how many grid/occupancy synchronizations the
	// net-wise algorithm performs per improvement pass. More syncs mean
	// fresher shared state (better quality) and more communication (worse
	// runtime) — the trade-off of §7.2. Negative means no mid-phase syncs
	// at all: every rank optimizes against the phase-start snapshot plus
	// its own changes ("the blindness of each processor"). Default 4 —
	// "the routing quality is controlled by frequent synchronization but
	// this reduces the runtime performance".
	NetwiseSyncPerPass int
	// Chaos, when non-nil, runs the workers under deterministic fault
	// injection (see mp.Chaos). The result carries the fault tallies; if
	// the plan kills a rank, Run degrades to the serial algorithm.
	Chaos *mp.Plan
	// Dist, when non-nil, places this process at one rank of a
	// multi-process TCP mesh (see mp.NetConfig); requires Mode == mp.TCP
	// and Dist.Ranks == Procs. Run then executes only this process's
	// rank: rank 0 gathers and returns the merged result, every other
	// rank returns (nil, nil) once its worker finishes.
	Dist *mp.NetConfig
	// GobWire forces TCP frame payloads through the gob fallback instead
	// of the generated flat codecs — the benchmark baseline that
	// isolates what the codecs buy (see mp.Config.GobWire).
	GobWire bool
	// Limits bounds per-message waits on the real-time engines.
	Limits mp.Limits
	// Observers join every worker's pipeline session (and the serial
	// session under RunBaseline). One observer instance is shared across
	// all ranks, so implementations must be safe for concurrent use on
	// the real-time engines. Observers cannot affect routing output.
	Observers []pipeline.Observer

	// onEngine, when set (tests only), observes the constructed engine
	// before the run so chaos event logs can be inspected afterwards.
	onEngine func(mp.Engine)
}

func (o *Options) normalize() error {
	if o.Procs <= 0 {
		return fmt.Errorf("parallel: Procs must be positive, got %d", o.Procs)
	}
	o.Route.Normalize()
	if o.NetwiseSyncPerPass == 0 {
		o.NetwiseSyncPerPass = 4
	}
	if o.NetwiseSyncPerPass < 0 {
		o.NetwiseSyncPerPass = 0 // explicit "never sync mid-phase"
	}
	if o.Net.Method == partition.Center && o.Net.Alpha == 0 && o.Net.LargeFactor == 0 {
		// Untouched zero config: use the paper's recommended default.
		o.Net.Method = partition.PinWeight
	}
	return nil
}

// workerSeed derives the RNG seed of one worker so that a single-worker
// run consumes exactly the serial router's stream (rank 0 gets the base
// seed).
func workerSeed(base uint64, rank int) uint64 {
	return base + uint64(rank)*0x9e3779b97f4a7c15
}

// Run routes the circuit with the selected parallel algorithm and returns
// the merged result. The input circuit is not modified. The result's
// Elapsed is the simulated machine time under mp.Virtual and wall time
// otherwise. Cancelling ctx aborts the run on every rank — including
// ranks blocked in sends, receives or barriers — with an error wrapping
// ctx.Err(); no goroutines are leaked.
func Run(ctx context.Context, c *circuit.Circuit, opt Options) (*metrics.Result, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	if len(c.Rows) < opt.Procs {
		return nil, fmt.Errorf("parallel: %d workers for %d rows", opt.Procs, len(c.Rows))
	}
	blocks, err := partition.RowBlocks(c, opt.Procs)
	if err != nil {
		return nil, err
	}
	owner, err := partition.Nets(c, blocks, opt.Procs, opt.Net)
	if err != nil {
		return nil, err
	}

	if opt.Dist != nil && opt.Dist.Ranks != opt.Procs {
		return nil, fmt.Errorf("parallel: Dist.Ranks %d must equal Procs %d", opt.Dist.Ranks, opt.Procs)
	}
	out := &runOutput{}
	cfg := mp.Config{Procs: opt.Procs, Mode: opt.Mode, Model: opt.Model, Limits: opt.Limits, Chaos: opt.Chaos, Net: opt.Dist, GobWire: opt.GobWire}
	var worker func(mp.Comm) error
	switch opt.Algo {
	case RowWise:
		worker = func(comm mp.Comm) error { return rowWiseWorker(ctx, comm, c, blocks, owner, opt, out) }
	case NetWise:
		worker = func(comm mp.Comm) error { return netWiseWorker(ctx, comm, c, blocks, owner, opt, out) }
	case Hybrid:
		worker = func(comm mp.Comm) error { return hybridWorker(ctx, comm, c, blocks, owner, opt, out) }
	default:
		return nil, fmt.Errorf("parallel: unknown algorithm %v", opt.Algo)
	}
	eng, err := cfg.Engine()
	if err != nil {
		return nil, err
	}
	chaos, _ := eng.(*mp.ChaosEngine)
	if opt.onEngine != nil {
		opt.onEngine(eng)
	}
	elapsed, err := eng.Run(ctx, opt.Procs, worker)
	workerRank := opt.Dist != nil && opt.Dist.Rank != 0
	if err != nil {
		if errors.Is(err, mp.ErrRankLost) && ctx.Err() == nil && !workerRank {
			// Graceful degradation: a rank died mid-phase; the parallel
			// result is unrecoverable, so rank 0 reroutes serially. A
			// non-zero dist rank just reports the loss — the result
			// lives with rank 0's process.
			return degrade(ctx, c, opt, chaos, err)
		}
		return nil, err
	}
	if workerRank {
		return nil, nil // only rank 0 gathers; this process's work is done
	}
	if out.raw == nil {
		return nil, fmt.Errorf("parallel: run completed without a result")
	}
	res, err := out.raw.merge(c, opt)
	if err != nil {
		return nil, err
	}
	res.Algo = opt.Algo.String()
	res.Procs = opt.Procs
	res.Elapsed = elapsed
	attachFaults(res, chaos)
	return res, nil
}

// degrade falls back to the serial pipeline after a rank loss. The result
// is exactly RunBaseline's, marked Degraded, with the fault tallies of
// the aborted parallel attempt attached.
func degrade(ctx context.Context, c *circuit.Circuit, opt Options, chaos *mp.ChaosEngine, cause error) (*metrics.Result, error) {
	res, err := RunBaseline(ctx, c, opt)
	if err != nil {
		return nil, fmt.Errorf("parallel: serial fallback after %w: %w", cause, err)
	}
	res.Degraded = true
	attachFaults(res, chaos)
	return res, nil
}

// attachFaults copies the chaos engine's tallies onto the result (no-op
// without chaos).
func attachFaults(res *metrics.Result, chaos *mp.ChaosEngine) {
	if chaos == nil {
		return
	}
	s := chaos.Snapshot()
	res.Faults = &metrics.FaultReport{
		Sends: s.Sends, Drops: s.Drops, Delays: s.Delays, Dups: s.Dups,
		Reorders: s.Reorders, Retries: s.Retries, Dedups: s.Dedups,
		DeadlineMisses: s.DeadlineMisses, Crashes: s.Crashes,
	}
}

// runOutput carries rank 0's gathered raw output from the workers back to
// Run, which merges it outside the timed region.
type runOutput struct {
	raw *rawGather
}

// RunBaseline routes serially with the same route options, producing the
// "1 processor" reference row of the paper's tables. Elapsed is the sum
// of stage wall times as read through the observer clock, directly
// comparable to the Virtual engine's simulated times (worker compute
// spans are measured the same way).
func RunBaseline(ctx context.Context, c *circuit.Circuit, opt Options) (*metrics.Result, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	rt := route.NewRouter(c.Clone(), opt.Route)
	return rt.Run(ctx, opt.Observers...)
}
