package parallel

import (
	"context"
	"sort"
	"testing"

	"parroute/internal/circuit"
	"parroute/internal/gen"
	"parroute/internal/metrics"
	"parroute/internal/mp"
	"parroute/internal/partition"
	"parroute/internal/route"
)

func testCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	return gen.Small(42) // 8 rows, ~240 cells, ~260 nets
}

func baseline(t *testing.T, c *circuit.Circuit) *metrics.Result {
	t.Helper()
	res, err := RunBaseline(context.Background(), c, Options{Procs: 1, Route: route.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleWorkerEqualsSerial(t *testing.T) {
	c := testCircuit(t)
	base := baseline(t, c)
	for _, algo := range Algorithms() {
		res, err := Run(context.Background(), c, Options{Algo: algo, Procs: 1, Route: route.Options{Seed: 1}})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.TotalTracks != base.TotalTracks {
			t.Errorf("%v at P=1: %d tracks, serial %d", algo, res.TotalTracks, base.TotalTracks)
		}
		if res.Feedthroughs != base.Feedthroughs {
			t.Errorf("%v at P=1: %d fts, serial %d", algo, res.Feedthroughs, base.Feedthroughs)
		}
		if res.Wirelength != base.Wirelength {
			t.Errorf("%v at P=1: WL %d, serial %d", algo, res.Wirelength, base.Wirelength)
		}
	}
}

func TestParallelDeterministic(t *testing.T) {
	c := testCircuit(t)
	for _, algo := range Algorithms() {
		a, err := Run(context.Background(), c, Options{Algo: algo, Procs: 4, Route: route.Options{Seed: 3}})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		b, err := Run(context.Background(), c, Options{Algo: algo, Procs: 4, Route: route.Options{Seed: 3}})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if a.TotalTracks != b.TotalTracks || a.Wirelength != b.Wirelength ||
			a.Feedthroughs != b.Feedthroughs {
			t.Errorf("%v: repeated run differs: %d/%d tracks", algo, a.TotalTracks, b.TotalTracks)
		}
	}
}

func TestEnginesProduceIdenticalRouting(t *testing.T) {
	// The engine (virtual DES, concurrent goroutines, TCP sockets) must
	// never change the routing result — only the timing.
	c := testCircuit(t)
	for _, algo := range Algorithms() {
		var ref *metrics.Result
		for _, mode := range []mp.Mode{mp.Virtual, mp.Inproc, mp.TCP} {
			res, err := Run(context.Background(), c, Options{Algo: algo, Procs: 3, Mode: mode,
				Route: route.Options{Seed: 5}})
			if err != nil {
				t.Fatalf("%v/%v: %v", algo, mode, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.TotalTracks != ref.TotalTracks || res.Wirelength != ref.Wirelength ||
				res.Feedthroughs != ref.Feedthroughs || len(res.Wires) != len(ref.Wires) {
				t.Errorf("%v/%v: differs from virtual engine (%d vs %d tracks)",
					algo, mode, res.TotalTracks, ref.TotalTracks)
			}
		}
	}
}

func TestAllNetsConnectedUnderPartitioning(t *testing.T) {
	// Forced edges mean a net could not be connected through adjacent
	// rows — the fake-pin/feedthrough machinery must prevent that at any
	// worker count.
	c := testCircuit(t)
	for _, algo := range Algorithms() {
		for _, p := range []int{2, 3, 4, 8} {
			res, err := Run(context.Background(), c, Options{Algo: algo, Procs: p, Route: route.Options{Seed: 1}})
			if err != nil {
				t.Fatalf("%v p=%d: %v", algo, p, err)
			}
			if res.ForcedEdges != 0 {
				t.Errorf("%v p=%d: %d forced edges", algo, p, res.ForcedEdges)
			}
		}
	}
}

func TestQualityDegradationBounded(t *testing.T) {
	c := testCircuit(t)
	base := baseline(t, c)
	for _, algo := range Algorithms() {
		for _, p := range []int{2, 4} {
			res, err := Run(context.Background(), c, Options{Algo: algo, Procs: p, Route: route.Options{Seed: 1}})
			if err != nil {
				t.Fatalf("%v p=%d: %v", algo, p, err)
			}
			scaled := res.ScaledTracks(base)
			if scaled > 1.5 {
				t.Errorf("%v p=%d: scaled tracks %.3f — partitioning destroyed quality", algo, p, scaled)
			}
			if scaled < 0.8 {
				t.Errorf("%v p=%d: scaled tracks %.3f — parallel run suspiciously beats serial "+
					"(likely missing wires)", algo, p, scaled)
			}
		}
	}
}

func TestWireConservation(t *testing.T) {
	// Every multi-pin net must contribute wires at any worker count, and
	// the per-net wire counts must match nodes-1 (tree property) for
	// hybrid and netwise (whole-net connection).
	c := testCircuit(t)
	base := baseline(t, c)
	baseNets := map[int]int{}
	for i := range base.Wires {
		baseNets[base.Wires[i].Net]++
	}
	for _, algo := range Algorithms() {
		res, err := Run(context.Background(), c, Options{Algo: algo, Procs: 4, Route: route.Options{Seed: 1}})
		if err != nil {
			t.Fatal(err)
		}
		gotNets := map[int]int{}
		for i := range res.Wires {
			gotNets[res.Wires[i].Net]++
		}
		for n := range baseNets {
			if gotNets[n] == 0 {
				t.Errorf("%v: net %d lost all its wires", algo, n)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	c := testCircuit(t)
	if _, err := Run(context.Background(), c, Options{Procs: 0}); err == nil {
		t.Fatal("Procs=0 accepted")
	}
	if _, err := Run(context.Background(), c, Options{Procs: 1000}); err == nil {
		t.Fatal("more workers than rows accepted")
	}
	if _, err := Run(context.Background(), c, Options{Algo: Algorithm(99), Procs: 2}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNetPartitionMethodsAllWork(t *testing.T) {
	c := testCircuit(t)
	base := baseline(t, c)
	for _, m := range partition.Methods() {
		res, err := Run(context.Background(), c, Options{Algo: Hybrid, Procs: 4,
			Route: route.Options{Seed: 1}, Net: partition.Config{Method: m}})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.ForcedEdges != 0 {
			t.Errorf("%v: forced edges", m)
		}
		if res.ScaledTracks(base) > 1.5 {
			t.Errorf("%v: scaled %.2f", m, res.ScaledTracks(base))
		}
	}
}

func TestNetwiseSyncKnob(t *testing.T) {
	c := testCircuit(t)
	// More syncs must not be cheaper (simulated time) at the same quality
	// scale; both settings must route every net.
	blind, err := Run(context.Background(), c, Options{Algo: NetWise, Procs: 4,
		Route: route.Options{Seed: 1}, NetwiseSyncPerPass: -1})
	if err != nil {
		t.Fatal(err)
	}
	chatty, err := Run(context.Background(), c, Options{Algo: NetWise, Procs: 4,
		Route: route.Options{Seed: 1}, NetwiseSyncPerPass: 8})
	if err != nil {
		t.Fatal(err)
	}
	if blind.ForcedEdges != 0 || chatty.ForcedEdges != 0 {
		t.Fatal("sync setting broke connectivity")
	}
	if blind.TotalTracks <= 0 || chatty.TotalTracks <= 0 {
		t.Fatal("degenerate results")
	}
}

func TestComputeCrossings(t *testing.T) {
	// Hand-built circuit: 4 rows, 2 blocks; one net spanning the blocks
	// must produce exactly one fake-pin pair at the boundary; one net
	// inside a block must produce none.
	c := &circuit.Circuit{Name: "x", CellHeight: 10, FeedWidth: 2}
	for r := 0; r < 4; r++ {
		c.AddRow()
		c.AddCell(r, 100)
	}
	cross := c.AddNet("cross")
	c.AddPin(c.Rows[0].Cells[0], cross, 10, circuit.Bottom)
	c.AddPin(c.Rows[3].Cells[0], cross, 50, circuit.Top)
	local := c.AddNet("local")
	c.AddPin(c.Rows[0].Cells[0], local, 20, circuit.Bottom)
	c.AddPin(c.Rows[1].Cells[0], local, 30, circuit.Top)

	blocks := []partition.RowBlock{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}}
	owner := []int{0, 0}
	specs := computeCrossings(c, blocks, owner, 0)
	if len(specs[0]) != 1 || len(specs[1]) != 1 {
		t.Fatalf("spec counts: %d, %d (want 1, 1)", len(specs[0]), len(specs[1]))
	}
	lo, hi := specs[0][0], specs[1][0]
	if lo.Net != cross || hi.Net != cross {
		t.Fatal("specs attached to the wrong net")
	}
	if lo.Row != 1 || lo.Side != circuit.Top {
		t.Fatalf("lower spec = %+v", lo)
	}
	if hi.Row != 2 || hi.Side != circuit.Bottom {
		t.Fatalf("upper spec = %+v", hi)
	}
	if lo.X != hi.X {
		t.Fatal("pair at different columns")
	}
	// A rank that owns no nets emits nothing.
	specs = computeCrossings(c, blocks, owner, 1)
	if len(specs[0])+len(specs[1]) != 0 {
		t.Fatal("non-owner emitted specs")
	}
}

func TestBuildSubCircuit(t *testing.T) {
	c := testCircuit(t)
	blocks, _ := partition.RowBlocks(c, 2)
	fakes := []FakePinSpec{{Net: 0, X: 10, Row: blocks[0].Hi, Side: circuit.Top}}
	sub := buildSubCircuit(c, blocks[0], fakes)
	if err := sub.Validate(); err != nil {
		t.Fatalf("sub-circuit invalid: %v", err)
	}
	// Every net pin inside the sub-circuit lies in the block or is fake.
	for n := range sub.Nets {
		for _, pid := range sub.Nets[n].Pins {
			p := &sub.Pins[pid]
			if !p.Fake && !blocks[0].Contains(p.Row) {
				t.Fatalf("net %d keeps foreign pin in row %d", n, p.Row)
			}
		}
	}
	// Detached pins are marked NoNet.
	for i := range c.Pins {
		p := &sub.Pins[i]
		if !blocks[0].Contains(p.Row) && p.Net != circuit.NoNet {
			t.Fatalf("foreign pin %d still attached to net %d", i, p.Net)
		}
	}
	// The fake pin exists and is attached.
	last := &sub.Pins[len(sub.Pins)-1]
	if !last.Fake || last.Net != 0 {
		t.Fatalf("fake pin missing: %+v", last)
	}
	// The base circuit is untouched.
	if len(c.Pins) == len(sub.Pins) {
		t.Fatal("fake pin not added")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("base circuit corrupted: %v", err)
	}
}

func TestMergePhasesAggregation(t *testing.T) {
	sums := []any{
		Summary{Rank: 0, Phases: []metrics.Phase{{Name: "a", Elapsed: 5}, {Name: "b", Elapsed: 2}}},
		Summary{Rank: 1, Phases: []metrics.Phase{{Name: "a", Elapsed: 3}, {Name: "b", Elapsed: 9}}},
	}
	got := mergePhases(sums)
	if len(got) != 2 || got[0].Name != "a" || got[0].Elapsed != 5 || got[1].Elapsed != 9 {
		t.Fatalf("mergePhases = %+v", got)
	}
}

// TestMergePhasesKeepsPhasesMissingOnRankZero pins the regression fix: the
// old aggregation was keyed on rank 0's phase list, so a phase another
// rank recorded (e.g. extra sync rounds, or rank 0 skipping an empty
// stage) silently vanished from the merged result.
func TestMergePhasesKeepsPhasesMissingOnRankZero(t *testing.T) {
	sums := []any{
		Summary{Rank: 0, Phases: []metrics.Phase{{Name: "a", Elapsed: 5}}},
		Summary{Rank: 1, Phases: []metrics.Phase{
			{Name: "a", Elapsed: 3},
			{Name: "only-on-one", Elapsed: 7},
		}},
	}
	got := mergePhases(sums)
	if len(got) != 2 {
		t.Fatalf("merged %d phases, want 2: %+v", len(got), got)
	}
	if got[1].Name != "only-on-one" || got[1].Elapsed != 7 {
		t.Fatalf("phase absent on rank 0 was dropped or mangled: %+v", got)
	}
}

// TestMergePhasesSumsCounters: per-phase counters are totals of per-rank
// work, so they add across ranks (while elapsed takes the slowest rank,
// the parallel critical path).
func TestMergePhasesSumsCounters(t *testing.T) {
	sums := []any{
		Summary{Rank: 0, Phases: []metrics.Phase{{Name: "connect", Elapsed: 4,
			Counters: []metrics.Counter{{Name: "wires", Value: 10}}}}},
		Summary{Rank: 1, Phases: []metrics.Phase{{Name: "connect", Elapsed: 6,
			Counters: []metrics.Counter{{Name: "wires", Value: 32}, {Name: "forced-edges", Value: 1}}}}},
	}
	got := mergePhases(sums)
	if len(got) != 1 || got[0].Elapsed != 6 {
		t.Fatalf("mergePhases = %+v", got)
	}
	cs := got[0].Counters
	if len(cs) != 2 || cs[0].Name != "wires" || cs[0].Value != 42 ||
		cs[1].Name != "forced-edges" || cs[1].Value != 1 {
		t.Fatalf("merged counters = %+v", cs)
	}
}

func TestForEachChunk(t *testing.T) {
	var bounds [][2]int
	err := forEachChunk(10, 3, func(lo, hi int) error {
		bounds = append(bounds, [2]int{lo, hi})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 3 {
		t.Fatalf("%d chunks, want 3", len(bounds))
	}
	covered := 0
	prev := 0
	for _, b := range bounds {
		if b[0] != prev {
			t.Fatalf("gap before chunk %v", b)
		}
		covered += b[1] - b[0]
		prev = b[1]
	}
	if covered != 10 {
		t.Fatalf("covered %d of 10", covered)
	}
	// Empty input still invokes the callback the same number of times
	// (workers must stay in lockstep even with no local work).
	calls := 0
	if err := forEachChunk(0, 4, func(lo, hi int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("%d calls on empty input, want 4", calls)
	}
}

func TestRowWiseQualityDegradesWithWorkers(t *testing.T) {
	// The paper's central quality observation: row-wise quality gets
	// worse as workers increase (Table 2); the serial run is the best.
	c := testCircuit(t)
	base := baseline(t, c)
	prev := float64(0.99) // allow tiny noise at p=2
	for _, p := range []int{2, 8} {
		res, err := Run(context.Background(), c, Options{Algo: RowWise, Procs: p, Route: route.Options{Seed: 1}})
		if err != nil {
			t.Fatal(err)
		}
		scaled := res.ScaledTracks(base)
		if scaled < prev-0.05 {
			t.Fatalf("p=%d scaled %.3f dropped well below p/2's %.3f", p, scaled, prev)
		}
		prev = scaled
	}
}

func TestHybridBeatsRowWiseQuality(t *testing.T) {
	// §6: the hybrid algorithm provides the best quality among the
	// parallel algorithms. Compare at 8 workers on a mid-size circuit.
	c, err := gen.Benchmark("primary2", 7)
	if err != nil {
		t.Fatal(err)
	}
	row, err := Run(context.Background(), c, Options{Algo: RowWise, Procs: 8, Route: route.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Run(context.Background(), c, Options{Algo: Hybrid, Procs: 8, Route: route.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.TotalTracks > row.TotalTracks {
		t.Fatalf("hybrid (%d tracks) worse than row-wise (%d tracks)",
			hyb.TotalTracks, row.TotalTracks)
	}
}

func TestSummariesMergeCounts(t *testing.T) {
	c := testCircuit(t)
	res, err := Run(context.Background(), c, Options{Algo: RowWise, Procs: 4, Route: route.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Feedthrough count in the merged result must equal the feedthrough
	// wires' implied count: every ft pin is bound to a net and becomes a
	// node; we can't count them from wires directly, but the count must
	// be positive and the core width must cover every wire.
	if res.Feedthroughs <= 0 {
		t.Fatal("no feedthroughs reported")
	}
	maxX := 0
	for i := range res.Wires {
		if !res.Wires[i].Span.Empty() && res.Wires[i].Span.Hi > maxX {
			maxX = res.Wires[i].Span.Hi
		}
	}
	if res.CoreWidth < maxX-1 {
		t.Fatalf("core width %d but wires reach %d", res.CoreWidth, maxX)
	}
	// Channel densities must be defined for all channels.
	if len(res.ChannelDensity) != c.NumChannels() {
		t.Fatalf("%d channel densities for %d channels",
			len(res.ChannelDensity), c.NumChannels())
	}
}

func TestWorkerSeedsDiffer(t *testing.T) {
	seen := map[uint64]bool{}
	for rank := 0; rank < 16; rank++ {
		s := workerSeed(7, rank)
		if seen[s] {
			t.Fatalf("duplicate worker seed at rank %d", rank)
		}
		seen[s] = true
	}
	if workerSeed(7, 0) != 7 {
		t.Fatal("rank 0 must keep the base seed (serial equivalence)")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Algorithms() {
		names[a.String()] = true
	}
	if len(names) != 3 {
		t.Fatalf("algorithm names not distinct: %v", names)
	}
	if Algorithm(42).String() == "" {
		t.Fatal("unknown algorithm should format")
	}
}

func TestChannelDensitySumStableAcrossBlockCounts(t *testing.T) {
	// Wire multiset per net should be "similar" across P: at least the
	// sorted per-channel densities should not contain empty channels that
	// serial fills (sanity against dropped channels in the merge).
	c := testCircuit(t)
	base := baseline(t, c)
	res, err := Run(context.Background(), c, Options{Algo: Hybrid, Procs: 4, Route: route.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for ch, d := range base.ChannelDensity {
		if d > 0 && res.ChannelDensity[ch] == 0 {
			t.Errorf("channel %d: serial density %d but parallel 0 — wires lost in merge", ch, d)
		}
	}
	sort.Ints(res.ChannelDensity) // exercise no panic; densities well-formed
}

func TestTrimmedSubcircuitsIdenticalResults(t *testing.T) {
	// Trimming is a memory optimization, never a behavioral one: results
	// must be bit-identical with and without it.
	c := testCircuit(t)
	for _, algo := range []Algorithm{RowWise, Hybrid} {
		for _, p := range []int{1, 3, 8} {
			full, err := Run(context.Background(), c, Options{Algo: algo, Procs: p, Route: route.Options{Seed: 5}})
			if err != nil {
				t.Fatalf("%v p=%d: %v", algo, p, err)
			}
			trim, err := Run(context.Background(), c, Options{Algo: algo, Procs: p, Route: route.Options{Seed: 5},
				TrimSubcircuits: true})
			if err != nil {
				t.Fatalf("%v p=%d trimmed: %v", algo, p, err)
			}
			if full.TotalTracks != trim.TotalTracks || full.Wirelength != trim.Wirelength ||
				full.Feedthroughs != trim.Feedthroughs || len(full.Wires) != len(trim.Wires) {
				t.Fatalf("%v p=%d: trimmed differs: %d/%d tracks, %d/%d WL",
					algo, p, trim.TotalTracks, full.TotalTracks, trim.Wirelength, full.Wirelength)
			}
			for i := range full.Wires {
				if full.Wires[i] != trim.Wires[i] {
					t.Fatalf("%v p=%d: wire %d differs", algo, p, i)
				}
			}
		}
	}
}

func TestTrimmedSubcircuitsSaveMemory(t *testing.T) {
	c, err := gen.Benchmark("primary2", 7)
	if err != nil {
		t.Fatal(err)
	}
	blocks, _ := partition.RowBlocks(c, 8)
	full := buildSubCircuit(c, blocks[0], nil)
	trim := buildTrimmedSubCircuit(c, blocks[0], nil)
	if err := trim.Validate(); err != nil {
		t.Fatalf("trimmed sub-circuit invalid: %v", err)
	}
	// The trimmed copy must hold roughly 1/8 of the cells and pins.
	if len(trim.Cells)*4 > len(full.Cells) {
		t.Fatalf("trimmed holds %d cells vs full %d — not trimmed", len(trim.Cells), len(full.Cells))
	}
	if len(trim.Pins)*4 > len(full.Pins) {
		t.Fatalf("trimmed holds %d pins vs full %d", len(trim.Pins), len(full.Pins))
	}
	// Same per-net local pin multiset.
	for n := range c.Nets {
		if len(trim.Nets[n].Pins) != len(full.Nets[n].Pins) {
			t.Fatalf("net %d: %d vs %d local pins", n, len(trim.Nets[n].Pins), len(full.Nets[n].Pins))
		}
		for i := range trim.Nets[n].Pins {
			tp := trim.Pins[trim.Nets[n].Pins[i]]
			fp := full.Pins[full.Nets[n].Pins[i]]
			if tp.X != fp.X || tp.Row != fp.Row || tp.Side != fp.Side {
				t.Fatalf("net %d pin %d: (%d,%d,%v) vs (%d,%d,%v)",
					n, i, tp.X, tp.Row, tp.Side, fp.X, fp.Row, fp.Side)
			}
		}
	}
}
