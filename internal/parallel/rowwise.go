package parallel

import (
	"context"
	"fmt"

	"parroute/internal/circuit"
	"parroute/internal/mp"
	"parroute/internal/partition"
	"parroute/internal/pipeline"
	"parroute/internal/route"
)

// rowWiseWorker is one rank of the row-wise pin-partition algorithm (§4).
//
//  1. Every rank builds the Steiner trees of the nets it owns (the net
//     partition exists only to parallelize this phase) and derives the
//     fake-pin specs where tree segments cross partition boundaries.
//  2. Fake pins are exchanged all-to-all; each rank assembles its
//     sub-circuit: its rows' pins plus its boundary fake pins.
//  3. Each rank runs the full TWGR pipeline on its sub-circuit — the pins
//     on partition boundaries are ordinary net pins there, so boundary
//     connections happen during normal net connection, before switchable
//     optimization, as the paper requires.
//  4. Before switchable optimization, the occupancy of each shared
//     boundary channel is exchanged with the neighbor.
//  5. Wires and counters are gathered and merged at rank 0.
//
// Each step is a pipeline stage over the rank's session; stage names
// shared with the serial router are the serial router's own.
func rowWiseWorker(ctx context.Context, comm mp.Comm, base *circuit.Circuit, blocks []partition.RowBlock,
	owner []int, opt Options, out *runOutput) error {

	rank := comm.Rank()
	block := blocks[rank]
	ropt := opt.Route
	ropt.Seed = workerSeed(opt.Route.Seed, rank)
	ropt.GridWidth = base.CoreWidth()

	// State flowing between stages.
	var (
		sub     *circuit.Circuit
		rt      *route.Router
		myFakes []FakePinSpec
		occ     *route.Occupancy
		flips   int
	)

	ses, rec := workerSession(opt)
	stages := []pipeline.Stage{
		stage("crossings", func(s *pipeline.Session) error {
			specs := computeCrossings(base, blocks, owner, rank)
			var err error
			myFakes, err = exchangeFakePins(comm, specs)
			if err != nil {
				return fmt.Errorf("rowwise: fake-pin exchange: %w", err)
			}
			s.Count("fake-pins", int64(len(myFakes)))
			return nil
		}),
		stage("subcircuit", func(_ *pipeline.Session) error {
			if opt.TrimSubcircuits {
				sub = buildTrimmedSubCircuit(base, block, myFakes)
			} else {
				sub = buildSubCircuit(base, block, myFakes)
			}
			rt = route.NewRouter(sub, ropt)
			return nil
		}),
		pipeline.Func("steiner", func(ctx context.Context, s *pipeline.Session) error {
			if err := rt.BuildTrees(ctx); err != nil {
				return err
			}
			s.Count("segments", int64(len(rt.Segs)))
			return nil
		}),
		stage("coarse", func(s *pipeline.Session) error {
			rt.CoarseRoute()
			s.Count("coarse-flips", int64(rt.CoarseFlips))
			return nil
		}),
		stage("ft-insert", func(s *pipeline.Session) error {
			rt.InsertFeedthroughs()
			s.Count("inserted-fts", int64(rt.InsertedFts))
			return nil
		}),
		pipeline.Func("ft-assign", func(ctx context.Context, _ *pipeline.Session) error {
			return rt.AssignFeedthroughs(ctx)
		}),
		pipeline.Func("connect", func(ctx context.Context, s *pipeline.Session) error {
			if err := rt.ConnectNets(ctx); err != nil {
				return err
			}
			s.Count("wires", int64(len(rt.Wires)))
			s.Count("forced-edges", int64(rt.ForcedEdges))
			return nil
		}),
		stage("stitch", func(_ *pipeline.Session) error {
			// Boundary-channel sync: agree on the core width, then add the
			// neighbors' shared-channel wires as fixed background.
			coreW, err := globalCoreWidth(comm, sub, block)
			if err != nil {
				return fmt.Errorf("rowwise: core-width sync: %w", err)
			}
			occ = route.NewOccupancy(sub.NumChannels(), coreW, ropt.GridColWidth)
			occ.AddWires(rt.Wires)
			if err := syncBoundaryOccupancy(comm, blocks, occ); err != nil {
				return fmt.Errorf("rowwise: boundary-occupancy sync: %w", err)
			}
			return nil
		}),
		stage("switch-opt", func(s *pipeline.Session) error {
			flips = route.OptimizeSwitchable(rt.Wires, occ, rt.Rand, ropt.SwitchPasses)
			s.Count("switch-flips", int64(flips))
			return nil
		}),
		stage("gather", func(_ *pipeline.Session) error {
			switchable := 0
			for i := range rt.Wires {
				if rt.Wires[i].Switchable && !rt.Wires[i].Span.Empty() {
					switchable++
				}
			}
			sum := Summary{
				Rank:         rank,
				InsertedFts:  rt.InsertedFts,
				ForcedEdges:  rt.ForcedEdges,
				SwitchableWs: switchable,
				SwitchFlips:  flips,
				CoarseFlips:  rt.CoarseFlips,
				RowWidths:    ownRowWidths(sub, block),
				Phases:       rec.Phases(),
			}
			if err := gatherResults(comm, rt.Wires, sum, out); err != nil {
				return fmt.Errorf("rowwise: result gather: %w", err)
			}
			return nil
		}),
	}
	return pipeline.Run(ctx, ses, stages...)
}
