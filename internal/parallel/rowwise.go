package parallel

import (
	"fmt"

	"parroute/internal/circuit"
	"parroute/internal/mp"
	"parroute/internal/partition"
	"parroute/internal/route"
)

// rowWiseWorker is one rank of the row-wise pin-partition algorithm (§4).
//
//  1. Every rank builds the Steiner trees of the nets it owns (the net
//     partition exists only to parallelize this phase) and derives the
//     fake-pin specs where tree segments cross partition boundaries.
//  2. Fake pins are exchanged all-to-all; each rank assembles its
//     sub-circuit: its rows' pins plus its boundary fake pins.
//  3. Each rank runs the full TWGR pipeline on its sub-circuit — the pins
//     on partition boundaries are ordinary net pins there, so boundary
//     connections happen during normal net connection, before switchable
//     optimization, as the paper requires.
//  4. Before switchable optimization, the occupancy of each shared
//     boundary channel is exchanged with the neighbor.
//  5. Wires and counters are gathered and merged at rank 0.
func rowWiseWorker(comm mp.Comm, base *circuit.Circuit, blocks []partition.RowBlock,
	owner []int, opt Options, out *runOutput) error {

	rank := comm.Rank()
	block := blocks[rank]
	sw := newStopwatch()

	// Phase 1+2: distributed Steiner trees -> fake pins -> sub-circuit.
	specs := computeCrossings(base, blocks, owner, rank)
	sw.lap("crossings")
	myFakes, err := exchangeFakePins(comm, specs)
	if err != nil {
		return fmt.Errorf("rowwise: fake-pin exchange: %w", err)
	}
	sw.reset()
	var sub *circuit.Circuit
	if opt.TrimSubcircuits {
		sub = buildTrimmedSubCircuit(base, block, myFakes)
	} else {
		sub = buildSubCircuit(base, block, myFakes)
	}
	sw.lap("subcircuit")

	// Phase 3: the serial pipeline on the sub-circuit.
	ropt := opt.Route
	ropt.Seed = workerSeed(opt.Route.Seed, rank)
	ropt.GridWidth = base.CoreWidth()
	rt := route.NewRouter(sub, ropt)
	rt.BuildTrees()
	rt.CoarseRoute()
	rt.InsertFeedthroughs()
	rt.AssignFeedthroughs()
	rt.ConnectNets()

	// Phase 4: boundary-channel sync, then switchable optimization with
	// the neighbors' wires as background.
	coreW, err := globalCoreWidth(comm, sub, block)
	if err != nil {
		return fmt.Errorf("rowwise: core-width sync: %w", err)
	}
	occ := route.NewOccupancy(sub.NumChannels(), coreW, ropt.GridColWidth)
	occ.AddWires(rt.Wires)
	if err := syncBoundaryOccupancy(comm, blocks, occ); err != nil {
		return fmt.Errorf("rowwise: boundary-occupancy sync: %w", err)
	}
	sw.reset()
	switchable := 0
	for i := range rt.Wires {
		if rt.Wires[i].Switchable && !rt.Wires[i].Span.Empty() {
			switchable++
		}
	}
	flips := route.OptimizeSwitchable(rt.Wires, occ, rt.Rand, ropt.SwitchPasses)
	sw.lap("switch-opt")

	// Phase 5: merge at rank 0.
	sum := Summary{
		Rank:         rank,
		InsertedFts:  rt.InsertedFts,
		ForcedEdges:  rt.ForcedEdges,
		SwitchableWs: switchable,
		SwitchFlips:  flips,
		CoarseFlips:  rt.CoarseFlips,
		RowWidths:    ownRowWidths(sub, block),
		Phases:       append(sw.phases, rt.Phases()...),
	}
	if err := gatherResults(comm, rt.Wires, sum, out); err != nil {
		return fmt.Errorf("rowwise: result gather: %w", err)
	}
	return nil
}
