package parallel

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"parroute/internal/gen"
	"parroute/internal/mp"
	"parroute/internal/route"
)

// TestWorkersByteIdentical pins the deterministic-reduction contract of the
// intra-rank net parallelism: -workers is a throughput knob, never a quality
// knob. The serial router's metrics JSON must be byte-identical at every
// worker count — and, for primary2, identical to the committed workers=1
// golden, so the pooled code path can never drift from the canonical output.
func TestWorkersByteIdentical(t *testing.T) {
	for _, name := range []string{"primary2", "biomed"} {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := gen.Benchmark(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			var ref []byte
			for _, w := range []int{1, 2, 8} {
				res, err := RunBaseline(context.Background(), c, Options{
					Procs: 1,
					Route: route.Options{Seed: 7, Workers: w},
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				got := resultBytes(t, res)
				if w == 1 {
					ref = got
					continue
				}
				if !bytes.Equal(ref, got) {
					t.Fatalf("workers=%d metrics differ from workers=1 (len %d vs %d)",
						w, len(got), len(ref))
				}
			}
			if name == "primary2" {
				want, err := os.ReadFile(filepath.Join("testdata", "golden", "primary2-serial.json"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, ref) {
					t.Fatal("workers sweep output differs from the committed golden")
				}
			}
		})
	}
}

// TestWorkersByteIdenticalParallelDrivers runs the same sweep through a
// parallel driver: intra-rank workers compose with inter-rank procs without
// perturbing the result.
func TestWorkersByteIdenticalParallelDrivers(t *testing.T) {
	c, err := gen.Benchmark("primary2", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		var ref []byte
		for _, w := range []int{1, 8} {
			res, err := Run(context.Background(), c, Options{
				Algo:  algo,
				Procs: 2,
				Mode:  mp.Inproc,
				Route: route.Options{Seed: 7, Workers: w},
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", algo, w, err)
			}
			got := resultBytes(t, res)
			if w == 1 {
				ref = got
				continue
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("%v: workers=%d metrics differ from workers=1", algo, w)
			}
		}
	}
}
