package partition

// Edge-case coverage for the partition policies: empty rows among
// populated ones, degenerate nets (zero and one pin), and circuits whose
// pins all collapse into a single row. Partitioning feeds every parallel
// algorithm, so each degenerate shape must yield in-range owners and
// contiguous non-empty row blocks, never a panic or a skewed assignment.

import (
	"testing"

	"parroute/internal/circuit"
	"parroute/internal/gen"
)

// rowBlocksCover asserts the blocks tile [0, rows) contiguously.
func rowBlocksCover(t *testing.T, blocks []RowBlock, rows int) {
	t.Helper()
	row := 0
	for k, b := range blocks {
		if b.Lo != row || b.Hi < b.Lo {
			t.Fatalf("block %d = %+v breaks the contiguous cover at row %d", k, b, row)
		}
		row = b.Hi + 1
	}
	if row != rows {
		t.Fatalf("blocks end at row %d of %d", row, rows)
	}
}

// TestRowBlocksEmptyRows puts empty rows between populated ones: the
// balance targets divide by cell counts, and an all-zero stretch must not
// stall the sweep or produce an empty block.
func TestRowBlocksEmptyRows(t *testing.T) {
	c := &circuit.Circuit{Name: "gaps", CellHeight: 10, FeedWidth: 2}
	populated := map[int]bool{0: true, 3: true, 4: true, 7: true}
	for r := 0; r < 8; r++ {
		c.AddRow()
		if populated[r] {
			for i := 0; i < 5; i++ {
				c.AddCell(r, 10)
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4, 8} {
		blocks, err := RowBlocks(c, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(blocks) != p {
			t.Fatalf("p=%d: %d blocks", p, len(blocks))
		}
		rowBlocksCover(t, blocks, len(c.Rows))
	}
}

// TestRowBlocksAllRowsEmpty is the fully degenerate circuit: zero cells
// everywhere still yields one non-empty block per worker.
func TestRowBlocksAllRowsEmpty(t *testing.T) {
	c := &circuit.Circuit{Name: "void", CellHeight: 10, FeedWidth: 2}
	for r := 0; r < 5; r++ {
		c.AddRow()
	}
	blocks, err := RowBlocks(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	rowBlocksCover(t, blocks, 5)
	for k, b := range blocks {
		if b.Rows() != 1 {
			t.Fatalf("block %d spans %d rows, want 1 each", k, b.Rows())
		}
	}
}

// degenerateNets builds a circuit mixing a zero-pin net, single-pin nets,
// and ordinary two-pin nets.
func degenerateNets(t *testing.T) *circuit.Circuit {
	t.Helper()
	c := &circuit.Circuit{Name: "degen", CellHeight: 10, FeedWidth: 2}
	for r := 0; r < 4; r++ {
		c.AddRow()
		for i := 0; i < 6; i++ {
			c.AddCell(r, 10)
		}
	}
	c.AddNet("floating") // zero pins: weight must default, owner in range
	for i := 0; i < 6; i++ {
		n := c.AddNet("")
		c.AddPin(c.Rows[i%4].Cells[i], n, 1, circuit.Bottom) // single pin
	}
	for i := 0; i < 8; i++ {
		n := c.AddNet("")
		c.AddPin(c.Rows[i%4].Cells[i%6], n, 2, circuit.Bottom)
		c.AddPin(c.Rows[(i+1)%4].Cells[(i+3)%6], n, 3, circuit.Top)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestNetsDegenerateNets runs every heuristic over zero-pin and
// single-pin nets; each net, however empty, must get an in-range owner.
func TestNetsDegenerateNets(t *testing.T) {
	c := degenerateNets(t)
	const p = 3
	blocks, err := RowBlocks(c, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		owner, err := Nets(c, blocks, p, Config{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(owner) != len(c.Nets) {
			t.Fatalf("%v: %d owners for %d nets", m, len(owner), len(c.Nets))
		}
		for n, o := range owner {
			if o < 0 || o >= p {
				t.Fatalf("%v: net %d owned by %d", m, n, o)
			}
		}
	}
}

// TestNetsAllPinsInOneRow concentrates every pin in row 0: the weight
// functions collapse to near-constant values, and the fill-to-average
// rule must still spread the pin load instead of stacking one worker.
func TestNetsAllPinsInOneRow(t *testing.T) {
	c := &circuit.Circuit{Name: "flat", CellHeight: 10, FeedWidth: 2}
	for r := 0; r < 4; r++ {
		c.AddRow()
		for i := 0; i < 40; i++ {
			c.AddCell(r, 10)
		}
	}
	for i := 0; i < 40; i++ {
		n := c.AddNet("")
		c.AddPin(c.Rows[0].Cells[i], n, 1, circuit.Bottom)
		c.AddPin(c.Rows[0].Cells[(i+11)%40], n, 2, circuit.Top)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	const p = 4
	blocks, err := RowBlocks(c, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		owner, err := Nets(c, blocks, p, Config{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for n, o := range owner {
			if o < 0 || o >= p {
				t.Fatalf("%v: net %d owned by %d", m, n, o)
			}
		}
		if st := Load(c, owner, p); st.Imbalance > 2 {
			t.Errorf("%v: one-row circuit imbalance %.2f", m, st.Imbalance)
		}
	}
}

// TestLoadZeroPins pins the degenerate Load/SteinerLoad path: no pins at
// all means a defined imbalance of exactly 1, not a division by zero.
func TestLoadZeroPins(t *testing.T) {
	c := &circuit.Circuit{Name: "empty", CellHeight: 10, FeedWidth: 2}
	c.AddRow()
	c.AddNet("a")
	c.AddNet("b")
	owner := []int{0, 1}
	if st := Load(c, owner, 2); st.Imbalance != 1 {
		t.Fatalf("Load imbalance = %v, want 1", st.Imbalance)
	}
	if st := SteinerLoad(c, owner, 2); st.Imbalance != 1 {
		t.Fatalf("SteinerLoad imbalance = %v, want 1", st.Imbalance)
	}
}

// TestRowBlocksSingleRowCircuit exercises the p == rows == 1 corner that
// the one-worker CLI path hits on tiny inputs.
func TestRowBlocksSingleRowCircuit(t *testing.T) {
	c := gen.Tiny(1)
	trimmed := &circuit.Circuit{Name: "one", CellHeight: c.CellHeight, FeedWidth: c.FeedWidth}
	trimmed.AddRow()
	trimmed.AddCell(0, 10)
	blocks, err := RowBlocks(trimmed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0] != (RowBlock{Lo: 0, Hi: 0}) {
		t.Fatalf("blocks = %+v", blocks)
	}
}
