// Package partition implements the work-division policies of the paper's
// §3–§5: contiguous row blocks (cells and their pins follow their rows),
// and the four net-partition heuristics — center, locus, density and
// pin-number-weight — used to spread nets (and their pins) across
// processors while balancing pin counts.
package partition

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"parroute/internal/circuit"
	"parroute/internal/steiner"
)

// RowBlock is a contiguous range of rows owned by one worker, inclusive.
type RowBlock struct {
	Lo, Hi int
}

// Rows returns the number of rows in the block.
func (b RowBlock) Rows() int { return b.Hi - b.Lo + 1 }

// Contains reports whether row r falls in the block.
func (b RowBlock) Contains(r int) bool { return r >= b.Lo && r <= b.Hi }

// RowBlocks splits the circuit's rows into p contiguous blocks balanced by
// cell count (the memory and work proxy the paper partitions by). Every
// block is non-empty; p must not exceed the row count.
func RowBlocks(c *circuit.Circuit, p int) ([]RowBlock, error) {
	n := len(c.Rows)
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	if p > n {
		return nil, fmt.Errorf("partition: %d workers for %d rows", p, n)
	}
	total := 0
	perRow := make([]int, n)
	for r := 0; r < n; r++ {
		perRow[r] = len(c.Rows[r].Cells)
		total += perRow[r]
	}
	blocks := make([]RowBlock, 0, p)
	row := 0
	acc := 0
	for k := 0; k < p; k++ {
		lo := row
		// Leave enough rows for the remaining blocks.
		remainingBlocks := p - k - 1
		target := (total - acc) / (p - k)
		sum := 0
		for row < n-remainingBlocks {
			sum += perRow[row]
			row++
			if sum >= target && row > lo {
				break
			}
		}
		// Guarantee at least one row.
		if row == lo {
			row++
			sum = perRow[lo]
		}
		acc += sum
		blocks = append(blocks, RowBlock{Lo: lo, Hi: row - 1})
	}
	blocks[p-1].Hi = n - 1
	return blocks, nil
}

// BlockOf returns the index of the block containing row r, or -1.
func BlockOf(blocks []RowBlock, r int) int {
	for k, b := range blocks {
		if b.Contains(r) {
			return k
		}
	}
	return -1
}

// Method selects a net-partition heuristic (paper §5).
type Method int

const (
	// Center weights a net by the y coordinate of its pin centroid, so
	// vertically close nets — which compete for the same channels — land
	// on the same processor.
	Center Method = iota
	// Locus clusters geometrically related nets by the lower-left corner
	// of their bounding box (y major, x as tie-break), after LocusRoute.
	Locus
	// Density weights a net by the row block holding most of its pins, so
	// nets land with the processor that owns their rows.
	Density
	// PinWeight weights a net by -(pins^alpha): the large nets are
	// scheduled first (Steiner-tree construction is the dominant cost and
	// superlinear in pin count) and round-robined across processors so no
	// single processor gets all the clock nets.
	PinWeight
)

func (m Method) String() string {
	switch m {
	case Center:
		return "center"
	case Locus:
		return "locus"
	case Density:
		return "density"
	case PinWeight:
		return "pinweight"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all heuristics, for sweeps and ablations.
func Methods() []Method { return []Method{Center, Locus, Density, PinWeight} }

// Config tunes a net partition.
type Config struct {
	Method Method
	// Alpha is the pin-count exponent of PinWeight. Default 1.5.
	Alpha float64
	// LargeFactor defines "large" nets for PinWeight's round-robin: a net
	// is large if its pin count exceeds LargeFactor times the average.
	// Default 8.
	LargeFactor float64
}

func (cfg *Config) normalize() {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1.5
	}
	if cfg.LargeFactor <= 0 {
		cfg.LargeFactor = 8
	}
}

// Nets assigns every net an owner in [0, p) using the configured
// heuristic. blocks is only consulted by the Density method (it may be nil
// for the others). The paper's generic scheme: sort nets by weight, then
// fill processors in that order until each holds its share of the total
// pin count.
func Nets(c *circuit.Circuit, blocks []RowBlock, p int, cfg Config) ([]int, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	cfg.normalize()
	n := len(c.Nets)
	owner := make([]int, n)
	if p == 1 || n == 0 {
		return owner, nil
	}
	if cfg.Method == Density && len(blocks) != p {
		return nil, fmt.Errorf("partition: density method needs %d row blocks, got %d", p, len(blocks))
	}

	type entry struct {
		net    int
		weight float64
		pins   int
	}
	entries := make([]entry, 0, n)
	totalPins := 0
	for i := range c.Nets {
		pins := len(c.Nets[i].Pins)
		totalPins += pins
		entries = append(entries, entry{net: i, weight: weight(c, i, blocks, cfg), pins: pins})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].weight != entries[b].weight {
			return entries[a].weight < entries[b].weight
		}
		return entries[a].net < entries[b].net
	})

	loads := make([]int, p)
	target := float64(totalPins) / float64(p)

	start := 0
	if cfg.Method == PinWeight {
		// Large nets first (they sort first: most negative weight), in
		// round-robin so each processor gets its share of the giants.
		avg := float64(totalPins) / float64(n)
		rr := 0
		for start < len(entries) && float64(entries[start].pins) > cfg.LargeFactor*avg {
			owner[entries[start].net] = rr % p
			loads[rr%p] += entries[start].pins
			rr++
			start++
		}
	}

	// Fill processors in weight order until each reaches the average pin
	// count; the last processor absorbs the remainder.
	k := 0
	for _, e := range entries[start:] {
		for k < p-1 && float64(loads[k]) >= target {
			k++
		}
		owner[e.net] = k
		loads[k] += e.pins
	}
	return owner, nil
}

func weight(c *circuit.Circuit, net int, blocks []RowBlock, cfg Config) float64 {
	pins := c.Nets[net].Pins
	if len(pins) == 0 {
		return 0
	}
	switch cfg.Method {
	case Center:
		sum := 0
		for _, pid := range pins {
			sum += c.Pins[pid].Row
		}
		return float64(sum) / float64(len(pins))
	case Locus:
		bb := c.NetBBox(net)
		return float64(bb.MinY)*float64(c.CoreWidth()+1) + float64(bb.MinX)
	case Density:
		counts := make([]int, len(blocks))
		for _, pid := range pins {
			if k := BlockOf(blocks, c.Pins[pid].Row); k >= 0 {
				counts[k]++
			}
		}
		best, bestCount := 0, -1
		for k, cnt := range counts {
			if cnt > bestCount {
				best, bestCount = k, cnt
			}
		}
		return float64(best)
	case PinWeight:
		return -math.Pow(float64(len(pins)), cfg.Alpha)
	}
	return 0
}

// LoadStats summarizes the balance of a net partition: pins per processor,
// and the imbalance ratio max/avg (1.0 is perfect).
type LoadStats struct {
	Pins      []int
	Imbalance float64
}

// Load computes LoadStats for an owner assignment.
func Load(c *circuit.Circuit, owner []int, p int) LoadStats {
	st := LoadStats{Pins: make([]int, p)}
	total := 0
	for net, o := range owner {
		st.Pins[o] += len(c.Nets[net].Pins)
		total += len(c.Nets[net].Pins)
	}
	if total == 0 {
		st.Imbalance = 1
		return st
	}
	max := 0
	for _, v := range st.Pins {
		if v > max {
			max = v
		}
	}
	st.Imbalance = float64(max) * float64(p) / float64(total)
	return st
}

// SteinerLoad computes the balance of the Steiner-tree construction cost,
// the quantity PinWeight is designed to balance. The cost model matches
// the implementation: d^2 for the exact Prim MST, d*log2(d) for nets above
// steiner.LargeNetThreshold (the row-chain fast path).
func SteinerLoad(c *circuit.Circuit, owner []int, p int) LoadStats {
	st := LoadStats{Pins: make([]int, p)}
	total := 0
	for net, o := range owner {
		d := len(c.Nets[net].Pins)
		cost := d * d
		if d > steiner.LargeNetThreshold {
			cost = d * bits.Len(uint(d))
		}
		st.Pins[o] += cost
		total += cost
	}
	if total == 0 {
		st.Imbalance = 1
		return st
	}
	max := 0
	for _, v := range st.Pins {
		if v > max {
			max = v
		}
	}
	st.Imbalance = float64(max) * float64(p) / float64(total)
	return st
}
