package partition

import (
	"testing"

	"parroute/internal/circuit"
	"parroute/internal/gen"
)

func TestRowBlocksCoverAndBalance(t *testing.T) {
	c, err := gen.Benchmark("primary2", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 7, 8, len(c.Rows)} {
		blocks, err := RowBlocks(c, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(blocks) != p {
			t.Fatalf("p=%d: got %d blocks", p, len(blocks))
		}
		// Contiguous cover of all rows, no gaps or overlaps.
		row := 0
		for k, b := range blocks {
			if b.Lo != row {
				t.Fatalf("p=%d block %d starts at %d, want %d", p, k, b.Lo, row)
			}
			if b.Hi < b.Lo {
				t.Fatalf("p=%d block %d empty", p, k)
			}
			row = b.Hi + 1
		}
		if row != len(c.Rows) {
			t.Fatalf("p=%d blocks end at %d of %d rows", p, row, len(c.Rows))
		}
		// Cell balance within 3x of ideal (blocks are row-granular).
		if p < len(c.Rows)/2 {
			ideal := len(c.Cells) / p
			for k, b := range blocks {
				cells := 0
				for r := b.Lo; r <= b.Hi; r++ {
					cells += len(c.Rows[r].Cells)
				}
				if cells > 3*ideal {
					t.Fatalf("p=%d block %d holds %d cells (ideal %d)", p, k, cells, ideal)
				}
			}
		}
	}
}

func TestRowBlocksErrors(t *testing.T) {
	c := gen.Tiny(1)
	if _, err := RowBlocks(c, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := RowBlocks(c, len(c.Rows)+1); err == nil {
		t.Fatal("more workers than rows accepted")
	}
}

func TestBlockOf(t *testing.T) {
	blocks := []RowBlock{{0, 2}, {3, 5}, {6, 9}}
	cases := map[int]int{0: 0, 2: 0, 3: 1, 5: 1, 6: 2, 9: 2}
	for row, want := range cases {
		if got := BlockOf(blocks, row); got != want {
			t.Errorf("BlockOf(%d) = %d, want %d", row, got, want)
		}
	}
	if BlockOf(blocks, 10) != -1 || BlockOf(blocks, -1) != -1 {
		t.Fatal("out-of-range row should map to -1")
	}
}

func TestNetsAllMethodsAssignEveryNet(t *testing.T) {
	c, err := gen.Benchmark("primary2", 1)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	blocks, _ := RowBlocks(c, p)
	for _, m := range Methods() {
		owner, err := Nets(c, blocks, p, Config{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(owner) != len(c.Nets) {
			t.Fatalf("%v: %d owners for %d nets", m, len(owner), len(c.Nets))
		}
		used := map[int]bool{}
		for n, o := range owner {
			if o < 0 || o >= p {
				t.Fatalf("%v: net %d owned by %d", m, n, o)
			}
			used[o] = true
		}
		if len(used) != p {
			t.Fatalf("%v: only %d of %d workers received nets", m, len(used), p)
		}
		// Pin load balance: all methods use the fill-to-average rule, so
		// no worker may exceed ~2x the average.
		st := Load(c, owner, p)
		if st.Imbalance > 2 {
			t.Fatalf("%v: imbalance %.2f", m, st.Imbalance)
		}
	}
}

func TestNetsSingleWorker(t *testing.T) {
	c := gen.Tiny(1)
	owner, err := Nets(c, nil, 1, Config{Method: PinWeight})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range owner {
		if o != 0 {
			t.Fatal("single worker must own everything")
		}
	}
}

func TestNetsErrors(t *testing.T) {
	c := gen.Tiny(1)
	if _, err := Nets(c, nil, 0, Config{}); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Nets(c, nil, 3, Config{Method: Density}); err == nil {
		t.Fatal("density method without blocks accepted")
	}
}

func TestPinWeightSpreadsGiantNets(t *testing.T) {
	c, err := gen.Benchmark("avq.large", 1)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	blocks, _ := RowBlocks(c, p)
	owner, err := Nets(c, blocks, p, Config{Method: PinWeight})
	if err != nil {
		t.Fatal(err)
	}
	// The four giant clock nets (IDs 0..3) must be round-robined over
	// distinct workers.
	seen := map[int]bool{}
	for n := 0; n < 4; n++ {
		if seen[owner[n]] {
			t.Fatalf("giant nets share a worker: owners %d %d %d %d",
				owner[0], owner[1], owner[2], owner[3])
		}
		seen[owner[n]] = true
	}
}

func TestPinWeightBalancesSteinerCost(t *testing.T) {
	// Deterministic version of the paper's AVQ-LARGE scenario: several
	// large (but below the fast-path threshold, so quadratic-cost) nets
	// whose pins all sit around the same rows. Center stacks them on one
	// worker; pin-number-weight round-robins them.
	c := &circuit.Circuit{Name: "clocky", CellHeight: 10, FeedWidth: 2}
	const rows = 8
	for r := 0; r < rows; r++ {
		c.AddRow()
		for i := 0; i < 64; i++ {
			c.AddCell(r, 10)
		}
	}
	// 4 large nets, 120 pins each, all centered on the same rows.
	for g := 0; g < 4; g++ {
		n := c.AddNet("")
		for i := 0; i < 120; i++ {
			r := i % rows
			c.AddPin(c.Rows[r].Cells[(g*13+i)%64], n, 1, circuit.Bottom)
		}
	}
	// Plus small filler nets.
	for i := 0; i < 200; i++ {
		n := c.AddNet("")
		r := i % (rows - 1)
		c.AddPin(c.Rows[r].Cells[i%64], n, 2, circuit.Bottom)
		c.AddPin(c.Rows[r+1].Cells[(i+7)%64], n, 3, circuit.Top)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	const p = 4
	blocks, _ := RowBlocks(c, p)
	pwOwner, err := Nets(c, blocks, p, Config{Method: PinWeight})
	if err != nil {
		t.Fatal(err)
	}
	ceOwner, err := Nets(c, blocks, p, Config{Method: Center})
	if err != nil {
		t.Fatal(err)
	}
	pw := SteinerLoad(c, pwOwner, p)
	ce := SteinerLoad(c, ceOwner, p)
	if pw.Imbalance >= ce.Imbalance {
		t.Fatalf("pinweight Steiner imbalance %.2f not better than center %.2f",
			pw.Imbalance, ce.Imbalance)
	}
	if pw.Imbalance > 1.6 {
		t.Fatalf("pinweight imbalance %.2f too high for round-robined equal giants", pw.Imbalance)
	}
}

func TestDensityMethodPrefersMajorityBlock(t *testing.T) {
	// Build a circuit with two far-apart clusters of nets; the density
	// method must keep each cluster's nets with the block holding them.
	c := &circuit.Circuit{Name: "two", CellHeight: 10, FeedWidth: 2}
	for r := 0; r < 4; r++ {
		c.AddRow()
		for i := 0; i < 4; i++ {
			c.AddCell(r, 10)
		}
	}
	// 8 nets fully in rows 0-1, 8 nets fully in rows 2-3.
	for i := 0; i < 16; i++ {
		n := c.AddNet("")
		base := 0
		if i >= 8 {
			base = 2
		}
		c.AddPin(c.Rows[base].Cells[i%4], n, 1, circuit.Bottom)
		c.AddPin(c.Rows[base+1].Cells[i%4], n, 2, circuit.Top)
	}
	blocks := []RowBlock{{0, 1}, {2, 3}}
	owner, err := Nets(c, blocks, 2, Config{Method: Density})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 8; n++ {
		if owner[n] != 0 {
			t.Fatalf("lower-cluster net %d owned by %d", n, owner[n])
		}
	}
	for n := 8; n < 16; n++ {
		if owner[n] != 1 {
			t.Fatalf("upper-cluster net %d owned by %d", n, owner[n])
		}
	}
}

func TestCenterKeepsVerticallyCloseNetsTogether(t *testing.T) {
	c, err := gen.Benchmark("primary2", 2)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	blocks, _ := RowBlocks(c, p)
	owner, err := Nets(c, blocks, p, Config{Method: Center})
	if err != nil {
		t.Fatal(err)
	}
	// Workers' nets must be stratified by y: the mean center of worker
	// k's nets must increase with k.
	sums := make([]float64, p)
	counts := make([]float64, p)
	for n := range c.Nets {
		pins := c.Nets[n].Pins
		if len(pins) == 0 {
			continue
		}
		y := 0
		for _, pid := range pins {
			y += c.Pins[pid].Row
		}
		sums[owner[n]] += float64(y) / float64(len(pins))
		counts[owner[n]]++
	}
	prev := -1.0
	for k := 0; k < p; k++ {
		mean := sums[k] / counts[k]
		if mean <= prev {
			t.Fatalf("worker %d mean center %.1f not above worker %d's %.1f",
				k, mean, k-1, prev)
		}
		prev = mean
	}
}

func TestLoadStats(t *testing.T) {
	c := gen.Tiny(1)
	owner := make([]int, len(c.Nets)) // everything on worker 0 of 2
	st := Load(c, owner, 2)
	if st.Imbalance != 2 {
		t.Fatalf("all-on-one imbalance = %v, want 2", st.Imbalance)
	}
	if st.Pins[1] != 0 {
		t.Fatal("worker 1 should hold nothing")
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range Methods() {
		if m.String() == "" {
			t.Fatalf("method %d has empty name", m)
		}
	}
	if Method(42).String() == "" {
		t.Fatal("unknown method should format")
	}
}
