package pipeline

import (
	"time"

	"parroute/internal/metrics"
)

// PhaseRecorder is the built-in observer that accumulates one
// metrics.Phase per completed stage — the record Result.Phases and the
// parallel Summary gather. It is not safe for concurrent use; give every
// rank its own recorder.
type PhaseRecorder struct {
	phases []metrics.Phase
}

// NewPhaseRecorder returns an empty recorder.
func NewPhaseRecorder() *PhaseRecorder { return &PhaseRecorder{} }

func (r *PhaseRecorder) StageStart(string) {}

func (r *PhaseRecorder) StageEnd(stage string, m StageMetrics) {
	ph := metrics.Phase{Name: stage, Elapsed: m.Wall}
	for _, c := range m.Counters {
		ph.Counters = append(ph.Counters, metrics.Counter{Name: c.Name, Value: c.Value})
	}
	r.phases = append(r.phases, ph)
}

// Phases returns the recorded per-stage records, in execution order.
func (r *PhaseRecorder) Phases() []metrics.Phase { return r.phases }

// Total returns the summed wall time of all recorded stages — the
// pipeline's elapsed time as read through the observer clock.
func (r *PhaseRecorder) Total() time.Duration {
	var total time.Duration
	for _, p := range r.phases {
		total += p.Elapsed
	}
	return total
}
