// Package pipeline is the staged execution core shared by the serial TWGR
// router and the three parallel drivers. A routing run is a sequence of
// named Stages executed by a deterministic runner over a Session; the
// runner checks context cancellation at every stage boundary and feeds an
// Observer chain with per-stage measurements (wall time, heap-allocation
// deltas, and stage-scoped counters).
//
// Observers are guaranteed side-effect-free with respect to routing
// output: a Session gives them no handle on circuit, grid, or RNG state,
// and the runner invokes them outside the stage bodies, so attaching or
// removing observers can never change a routing decision. The golden
// metrics oracle in internal/parallel pins this property.
//
// Wall-clock reads are confined to this package (the "observer clock"):
// routing code asks the Session for measurements instead of calling
// time.Now itself, which is what lets the parroutecheck nondeterminism
// rule keep its timing allowlist down to measurement infrastructure.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// Stage is one named step of a routing pipeline.
type Stage interface {
	// Name returns the stage's canonical name; serial and parallel
	// pipelines use identical names for identical steps so per-stage
	// records are comparable across algorithms.
	Name() string
	// Run executes the stage. Long stages should poll ctx.Err() at
	// natural checkpoints; the runner itself checks cancellation between
	// stages.
	Run(ctx context.Context, s *Session) error
}

// funcStage adapts a closure to the Stage interface.
type funcStage struct {
	name string
	fn   func(ctx context.Context, s *Session) error
}

func (st funcStage) Name() string { return st.name }
func (st funcStage) Run(ctx context.Context, s *Session) error {
	return st.fn(ctx, s)
}

// Func wraps a closure as a Stage.
func Func(name string, fn func(ctx context.Context, s *Session) error) Stage {
	return funcStage{name: name, fn: fn}
}

// Counter is one named stage-scoped tally.
type Counter struct {
	Name  string
	Value int64
}

// StageMetrics is what observers receive at StageEnd.
type StageMetrics struct {
	// Wall is the stage's wall-clock duration as read by the observer
	// clock.
	Wall time.Duration
	// Allocs and Bytes are the heap allocation deltas (mallocs and total
	// bytes) across the stage. They are collected only when the Session
	// has CollectAllocs set — runtime.ReadMemStats stops the world, so
	// alloc accounting is opt-in (tracing, benchmarking) rather than a tax
	// on every routing run.
	Allocs int64
	Bytes  int64
	// Counters are the stage-scoped tallies reported through
	// Session.Count, in first-report order (deterministic).
	Counters []Counter
	// Err is the stage's error, nil on success. Observers see StageEnd
	// even for failed or cancelled stages so a timeline is never missing
	// its last entry.
	Err error
}

// Observer receives stage boundary events. Implementations must not
// mutate routing state (they are given none) and, when one observer
// instance is shared across parallel workers, must be safe for concurrent
// use.
type Observer interface {
	StageStart(stage string)
	StageEnd(stage string, m StageMetrics)
}

// Session carries the observer chain and stage-scoped counter state of
// one pipeline run. A Session belongs to a single run on a single
// goroutine (each parallel rank builds its own); the observers it fans
// out to may be shared.
type Session struct {
	// CollectAllocs enables per-stage heap-allocation deltas in
	// StageMetrics (see StageMetrics.Allocs).
	CollectAllocs bool

	observers []Observer
	counters  []Counter
	index     map[string]int
}

// NewSession builds a session that reports to the given observers in
// order.
func NewSession(obs ...Observer) *Session {
	return &Session{observers: obs, index: map[string]int{}}
}

// Attach appends more observers to the chain.
func (s *Session) Attach(obs ...Observer) {
	s.observers = append(s.observers, obs...)
}

// Count adds delta to the named counter of the currently running stage.
// Counters reset at every stage boundary; they surface in StageMetrics in
// first-report order.
func (s *Session) Count(name string, delta int64) {
	if i, ok := s.index[name]; ok {
		s.counters[i].Value += delta
		return
	}
	s.index[name] = len(s.counters)
	s.counters = append(s.counters, Counter{Name: name, Value: delta})
}

// takeCounters returns the stage's counters and resets the accumulator.
func (s *Session) takeCounters() []Counter {
	if len(s.counters) == 0 {
		return nil
	}
	out := s.counters
	s.counters = nil
	s.index = map[string]int{}
	return out
}

// Run executes the stages in order over the session. Before each stage it
// checks ctx; a cancelled or timed-out context stops the pipeline with an
// error wrapping ctx.Err() (context.Canceled or
// context.DeadlineExceeded). A stage error stops the pipeline and is
// returned wrapped with the stage name. Observers see StageStart/StageEnd
// around every stage that began, including the failing one.
func Run(ctx context.Context, s *Session, stages ...Stage) error {
	for _, st := range stages {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("pipeline: cancelled before stage %q: %w", st.Name(), err)
		}
		if err := runStage(ctx, s, st); err != nil {
			return err
		}
	}
	return nil
}

func runStage(ctx context.Context, s *Session, st Stage) error {
	name := st.Name()
	for _, o := range s.observers {
		o.StageStart(name)
	}
	var before runtime.MemStats
	if s.CollectAllocs {
		runtime.ReadMemStats(&before)
	}
	start := time.Now()
	err := st.Run(ctx, s)
	m := StageMetrics{
		Wall:     time.Since(start),
		Counters: s.takeCounters(),
		Err:      err,
	}
	if s.CollectAllocs {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		m.Allocs = int64(after.Mallocs - before.Mallocs)
		m.Bytes = int64(after.TotalAlloc - before.TotalAlloc)
	}
	for _, o := range s.observers {
		o.StageEnd(name, m)
	}
	if err != nil {
		return fmt.Errorf("pipeline: stage %q: %w", name, err)
	}
	return nil
}
