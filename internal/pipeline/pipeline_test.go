package pipeline

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"parroute/internal/metrics"
)

// eventLog records the observer callback sequence.
type eventLog struct {
	events []string
	ends   []StageMetrics
}

func (l *eventLog) StageStart(stage string) { l.events = append(l.events, "start:"+stage) }
func (l *eventLog) StageEnd(stage string, m StageMetrics) {
	l.events = append(l.events, "end:"+stage)
	l.ends = append(l.ends, m)
}

func TestRunExecutesStagesInOrder(t *testing.T) {
	var order []string
	log := &eventLog{}
	s := NewSession(log)
	err := Run(context.Background(), s,
		Func("a", func(context.Context, *Session) error { order = append(order, "a"); return nil }),
		Func("b", func(context.Context, *Session) error { order = append(order, "b"); return nil }),
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := strings.Join(order, ","); got != "a,b" {
		t.Fatalf("stage order = %q, want a,b", got)
	}
	want := []string{"start:a", "end:a", "start:b", "end:b"}
	if got := strings.Join(log.events, " "); got != strings.Join(want, " ") {
		t.Fatalf("observer events = %q, want %q", got, strings.Join(want, " "))
	}
}

func TestRunStopsOnStageError(t *testing.T) {
	boom := errors.New("boom")
	log := &eventLog{}
	s := NewSession(log)
	ran := false
	err := Run(context.Background(), s,
		Func("fail", func(context.Context, *Session) error { return boom }),
		Func("next", func(context.Context, *Session) error { ran = true; return nil }),
	)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrap of %v", err, boom)
	}
	if !strings.Contains(err.Error(), `stage "fail"`) {
		t.Fatalf("error %q does not name the failing stage", err)
	}
	if ran {
		t.Fatal("stage after failure still ran")
	}
	// The failing stage must still produce a StageEnd carrying the error.
	if len(log.ends) != 1 || !errors.Is(log.ends[0].Err, boom) {
		t.Fatalf("StageEnd for failing stage: ends=%v", log.ends)
	}
}

func TestRunChecksContextBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSession()
	ran := false
	err := Run(ctx, s,
		Func("first", func(context.Context, *Session) error { cancel(); return nil }),
		Func("second", func(context.Context, *Session) error { ran = true; return nil }),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("stage ran after cancellation")
	}
	if !strings.Contains(err.Error(), `"second"`) {
		t.Fatalf("error %q does not name the stage it stopped before", err)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := Run(ctx, NewSession(), Func("never", func(context.Context, *Session) error {
		t.Fatal("stage ran under expired deadline")
		return nil
	}))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run error = %v, want context.DeadlineExceeded", err)
	}
}

func TestCountersAreStageScopedAndOrdered(t *testing.T) {
	log := &eventLog{}
	s := NewSession(log)
	err := Run(context.Background(), s,
		Func("a", func(_ context.Context, s *Session) error {
			s.Count("z", 1)
			s.Count("a", 2)
			s.Count("z", 3) // accumulate, keep first-report position
			return nil
		}),
		Func("b", func(_ context.Context, s *Session) error {
			s.Count("only-b", 7)
			return nil
		}),
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantA := []Counter{{Name: "z", Value: 4}, {Name: "a", Value: 2}}
	if got := log.ends[0].Counters; len(got) != 2 || got[0] != wantA[0] || got[1] != wantA[1] {
		t.Fatalf("stage a counters = %v, want %v", got, wantA)
	}
	if got := log.ends[1].Counters; len(got) != 1 || got[0] != (Counter{Name: "only-b", Value: 7}) {
		t.Fatalf("stage b counters = %v (counters leaked across stages?)", got)
	}
}

func TestCollectAllocs(t *testing.T) {
	log := &eventLog{}
	s := NewSession(log)
	s.CollectAllocs = true
	sink := make([][]byte, 0, 64)
	err := Run(context.Background(), s, Func("alloc", func(context.Context, *Session) error {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 1024))
		}
		return nil
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = sink
	if log.ends[0].Allocs <= 0 || log.ends[0].Bytes <= 0 {
		t.Fatalf("alloc deltas not collected: %+v", log.ends[0])
	}
}

func TestPhaseRecorder(t *testing.T) {
	rec := NewPhaseRecorder()
	rec.StageEnd("steiner", StageMetrics{Wall: 2 * time.Millisecond, Counters: []Counter{{Name: "nets", Value: 5}}})
	rec.StageEnd("coarse", StageMetrics{Wall: 3 * time.Millisecond})
	ph := rec.Phases()
	if len(ph) != 2 || ph[0].Name != "steiner" || ph[1].Name != "coarse" {
		t.Fatalf("phases = %v", ph)
	}
	if len(ph[0].Counters) != 1 || ph[0].Counters[0] != (metrics.Counter{Name: "nets", Value: 5}) {
		t.Fatalf("phase counters = %v", ph[0].Counters)
	}
	if rec.Total() != 5*time.Millisecond {
		t.Fatalf("Total = %v, want 5ms", rec.Total())
	}
}

func TestTraceRoundTrip(t *testing.T) {
	rec := NewTraceRecorder()
	rec.StageEnd("steiner", StageMetrics{Wall: time.Millisecond, Allocs: 10, Bytes: 640,
		Counters: []Counter{{Name: "trees", Value: 12}}})
	rec.StageEnd("connect", StageMetrics{Wall: 2 * time.Millisecond, Err: errors.New("cut short")})
	tr := rec.Trace("primary1", "rowwise", 4)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if back.Schema != TraceSchema {
		t.Fatalf("schema = %q", back.Schema)
	}
	if back.Circuit != "primary1" || back.Algo != "rowwise" || back.Procs != 4 {
		t.Fatalf("identity fields lost: %+v", back)
	}
	if len(back.Stages) != 2 {
		t.Fatalf("stages = %v", back.Stages)
	}
	st := back.Stages[0]
	if st.Name != "steiner" || st.WallNS != time.Millisecond.Nanoseconds() || st.Allocs != 10 || st.Bytes != 640 {
		t.Fatalf("stage[0] = %+v", st)
	}
	if len(st.Counters) != 1 || st.Counters[0] != (TraceCounter{Name: "trees", Value: 12}) {
		t.Fatalf("stage[0] counters = %v", st.Counters)
	}
	if back.Stages[1].Error != "cut short" {
		t.Fatalf("stage[1] error = %q", back.Stages[1].Error)
	}
}

func TestReadTraceRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"schema":"parroute-trace/999","stages":[]}`)); err == nil {
		t.Fatal("ReadTrace accepted unknown schema")
	}
}

func TestTraceFromPhases(t *testing.T) {
	tr := TraceFromPhases("biomed", "hybrid", 8, []metrics.Phase{
		{Name: "crossings", Elapsed: time.Millisecond, Counters: []metrics.Counter{{Name: "cuts", Value: 3}}},
		{Name: "stitch", Elapsed: 2 * time.Millisecond},
	})
	if tr.Schema != TraceSchema || tr.Circuit != "biomed" || tr.Algo != "hybrid" || tr.Procs != 8 {
		t.Fatalf("trace identity: %+v", tr)
	}
	if len(tr.Stages) != 2 || tr.Stages[0].Counters[0] != (TraceCounter{Name: "cuts", Value: 3}) {
		t.Fatalf("stages = %+v", tr.Stages)
	}
}
