package pipeline

import (
	"encoding/json"
	"fmt"
	"io"

	"parroute/internal/metrics"
)

// TraceSchema identifies the on-disk form of a per-stage timeline written
// by `twgr -trace`. Readers reject unknown schemas.
const TraceSchema = "parroute-trace/1"

// Trace is the machine-readable per-stage timeline of one routing run:
// stage names, wall times, allocation deltas, and stage-scoped counters,
// exactly as the observer chain saw them.
type Trace struct {
	Schema  string       `json:"schema"`
	Circuit string       `json:"circuit,omitempty"`
	Algo    string       `json:"algo,omitempty"`
	Procs   int          `json:"procs,omitempty"`
	Stages  []TraceStage `json:"stages"`
}

// TraceStage is one stage's record in a Trace.
type TraceStage struct {
	Name      string         `json:"name"`
	WallNS    int64          `json:"wallNs"`
	Allocs    int64          `json:"allocs,omitempty"`
	Bytes     int64          `json:"bytes,omitempty"`
	Counters  []TraceCounter `json:"counters,omitempty"`
	Error     string         `json:"error,omitempty"`
	Cancelled bool           `json:"cancelled,omitempty"`
}

// TraceCounter is one stage-scoped counter in a Trace.
type TraceCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// TraceRecorder is an observer that accumulates a Trace. Not safe for
// concurrent use; attach one per pipeline run.
type TraceRecorder struct {
	trace Trace
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{trace: Trace{Schema: TraceSchema}}
}

func (r *TraceRecorder) StageStart(string) {}

func (r *TraceRecorder) StageEnd(stage string, m StageMetrics) {
	ts := TraceStage{Name: stage, WallNS: m.Wall.Nanoseconds(), Allocs: m.Allocs, Bytes: m.Bytes}
	for _, c := range m.Counters {
		ts.Counters = append(ts.Counters, TraceCounter{Name: c.Name, Value: c.Value})
	}
	if m.Err != nil {
		ts.Error = m.Err.Error()
	}
	r.trace.Stages = append(r.trace.Stages, ts)
}

// Trace returns the recorded timeline, annotated with the run identity.
func (r *TraceRecorder) Trace(circuit, algo string, procs int) *Trace {
	t := r.trace
	t.Circuit, t.Algo, t.Procs = circuit, algo, procs
	return &t
}

// TraceFromPhases builds a Trace out of merged metrics.Phase records —
// the parallel path, where per-rank observer timelines are aggregated
// into Result.Phases before they reach the writer.
func TraceFromPhases(circuit, algo string, procs int, phases []metrics.Phase) *Trace {
	t := &Trace{Schema: TraceSchema, Circuit: circuit, Algo: algo, Procs: procs}
	for _, p := range phases {
		ts := TraceStage{Name: p.Name, WallNS: p.Elapsed.Nanoseconds()}
		for _, c := range p.Counters {
			ts.Counters = append(ts.Counters, TraceCounter{Name: c.Name, Value: c.Value})
		}
		t.Stages = append(t.Stages, ts)
	}
	return t
}

// WriteTrace serializes the trace as indented JSON.
func WriteTrace(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace parses a trace and validates its schema.
func ReadTrace(rd io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(rd).Decode(&t); err != nil {
		return nil, fmt.Errorf("pipeline: decoding trace: %w", err)
	}
	if t.Schema != TraceSchema {
		return nil, fmt.Errorf("pipeline: trace schema %q, want %q", t.Schema, TraceSchema)
	}
	return &t, nil
}
