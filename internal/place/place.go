// Package place implements a simulated-annealing standard-cell placer in
// the TimberWolfSC tradition. The paper routes circuits that TimberWolfSC
// placed; this package closes that dependency: it takes a netlist whose
// cells are in arbitrary positions and anneals cell swaps until nets are
// geometrically local, producing exactly the kind of placement the global
// router expects (and that internal/gen otherwise synthesizes directly).
//
// The cost function is the classic total half-perimeter wirelength with
// rows weighted like the router's Steiner metric (crossing a row costs a
// feedthrough, so vertical spread is dearer than horizontal). Moves are
// pairwise cell swaps — within a row or across rows — with exact
// incremental cost evaluation: only the nets touching cells whose
// positions changed are re-measured.
package place

import (
	"fmt"
	"math"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/rng"
	"parroute/internal/steiner"
)

// Options tunes the annealer. Zero values take defaults.
type Options struct {
	Seed uint64
	// MovesPerCell scales the schedule length: total moves =
	// MovesPerCell * number of cells per temperature step. Default 8.
	MovesPerCell int
	// Steps is the number of temperature steps. Default 24.
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule, in cost
	// units. Defaults 0 mean they are derived from the circuit (start at
	// the scale of an average net's wirelength, end near 1).
	StartTemp, EndTemp float64
}

func (o *Options) normalize(c *circuit.Circuit) {
	if o.MovesPerCell <= 0 {
		o.MovesPerCell = 8
	}
	if o.Steps <= 0 {
		o.Steps = 24
	}
	if o.StartTemp <= 0 {
		nets := len(c.Nets)
		if nets == 0 {
			nets = 1
		}
		o.StartTemp = float64(totalHPWL(c)) / float64(nets)
		if o.StartTemp < 4 {
			o.StartTemp = 4
		}
	}
	if o.EndTemp <= 0 {
		o.EndTemp = 1
	}
	if o.EndTemp >= o.StartTemp {
		o.EndTemp = o.StartTemp / 16
	}
}

// Result reports an annealing run.
type Result struct {
	InitialHPWL int64
	FinalHPWL   int64
	Moves       int
	Accepted    int
}

// hpwlNet measures one net: half-perimeter with the router's vertical
// weighting.
func hpwlNet(c *circuit.Circuit, n int) int64 {
	pins := c.Nets[n].Pins
	if len(pins) < 2 {
		return 0
	}
	p0 := &c.Pins[pins[0]]
	minX, maxX, minR, maxR := p0.X, p0.X, p0.Row, p0.Row
	for _, pid := range pins[1:] {
		p := &c.Pins[pid]
		minX = geom.Min(minX, p.X)
		maxX = geom.Max(maxX, p.X)
		minR = geom.Min(minR, p.Row)
		maxR = geom.Max(maxR, p.Row)
	}
	return int64(maxX-minX) + steiner.VerticalCost*int64(maxR-minR)
}

// totalHPWL sums the weighted half-perimeters of all nets.
func totalHPWL(c *circuit.Circuit) int64 {
	var total int64
	for n := range c.Nets {
		total += hpwlNet(c, n)
	}
	return total
}

// TotalHPWL is the exported cost of a placement: the quantity Anneal
// minimizes.
func TotalHPWL(c *circuit.Circuit) int64 { return totalHPWL(c) }

// Anneal improves the placement of c in place and returns run statistics.
// The circuit must contain no feedthrough cells or fake pins (place before
// routing). Deterministic in Options.Seed.
func Anneal(c *circuit.Circuit, opt Options) (*Result, error) {
	for i := range c.Cells {
		if c.Cells[i].Feed {
			return nil, fmt.Errorf("place: circuit already routed (feedthrough cell %d)", i)
		}
	}
	for i := range c.Pins {
		if c.Pins[i].Fake {
			return nil, fmt.Errorf("place: circuit carries fake pin %d", i)
		}
	}
	if len(c.Cells) < 2 {
		return &Result{InitialHPWL: totalHPWL(c), FinalHPWL: totalHPWL(c)}, nil
	}
	opt.normalize(c)
	r := rng.New(opt.Seed)

	res := &Result{InitialHPWL: totalHPWL(c)}
	cost := res.InitialHPWL

	// slotOf[cellID] = index within its row's cell list.
	slotOf := make([]int, len(c.Cells))
	for row := range c.Rows {
		for i, cid := range c.Rows[row].Cells {
			slotOf[cid] = i
		}
	}

	temp := opt.StartTemp
	cool := math.Pow(opt.EndTemp/opt.StartTemp, 1/float64(opt.Steps-1))
	movesPerStep := opt.MovesPerCell * len(c.Cells)

	for step := 0; step < opt.Steps; step++ {
		for m := 0; m < movesPerStep; m++ {
			a := r.Intn(len(c.Cells))
			b := r.Intn(len(c.Cells))
			if a == b {
				continue
			}
			res.Moves++
			delta := trySwap(c, slotOf, a, b)
			if delta <= 0 || r.Float64() < math.Exp(-float64(delta)/temp) {
				cost += delta
				res.Accepted++
			} else {
				// Undo: swapping back restores everything exactly, so the
				// tracked cost is untouched.
				trySwap(c, slotOf, a, b)
			}
		}
		temp *= cool
	}
	res.FinalHPWL = cost
	return res, nil
}

// trySwap exchanges the row slots of cells a and b, repacks the affected
// rows, refreshes the moved pins, and returns the exact cost delta of the
// affected nets. Calling it again with the same arguments undoes the swap.
func trySwap(c *circuit.Circuit, slotOf []int, a, b int) int64 {
	rowA, rowB := c.Cells[a].Row, c.Cells[b].Row
	// Nets whose cost can change: those with pins on cells whose x will
	// shift — every cell at or right of the leftmost affected slot in the
	// two rows. Collect them before moving.
	affected := affectedNets(c, slotOf, a, b)
	var before int64
	for _, n := range affected {
		before += hpwlNet(c, n)
	}

	sa, sb := slotOf[a], slotOf[b]
	if rowA == rowB {
		row := &c.Rows[rowA]
		row.Cells[sa], row.Cells[sb] = row.Cells[sb], row.Cells[sa]
		slotOf[a], slotOf[b] = sb, sa
		repackRow(c, rowA, geom.Min(sa, sb))
	} else {
		c.Rows[rowA].Cells[sa] = b
		c.Rows[rowB].Cells[sb] = a
		c.Cells[a].Row, c.Cells[b].Row = rowB, rowA
		slotOf[a], slotOf[b] = sb, sa
		for _, pid := range c.Cells[a].Pins {
			c.Pins[pid].Row = rowB
		}
		for _, pid := range c.Cells[b].Pins {
			c.Pins[pid].Row = rowA
		}
		repackRow(c, rowA, sa)
		repackRow(c, rowB, sb)
	}

	var after int64
	for _, n := range affected {
		after += hpwlNet(c, n)
	}
	return after - before
}

// affectedNets lists the nets with a pin on any cell whose x coordinate
// the swap of a and b can change: cells from the swap slots rightward in
// the affected rows (positions left of the slots never move).
func affectedNets(c *circuit.Circuit, slotOf []int, a, b int) []int {
	seen := make(map[int]struct{})
	var nets []int
	collect := func(row, fromSlot int) {
		cells := c.Rows[row].Cells
		for _, cid := range cells[fromSlot:] {
			for _, pid := range c.Cells[cid].Pins {
				n := c.Pins[pid].Net
				if n == circuit.NoNet {
					continue
				}
				if _, ok := seen[n]; !ok {
					seen[n] = struct{}{}
					nets = append(nets, n)
				}
			}
		}
	}
	rowA, rowB := c.Cells[a].Row, c.Cells[b].Row
	sa, sb := slotOf[a], slotOf[b]
	if rowA == rowB {
		collect(rowA, geom.Min(sa, sb))
	} else {
		collect(rowA, sa)
		collect(rowB, sb)
	}
	return nets
}

// repackRow rebuilds the x positions of row cells from slot `from`
// rightward (everything left of it is unchanged) and refreshes their pins.
func repackRow(c *circuit.Circuit, row, from int) {
	cells := c.Rows[row].Cells
	x := 0
	if from > 0 {
		prev := &c.Cells[cells[from-1]]
		x = prev.X + prev.Width
	}
	for _, cid := range cells[from:] {
		cell := &c.Cells[cid]
		cell.X = x
		for _, pid := range cell.Pins {
			c.Pins[pid].X = x + c.Pins[pid].Offset
		}
		x += cell.Width
	}
}

// Scramble destroys a placement's locality by performing the given number
// of random cell swaps without regard to cost — the adversarial starting
// point for Anneal (and the stand-in for an unplaced netlist).
func Scramble(c *circuit.Circuit, seed uint64, swaps int) {
	r := rng.New(seed)
	slotOf := make([]int, len(c.Cells))
	for row := range c.Rows {
		for i, cid := range c.Rows[row].Cells {
			slotOf[cid] = i
		}
	}
	for i := 0; i < swaps; i++ {
		a := r.Intn(len(c.Cells))
		b := r.Intn(len(c.Cells))
		if a == b {
			continue
		}
		trySwap(c, slotOf, a, b)
	}
}
