package place

import (
	"testing"

	"parroute/internal/circuit"
	"parroute/internal/gen"
	"parroute/internal/rng"
)

func TestScrambleKeepsCircuitValid(t *testing.T) {
	c := gen.Tiny(1)
	before := TotalHPWL(c)
	Scramble(c, 3, 500)
	if err := c.Validate(); err != nil {
		t.Fatalf("scrambled circuit invalid: %v", err)
	}
	after := TotalHPWL(c)
	if after <= before {
		t.Fatalf("scrambling should destroy locality: HPWL %d -> %d", before, after)
	}
}

func TestTrySwapIsExactAndInvertible(t *testing.T) {
	c := gen.Tiny(2)
	slotOf := make([]int, len(c.Cells))
	for row := range c.Rows {
		for i, cid := range c.Rows[row].Cells {
			slotOf[cid] = i
		}
	}
	r := rng.New(9)
	for trial := 0; trial < 300; trial++ {
		a, b := r.Intn(len(c.Cells)), r.Intn(len(c.Cells))
		if a == b {
			continue
		}
		before := TotalHPWL(c)
		delta := trySwap(c, slotOf, a, b)
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: invalid after swap: %v", trial, err)
		}
		// The reported delta must equal the true global delta.
		if got := TotalHPWL(c) - before; got != delta {
			t.Fatalf("trial %d: reported delta %d, true delta %d", trial, delta, got)
		}
		// Undo restores the exact cost.
		back := trySwap(c, slotOf, a, b)
		if back != -delta {
			t.Fatalf("trial %d: undo delta %d, want %d", trial, back, -delta)
		}
		if TotalHPWL(c) != before {
			t.Fatalf("trial %d: undo did not restore cost", trial)
		}
	}
}

func TestAnnealRecoversLocality(t *testing.T) {
	// Scramble a well-placed circuit, then anneal: the placer must win
	// back most of the destroyed wirelength.
	c := gen.Tiny(5)
	placed := TotalHPWL(c)
	Scramble(c, 7, 2000)
	scrambled := TotalHPWL(c)
	if scrambled < 2*placed {
		t.Fatalf("scramble too weak: %d -> %d", placed, scrambled)
	}
	res, err := Anneal(c, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("annealed circuit invalid: %v", err)
	}
	if res.InitialHPWL != scrambled {
		t.Fatalf("initial HPWL %d, want %d", res.InitialHPWL, scrambled)
	}
	if res.FinalHPWL != TotalHPWL(c) {
		t.Fatalf("tracked cost %d diverged from true cost %d", res.FinalHPWL, TotalHPWL(c))
	}
	// Recover at least 60% of the damage.
	recovered := float64(scrambled-res.FinalHPWL) / float64(scrambled-placed)
	if recovered < 0.6 {
		t.Fatalf("recovered only %.0f%% of the scrambled wirelength (placed %d, scrambled %d, annealed %d)",
			100*recovered, placed, scrambled, res.FinalHPWL)
	}
	if res.Accepted == 0 || res.Moves == 0 {
		t.Fatal("no moves recorded")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	a := gen.Tiny(5)
	b := gen.Tiny(5)
	Scramble(a, 7, 500)
	Scramble(b, 7, 500)
	ra, err := Anneal(a, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Anneal(b, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ra.FinalHPWL != rb.FinalHPWL || ra.Accepted != rb.Accepted {
		t.Fatalf("same seed diverged: %+v vs %+v", ra, rb)
	}
	for i := range a.Cells {
		if a.Cells[i].X != b.Cells[i].X || a.Cells[i].Row != b.Cells[i].Row {
			t.Fatalf("cell %d placed differently", i)
		}
	}
}

func TestAnnealRejectsRoutedCircuits(t *testing.T) {
	c := gen.Tiny(1)
	c.InsertFeedthrough(0, 5, circuit.NoNet)
	if _, err := Anneal(c, Options{Seed: 1}); err == nil {
		t.Fatal("circuit with feedthroughs accepted")
	}
	c2 := gen.Tiny(1)
	c2.AddFakePin(0, 3, 0, circuit.Top)
	if _, err := Anneal(c2, Options{Seed: 1}); err == nil {
		t.Fatal("circuit with fake pins accepted")
	}
}

func TestAnnealDegenerate(t *testing.T) {
	c := &circuit.Circuit{Name: "one", CellHeight: 10, FeedWidth: 2}
	c.AddRow()
	c.AddCell(0, 5)
	res, err := Anneal(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialHPWL != res.FinalHPWL {
		t.Fatal("single-cell circuit should be a no-op")
	}
}

func TestHPWLNet(t *testing.T) {
	c := &circuit.Circuit{Name: "h", CellHeight: 10, FeedWidth: 2}
	c.AddRow()
	c.AddRow()
	c.AddCell(0, 100)
	c.AddCell(1, 100)
	n := c.AddNet("n")
	c.AddPin(0, n, 10, circuit.Bottom) // (10, row 0)
	c.AddPin(1, n, 40, circuit.Top)    // (40, row 1)
	want := int64(30) + 16             // dx + VerticalCost*drow
	if got := hpwlNet(c, n); got != want {
		t.Fatalf("hpwl = %d, want %d", got, want)
	}
	single := c.AddNet("s")
	c.AddPin(0, single, 5, circuit.Bottom)
	if hpwlNet(c, single) != 0 {
		t.Fatal("single-pin net should cost 0")
	}
}

func BenchmarkAnneal(b *testing.B) {
	base := gen.Tiny(5)
	Scramble(base, 7, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := base.Clone()
		if _, err := Anneal(c, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
