// Package rng implements the deterministic pseudo-random number generator
// used throughout the router.
//
// TWGR's coarse routing and switchable-segment optimization both visit
// segments "randomly picked from the whole segment pool" (paper §2); for the
// parallel algorithms every worker needs its own independent stream so runs
// are reproducible regardless of goroutine scheduling. The generator is
// xoshiro256** seeded through splitmix64, the combination recommended by its
// authors; Split derives statistically independent child streams.
package rng

// RNG is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; give each goroutine its own stream via Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Any seed value,
// including zero, yields a usable stream (splitmix64 never produces the
// all-zero xoshiro state).
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is independent of r's. The
// child is seeded from the parent's output, so splitting is itself
// deterministic: the same parent state always yields the same children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n") //lint:allow panic-in-library documented contract mirroring math/rand.Intn
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Shuffle randomizes the order of n elements using the Fisher-Yates
// algorithm; swap exchanges elements i and j.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)). It draws
// exactly the values Perm(len(p)) draws, so callers can switch between the
// two (e.g. to reuse a scratch buffer) without changing the stream.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}

// NormInt returns an integer drawn from an approximately normal distribution
// with the given mean and standard deviation, clamped to be >= min. It uses
// the sum of three uniforms (Irwin-Hall), which is plenty for workload
// synthesis.
func (r *RNG) NormInt(mean, stddev float64, min int) int {
	u := r.Float64() + r.Float64() + r.Float64() - 1.5 // mean 0, var 1/4
	v := mean + stddev*2*u
	n := int(v + 0.5)
	if n < min {
		n = min
	}
	return n
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1") //lint:allow panic-in-library documented contract mirroring math/rand conventions
	}
	n := 0
	for r.Float64() >= p {
		n++
		if n > 1<<20 { // numerically impossible for sane p; avoid livelock
			break
		}
	}
	return n
}
