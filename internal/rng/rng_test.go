package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values of 1000", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded generator produced only %d distinct values", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams matched %d of 1000 draws", same)
	}
	// Split is deterministic: rebuilding the parent reproduces children.
	parent2 := New(7)
	d1 := parent2.Split()
	c1b := New(7).Split()
	_ = d1
	x, y := New(7).Split().Uint64(), c1b.Uint64()
	if x != y {
		t.Fatal("Split not deterministic")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want about %.0f", b, c, want)
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const draws = 10000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleFairness(t *testing.T) {
	// Position of element 0 after shuffling [0,1,2] should be uniform.
	r := New(11)
	counts := [3]int{}
	const draws = 30000
	for i := 0; i < draws; i++ {
		a := []int{0, 1, 2}
		r.Shuffle(3, func(x, y int) { a[x], a[y] = a[y], a[x] })
		for pos, v := range a {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	want := float64(draws) / 3
	for pos, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("element 0 landed at position %d %d times, want about %.0f", pos, c, want)
		}
	}
}

func TestNormInt(t *testing.T) {
	r := New(8)
	var sum float64
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := r.NormInt(50, 10, 0)
		if v < 0 {
			t.Fatalf("NormInt returned %d below min", v)
		}
		sum += float64(v)
	}
	if mean := sum / draws; math.Abs(mean-50) > 1 {
		t.Fatalf("NormInt mean = %v, want about 50", mean)
	}
	// min clamp
	for i := 0; i < 100; i++ {
		if v := r.NormInt(0, 100, 5); v < 5 {
			t.Fatalf("NormInt ignored min: %d", v)
		}
	}
}

func TestGeometric(t *testing.T) {
	r := New(13)
	const p, draws = 0.25, 20000
	var sum float64
	for i := 0; i < draws; i++ {
		v := r.Geometric(p)
		if v < 0 {
			t.Fatalf("Geometric returned %d", v)
		}
		sum += float64(v)
	}
	want := (1 - p) / p // mean of geometric (failures before success)
	if mean := sum / draws; math.Abs(mean-want) > 0.15 {
		t.Fatalf("Geometric mean = %v, want about %v", mean, want)
	}
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
}

func TestGeometricPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) should panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBoolBalance(t *testing.T) {
	r := New(21)
	trues := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-draws/2) > 5*math.Sqrt(draws/4) {
		t.Fatalf("Bool returned true %d of %d times", trues, draws)
	}
}
