package route

import (
	"context"
	"testing"

	"parroute/internal/gen"
	"parroute/internal/rng"
)

// BenchmarkPhases measures each TWGR phase on primary2.
func BenchmarkPhases(b *testing.B) {
	c, err := gen.Benchmark("primary2", 7)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("steiner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt := NewRouter(c.Clone(), Options{Seed: 1})
			if err := rt.BuildTrees(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coarse", func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			rt := NewRouter(c.Clone(), Options{Seed: 1})
			if err := rt.BuildTrees(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			rt.CoarseRoute()
			b.StopTimer()
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Route(context.Background(), c, Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConnectNodes measures step 4 at clock-net scale.
func BenchmarkConnectNodes(b *testing.B) {
	r := rng.New(3)
	nodes := make([]Node, 3000)
	for i := range nodes {
		nodes[i] = Node{X: r.Intn(3000), Row: r.Intn(80), Side: 2 /* Both */}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConnectNodes(0, nodes, nil)
	}
}

// BenchmarkSwitchOpt measures step 5 on a realistic wire population.
func BenchmarkSwitchOpt(b *testing.B) {
	c, err := gen.Benchmark("primary2", 7)
	if err != nil {
		b.Fatal(err)
	}
	rt := NewRouter(c.Clone(), Options{Seed: 1})
	ctx := context.Background()
	if err := rt.BuildTrees(ctx); err != nil {
		b.Fatal(err)
	}
	rt.CoarseRoute()
	rt.InsertFeedthroughs()
	if err := rt.AssignFeedthroughs(ctx); err != nil {
		b.Fatal(err)
	}
	if err := rt.ConnectNets(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append(rt.Wires[:0:0], rt.Wires...)
		occ := NewOccupancy(rt.C.NumChannels(), rt.C.CoreWidth(), 16)
		occ.AddWires(cp)
		OptimizeSwitchable(cp, occ, rng.New(uint64(i)), 3)
	}
}
