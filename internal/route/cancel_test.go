package route

import (
	"context"
	"errors"
	"testing"

	"parroute/internal/gen"
)

// TestPooledStagesCancelMidRoute drives the worker-pooled stages with a
// context that dies between pipeline steps: each pooled stage (steiner,
// ft-assign, connect) must unwind with an error wrapping context.Canceled
// and leave no goroutines behind (the -race cancellation tier runs this).
func TestPooledStagesCancelMidRoute(t *testing.T) {
	c := gen.Small(11)

	t.Run("steiner", func(t *testing.T) {
		rt := NewRouter(c, Options{Seed: 7, Workers: 4})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := rt.BuildTrees(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("BuildTrees: err = %v, want context.Canceled", err)
		}
	})

	t.Run("ft-assign", func(t *testing.T) {
		rt := NewRouter(c, Options{Seed: 7, Workers: 4})
		if err := rt.BuildTrees(context.Background()); err != nil {
			t.Fatal(err)
		}
		rt.CoarseRoute()
		rt.InsertFeedthroughs()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := rt.AssignFeedthroughs(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("AssignFeedthroughs: err = %v, want context.Canceled", err)
		}
	})

	t.Run("connect", func(t *testing.T) {
		rt := NewRouter(c, Options{Seed: 7, Workers: 4})
		if err := rt.BuildTrees(context.Background()); err != nil {
			t.Fatal(err)
		}
		rt.CoarseRoute()
		rt.InsertFeedthroughs()
		if err := rt.AssignFeedthroughs(context.Background()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := rt.ConnectNets(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("ConnectNets: err = %v, want context.Canceled", err)
		}
	})

	// A cancelled pooled run must not poison the router: the same circuit
	// routes cleanly afterwards with a fresh router at the same settings.
	t.Run("recover", func(t *testing.T) {
		rt := NewRouter(c, Options{Seed: 7, Workers: 4})
		if _, err := rt.Run(context.Background()); err != nil {
			t.Fatalf("clean run after cancelled runs: %v", err)
		}
	})
}
