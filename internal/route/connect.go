package route

import (
	"sort"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/metrics"
)

// Node is a connection point of a net during step 4: a regular pin, an
// assigned feedthrough pin, or (in the parallel algorithms) a fake
// boundary pin. Nodes are self-contained so they can be shipped between
// workers without the circuit.
type Node struct {
	X    int
	Row  int
	Side circuit.Side
	Pin  int // originating pin ID, for diagnostics; -1 when remote
}

// Channels returns the routing channels the node touches.
func (n Node) Channels() (lo, hi int, both bool) {
	switch n.Side {
	case circuit.Bottom:
		return n.Row, n.Row, false
	case circuit.Top:
		return n.Row + 1, n.Row + 1, false
	default:
		return n.Row, n.Row + 1, true
	}
}

// adjacent reports whether two nodes share a channel, and returns the
// shared channels. When both is true the pair shares two channels (both
// nodes are side-Both in the same row) and the connection is switchable.
func adjacent(a, b Node) (ch int, both bool, ok bool) {
	alo, ahi, aboth := a.Channels()
	blo, bhi, bboth := b.Channels()
	lo := geom.Max(alo, blo)
	hi := geom.Min(ahi, bhi)
	if lo > hi {
		return 0, false, false
	}
	if lo < hi && aboth && bboth {
		return lo, true, true
	}
	return lo, false, true
}

// Connection is one step-4 tree edge between two nodes of a net.
type Connection struct {
	Net  int
	U, V int // indices into the net's node list
	// Channel is the channel the connection currently occupies. For
	// switchable connections Row records the cell row between the two
	// candidate channels Row and Row+1.
	Channel    int
	Switchable bool
	Row        int
	Forced     bool // true when no shared channel existed (fallback edge)
}

// Wire converts the connection to its metrics representation, including
// the endpoint anchors the detailed channel router needs.
func (c *Connection) Wire(nodes []Node) metrics.Wire {
	u, v := nodes[c.U], nodes[c.V]
	return metrics.Wire{
		Net:        c.Net,
		Channel:    c.Channel,
		Span:       connSpan(u.X, v.X),
		Switchable: c.Switchable,
		Row:        c.Row,
		AX:         u.X, ARow: u.Row,
		BX: v.X, BRow: v.Row,
	}
}

// connSpan is the track-occupying extent between two x positions; a
// zero-length connection occupies no track.
func connSpan(a, b int) geom.Interval {
	if a == b {
		return geom.Interval{Lo: 1, Hi: 0}
	}
	return geom.NewInterval(a, b)
}

// ConnectNodes performs TWGR step 4 for one net: a minimum spanning tree
// over the complete graph of the net's nodes, where only nodes in adjacent
// rows (sharing a channel) are connectable at cost |dx|. It returns the
// tree edges and the number of forced (non-adjacent) edges, which is zero
// whenever feedthrough assignment covered every row gap.
//
// The MST is computed exactly without materializing the complete graph:
// within one channel the |dx| metric is one-dimensional, so some MST uses
// only consecutive-by-x pairs; Kruskal over those candidates (O(n log n))
// replaces the O(n^2) Prim, which matters for multi-thousand-pin clock
// nets. Disconnected adjacency components (which a correct feedthrough
// assignment never produces) are chained with Forced edges so every net
// stays electrically complete.
// occ, when non-nil, is the live channel occupancy the caller streams its
// nets through: switchable connections pick the cheaper of their two
// candidate channels against it, and every produced wire is added to it.
// A nil occ places switchable connections in their lower channel.
func ConnectNodes(netID int, nodes []Node, occ *Occupancy) (conns []Connection, forced int) {
	if len(nodes) < 2 {
		return nil, 0
	}

	// Bucket node indices by the channels they touch.
	buckets := make(map[int][]int)
	for i := range nodes {
		lo, hi, _ := nodes[i].Channels()
		buckets[lo] = append(buckets[lo], i)
		if hi != lo {
			buckets[hi] = append(buckets[hi], i)
		}
	}
	type cand struct {
		w    int64
		u, v int
	}
	var cands []cand
	chs := make([]int, 0, len(buckets))
	for ch := range buckets {
		chs = append(chs, ch)
	}
	sort.Ints(chs)
	for _, ch := range chs {
		b := buckets[ch]
		sort.Slice(b, func(i, j int) bool {
			if nodes[b[i]].X != nodes[b[j]].X {
				return nodes[b[i]].X < nodes[b[j]].X
			}
			return b[i] < b[j]
		})
		for i := 1; i < len(b); i++ {
			u, v := b[i-1], b[i]
			cands = append(cands, cand{w: int64(geom.Abs(nodes[u].X - nodes[v].X)), u: u, v: v})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w < cands[j].w
		}
		if cands[i].u != cands[j].u {
			return cands[i].u < cands[j].u
		}
		return cands[i].v < cands[j].v
	})

	uf := newUnionFind(len(nodes))
	conns = make([]Connection, 0, len(nodes)-1)
	for _, e := range cands {
		if !uf.union(e.u, e.v) {
			continue
		}
		u, v := nodes[e.u], nodes[e.v]
		conn := Connection{Net: netID, U: e.u, V: e.v}
		ch, both, _ := adjacent(u, v)
		conn.Channel = ch
		if both {
			conn.Switchable = true
			conn.Row = ch // candidate channels ch and ch+1
			if occ != nil {
				span := connSpan(u.X, v.X)
				if occ.AddCost(ch+1, span) < occ.AddCost(ch, span) {
					conn.Channel = ch + 1
				}
			}
		}
		if occ != nil {
			occ.Add(conn.Channel, connSpan(u.X, v.X), 1)
		}
		conns = append(conns, conn)
	}

	// Chain any remaining components (deterministically, lowest indices
	// first) with forced edges.
	if len(conns) < len(nodes)-1 {
		prev := -1
		for i := range nodes {
			if uf.find(i) != i {
				continue
			}
			if prev >= 0 {
				uf.union(prev, i)
				u, v := nodes[prev], nodes[i]
				conn := Connection{
					Net: netID, U: prev, V: i, Forced: true,
					Channel: geom.Min(u.Row, v.Row) + 1,
				}
				if occ != nil {
					occ.Add(conn.Channel, connSpan(u.X, v.X), 1)
				}
				conns = append(conns, conn)
				forced++
			}
			prev = i
		}
	}
	return conns, forced
}

// unionFind is a plain disjoint-set structure with path halving.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, returning false if already joined.
// The smaller root index wins, keeping results order-independent.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	return true
}
