package route

import (
	"cmp"
	"slices"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/metrics"
)

// Node is a connection point of a net during step 4: a regular pin, an
// assigned feedthrough pin, or (in the parallel algorithms) a fake
// boundary pin. Nodes are self-contained so they can be shipped between
// workers without the circuit.
type Node struct {
	X    int
	Row  int
	Side circuit.Side
	Pin  int // originating pin ID, for diagnostics; -1 when remote
}

// Channels returns the routing channels the node touches.
func (n Node) Channels() (lo, hi int, both bool) {
	switch n.Side {
	case circuit.Bottom:
		return n.Row, n.Row, false
	case circuit.Top:
		return n.Row + 1, n.Row + 1, false
	default:
		return n.Row, n.Row + 1, true
	}
}

// adjacent reports whether two nodes share a channel, and returns the
// shared channels. When both is true the pair shares two channels (both
// nodes are side-Both in the same row) and the connection is switchable.
func adjacent(a, b Node) (ch int, both bool, ok bool) {
	alo, ahi, aboth := a.Channels()
	blo, bhi, bboth := b.Channels()
	lo := geom.Max(alo, blo)
	hi := geom.Min(ahi, bhi)
	if lo > hi {
		return 0, false, false
	}
	if lo < hi && aboth && bboth {
		return lo, true, true
	}
	return lo, false, true
}

// Connection is one step-4 tree edge between two nodes of a net.
type Connection struct {
	Net  int
	U, V int // indices into the net's node list
	// Channel is the channel the connection currently occupies. For
	// switchable connections Row records the cell row between the two
	// candidate channels Row and Row+1.
	Channel    int
	Switchable bool
	Row        int
	Forced     bool // true when no shared channel existed (fallback edge)
}

// Wire converts the connection to its metrics representation, including
// the endpoint anchors the detailed channel router needs.
func (c *Connection) Wire(nodes []Node) metrics.Wire {
	u, v := nodes[c.U], nodes[c.V]
	return metrics.Wire{
		Net:        c.Net,
		Channel:    c.Channel,
		Span:       connSpan(u.X, v.X),
		Switchable: c.Switchable,
		Row:        c.Row,
		AX:         u.X, ARow: u.Row,
		BX: v.X, BRow: v.Row,
	}
}

// connSpan is the track-occupying extent between two x positions; a
// zero-length connection occupies no track.
func connSpan(a, b int) geom.Interval {
	if a == b {
		return geom.Interval{Lo: 1, Hi: 0}
	}
	return geom.NewInterval(a, b)
}

// ConnectNodes performs TWGR step 4 for one net: a minimum spanning tree
// over the complete graph of the net's nodes, where only nodes in adjacent
// rows (sharing a channel) are connectable at cost |dx|. It returns the
// tree edges and the number of forced (non-adjacent) edges, which is zero
// whenever feedthrough assignment covered every row gap.
//
// occ, when non-nil, is the live channel occupancy the caller streams its
// nets through: switchable connections pick the cheaper of their two
// candidate channels against it, and every produced wire is added to it.
// A nil occ places switchable connections in their lower channel.
//
// Callers connecting many nets should reuse a Connector instead; this
// wrapper allocates fresh scratch per call.
func ConnectNodes(netID int, nodes []Node, occ *Occupancy) (conns []Connection, forced int) {
	var cn Connector
	return cn.Connect(netID, nodes, occ)
}

// Connector carries the reusable scratch of ConnectNodes so step 4 runs
// allocation-free per net. The zero value is ready to use; a Connector is
// not safe for concurrent use.
type Connector struct {
	entries []chEntry
	cands   []ConnCand
	keys    []int64
	uf      unionFind
	conns   []Connection
}

// chEntry is one (channel, node) incidence; nodes touching two channels
// produce two entries.
type chEntry struct {
	ch, x, idx int
}

// ConnCand is one candidate MST edge produced by Prepare and consumed by
// Commit. The fields are unexported: workers only ever move prepared
// candidates around as opaque values.
type ConnCand struct {
	w    int64
	u, v int
}

// Bit budget of the packed int64 sort keys: node index in the low bits,
// then x (or edge weight), then channel. Inputs beyond these bounds — a
// million pins on one net, 2^31 x units, 4095 channels, 2^23-unit edge
// weights — take the comparator-based fallback sort instead.
const (
	packIdxBits = 20
	packXBits   = 31
)

// Connect computes the step-4 tree of one net; see ConnectNodes. The
// returned slice is the Connector's scratch and is valid only until the
// next Connect call — callers that retain connections must copy them.
//
// The MST is computed exactly without materializing the complete graph:
// within one channel the |dx| metric is one-dimensional, so some MST uses
// only consecutive-by-x pairs; Kruskal over those candidates (O(n log n))
// replaces the O(n^2) Prim, which matters for multi-thousand-pin clock
// nets. Disconnected adjacency components (which a correct feedthrough
// assignment never produces) are chained with Forced edges so every net
// stays electrically complete.
func (cn *Connector) Connect(netID int, nodes []Node, occ *Occupancy) (conns []Connection, forced int) {
	if len(nodes) < 2 {
		return nil, 0
	}
	return cn.Commit(netID, nodes, cn.Prepare(nodes), occ)
}

// Prepare computes the sorted candidate-edge list of one net — everything
// in Connect up to (but excluding) the Kruskal/occupancy commit. The
// candidates depend only on the net's own nodes, never on the shared
// occupancy, so Prepare calls for different nets are independent and safe
// to fan out across workers; Commit then replays them serially in net
// order, which is what keeps the occupancy-streamed switchable-channel
// choices byte-identical to the fully serial router.
//
// The returned slice is the Connector's scratch, valid only until the next
// Prepare call — callers that retain candidates must copy them.
func (cn *Connector) Prepare(nodes []Node) []ConnCand {
	if len(nodes) < 2 {
		return nil
	}

	// One sorted pass over (channel, x, index) incidences replaces the
	// per-channel bucket maps: consecutive entries of the same channel are
	// exactly the consecutive-by-x pairs of that channel's bucket. When the
	// values fit the key bit budget (always, for realistic circuits) both
	// sorts run comparator-free over packed int64 keys — net connection is
	// dominated by sorting many tiny slices, where the generic comparator
	// machinery costs more than the sort itself.
	entries := cn.entries[:0]
	pack := len(nodes) <= 1<<packIdxBits
	for i := range nodes {
		lo, hi, _ := nodes[i].Channels()
		if nodes[i].X < 0 || nodes[i].X >= 1<<packXBits || hi >= 1<<(63-packIdxBits-packXBits) {
			pack = false
		}
		entries = append(entries, chEntry{ch: lo, x: nodes[i].X, idx: i})
		if hi != lo {
			entries = append(entries, chEntry{ch: hi, x: nodes[i].X, idx: i})
		}
	}
	if pack {
		keys := cn.keys[:0]
		for _, e := range entries {
			keys = append(keys, int64(e.ch)<<(packIdxBits+packXBits)|int64(e.x)<<packIdxBits|int64(e.idx))
		}
		slices.Sort(keys)
		for i, k := range keys {
			entries[i] = chEntry{
				ch:  int(k >> (packIdxBits + packXBits)),
				x:   int(k >> packIdxBits & (1<<packXBits - 1)),
				idx: int(k & (1<<packIdxBits - 1)),
			}
		}
		cn.keys = keys
	} else {
		slices.SortFunc(entries, func(a, b chEntry) int {
			if a.ch != b.ch {
				return cmp.Compare(a.ch, b.ch)
			}
			if a.x != b.x {
				return cmp.Compare(a.x, b.x)
			}
			return cmp.Compare(a.idx, b.idx)
		})
	}
	cn.entries = entries

	cands := cn.cands[:0]
	packCands := pack
	for i := 1; i < len(entries); i++ {
		if entries[i].ch != entries[i-1].ch {
			continue
		}
		w := int64(entries[i].x - entries[i-1].x)
		if w >= 1<<(63-2*packIdxBits) {
			packCands = false
		}
		cands = append(cands, ConnCand{w: w, u: entries[i-1].idx, v: entries[i].idx})
	}
	if packCands {
		keys := cn.keys[:0]
		for _, c := range cands {
			keys = append(keys, c.w<<(2*packIdxBits)|int64(c.u)<<packIdxBits|int64(c.v))
		}
		slices.Sort(keys)
		for i, k := range keys {
			cands[i] = ConnCand{
				w: k >> (2 * packIdxBits),
				u: int(k >> packIdxBits & (1<<packIdxBits - 1)),
				v: int(k & (1<<packIdxBits - 1)),
			}
		}
		cn.keys = keys
	} else {
		slices.SortFunc(cands, func(a, b ConnCand) int {
			if a.w != b.w {
				return cmp.Compare(a.w, b.w)
			}
			if a.u != b.u {
				return cmp.Compare(a.u, b.u)
			}
			return cmp.Compare(a.v, b.v)
		})
	}
	cn.cands = cands
	return cands
}

// Commit is the serial tail of Connect: Kruskal over the prepared
// candidates, streaming switchable-channel choices and the produced wires
// through occ. Callers replaying prepared nets must commit them in net
// order — the occupancy state at each commit is what the channel choices
// depend on. The returned slice is the Connector's scratch; see Connect.
func (cn *Connector) Commit(netID int, nodes []Node, cands []ConnCand, occ *Occupancy) (conns []Connection, forced int) {
	if len(nodes) < 2 {
		return nil, 0
	}
	uf := &cn.uf
	uf.reset(len(nodes))
	conns = cn.conns[:0]
	for _, e := range cands {
		if !uf.union(e.u, e.v) {
			continue
		}
		u, v := nodes[e.u], nodes[e.v]
		conn := Connection{Net: netID, U: e.u, V: e.v}
		ch, both, _ := adjacent(u, v)
		conn.Channel = ch
		if both {
			conn.Switchable = true
			conn.Row = ch // candidate channels ch and ch+1
			if occ != nil {
				span := connSpan(u.X, v.X)
				if occ.AddCost(ch+1, span) < occ.AddCost(ch, span) {
					conn.Channel = ch + 1
				}
			}
		}
		if occ != nil {
			occ.Add(conn.Channel, connSpan(u.X, v.X), 1)
		}
		conns = append(conns, conn)
	}

	// Chain any remaining components (deterministically, lowest indices
	// first) with forced edges.
	if len(conns) < len(nodes)-1 {
		prev := -1
		for i := range nodes {
			if uf.find(i) != i {
				continue
			}
			if prev >= 0 {
				uf.union(prev, i)
				u, v := nodes[prev], nodes[i]
				conn := Connection{
					Net: netID, U: prev, V: i, Forced: true,
					Channel: geom.Min(u.Row, v.Row) + 1,
				}
				if occ != nil {
					occ.Add(conn.Channel, connSpan(u.X, v.X), 1)
				}
				conns = append(conns, conn)
				forced++
			}
			prev = i
		}
	}
	cn.conns = conns
	return conns, forced
}

// unionFind is a plain disjoint-set structure with path halving.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{}
	uf.reset(n)
	return uf
}

// reset re-initializes the structure for n singleton sets, reusing the
// parent slice when it is large enough.
func (u *unionFind) reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int, n)
	}
	u.parent = u.parent[:n]
	for i := range u.parent {
		u.parent[i] = i
	}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, returning false if already joined.
// The smaller root index wins, keeping results order-independent.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	return true
}
