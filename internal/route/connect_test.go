package route

import (
	"testing"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/mst"
	"parroute/internal/rng"
)

func TestAdjacent(t *testing.T) {
	n := func(row int, side circuit.Side) Node { return Node{Row: row, Side: side} }
	cases := []struct {
		a, b     Node
		wantOK   bool
		wantCh   int
		wantBoth bool
	}{
		{n(2, circuit.Bottom), n(2, circuit.Bottom), true, 2, false},
		{n(2, circuit.Bottom), n(2, circuit.Top), false, 0, false},
		{n(2, circuit.Top), n(3, circuit.Bottom), true, 3, false},
		{n(2, circuit.Both), n(2, circuit.Both), true, 2, true},
		{n(2, circuit.Both), n(2, circuit.Bottom), true, 2, false},
		{n(2, circuit.Both), n(3, circuit.Both), true, 3, false},
		{n(2, circuit.Bottom), n(4, circuit.Bottom), false, 0, false},
		{n(2, circuit.Both), n(3, circuit.Top), false, 0, false},
	}
	for i, tc := range cases {
		ch, both, ok := adjacent(tc.a, tc.b)
		if ok != tc.wantOK || (ok && (ch != tc.wantCh || both != tc.wantBoth)) {
			t.Errorf("case %d: adjacent = (%d, %v, %v), want (%d, %v, %v)",
				i, ch, both, ok, tc.wantCh, tc.wantBoth, tc.wantOK)
		}
		// Symmetry.
		ch2, both2, ok2 := adjacent(tc.b, tc.a)
		if ch2 != ch || both2 != both || ok2 != ok {
			t.Errorf("case %d: adjacent not symmetric", i)
		}
	}
}

func TestConnectNodesTrivial(t *testing.T) {
	if conns, forced := ConnectNodes(0, nil, nil); conns != nil || forced != 0 {
		t.Fatal("empty node list")
	}
	one := []Node{{X: 5, Row: 1, Side: circuit.Bottom}}
	if conns, _ := ConnectNodes(0, one, nil); conns != nil {
		t.Fatal("single node should produce no connections")
	}
}

func TestConnectNodesChain(t *testing.T) {
	// Pins in channel 2 at x = 0, 10, 30: tree must be the consecutive
	// chain with total span 30.
	nodes := []Node{
		{X: 30, Row: 2, Side: circuit.Bottom},
		{X: 0, Row: 2, Side: circuit.Bottom},
		{X: 10, Row: 2, Side: circuit.Bottom},
	}
	conns, forced := ConnectNodes(7, nodes, nil)
	if forced != 0 || len(conns) != 2 {
		t.Fatalf("conns=%d forced=%d", len(conns), forced)
	}
	var total int64
	for _, c := range conns {
		if c.Net != 7 {
			t.Fatalf("net = %d", c.Net)
		}
		total += int64(geom.Abs(nodes[c.U].X - nodes[c.V].X))
	}
	if total != 30 {
		t.Fatalf("total span = %d, want 30", total)
	}
}

func TestConnectNodesFeedthroughChain(t *testing.T) {
	// A pin in channel 1, feedthroughs in rows 1..3, a pin in channel 4:
	// the chain through the feedthroughs connects them without forcing.
	nodes := []Node{
		{X: 100, Row: 1, Side: circuit.Bottom}, // channel 1
		{X: 100, Row: 1, Side: circuit.Both},   // ft row 1: {1,2}
		{X: 100, Row: 2, Side: circuit.Both},   // ft row 2: {2,3}
		{X: 100, Row: 3, Side: circuit.Both},   // ft row 3: {3,4}
		{X: 250, Row: 4, Side: circuit.Bottom}, // channel 4
	}
	conns, forced := ConnectNodes(0, nodes, nil)
	if forced != 0 {
		t.Fatalf("forced = %d", forced)
	}
	if len(conns) != 4 {
		t.Fatalf("%d connections", len(conns))
	}
	// Exactly one wire should have nonzero extent (the 150-unit hop).
	long := 0
	for _, c := range conns {
		w := c.Wire(nodes)
		if w.Span.Len() > 1 {
			long++
			if w.Span != geom.NewInterval(100, 250) {
				t.Fatalf("long wire span %v", w.Span)
			}
		}
	}
	if long != 1 {
		t.Fatalf("%d long wires, want 1", long)
	}
}

func TestConnectNodesForcedFallback(t *testing.T) {
	// Two pins with a row gap and no feedthroughs: must connect anyway,
	// flagged as forced.
	nodes := []Node{
		{X: 0, Row: 0, Side: circuit.Bottom},
		{X: 0, Row: 5, Side: circuit.Bottom},
	}
	conns, forced := ConnectNodes(0, nodes, nil)
	if forced != 1 || len(conns) != 1 || !conns[0].Forced {
		t.Fatalf("conns=%+v forced=%d", conns, forced)
	}
}

func TestConnectNodesSwitchableDetection(t *testing.T) {
	nodes := []Node{
		{X: 0, Row: 2, Side: circuit.Both},
		{X: 40, Row: 2, Side: circuit.Both},
		{X: 80, Row: 2, Side: circuit.Bottom},
	}
	conns, _ := ConnectNodes(0, nodes, nil)
	sw, fixed := 0, 0
	for _, c := range conns {
		if c.Switchable {
			sw++
			if c.Row != 2 {
				t.Fatalf("switchable row = %d", c.Row)
			}
		} else {
			fixed++
			if c.Channel != 2 {
				t.Fatalf("fixed connection in channel %d", c.Channel)
			}
		}
	}
	if sw != 1 || fixed != 1 {
		t.Fatalf("sw=%d fixed=%d", sw, fixed)
	}
}

func TestConnectNodesGreedyChannelChoice(t *testing.T) {
	// With a congested lower channel, the switchable connection must pick
	// the upper one.
	occ := NewOccupancy(5, 200, 16)
	occ.Add(2, geom.NewInterval(0, 199), 5) // channel 2 busy
	nodes := []Node{
		{X: 0, Row: 2, Side: circuit.Both},
		{X: 100, Row: 2, Side: circuit.Both},
	}
	conns, _ := ConnectNodes(0, nodes, occ)
	if len(conns) != 1 || !conns[0].Switchable {
		t.Fatalf("conns = %+v", conns)
	}
	if conns[0].Channel != 3 {
		t.Fatalf("picked channel %d, want the empty 3", conns[0].Channel)
	}
	// And the wire was recorded in the occupancy.
	if occ.At(3, 0) != 1 {
		t.Fatal("wire not streamed into occupancy")
	}
}

func TestConnectNodesMatchesPrimCost(t *testing.T) {
	// The sparse Kruskal must produce trees of the same total cost as the
	// O(n^2) Prim on the same adjacency-restricted metric.
	r := rng.New(17)
	sides := []circuit.Side{circuit.Bottom, circuit.Top, circuit.Both}
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(30)
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = Node{X: r.Intn(500), Row: r.Intn(6), Side: sides[r.Intn(3)]}
		}
		cost := func(i, j int) int64 {
			if _, _, ok := adjacent(nodes[i], nodes[j]); ok {
				return int64(geom.Abs(nodes[i].X - nodes[j].X))
			}
			return mst.Infinite
		}
		edges, primForced := mst.Prim(n, cost)
		conns, kruskalForced := ConnectNodes(0, nodes, nil)
		if (primForced > 0) != (kruskalForced > 0) {
			t.Fatalf("trial %d: forced disagreement (prim %d, kruskal %d)",
				trial, primForced, kruskalForced)
		}
		if primForced > 0 {
			continue // costs incomparable once forced edges differ
		}
		var primCost, kruskalCost int64
		for _, e := range edges {
			primCost += cost(e.U, e.V)
		}
		for _, c := range conns {
			kruskalCost += int64(geom.Abs(nodes[c.U].X - nodes[c.V].X))
		}
		if primCost != kruskalCost {
			t.Fatalf("trial %d: kruskal cost %d != prim cost %d", trial, kruskalCost, primCost)
		}
	}
}

func TestConnectNodesSpansEverything(t *testing.T) {
	r := rng.New(23)
	sides := []circuit.Side{circuit.Bottom, circuit.Top, circuit.Both}
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(50)
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = Node{X: r.Intn(500), Row: r.Intn(8), Side: sides[r.Intn(3)]}
		}
		conns, _ := ConnectNodes(0, nodes, nil)
		if len(conns) != n-1 {
			t.Fatalf("trial %d: %d conns for %d nodes", trial, len(conns), n)
		}
		uf := newUnionFind(n)
		for _, c := range conns {
			uf.union(c.U, c.V)
		}
		root := uf.find(0)
		for i := 1; i < n; i++ {
			if uf.find(i) != root {
				t.Fatalf("trial %d: tree does not span", trial)
			}
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	if !uf.union(0, 1) || uf.union(1, 0) {
		t.Fatal("union result wrong")
	}
	if uf.find(0) != uf.find(1) {
		t.Fatal("not merged")
	}
	if uf.find(2) == uf.find(0) {
		t.Fatal("spurious merge")
	}
	uf.union(2, 3)
	uf.union(0, 3)
	for i := 0; i < 4; i++ {
		if uf.find(i) != uf.find(0) {
			t.Fatal("chain merge failed")
		}
	}
	if uf.find(4) == uf.find(0) {
		t.Fatal("node 4 should be separate")
	}
}
