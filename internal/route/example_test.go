package route_test

import (
	"fmt"

	"parroute/internal/gen"
	"parroute/internal/route"
)

// ExampleRoute routes a small synthetic circuit serially and prints the
// quality measures the paper reports.
func ExampleRoute() {
	c := gen.Tiny(1)
	res := route.Route(c, route.Options{Seed: 1})
	fmt.Println("tracks:", res.TotalTracks)
	fmt.Println("forced edges:", res.ForcedEdges)
	fmt.Println("deterministic:", res.TotalTracks == route.Route(c, route.Options{Seed: 1}).TotalTracks)
	// Output:
	// tracks: 31
	// forced edges: 0
	// deterministic: true
}

// ExampleRouter_Verify shows the phase-by-phase API with post-route
// verification.
func ExampleRouter_Verify() {
	c := gen.Tiny(1)
	rt := route.NewRouter(c.Clone(), route.Options{Seed: 1})
	rt.BuildTrees()
	rt.CoarseRoute()
	rt.InsertFeedthroughs()
	rt.AssignFeedthroughs()
	rt.ConnectNets()
	rt.OptimizeSwitchable()
	fmt.Println("verified:", rt.Verify() == nil)
	// Output:
	// verified: true
}
