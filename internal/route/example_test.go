package route_test

import (
	"context"
	"fmt"

	"parroute/internal/gen"
	"parroute/internal/route"
)

// ExampleRoute routes a small synthetic circuit serially and prints the
// quality measures the paper reports.
func ExampleRoute() {
	c := gen.Tiny(1)
	res, err := route.Route(context.Background(), c, route.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	again, err := route.Route(context.Background(), c, route.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("tracks:", res.TotalTracks)
	fmt.Println("forced edges:", res.ForcedEdges)
	fmt.Println("deterministic:", res.TotalTracks == again.TotalTracks)
	// Output:
	// tracks: 31
	// forced edges: 0
	// deterministic: true
}

// ExampleRouter_Verify shows the phase-by-phase API with post-route
// verification.
func ExampleRouter_Verify() {
	c := gen.Tiny(1)
	ctx := context.Background()
	rt := route.NewRouter(c.Clone(), route.Options{Seed: 1})
	if err := rt.BuildTrees(ctx); err != nil {
		panic(err)
	}
	rt.CoarseRoute()
	rt.InsertFeedthroughs()
	if err := rt.AssignFeedthroughs(ctx); err != nil {
		panic(err)
	}
	if err := rt.ConnectNets(ctx); err != nil {
		panic(err)
	}
	rt.OptimizeSwitchable()
	fmt.Println("verified:", rt.Verify() == nil)
	// Output:
	// verified: true
}
