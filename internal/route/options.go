// Package route implements TWGR, the TimberWolfSC global router, as the
// five-step pipeline the paper describes (§2): Steiner trees, coarse global
// routing with L-flip improvement, feedthrough insertion, feedthrough
// assignment, net connection, and switchable-segment optimization.
//
// The phases are exposed individually so the parallel algorithms in
// internal/parallel can orchestrate them per worker; Route runs them all.
package route

// Options are the router's tuning knobs. The zero value is not usable;
// call Normalize (Route and NewRouter do it for you).
type Options struct {
	// Seed drives every randomized decision (segment visit order in steps
	// 2 and 5). Two runs with equal options and circuit are identical.
	Seed uint64
	// GridColWidth is the coarse-grid column width in x units. Default 16.
	GridColWidth int
	// GridWidth fixes the coarse grid's horizontal extent in x units; 0
	// means the routed circuit's own core width. The parallel algorithms
	// set it to the full design's width so a worker holding a trimmed
	// sub-circuit (whose foreign rows are empty) still builds the same
	// grid as an untrimmed one.
	GridWidth int
	// CoarsePasses is how many random full sweeps of L-flip improvement
	// step 2 performs. Default 3.
	CoarsePasses int
	// SwitchPasses is how many random full sweeps step 5 performs over the
	// switchable segments. Default 3.
	SwitchPasses int
	// FtBase is the cost of one feedthrough in channel-congestion units
	// (one unit = one wire crossing one grid column). Default 12.
	FtBase int64
	// TrackPitch is the channel height contributed by one track, in the
	// same units as cell height, used by the area model. Default 2.
	TrackPitch int
	// Workers bounds the intra-rank worker goroutines the per-net phases
	// (steiner build, feedthrough sorting, net-connection preparation) fan
	// out on. Routing output is byte-identical at every setting — the
	// phases reduce in deterministic net/row order — so Workers is purely
	// a wall-clock knob. Default 1 (run the phases inline).
	Workers int
}

// Normalize fills zero fields with defaults.
func (o *Options) Normalize() {
	if o.GridColWidth <= 0 {
		o.GridColWidth = 16
	}
	if o.CoarsePasses <= 0 {
		o.CoarsePasses = 3
	}
	if o.SwitchPasses <= 0 {
		o.SwitchPasses = 3
	}
	if o.FtBase <= 0 {
		o.FtBase = 12
	}
	if o.TrackPitch <= 0 {
		o.TrackPitch = 2
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
}
