package route

import (
	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/grid"
	"parroute/internal/steiner"
)

// PlacedSeg is a Steiner segment with its channel access resolved: CP and
// CQ are the channels through which the two endpoints enter the routing
// fabric. A segment with CP != CQ has a vertical run and therefore a bend
// choice — the single degree of freedom coarse routing optimizes.
type PlacedSeg struct {
	Seg steiner.Segment
	// CP and CQ are the access channels of the P and Q endpoints. They
	// satisfy CP <= CQ after normalization in place().
	CP, CQ int
	// XP and XQ are the endpoint x positions matching CP and CQ (the
	// endpoints may have been swapped relative to Seg.P/Seg.Q when
	// normalizing channel order for flat segments). PinAtP and PinAtQ are
	// the pin IDs backing XP and XQ, used to refresh positions after
	// feedthrough insertion shifts cells.
	XP, XQ         int
	PinAtP, PinAtQ int
	// BendAtP selects the L orientation: true places the vertical run at
	// XP (vertical first), false at XQ (horizontal first).
	BendAtP bool
	// SwitchRow >= 0 marks a flat segment between two equivalent-pin
	// endpoints: it may run in channel SwitchRow or SwitchRow+1.
	SwitchRow int
}

// HasBend reports whether the segment has a vertical run and therefore two
// L orientations.
func (ps *PlacedSeg) HasBend() bool { return ps.CP != ps.CQ }

// Runs is the grid-level geometry of a placed segment under one bend
// choice: up to two horizontal runs plus one vertical run.
type Runs struct {
	HLoCh int           // channel of the low horizontal run
	HLo   geom.Interval // empty when the run has no extent
	HHiCh int
	HHi   geom.Interval
	VCol  int // x of the vertical run; -1 when there is none
	VLo   int // first row crossed
	VHi   int // last row crossed (inclusive)
}

// HasVert reports whether the geometry includes a vertical run.
func (r *Runs) HasVert() bool { return r.VCol >= 0 }

// runSpan returns the track-occupying extent of a horizontal connection
// from a to b: a zero-length connection occupies no track and yields an
// empty interval.
func runSpan(a, b int) geom.Interval {
	if a == b {
		return geom.Interval{Lo: 1, Hi: 0} // canonical empty
	}
	return geom.NewInterval(a, b)
}

// RunsFor returns the geometry of the segment under the given bend choice.
func (ps *PlacedSeg) RunsFor(bendAtP bool) Runs {
	if ps.CP == ps.CQ {
		return Runs{HLoCh: ps.CP, HLo: runSpan(ps.XP, ps.XQ), HHiCh: ps.CQ, VCol: -1}
	}
	bendX := ps.XQ
	if bendAtP {
		bendX = ps.XP
	}
	return Runs{
		HLoCh: ps.CP, HLo: runSpan(ps.XP, bendX),
		HHiCh: ps.CQ, HHi: runSpan(bendX, ps.XQ),
		VCol: bendX, VLo: ps.CP, VHi: ps.CQ - 1,
	}
}

// CurrentRuns returns the geometry under the segment's current bend.
func (ps *PlacedSeg) CurrentRuns() Runs { return ps.RunsFor(ps.BendAtP) }

// Place resolves a Steiner segment's channel access for callers outside
// the package (the parallel algorithms place segments when computing
// boundary crossings and when running distributed coarse routing).
func Place(c *circuit.Circuit, seg steiner.Segment) PlacedSeg { return place(c, seg) }

// ApplyRuns applies a segment geometry to the grid with the given sign.
func ApplyRuns(g *grid.Grid, r Runs, delta int32) { addRuns(g, r, delta) }

// RunsCost evaluates the congestion cost of adding a segment geometry to
// the grid (the segment must not currently be counted in it).
func RunsCost(g *grid.Grid, r Runs, ftBase int64) int64 { return runsCost(g, r, ftBase) }

// addRuns applies a segment geometry to the grid with the given sign.
func addRuns(g *grid.Grid, r Runs, delta int32) {
	g.AddHoriz(r.HLoCh, r.HLo, delta)
	g.AddHoriz(r.HHiCh, r.HHi, delta)
	if r.HasVert() {
		g.AddVert(r.VLo, r.VHi, g.ColOf(r.VCol), delta)
	}
}

// runsCost evaluates the congestion cost of adding a segment geometry to
// the grid (the segment must not currently be in the grid).
func runsCost(g *grid.Grid, r Runs, ftBase int64) int64 {
	cost := g.HorizAddCost(r.HLoCh, r.HLo) + g.HorizAddCost(r.HHiCh, r.HHi)
	if r.HasVert() {
		cost += g.VertAddCost(r.VLo, r.VHi, g.ColOf(r.VCol), ftBase)
	}
	return cost
}

// place resolves a Steiner segment's channel access. For cross-row
// segments each endpoint enters through the channel facing the other
// endpoint when it has a choice (an equivalent pin, side Both, always
// saves one row crossing that way). Flat segments resolve to a shared
// channel when one exists; a Bottom/Top flat pair needs a one-row vertical
// run. Flat segments between two side-Both endpoints are switchable.
func place(c *circuit.Circuit, seg steiner.Segment) PlacedSeg {
	sp := c.Pins[seg.PinP].Side
	sq := c.Pins[seg.PinQ].Side
	ps := PlacedSeg{Seg: seg, BendAtP: seg.BendX == seg.P.X, SwitchRow: -1}

	if seg.Flat() {
		r := seg.P.Y
		var cp, cq int
		switch {
		case sp == circuit.Both && sq == circuit.Both:
			cp, cq = r, r
			ps.SwitchRow = r
		case sp == circuit.Both:
			cp = sideChannel(sq, r)
			cq = cp
		case sq == circuit.Both:
			cp = sideChannel(sp, r)
			cq = cp
		default:
			cp, cq = sideChannel(sp, r), sideChannel(sq, r)
		}
		ps.CP, ps.CQ, ps.XP, ps.XQ = cp, cq, seg.P.X, seg.Q.X
		ps.PinAtP, ps.PinAtQ = seg.PinP, seg.PinQ
		if ps.CP > ps.CQ {
			ps.swapEnds()
		}
		return ps
	}

	// Cross-row: P is the lower endpoint (steiner normalizes P.Y <= Q.Y).
	cp := seg.P.Y // Bottom
	if sp != circuit.Bottom {
		cp = seg.P.Y + 1 // Top or Both: enter through the upper channel
	}
	cq := seg.Q.Y + 1 // Top
	if sq != circuit.Top {
		cq = seg.Q.Y // Bottom or Both: enter through the lower channel
	}
	ps.CP, ps.CQ, ps.XP, ps.XQ = cp, cq, seg.P.X, seg.Q.X
	ps.PinAtP, ps.PinAtQ = seg.PinP, seg.PinQ
	if ps.CP > ps.CQ {
		// Defensive: cannot occur for cross-row segments (cp <= P.Y+1 <=
		// Q.Y <= cq), but keep the normalization self-contained.
		ps.swapEnds()
	}
	return ps
}

// swapEnds exchanges the two endpoints so CP <= CQ holds.
func (ps *PlacedSeg) swapEnds() {
	ps.CP, ps.CQ = ps.CQ, ps.CP
	ps.XP, ps.XQ = ps.XQ, ps.XP
	ps.PinAtP, ps.PinAtQ = ps.PinAtQ, ps.PinAtP
	ps.BendAtP = !ps.BendAtP
}

func sideChannel(s circuit.Side, row int) int {
	if s == circuit.Top {
		return row + 1
	}
	return row
}
