package route

import (
	"testing"

	"parroute/internal/circuit"
	"parroute/internal/gen"
	"parroute/internal/geom"
	"parroute/internal/grid"
	"parroute/internal/steiner"
)

// pinCircuit builds a circuit with one wide cell per row and returns a
// helper that creates a pin at (x, row, side) on a fresh net.
func pinCircuit(t *testing.T, rows int) (*circuit.Circuit, func(x, row int, side circuit.Side) int) {
	t.Helper()
	c := &circuit.Circuit{Name: "p", CellHeight: 10, FeedWidth: 2}
	for r := 0; r < rows; r++ {
		c.AddRow()
		c.AddCell(r, 2000)
	}
	return c, func(x, row int, side circuit.Side) int {
		return c.AddPin(c.Rows[row].Cells[0], circuit.NoNet, x, side)
	}
}

// seg builds a placed segment between two existing pins.
func placedBetween(c *circuit.Circuit, netID, pinA, pinB int) PlacedSeg {
	s := steiner.NewSegment(netID, pinA, c.Pins[pinA].Point(), pinB, c.Pins[pinB].Point())
	return place(c, s)
}

func TestPlaceCrossRowAccessChannels(t *testing.T) {
	c, pin := pinCircuit(t, 6)
	cases := []struct {
		sideP, sideQ   circuit.Side
		rowP, rowQ     int
		wantCP, wantCQ int
	}{
		{circuit.Bottom, circuit.Top, 1, 4, 1, 5},
		{circuit.Top, circuit.Bottom, 1, 4, 2, 4},
		{circuit.Both, circuit.Both, 1, 4, 2, 4}, // both enter toward each other
		{circuit.Bottom, circuit.Bottom, 1, 4, 1, 4},
		{circuit.Top, circuit.Top, 1, 4, 2, 5},
		// Adjacent rows meeting in the shared channel: no vertical run.
		{circuit.Top, circuit.Bottom, 2, 3, 3, 3},
		{circuit.Both, circuit.Both, 2, 3, 3, 3},
	}
	for i, tc := range cases {
		p := pin(100, tc.rowP, tc.sideP)
		q := pin(300, tc.rowQ, tc.sideQ)
		ps := placedBetween(c, 0, p, q)
		if ps.CP != tc.wantCP || ps.CQ != tc.wantCQ {
			t.Errorf("case %d: channels %d,%d want %d,%d", i, ps.CP, ps.CQ, tc.wantCP, tc.wantCQ)
		}
		if ps.SwitchRow != -1 {
			t.Errorf("case %d: cross-row segment marked switchable", i)
		}
		if tc.wantCP != tc.wantCQ && !ps.HasBend() {
			t.Errorf("case %d: expected a bend choice", i)
		}
	}
}

func TestPlaceFlatSegments(t *testing.T) {
	c, pin := pinCircuit(t, 3)
	// Both-Both: switchable.
	p := pin(10, 1, circuit.Both)
	q := pin(50, 1, circuit.Both)
	ps := placedBetween(c, 0, p, q)
	if ps.SwitchRow != 1 {
		t.Fatalf("Both-Both flat segment not switchable: %+v", ps)
	}
	if ps.CP != 1 || ps.CQ != 1 {
		t.Fatalf("switchable channels %d,%d", ps.CP, ps.CQ)
	}
	// Both-Bottom: matches the fixed pin's channel.
	q2 := pin(80, 1, circuit.Bottom)
	ps = placedBetween(c, 0, p, q2)
	if ps.CP != 1 || ps.CQ != 1 || ps.SwitchRow != -1 {
		t.Fatalf("Both-Bottom: %+v", ps)
	}
	// Both-Top.
	q3 := pin(80, 1, circuit.Top)
	ps = placedBetween(c, 0, p, q3)
	if ps.CP != 2 || ps.CQ != 2 {
		t.Fatalf("Both-Top channels %d,%d", ps.CP, ps.CQ)
	}
	// Bottom-Top: disjoint channels, one-row vertical run.
	a := pin(10, 1, circuit.Bottom)
	b := pin(90, 1, circuit.Top)
	ps = placedBetween(c, 0, a, b)
	if ps.CP != 1 || ps.CQ != 2 || !ps.HasBend() {
		t.Fatalf("Bottom-Top flat: %+v", ps)
	}
	runs := ps.CurrentRuns()
	if !runs.HasVert() || runs.VLo != 1 || runs.VHi != 1 {
		t.Fatalf("Bottom-Top runs: %+v", runs)
	}
}

func TestRunsGeometry(t *testing.T) {
	c, pin := pinCircuit(t, 6)
	p := pin(100, 1, circuit.Bottom) // channel 1
	q := pin(300, 4, circuit.Top)    // channel 5
	ps := placedBetween(c, 0, p, q)

	vertFirst := ps.RunsFor(true) // vertical at XP=100
	if vertFirst.VCol != 100 || vertFirst.VLo != 1 || vertFirst.VHi != 4 {
		t.Fatalf("vertical-first runs: %+v", vertFirst)
	}
	if !vertFirst.HLo.Empty() {
		t.Fatalf("vertical-first should have no low horizontal, got %v", vertFirst.HLo)
	}
	if vertFirst.HHi != geom.NewInterval(100, 300) || vertFirst.HHiCh != 5 {
		t.Fatalf("vertical-first high horizontal: %+v", vertFirst)
	}

	horizFirst := ps.RunsFor(false) // vertical at XQ=300
	if horizFirst.VCol != 300 {
		t.Fatalf("horizontal-first vertical at %d", horizFirst.VCol)
	}
	if horizFirst.HLo != geom.NewInterval(100, 300) || horizFirst.HLoCh != 1 {
		t.Fatalf("horizontal-first low horizontal: %+v", horizFirst)
	}
	if !horizFirst.HHi.Empty() {
		t.Fatalf("horizontal-first should have no high horizontal")
	}
}

func TestRunsGridRoundTrip(t *testing.T) {
	// Adding then removing both orientations leaves the grid empty.
	c, pin := pinCircuit(t, 6)
	p := pin(100, 1, circuit.Bottom)
	q := pin(300, 4, circuit.Top)
	ps := placedBetween(c, 0, p, q)
	g := grid.New(6, 2000, 16)
	for _, bend := range []bool{true, false} {
		runs := ps.RunsFor(bend)
		addRuns(g, runs, 1)
		addRuns(g, runs, -1)
	}
	for _, v := range g.DensCounts() {
		if v != 0 {
			t.Fatal("grid residue after add/remove")
		}
	}
	for _, v := range g.FtCounts() {
		if v != 0 {
			t.Fatal("ft residue after add/remove")
		}
	}
}

func TestRunsCostConsistency(t *testing.T) {
	// Cost must equal the sum of column costs computed by hand for a
	// simple case, and both orientations must cross the same rows.
	c, pin := pinCircuit(t, 6)
	p := pin(0, 1, circuit.Bottom)
	q := pin(63, 4, circuit.Top) // channels 1..5, 4 columns at width 16
	ps := placedBetween(c, 0, p, q)
	g := grid.New(6, 2000, 16)
	a := ps.RunsFor(true)
	b := ps.RunsFor(false)
	if a.VHi-a.VLo != b.VHi-b.VLo {
		t.Fatal("orientations cross different numbers of rows")
	}
	costA := runsCost(g, a, 10)
	costB := runsCost(g, b, 10)
	// Empty grid: cost = horizontal columns (4 each at density 0 -> 1 per
	// column) + 4 rows x ftBase 10.
	if costA != 4+40 || costB != 4+40 {
		t.Fatalf("costs on empty grid: %d, %d (want 44)", costA, costB)
	}
}

func TestPlaceViaExportedHelpers(t *testing.T) {
	c := gen.Tiny(4)
	for n := range c.Nets {
		for _, seg := range steiner.BuildNet(c, n) {
			ps := Place(c, seg)
			if ps.CP > ps.CQ {
				t.Fatalf("net %d: channels not normalized: %+v", n, ps)
			}
			if ps.CP < 0 || ps.CQ > c.NumChannels()-1 {
				t.Fatalf("net %d: channels out of range: %+v", n, ps)
			}
			if c.Pins[ps.PinAtP].X != ps.XP || c.Pins[ps.PinAtQ].X != ps.XQ {
				t.Fatalf("net %d: pin back-references broken: %+v", n, ps)
			}
			// RunsCost and ApplyRuns exported forms agree with internals.
			g := grid.New(len(c.Rows), c.CoreWidth(), 16)
			runs := ps.CurrentRuns()
			if RunsCost(g, runs, 5) != runsCost(g, runs, 5) {
				t.Fatal("exported RunsCost disagrees")
			}
			ApplyRuns(g, runs, 1)
			ApplyRuns(g, runs, -1)
			for _, v := range g.DensCounts() {
				if v != 0 {
					t.Fatal("exported ApplyRuns not inverse")
				}
			}
		}
	}
}
