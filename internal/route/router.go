package route

import (
	"sort"
	"time"

	"parroute/internal/circuit"
	"parroute/internal/grid"
	"parroute/internal/metrics"
	"parroute/internal/rng"
	"parroute/internal/steiner"
)

// Router carries the state of one TWGR run. The phases mutate the attached
// circuit (feedthrough cells are physically inserted), so callers who need
// the original untouched should pass a clone — Route does this for you.
type Router struct {
	C    *circuit.Circuit
	Opt  Options
	Rand *rng.RNG

	Grid *grid.Grid
	Segs []PlacedSeg
	// FtPinsByRow holds the not-yet-bound feedthrough pin IDs per row
	// between insertion and assignment.
	FtPinsByRow [][]int
	// NetNodes and Conns are the step-4 connection structure; Wires is
	// its flat channel-wire form used for density and step 5.
	NetNodes [][]Node
	Conns    []Connection
	Wires    []metrics.Wire

	CoarseFlips  int
	SwitchFlips  int
	ForcedEdges  int
	InsertedFts  int
	ExtraFts     int // feedthroughs inserted late during assignment (should stay 0)
	UnboundFts   int // inserted feedthroughs never bound to a net (should stay 0)
	phases       []metrics.Phase
	switchableWs int
}

// NewRouter prepares a router over the given circuit. The circuit is
// mutated by the routing phases.
func NewRouter(c *circuit.Circuit, opt Options) *Router {
	opt.Normalize()
	return &Router{C: c, Opt: opt, Rand: rng.New(opt.Seed)}
}

// Route runs the full five-step pipeline on a clone of c and returns the
// result. The input circuit is left untouched.
func Route(c *circuit.Circuit, opt Options) *metrics.Result {
	rt := NewRouter(c.Clone(), opt)
	return rt.Run()
}

// Run executes all phases in order and returns the finalized result.
func (rt *Router) Run() *metrics.Result {
	start := time.Now() //lint:allow nondeterminism elapsed-time measurement reported in Result, not a routing decision
	rt.BuildTrees()
	rt.CoarseRoute()
	rt.InsertFeedthroughs()
	rt.AssignFeedthroughs()
	rt.ConnectNets()
	rt.OptimizeSwitchable()
	return rt.Result("twgr-serial", 1, time.Since(start)) //lint:allow nondeterminism elapsed-time measurement reported in Result, not a routing decision
}

func (rt *Router) timePhase(name string, f func()) {
	t := time.Now() //lint:allow nondeterminism phase-time measurement reported in Result, not a routing decision
	f()
	rt.phases = append(rt.phases, metrics.Phase{Name: name, Elapsed: time.Since(t)}) //lint:allow nondeterminism phase-time measurement reported in Result, not a routing decision
}

// BuildTrees is step 1: the approximate Steiner tree of every net,
// flattened into placed segments with resolved channel access.
func (rt *Router) BuildTrees() {
	rt.timePhase("steiner", func() {
		for n := range rt.C.Nets {
			for _, seg := range steiner.BuildNet(rt.C, n) {
				rt.Segs = append(rt.Segs, place(rt.C, seg))
			}
		}
	})
}

// UseSegments installs externally built segments (the parallel algorithms
// build trees once and ship the pieces) instead of calling BuildTrees.
func (rt *Router) UseSegments(segs []steiner.Segment) {
	rt.timePhase("steiner-install", func() {
		rt.Segs = make([]PlacedSeg, 0, len(segs))
		for _, seg := range segs {
			rt.Segs = append(rt.Segs, place(rt.C, seg))
		}
	})
}

// CoarseRoute is step 2: load every segment into the coarse grid at its
// initial bend, then sweep the segments in random order flipping L
// orientations whenever that lowers congestion + feedthrough cost.
func (rt *Router) CoarseRoute() {
	rt.timePhase("coarse", func() {
		width := rt.Opt.GridWidth
		if width <= 0 {
			width = rt.C.CoreWidth()
		}
		rt.Grid = grid.New(len(rt.C.Rows), width, rt.Opt.GridColWidth)
		for i := range rt.Segs {
			addRuns(rt.Grid, rt.Segs[i].CurrentRuns(), 1)
		}
		rt.CoarseFlips += improveBends(rt.Grid, rt.Segs, rt.Rand, rt.Opt.CoarsePasses, rt.Opt.FtBase)
	})
}

// improveBends runs random improvement sweeps over the segments with a
// bend choice; grid must already contain all segments. Returns flip count.
func improveBends(g *grid.Grid, segs []PlacedSeg, r *rng.RNG, passes int, ftBase int64) int {
	candidates := make([]int, 0, len(segs))
	for i := range segs {
		if segs[i].HasBend() && segs[i].XP != segs[i].XQ {
			candidates = append(candidates, i)
		}
	}
	flips := 0
	for pass := 0; pass < passes; pass++ {
		perm := r.Perm(len(candidates))
		improved := false
		for _, pi := range perm {
			ps := &segs[candidates[pi]]
			cur := ps.CurrentRuns()
			addRuns(g, cur, -1)
			alt := ps.RunsFor(!ps.BendAtP)
			costCur := runsCost(g, cur, ftBase)
			costAlt := runsCost(g, alt, ftBase)
			if costAlt < costCur {
				ps.BendAtP = !ps.BendAtP
				addRuns(g, alt, 1)
				flips++
				improved = true
			} else {
				addRuns(g, cur, 1)
			}
		}
		if !improved {
			break
		}
	}
	return flips
}

// InsertFeedthroughs is the tail of step 2: realize the grid's feedthrough
// demand as physical feedthrough cells, then refresh segment geometry
// (insertion shifts cells and the pins on them).
func (rt *Router) InsertFeedthroughs() {
	rt.timePhase("ft-insert", func() {
		rt.FtPinsByRow = make([][]int, len(rt.C.Rows))
		for row := 0; row < rt.Grid.Rows; row++ {
			for col := 0; col < rt.Grid.Cols; col++ {
				demand := rt.Grid.FtDemand(row, col)
				for i := 0; i < demand; i++ {
					pin := rt.C.InsertFeedthrough(row, rt.Grid.ColCenter(col), circuit.NoNet)
					rt.FtPinsByRow[row] = append(rt.FtPinsByRow[row], pin)
					rt.InsertedFts++
				}
			}
		}
		rt.refreshSegs()
	})
}

// refreshSegs re-reads endpoint positions from the circuit after cell
// shifts. Fake pins have no cell and never move.
func (rt *Router) refreshSegs() {
	for i := range rt.Segs {
		ps := &rt.Segs[i]
		ps.XP = rt.C.Pins[ps.PinAtP].X
		ps.XQ = rt.C.Pins[ps.PinAtQ].X
	}
}

// crossing is one (segment, row) feedthrough need during assignment.
type crossing struct {
	net int
	x   int
	seg int
}

// AssignFeedthroughs is step 3: per row, bind each segment crossing the
// row to a concrete feedthrough pin, matching both sides in x order (the
// order-preserving matching minimizes total displacement). Binding a pin
// attaches it to the segment's net, which makes it a step-4 node.
func (rt *Router) AssignFeedthroughs() {
	rt.timePhase("ft-assign", func() {
		byRow := make([][]crossing, len(rt.C.Rows))
		for i := range rt.Segs {
			runs := rt.Segs[i].CurrentRuns()
			if !runs.HasVert() {
				continue
			}
			for row := runs.VLo; row <= runs.VHi; row++ {
				byRow[row] = append(byRow[row], crossing{net: rt.Segs[i].Seg.Net, x: runs.VCol, seg: i})
			}
		}
		for row := range byRow {
			crossings := byRow[row]
			sort.Slice(crossings, func(i, j int) bool {
				if crossings[i].x != crossings[j].x {
					return crossings[i].x < crossings[j].x
				}
				return crossings[i].net < crossings[j].net
			})
			fts := rt.FtPinsByRow[row]
			sort.Slice(fts, func(i, j int) bool {
				return rt.C.Pins[fts[i]].X < rt.C.Pins[fts[j]].X
			})
			for i, cr := range crossings {
				var pinID int
				if i < len(fts) {
					pinID = fts[i]
				} else {
					// Demand bookkeeping failed to cover this crossing;
					// recover by inserting one more feedthrough here.
					pinID = rt.C.InsertFeedthrough(row, cr.x, circuit.NoNet)
					rt.ExtraFts++
					rt.InsertedFts++
				}
				rt.bindFt(pinID, cr.net)
			}
			if len(fts) > len(crossings) {
				rt.UnboundFts += len(fts) - len(crossings)
			}
			rt.FtPinsByRow[row] = nil
		}
		if rt.ExtraFts > 0 {
			rt.refreshSegs()
		}
	})
}

// bindFt attaches an unbound feedthrough pin to a net.
func (rt *Router) bindFt(pinID, netID int) {
	pin := &rt.C.Pins[pinID]
	pin.Net = netID
	rt.C.Nets[netID].Pins = append(rt.C.Nets[netID].Pins, pinID)
}

// ConnectNets is step 4: per net, the adjacency-restricted MST over its
// pins and bound feedthroughs produces the final channel wires. Nets are
// streamed through a live occupancy so each switchable connection starts
// in the channel that is cheaper at the moment it is placed; step 5 then
// iterates on those choices.
func (rt *Router) ConnectNets() {
	rt.timePhase("connect", func() {
		occ := NewOccupancy(rt.C.NumChannels(), rt.C.CoreWidth(), rt.Opt.GridColWidth)
		rt.NetNodes = make([][]Node, len(rt.C.Nets))
		for n := range rt.C.Nets {
			pins := rt.C.Nets[n].Pins
			if len(pins) < 2 {
				continue
			}
			nodes := make([]Node, len(pins))
			for i, pid := range pins {
				p := &rt.C.Pins[pid]
				nodes[i] = Node{X: p.X, Row: p.Row, Side: p.Side, Pin: pid}
			}
			rt.NetNodes[n] = nodes
			conns, forced := ConnectNodes(n, nodes, occ)
			rt.ForcedEdges += forced
			for i := range conns {
				rt.Conns = append(rt.Conns, conns[i])
				rt.Wires = append(rt.Wires, conns[i].Wire(nodes))
			}
		}
	})
}

// OptimizeSwitchable is step 5 over the wires produced by ConnectNets.
func (rt *Router) OptimizeSwitchable() {
	rt.timePhase("switch-opt", func() {
		occ := NewOccupancy(rt.C.NumChannels(), rt.C.CoreWidth(), rt.Opt.GridColWidth)
		occ.AddWires(rt.Wires)
		for i := range rt.Wires {
			if rt.Wires[i].Switchable && !rt.Wires[i].Span.Empty() {
				rt.switchableWs++
			}
		}
		rt.SwitchFlips += OptimizeSwitchable(rt.Wires, occ, rt.Rand, rt.Opt.SwitchPasses)
	})
}

// Phases returns the wall time of each phase run so far.
func (rt *Router) Phases() []metrics.Phase { return rt.phases }

// Result assembles and finalizes the metrics for a completed run.
func (rt *Router) Result(algo string, procs int, elapsed time.Duration) *metrics.Result {
	res := &metrics.Result{
		Circuit:         rt.C.Name,
		Algo:            algo,
		Procs:           procs,
		Wires:           rt.Wires,
		Feedthroughs:    rt.InsertedFts,
		ForcedEdges:     rt.ForcedEdges,
		CoreWidth:       rt.C.CoreWidth(),
		SwitchableWires: rt.switchableWs,
		SwitchFlips:     rt.SwitchFlips,
		CoarseFlips:     rt.CoarseFlips,
		Elapsed:         elapsed,
		Phases:          rt.phases,
	}
	res.Finalize(rt.C.NumChannels(), len(rt.C.Rows), rt.C.CellHeight, rt.Opt.TrackPitch)
	return res
}
