package route

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"time"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/grid"
	"parroute/internal/metrics"
	"parroute/internal/pipeline"
	"parroute/internal/rng"
	"parroute/internal/steiner"
	"parroute/internal/workpool"
)

// Router carries the state of one TWGR run. The phases mutate the attached
// circuit (feedthrough cells are physically inserted), so callers who need
// the original untouched should pass a clone — Route does this for you.
type Router struct {
	C    *circuit.Circuit
	Opt  Options
	Rand *rng.RNG

	Grid *grid.Grid
	Segs []PlacedSeg
	// FtPinsByRow holds the not-yet-bound feedthrough pin IDs per row
	// between insertion and assignment.
	FtPinsByRow [][]int
	// NetNodes and Conns are the step-4 connection structure; Wires is
	// its flat channel-wire form used for density and step 5.
	NetNodes [][]Node
	Conns    []Connection
	Wires    []metrics.Wire

	CoarseFlips  int
	SwitchFlips  int
	ForcedEdges  int
	InsertedFts  int
	ExtraFts     int // feedthroughs inserted late during assignment (should stay 0)
	UnboundFts   int // inserted feedthroughs never bound to a net (should stay 0)
	phases       []metrics.Phase
	switchableWs int
}

// NewRouter prepares a router over the given circuit. The circuit is
// mutated by the routing phases.
func NewRouter(c *circuit.Circuit, opt Options) *Router {
	opt.Normalize()
	return &Router{C: c, Opt: opt, Rand: rng.New(opt.Seed)}
}

// Route runs the full five-step pipeline on a clone of c and returns the
// result. The input circuit is left untouched. Cancelling ctx stops the
// run at the next stage boundary with an error wrapping ctx.Err().
func Route(ctx context.Context, c *circuit.Circuit, opt Options) (*metrics.Result, error) {
	rt := NewRouter(c.Clone(), opt)
	return rt.Run(ctx)
}

// Stages returns the serial TWGR pipeline: the five paper steps (step 2
// contributes both the coarse sweep and feedthrough insertion) as named
// pipeline stages. The names are canonical — the parallel drivers reuse
// them for the identical steps so per-stage records are comparable across
// algorithms.
func (rt *Router) Stages() []pipeline.Stage {
	return []pipeline.Stage{
		pipeline.Func("steiner", func(ctx context.Context, s *pipeline.Session) error {
			if err := rt.BuildTrees(ctx); err != nil {
				return err
			}
			s.Count("segments", int64(len(rt.Segs)))
			return nil
		}),
		pipeline.Func("coarse", func(_ context.Context, s *pipeline.Session) error {
			rt.CoarseRoute()
			s.Count("coarse-flips", int64(rt.CoarseFlips))
			return nil
		}),
		pipeline.Func("ft-insert", func(_ context.Context, s *pipeline.Session) error {
			rt.InsertFeedthroughs()
			s.Count("inserted-fts", int64(rt.InsertedFts))
			return nil
		}),
		pipeline.Func("ft-assign", func(ctx context.Context, s *pipeline.Session) error {
			if err := rt.AssignFeedthroughs(ctx); err != nil {
				return err
			}
			s.Count("extra-fts", int64(rt.ExtraFts))
			return nil
		}),
		pipeline.Func("connect", func(ctx context.Context, s *pipeline.Session) error {
			if err := rt.ConnectNets(ctx); err != nil {
				return err
			}
			s.Count("wires", int64(len(rt.Wires)))
			s.Count("forced-edges", int64(rt.ForcedEdges))
			return nil
		}),
		pipeline.Func("switch-opt", func(_ context.Context, s *pipeline.Session) error {
			rt.OptimizeSwitchable()
			s.Count("switch-flips", int64(rt.SwitchFlips))
			return nil
		}),
	}
}

// Run executes all stages in order under ctx and returns the finalized
// result. Extra observers (tracing, benchmarking) join the built-in phase
// recorder; they cannot affect routing output.
func (rt *Router) Run(ctx context.Context, obs ...pipeline.Observer) (*metrics.Result, error) {
	rec := pipeline.NewPhaseRecorder()
	s := pipeline.NewSession(append([]pipeline.Observer{rec}, obs...)...)
	if err := pipeline.Run(ctx, s, rt.Stages()...); err != nil {
		return nil, err
	}
	rt.phases = rec.Phases()
	return rt.Result("twgr-serial", 1, rec.Total()), nil
}

// BuildTrees is step 1: the approximate Steiner tree of every net,
// flattened into placed segments with resolved channel access. Nets fan
// out over Opt.Workers goroutines: a k-pin net contributes exactly k-1
// segments (true for both the Prim and the large-net row-chain
// constructions), so a prefix sum over degrees gives every net an exact
// output slot in one segment arena — no reduction step, and the result is
// byte-identical at every worker count.
func (rt *Router) BuildTrees(ctx context.Context) error {
	nets := rt.C.Nets
	off := make([]int, len(nets)+1)
	for n := range nets {
		off[n+1] = off[n]
		if k := len(nets[n].Pins); k >= 2 {
			off[n+1] += k - 1
		}
	}
	total := off[len(nets)]
	segs := slices.Grow(rt.Segs[:0], total)[:total]
	workers := rt.Opt.Workers
	builders := make([]treeBuilder, geom.Max(workers, 1))
	err := workpool.DoChunks(ctx, workers, len(nets), workpool.Grain(len(nets), workers),
		func(w, lo, hi int) error {
			b := &builders[w]
			for n := lo; n < hi; n++ {
				if off[n+1] == off[n] {
					continue
				}
				b.segBuf = b.b.AppendNet(b.segBuf[:0], rt.C, n)
				out := segs[off[n]:off[n+1]]
				if len(b.segBuf) != len(out) {
					// The k-1 invariant is what makes the slots exact; a
					// violation would silently corrupt neighboring nets.
					return fmt.Errorf("route: net %d built %d segments, want %d",
						n, len(b.segBuf), len(out))
				}
				for i := range b.segBuf {
					out[i] = place(rt.C, b.segBuf[i])
				}
			}
			return nil
		})
	if err != nil {
		return fmt.Errorf("route: steiner: %w", err)
	}
	rt.Segs = segs
	return nil
}

// treeBuilder is one worker's reusable step-1 scratch.
type treeBuilder struct {
	b      steiner.Builder
	segBuf []steiner.Segment
}

// UseSegments installs externally built segments (the parallel algorithms
// build trees once and ship the pieces) instead of calling BuildTrees.
func (rt *Router) UseSegments(segs []steiner.Segment) {
	rt.Segs = make([]PlacedSeg, 0, len(segs))
	for _, seg := range segs {
		rt.Segs = append(rt.Segs, place(rt.C, seg))
	}
}

// CoarseRoute is step 2: load every segment into the coarse grid at its
// initial bend, then sweep the segments in random order flipping L
// orientations whenever that lowers congestion + feedthrough cost.
func (rt *Router) CoarseRoute() {
	width := rt.Opt.GridWidth
	if width <= 0 {
		width = rt.C.CoreWidth()
	}
	rt.Grid = grid.New(len(rt.C.Rows), width, rt.Opt.GridColWidth)
	for i := range rt.Segs {
		addRuns(rt.Grid, rt.Segs[i].CurrentRuns(), 1)
	}
	rt.CoarseFlips += improveBends(rt.Grid, rt.Segs, rt.Rand, rt.Opt.CoarsePasses, rt.Opt.FtBase)
}

// flipCand caches the static geometry of one flippable segment so the
// sweep's inner loop touches no segment geometry beyond the bend bit: the
// full horizontal span and the grid columns of the two endpoints.
type flipCand struct {
	seg        int
	span       geom.Interval
	colP, colQ int
}

// improveBends runs random improvement sweeps over the segments with a
// bend choice; grid must already contain all segments. Returns flip count.
//
// Flip deltas are evaluated incrementally: with the bend at one endpoint
// the horizontal span always lies whole in the far endpoint's channel
// (RunsFor leaves the near run empty), so a flip moves the full span
// between CP and CQ and the vertical run between the two endpoint columns.
// Grid.SpanCost/VertMoveCost price that in one walk without mutating the
// grid — the same value the remove/price-both/re-add evaluation produced,
// so flip decisions (and the rng stream) are unchanged. The ftBase term
// cancels: both orientations cross the same rows.
func improveBends(g *grid.Grid, segs []PlacedSeg, r *rng.RNG, passes int, ftBase int64) int {
	_ = ftBase // cancels out of the incremental delta; kept for signature stability
	cands := make([]flipCand, 0, len(segs))
	for i := range segs {
		ps := &segs[i]
		if ps.HasBend() && ps.XP != ps.XQ {
			cands = append(cands, flipCand{
				seg:  i,
				span: geom.NewInterval(ps.XP, ps.XQ),
				colP: g.ColOf(ps.XP),
				colQ: g.ColOf(ps.XQ),
			})
		}
	}
	flips := 0
	perm := make([]int, len(cands))
	for pass := 0; pass < passes; pass++ {
		r.PermInto(perm)
		improved := false
		for _, pi := range perm {
			fc := &cands[pi]
			ps := &segs[fc.seg]
			chFrom, chTo := ps.CP, ps.CQ
			fromCol, toCol := fc.colQ, fc.colP
			if ps.BendAtP {
				chFrom, chTo = ps.CQ, ps.CP
				fromCol, toCol = fc.colP, fc.colQ
			}
			delta := g.SpanCost(chFrom, chTo, fc.span) +
				g.VertMoveCost(ps.CP, ps.CQ-1, fromCol, toCol)
			if delta < 0 {
				g.MoveWire(chFrom, chTo, fc.span)
				g.MoveVert(ps.CP, ps.CQ-1, fromCol, toCol)
				ps.BendAtP = !ps.BendAtP
				flips++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return flips
}

// InsertFeedthroughs is the tail of step 2: realize the grid's feedthrough
// demand as physical feedthrough cells, then refresh segment geometry
// (insertion shifts cells and the pins on them).
func (rt *Router) InsertFeedthroughs() {
	rt.FtPinsByRow = make([][]int, len(rt.C.Rows))
	// Pre-size the circuit tables for the total demand, then insert in
	// deferred mode: cell-attached pin positions are re-synced once at
	// the end instead of per insertion.
	rowCounts := make([]int, rt.Grid.Rows)
	total := 0
	for row := 0; row < rt.Grid.Rows; row++ {
		for col := 0; col < rt.Grid.Cols; col++ {
			rowCounts[row] += rt.Grid.FtDemand(row, col)
		}
		total += rowCounts[row]
	}
	rt.C.GrowForFeedthroughs(total, rowCounts)
	for row := 0; row < rt.Grid.Rows; row++ {
		rt.FtPinsByRow[row] = make([]int, 0, rowCounts[row])
		for col := 0; col < rt.Grid.Cols; col++ {
			demand := rt.Grid.FtDemand(row, col)
			for i := 0; i < demand; i++ {
				pin := rt.C.InsertFeedthroughDeferred(row, rt.Grid.ColCenter(col), circuit.NoNet)
				rt.FtPinsByRow[row] = append(rt.FtPinsByRow[row], pin)
				rt.InsertedFts++
			}
		}
	}
	rt.C.SyncPinX()
	rt.refreshSegs()
}

// refreshSegs re-reads endpoint positions from the circuit after cell
// shifts. Fake pins have no cell and never move.
func (rt *Router) refreshSegs() {
	for i := range rt.Segs {
		ps := &rt.Segs[i]
		ps.XP = rt.C.Pins[ps.PinAtP].X
		ps.XQ = rt.C.Pins[ps.PinAtQ].X
	}
}

// crossing is one (segment, row) feedthrough need during assignment.
type crossing struct {
	net int
	x   int
	seg int
}

// AssignFeedthroughs is step 3: per row, bind each segment crossing the
// row to a concrete feedthrough pin, matching both sides in x order (the
// order-preserving matching minimizes total displacement). Binding a pin
// attaches it to the segment's net, which makes it a step-4 node.
//
// The crossings live in one CSR arena (count pass, prefix sum, fill pass
// — no per-row append chains), and the per-row sorts fan out over
// Opt.Workers: each row's slices are disjoint, every comparator carries a
// full tiebreak, and the binding itself replays serially in row order, so
// the pin permutation is byte-identical at every worker count.
func (rt *Router) AssignFeedthroughs(ctx context.Context) error {
	rowCnt := make([]int, len(rt.C.Rows)+1)
	for i := range rt.Segs {
		runs := rt.Segs[i].CurrentRuns()
		if !runs.HasVert() {
			continue
		}
		for row := runs.VLo; row <= runs.VHi; row++ {
			rowCnt[row+1]++
		}
	}
	for r := 0; r < len(rt.C.Rows); r++ {
		rowCnt[r+1] += rowCnt[r]
	}
	rowOff := rowCnt // rowOff[r]..rowOff[r+1] is row r's arena range
	arena := make([]crossing, rowOff[len(rt.C.Rows)])
	cursor := make([]int, len(rt.C.Rows))
	copy(cursor, rowOff[:len(rt.C.Rows)])
	for i := range rt.Segs {
		runs := rt.Segs[i].CurrentRuns()
		if !runs.HasVert() {
			continue
		}
		for row := runs.VLo; row <= runs.VHi; row++ {
			arena[cursor[row]] = crossing{net: rt.Segs[i].Seg.Net, x: runs.VCol, seg: i}
			cursor[row]++
		}
	}
	// Every crossing binds one feedthrough pin to its net; growing the
	// nets' pin lists up front keeps the binding loop append-free.
	netExtra := make([]int32, len(rt.C.Nets))
	for i := range arena {
		netExtra[arena[i].net]++
	}
	for n, extra := range netExtra {
		if extra > 0 {
			rt.C.Nets[n].Pins = slices.Grow(rt.C.Nets[n].Pins, int(extra))
		}
	}
	err := workpool.DoChunks(ctx, rt.Opt.Workers, len(rt.C.Rows), 1, func(_, lo, hi int) error {
		for row := lo; row < hi; row++ {
			crossings := arena[rowOff[row]:rowOff[row+1]]
			slices.SortFunc(crossings, func(a, b crossing) int {
				if a.x != b.x {
					return cmp.Compare(a.x, b.x)
				}
				if a.net != b.net {
					return cmp.Compare(a.net, b.net)
				}
				// Two same-net segments can cross a row at the same x; the
				// segment index makes the order (and thus the pin binding)
				// independent of sort internals.
				return cmp.Compare(a.seg, b.seg)
			})
			rt.sortRowFts(rt.FtPinsByRow[row])
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("route: ft-assign: %w", err)
	}
	for row := range rt.C.Rows {
		crossings := arena[rowOff[row]:rowOff[row+1]]
		fts := rt.FtPinsByRow[row]
		for i, cr := range crossings {
			var pinID int
			if i < len(fts) {
				pinID = fts[i]
			} else {
				// Demand bookkeeping failed to cover this crossing;
				// recover by inserting one more feedthrough here.
				pinID = rt.C.InsertFeedthrough(row, cr.x, circuit.NoNet)
				rt.ExtraFts++
				rt.InsertedFts++
			}
			rt.bindFt(pinID, cr.net)
		}
		if len(fts) > len(crossings) {
			rt.UnboundFts += len(fts) - len(crossings)
		}
		rt.FtPinsByRow[row] = nil
	}
	if rt.ExtraFts > 0 {
		rt.refreshSegs()
	}
	return nil
}

// sortRowFts orders one row's unbound feedthrough pins by (x, pin ID).
// When both values fit the packed bit budget — always, for realistic
// circuits — the sort runs comparator-free over packed int64 keys; the
// comparator fallback preserves the identical order otherwise.
func (rt *Router) sortRowFts(fts []int) {
	pack := true
	for _, pid := range fts {
		if x := rt.C.Pins[pid].X; x < 0 || x >= 1<<packXBits || pid >= 1<<(62-packXBits) {
			pack = false
			break
		}
	}
	if pack {
		for i, pid := range fts {
			fts[i] = rt.C.Pins[pid].X<<(62-packXBits) | pid
		}
		slices.Sort(fts)
		for i, k := range fts {
			fts[i] = k & (1<<(62-packXBits) - 1)
		}
		return
	}
	slices.SortFunc(fts, func(a, b int) int {
		if ax, bx := rt.C.Pins[a].X, rt.C.Pins[b].X; ax != bx {
			return cmp.Compare(ax, bx)
		}
		// Same-x feedthrough pins are interchangeable for routing,
		// but break the tie by pin ID so the binding permutation is
		// deterministic rather than sort-internal.
		return cmp.Compare(a, b)
	})
}

// bindFt attaches an unbound feedthrough pin to a net.
func (rt *Router) bindFt(pinID, netID int) {
	pin := &rt.C.Pins[pinID]
	pin.Net = netID
	rt.C.Nets[netID].Pins = append(rt.C.Nets[netID].Pins, pinID)
}

// ConnectNets is step 4: per net, the adjacency-restricted MST over its
// pins and bound feedthroughs produces the final channel wires. Nets are
// streamed through a live occupancy so each switchable connection starts
// in the channel that is cheaper at the moment it is placed; step 5 then
// iterates on those choices.
//
// With Opt.Workers > 1 the phase splits: candidate preparation (node
// gathering plus Connector.Prepare — the sort-dominated bulk of step 4,
// independent of the occupancy) fans out over per-net slots carved from
// one arena, and the occupancy-streaming Commit then replays the prepared
// nets serially in net order. The commit order, not the preparation
// order, is what the switchable-channel choices depend on, so the output
// is byte-identical at every worker count.
func (rt *Router) ConnectNets(ctx context.Context) error {
	occ := NewOccupancy(rt.C.NumChannels(), rt.C.CoreWidth(), rt.Opt.GridColWidth)
	rt.NetNodes = make([][]Node, len(rt.C.Nets))
	// A k-node net yields exactly k-1 connections, so the output size
	// is known up front; per-net node lists carve out of one arena.
	nets := rt.C.Nets
	nodeOff := make([]int, len(nets)+1)
	total := 0
	for n := range nets {
		nodeOff[n+1] = nodeOff[n]
		if k := len(nets[n].Pins); k >= 2 {
			nodeOff[n+1] += k
			total += k - 1
		}
	}
	rt.Conns = slices.Grow(rt.Conns, total)
	rt.Wires = slices.Grow(rt.Wires, total)
	arena := make([]Node, nodeOff[len(nets)])

	workers := rt.Opt.Workers
	if workers <= 1 {
		// Inline fast path: prepare and commit each net in one pass, with
		// no candidate retention. Identical output to the split form.
		var cn Connector
		for n := range nets {
			if nodeOff[n+1] == nodeOff[n] {
				continue
			}
			if n&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("route: connect: %w", err)
				}
			}
			nodes := rt.netNodesInto(arena, nodeOff, n)
			conns, forced := cn.Connect(n, nodes, occ)
			rt.takeConns(conns, nodes, forced)
		}
		return nil
	}

	// Parallel prepare: per-worker Connectors and candidate arenas; the
	// per-net candidate lists are retained as sub-slices for the commit.
	candLists := make([][]ConnCand, len(nets))
	prep := make([]connPrep, workers)
	err := workpool.DoChunks(ctx, workers, len(nets), workpool.Grain(len(nets), workers),
		func(w, lo, hi int) error {
			p := &prep[w]
			for n := lo; n < hi; n++ {
				if nodeOff[n+1] == nodeOff[n] {
					continue
				}
				nodes := rt.netNodesInto(arena, nodeOff, n)
				cands := p.cn.Prepare(nodes)
				at := len(p.arena)
				p.arena = append(p.arena, cands...)
				candLists[n] = p.arena[at:len(p.arena):len(p.arena)]
			}
			return nil
		})
	if err != nil {
		return fmt.Errorf("route: connect: %w", err)
	}

	// Serial commit in net order against the live occupancy.
	var cn Connector
	for n := range nets {
		if nodeOff[n+1] == nodeOff[n] {
			continue
		}
		if n&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("route: connect: %w", err)
			}
		}
		nodes := rt.NetNodes[n]
		conns, forced := cn.Commit(n, nodes, candLists[n], occ)
		rt.takeConns(conns, nodes, forced)
	}
	return nil
}

// connPrep is one worker's step-4 preparation state: its Connector
// scratch and the growing arena its nets' retained candidate lists carve
// sub-slices from.
type connPrep struct {
	cn    Connector
	arena []ConnCand
}

// netNodesInto fills net n's node list into its arena slot and records it
// in NetNodes.
func (rt *Router) netNodesInto(arena []Node, nodeOff []int, n int) []Node {
	pins := rt.C.Nets[n].Pins
	nodes := arena[nodeOff[n]:nodeOff[n+1]:nodeOff[n+1]]
	for i, pid := range pins {
		p := &rt.C.Pins[pid]
		nodes[i] = Node{X: p.X, Row: p.Row, Side: p.Side, Pin: pid}
	}
	rt.NetNodes[n] = nodes
	return nodes
}

// takeConns appends one committed net's connections and wires.
func (rt *Router) takeConns(conns []Connection, nodes []Node, forced int) {
	rt.ForcedEdges += forced
	for i := range conns {
		rt.Conns = append(rt.Conns, conns[i])
		rt.Wires = append(rt.Wires, conns[i].Wire(nodes))
	}
}

// OptimizeSwitchable is step 5 over the wires produced by ConnectNets.
func (rt *Router) OptimizeSwitchable() {
	occ := NewOccupancy(rt.C.NumChannels(), rt.C.CoreWidth(), rt.Opt.GridColWidth)
	occ.AddWires(rt.Wires)
	for i := range rt.Wires {
		if rt.Wires[i].Switchable && !rt.Wires[i].Span.Empty() {
			rt.switchableWs++
		}
	}
	rt.SwitchFlips += OptimizeSwitchable(rt.Wires, occ, rt.Rand, rt.Opt.SwitchPasses)
}

// Phases returns the per-stage records of the last Run (nil when the
// step methods were driven directly).
func (rt *Router) Phases() []metrics.Phase { return rt.phases }

// SetPhases installs externally recorded per-stage records (the parallel
// drivers run their own pipeline sessions) so Result carries them.
func (rt *Router) SetPhases(ph []metrics.Phase) { rt.phases = ph }

// Result assembles and finalizes the metrics for a completed run.
func (rt *Router) Result(algo string, procs int, elapsed time.Duration) *metrics.Result {
	res := &metrics.Result{
		Circuit:         rt.C.Name,
		Algo:            algo,
		Procs:           procs,
		Wires:           rt.Wires,
		Feedthroughs:    rt.InsertedFts,
		ForcedEdges:     rt.ForcedEdges,
		CoreWidth:       rt.C.CoreWidth(),
		SwitchableWires: rt.switchableWs,
		SwitchFlips:     rt.SwitchFlips,
		CoarseFlips:     rt.CoarseFlips,
		Elapsed:         elapsed,
		Phases:          rt.phases,
	}
	res.Finalize(rt.C.NumChannels(), len(rt.C.Rows), rt.C.CellHeight, rt.Opt.TrackPitch)
	return res
}
