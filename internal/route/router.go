package route

import (
	"cmp"
	"context"
	"slices"
	"time"

	"parroute/internal/circuit"
	"parroute/internal/geom"
	"parroute/internal/grid"
	"parroute/internal/metrics"
	"parroute/internal/pipeline"
	"parroute/internal/rng"
	"parroute/internal/steiner"
)

// Router carries the state of one TWGR run. The phases mutate the attached
// circuit (feedthrough cells are physically inserted), so callers who need
// the original untouched should pass a clone — Route does this for you.
type Router struct {
	C    *circuit.Circuit
	Opt  Options
	Rand *rng.RNG

	Grid *grid.Grid
	Segs []PlacedSeg
	// FtPinsByRow holds the not-yet-bound feedthrough pin IDs per row
	// between insertion and assignment.
	FtPinsByRow [][]int
	// NetNodes and Conns are the step-4 connection structure; Wires is
	// its flat channel-wire form used for density and step 5.
	NetNodes [][]Node
	Conns    []Connection
	Wires    []metrics.Wire

	CoarseFlips  int
	SwitchFlips  int
	ForcedEdges  int
	InsertedFts  int
	ExtraFts     int // feedthroughs inserted late during assignment (should stay 0)
	UnboundFts   int // inserted feedthroughs never bound to a net (should stay 0)
	phases       []metrics.Phase
	switchableWs int
}

// NewRouter prepares a router over the given circuit. The circuit is
// mutated by the routing phases.
func NewRouter(c *circuit.Circuit, opt Options) *Router {
	opt.Normalize()
	return &Router{C: c, Opt: opt, Rand: rng.New(opt.Seed)}
}

// Route runs the full five-step pipeline on a clone of c and returns the
// result. The input circuit is left untouched. Cancelling ctx stops the
// run at the next stage boundary with an error wrapping ctx.Err().
func Route(ctx context.Context, c *circuit.Circuit, opt Options) (*metrics.Result, error) {
	rt := NewRouter(c.Clone(), opt)
	return rt.Run(ctx)
}

// Stages returns the serial TWGR pipeline: the five paper steps (step 2
// contributes both the coarse sweep and feedthrough insertion) as named
// pipeline stages. The names are canonical — the parallel drivers reuse
// them for the identical steps so per-stage records are comparable across
// algorithms.
func (rt *Router) Stages() []pipeline.Stage {
	return []pipeline.Stage{
		pipeline.Func("steiner", func(_ context.Context, s *pipeline.Session) error {
			rt.BuildTrees()
			s.Count("segments", int64(len(rt.Segs)))
			return nil
		}),
		pipeline.Func("coarse", func(_ context.Context, s *pipeline.Session) error {
			rt.CoarseRoute()
			s.Count("coarse-flips", int64(rt.CoarseFlips))
			return nil
		}),
		pipeline.Func("ft-insert", func(_ context.Context, s *pipeline.Session) error {
			rt.InsertFeedthroughs()
			s.Count("inserted-fts", int64(rt.InsertedFts))
			return nil
		}),
		pipeline.Func("ft-assign", func(_ context.Context, s *pipeline.Session) error {
			rt.AssignFeedthroughs()
			s.Count("extra-fts", int64(rt.ExtraFts))
			return nil
		}),
		pipeline.Func("connect", func(_ context.Context, s *pipeline.Session) error {
			rt.ConnectNets()
			s.Count("wires", int64(len(rt.Wires)))
			s.Count("forced-edges", int64(rt.ForcedEdges))
			return nil
		}),
		pipeline.Func("switch-opt", func(_ context.Context, s *pipeline.Session) error {
			rt.OptimizeSwitchable()
			s.Count("switch-flips", int64(rt.SwitchFlips))
			return nil
		}),
	}
}

// Run executes all stages in order under ctx and returns the finalized
// result. Extra observers (tracing, benchmarking) join the built-in phase
// recorder; they cannot affect routing output.
func (rt *Router) Run(ctx context.Context, obs ...pipeline.Observer) (*metrics.Result, error) {
	rec := pipeline.NewPhaseRecorder()
	s := pipeline.NewSession(append([]pipeline.Observer{rec}, obs...)...)
	if err := pipeline.Run(ctx, s, rt.Stages()...); err != nil {
		return nil, err
	}
	rt.phases = rec.Phases()
	return rt.Result("twgr-serial", 1, rec.Total()), nil
}

// BuildTrees is step 1: the approximate Steiner tree of every net,
// flattened into placed segments with resolved channel access.
func (rt *Router) BuildTrees() {
	// Each k-pin net contributes exactly k-1 segments.
	total := 0
	for n := range rt.C.Nets {
		if k := len(rt.C.Nets[n].Pins); k >= 2 {
			total += k - 1
		}
	}
	rt.Segs = slices.Grow(rt.Segs, total)
	var b steiner.Builder
	var segBuf []steiner.Segment
	for n := range rt.C.Nets {
		segBuf = b.AppendNet(segBuf[:0], rt.C, n)
		for _, seg := range segBuf {
			rt.Segs = append(rt.Segs, place(rt.C, seg))
		}
	}
}

// UseSegments installs externally built segments (the parallel algorithms
// build trees once and ship the pieces) instead of calling BuildTrees.
func (rt *Router) UseSegments(segs []steiner.Segment) {
	rt.Segs = make([]PlacedSeg, 0, len(segs))
	for _, seg := range segs {
		rt.Segs = append(rt.Segs, place(rt.C, seg))
	}
}

// CoarseRoute is step 2: load every segment into the coarse grid at its
// initial bend, then sweep the segments in random order flipping L
// orientations whenever that lowers congestion + feedthrough cost.
func (rt *Router) CoarseRoute() {
	width := rt.Opt.GridWidth
	if width <= 0 {
		width = rt.C.CoreWidth()
	}
	rt.Grid = grid.New(len(rt.C.Rows), width, rt.Opt.GridColWidth)
	for i := range rt.Segs {
		addRuns(rt.Grid, rt.Segs[i].CurrentRuns(), 1)
	}
	rt.CoarseFlips += improveBends(rt.Grid, rt.Segs, rt.Rand, rt.Opt.CoarsePasses, rt.Opt.FtBase)
}

// flipCand caches the static geometry of one flippable segment so the
// sweep's inner loop touches no segment geometry beyond the bend bit: the
// full horizontal span and the grid columns of the two endpoints.
type flipCand struct {
	seg        int
	span       geom.Interval
	colP, colQ int
}

// improveBends runs random improvement sweeps over the segments with a
// bend choice; grid must already contain all segments. Returns flip count.
//
// Flip deltas are evaluated incrementally: with the bend at one endpoint
// the horizontal span always lies whole in the far endpoint's channel
// (RunsFor leaves the near run empty), so a flip moves the full span
// between CP and CQ and the vertical run between the two endpoint columns.
// Grid.SpanCost/VertMoveCost price that in one walk without mutating the
// grid — the same value the remove/price-both/re-add evaluation produced,
// so flip decisions (and the rng stream) are unchanged. The ftBase term
// cancels: both orientations cross the same rows.
func improveBends(g *grid.Grid, segs []PlacedSeg, r *rng.RNG, passes int, ftBase int64) int {
	_ = ftBase // cancels out of the incremental delta; kept for signature stability
	cands := make([]flipCand, 0, len(segs))
	for i := range segs {
		ps := &segs[i]
		if ps.HasBend() && ps.XP != ps.XQ {
			cands = append(cands, flipCand{
				seg:  i,
				span: geom.NewInterval(ps.XP, ps.XQ),
				colP: g.ColOf(ps.XP),
				colQ: g.ColOf(ps.XQ),
			})
		}
	}
	flips := 0
	perm := make([]int, len(cands))
	for pass := 0; pass < passes; pass++ {
		r.PermInto(perm)
		improved := false
		for _, pi := range perm {
			fc := &cands[pi]
			ps := &segs[fc.seg]
			chFrom, chTo := ps.CP, ps.CQ
			fromCol, toCol := fc.colQ, fc.colP
			if ps.BendAtP {
				chFrom, chTo = ps.CQ, ps.CP
				fromCol, toCol = fc.colP, fc.colQ
			}
			delta := g.SpanCost(chFrom, chTo, fc.span) +
				g.VertMoveCost(ps.CP, ps.CQ-1, fromCol, toCol)
			if delta < 0 {
				g.MoveWire(chFrom, chTo, fc.span)
				g.MoveVert(ps.CP, ps.CQ-1, fromCol, toCol)
				ps.BendAtP = !ps.BendAtP
				flips++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return flips
}

// InsertFeedthroughs is the tail of step 2: realize the grid's feedthrough
// demand as physical feedthrough cells, then refresh segment geometry
// (insertion shifts cells and the pins on them).
func (rt *Router) InsertFeedthroughs() {
	rt.FtPinsByRow = make([][]int, len(rt.C.Rows))
	// Pre-size the circuit tables for the total demand, then insert in
	// deferred mode: cell-attached pin positions are re-synced once at
	// the end instead of per insertion.
	rowCounts := make([]int, rt.Grid.Rows)
	total := 0
	for row := 0; row < rt.Grid.Rows; row++ {
		for col := 0; col < rt.Grid.Cols; col++ {
			rowCounts[row] += rt.Grid.FtDemand(row, col)
		}
		total += rowCounts[row]
	}
	rt.C.GrowForFeedthroughs(total, rowCounts)
	for row := 0; row < rt.Grid.Rows; row++ {
		rt.FtPinsByRow[row] = make([]int, 0, rowCounts[row])
		for col := 0; col < rt.Grid.Cols; col++ {
			demand := rt.Grid.FtDemand(row, col)
			for i := 0; i < demand; i++ {
				pin := rt.C.InsertFeedthroughDeferred(row, rt.Grid.ColCenter(col), circuit.NoNet)
				rt.FtPinsByRow[row] = append(rt.FtPinsByRow[row], pin)
				rt.InsertedFts++
			}
		}
	}
	rt.C.SyncPinX()
	rt.refreshSegs()
}

// refreshSegs re-reads endpoint positions from the circuit after cell
// shifts. Fake pins have no cell and never move.
func (rt *Router) refreshSegs() {
	for i := range rt.Segs {
		ps := &rt.Segs[i]
		ps.XP = rt.C.Pins[ps.PinAtP].X
		ps.XQ = rt.C.Pins[ps.PinAtQ].X
	}
}

// crossing is one (segment, row) feedthrough need during assignment.
type crossing struct {
	net int
	x   int
	seg int
}

// AssignFeedthroughs is step 3: per row, bind each segment crossing the
// row to a concrete feedthrough pin, matching both sides in x order (the
// order-preserving matching minimizes total displacement). Binding a pin
// attaches it to the segment's net, which makes it a step-4 node.
func (rt *Router) AssignFeedthroughs() {
	byRow := make([][]crossing, len(rt.C.Rows))
	for i := range rt.Segs {
		runs := rt.Segs[i].CurrentRuns()
		if !runs.HasVert() {
			continue
		}
		for row := runs.VLo; row <= runs.VHi; row++ {
			byRow[row] = append(byRow[row], crossing{net: rt.Segs[i].Seg.Net, x: runs.VCol, seg: i})
		}
	}
	// Every crossing binds one feedthrough pin to its net; growing the
	// nets' pin lists up front keeps the binding loop append-free.
	netExtra := make(map[int]int)
	for row := range byRow {
		for _, cr := range byRow[row] {
			netExtra[cr.net]++
		}
	}
	for n, extra := range netExtra {
		rt.C.Nets[n].Pins = slices.Grow(rt.C.Nets[n].Pins, extra)
	}
	for row := range byRow {
		crossings := byRow[row]
		slices.SortFunc(crossings, func(a, b crossing) int {
			if a.x != b.x {
				return cmp.Compare(a.x, b.x)
			}
			if a.net != b.net {
				return cmp.Compare(a.net, b.net)
			}
			// Two same-net segments can cross a row at the same x; the
			// segment index makes the order (and thus the pin binding)
			// independent of sort internals.
			return cmp.Compare(a.seg, b.seg)
		})
		fts := rt.FtPinsByRow[row]
		slices.SortFunc(fts, func(a, b int) int {
			if ax, bx := rt.C.Pins[a].X, rt.C.Pins[b].X; ax != bx {
				return cmp.Compare(ax, bx)
			}
			// Same-x feedthrough pins are interchangeable for routing,
			// but break the tie by pin ID so the binding permutation is
			// deterministic rather than sort-internal.
			return cmp.Compare(a, b)
		})
		for i, cr := range crossings {
			var pinID int
			if i < len(fts) {
				pinID = fts[i]
			} else {
				// Demand bookkeeping failed to cover this crossing;
				// recover by inserting one more feedthrough here.
				pinID = rt.C.InsertFeedthrough(row, cr.x, circuit.NoNet)
				rt.ExtraFts++
				rt.InsertedFts++
			}
			rt.bindFt(pinID, cr.net)
		}
		if len(fts) > len(crossings) {
			rt.UnboundFts += len(fts) - len(crossings)
		}
		rt.FtPinsByRow[row] = nil
	}
	if rt.ExtraFts > 0 {
		rt.refreshSegs()
	}
}

// bindFt attaches an unbound feedthrough pin to a net.
func (rt *Router) bindFt(pinID, netID int) {
	pin := &rt.C.Pins[pinID]
	pin.Net = netID
	rt.C.Nets[netID].Pins = append(rt.C.Nets[netID].Pins, pinID)
}

// ConnectNets is step 4: per net, the adjacency-restricted MST over its
// pins and bound feedthroughs produces the final channel wires. Nets are
// streamed through a live occupancy so each switchable connection starts
// in the channel that is cheaper at the moment it is placed; step 5 then
// iterates on those choices.
func (rt *Router) ConnectNets() {
	occ := NewOccupancy(rt.C.NumChannels(), rt.C.CoreWidth(), rt.Opt.GridColWidth)
	rt.NetNodes = make([][]Node, len(rt.C.Nets))
	// A k-node net yields exactly k-1 connections, so the output size
	// is known up front; per-net node lists carve out of one arena.
	total, totalNodes := 0, 0
	for n := range rt.C.Nets {
		if k := len(rt.C.Nets[n].Pins); k >= 2 {
			total += k - 1
			totalNodes += k
		}
	}
	rt.Conns = slices.Grow(rt.Conns, total)
	rt.Wires = slices.Grow(rt.Wires, total)
	arena := make([]Node, 0, totalNodes)
	var cn Connector
	for n := range rt.C.Nets {
		pins := rt.C.Nets[n].Pins
		if len(pins) < 2 {
			continue
		}
		nodes := arena[len(arena) : len(arena)+len(pins) : len(arena)+len(pins)]
		arena = arena[:len(arena)+len(pins)]
		for i, pid := range pins {
			p := &rt.C.Pins[pid]
			nodes[i] = Node{X: p.X, Row: p.Row, Side: p.Side, Pin: pid}
		}
		rt.NetNodes[n] = nodes
		conns, forced := cn.Connect(n, nodes, occ)
		rt.ForcedEdges += forced
		for i := range conns {
			rt.Conns = append(rt.Conns, conns[i])
			rt.Wires = append(rt.Wires, conns[i].Wire(nodes))
		}
	}
}

// OptimizeSwitchable is step 5 over the wires produced by ConnectNets.
func (rt *Router) OptimizeSwitchable() {
	occ := NewOccupancy(rt.C.NumChannels(), rt.C.CoreWidth(), rt.Opt.GridColWidth)
	occ.AddWires(rt.Wires)
	for i := range rt.Wires {
		if rt.Wires[i].Switchable && !rt.Wires[i].Span.Empty() {
			rt.switchableWs++
		}
	}
	rt.SwitchFlips += OptimizeSwitchable(rt.Wires, occ, rt.Rand, rt.Opt.SwitchPasses)
}

// Phases returns the per-stage records of the last Run (nil when the
// step methods were driven directly).
func (rt *Router) Phases() []metrics.Phase { return rt.phases }

// SetPhases installs externally recorded per-stage records (the parallel
// drivers run their own pipeline sessions) so Result carries them.
func (rt *Router) SetPhases(ph []metrics.Phase) { rt.phases = ph }

// Result assembles and finalizes the metrics for a completed run.
func (rt *Router) Result(algo string, procs int, elapsed time.Duration) *metrics.Result {
	res := &metrics.Result{
		Circuit:         rt.C.Name,
		Algo:            algo,
		Procs:           procs,
		Wires:           rt.Wires,
		Feedthroughs:    rt.InsertedFts,
		ForcedEdges:     rt.ForcedEdges,
		CoreWidth:       rt.C.CoreWidth(),
		SwitchableWires: rt.switchableWs,
		SwitchFlips:     rt.SwitchFlips,
		CoarseFlips:     rt.CoarseFlips,
		Elapsed:         elapsed,
		Phases:          rt.phases,
	}
	res.Finalize(rt.C.NumChannels(), len(rt.C.Rows), rt.C.CellHeight, rt.Opt.TrackPitch)
	return res
}
