package route

import (
	"context"
	"strings"
	"testing"

	"parroute/internal/circuit"
	"parroute/internal/gen"
	"parroute/internal/metrics"
	"parroute/internal/steiner"
)

func routeSmall(t *testing.T, seed uint64) (*circuit.Circuit, *Router, *metrics.Result) {
	t.Helper()
	c := gen.Small(seed)
	rt := NewRouter(c.Clone(), Options{Seed: seed})
	res, err := rt.Run(context.Background())
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	return c, rt, res
}

// mustRoute is the test-side shim over the context-taking entry point.
func mustRoute(t *testing.T, c *circuit.Circuit, opt Options) *metrics.Result {
	t.Helper()
	res, err := Route(context.Background(), c, opt)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	return res
}

func TestRouteLeavesInputUntouched(t *testing.T) {
	c := gen.Small(1)
	cells, pins := len(c.Cells), len(c.Pins)
	mustRoute(t, c, Options{Seed: 1})
	if len(c.Cells) != cells || len(c.Pins) != pins {
		t.Fatal("Route mutated its input circuit")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("input corrupted: %v", err)
	}
}

func TestRouteDeterministic(t *testing.T) {
	c := gen.Small(3)
	a := mustRoute(t, c, Options{Seed: 9})
	b := mustRoute(t, c, Options{Seed: 9})
	if a.TotalTracks != b.TotalTracks || a.Area != b.Area || a.Wirelength != b.Wirelength {
		t.Fatalf("same seed differs: %d/%d tracks", a.TotalTracks, b.TotalTracks)
	}
	if len(a.Wires) != len(b.Wires) {
		t.Fatal("wire counts differ")
	}
	for i := range a.Wires {
		if a.Wires[i] != b.Wires[i] {
			t.Fatalf("wire %d differs", i)
		}
	}
	c2 := mustRoute(t, c, Options{Seed: 10})
	if c2.TotalTracks == a.TotalTracks && c2.SwitchFlips == a.SwitchFlips &&
		c2.CoarseFlips == a.CoarseFlips {
		t.Fatal("different seeds produced suspiciously identical runs")
	}
}

func TestRouterCircuitStaysValidThroughPhases(t *testing.T) {
	c := gen.Small(5)
	rt := NewRouter(c.Clone(), Options{Seed: 5})
	ctx := context.Background()
	steps := []struct {
		name string
		f    func() error
	}{
		{"trees", func() error { return rt.BuildTrees(ctx) }},
		{"coarse", func() error { rt.CoarseRoute(); return nil }},
		{"insert", func() error { rt.InsertFeedthroughs(); return nil }},
		{"assign", func() error { return rt.AssignFeedthroughs(ctx) }},
		{"connect", func() error { return rt.ConnectNets(ctx) }},
		{"switch", func() error { rt.OptimizeSwitchable(); return nil }},
	}
	for _, s := range steps {
		if err := s.f(); err != nil {
			t.Fatalf("step %s: %v", s.name, err)
		}
		if err := rt.C.Validate(); err != nil {
			t.Fatalf("circuit invalid after %s: %v", s.name, err)
		}
	}
}

func TestFeedthroughBookkeepingExact(t *testing.T) {
	_, rt, res := routeSmall(t, 7)
	if rt.ExtraFts != 0 {
		t.Fatalf("%d crossings were not covered by the demand estimate", rt.ExtraFts)
	}
	if rt.UnboundFts != 0 {
		t.Fatalf("%d feedthroughs inserted but never bound", rt.UnboundFts)
	}
	// Every inserted feedthrough cell carries exactly one pin, bound to a
	// real net.
	ftCells := 0
	for i := range rt.C.Cells {
		if !rt.C.Cells[i].Feed {
			continue
		}
		ftCells++
		if len(rt.C.Cells[i].Pins) != 1 {
			t.Fatalf("feedthrough cell %d has %d pins", i, len(rt.C.Cells[i].Pins))
		}
		pin := &rt.C.Pins[rt.C.Cells[i].Pins[0]]
		if pin.Net == circuit.NoNet {
			t.Fatalf("feedthrough pin %d unbound", pin.ID)
		}
		if pin.Side != circuit.Both {
			t.Fatalf("feedthrough pin side = %v", pin.Side)
		}
	}
	if ftCells != rt.InsertedFts || res.Feedthroughs != rt.InsertedFts {
		t.Fatalf("ft counts disagree: cells=%d inserted=%d result=%d",
			ftCells, rt.InsertedFts, res.Feedthroughs)
	}
}

func TestEveryMultiPinNetFullyConnected(t *testing.T) {
	_, rt, res := routeSmall(t, 11)
	if res.ForcedEdges != 0 {
		t.Fatalf("%d forced edges: feedthrough coverage has gaps", res.ForcedEdges)
	}
	// Per net: the connections form a spanning tree over its nodes.
	conns := map[int][]Connection{}
	for _, c := range rt.Conns {
		conns[c.Net] = append(conns[c.Net], c)
	}
	for n, nodes := range rt.NetNodes {
		if len(nodes) < 2 {
			continue
		}
		cs := conns[n]
		if len(cs) != len(nodes)-1 {
			t.Fatalf("net %d: %d connections for %d nodes", n, len(cs), len(nodes))
		}
		uf := newUnionFind(len(nodes))
		for _, c := range cs {
			uf.union(c.U, c.V)
		}
		root := uf.find(0)
		for i := range nodes {
			if uf.find(i) != root {
				t.Fatalf("net %d: node %d disconnected", n, i)
			}
		}
	}
}

func TestWiresMatchConnections(t *testing.T) {
	_, rt, _ := routeSmall(t, 13)
	if len(rt.Wires) != len(rt.Conns) {
		t.Fatalf("wires %d vs conns %d", len(rt.Wires), len(rt.Conns))
	}
	for i := range rt.Conns {
		c := &rt.Conns[i]
		w := &rt.Wires[i]
		if w.Net != c.Net {
			t.Fatalf("wire %d net mismatch", i)
		}
		if !c.Switchable && w.Channel != c.Channel {
			t.Fatalf("wire %d channel mismatch (fixed wire)", i)
		}
		if c.Switchable && w.Channel != c.Row && w.Channel != c.Row+1 {
			t.Fatalf("switchable wire %d in channel %d, candidates %d/%d",
				i, w.Channel, c.Row, c.Row+1)
		}
	}
}

func TestWireChannelsConsistentWithEndpoints(t *testing.T) {
	// Every non-forced wire's channel must be reachable from both of its
	// endpoint nodes.
	_, rt, _ := routeSmall(t, 17)
	for i := range rt.Conns {
		c := &rt.Conns[i]
		if c.Forced {
			continue
		}
		nodes := rt.NetNodes[c.Net]
		w := rt.Wires[i]
		for _, end := range []Node{nodes[c.U], nodes[c.V]} {
			lo, hi, _ := end.Channels()
			if w.Channel < lo || w.Channel > hi {
				t.Fatalf("wire %d in channel %d unreachable from node at row %d side %v",
					i, w.Channel, end.Row, end.Side)
			}
		}
	}
}

func TestResultMetricsConsistent(t *testing.T) {
	_, rt, res := routeSmall(t, 19)
	d := metrics.ChannelDensities(rt.C.NumChannels(), res.Wires)
	if metrics.TotalTracks(d) != res.TotalTracks {
		t.Fatal("TotalTracks does not match recomputation")
	}
	if res.CoreWidth != rt.C.CoreWidth() {
		t.Fatal("core width mismatch")
	}
	if res.Area <= 0 || res.Wirelength <= 0 || res.TotalTracks <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if len(res.Phases) != 6 {
		t.Fatalf("%d phases recorded", len(res.Phases))
	}
}

func TestCoarsePassesConverge(t *testing.T) {
	// More passes never increase the grid cost proxy dramatically; the
	// flip counter grows monotonically with passes.
	c := gen.Small(23)
	r1 := mustRoute(t, c, Options{Seed: 1, CoarsePasses: 1})
	r4 := mustRoute(t, c, Options{Seed: 1, CoarsePasses: 4})
	if r4.CoarseFlips < r1.CoarseFlips {
		t.Fatalf("flips decreased with more passes: %d vs %d", r4.CoarseFlips, r1.CoarseFlips)
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	o.Normalize()
	if o.GridColWidth <= 0 || o.CoarsePasses <= 0 || o.SwitchPasses <= 0 ||
		o.FtBase <= 0 || o.TrackPitch <= 0 {
		t.Fatalf("defaults missing: %+v", o)
	}
	o2 := Options{GridColWidth: 5, CoarsePasses: 9}
	o2.Normalize()
	if o2.GridColWidth != 5 || o2.CoarsePasses != 9 {
		t.Fatal("Normalize clobbered explicit settings")
	}
}

func TestUseSegmentsMatchesBuildTrees(t *testing.T) {
	// Installing externally built segments must behave like BuildTrees.
	c := gen.Tiny(29)
	rtA := NewRouter(c.Clone(), Options{Seed: 2})
	if err := rtA.BuildTrees(context.Background()); err != nil {
		t.Fatal(err)
	}

	var raw []steiner.Segment
	for n := range c.Nets {
		raw = append(raw, steiner.BuildNet(c, n)...)
	}
	rtB := NewRouter(c.Clone(), Options{Seed: 2})
	rtB.UseSegments(raw)

	if len(rtA.Segs) != len(rtB.Segs) {
		t.Fatalf("segment counts differ: %d vs %d", len(rtA.Segs), len(rtB.Segs))
	}
	for i := range rtA.Segs {
		if rtA.Segs[i].Seg != rtB.Segs[i].Seg || rtA.Segs[i].CP != rtB.Segs[i].CP ||
			rtA.Segs[i].CQ != rtB.Segs[i].CQ || rtA.Segs[i].BendAtP != rtB.Segs[i].BendAtP {
			t.Fatalf("segment %d differs: %+v vs %+v", i, rtA.Segs[i], rtB.Segs[i])
		}
	}
	// And the rest of the pipeline yields identical results.
	rtA.CoarseRoute()
	rtB.CoarseRoute()
	if rtA.CoarseFlips != rtB.CoarseFlips {
		t.Fatalf("coarse flips differ: %d vs %d", rtA.CoarseFlips, rtB.CoarseFlips)
	}
}

func TestSwitchableWiresOnlyFromEquivalentEndpoints(t *testing.T) {
	_, rt, _ := routeSmall(t, 31)
	for i := range rt.Conns {
		c := &rt.Conns[i]
		if !c.Switchable {
			continue
		}
		nodes := rt.NetNodes[c.Net]
		u, v := nodes[c.U], nodes[c.V]
		if u.Side != circuit.Both || v.Side != circuit.Both || u.Row != v.Row {
			t.Fatalf("switchable connection between (%v row %d) and (%v row %d)",
				u.Side, u.Row, v.Side, v.Row)
		}
	}
}

func TestFeedthroughsBoundToCrossingNets(t *testing.T) {
	// Each net's bound feedthroughs must lie within the net's row span
	// (a feedthrough outside the span could never help connectivity).
	base, rt, _ := routeSmall(t, 37)
	_ = base
	for n := range rt.C.Nets {
		pins := rt.C.Nets[n].Pins
		minRow, maxRow := 1<<30, -1
		for _, pid := range pins {
			p := &rt.C.Pins[pid]
			if p.Cell != circuit.NoCell && rt.C.Cells[p.Cell].Feed {
				continue
			}
			if p.Row < minRow {
				minRow = p.Row
			}
			if p.Row > maxRow {
				maxRow = p.Row
			}
		}
		for _, pid := range pins {
			p := &rt.C.Pins[pid]
			if p.Cell == circuit.NoCell || !rt.C.Cells[p.Cell].Feed {
				continue
			}
			if p.Row < minRow-1 || p.Row > maxRow {
				t.Fatalf("net %d: feedthrough in row %d outside pin span %d..%d",
					n, p.Row, minRow, maxRow)
			}
		}
	}
}

func TestVerifyPassesOnCleanRoute(t *testing.T) {
	_, rt, _ := routeSmall(t, 41)
	if err := rt.Verify(); err != nil {
		t.Fatalf("clean route failed verification: %v", err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	check := func(name string, corrupt func(rt *Router)) {
		c := gen.Small(41)
		rt := NewRouter(c.Clone(), Options{Seed: 41})
		if _, err := rt.Run(context.Background()); err != nil {
			t.Fatalf("route: %v", err)
		}
		corrupt(rt)
		if err := rt.Verify(); err == nil {
			t.Errorf("%s: Verify accepted a corrupted route", name)
		}
	}
	check("dropped-connection", func(rt *Router) {
		rt.Conns = rt.Conns[:len(rt.Conns)-1]
		rt.Wires = rt.Wires[:len(rt.Wires)-1]
	})
	check("wire-count-mismatch", func(rt *Router) {
		rt.Wires = rt.Wires[:len(rt.Wires)-1]
	})
	check("wire-bad-channel", func(rt *Router) {
		rt.Wires[0].Channel = 9999
	})
	check("wire-net-mismatch", func(rt *Router) {
		rt.Wires[0].Net = rt.Wires[0].Net + 1
	})
	check("phantom-extra-fts", func(rt *Router) {
		rt.ExtraFts = 3
	})
	check("unbound-fts", func(rt *Router) {
		rt.UnboundFts = 1
	})
	check("circuit-corruption", func(rt *Router) {
		rt.C.Pins[0].X += 1000
	})
}

// TestVerifyNamesFeedthroughCounter pins the PR 4 invariant: a nonzero
// ExtraFts or UnboundFts is a hard Verify failure whose message names the
// broken counter, even when every other invariant still holds.
func TestVerifyNamesFeedthroughCounter(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(rt *Router)
		want    string
	}{
		{"extra-fts", func(rt *Router) { rt.ExtraFts = 2 }, "not covered by the demand estimate"},
		{"unbound-fts", func(rt *Router) { rt.UnboundFts = 1 }, "never bound"},
	}
	for _, tc := range cases {
		_, rt, _ := routeSmall(t, 11)
		tc.corrupt(rt)
		err := rt.Verify()
		if err == nil {
			t.Fatalf("%s: Verify accepted a nonzero counter", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the counter (want substring %q)", tc.name, err, tc.want)
		}
	}
}

// TestFeedthroughCountersZeroAcrossSeeds runs the full pipeline over a
// spread of generated circuits and requires the feedthrough bookkeeping to
// close exactly every time: demand estimation covers all crossings and
// every inserted feedthrough is bound.
func TestFeedthroughCountersZeroAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		_, rt, _ := routeSmall(t, seed)
		if rt.ExtraFts != 0 || rt.UnboundFts != 0 {
			t.Errorf("seed %d: ExtraFts=%d UnboundFts=%d, want 0/0", seed, rt.ExtraFts, rt.UnboundFts)
		}
		if err := rt.Verify(); err != nil {
			t.Errorf("seed %d: Verify: %v", seed, err)
		}
	}
}

func TestQualityIndependentOfNetOrder(t *testing.T) {
	// The paper's claim (1) for TWGR: "the solution quality is independent
	// of the routing order of the nets". Permute net IDs (same geometry,
	// different processing order) and require near-identical track counts.
	base := gen.Small(47)
	res1 := mustRoute(t, base, Options{Seed: 3})

	// Rebuild the circuit with reversed net numbering.
	perm := make([]int, len(base.Nets))
	for i := range perm {
		perm[i] = len(base.Nets) - 1 - i
	}
	shuffled := &circuit.Circuit{
		Name: base.Name, CellHeight: base.CellHeight, FeedWidth: base.FeedWidth,
	}
	for range base.Rows {
		shuffled.AddRow()
	}
	for r := range base.Rows {
		for _, cid := range base.Rows[r].Cells {
			shuffled.AddCell(r, base.Cells[cid].Width)
		}
	}
	for range base.Nets {
		shuffled.AddNet("")
	}
	for i := range base.Pins {
		p := &base.Pins[i]
		shuffled.AddPin(p.Cell, perm[p.Net], p.Offset, p.Side)
	}
	if err := shuffled.Validate(); err != nil {
		t.Fatal(err)
	}
	res2 := mustRoute(t, shuffled, Options{Seed: 3})

	diff := float64(res2.TotalTracks-res1.TotalTracks) / float64(res1.TotalTracks)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.03 {
		t.Fatalf("net order changed quality by %.1f%% (%d vs %d tracks)",
			100*diff, res2.TotalTracks, res1.TotalTracks)
	}
}
