package route

import (
	"fmt"

	"parroute/internal/geom"
	"parroute/internal/metrics"
	"parroute/internal/rng"
)

// Occupancy tracks per-channel column occupation during step 5. It is the
// fine-grained sibling of the coarse grid: same column quantization, but
// fed with the final step-4 wires rather than step-2 estimates. The
// parallel algorithms preload it with neighbor wires ("background") so a
// worker evaluates flips against everything known to occupy its channels.
//
// Counts are sharded into row-band slabs of occBandDefault channels each,
// allocated lazily on first write. A rank of the parallel algorithms only
// ever writes the channels of its own row block, so at million-cell scale
// its peak occupancy footprint is O(its band of rows), not O(the whole
// design); reads of untouched bands resolve to a shared zero row.
type Occupancy struct {
	Channels int
	Cols     int
	ColWidth int
	// bands[b] holds the column counts of channels [b<<bandShift,
	// (b+1)<<bandShift) channel-major; nil until one of them is written.
	// zero is the shared all-zero row nil-band reads resolve to.
	bands     [][]int32
	bandShift uint
	zero      []int32
	// chMax caches each channel's peak column count, and chPeakCnt how many
	// columns attain it, so AddCost and MoveCost only walk the affected
	// span. A cache entry is maintained through non-negative Adds (the peak
	// can only grow toward the span's new values) and invalidated by
	// anything that can lower counts; channelMax recomputes lazily.
	chMax     []int32
	chPeakCnt []int32
	chMaxOK   []bool
}

// occBandDefault is the default band granularity: channels per lazily
// allocated slab. Power of two so the band of a channel is a shift.
const occBandDefault = 8

// NewOccupancy returns an empty occupancy table.
func NewOccupancy(channels, coreWidth, colWidth int) *Occupancy {
	return NewOccupancyBands(channels, coreWidth, colWidth, occBandDefault)
}

// NewOccupancyBands is NewOccupancy with an explicit band granularity
// (channels per slab, rounded up to a power of two). The granularity only
// moves the laziness/footprint trade-off; counts, costs and peaks are
// identical at every setting — the differential tests sweep it.
func NewOccupancyBands(channels, coreWidth, colWidth, band int) *Occupancy {
	if colWidth <= 0 {
		// Constructor contract: a non-positive quantum is a caller bug,
		// never a data condition (Options.Normalize enforces it upstream).
		panic(fmt.Sprintf("route: occupancy colWidth %d must be positive", colWidth)) //lint:allow panic-in-library documented constructor invariant
	}
	var shift uint
	for 1<<shift < band {
		shift++
	}
	cols := (geom.Max(coreWidth, 1) + colWidth - 1) / colWidth
	o := &Occupancy{Channels: channels, Cols: cols, ColWidth: colWidth,
		bands:     make([][]int32, (channels+1<<shift-1)>>shift),
		bandShift: shift,
		zero:      make([]int32, cols),
		chMax:     make([]int32, channels), chPeakCnt: make([]int32, channels),
		chMaxOK: make([]bool, channels)}
	for ch := range o.chMaxOK {
		o.chMaxOK[ch] = true // empty channels peak at 0, on every column
		o.chPeakCnt[ch] = int32(cols)
	}
	return o
}

// row returns channel ch's column counts for reading; untouched bands
// resolve to the shared zero row. Callers must not write through it.
func (o *Occupancy) row(ch int) []int32 {
	if s := o.bands[ch>>o.bandShift]; s != nil {
		off := (ch & (1<<o.bandShift - 1)) * o.Cols
		return s[off : off+o.Cols : off+o.Cols]
	}
	return o.zero
}

// rowMut returns channel ch's column counts for writing, allocating the
// band slab on first touch.
func (o *Occupancy) rowMut(ch int) []int32 {
	b := ch >> o.bandShift
	s := o.bands[b]
	if s == nil {
		n := geom.Min(o.Channels-b<<o.bandShift, 1<<o.bandShift)
		s = make([]int32, n*o.Cols)
		o.bands[b] = s
	}
	off := (ch & (1<<o.bandShift - 1)) * o.Cols
	return s[off : off+o.Cols : off+o.Cols]
}

// channelMax returns the peak column count of channel ch, recomputing the
// cache (peak and peak-column count) if it was invalidated.
func (o *Occupancy) channelMax(ch int) int32 {
	if !o.chMaxOK[ch] {
		row := o.row(ch)
		var m, cnt int32
		for _, v := range row {
			switch {
			case v > m:
				m, cnt = v, 1
			case v == m:
				cnt++
			}
		}
		o.chMax[ch] = m
		o.chPeakCnt[ch] = cnt
		o.chMaxOK[ch] = true
	}
	return o.chMax[ch]
}

func (o *Occupancy) colOf(x int) int { return geom.Clamp(x/o.ColWidth, 0, o.Cols-1) }

// Add adjusts channel ch's occupation over span by delta.
func (o *Occupancy) Add(ch int, span geom.Interval, delta int32) {
	if span.Empty() {
		return
	}
	lo, hi := o.colOf(span.Lo), o.colOf(span.Hi)
	row := o.rowMut(ch)
	if delta < 0 {
		o.chMaxOK[ch] = false // the peak may shrink; recompute on demand
		for col := lo; col <= hi; col++ {
			row[col] += delta
		}
		return
	}
	for col := lo; col <= hi; col++ {
		row[col] += delta
		if o.chMaxOK[ch] {
			switch v := row[col]; {
			case v > o.chMax[ch]:
				o.chMax[ch] = v
				o.chPeakCnt[ch] = 1
			case v == o.chMax[ch] && delta > 0:
				// The column just climbed to the existing peak (delta > 0
				// rules out the no-op case where it was already there).
				o.chPeakCnt[ch]++
			}
		}
	}
}

// AddWires loads a set of wires into the table.
func (o *Occupancy) AddWires(wires []metrics.Wire) {
	for i := range wires {
		o.Add(wires[i].Channel, wires[i].Span, 1)
	}
}

// At returns the occupation of channel ch at column col.
func (o *Occupancy) At(ch, col int) int { return int(o.row(ch)[col]) }

// ChannelCounts returns a copy of one channel's column counts; the
// parallel algorithms exchange these slices for shared boundary channels.
func (o *Occupancy) ChannelCounts(ch int) []int32 {
	return append([]int32(nil), o.row(ch)...)
}

// AddChannelCounts adds externally supplied column counts into channel
// ch. The counts arrive from other workers over the transport, so a
// length mismatch is a data error reported to the caller, not a panic.
func (o *Occupancy) AddChannelCounts(ch int, counts []int32) error {
	if len(counts) != o.Cols {
		return fmt.Errorf("route: channel counts length %d, want %d", len(counts), o.Cols)
	}
	o.chMaxOK[ch] = false // transported counts may be negative deltas
	row := o.rowMut(ch)
	for col, v := range counts {
		row[col] += v
	}
	return nil
}

// Counts returns a copy of all column counts (channel-major), the payload
// the net-wise algorithm synchronizes between workers.
func (o *Occupancy) Counts() []int32 {
	out := make([]int32, o.Channels*o.Cols)
	for ch := 0; ch < o.Channels; ch++ {
		copy(out[ch*o.Cols:], o.row(ch))
	}
	return out
}

// SetCounts replaces all column counts. Like AddChannelCounts, the
// payload crosses the transport, so a length mismatch is a returned
// error. Bands that are zero in the payload and were never touched stay
// unallocated.
func (o *Occupancy) SetCounts(counts []int32) error {
	if len(counts) != o.Channels*o.Cols {
		return fmt.Errorf("route: occupancy counts length %d, want %d", len(counts), o.Channels*o.Cols)
	}
	for ch := 0; ch < o.Channels; ch++ {
		seg := counts[ch*o.Cols : (ch+1)*o.Cols]
		if o.bands[ch>>o.bandShift] == nil && allZero32(seg) {
			continue
		}
		copy(o.rowMut(ch), seg)
	}
	for ch := range o.chMaxOK {
		o.chMaxOK[ch] = false
	}
	return nil
}

func allZero32(s []int32) bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// maxWeight scales the peak-density component of MoveCost above any
// possible sum-of-squares tiebreak.
const maxWeight = 1 << 24

// AddCost returns the cost of adding a wire spanning span to channel ch:
// the peak-density increase weighted above a sum-of-squares tiebreak, on
// the same scale as MoveCost. Step 4 uses it to pick the cheaper channel
// for a switchable connection as it streams wires into the occupancy.
//
// Only the covered columns are walked: the post-add peak is the larger of
// the cached channel peak and the span's pre-add peak plus one, which is
// exactly the full-walk value (the peak outside the span never exceeds
// the channel peak).
func (o *Occupancy) AddCost(ch int, span geom.Interval) int64 {
	if span.Empty() {
		return 0
	}
	lo, hi := o.colOf(span.Lo), o.colOf(span.Hi)
	max := int64(o.channelMax(ch))
	row := o.row(ch)
	var spanMax, squares int64
	for col := lo; col <= hi; col++ {
		v := int64(row[col])
		squares += 2*v + 1
		if v > spanMax {
			spanMax = v
		}
	}
	maxAfter := max
	if spanMax+1 > maxAfter {
		maxAfter = spanMax + 1
	}
	return (maxAfter-max)*maxWeight + squares
}

// MoveCost returns the cost delta of moving a wire spanning span from
// channel from to channel to; negative means the move improves matters.
// The wire must currently be counted in from.
//
// The primary term is the change in peak column density of the two
// channels — the track count a channel router needs, which is what TWGR's
// step 5 minimizes ("evaluating the channel track change when the segment
// is flipped to the opposite channel"). Sum-of-squares congestion breaks
// ties so density still spreads when the peak is unaffected, enabling
// later improving moves.
// Only the covered columns are walked (counts are never negative: every
// table is a sum of wire adds). The post-add peak of to follows the
// AddCost argument; the post-removal peak of from is the cached peak when
// any column outside the span still attains it, and exactly one less when
// every peak column lies in the span (then all of them drop together, and
// no outside column can exceed peak-1).
func (o *Occupancy) MoveCost(from, to int, span geom.Interval) int64 {
	if span.Empty() {
		return 0
	}
	lo, hi := o.colOf(span.Lo), o.colOf(span.Hi)
	maxFrom := int64(o.channelMax(from))
	maxTo := int64(o.channelMax(to))
	fromRow, toRow := o.row(from), o.row(to)

	var spanMaxTo, squares int64
	var fromPeakInSpan int32
	for col := lo; col <= hi; col++ {
		f := int64(fromRow[col])
		t := int64(toRow[col])
		// Squares delta: -(2f-1) for the removal, +(2t+1) for the add.
		squares += 2*t + 1 - (2*f - 1)
		if t > spanMaxTo {
			spanMaxTo = t
		}
		if f == maxFrom {
			fromPeakInSpan++
		}
	}
	maxFromAfter := maxFrom
	if maxFrom > 0 && fromPeakInSpan == o.chPeakCnt[from] {
		maxFromAfter--
	}
	maxToAfter := maxTo
	if spanMaxTo+1 > maxToAfter {
		maxToAfter = spanMaxTo + 1
	}
	deltaMax := (maxFromAfter + maxToAfter) - (maxFrom + maxTo)
	return deltaMax*maxWeight + squares
}

// OptimizeSwitchable performs TWGR step 5: random sweeps over the
// switchable wires, flipping each to the opposite channel whenever that
// lowers the congestion cost. wires is mutated in place (Channel fields);
// occ must already contain every wire (and any background). It returns the
// number of flips taken.
func OptimizeSwitchable(wires []metrics.Wire, occ *Occupancy, r *rng.RNG, passes int) int {
	switchable := make([]int, 0, len(wires))
	for i := range wires {
		if wires[i].Switchable && !wires[i].Span.Empty() {
			switchable = append(switchable, i)
		}
	}
	flips := 0
	perm := make([]int, len(switchable))
	for pass := 0; pass < passes; pass++ {
		r.PermInto(perm)
		improved := false
		for _, pi := range perm {
			w := &wires[switchable[pi]]
			other := w.OtherChannel()
			if occ.MoveCost(w.Channel, other, w.Span) < 0 {
				occ.Add(w.Channel, w.Span, -1)
				occ.Add(other, w.Span, 1)
				w.Channel = other
				flips++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return flips
}
